// Command dsmsim runs a single workload configuration on the simulated DSM
// multiprocessor and prints its measurements: elapsed cycles, average
// cycles per update, protocol counters, network traffic, the contention
// histogram, and the average write-run length. With -json the measurements
// are emitted as one machine-readable JSON report (report.WriteJSON)
// instead of text, and the human summary line moves to stderr.
//
// Examples:
//
//	dsmsim -app counter -policy UNC -prim FAP -c 64
//	dsmsim -app mcs -policy INV -prim CAS -ldex -a 2
//	dsmsim -app tclosure -prim LLSC -size 32 -json
//	dsmsim -app msqueue -prim CAS -c 8
//	dsmsim -app rcu -policy UPD -prim LLSC -c 2
//
// With -dump-protocol the coherence transition tables (internal/proto)
// are printed in a stable human-readable form and no simulation runs.
//
// Unknown -app/-policy/-prim/-cas values are rejected with a usage message
// and exit status 2.
package main

import (
	"flag"
	"fmt"
	"os"

	"dsm/internal/exper"
	"dsm/internal/proto"
	"dsm/internal/report"
	"dsm/internal/trace"
)

// parseBar validates the flag values that select a bar of the paper's
// figures and assembles them. It is separated from main so the flag
// validation is testable without spawning a process.
func parseBar(policy, prim, variant string, ldex, drop bool) (exper.Bar, error) {
	var bar exper.Bar
	pol, err := exper.ParsePolicy(policy)
	if err != nil {
		return bar, err
	}
	pr, err := exper.ParsePrim(prim)
	if err != nil {
		return bar, err
	}
	v, err := exper.ParseVariant(variant)
	if err != nil {
		return bar, err
	}
	return exper.Bar{Policy: pol, Prim: pr, Variant: v, LoadEx: ldex, Drop: drop}, nil
}

// validateApp rejects workload names main does not dispatch on.
func validateApp(app string) error {
	_, err := exper.ParseApp(app)
	return err
}

func main() {
	var (
		app     = flag.String("app", "counter", "workload: counter, tts, mcs, tclosure, locusroute, cholesky, msqueue, stack, rcu, tournament, dissemination")
		policy  = flag.String("policy", "INV", "coherence policy for sync data: INV, UPD, UNC")
		prim    = flag.String("prim", "FAP", "primitive family: FAP, CAS, LLSC")
		variant = flag.String("cas", "INV", "compare_and_swap variant: INV, INVd, INVs")
		ldex    = flag.Bool("ldex", false, "pair CAS with load_exclusive")
		drop    = flag.Bool("drop", false, "issue drop_copy after updates")
		procs   = flag.Int("procs", 64, "simulated processors (1-64)")
		cont    = flag.Int("c", 1, "contention level (synthetic apps)")
		wrun    = flag.Float64("a", 1, "average write-run length (synthetic apps, c=1)")
		rounds  = flag.Int("rounds", 16, "barrier-separated rounds (synthetic apps)")
		size    = flag.Int("size", 32, "transitive-closure vertices")
		traceN  = flag.Int("trace", 0, "print the last N protocol events")
		asJSON  = flag.Bool("json", false, "emit the measurement report as JSON on stdout")
		dumpPro = flag.Bool("dump-protocol", false, "print the coherence transition tables and exit")
	)
	flag.Parse()

	if *dumpPro {
		if err := proto.WriteTables(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dsmsim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateApp(*app); err != nil {
		fail(err)
	}
	bar, err := parseBar(*policy, *prim, *variant, *ldex, *drop)
	if err != nil {
		fail(err)
	}
	workload, _ := exper.ParseApp(*app)

	// In -json mode stdout carries exactly one JSON report; the human
	// summary and trace lines go to stderr so the output stays parseable.
	summary := os.Stdout
	if *asJSON {
		summary = os.Stderr
	}

	pt := exper.Point{
		App:     workload,
		Bar:     bar,
		Scale:   exper.RunOpts{Procs: *procs, Rounds: *rounds, TCSize: *size},
		Pattern: exper.Pattern{Contention: *cont, WriteRun: *wrun, Rounds: *rounds},
	}
	// The machine is built here rather than inside exper.Point.Run so a
	// tracer can be attached before the run and its state read after.
	m := exper.NewMachine(pt.Scale, bar)
	var tr *trace.Buffer
	if *traceN > 0 {
		tr = trace.New(*traceN)
		m.System().SetTracer(tr)
		defer func() {
			fmt.Fprintf(summary, "last %d protocol events:\n", tr.Len())
			tr.WriteTo(summary)
		}()
	}
	res := pt.RunOn(m)

	switch {
	case workload.Synthetic():
		fmt.Fprintf(summary, "updates: %d, elapsed: %d cycles, avg cycles/update: %.1f\n",
			res.Updates, res.Elapsed, res.AvgCycles)
	case workload == exper.AppRCU:
		fmt.Fprintf(summary, "reads+updates: %d, elapsed: %d cycles, torn reads: %d, avg cycles/op: %.1f\n",
			res.Updates, res.Elapsed, res.Work, res.AvgCycles)
	case workload == exper.AppTournament || workload == exper.AppDissemination:
		fmt.Fprintf(summary, "episodes: %d, elapsed: %d cycles, avg cycles/barrier round: %.1f\n",
			res.Updates, res.Elapsed, res.AvgCycles)
	case workload.Workload(): // msqueue, stack
		fmt.Fprintf(summary, "ops: %d, elapsed: %d cycles, retries: %d, avg cycles/op: %.1f\n",
			res.Updates, res.Elapsed, res.Work, res.AvgCycles)
	case workload == exper.AppTClosure:
		fmt.Fprintf(summary, "elapsed: %d cycles, reachable pairs: %d\n", res.Elapsed, res.Work)
	case workload == exper.AppLocusRoute:
		fmt.Fprintf(summary, "elapsed: %d cycles, wires routed: %d\n", res.Elapsed, res.Work)
	case workload == exper.AppCholesky:
		fmt.Fprintf(summary, "elapsed: %d cycles, columns factored: %d\n", res.Elapsed, res.Work)
	}
	r := report.Collect(m)
	if *asJSON {
		if err := r.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	r.WriteText(os.Stdout)
}
