package check

import "dsm/internal/arch"

// This file is the reference side of the property tests: a naive
// linearizability checker that enumerates every real-time-respecting
// permutation of a (small) history and replays it against a sequential
// model. No pruning beyond the real-time candidate rule, no memoization,
// no object-specific shortcuts — slow, obviously correct, and sharing no
// code with the production checkers, which are property-tested against it
// on randomized histories.

// stepFunc replays one operation against a sequential model state,
// reporting whether the operation is legal there and the successor state.
// Implementations must not mutate the input state.
type stepFunc func(state []arch.Word, op Op) ([]arch.Word, bool)

// counterStep models a fetch-and-increment counter starting at 0;
// state[0] is the current count.
func counterStep(state []arch.Word, op Op) ([]arch.Word, bool) {
	switch op.Kind {
	case Inc:
		if op.Value != state[0] {
			return nil, false
		}
		return []arch.Word{state[0] + 1}, true
	case Read:
		return state, op.Value == state[0]
	}
	return nil, false
}

// queueStep models a FIFO queue starting empty; state is front-first.
func queueStep(state []arch.Word, op Op) ([]arch.Word, bool) {
	switch op.Kind {
	case Enq:
		return append(append([]arch.Word{}, state...), op.Value), true
	case Deq:
		if len(state) == 0 || state[0] != op.Value {
			return nil, false
		}
		return append([]arch.Word{}, state[1:]...), true
	case DeqEmpty:
		return state, len(state) == 0
	}
	return nil, false
}

// stackStep models a LIFO stack starting empty; state is bottom-first.
func stackStep(state []arch.Word, op Op) ([]arch.Word, bool) {
	switch op.Kind {
	case Push:
		return append(append([]arch.Word{}, state...), op.Value), true
	case Pop:
		if n := len(state); n == 0 || state[n-1] != op.Value {
			return nil, false
		}
		return append([]arch.Word{}, state[:len(state)-1]...), true
	case PopEmpty:
		return state, len(state) == 0
	}
	return nil, false
}

// referenceLinearizable reports whether some permutation of ops that
// respects real-time order (an op responded strictly before another was
// invoked must come first) replays legally through step from the empty
// state. Exponential; intended for histories of at most ~10 operations.
func referenceLinearizable(ops []Op, step stepFunc, initial []arch.Word) bool {
	used := make([]bool, len(ops))
	var rec func(remaining int, state []arch.Word) bool
	rec = func(remaining int, state []arch.Word) bool {
		if remaining == 0 {
			return true
		}
		for i := range ops {
			if used[i] {
				continue
			}
			blocked := false
			for j := range ops {
				if !used[j] && j != i && ops[j].Respond < ops[i].Invoke {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			next, ok := step(state, ops[i])
			if !ok {
				continue
			}
			used[i] = true
			if rec(remaining-1, next) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(len(ops), initial)
}
