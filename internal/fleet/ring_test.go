package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real spec keys: hex SHA-256 content addresses.
		sum := sha256.Sum256([]byte(fmt.Sprintf("spec-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func backendNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://b%d.fleet:8080", i)
	}
	return out
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	backends := backendNames(4)
	r := newRing(backends, 0)
	for _, key := range ringKeys(200) {
		o := r.owners(key, 2)
		if len(o) != 2 || o[0] == o[1] {
			t.Fatalf("owners(%s) = %v", key, o)
		}
		if again := r.owners(key, 2); o[0] != again[0] || o[1] != again[1] {
			t.Fatalf("owners(%s) unstable: %v vs %v", key, o, again)
		}
	}
	// A single-backend ring still answers, and never repeats.
	solo := newRing(backendNames(1), 0)
	if o := solo.owners(ringKeys(1)[0], 2); len(o) != 1 || o[0] != 0 {
		t.Fatalf("solo owners = %v", o)
	}
}

func TestRingPlacementIgnoresListOrder(t *testing.T) {
	// Placement must hash backend names, not positions: the same fleet
	// listed in a different order gives every key the same primary.
	a := []string{"http://b0:1", "http://b1:1", "http://b2:1"}
	b := []string{"http://b2:1", "http://b0:1", "http://b1:1"}
	ra, rb := newRing(a, 0), newRing(b, 0)
	for _, key := range ringKeys(500) {
		pa := a[ra.owners(key, 1)[0]]
		pb := b[rb.owners(key, 1)[0]]
		if pa != pb {
			t.Fatalf("key %s: primary %s vs %s after reorder", key, pa, pb)
		}
	}
}

func TestRingRemapBoundedOnRemove(t *testing.T) {
	backends := backendNames(4)
	keys := ringKeys(2000)
	before := newRing(backends, 0)
	after := newRing(backends[:3], 0) // backend 3 removed

	moved := 0
	for _, key := range keys {
		pOld := before.owners(key, 1)[0]
		pNew := after.owners(key, 1)[0]
		if pOld != 3 {
			// Consistent hashing's defining guarantee: a key not owned by
			// the removed backend must keep its primary exactly.
			if pNew != pOld {
				t.Fatalf("key %s moved %d -> %d though backend 3 was removed", key, pOld, pNew)
			}
			continue
		}
		moved++
	}
	// The removed backend's share of the keyspace: ~1/4, with slack for
	// vnode placement variance.
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("remap fraction %.3f outside [0.10, 0.45]: ring badly balanced", frac)
	}
}

func TestRingRemapBoundedOnAdd(t *testing.T) {
	keys := ringKeys(2000)
	before := newRing(backendNames(4), 0)
	after := newRing(backendNames(5), 0) // backend 4 added

	moved := 0
	for _, key := range keys {
		pOld := before.owners(key, 1)[0]
		pNew := after.owners(key, 1)[0]
		if pNew != pOld {
			// Keys may only move *to* the new backend.
			if pNew != 4 {
				t.Fatalf("key %s moved %d -> %d, not to the new backend", key, pOld, pNew)
			}
			moved++
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.08 || frac > 0.40 {
		t.Fatalf("remap fraction %.3f outside [0.08, 0.40] after add", frac)
	}
}

func TestRingBalance(t *testing.T) {
	backends := backendNames(4)
	r := newRing(backends, 0)
	counts := make([]int, len(backends))
	keys := ringKeys(4000)
	for _, key := range keys {
		counts[r.owners(key, 1)[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("backend %d owns %.3f of the keyspace: %v", i, frac, counts)
		}
	}
}

func TestHotTrackerPromotionAndBound(t *testing.T) {
	h := newHotTracker(4, 3)
	for i := 0; i < 2; i++ {
		if hot, promoted := h.touch("k"); hot || promoted {
			t.Fatalf("touch %d: hot=%v promoted=%v before threshold", i, hot, promoted)
		}
	}
	if hot, promoted := h.touch("k"); !hot || !promoted {
		t.Fatal("third touch did not promote")
	}
	if hot, promoted := h.touch("k"); !hot || promoted {
		t.Fatal("promotion must fire exactly once")
	}
	// The table is space-bounded: churning many cold keys through a cap-4
	// tracker must not grow it, and the hot key, kept warm, must survive.
	for i := 0; i < 100; i++ {
		h.touch(fmt.Sprintf("cold-%d", i))
		h.touch("k")
	}
	tracked, hot := h.stats()
	if tracked > 4 {
		t.Fatalf("tracked %d keys, cap 4", tracked)
	}
	if hot != 1 {
		t.Fatalf("hot keys = %d, want the surviving promoted key", hot)
	}
	// Disabled tracker (threshold <= 0) is inert.
	off := newHotTracker(4, -1)
	for i := 0; i < 10; i++ {
		if hot, promoted := off.touch("k"); hot || promoted {
			t.Fatal("disabled tracker promoted a key")
		}
	}
}
