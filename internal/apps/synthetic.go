// Package apps contains the paper's workloads: the three synthetic
// applications used for the controlled measurements of figures 3-5 (a
// lock-free counter, a counter under a test-and-test-and-set lock, and a
// counter under an MCS lock), and the three "real" applications of figures
// 2 and 6 (Transitive Closure, implemented in full from the paper's figure
// 1, plus LocusRoute-like and Cholesky-like kernels that reproduce the
// sharing patterns the paper measured in the SPLASH originals).
package apps

import (
	"fmt"

	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// Pattern describes the sharing pattern a synthetic run enforces, mirroring
// the paper's parameters: p processors, contention level c, and average
// write-run length a.
type Pattern struct {
	// Contention is the number of processors concurrently updating the
	// counter in each round (the paper's c). 1 means no contention.
	Contention int
	// WriteRun is the average number of consecutive updates by the active
	// processor per turn (the paper's a); meaningful when Contention is 1.
	// Fractional averages (e.g. 1.5) alternate shorter and longer runs.
	WriteRun float64
	// Rounds is the number of barrier-separated rounds to execute.
	Rounds int
}

// String renders the pattern as the paper labels its graphs.
func (pat Pattern) String() string {
	if pat.Contention <= 1 {
		return fmt.Sprintf("c=1 a=%g", pat.WriteRun)
	}
	return fmt.Sprintf("c=%d", pat.Contention)
}

// SyntheticResult reports a synthetic run's measurements.
type SyntheticResult struct {
	Updates uint64   // counter updates performed
	Elapsed sim.Time // simulated cycles for the whole run
	// AvgCycles is the elapsed time averaged over counter updates — the
	// y-axis of figures 3, 4, and 5.
	AvgCycles float64
}

// runsFor returns how many consecutive updates the active processor
// performs in the given round to achieve the pattern's average write-run
// length: with a = n + f, a fraction f of turns perform n+1 updates.
func (pat Pattern) runsFor(round int) int {
	a := pat.WriteRun
	if a < 1 {
		a = 1
	}
	n := int(a)
	frac := a - float64(n)
	// Spread the longer turns evenly: turn r is long when the accumulated
	// fraction crosses an integer boundary.
	if int(float64(round+1)*frac) > int(float64(round)*frac) {
		return n + 1
	}
	return n
}

// RunSynthetic drives update on m's processors under the given sharing
// pattern. Each round is separated by the MINT constant-time barrier, as
// in the paper's methodology; update is invoked once per counter update.
func RunSynthetic(m *machine.Machine, pat Pattern, update func(p *machine.Proc)) SyntheticResult {
	procs := m.Procs()
	c := pat.Contention
	if c < 1 {
		c = 1
	}
	if c > procs {
		c = procs
	}
	var updates uint64
	elapsed := m.Run(func(p *machine.Proc) {
		for round := 0; round < pat.Rounds; round++ {
			if c == 1 {
				// No contention: one processor per round, performing a
				// write run; ownership rotates so data changes hands.
				if p.ID() == round%procs {
					runs := pat.runsFor(round)
					for u := 0; u < runs; u++ {
						update(p)
						updates++
					}
				}
			} else {
				// Contention: c processors update concurrently; the active
				// window rotates across rounds.
				if (p.ID()-round*c%procs+procs)%procs < c {
					update(p)
					updates++
				}
			}
			p.Barrier()
		}
	})
	res := SyntheticResult{Updates: updates, Elapsed: elapsed}
	if updates > 0 {
		res.AvgCycles = float64(elapsed) / float64(updates)
	}
	return res
}

// CounterApp is the paper's first synthetic application: a lock-free
// counter updated with the primitive family under study.
func CounterApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern) SyntheticResult {
	c := locks.NewCounter(m, policy, opts)
	return RunSynthetic(m, pat, func(p *machine.Proc) { c.Inc(p) })
}

// TTSApp is the second synthetic application: a counter protected by a
// test-and-test-and-set lock with bounded exponential backoff. The counter
// itself is ordinary (INV) data; only the lock uses the policy under study.
func TTSApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern) SyntheticResult {
	l := locks.NewTTSLock(m, policy, opts)
	counter := m.Alloc(4)
	return RunSynthetic(m, pat, func(p *machine.Proc) {
		l.Acquire(p)
		p.Store(counter, p.Load(counter)+1)
		l.Release(p)
	})
}

// MCSApp is the third synthetic application: a counter protected by an MCS
// queue lock, exercising the case where load_linked/store_conditional
// simulates compare_and_swap (the release path).
func MCSApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern) SyntheticResult {
	l := locks.NewMCSLock(m, policy, opts)
	counter := m.Alloc(4)
	return RunSynthetic(m, pat, func(p *machine.Proc) {
		l.Acquire(p)
		p.Store(counter, p.Load(counter)+1)
		l.Release(p)
	})
}
