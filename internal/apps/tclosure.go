package apps

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// TClosureConfig parameterizes the Transitive Closure application.
type TClosureConfig struct {
	Size   int           // number of graph vertices
	Policy core.Policy   // coherence policy for the job counter
	Opts   locks.Options // primitive family (FAP / CAS / LLSC) and auxiliaries
	Seed   uint64        // input graph seed
	// EdgeDenom controls input density: edge (i,j) exists when
	// rng % EdgeDenom == 0 (default 4).
	EdgeDenom int
}

// TClosureResult reports the run.
type TClosureResult struct {
	Elapsed   sim.Time
	Reachable int // TRUE entries in the closure (validation aid)
}

// TClosure runs the paper's transitive-closure application (its figure 1):
// a Floyd-Warshall-style boolean closure over a shared adjacency matrix,
// with variable-size input-dependent jobs distributed through a lock-free
// counter and rounds separated by the scalable tree barrier.
func TClosure(m *machine.Machine, cfg TClosureConfig) TClosureResult {
	if cfg.Size <= 0 {
		panic("apps: TClosure size must be positive")
	}
	if cfg.EdgeDenom <= 0 {
		cfg.EdgeDenom = 4
	}
	size := cfg.Size
	procs := m.Procs()

	e := m.Alloc(uint32(size * size * arch.WordBytes))
	cell := func(i, j int) arch.Addr {
		return e + arch.Addr((i*size+j)*arch.WordBytes)
	}
	initTClosureInput(m, cell, size, cfg.Seed, cfg.EdgeDenom)

	counter := m.AllocSync(cfg.Policy)
	flag := m.Alloc(4)
	bar := locks.NewTreeBarrier(m)

	elapsed := m.Run(func(p *machine.Proc) {
		pid := p.ID()
		for i := 0; i < size; i++ {
			if pid == 0 {
				p.Store(counter, 0)
				p.Store(flag, 0)
			}
			row, rows := 0, 0
			bar.Wait(p)
			for p.Load(flag) == 0 {
				rows = ((size-row-rows-1)>>1)/procs + 1
				row = int(cfg.Opts.FetchAdd(p, counter, arch.Word(rows)))
				if row >= size {
					p.Store(flag, 1)
					break
				}
				work := rows
				if size-row < work {
					work = size - row
				}
				for j := row; j < row+work; j++ {
					if p.Load(cell(j, i)) != 0 && i != j {
						for k := 0; k < size; k++ {
							p.Compute(1)
							if p.Load(cell(i, k)) != 0 {
								p.Store(cell(j, k), 1)
							}
						}
					}
					p.Compute(2)
				}
			}
			bar.Wait(p)
		}
	})

	reach := 0
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if m.Peek(cell(i, j)) != 0 {
				reach++
			}
		}
	}
	return TClosureResult{Elapsed: elapsed, Reachable: reach}
}

// initTClosureInput pokes a deterministic sparse directed graph into the
// shared matrix.
func initTClosureInput(m *machine.Machine, cell func(i, j int) arch.Addr, size int, seed uint64, denom int) {
	rng := sim.NewRNG(seed ^ 0x7c105)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i == j || rng.Intn(denom) == 0 {
				m.Poke(cell(i, j), 1)
			}
		}
	}
}

// TClosureReference computes the closure of the same input in plain Go, for
// validating the simulated run.
func TClosureReference(size int, seed uint64, denom int) int {
	if denom <= 0 {
		denom = 4
	}
	adj := make([][]bool, size)
	rng := sim.NewRNG(seed ^ 0x7c105)
	for i := range adj {
		adj[i] = make([]bool, size)
		for j := range adj[i] {
			if i == j || rng.Intn(denom) == 0 {
				adj[i][j] = true
			}
		}
	}
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if adj[j][i] && i != j {
				for k := 0; k < size; k++ {
					if adj[i][k] {
						adj[j][k] = true
					}
				}
			}
		}
	}
	n := 0
	for i := range adj {
		for j := range adj[i] {
			if adj[i][j] {
				n++
			}
		}
	}
	return n
}
