// Primitives: reproduce the paper's core comparison in miniature. A shared
// counter is updated under contention by fetch_and_add, compare_and_swap,
// and load_linked/store_conditional, under each coherence policy, with and
// without the auxiliary load_exclusive instruction — a small slice of the
// paper's Figure 3.
package main

import (
	"fmt"

	"dsm"
)

func main() {
	const procs, rounds = 32, 10
	pattern := dsm.Pattern{Contention: procs, Rounds: rounds}

	type variant struct {
		name   string
		policy dsm.Policy
		opts   dsm.Options
	}
	variants := []variant{
		{"UNC fetch_and_add", dsm.UNC, dsm.Options{Prim: dsm.FAP}},
		{"INV fetch_and_add", dsm.INV, dsm.Options{Prim: dsm.FAP}},
		{"UPD fetch_and_add", dsm.UPD, dsm.Options{Prim: dsm.FAP}},
		{"INV compare_and_swap", dsm.INV, dsm.Options{Prim: dsm.CAS}},
		{"INV compare_and_swap + load_exclusive", dsm.INV,
			dsm.Options{Prim: dsm.CAS, UseLoadExclusive: true}},
		{"INV load_linked/store_conditional", dsm.INV, dsm.Options{Prim: dsm.LLSC}},
		{"UNC load_linked/store_conditional", dsm.UNC, dsm.Options{Prim: dsm.LLSC}},
	}

	fmt.Printf("lock-free counter, %d processors all contending (avg cycles/update):\n", procs)
	for _, v := range variants {
		m := dsm.NewSmall(procs)
		res := dsm.CounterApp(m, v.policy, v.opts, pattern)
		fmt.Printf("  %-42s %8.1f\n", v.name, res.AvgCycles)
	}

	// The paper's conclusion in one contrast: a migratory read-modify-write
	// done with plain-load+CAS pays an upgrade miss on every CAS; reading
	// with load_exclusive makes the CAS a local hit.
	m := dsm.NewSmall(2)
	a := m.AllocSyncAt(1, dsm.INV) // homed away from the requester
	progs := make([]func(*dsm.Proc), m.Procs())
	progs[0] = func(p *dsm.Proc) {
		v := p.Load(a)
		chainPlain := p.Do(dsm.Request{Op: dsm.OpCAS, Addr: a, Val: v, Val2: v + 1}).Chain
		v = p.LoadExclusive(a)
		chainLdex := p.Do(dsm.Request{Op: dsm.OpCAS, Addr: a, Val: v, Val2: v + 1}).Chain
		fmt.Printf("\nserialized messages for one CAS: after plain load %d, after load_exclusive %d\n",
			chainPlain, chainLdex)
	}
	m.RunEach(progs)
}
