// Command dsmrouter is the fleet front door: an HTTP router that spreads
// the spec keyspace across N dsmserve backends with a consistent-hash
// ring, coalesces concurrent identical misses fleet-wide, rescues primary
// misses from peer caches, and replicates hot keys to every backend. It
// exposes the same /v1 surface as a single dsmserve, byte-identical.
//
//	dsmserve -addr :8081 & dsmserve -addr :8082 &
//	dsmrouter -addr :8080 -backends http://localhost:8081,http://localhost:8082
//
//	curl -s 'localhost:8080/v1/sim?app=counter&policy=UNC&prim=FAP&procs=16&c=8'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: /healthz flips to 503 (so a balancer
// stops sending), the listener stops accepting, in-flight relays finish,
// then the process exits 0. The backends drain themselves.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof listener only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dsm/internal/fleet"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		backends = flag.String("backends", "", "comma-separated dsmserve base URLs (required)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = 128)")
		hot      = flag.Int("hot", 0, "per-key request count that triggers fleet-wide replication (0 = 64, negative disables)")
		hotTrack = flag.Int("hot-track", 0, "keys the hot counter follows, LRU beyond (0 = 4096)")
		timeout  = flag.Duration("timeout", 0, "per-upstream-request budget (0 = 60s)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		pprof    = flag.String("pprof", "", "serve /debug/pprof on this address (e.g. localhost:6061; empty disables)")
	)
	flag.Parse()
	log.SetPrefix("dsmrouter: ")
	log.SetFlags(0)

	if *pprof != "" {
		// Separate listener: profiling stays off the routing address, so
		// exposing it never widens the public API surface.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprof)
			log.Printf("pprof listener: %v", http.ListenAndServe(*pprof, nil))
		}()
	}

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	rt, err := fleet.New(fleet.Config{
		Backends:     list,
		VNodes:       *vnodes,
		HotThreshold: *hot,
		HotTrack:     *hotTrack,
		Timeout:      *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("routing %d backends on %s", len(list), *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	// Drain: refuse new routing work (healthz goes 503 first, so a
	// load balancer can eject this router), then let in-flight relays
	// and sweep streams finish.
	log.Printf("draining (budget %s)", *drain)
	rt.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	m := rt.Metrics()
	fmt.Fprintf(os.Stderr,
		"dsmrouter: routed %d requests (%d hits, %d coalesced, %d peer fills, %d replicated, %d misses), clean exit\n",
		m.Requests, m.Hits, m.Coalesced, m.PeerFills, m.Replications, m.Misses)
}
