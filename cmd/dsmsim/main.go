// Command dsmsim runs a single workload configuration on the simulated DSM
// multiprocessor and prints its measurements: elapsed cycles, average
// cycles per update, protocol counters, network traffic, the contention
// histogram, and the average write-run length.
//
// Examples:
//
//	dsmsim -app counter -policy UNC -prim FAP -c 64
//	dsmsim -app mcs -policy INV -prim CAS -ldex -a 2
//	dsmsim -app tclosure -prim LLSC -size 32
package main

import (
	"flag"
	"fmt"
	"os"

	"dsm/internal/apps"
	"dsm/internal/core"
	"dsm/internal/figures"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/report"
	"dsm/internal/trace"
)

func main() {
	var (
		app     = flag.String("app", "counter", "workload: counter, tts, mcs, tclosure, locusroute, cholesky")
		policy  = flag.String("policy", "INV", "coherence policy for sync data: INV, UPD, UNC")
		prim    = flag.String("prim", "FAP", "primitive family: FAP, CAS, LLSC")
		variant = flag.String("cas", "INV", "compare_and_swap variant: INV, INVd, INVs")
		ldex    = flag.Bool("ldex", false, "pair CAS with load_exclusive")
		drop    = flag.Bool("drop", false, "issue drop_copy after updates")
		procs   = flag.Int("procs", 64, "simulated processors (1-64)")
		cont    = flag.Int("c", 1, "contention level (synthetic apps)")
		wrun    = flag.Float64("a", 1, "average write-run length (synthetic apps, c=1)")
		rounds  = flag.Int("rounds", 16, "barrier-separated rounds (synthetic apps)")
		size    = flag.Int("size", 32, "transitive-closure vertices")
		traceN  = flag.Int("trace", 0, "print the last N protocol events")
	)
	flag.Parse()

	bar := figures.Bar{
		Policy:  parsePolicy(*policy),
		Prim:    parsePrim(*prim),
		Variant: parseVariant(*variant),
		LoadEx:  *ldex,
		Drop:    *drop,
	}
	o := figures.RunOpts{Procs: *procs, Rounds: *rounds, TCSize: *size}
	m := figures.NewMachine(o, bar)
	var tr *trace.Buffer
	if *traceN > 0 {
		tr = trace.New(*traceN)
		m.System().SetTracer(tr)
		defer func() {
			fmt.Printf("last %d protocol events:\n", tr.Len())
			tr.WriteTo(os.Stdout)
		}()
	}
	pat := apps.Pattern{Contention: *cont, WriteRun: *wrun, Rounds: *rounds}

	switch *app {
	case "counter":
		printSynthetic(m, apps.CounterApp(m, bar.Policy, bar.Opts(), pat))
	case "tts":
		printSynthetic(m, apps.TTSApp(m, bar.Policy, bar.Opts(), pat))
	case "mcs":
		printSynthetic(m, apps.MCSApp(m, bar.Policy, bar.Opts(), pat))
	case "tclosure":
		res := apps.TClosure(m, apps.TClosureConfig{
			Size: *size, Policy: bar.Policy, Opts: bar.Opts(), Seed: 11,
		})
		fmt.Printf("elapsed: %d cycles, reachable pairs: %d\n", res.Elapsed, res.Reachable)
		stats(m)
	case "locusroute":
		cfg := apps.DefaultLocusRoute(*procs)
		cfg.Policy, cfg.Opts = bar.Policy, bar.Opts()
		res := apps.LocusRoute(m, cfg)
		fmt.Printf("elapsed: %d cycles, wires routed: %d\n", res.Elapsed, res.Work)
		stats(m)
	case "cholesky":
		cfg := apps.DefaultCholesky(*procs)
		cfg.Policy, cfg.Opts = bar.Policy, bar.Opts()
		res := apps.Cholesky(m, cfg)
		fmt.Printf("elapsed: %d cycles, columns factored: %d\n", res.Elapsed, res.Work)
		stats(m)
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		flag.Usage()
		os.Exit(2)
	}
}

func printSynthetic(m *machine.Machine, res apps.SyntheticResult) {
	fmt.Printf("updates: %d, elapsed: %d cycles, avg cycles/update: %.1f\n",
		res.Updates, res.Elapsed, res.AvgCycles)
	stats(m)
}

func stats(m *machine.Machine) {
	report.Collect(m).WriteText(os.Stdout)
}

func parsePolicy(s string) core.Policy {
	switch s {
	case "INV":
		return core.PolicyINV
	case "UPD":
		return core.PolicyUPD
	case "UNC":
		return core.PolicyUNC
	}
	fmt.Fprintf(os.Stderr, "unknown policy %q\n", s)
	os.Exit(2)
	return 0
}

func parsePrim(s string) locks.Prim {
	switch s {
	case "FAP":
		return locks.PrimFAP
	case "CAS":
		return locks.PrimCAS
	case "LLSC":
		return locks.PrimLLSC
	}
	fmt.Fprintf(os.Stderr, "unknown primitive %q\n", s)
	os.Exit(2)
	return 0
}

func parseVariant(s string) core.CASVariant {
	switch s {
	case "INV":
		return core.CASPlain
	case "INVd":
		return core.CASDeny
	case "INVs":
		return core.CASShare
	}
	fmt.Fprintf(os.Stderr, "unknown CAS variant %q\n", s)
	os.Exit(2)
	return 0
}
