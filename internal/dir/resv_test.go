package dir

import (
	"testing"
	"testing/quick"

	"dsm/internal/arch"
	"dsm/internal/mesh"
)

func TestBitVectorReserveAndValidate(t *testing.T) {
	r := NewResvState(ResvBitVector, 0)
	for n := mesh.NodeID(0); n < 64; n++ {
		if !r.Reserve(n) {
			t.Fatalf("bit-vector refused reservation for %d", n)
		}
	}
	for n := mesh.NodeID(0); n < 64; n++ {
		if !r.Validate(n, 0) {
			t.Fatalf("node %d lost reservation", n)
		}
	}
	r.OnWrite()
	for n := mesh.NodeID(0); n < 64; n++ {
		if r.Validate(n, 0) {
			t.Fatalf("node %d kept reservation across write", n)
		}
	}
}

func TestLimitedSchemeRefusesBeyondLimit(t *testing.T) {
	r := NewResvState(ResvLimited, 4)
	for n := mesh.NodeID(0); n < 4; n++ {
		if !r.Reserve(n) {
			t.Fatalf("refused within limit at %d", n)
		}
	}
	if r.Reserve(4) {
		t.Fatal("accepted fifth reservation with limit 4")
	}
	// Re-reserving an existing holder is fine even at the limit.
	if !r.Reserve(2) {
		t.Fatal("refused re-reservation by existing holder")
	}
	if r.Validate(4, 0) {
		t.Fatal("beyond-limit node validates")
	}
	r.OnWrite()
	if !r.Reserve(4) {
		t.Fatal("limit not released after write")
	}
}

func TestLimitedPanicsOnBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for limit 0")
		}
	}()
	NewResvState(ResvLimited, 0)
}

func TestSerialSchemeValidatesByWriteCount(t *testing.T) {
	r := NewResvState(ResvSerial, 0)
	s0 := r.Serial()
	if !r.Reserve(9) {
		t.Fatal("serial scheme refused reservation")
	}
	if !r.Validate(9, s0) || !r.Validate(33, s0) {
		t.Fatal("serial validation should not depend on node id")
	}
	r.OnWrite()
	if r.Validate(9, s0) {
		t.Fatal("stale serial validated")
	}
	if !r.Validate(9, r.Serial()) {
		t.Fatal("current serial rejected")
	}
}

func TestSerialWrapAround(t *testing.T) {
	r := NewResvState(ResvSerial, 0)
	r.serial = ^arch.Word(0)
	s := r.Serial()
	r.OnWrite()
	if r.Serial() != 0 {
		t.Fatalf("serial after wrap = %d, want 0", r.Serial())
	}
	if r.Validate(0, s) {
		t.Fatal("pre-wrap serial validated after wrap")
	}
}

func TestHoldersSnapshot(t *testing.T) {
	r := NewResvState(ResvBitVector, 0)
	r.Reserve(1)
	r.Reserve(5)
	h := r.Holders()
	if h.Count() != 2 || !h.Has(1) || !h.Has(5) {
		t.Fatalf("Holders = %b", h)
	}
	if !r.Holds(1) || r.Holds(2) {
		t.Fatal("Holds misreports")
	}
}

func TestSchemeString(t *testing.T) {
	if ResvBitVector.String() != "bitvector" || ResvLimited.String() != "limited" || ResvSerial.String() != "serial" {
		t.Fatal("scheme names wrong")
	}
	if ResvScheme(9).String() == "" {
		t.Fatal("unknown scheme has empty name")
	}
}

func TestValidateNeverTrueAfterInterveningWriteProperty(t *testing.T) {
	// Property: for any scheme and any interleaving of reserve/write, a
	// validate after a write that followed the reserve must fail.
	schemes := []ResvScheme{ResvBitVector, ResvLimited, ResvSerial}
	f := func(nRaw uint8, writes uint8) bool {
		n := mesh.NodeID(nRaw % 64)
		for _, sc := range schemes {
			r := NewResvState(sc, 4)
			r.Reserve(n)
			s := r.Serial()
			for i := 0; i < int(writes%5)+1; i++ {
				r.OnWrite()
			}
			if r.Validate(n, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
