// Package dsm is a library-level reproduction of "Implementation of Atomic
// Primitives on Distributed Shared Memory Multiprocessors" (Michael &
// Scott, HPCA 1995).
//
// It provides an execution-driven, cycle-level simulator of a 64-node
// directory-based cache-coherent DSM multiprocessor (32-byte blocks,
// queued memory, 2-D wormhole mesh) and hardware implementations of the
// general-purpose atomic primitives the paper studies — fetch_and_Φ,
// compare_and_swap, and load_linked/store_conditional — under three
// coherence policies for atomically accessed data (INV, UPD, UNC), the
// compare_and_swap variants INVd and INVs, and the auxiliary instructions
// load_exclusive and drop_copy.
//
// Application code runs one goroutine per simulated processor against the
// Proc interface, exactly as the paper drives its back end with MINT:
//
//	m := dsm.New64()
//	counter := m.AllocSync(dsm.INV)
//	m.Run(func(p *dsm.Proc) {
//	    p.FetchAdd(counter, 1)
//	})
//
// Higher-level synchronization (test-and-test-and-set locks with bounded
// exponential backoff, MCS queue locks, scalable tree barriers, lock-free
// counters) and the paper's workloads are re-exported from the internal
// packages, along with the statistics machinery that regenerates every
// table and figure of the paper's evaluation (see EXPERIMENTS.md and
// cmd/figures).
package dsm

import (
	"dsm/internal/apps"
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/dir"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/mesh"
	"dsm/internal/sim"
	"dsm/internal/trace"
)

// Core simulated-machine types.
type (
	// Machine is one simulated DSM multiprocessor.
	Machine = machine.Machine
	// Proc is a simulated processor, the handle application code uses to
	// issue timed memory references.
	Proc = machine.Proc
	// Config selects machine size, timing, and protocol options.
	Config = core.Config
	// Addr is a physical byte address in the simulated shared memory.
	Addr = arch.Addr
	// Word is the 32-bit unit of all memory operations.
	Word = arch.Word
	// Time is simulated time, in processor cycles.
	Time = sim.Time
	// Policy is the coherence policy for atomically accessed data.
	Policy = core.Policy
	// CASVariant selects among the INV-policy compare_and_swap
	// implementations (plain, INVd, INVs).
	CASVariant = core.CASVariant
	// ResvScheme selects the memory-side LL/SC reservation representation.
	ResvScheme = dir.ResvScheme
	// Request and Result expose the raw operation interface, including
	// the serialized-message chain measurements of Table 1.
	Request = core.Request
	Result  = core.Result
	// OpKind identifies a raw memory operation for Request.
	OpKind = core.OpKind
	// NodeID identifies a processing node (for placement-aware allocation
	// with Machine.AllocSyncAt).
	NodeID = mesh.NodeID
)

// Raw operation kinds for Proc.Do.
const (
	OpLoad          = core.OpLoad
	OpStore         = core.OpStore
	OpLoadExclusive = core.OpLoadExclusive
	OpDropCopy      = core.OpDropCopy
	OpFetchAdd      = core.OpFetchAdd
	OpFetchStore    = core.OpFetchStore
	OpFetchOr       = core.OpFetchOr
	OpTestAndSet    = core.OpTestAndSet
	OpCAS           = core.OpCAS
	OpLL            = core.OpLL
	OpSC            = core.OpSC
)

// Synchronization algorithm types (the paper's software layer).
type (
	// Prim selects the primitive family an algorithm is built on.
	Prim = locks.Prim
	// Options tunes primitive use (load_exclusive, drop_copy).
	Options = locks.Options
	// Counter is a lock-free shared counter.
	Counter = locks.Counter
	// TTSLock is a test-and-test-and-set lock with bounded exponential
	// backoff.
	TTSLock = locks.TTSLock
	// MCSLock is the MCS queue-based spin lock.
	MCSLock = locks.MCSLock
	// TreeBarrier is the scalable MCS tree barrier.
	TreeBarrier = locks.TreeBarrier
	// RWLock is a counter-based reader-writer lock.
	RWLock = locks.RWLock
	// Stack is a Treiber-style lock-free stack (demonstrates the paper's
	// section-2.2 pointer/ABA problem; see examples/abaproblem).
	Stack = locks.Stack
	// Queue is a bounded fetch_and_add FIFO queue.
	Queue = locks.Queue
	// CentralBarrier is a sense-reversing centralized barrier.
	CentralBarrier = locks.CentralBarrier
	// PriorityLock grants the lock to the highest-priority waiter.
	PriorityLock = locks.PriorityLock
	// Pattern describes a synthetic workload's sharing pattern (the
	// paper's contention level c and write-run length a).
	Pattern = apps.Pattern
	// SyntheticResult reports a synthetic workload run.
	SyntheticResult = apps.SyntheticResult
)

// Coherence policies for atomically accessed data.
const (
	// INV: primitives execute in the cache controllers under
	// write-invalidate — the paper's recommended implementation.
	INV = core.PolicyINV
	// UPD: primitives execute at the memory under write-update.
	UPD = core.PolicyUPD
	// UNC: primitives execute at the memory; the data is never cached.
	UNC = core.PolicyUNC
)

// Primitive families.
const (
	// FAP is the fetch_and_Φ family (fetch_and_add, fetch_and_store,
	// fetch_and_or, test_and_set).
	FAP = locks.PrimFAP
	// CAS is compare_and_swap.
	CAS = locks.PrimCAS
	// LLSC is load_linked/store_conditional.
	LLSC = locks.PrimLLSC
)

// compare_and_swap implementation variants (Config.CAS).
const (
	CASPlain = core.CASPlain
	CASDeny  = core.CASDeny
	CASShare = core.CASShare
)

// Memory-side LL/SC reservation schemes (Config.ResvScheme).
const (
	ResvBitVector = dir.ResvBitVector
	ResvLimited   = dir.ResvLimited
	ResvSerial    = dir.ResvSerial
)

// DefaultConfig returns the paper's machine: 64 nodes, 8x8 wormhole mesh,
// 32-byte blocks, queued memory.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewMachine builds a machine from a configuration.
func NewMachine(cfg Config) *Machine { return machine.New(cfg) }

// New64 builds the paper's 64-processor machine with default settings.
func New64() *Machine { return machine.New(core.DefaultConfig()) }

// NewSmall builds an n-processor machine (n up to 64) on the smallest
// square mesh that fits — convenient for tests and examples.
func NewSmall(n int) *Machine {
	cfg := core.DefaultConfig()
	cfg.Nodes = n
	w := 1
	for w*w < n {
		w++
	}
	cfg.Mesh.Width, cfg.Mesh.Height = w, (n+w-1)/w
	if cfg.Mesh.Width*cfg.Mesh.Height < n {
		cfg.Mesh.Height++
	}
	return machine.New(cfg)
}

// NewCounter allocates a lock-free counter under the given policy.
func NewCounter(m *Machine, policy Policy, opts Options) *Counter {
	return locks.NewCounter(m, policy, opts)
}

// NewTTSLock allocates a test-and-test-and-set lock with bounded
// exponential backoff.
func NewTTSLock(m *Machine, policy Policy, opts Options) *TTSLock {
	return locks.NewTTSLock(m, policy, opts)
}

// NewMCSLock allocates an MCS queue lock.
func NewMCSLock(m *Machine, policy Policy, opts Options) *MCSLock {
	return locks.NewMCSLock(m, policy, opts)
}

// NewTreeBarrier allocates a scalable tree barrier over all processors.
func NewTreeBarrier(m *Machine) *TreeBarrier {
	return locks.NewTreeBarrier(m)
}

// NewRWLock allocates a reader-writer lock.
func NewRWLock(m *Machine, policy Policy, opts Options) *RWLock {
	return locks.NewRWLock(m, policy, opts)
}

// NewStack allocates a lock-free stack with the given node capacity.
func NewStack(m *Machine, policy Policy, capacity int, opts Options) *Stack {
	return locks.NewStack(m, policy, capacity, opts)
}

// NewQueue allocates a bounded fetch_and_add FIFO queue (Gottlieb et al.,
// the paper's reference [9]).
func NewQueue(m *Machine, policy Policy, slots int, opts Options) *Queue {
	return locks.NewQueue(m, policy, slots, opts)
}

// NewCentralBarrier allocates a sense-reversing centralized barrier (the
// tree barrier's foil in the barrier ablation).
func NewCentralBarrier(m *Machine, policy Policy, opts Options) *CentralBarrier {
	return locks.NewCentralBarrier(m, policy, opts)
}

// NewPriorityLock allocates a priority-granting lock.
func NewPriorityLock(m *Machine, policy Policy, opts Options) *PriorityLock {
	return locks.NewPriorityLock(m, policy, opts)
}

// Trace is a bounded ring buffer of protocol events for debugging and
// teaching; attach one with AttachTrace.
type Trace = trace.Buffer

// AttachTrace installs a protocol-event trace retaining the most recent
// capacity events and returns it.
func AttachTrace(m *Machine, capacity int) *Trace {
	t := trace.New(capacity)
	m.System().SetTracer(t)
	return t
}

// RunSynthetic drives one update function under a sharing pattern, as the
// paper's synthetic applications do (barrier-separated rounds).
func RunSynthetic(m *Machine, pat Pattern, update func(p *Proc)) SyntheticResult {
	return apps.RunSynthetic(m, pat, update)
}

// CounterApp, TTSApp, and MCSApp are the paper's three synthetic
// applications (figures 3, 4, and 5).
func CounterApp(m *Machine, policy Policy, opts Options, pat Pattern) SyntheticResult {
	return apps.CounterApp(m, policy, opts, pat)
}

// TTSApp runs the counter-under-TTS-lock synthetic application.
func TTSApp(m *Machine, policy Policy, opts Options, pat Pattern) SyntheticResult {
	return apps.TTSApp(m, policy, opts, pat)
}

// MCSApp runs the counter-under-MCS-lock synthetic application.
func MCSApp(m *Machine, policy Policy, opts Options, pat Pattern) SyntheticResult {
	return apps.MCSApp(m, policy, opts, pat)
}
