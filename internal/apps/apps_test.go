package apps

import (
	"testing"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

func newM(procs int) *machine.Machine {
	cfg := core.DefaultConfig()
	cfg.Nodes = procs
	switch {
	case procs <= 4:
		cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	case procs <= 16:
		cfg.Mesh.Width, cfg.Mesh.Height = 4, 4
	default:
		cfg.Mesh.Width, cfg.Mesh.Height = 8, 8
	}
	return machine.New(cfg)
}

// --------------------------------------------------------- synthetic ----

func TestPatternRunsForAveragesToWriteRun(t *testing.T) {
	for _, a := range []float64{1, 1.5, 2, 3, 10} {
		pat := Pattern{Contention: 1, WriteRun: a}
		total := 0
		const rounds = 1000
		for r := 0; r < rounds; r++ {
			total += pat.runsFor(r)
		}
		got := float64(total) / rounds
		if got < a-0.01 || got > a+0.01 {
			t.Errorf("a=%g: average run %g", a, got)
		}
	}
}

func TestPatternString(t *testing.T) {
	if (Pattern{Contention: 1, WriteRun: 1.5}).String() != "c=1 a=1.5" {
		t.Fatal("no-contention label wrong")
	}
	if (Pattern{Contention: 16}).String() != "c=16" {
		t.Fatal("contention label wrong")
	}
}

func TestCounterAppNoContention(t *testing.T) {
	m := newM(4)
	res := CounterApp(m, core.PolicyINV, locks.Options{Prim: locks.PrimFAP},
		Pattern{Contention: 1, WriteRun: 2, Rounds: 8})
	if res.Updates != 16 {
		t.Fatalf("updates = %d, want 16 (8 rounds x run 2)", res.Updates)
	}
	if res.AvgCycles <= 0 {
		t.Fatal("no cycles measured")
	}
}

func TestCounterAppContention(t *testing.T) {
	m := newM(4)
	res := CounterApp(m, core.PolicyUNC, locks.Options{Prim: locks.PrimFAP},
		Pattern{Contention: 4, Rounds: 5})
	if res.Updates != 20 {
		t.Fatalf("updates = %d, want 20", res.Updates)
	}
}

func TestCounterAppAllPrimsProduceCorrectCount(t *testing.T) {
	for _, prim := range []locks.Prim{locks.PrimFAP, locks.PrimCAS, locks.PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			m := newM(4)
			pat := Pattern{Contention: 2, Rounds: 6}
			res := CounterApp(m, core.PolicyINV, locks.Options{Prim: prim}, pat)
			if res.Updates != 12 {
				t.Fatalf("updates = %d", res.Updates)
			}
		})
	}
}

func TestTTSAppCountsAllUpdates(t *testing.T) {
	m := newM(4)
	res := TTSApp(m, core.PolicyINV, locks.Options{Prim: locks.PrimCAS},
		Pattern{Contention: 4, Rounds: 4})
	if res.Updates != 16 {
		t.Fatalf("updates = %d", res.Updates)
	}
}

func TestMCSAppCountsAllUpdates(t *testing.T) {
	m := newM(4)
	res := MCSApp(m, core.PolicyINV, locks.Options{Prim: locks.PrimLLSC},
		Pattern{Contention: 4, Rounds: 4})
	if res.Updates != 16 {
		t.Fatalf("updates = %d", res.Updates)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	run := func() float64 {
		m := newM(8)
		return CounterApp(m, core.PolicyINV, locks.Options{Prim: locks.PrimCAS},
			Pattern{Contention: 8, Rounds: 6}).AvgCycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("synthetic run not deterministic: %v vs %v", a, b)
	}
}

// ----------------------------------------------------------- closure ----

func TestTClosureMatchesReference(t *testing.T) {
	for _, prim := range []locks.Prim{locks.PrimFAP, locks.PrimCAS, locks.PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			m := newM(4)
			cfg := TClosureConfig{Size: 12, Policy: core.PolicyUNC,
				Opts: locks.Options{Prim: prim}, Seed: 7}
			res := TClosure(m, cfg)
			want := TClosureReference(12, 7, 4)
			if res.Reachable != want {
				t.Fatalf("closure has %d reachable pairs, reference %d", res.Reachable, want)
			}
			if res.Elapsed == 0 {
				t.Fatal("no time elapsed")
			}
			m.System().CheckCoherence()
		})
	}
}

func TestTClosureAllPoliciesAgree(t *testing.T) {
	var got []int
	for _, pol := range []core.Policy{core.PolicyINV, core.PolicyUPD, core.PolicyUNC} {
		m := newM(4)
		res := TClosure(m, TClosureConfig{Size: 10, Policy: pol,
			Opts: locks.Options{Prim: locks.PrimFAP}, Seed: 3})
		got = append(got, res.Reachable)
	}
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("policies disagree on the closure: %v", got)
	}
}

func TestTClosureDenseGraphSaturates(t *testing.T) {
	m := newM(4)
	res := TClosure(m, TClosureConfig{Size: 8, Policy: core.PolicyUNC,
		Opts: locks.Options{Prim: locks.PrimFAP}, Seed: 1, EdgeDenom: 2})
	want := TClosureReference(8, 1, 2)
	if res.Reachable != want {
		t.Fatalf("reachable = %d, want %d", res.Reachable, want)
	}
}

// ---------------------------------------------------------- substitutes --

func TestLocusRouteRoutesEveryWire(t *testing.T) {
	m := newM(8)
	cfg := DefaultLocusRoute(8)
	cfg.Policy = core.PolicyINV
	cfg.Opts = locks.Options{Prim: locks.PrimCAS}
	res := LocusRoute(m, cfg)
	if res.Work != uint64(cfg.Wires) {
		t.Fatalf("routed %d wires, want %d", res.Work, cfg.Wires)
	}
	if res.Elapsed == 0 {
		t.Fatal("no time elapsed")
	}
	m.System().CheckCoherence()
}

func TestLocusRouteSharingPatternMatchesPaper(t *testing.T) {
	// The paper's section 4.2: LocusRoute lock write-run lengths fall in
	// 1.70-1.83 and the contention histogram is dominated by the
	// no-contention case. Validate the substitution reproduces the shape
	// (wide tolerance: 1.2-2.5 and >= 60% uncontended).
	m := newM(8)
	cfg := DefaultLocusRoute(8)
	cfg.Policy = core.PolicyINV
	cfg.Opts = locks.Options{Prim: locks.PrimFAP}
	LocusRoute(m, cfg)
	wr := m.System().WriteRuns()
	wr.Flush()
	if mean := wr.Mean(); mean < 1.2 || mean > 2.5 {
		t.Errorf("lock write-run mean = %.2f, want ~1.7", mean)
	}
	hist := m.System().Contention().Histogram()
	if hist.Total() == 0 {
		t.Fatal("no contention samples")
	}
	if pct := hist.Percent(1); pct < 60 {
		t.Errorf("uncontended accesses = %.1f%%, want dominant", pct)
	}
}

func TestLocusRouteConservation(t *testing.T) {
	// Every wire increments each cell of its chosen L-route exactly once,
	// and both candidate routes have the same length, so the grid total
	// must equal the sum of manhattan distances plus one per wire —
	// regardless of scheduling, contention, or route choices.
	m := newM(8)
	cfg := DefaultLocusRoute(8)
	cfg.Policy = core.PolicyINV
	cfg.Opts = locks.Options{Prim: locks.PrimCAS}
	res := LocusRoute(m, cfg)

	rng := sim.NewRNG(cfg.Seed)
	want := 0
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	for i := 0; i < cfg.Wires; i++ {
		x1, y1 := rng.Intn(cfg.Grid), rng.Intn(cfg.Grid)
		x2, y2 := rng.Intn(cfg.Grid), rng.Intn(cfg.Grid)
		want += abs(x1-x2) + abs(y1-y2) + 1
	}
	got := 0
	for c := 0; c < cfg.Grid*cfg.Grid; c++ {
		got += int(m.Peek(res.Base + arch.Addr(c*arch.WordBytes)))
	}
	if got != want {
		t.Fatalf("grid total = %d, want %d (cells lost or double-claimed)", got, want)
	}
}

func TestCholeskyFactorsEveryColumn(t *testing.T) {
	m := newM(8)
	cfg := DefaultCholesky(8)
	cfg.Policy = core.PolicyINV
	cfg.Opts = locks.Options{Prim: locks.PrimLLSC}
	res := Cholesky(m, cfg)
	if res.Work != uint64(cfg.Columns) {
		t.Fatalf("factored %d columns, want %d", res.Work, cfg.Columns)
	}
	m.System().CheckCoherence()
}

func TestCholeskySharingPatternMatchesPaper(t *testing.T) {
	m := newM(8)
	cfg := DefaultCholesky(8)
	cfg.Policy = core.PolicyINV
	cfg.Opts = locks.Options{Prim: locks.PrimFAP}
	Cholesky(m, cfg)
	wr := m.System().WriteRuns()
	wr.Flush()
	if mean := wr.Mean(); mean < 1.2 || mean > 2.5 {
		t.Errorf("lock write-run mean = %.2f, want ~1.6", mean)
	}
	if pct := m.System().Contention().Histogram().Percent(1); pct < 60 {
		t.Errorf("uncontended accesses = %.1f%%, want dominant", pct)
	}
}

func TestRealAppsDeterministic(t *testing.T) {
	run := func() (a, b uint64) {
		m := newM(4)
		cfg := DefaultLocusRoute(4)
		cfg.Policy = core.PolicyINV
		cfg.Opts = locks.Options{Prim: locks.PrimCAS}
		r := LocusRoute(m, cfg)

		m2 := newM(4)
		c2 := DefaultCholesky(4)
		c2.Policy = core.PolicyUNC
		c2.Opts = locks.Options{Prim: locks.PrimFAP}
		r2 := Cholesky(m2, c2)
		return uint64(r.Elapsed), uint64(r2.Elapsed)
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("real apps not deterministic: %d/%d vs %d/%d", a1, b1, a2, b2)
	}
}
