package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVNodes is the virtual-node count per backend. More vnodes smooth
// the load split (the std-dev of a backend's arc share falls as
// 1/sqrt(vnodes)) at the cost of a larger sorted table; 128 keeps a
// 4-backend ring's imbalance under a few percent while lookups stay two
// cache lines of binary search.
const defaultVNodes = 128

// ring is a consistent-hash ring over the backend list: each backend owns
// vnodes points on a uint64 circle, and a key belongs to the first point at
// or clockwise of its own hash. Placement depends only on the backend
// *names*, not their list order or count, which is the property the fleet
// needs: adding or removing one backend remaps only the keys that backend
// owned (~1/N of the space), instead of reshuffling everything the way
// `hash % N` would.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct backends
}

// ringPoint is one virtual node: a position on the circle and the index of
// the backend that owns it.
type ringPoint struct {
	hash    uint64
	backend int
}

// newRing places vnodes points per backend (vnodes <= 0 selects the
// default). Backend names must be distinct; identical names would stack
// their points and break ownership.
func newRing(backends []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{
		points: make([]ringPoint, 0, len(backends)*vnodes),
		n:      len(backends),
	}
	for i, b := range backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(b + "#" + strconv.Itoa(v)), backend: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on backend index so the sort,
		// and therefore ownership, is deterministic.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// hash64 is FNV-1a over s with a murmur-style avalanche finalizer. FNV
// alone diffuses trailing bytes into the high bits poorly, and the ring
// partitions on the *top* of the hash space — vnode labels that differ
// only in their numeric suffix would cluster on one arc. The finalizer
// spreads every input bit across the word; cryptographic strength is not
// needed (spec keys are already SHA-256 hex).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// owners returns up to want distinct backends for key, primary first:
// the owner of the first vnode clockwise of the key's hash, then the next
// distinct backends continuing clockwise. The secondary (owners[1]) is the
// peer-fill target — the backend most likely to have inherited or retained
// the key across a membership change.
func (r *ring) owners(key string, want int) []int {
	if want > r.n {
		want = r.n
	}
	if want <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, want)
	seen := make(map[int]bool, want)
	for i := 0; len(out) < want && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}
