package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
)

// Counter is a lock-free shared counter, the paper's first synthetic
// workload and the building block of the Transitive Closure application's
// dynamic scheduler.
type Counter struct {
	Addr arch.Addr
	Opts Options
}

// NewCounter allocates a counter in its own block under the given policy.
func NewCounter(m *machine.Machine, policy core.Policy, opts Options) *Counter {
	return &Counter{Addr: m.AllocSync(policy), Opts: opts}
}

// Inc atomically increments the counter and returns the previous value.
// With Options.Drop set, the processor drops its copy afterwards so the
// next processor's update needs fewer serialized messages.
func (c *Counter) Inc(p *machine.Proc) arch.Word {
	old := c.Opts.FetchAdd(p, c.Addr, 1)
	if c.Opts.Drop {
		p.DropCopy(c.Addr)
	}
	return old
}

// Add atomically adds delta and returns the previous value.
func (c *Counter) Add(p *machine.Proc, delta arch.Word) arch.Word {
	old := c.Opts.FetchAdd(p, c.Addr, delta)
	if c.Opts.Drop {
		p.DropCopy(c.Addr)
	}
	return old
}

// Read returns the counter's current value (an ordinary load).
func (c *Counter) Read(p *machine.Proc) arch.Word {
	return p.Load(c.Addr)
}
