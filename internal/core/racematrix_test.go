package core

import (
	"fmt"
	"testing"

	"dsm/internal/arch"
)

// The race matrix: systematically sweep the relative issue timing of two
// conflicting operations on one word and assert the protocol's invariants
// at every skew. This covers the transient windows (grants crossing
// invalidations, write-backs crossing recalls, drops crossing everything)
// that targeted tests can miss.

// raceCase defines a two-sided race and the validator of its outcome.
type raceCase struct {
	name string
	// prime establishes pre-race state (nil = fresh block).
	prime func(h *H, a arch.Addr)
	// left/right build the racing requests for nodes 0 and 1.
	left, right func(a arch.Addr) Request
	// validate inspects the outcome; the final coherent value is read via
	// node 3 after both complete.
	validate func(t *testing.T, skew int, lr, rr Result, final arch.Word)
}

func runRace(t *testing.T, pol Policy, rc raceCase) {
	t.Helper()
	for skew := 0; skew <= 80; skew += 5 {
		h := newH(t)
		a := h.addrAtHome(2, 0)
		h.sys.SetPolicy(a, pol)
		if rc.prime != nil {
			rc.prime(h, a)
		}
		var lr, rr Result
		remaining := 2
		l := rc.left(a)
		l.Done = func(r Result) { lr = r; remaining-- }
		r := rc.right(a)
		r.Done = func(res Result) { rr = res; remaining-- }
		h.eng.At(h.eng.Now(), func() { h.sys.Cache(0).Issue(l) })
		h.eng.At(h.eng.Now()+sim0(skew), func() { h.sys.Cache(1).Issue(r) })
		for remaining > 0 {
			if !h.eng.Step() {
				t.Fatalf("%s/%s skew %d deadlocked", pol, rc.name, skew)
			}
		}
		h.drain()
		final := h.do(3, OpLoad, a).Value
		h.drain()
		rc.validate(t, skew, lr, rr, final)
		h.sys.CheckCoherence()
	}
}

func TestRaceMatrix(t *testing.T) {
	cases := []raceCase{
		{
			name: "store-vs-store",
			left: func(a arch.Addr) Request { return Request{Op: OpStore, Addr: a, Val: 1} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpStore, Addr: a, Val: 2}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if final != 1 && final != 2 {
					t.Fatalf("skew %d: final %d, want 1 or 2", skew, final)
				}
			},
		},
		{
			name: "faa-vs-faa",
			left: func(a arch.Addr) Request { return Request{Op: OpFetchAdd, Addr: a, Val: 1} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpFetchAdd, Addr: a, Val: 1}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if final != 2 {
					t.Fatalf("skew %d: final %d, want 2", skew, final)
				}
				if lr.Value == rr.Value {
					t.Fatalf("skew %d: both FAAs fetched %d", skew, lr.Value)
				}
			},
		},
		{
			name: "cas-vs-cas",
			left: func(a arch.Addr) Request {
				return Request{Op: OpCAS, Addr: a, Val: 0, Val2: 1}
			},
			right: func(a arch.Addr) Request {
				return Request{Op: OpCAS, Addr: a, Val: 0, Val2: 2}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if lr.OK == rr.OK {
					t.Fatalf("skew %d: CAS outcomes %v/%v, want exactly one winner", skew, lr.OK, rr.OK)
				}
				want := arch.Word(1)
				if rr.OK {
					want = 2
				}
				if final != want {
					t.Fatalf("skew %d: final %d, want %d", skew, final, want)
				}
			},
		},
		{
			name: "drop-vs-store",
			prime: func(h *H, a arch.Addr) {
				h.do(0, OpStore, a, 7) // node 0 holds exclusive dirty
			},
			left: func(a arch.Addr) Request { return Request{Op: OpDropCopy, Addr: a} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpStore, Addr: a, Val: 9}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if final != 9 {
					t.Fatalf("skew %d: final %d, want 9 (store must survive the drop race)", skew, final)
				}
			},
		},
		{
			name: "faa-vs-drop",
			prime: func(h *H, a arch.Addr) {
				h.do(0, OpStore, a, 5)
			},
			left: func(a arch.Addr) Request { return Request{Op: OpDropCopy, Addr: a} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpFetchAdd, Addr: a, Val: 1}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if rr.Value != 5 || final != 6 {
					t.Fatalf("skew %d: FAA fetched %d, final %d; want 5 and 6", skew, rr.Value, final)
				}
			},
		},
		{
			name: "loadex-vs-loadex",
			left: func(a arch.Addr) Request { return Request{Op: OpLoadExclusive, Addr: a} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpLoadExclusive, Addr: a}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if final != 0 {
					t.Fatalf("skew %d: final %d, want 0", skew, final)
				}
			},
		},
	}
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		for _, rc := range cases {
			if pol != PolicyINV && (rc.name == "drop-vs-store" || rc.name == "faa-vs-drop" || rc.name == "loadex-vs-loadex") {
				// Drops and exclusivity are INV concepts; skip elsewhere.
				continue
			}
			pol, rc := pol, rc
			t.Run(fmt.Sprintf("%s/%s", pol, rc.name), func(t *testing.T) {
				runRace(t, pol, rc)
			})
		}
	}
}

// TestRaceMatrixLLSCStore sweeps an LL/SC pair against a racing store: the
// SC must fail whenever the store's write is ordered between the LL and
// the SC, and the final value must reflect exactly the operations that
// succeeded.
func TestRaceMatrixLLSCStore(t *testing.T) {
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for skew := 0; skew <= 120; skew += 5 {
				h := newH(t)
				a := h.addrAtHome(2, 0)
				h.sys.SetPolicy(a, pol)
				var scOK bool
				remaining := 2
				h.eng.At(0, func() {
					h.sys.Cache(0).Issue(Request{Op: OpLL, Addr: a,
						Done: func(ll Result) {
							h.sys.Cache(0).Issue(Request{
								Op: OpSC, Addr: a, Val: 100, Val2: ll.Serial,
								Done: func(sc Result) { scOK = sc.OK; remaining-- },
							})
						}})
				})
				h.eng.At(sim0(skew), func() {
					h.sys.Cache(1).Issue(Request{Op: OpStore, Addr: a, Val: 7,
						Done: func(Result) { remaining-- }})
				})
				for remaining > 0 {
					if !h.eng.Step() {
						t.Fatalf("skew %d deadlocked", skew)
					}
				}
				h.drain()
				final := h.do(3, OpLoad, a).Value
				// If the SC succeeded, it either preceded the store (final
				// 7) or followed it entirely... it cannot follow: the
				// store would have invalidated the reservation. So
				// success implies the store came second: final 7.
				// Failure implies the store intervened: final 7 as well
				// — unless the store completed before the LL (final 100).
				if scOK && final != 7 && final != 100 {
					t.Fatalf("skew %d: SC ok but final %d", skew, final)
				}
				if !scOK && final != 7 {
					t.Fatalf("skew %d: SC failed but final %d, want 7", skew, final)
				}
				h.sys.CheckCoherence()
			}
		})
	}
}
