package core

import (
	"testing"

	"dsm/internal/dir"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// White-box tests for transient-state branches: requests racing the
// requester's own in-flight write-back, and stale recall responses
// arriving after the transaction they belonged to has completed.

// evictOwnLine makes node 0 own the block, then displaces it so the
// write-back is in flight, and immediately re-requests it.
func TestOwnerRetriesWhileOwnWritebackInFlight(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 5)
	// Drop and immediately re-store without draining: the directory still
	// names node 0 the owner when the new request arrives, forcing the
	// owner==requester NAK path; the retry succeeds once the write-back
	// lands.
	res := h.doAll(map[int]Request{
		0: {Op: OpDropCopy, Addr: a},
	})
	_ = res
	// Issue the store before the WB reaches home (no drain).
	r := h.do(0, OpStore, a, 6)
	if !r.OK {
		t.Fatal("store after own drop failed")
	}
	h.drain()
	if v := h.do(1, OpLoad, a); v.Value != 6 {
		t.Fatalf("value = %d, want 6", v.Value)
	}
	if h.sys.Counters().Naks == 0 {
		t.Log("note: write-back landed before the retry was needed")
	}
	h.sys.CheckCoherence()
}

func TestOwnerReadRetriesWhileOwnWritebackInFlight(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 5)
	h.doAll(map[int]Request{0: {Op: OpDropCopy, Addr: a}})
	r := h.do(0, OpLoad, a)
	if r.Value != 5 {
		t.Fatalf("read after own drop = %d, want 5", r.Value)
	}
	h.drain()
	h.sys.CheckCoherence()
}

func TestStaleRecallNakIgnored(t *testing.T) {
	// Deliver a recall-nak for a block with no transaction in flight; the
	// home must ignore it.
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpStore, a, 3)
	home := h.sys.Home(1)
	h.eng.At(h.eng.Now(), func() {
		h.sys.send(2, 1, &msg{kind: mRecallNak, addr: a, requester: 2}, true)
	})
	h.drain()
	if v := h.do(2, OpLoad, a); v.Value != 3 {
		t.Fatalf("value = %d", v.Value)
	}
	_ = home
	h.sys.CheckCoherence()
}

func TestStaleCASReleaseIgnored(t *testing.T) {
	h := newH(t, func(c *Config) { c.CAS = CASDeny })
	a := h.addrAtHome(1, 0)
	h.do(0, OpStore, a, 3)
	h.eng.At(h.eng.Now(), func() {
		h.sys.send(2, 1, &msg{kind: mCASRel, addr: a, requester: 2}, true)
	})
	h.drain()
	// The block must still be recallable and usable.
	if r := h.do(2, OpFetchAdd, a, 1); r.Value != 3 {
		t.Fatalf("FAA = %+v", r)
	}
	h.drain()
	h.sys.CheckCoherence()
}

func TestStaleDropHintIgnored(t *testing.T) {
	// A drop hint from a node the directory no longer lists is ignored.
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpLoad, a)
	h.do(2, OpStore, a, 9) // invalidates node 0; directory forgets it
	h.eng.At(h.eng.Now(), func() {
		h.sys.send(0, 1, &msg{kind: mDropS, addr: a, requester: 0}, true)
	})
	h.drain()
	e := h.sys.Home(1).Directory().Peek(a)
	if e == nil || e.State != dir.Exclusive || e.Owner != 2 {
		t.Fatalf("directory disturbed by stale drop: %+v", e)
	}
	h.sys.CheckCoherence()
}

func TestAccessorsAndStrings(t *testing.T) {
	h := newH(t)
	if h.sys.Cache(2).Node() != 2 || h.sys.Home(3).Node() != 3 {
		t.Fatal("Node accessors wrong")
	}
	if h.sys.Home(0).Memory() == nil || h.sys.Home(0).Directory() == nil {
		t.Fatal("home accessors nil")
	}
	if h.sys.Config().Nodes != 4 {
		t.Fatalf("Config.Nodes = %d", h.sys.Config().Nodes)
	}
	if h.sys.Cache(0).Busy() {
		t.Fatal("idle controller reports busy")
	}
	done := false
	h.eng.At(0, func() {
		h.sys.Cache(0).Issue(Request{Op: OpLoad, Addr: h.addrAtHome(1, 0),
			Done: func(Result) { done = true }})
		if !h.sys.Cache(0).Busy() {
			t.Error("controller with outstanding request not busy")
		}
	})
	for !done {
		if !h.eng.Step() {
			t.Fatal("deadlock")
		}
	}
	if mRead.String() != "read" || msgKind(250).String() != "msg?" {
		t.Fatal("msg kind names wrong")
	}
	if Policy(9).String() == "" || CASVariant(9).String() == "" || OpKind(200).String() == "" {
		t.Fatal("fallback names empty")
	}
}

func TestNewSystemValidation(t *testing.T) {
	eng, net := newEngineMesh()
	for _, nodes := range []int{0, 65} {
		cfg := DefaultConfig()
		cfg.Nodes = nodes
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSystem accepted %d nodes", nodes)
				}
			}()
			NewSystem(eng, net, cfg)
		}()
	}
	// More nodes than mesh positions.
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	small := mesh.New(eng, cfg.Mesh)
	defer func() {
		if recover() == nil {
			t.Error("NewSystem accepted nodes > mesh size")
		}
	}()
	NewSystem(eng, small, cfg)
}

func newEngineMesh() (*sim.Engine, *mesh.Mesh) {
	eng := sim.NewEngine()
	return eng, mesh.New(eng, mesh.DefaultConfig())
}
