package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// PriorityLock is a priority-granting mutual-exclusion lock, one of the
// synchronization styles the paper cites general-purpose primitives for
// (section 1: "wait-free and lock-free objects, read-write locks, priority
// locks"). Waiters publish a priority in a per-processor slot; the holder
// releases by direct hand-off to the highest-priority waiter (so the lock
// word never becomes free under contention and cannot be stolen by a
// lower-priority latecomer), or by freeing the lock when no one waits.
//
// The only atomic operation required is test_and_set (expressible in all
// three primitive families); publication slots and grant flags are
// ordinary data, homed at their spinning processor.
type PriorityLock struct {
	lock  arch.Addr   // 0 free, 1 held
	want  []arch.Addr // per processor: 0 = not waiting, else priority+1
	grant []arch.Addr // per processor: hand-off flag, spun on locally
	Opts  Options
}

// NewPriorityLock allocates the lock under the given policy for its lock
// word; slots and grant flags are per-processor blocks.
func NewPriorityLock(m *machine.Machine, policy core.Policy, opts Options) *PriorityLock {
	l := &PriorityLock{
		lock:  m.AllocSync(policy),
		want:  make([]arch.Addr, m.Procs()),
		grant: make([]arch.Addr, m.Procs()),
		Opts:  opts,
	}
	for i := 0; i < m.Procs(); i++ {
		l.want[i] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
		l.grant[i] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
	}
	return l
}

// Acquire takes the lock, competing with the given priority (higher wins
// at each hand-off).
func (l *PriorityLock) Acquire(p *machine.Proc, priority arch.Word) {
	i := p.ID()
	p.Store(l.want[i], priority+1)
	for {
		// Hand-off from the previous holder?
		if p.Load(l.grant[i]) != 0 {
			p.Store(l.grant[i], 0)
			p.Store(l.want[i], 0)
			return
		}
		// Or the lock is simply free.
		if p.Load(l.lock) == 0 && l.Opts.TestAndSet(p, l.lock) == 0 {
			p.Store(l.want[i], 0)
			return
		}
		p.Compute(sim.Time(8 + p.Rand().Intn(24)))
	}
}

// Release passes the lock to the highest-priority waiter, or frees it.
// Ties break toward the lowest processor id.
func (l *PriorityLock) Release(p *machine.Proc) {
	best, bestPrio := -1, arch.Word(0)
	for i := range l.want {
		if i == p.ID() {
			continue
		}
		if w := p.Load(l.want[i]); w > bestPrio {
			best, bestPrio = i, w
		}
	}
	if best >= 0 {
		// Direct hand-off: the lock word stays held, so no latecomer can
		// steal it from the chosen waiter.
		p.Store(l.grant[best], 1)
		return
	}
	p.Store(l.lock, 0)
}
