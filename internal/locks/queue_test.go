package locks

import (
	"testing"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

func TestQueueSequentialFIFO(t *testing.T) {
	m := newM(4)
	q := NewQueue(m, core.PolicyUNC, 4, Options{Prim: PrimFAP})
	m.RunEach([]func(*machine.Proc){
		func(p *machine.Proc) {
			for v := arch.Word(1); v <= 3; v++ {
				q.Enqueue(p, v)
			}
			for v := arch.Word(1); v <= 3; v++ {
				if got := q.Dequeue(p); got != v {
					t.Errorf("dequeued %d, want %d", got, v)
				}
			}
		},
		nil, nil, nil,
	})
}

func TestQueueWrapsAroundCapacity(t *testing.T) {
	m := newM(4)
	q := NewQueue(m, core.PolicyUNC, 2, Options{Prim: PrimFAP})
	m.RunEach([]func(*machine.Proc){
		func(p *machine.Proc) {
			for round := 0; round < 5; round++ {
				q.Enqueue(p, arch.Word(round*2+1))
				q.Enqueue(p, arch.Word(round*2+2))
				if a := q.Dequeue(p); a != arch.Word(round*2+1) {
					t.Errorf("round %d: got %d", round, a)
				}
				if b := q.Dequeue(p); b != arch.Word(round*2+2) {
					t.Errorf("round %d: got %d", round, b)
				}
			}
		},
		nil, nil, nil,
	})
}

func TestQueueProducersConsumersNoLossNoDup(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			const procs, perProducer = 8, 6
			m := newM(procs)
			q := NewQueue(m, core.PolicyUNC, 4, Options{Prim: prim})
			got := make(map[arch.Word]int)
			m.Run(func(p *machine.Proc) {
				if p.ID()%2 == 0 {
					// Producer: distinct non-zero values.
					for k := 0; k < perProducer; k++ {
						q.Enqueue(p, arch.Word(p.ID()*100+k+1))
						p.Compute(sim.Time(p.Rand().Intn(40)))
					}
				} else {
					for k := 0; k < perProducer; k++ {
						v := q.Dequeue(p)
						got[v]++
						p.Compute(sim.Time(p.Rand().Intn(40)))
					}
				}
			})
			total := procs / 2 * perProducer
			if len(got) != total {
				t.Fatalf("consumed %d distinct values, want %d", len(got), total)
			}
			for v, n := range got {
				if n != 1 {
					t.Fatalf("value %d consumed %d times", v, n)
				}
				if v == 0 {
					t.Fatal("consumed a zero (empty slot)")
				}
			}
		})
	}
}

func TestQueuePerProducerOrderPreserved(t *testing.T) {
	// FIFO per producer: a single consumer must see each producer's values
	// in increasing order.
	const procs = 4
	m := newM(procs)
	q := NewQueue(m, core.PolicyUNC, 8, Options{Prim: PrimFAP})
	var consumed []arch.Word
	m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			for k := 0; k < 3*(procs-1); k++ {
				consumed = append(consumed, q.Dequeue(p))
			}
		} else {
			for k := 0; k < 3; k++ {
				q.Enqueue(p, arch.Word(p.ID()*10+k))
				p.Compute(sim.Time(p.Rand().Intn(30)))
			}
		}
	})
	last := map[int]arch.Word{}
	for _, v := range consumed {
		producer := int(v) / 10
		if prev, ok := last[producer]; ok && v <= prev {
			t.Fatalf("producer %d's values out of order: %d after %d", producer, v, prev)
		}
		last[producer] = v
	}
}

func TestQueuePanicsOnZeroSlots(t *testing.T) {
	m := newM(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewQueue(m, core.PolicyUNC, 0, Options{Prim: PrimFAP})
}

func TestCentralBarrierSynchronizes(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			const procs, rounds = 8, 4
			m := newM(procs)
			b := NewCentralBarrier(m, core.PolicyINV, Options{Prim: prim})
			phase := make([]int, procs)
			m.Run(func(p *machine.Proc) {
				for r := 0; r < rounds; r++ {
					phase[p.ID()] = r
					p.Compute(sim.Time(p.Rand().Intn(80)))
					b.Wait(p)
					for other, ph := range phase {
						if ph < r {
							t.Errorf("round %d: proc %d lagging in %d", r, other, ph)
						}
					}
				}
			})
		})
	}
}

func TestCentralVsTreeBarrierScaling(t *testing.T) {
	// The motivation for the tree barrier: at machine scale the central
	// barrier's hot counter and release flag cost more per episode.
	const procs, rounds = 64, 4
	mC := newM(procs)
	central := NewCentralBarrier(mC, core.PolicyINV, Options{Prim: PrimFAP})
	centralTime := mC.Run(func(p *machine.Proc) {
		for r := 0; r < rounds; r++ {
			central.Wait(p)
		}
	})
	mT := newM(procs)
	tree := NewTreeBarrier(mT)
	treeTime := mT.Run(func(p *machine.Proc) {
		for r := 0; r < rounds; r++ {
			tree.Wait(p)
		}
	})
	if treeTime >= centralTime {
		t.Fatalf("tree barrier (%d) not faster than central (%d) at %d procs",
			treeTime, centralTime, procs)
	}
}
