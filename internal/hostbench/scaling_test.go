package hostbench

import "testing"

func TestLadder(t *testing.T) {
	for _, tc := range []struct {
		cpus int
		want []int
	}{
		{1, []int{1, 2, 4, 8}}, // extended to minLadderRungs
		{2, []int{1, 2, 4, 8}},
		{6, []int{1, 2, 4, 8}},
		{8, []int{1, 2, 4, 8}},
		{16, []int{1, 2, 4, 8, 16}},
		{64, []int{1, 2, 4, 8, 16}},
	} {
		got := Ladder(tc.cpus)
		if len(got) != len(tc.want) {
			t.Fatalf("Ladder(%d) = %v, want %v", tc.cpus, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Ladder(%d) = %v, want %v", tc.cpus, got, tc.want)
			}
		}
	}
}

// TestMeasureScalingSmoke runs a tiny two-rung ladder end to end: every
// point must resolve (measureServeRung panics on dropped points) and every
// rung must report nonzero throughput and latency.
func TestMeasureScalingSmoke(t *testing.T) {
	pts := MeasureScaling([]int{1, 2}, 64)
	if len(pts) != 2 {
		t.Fatalf("got %d rungs, want 2", len(pts))
	}
	for _, p := range pts {
		if p.PtsPerSec <= 0 || p.P99US == 0 || p.PlanPtsPerSec <= 0 {
			t.Fatalf("rung %+v has a zero measurement", p)
		}
	}
}
