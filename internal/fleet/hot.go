package fleet

import (
	"container/list"
	"sync"
)

// hotTracker is the space-bounded per-key request counter behind hot-key
// replication: an LRU of at most cap keys, each carrying a hit count. A key
// whose count reaches threshold is marked hot — the router then routes it
// round-robin across every backend instead of pinning it to its hash owner,
// so a skewed working set stops serializing on one shard. The LRU bound
// makes the tracker an approximate top-K: a key hot enough to matter is
// touched often enough never to be evicted, while the long uniform tail
// cycles through the table without ever reaching the threshold.
type hotTracker struct {
	mu        sync.Mutex
	cap       int // tracked keys bound; evict LRU beyond it
	threshold int // count at which a key turns hot; <= 0 disables tracking
	ll        *list.List
	items     map[string]*list.Element
	hotKeys   int
}

type hotEntry struct {
	key   string
	count int
	hot   bool
}

func newHotTracker(capacity, threshold int) *hotTracker {
	return &hotTracker{
		cap:       capacity,
		threshold: threshold,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
	}
}

// touch records one request for key. hot reports whether the key is
// (now) hot; promoted is true exactly once per key — on the touch that
// crossed the threshold — which is the router's cue to replicate the key's
// result to every backend.
func (t *hotTracker) touch(key string) (hot, promoted bool) {
	if t.threshold <= 0 {
		return false, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.items[key]
	if !ok {
		if t.ll.Len() >= t.cap {
			oldest := t.ll.Back()
			t.ll.Remove(oldest)
			e := oldest.Value.(*hotEntry)
			delete(t.items, e.key)
			if e.hot {
				t.hotKeys--
			}
		}
		t.items[key] = t.ll.PushFront(&hotEntry{key: key, count: 1})
		return false, false
	}
	t.ll.MoveToFront(el)
	e := el.Value.(*hotEntry)
	e.count++
	if !e.hot && e.count >= t.threshold {
		e.hot = true
		t.hotKeys++
		return true, true
	}
	return e.hot, false
}

// stats returns the tracked-key and hot-key counts.
func (t *hotTracker) stats() (tracked, hot int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len(), t.hotKeys
}
