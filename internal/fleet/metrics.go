package fleet

import "sync/atomic"

// metrics holds the router counters behind /metrics. All monotonic
// atomics; the snapshot is consistent-enough, not atomic across fields.
type metrics struct {
	requests   atomic.Uint64 // /v1/sim requests accepted for routing
	badRequest atomic.Uint64 // invalid specs/plans rejected with 400
	coalesced  atomic.Uint64 // requests that joined an in-flight resolution
	hits       atomic.Uint64 // resolutions served from some backend's cache
	peerFills  atomic.Uint64 // primary-miss resolutions rescued by a peer's cache
	misses     atomic.Uint64 // resolutions that paid a full backend simulation
	probes     atomic.Uint64 // probe-only client requests routed through
	rejected   atomic.Uint64 // backend 429s propagated to the client
	replicated atomic.Uint64 // hot-key fill POSTs fanned to non-owner backends
	upstreamEr atomic.Uint64 // upstream requests that failed at transport level
	errors     atomic.Uint64 // requests answered 502 (no backend could resolve)

	sweeps      atomic.Uint64 // /v1/sweep plans accepted for routing
	sweepPoints atomic.Uint64 // points across accepted plans
	sweepErrors atomic.Uint64 // sweep points answered with a router error line
}

// Snapshot is the exported /metrics payload of the router.
type Snapshot struct {
	Requests    uint64 `json:"requests"`
	BadRequests uint64 `json:"bad_requests"`
	Coalesced   uint64 `json:"coalesced"`

	// Hits counts resolutions served from a backend result cache anywhere
	// in the fleet (primary probe hit or peer fill); Misses counts full
	// simulations forwarded. Hits/(Hits+Misses) is the fleet-wide hit
	// ratio as the router sees it.
	Hits      uint64 `json:"hits"`
	PeerFills uint64 `json:"peer_fills"`
	Misses    uint64 `json:"misses"`

	Probes         uint64 `json:"probes"`
	Rejected       uint64 `json:"rejected"`
	Replications   uint64 `json:"replications"`
	UpstreamErrors uint64 `json:"upstream_errors"`
	Errors         uint64 `json:"errors"`

	Sweeps      uint64 `json:"sweeps"`
	SweepPoints uint64 `json:"sweep_points"`
	SweepErrors uint64 `json:"sweep_errors"`

	Backends        int      `json:"backends"`
	BackendRequests []uint64 `json:"backend_requests"`
	TrackedKeys     int      `json:"tracked_keys"`
	HotKeys         int      `json:"hot_keys"`
}

func (m *metrics) snapshot() Snapshot {
	return Snapshot{
		Requests:       m.requests.Load(),
		BadRequests:    m.badRequest.Load(),
		Coalesced:      m.coalesced.Load(),
		Hits:           m.hits.Load(),
		PeerFills:      m.peerFills.Load(),
		Misses:         m.misses.Load(),
		Probes:         m.probes.Load(),
		Rejected:       m.rejected.Load(),
		Replications:   m.replicated.Load(),
		UpstreamErrors: m.upstreamEr.Load(),
		Errors:         m.errors.Load(),
		Sweeps:         m.sweeps.Load(),
		SweepPoints:    m.sweepPoints.Load(),
		SweepErrors:    m.sweepErrors.Load(),
	}
}
