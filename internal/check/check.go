// Package check verifies concurrent histories collected from the
// simulator. Its main tool is a linearizability checker for the shared
// counter — the object at the heart of all three of the paper's synthetic
// applications — exploiting the counter's structure for an efficient exact
// check: fetched values must be a permutation of 0..n-1 that respects the
// real-time order of non-overlapping operations, and reads must fall
// within the window of increments concurrent with them.
package check

import (
	"fmt"
	"sort"

	"dsm/internal/arch"
	"dsm/internal/sim"
)

// Op is one completed operation in a history.
type Op struct {
	Proc    int
	Invoke  sim.Time // when the operation was issued
	Respond sim.Time // when it completed
	Kind    Kind
	Value   arch.Word // increment: fetched (old) value; read: value seen
}

// Kind classifies history operations.
type Kind uint8

const (
	// Inc is a successful atomic increment (fetch_and_add(1), or a
	// CAS/LL-SC loop that succeeded).
	Inc Kind = iota
	// Read is an ordinary read of the counter.
	Read
)

// String names the kind.
func (k Kind) String() string {
	if k == Inc {
		return "inc"
	}
	return "read"
}

// History accumulates operations. Record order is irrelevant; operations
// carry their own timestamps.
type History struct {
	ops []Op
}

// Record appends one completed operation. It panics if the response
// precedes the invocation (a harness bug).
func (h *History) Record(op Op) {
	if op.Respond < op.Invoke {
		panic(fmt.Sprintf("check: response %d before invocation %d", op.Respond, op.Invoke))
	}
	h.ops = append(h.ops, op)
}

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// CheckCounter verifies that the history is a linearizable execution of a
// counter with initial value 0. It returns nil if so, or an error
// describing the first violation found.
func (h *History) CheckCounter() error {
	var incs, reads []Op
	for _, op := range h.ops {
		switch op.Kind {
		case Inc:
			incs = append(incs, op)
		case Read:
			reads = append(reads, op)
		default:
			return fmt.Errorf("check: unknown op kind %d", op.Kind)
		}
	}

	// 1. Fetched values are a permutation of 0..n-1.
	seen := make([]int, len(incs)) // fetched value -> count
	for _, op := range incs {
		v := int(op.Value)
		if v < 0 || v >= len(incs) {
			return fmt.Errorf("check: proc %d fetched %d outside 0..%d", op.Proc, v, len(incs)-1)
		}
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			return fmt.Errorf("check: value %d fetched %d times", v, n)
		}
	}

	// 2. Real-time order: an increment that finished before another began
	// must have fetched a smaller value.
	byValue := append([]Op(nil), incs...)
	sort.Slice(byValue, func(i, j int) bool { return byValue[i].Value < byValue[j].Value })
	for i := range byValue {
		for j := i + 1; j < len(byValue); j++ {
			// byValue[j] linearized after byValue[i]; it must not have
			// completed before byValue[i] was invoked.
			if byValue[j].Respond < byValue[i].Invoke {
				return fmt.Errorf(
					"check: inc fetching %d (proc %d) completed at %d, before inc fetching %d (proc %d) began at %d",
					byValue[j].Value, byValue[j].Proc, byValue[j].Respond,
					byValue[i].Value, byValue[i].Proc, byValue[i].Invoke)
			}
		}
	}

	// 3. Reads: the value must lie between the number of increments that
	// completed before the read began and the number that began before the
	// read completed.
	for _, r := range reads {
		lo, hi := 0, 0
		for _, inc := range incs {
			if inc.Respond < r.Invoke {
				lo++
			}
			if inc.Invoke <= r.Respond {
				hi++
			}
		}
		v := int(r.Value)
		if v < lo || v > hi {
			return fmt.Errorf(
				"check: proc %d read %d during [%d,%d], legal window [%d,%d]",
				r.Proc, v, r.Invoke, r.Respond, lo, hi)
		}
	}
	return nil
}
