package check

import (
	"strings"
	"testing"
	"testing/quick"

	"dsm/internal/arch"
	"dsm/internal/sim"
)

func inc(proc int, invoke, respond sim.Time, fetched arch.Word) Op {
	return Op{Proc: proc, Invoke: invoke, Respond: respond, Kind: Inc, Value: fetched}
}

func rd(proc int, invoke, respond sim.Time, v arch.Word) Op {
	return Op{Proc: proc, Invoke: invoke, Respond: respond, Kind: Read, Value: v}
}

func TestEmptyHistoryOK(t *testing.T) {
	var h History
	if err := h.CheckCounter(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialIncrementsOK(t *testing.T) {
	var h History
	for i := 0; i < 5; i++ {
		h.Record(inc(0, sim.Time(i*10), sim.Time(i*10+5), arch.Word(i)))
	}
	if err := h.CheckCounter(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIncrementsAnyOrderOK(t *testing.T) {
	// Two fully overlapping increments may fetch in either order.
	var h History
	h.Record(inc(0, 0, 100, 1))
	h.Record(inc(1, 0, 100, 0))
	if err := h.CheckCounter(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateFetchDetected(t *testing.T) {
	var h History
	h.Record(inc(0, 0, 10, 0))
	h.Record(inc(1, 20, 30, 0))
	err := h.CheckCounter()
	if err == nil || !strings.Contains(err.Error(), "fetched") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfRangeFetchDetected(t *testing.T) {
	var h History
	h.Record(inc(0, 0, 10, 5))
	if err := h.CheckCounter(); err == nil {
		t.Fatal("out-of-range fetch accepted")
	}
}

func TestRealTimeOrderViolationDetected(t *testing.T) {
	// Op fetching 1 completed before op fetching 0 began: impossible.
	var h History
	h.Record(inc(0, 0, 10, 1))
	h.Record(inc(1, 50, 60, 0))
	err := h.CheckCounter()
	if err == nil || !strings.Contains(err.Error(), "before") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadWithinWindowOK(t *testing.T) {
	var h History
	h.Record(inc(0, 0, 10, 0))
	h.Record(inc(1, 20, 30, 1))
	h.Record(rd(2, 15, 18, 1)) // after first inc, before second
	if err := h.CheckCounter(); err != nil {
		t.Fatal(err)
	}
	// A read overlapping the second increment may see 1 or 2.
	h.Record(rd(3, 25, 35, 2))
	if err := h.CheckCounter(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleReadDetected(t *testing.T) {
	var h History
	h.Record(inc(0, 0, 10, 0))
	h.Record(rd(1, 50, 60, 0)) // both incs done; read of 0 is stale
	err := h.CheckCounter()
	if err == nil || !strings.Contains(err.Error(), "read") {
		t.Fatalf("err = %v", err)
	}
}

func TestFutureReadDetected(t *testing.T) {
	var h History
	h.Record(inc(0, 100, 110, 0))
	h.Record(rd(1, 0, 10, 1)) // read before any increment began
	if err := h.CheckCounter(); err == nil {
		t.Fatal("future read accepted")
	}
}

func TestRecordPanicsOnBackwardTime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var h History
	h.Record(inc(0, 10, 5, 0))
}

func TestKindString(t *testing.T) {
	if Inc.String() != "inc" || Read.String() != "read" {
		t.Fatal("kind names wrong")
	}
}

// TestPropertySerialHistoriesAlwaysPass generates random serialized
// histories (no overlap) — which are trivially linearizable — and checks
// the checker accepts them.
func TestPropertySerialHistoriesAlwaysPass(t *testing.T) {
	f := func(nRaw uint8, readMask uint16) bool {
		n := int(nRaw%20) + 1
		var h History
		now := sim.Time(0)
		count := 0
		for i := 0; i < n; i++ {
			if readMask&(1<<(i%16)) != 0 {
				h.Record(rd(i%4, now, now+5, arch.Word(count)))
			} else {
				h.Record(inc(i%4, now, now+5, arch.Word(count)))
				count++
			}
			now += 10
		}
		return h.CheckCounter() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertySwappedFetchesAlwaysFail perturbs a serial history by
// swapping two non-adjacent fetched values, which must break real-time
// order.
func TestPropertySwappedFetchesAlwaysFail(t *testing.T) {
	f := func(nRaw uint8, aRaw, bRaw uint8) bool {
		n := int(nRaw%10) + 3
		a, b := int(aRaw)%n, int(bRaw)%n
		if a == b || a+1 == b || b+1 == a {
			return true // adjacent or equal swaps may stay legal
		}
		var h History
		for i := 0; i < n; i++ {
			v := i
			if i == a {
				v = b
			} else if i == b {
				v = a
			}
			h.Record(inc(0, sim.Time(i*10), sim.Time(i*10+5), arch.Word(v)))
		}
		return h.CheckCounter() != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
