package dsm

import (
	"strings"
	"testing"
)

func TestAttachTraceCapturesProtocol(t *testing.T) {
	m := NewSmall(4)
	tr := AttachTrace(m, 64)
	a := m.AllocSyncAt(1, INV)
	m.RunEach([]func(*Proc){
		func(p *Proc) { p.FetchAdd(a, 1) },
		nil, nil, nil,
	})
	if tr.Len() == 0 {
		t.Fatal("trace captured nothing")
	}
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"issue", "fetch_and_add", "complete"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("trace missing %q:\n%s", want, b.String())
		}
	}
}

func TestQueueThroughFacade(t *testing.T) {
	m := NewSmall(4)
	q := NewQueue(m, UNC, 4, Options{Prim: FAP})
	var got []Word
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 3; i++ {
				got = append(got, q.Dequeue(p))
			}
		} else {
			q.Enqueue(p, Word(p.ID()))
		}
	})
	if len(got) != 3 {
		t.Fatalf("dequeued %d values", len(got))
	}
}

func TestRWLockThroughFacade(t *testing.T) {
	m := NewSmall(4)
	l := NewRWLock(m, INV, Options{Prim: FAP})
	shared := m.Alloc(4)
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			l.Lock(p)
			p.Store(shared, p.Load(shared)+1)
			l.Unlock(p)
		} else {
			l.RLock(p)
			p.Load(shared)
			l.RUnlock(p)
		}
	})
	if m.Peek(shared) != 1 {
		t.Fatalf("shared = %d", m.Peek(shared))
	}
}

func TestPriorityLockThroughFacade(t *testing.T) {
	m := NewSmall(4)
	l := NewPriorityLock(m, INV, Options{Prim: CAS})
	shared := m.Alloc(4)
	m.Run(func(p *Proc) {
		l.Acquire(p, Word(p.ID()))
		p.Store(shared, p.Load(shared)+1)
		l.Release(p)
	})
	if m.Peek(shared) != 4 {
		t.Fatalf("shared = %d", m.Peek(shared))
	}
}

func TestCentralBarrierThroughFacade(t *testing.T) {
	m := NewSmall(4)
	b := NewCentralBarrier(m, INV, Options{Prim: FAP})
	a := m.Alloc(4)
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Store(a, 7)
		}
		b.Wait(p)
		if v := p.Load(a); v != 7 {
			t.Errorf("proc %d sees %d after barrier", p.ID(), v)
		}
	})
}

func TestContextSwitchThroughFacade(t *testing.T) {
	m := NewSmall(4)
	m.SetContextSwitchQuantum(30)
	a := m.AllocSync(INV)
	m.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			for {
				v := p.LoadLinked(a)
				if p.StoreConditional(a, v+1) {
					break
				}
			}
		}
	})
	if m.Peek(a) != 40 {
		t.Fatalf("counter = %d, want 40", m.Peek(a))
	}
}

func TestStackThroughFacade(t *testing.T) {
	m := NewSmall(4)
	s := NewStack(m, INV, 4, Options{Prim: LLSC})
	var popped Word
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			s.Push(p, 2)
			s.Push(p, 3)
			popped = s.Pop(p, nil)
		},
		nil, nil, nil,
	})
	if popped != 3 {
		t.Fatalf("popped %d, want 3 (LIFO)", popped)
	}
}
