// Package proto is the protocol vocabulary and transition tables of the
// paper's coherence machines, expressed as data rather than code.
//
// The package owns the enumerations shared by every layer — coherence
// policies, compare_and_swap variants, processor operations, and message
// kinds — and, in tables.go, the guarded-action transition tables that
// define what the cache and home controllers do for each (state, event)
// pair. internal/core interprets the tables against the simulated machine
// (caches, directory, mesh); internal/proto/mc interprets the same tables
// against an abstract small-configuration state to model-check the
// protocol exhaustively. Having one table serve two interpreters is the
// point: the checked protocol is the simulated protocol.
package proto

import "fmt"

// Policy is the coherence policy applied to a block of atomically accessed
// data. Ordinary data always uses PolicyINV (the machine's base protocol).
type Policy uint8

const (
	// PolicyINV caches sync data under write-invalidate; atomic operations
	// execute in the cache controller on an exclusive copy.
	PolicyINV Policy = iota
	// PolicyUPD caches sync data read-only under write-update; atomic
	// operations execute at the home memory, which multicasts updates.
	PolicyUPD
	// PolicyUNC disables caching; all operations execute at the home
	// memory.
	PolicyUNC

	// NumPolicies bounds arrays indexed by Policy.
	NumPolicies = 3
)

// String returns the name used in figures ("INV", "UPD", "UNC").
func (p Policy) String() string {
	switch p {
	case PolicyINV:
		return "INV"
	case PolicyUPD:
		return "UPD"
	case PolicyUNC:
		return "UNC"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// CASVariant selects among the paper's INV-policy compare_and_swap
// implementations.
type CASVariant uint8

const (
	// CASPlain always migrates an exclusive copy to the requester (INV).
	CASPlain CASVariant = iota
	// CASDeny (INVd) compares at the home or owner; on failure the
	// requester gets no cached copy.
	CASDeny
	// CASShare (INVs) compares at the home or owner; on failure the
	// requester gets a read-only copy.
	CASShare
)

// String returns the name used in figures.
func (v CASVariant) String() string {
	switch v {
	case CASPlain:
		return "INV"
	case CASDeny:
		return "INVd"
	case CASShare:
		return "INVs"
	}
	return fmt.Sprintf("CASVariant(%d)", uint8(v))
}

// OpKind identifies a processor-issued memory operation.
type OpKind uint8

const (
	OpLoad OpKind = iota
	OpStore
	OpLoadExclusive
	OpDropCopy
	OpFetchAdd
	OpFetchStore
	OpFetchOr
	OpTestAndSet
	OpCAS
	OpLL
	OpSC

	// NumOps bounds arrays indexed by OpKind.
	NumOps = 11
)

var opNames = [NumOps]string{
	OpLoad: "load", OpStore: "store", OpLoadExclusive: "load_exclusive",
	OpDropCopy: "drop_copy", OpFetchAdd: "fetch_and_add",
	OpFetchStore: "fetch_and_store", OpFetchOr: "fetch_and_or",
	OpTestAndSet: "test_and_set", OpCAS: "compare_and_swap",
	OpLL: "load_linked", OpSC: "store_conditional",
}

// String returns the primitive's conventional name.
func (o OpKind) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(o))
}

// IsAtomic reports whether the operation is one of the atomic primitives
// (as opposed to an ordinary load/store or auxiliary instruction).
func (o OpKind) IsAtomic() bool {
	switch o {
	case OpFetchAdd, OpFetchStore, OpFetchOr, OpTestAndSet, OpCAS, OpLL, OpSC:
		return true
	}
	return false
}

// Writes reports whether the operation (when it succeeds) writes memory.
func (o OpKind) Writes() bool {
	switch o {
	case OpStore, OpFetchAdd, OpFetchStore, OpFetchOr, OpTestAndSet, OpCAS, OpSC:
		return true
	}
	return false
}

// MsgKind enumerates every protocol message.
type MsgKind uint8

const (
	// Requests, cache controller -> home.
	KRead    MsgKind = iota // read miss, wants a shared copy
	KReadEx                 // store/atomic/load_exclusive, wants an exclusive copy
	KCASHome                // INVd/INVs compare_and_swap at home/owner
	KSCHome                 // store_conditional check at home
	KWB                     // write-back of an exclusive copy (eviction or drop_copy)
	KDropS                  // replacement/drop hint from a shared-copy holder
	KUncOp                  // UNC-policy operation to be executed at memory
	KUpdRead                // UPD-policy read miss
	KUpdOp                  // UPD-policy write/atomic to be executed at memory

	// Replies, home -> requesting cache controller.
	KDataS    // shared copy grant (also UPD read-miss reply)
	KDataE    // exclusive copy grant; Acks invalidation acks to expect
	KNak      // negative acknowledgment; requester retries
	KCASFail  // INVd/INVs failure (HasData distinguishes INVs)
	KSCFail   // store_conditional failure determined at home
	KUncReply // UNC operation result
	KUpdReply // UPD operation result; Acks update acks to expect

	// Coherence traffic.
	KInval     // home -> sharer: invalidate; ack to Requester
	KInvAck    // sharer -> requester
	KRecallE   // home -> owner: surrender exclusive copy for a waiting request
	KRecallS   // home -> owner: downgrade to shared for a waiting read
	KCASFwd    // home -> owner: compare at owner (INVd/INVs)
	KWBRecall  // owner -> home: data in response to KRecallE/successful KCASFwd
	KWBShare   // owner -> home: data, owner kept a shared copy (KRecallS/INVs fail)
	KRecallNak // owner -> home: recalled line no longer present (write-back races)
	KCASRel    // owner -> home: INVd failure handled at owner; clear busy state
	KUpdate    // home -> sharer: UPD write of one word; ack to Requester
	KUpdAck    // sharer -> requester

	// NumMsgKinds bounds arrays indexed by MsgKind.
	NumMsgKinds = 27
)

var msgNames = [NumMsgKinds]string{
	KRead: "read", KReadEx: "read-ex", KCASHome: "cas-home", KSCHome: "sc-home",
	KWB: "wb", KDropS: "drop-s", KUncOp: "unc-op", KUpdRead: "upd-read",
	KUpdOp: "upd-op", KDataS: "data-s", KDataE: "data-e", KNak: "nak",
	KCASFail: "cas-fail", KSCFail: "sc-fail", KUncReply: "unc-reply",
	KUpdReply: "upd-reply", KInval: "inval", KInvAck: "inv-ack",
	KRecallE: "recall-e", KRecallS: "recall-s", KCASFwd: "cas-fwd",
	KWBRecall: "wb-recall", KWBShare: "wb-share", KRecallNak: "recall-nak",
	KCASRel: "cas-rel", KUpdate: "update", KUpdAck: "upd-ack",
}

// String returns the short name used in traces and the table dump.
func (k MsgKind) String() string {
	if int(k) < len(msgNames) {
		return msgNames[k]
	}
	return "msg?"
}

// IsRequest reports whether the kind is a home-bound request that the busy
// state may retain for replay (and that the home NAKs while busy).
func (k MsgKind) IsRequest() bool {
	switch k {
	case KRead, KReadEx, KCASHome, KSCHome, KUncOp, KUpdRead, KUpdOp:
		return true
	}
	return false
}
