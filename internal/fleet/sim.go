package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"dsm/internal/serve"
)

// upstream is one backend response captured for relay: status, the headers
// worth forwarding, and the exact body bytes. backend is the index of the
// server that produced it. body aliases a pooled buffer (buf) until
// release; a released upstream keeps its status and headers but not its
// bytes.
type upstream struct {
	status  int
	header  http.Header
	body    []byte
	buf     *[]byte
	backend int
}

// bodyBufPool recycles upstream body buffers across relays. Outcome bodies
// are a few KB, so the steady-state router path reuses the same handful of
// buffers instead of allocating one per upstream fetch.
var bodyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 8<<10); return &b }}

// maxPooledBody caps what release returns to the pool; anything a sweep or
// pathological backend inflates beyond this goes to the GC instead of
// pinning memory in the pool.
const maxPooledBody = 1 << 20

// release returns the upstream's buffer to the pool. Call it only once the
// body bytes are dead: after a relay with no coalesced followers, or on a
// response that will never be relayed (failed probes, fill acks).
func (u *upstream) release() {
	bp := u.buf
	u.buf, u.body = nil, nil
	if bp == nil || cap(*bp) > maxPooledBody {
		return
	}
	*bp = (*bp)[:0]
	bodyBufPool.Put(bp)
}

// readBody drains r into a pool-obtained buffer, returning the filled
// bytes and the buffer for a later release. On error the buffer goes
// straight back to the pool.
func readBody(r io.Reader) ([]byte, *[]byte, error) {
	bp := bodyBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*bp = buf
			return buf, bp, nil
		}
		if err != nil {
			*bp = buf[:0]
			bodyBufPool.Put(bp)
			return nil, nil, err
		}
	}
}

// Accept-Encoding values for upstream fetches. The value is always set
// explicitly: an explicit header disables the transport's transparent
// gzip handling, which would otherwise decompress (and strip the
// Content-Encoding from) backend responses the router means to relay
// compressed — or worse, hand gzip bytes to /v1/fill, which JSON-decodes
// its body.
const (
	acceptIdentity = "identity"
	acceptGzip     = "gzip"
)

// maxRelayBody bounds one relayed /v1/sim response; outcome bodies are a
// few KB, so this is a corruption guard, not a working limit.
const maxRelayBody = 1 << 22

// post issues one upstream POST carrying the canonical spec JSON and
// captures the response into a pooled buffer. accept picks the wire
// representation: acceptIdentity for bodies the router will re-parse or
// feed to /v1/fill, acceptGzip when relaying to a client that negotiated
// gzip.
func (rt *Router) post(backend int, path string, body []byte, accept string) (*upstream, error) {
	rt.perBack[backend].Add(1)
	req, err := http.NewRequest(http.MethodPost, rt.cfg.Backends[backend]+path, bytes.NewReader(body))
	if err != nil {
		rt.met.upstreamEr.Add(1)
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", accept)
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.met.upstreamEr.Add(1)
		return nil, err
	}
	defer resp.Body.Close()
	data, bp, err := readBody(io.LimitReader(resp.Body, maxRelayBody))
	if err != nil {
		rt.met.upstreamEr.Add(1)
		return nil, err
	}
	return &upstream{status: resp.StatusCode, header: resp.Header, body: data, buf: bp, backend: backend}, nil
}

// fill copies an outcome's bytes into backend's result cache via its
// /v1/fill endpoint. Failures are counted but not fatal: a missed fill
// costs a future peer probe, never correctness.
func (rt *Router) fill(backend int, body []byte) bool {
	res, err := rt.post(backend, "/v1/fill", body, acceptIdentity)
	if err != nil {
		return false
	}
	res.release()
	return res.status == http.StatusNoContent
}

// resolve answers one spec key against the fleet, as the single-flight
// leader. The route mirrors the paper's memory hierarchy one level up:
// try the cheap local copy (target's cache probe), then a peer's copy
// (secondary owner's probe + fill back), and only then pay the full cost
// of "home memory" — a real simulation on the target. Hot keys route
// round-robin over all backends instead of pinning to the hash owner, and
// the touch that promotes a key fans its bytes to the whole fleet.
//
// gz selects gzip for the target fetches; the caller must pass false when
// promoted is true, since a promoted body fans out through /v1/fill and so
// must stay identity. Peer probes are always identity for the same reason:
// their bytes fill back into the target.
func (rt *Router) resolve(key string, specJSON []byte, hot, promoted, gz bool) (*upstream, error) {
	owners := rt.ring.owners(key, 2)
	target := owners[0]
	if hot {
		target = int(rt.rr.Add(1) % uint64(len(rt.cfg.Backends)))
	}
	accept := acceptIdentity
	if gz {
		accept = acceptGzip
	}

	var served *upstream
	if res, err := rt.post(target, "/v1/sim?probe=1", specJSON, accept); err == nil && res.status == http.StatusOK {
		rt.met.hits.Add(1)
		served = res
	} else {
		if res != nil {
			res.release()
		}
		// Target miss: consult the key's other owner(s) before simulating.
		// A found copy is relayed and filled into the target, turning the
		// next request's primary miss into a primary hit.
		for _, peer := range owners {
			if peer == target {
				continue
			}
			res, err := rt.post(peer, "/v1/sim?probe=1", specJSON, acceptIdentity)
			if err == nil && res.status == http.StatusOK {
				rt.met.hits.Add(1)
				rt.met.peerFills.Add(1)
				rt.fill(target, res.body)
				served = res
				break
			}
			if res != nil {
				res.release()
			}
		}
	}
	if served == nil {
		res, err := rt.post(target, "/v1/sim", specJSON, accept)
		if err != nil {
			return nil, err
		}
		if res.status == http.StatusOK {
			rt.met.misses.Add(1)
		}
		served = res
	}
	if promoted && served.status == http.StatusOK {
		// The key just crossed the hot threshold: fan its bytes to every
		// backend that cannot already have them, so the round-robin
		// routing that follows lands on a warm cache everywhere.
		for b := range rt.cfg.Backends {
			if b == target || b == served.backend {
				continue
			}
			if rt.fill(b, served.body) {
				rt.met.replicated.Add(1)
			}
		}
	}
	return served, nil
}

func (rt *Router) handleSim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost && r.Method != http.MethodHead {
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET with query parameters or POST with a JSON spec")
		return
	}
	if rt.closing.Load() {
		rt.writeError(w, http.StatusServiceUnavailable, "router draining")
		return
	}
	spec, err := serve.ParseSpecRequest(r)
	if err == nil {
		spec, err = spec.Normalize()
	}
	if err != nil {
		rt.met.badRequest.Add(1)
		rt.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := spec.Key()
	specJSON, err := json.Marshal(spec)
	if err != nil {
		rt.met.errors.Add(1)
		rt.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	gz := serve.AcceptsGzip(r)

	// Probe mode passes through as a fleet-wide probe: hit if any owner
	// has the bytes, miss otherwise, never simulating — so a router can
	// itself back a higher tier.
	if r.Method == http.MethodHead || r.URL.Query().Get("probe") == "1" {
		rt.met.probes.Add(1)
		accept := acceptIdentity
		if gz {
			accept = acceptGzip
		}
		for _, b := range rt.ring.owners(key, 2) {
			res, err := rt.post(b, "/v1/sim?probe=1", specJSON, accept)
			if err == nil && res.status == http.StatusOK {
				rt.relay(w, r, res, "hit")
				res.release()
				return
			}
			if res != nil {
				res.release()
			}
		}
		w.Header().Set("X-Cache", "miss")
		w.Header().Set("X-Spec-Key", key)
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		rt.writeError(w, http.StatusNotFound, "not cached in fleet")
		return
	}

	rt.met.requests.Add(1)
	hot, promoted := rt.hot.touch(key)
	// A promoted key resolves identity-encoded — its body fans out through
	// /v1/fill — so its flight stays on the plain key. Otherwise gzip and
	// identity requests fly separately: a follower must never inherit a
	// representation its client did not negotiate.
	wantGz := gz && !promoted
	fkey := key
	if wantGz {
		fkey += "+gz"
	}
	call, leader := rt.flight.join(fkey)
	var followers int
	if leader {
		res, err := rt.resolve(key, specJSON, hot, promoted, wantGz)
		followers = rt.flight.complete(fkey, call, res, err)
	} else {
		rt.met.coalesced.Add(1)
		select {
		case <-call.done:
		case <-r.Context().Done():
			return // client gone; nothing useful to write
		}
	}
	if call.err != nil {
		rt.met.errors.Add(1)
		rt.writeError(w, http.StatusBadGateway, fmt.Sprintf("no backend could resolve the request: %v", call.err))
		return
	}
	cache := ""
	if !leader {
		cache = "coalesced"
	}
	rt.relay(w, r, call.res, cache)
	if leader && followers == 0 {
		// Sole reader of these bytes; followers, when any joined, keep the
		// buffer alive past this handler, so it stays off the pool.
		call.res.release()
	}
}

// relayHeaders is the allowlist relay copies from a captured backend
// response. Content-Encoding and Vary travel with the body bytes: a
// gzip-negotiated relay must carry the coding that matches its payload.
var relayHeaders = [...]string{
	"Content-Type", "Content-Encoding", "Vary", "X-Cache", "X-Spec-Key", "Retry-After",
}

// relay writes one captured backend response to the client: selected
// headers, the status, and the body bytes exactly as received — the
// byte-identity contract between router-path and direct-backend responses.
// A non-empty cache overrides the backend's X-Cache (the router's own
// coalescing provenance). Backend 429 backpressure, Retry-After included,
// passes through here unchanged.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, res *upstream, cache string) {
	for _, h := range &relayHeaders {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if cache != "" {
		w.Header().Set("X-Cache", cache)
	}
	w.Header().Set("X-Fleet-Backend", rt.cfg.Backends[res.backend])
	if res.status == http.StatusTooManyRequests {
		rt.met.rejected.Add(1)
	}
	w.WriteHeader(res.status)
	if r.Method != http.MethodHead {
		w.Write(res.body)
	}
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.Metrics())
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
