package figures

import (
	"bytes"
	"sync/atomic"
	"testing"

	"dsm/internal/apps"
)

func TestSweepRunsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 2, 7, 100} {
		const n = 37
		var counts [n]atomic.Int32
		Sweep(n, par, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("par=%d: job %d ran %d times, want 1", par, i, c)
			}
		}
	}
}

func TestSweepZeroJobs(t *testing.T) {
	Sweep(0, 4, func(i int) { t.Fatal("job ran for n=0") })
}

// TestParallelSyntheticCSVDeterminism checks the tentpole's determinism
// contract: the same seed and scale produce byte-identical figure CSV
// whether runs execute serially or fanned across workers.
func TestParallelSyntheticCSVDeterminism(t *testing.T) {
	render := func(par int) string {
		o := RunOpts{Procs: 8, Rounds: 2, Par: par}
		var b bytes.Buffer
		WriteSyntheticCSV(&b, "fig3", apps.CounterApp, o)
		return b.String()
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != serial {
			t.Fatalf("par=%d CSV differs from serial:\n%s\n--- vs ---\n%s", par, got, serial)
		}
	}
}

// TestParallelFig6CyclesDeterminism checks that per-run simulated cycle
// counts (the figure-6 observable) are unaffected by host parallelism.
func TestParallelFig6CyclesDeterminism(t *testing.T) {
	render := func(par int) string {
		o := RunOpts{Procs: 4, Rounds: 1, TCSize: 6, Wires: 6, Columns: 6, Par: par}
		var b bytes.Buffer
		WriteFig6CSV(&b, o)
		return b.String()
	}
	serial := render(1)
	if got := render(8); got != serial {
		t.Fatalf("parallel Fig6 CSV differs from serial:\n%s\n--- vs ---\n%s", got, serial)
	}
}

// TestParallelTable1Determinism checks Table 1 rows come back in case order
// with the paper's counts regardless of sweep width.
func TestParallelTable1Determinism(t *testing.T) {
	serial := Table1Par(1)
	for _, par := range []int{0, 4} {
		rows := Table1Par(par)
		if len(rows) != len(serial) {
			t.Fatalf("par=%d: %d rows, want %d", par, len(rows), len(serial))
		}
		for i := range rows {
			if rows[i] != serial[i] {
				t.Fatalf("par=%d row %d = %+v, want %+v", par, i, rows[i], serial[i])
			}
		}
	}
}

// TestParallelFig2Determinism checks the contention-histogram rendering
// (which retains whole machines across the sweep) is order-stable.
func TestParallelFig2Determinism(t *testing.T) {
	render := func(par int) string {
		o := RunOpts{Procs: 8, Rounds: 2, TCSize: 8, Par: par}
		var b bytes.Buffer
		Fig2(&b, o)
		return b.String()
	}
	serial := render(1)
	if got := render(8); got != serial {
		t.Fatalf("parallel Fig2 differs from serial:\n%s\n--- vs ---\n%s", got, serial)
	}
}
