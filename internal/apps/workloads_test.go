package apps

import (
	"fmt"
	"testing"

	"dsm/internal/arch"
	"dsm/internal/check"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
)

var (
	allPolicies = []core.Policy{core.PolicyINV, core.PolicyUPD, core.PolicyUNC}
	allPrims    = []locks.Prim{locks.PrimFAP, locks.PrimCAS, locks.PrimLLSC}
)

func policyName(p core.Policy) string {
	switch p {
	case core.PolicyINV:
		return "INV"
	case core.PolicyUPD:
		return "UPD"
	}
	return "UNC"
}

// forEachBar runs f under every policy×primitive combination — the full
// matrix the acceptance criteria require each workload family to survive.
func forEachBar(t *testing.T, f func(t *testing.T, policy core.Policy, opts locks.Options)) {
	for _, policy := range allPolicies {
		for _, prim := range allPrims {
			policy, prim := policy, prim
			t.Run(fmt.Sprintf("%s/%s", policyName(policy), prim), func(t *testing.T) {
				f(t, policy, locks.Options{Prim: prim})
			})
		}
	}
}

// contended is the history-producing configuration of the acceptance
// criteria: more active processors than one, several rounds, write runs on
// the uncontended patterns exercised separately.
var contended = Pattern{Contention: 4, Rounds: 6}

func TestQueueAppLinearizableUnderFullMatrix(t *testing.T) {
	forEachBar(t, func(t *testing.T, policy core.Policy, opts locks.Options) {
		m := newM(8)
		var h check.History
		res := QueueApp(m, policy, opts, contended, &h)
		wantOps := uint64(2 * totalEpisodes(contended, 8))
		if res.Ops != wantOps {
			t.Fatalf("ops = %d, want %d", res.Ops, wantOps)
		}
		if h.Len() != int(wantOps) {
			t.Fatalf("history has %d ops, want %d", h.Len(), wantOps)
		}
		if err := h.CheckQueue(); err != nil {
			t.Fatalf("queue history not linearizable: %v", err)
		}
		m.System().CheckCoherence()
	})
}

func TestStackAppLinearizableUnderFullMatrix(t *testing.T) {
	forEachBar(t, func(t *testing.T, policy core.Policy, opts locks.Options) {
		m := newM(8)
		var h check.History
		res := StackApp(m, policy, opts, contended, &h)
		wantOps := uint64(2 * totalEpisodes(contended, 8))
		if res.Ops != wantOps {
			t.Fatalf("ops = %d, want %d", res.Ops, wantOps)
		}
		if err := h.CheckStack(); err != nil {
			t.Fatalf("stack history not linearizable: %v", err)
		}
		m.System().CheckCoherence()
	})
}

func TestQueueStackWriteRunPatterns(t *testing.T) {
	// The uncontended patterns drive write runs (consecutive pairs by one
	// owner); histories must stay linearizable and op counts must follow
	// the pattern's run lengths.
	pat := Pattern{Contention: 1, WriteRun: 2.5, Rounds: 8}
	for _, prim := range []locks.Prim{locks.PrimCAS, locks.PrimLLSC} {
		m := newM(4)
		var h check.History
		res := QueueApp(m, core.PolicyINV, locks.Options{Prim: prim}, pat, &h)
		if want := uint64(2 * totalEpisodes(pat, 4)); res.Ops != want {
			t.Fatalf("%s: ops = %d, want %d", prim, res.Ops, want)
		}
		if err := h.CheckQueue(); err != nil {
			t.Fatal(err)
		}
		var hs check.History
		if StackApp(m, core.PolicyINV, locks.Options{Prim: prim}, pat, &hs); hs.CheckStack() != nil {
			t.Fatalf("%s: stack write-run history not linearizable", prim)
		}
	}
}

func TestQueueAppCountsRetriesUnderContention(t *testing.T) {
	// A heavily contended MS queue must observe at least one failed swing;
	// the FAP ticket queue performs exactly one atomic per op (no retries).
	m := newM(8)
	pat := Pattern{Contention: 8, Rounds: 8}
	res := QueueApp(m, core.PolicyINV, locks.Options{Prim: locks.PrimCAS}, pat, nil)
	if res.Retries == 0 {
		t.Fatal("contended MS queue recorded zero retries")
	}
	if res := QueueApp(m, core.PolicyINV, locks.Options{Prim: locks.PrimFAP}, pat, nil); res.Retries != 0 {
		t.Fatalf("ticket queue reported %d retries", res.Retries)
	}
}

func TestRCUAppNoTornReadsUnderFullMatrix(t *testing.T) {
	forEachBar(t, func(t *testing.T, policy core.Policy, opts locks.Options) {
		m := newM(4)
		res := RCUApp(m, policy, opts, Pattern{Contention: 1, Rounds: 4})
		if res.Retries != 0 {
			t.Fatalf("RCU saw %d torn reads", res.Retries)
		}
		if res.Ops == 0 {
			t.Fatal("RCU performed no operations")
		}
		m.System().CheckCoherence()
	})
}

func TestRCUAppMultipleWriters(t *testing.T) {
	m := newM(8)
	res := RCUApp(m, core.PolicyINV, locks.Options{Prim: locks.PrimCAS}, Pattern{Contention: 3, Rounds: 3})
	if res.Retries != 0 {
		t.Fatalf("RCU saw %d torn reads", res.Retries)
	}
}

func TestBarrierAppsUnderFullMatrix(t *testing.T) {
	apps := []struct {
		name string
		run  func(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern, h *check.History) WorkloadResult
	}{
		{"tournament", TournamentApp},
		{"dissemination", DisseminationApp},
	}
	for _, app := range apps {
		app := app
		t.Run(app.name, func(t *testing.T) {
			forEachBar(t, func(t *testing.T, policy core.Policy, opts locks.Options) {
				m := newM(8)
				var h check.History
				pat := Pattern{Contention: 4, Rounds: 5}
				res := app.run(m, policy, opts, pat, &h)
				if want := uint64(4 * 5); res.Ops != want {
					t.Fatalf("ops = %d, want %d", res.Ops, want)
				}
				if err := h.CheckCounter(); err != nil {
					t.Fatalf("barrier counter history not linearizable: %v", err)
				}
				m.System().CheckCoherence()
			})
		})
	}
}

// TestWorkloadRunnersCoexistWithSynthetic pins the scratch container: a
// reused machine must keep both resident runners across alternating
// synthetic and workload points.
func TestWorkloadRunnersCoexistWithSynthetic(t *testing.T) {
	m := newM(4)
	pat := Pattern{Contention: 2, Rounds: 3}
	opts := locks.Options{Prim: locks.PrimCAS}
	CounterApp(m, core.PolicyINV, opts, pat)
	sc := scratchFor(m)
	synth := sc.synth
	if synth == nil {
		t.Fatal("synthetic runner not resident")
	}
	QueueApp(m, core.PolicyINV, opts, pat, nil)
	if sc2 := scratchFor(m); sc2.synth != synth {
		t.Fatal("workload run evicted the synthetic runner")
	}
	work := scratchFor(m).work
	if work == nil {
		t.Fatal("workload runner not resident")
	}
	CounterApp(m, core.PolicyINV, opts, pat)
	if scratchFor(m).work != work {
		t.Fatal("synthetic run evicted the workload runner")
	}
}

// TestStackABAHistoryFlagged is the ABA regression of the issue: the
// tagged-CAS Treiber stack with tags disabled, under the staged
// section-2.2 interleaving, corrupts the structure — and the corruption
// surfaces as a non-linearizable history that CheckStack rejects, while
// the tagged and LL/SC runs of the identical schedule pass. This proves
// the checker catches real protocol-level races, not just synthetic
// mutations.
func TestStackABAHistoryFlagged(t *testing.T) {
	stage := func(prim locks.Prim, tagged bool) error {
		m := newM(4)
		s := locks.NewTreiberStack(m, core.PolicyINV, 4, locks.Options{Prim: prim})
		s.Tagged = tagged
		var h check.History
		windowOpen := m.Alloc(4)
		adversaryDone := m.Alloc(4)
		push := func(p *machine.Proc, node, v arch.Word) {
			inv := p.Now()
			s.Push(p, node, v)
			h.Record(check.Op{Proc: p.ID(), Invoke: inv, Respond: p.Now(), Kind: check.Push, Value: v})
		}
		pop := func(p *machine.Proc, interpose func()) arch.Word {
			inv := p.Now()
			node, v, ok := s.Pop(p, interpose)
			kind := check.Pop
			if !ok {
				kind = check.PopEmpty
			}
			h.Record(check.Op{Proc: p.ID(), Invoke: inv, Respond: p.Now(), Kind: kind, Value: v})
			_ = node
			return v
		}
		m.RunEach([]func(*machine.Proc){
			func(p *machine.Proc) {
				// Build top -> 1 -> 2 -> 3, then pop with an ABA window.
				push(p, 3, 3)
				push(p, 2, 2)
				push(p, 1, 1)
				pop(p, func() {
					p.Store(windowOpen, 1)
					for p.Load(adversaryDone) == 0 {
						p.Compute(50)
					}
				})
				// Drain what remains; under bare CAS the corruption has
				// lost node 3 and left the adversary's node on top, so the
				// drained values double-pop 2 and the checker rejects.
				for {
					inv := p.Now()
					node, v, ok := s.Pop(p, nil)
					kind := check.Pop
					if !ok {
						kind = check.PopEmpty
					}
					h.Record(check.Op{Proc: p.ID(), Invoke: inv, Respond: p.Now(), Kind: kind, Value: v})
					_ = node
					if !ok {
						break
					}
				}
			},
			func(p *machine.Proc) {
				for p.Load(windowOpen) == 0 {
					p.Compute(50)
				}
				a := pop(p, nil) // pops 1
				pop(p, nil)      // pops 2 — this proc now owns node 2
				push(p, 1, a)    // re-pushes node 1: top=1 -> 3
				p.Store(adversaryDone, 1)
			},
			nil, nil,
		})
		return h.CheckStack()
	}

	if err := stage(locks.PrimCAS, false); err == nil {
		t.Fatal("bare-CAS ABA corruption produced a history the checker accepted")
	} else {
		t.Logf("checker flagged the ABA run: %v", err)
	}
	if err := stage(locks.PrimCAS, true); err != nil {
		t.Fatalf("tagged CAS run rejected: %v", err)
	}
	if err := stage(locks.PrimLLSC, true); err != nil {
		t.Fatalf("LL/SC run rejected: %v", err)
	}
}
