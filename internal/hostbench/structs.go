package hostbench

import (
	"time"

	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/locks"
)

// StructPoint is one cell of the lock-free structure curve: a workload
// library structure (MS queue or Treiber stack) under one policy and one
// universal primitive, at the contended scale of record. Ops and Retries
// are per simulated run — deterministic, so they double as a regression
// fingerprint of the structure's protocol behavior — while OpsPerSec is
// the host throughput of simulating those operations.
type StructPoint struct {
	App        string  `json:"app"`
	Policy     string  `json:"policy"`
	Prim       string  `json:"prim"`
	Ops        uint64  `json:"ops"`         // structure operations per run
	Retries    uint64  `json:"retries"`     // failed CAS/SC attempts per run
	SimElapsed uint64  `json:"sim_elapsed"` // simulated cycles per run
	OpsPerSec  float64 `json:"ops_per_sec"` // host simulation throughput
}

// structScale is the contended configuration every cell runs: 16
// processors, 8 of them hitting the structure each round — enough
// contention that the retry counts are a meaningful signal.
func structPoint(app exper.App, pol core.Policy, prim locks.Prim) exper.Point {
	return exper.Point{
		App:     app,
		Bar:     exper.Bar{Policy: pol, Prim: prim},
		Scale:   exper.RunOpts{Procs: 16, Rounds: 8},
		Pattern: exper.Pattern{Contention: 8, Rounds: 8},
	}
}

// MeasureStructures times the queue/stack grid — {msqueue, stack} x
// {INV, UPD, UNC} x {CAS, LLSC} — running each cell `runs` times and
// reporting per-run operation/retry counts plus host ops/sec.
func MeasureStructures(runs int) []StructPoint {
	if runs < 1 {
		runs = 1
	}
	var out []StructPoint
	for _, app := range []exper.App{exper.AppMSQueue, exper.AppStack} {
		for _, pol := range []core.Policy{core.PolicyINV, core.PolicyUPD, core.PolicyUNC} {
			for _, prim := range []locks.Prim{locks.PrimCAS, locks.PrimLLSC} {
				pt := structPoint(app, pol, prim)
				start := time.Now()
				var res exper.Result
				for i := 0; i < runs; i++ {
					res = pt.Run(false)
				}
				sec := time.Since(start).Seconds()
				sp := StructPoint{
					App: app.Name(), Policy: pol.String(), Prim: prim.String(),
					Ops: res.Updates, Retries: res.Work, SimElapsed: res.Elapsed,
				}
				if sec > 0 {
					sp.OpsPerSec = float64(res.Updates) * float64(runs) / sec
				}
				out = append(out, sp)
			}
		}
	}
	return out
}
