// Package hostbench holds the host-time benchmark bodies: how fast the
// simulator itself runs on the host, as opposed to the simulated-cycle
// measurements of the paper reproduction. The bodies are ordinary
// func(*testing.B) so the same code backs the `go test -bench` wrappers in
// bench_test.go and cmd/benchjson, which runs them via testing.Benchmark
// and records the numbers as a JSON baseline per PR.
package hostbench

import (
	"testing"

	"dsm/internal/apps"
	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/locks"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

func nop() {}

// eventsPerIter is the number of events each Engine benchmark iteration
// schedules: two that fire and one that is cancelled.
const eventsPerIter = 3

// Engine exercises the discrete-event core's hot path: a self-rescheduling
// cascade that mixes fired and cancelled events, the pattern the machine
// model produces (memory-reference completions plus cancelled timeouts).
// Reports ns/event and events/sec over executed events; allocs/op divided
// by 3 is allocs/event (0 once the free list warms up).
func Engine(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(3, tick)
			e.After(5, nop)
			e.After(7, nop).Cancel()
		}
	}
	e.At(0, tick)
	b.ResetTimer()
	executed := e.Run(0)
	sec := b.Elapsed().Seconds()
	if executed > 0 && sec > 0 {
		b.ReportMetric(sec*1e9/float64(executed), "ns/event")
		b.ReportMetric(float64(executed)/sec, "events/sec")
	}
}

// sweepOpts is the reduced scale the Sweep benchmarks run at: large enough
// that each of the 210 pattern x bar runs does real protocol work, small
// enough for -bench iterations to be affordable.
func sweepOpts(par int) exper.RunOpts {
	return exper.RunOpts{Procs: 8, Rounds: 3, Par: par}
}

// Sweep regenerates a reduced figure-3 grid (every bar x pattern) with the
// given fan-out; par 1 is the serial baseline the speedup is measured
// against, par 0 uses every host core.
func Sweep(par int) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exper.Run(exper.SyntheticPlan(exper.AppCounter, sweepOpts(par)))
		}
	}
}

// MeshTransit measures the host cost of one mesh message at a fixed
// Manhattan distance, with internal-router link modeling on or off. Each
// iteration sends a single message and drains the engine. Reports
// events/msg: under hop-collapsed transit this is exactly 1 regardless of
// distance or router modeling — the metric that would regress if per-hop
// events ever crept back in.
func MeshTransit(dist int, routers bool) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		cfg := mesh.DefaultConfig()
		cfg.ModelRouters = routers
		e := sim.NewEngine()
		m := mesh.New(e, cfg)
		// Destination at the requested distance: exhaust X first, then Y,
		// matching the dimension-order route shape.
		dx := dist
		if dx > cfg.Width-1 {
			dx = cfg.Width - 1
		}
		dy := dist - dx
		if dy > cfg.Height-1 {
			b.Fatalf("distance %d exceeds %dx%d mesh", dist, cfg.Width, cfg.Height)
		}
		dst := mesh.NodeID(dy*cfg.Width + dx)
		flits := m.Flits(8)
		delivered := 0
		deliver := func(any) { delivered++ }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.SendArg(0, dst, flits, deliver, nil)
			for e.Step() {
			}
		}
		if delivered != b.N {
			b.Fatalf("delivered %d of %d messages", delivered, b.N)
		}
		b.ReportMetric(float64(e.EventsExecuted())/float64(b.N), "events/msg")
	}
}

// MachineRun measures one end-to-end contended-counter simulation per
// iteration — the alloc profile of the whole machine stack (engine pool,
// preallocated proc callbacks, protocol layer) rather than the bare engine.
func MachineRun(b *testing.B) {
	b.ReportAllocs()
	bar := exper.Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
	o := exper.RunOpts{Procs: 8, Rounds: 3}
	pat := apps.Pattern{Contention: 8, Rounds: o.Rounds}
	var events uint64
	for i := 0; i < b.N; i++ {
		m := exper.NewMachine(o, bar)
		apps.CounterApp(m, bar.Policy, bar.Opts(), pat)
		events += m.Engine().EventsExecuted()
		exper.ReleaseMachine(m)
	}
	sec := b.Elapsed().Seconds()
	if events > 0 && sec > 0 {
		b.ReportMetric(sec*1e9/float64(events), "ns/event")
		b.ReportMetric(float64(events)/sec, "events/sec")
	}
}
