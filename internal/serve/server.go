package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsm/internal/exper"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of goroutines running simulations
	// concurrently. 0 selects GOMAXPROCS. Simulations are CPU-bound, so
	// more workers than cores buys queueing, not throughput.
	Workers int
	// Queue bounds how many accepted simulations may wait for a worker.
	// Beyond it the service answers 429 + Retry-After. 0 selects 64.
	Queue int
	// CacheEntries bounds the result cache (LRU beyond it). 0 selects 1024.
	CacheEntries int
	// Timeout is the per-request deadline covering queue wait plus
	// simulation; expiry answers 504. 0 selects 30s.
	Timeout time.Duration
}

// Server is the simulation service: an http.Handler plus the worker pool,
// result cache, and single-flight group behind it.
type Server struct {
	cfg     Config
	cache   *resultCache
	flight  *flightGroup
	pool    *workerPool
	met     metrics
	mux     *http.ServeMux
	closing atomic.Bool
}

// New builds a server. Call Close to drain it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		cache:  newResultCache(cfg.CacheEntries),
		flight: newFlightGroup(),
		pool:   newWorkerPool(cfg.Workers, cfg.Queue),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/sim", s.handleSim)
	s.mux.HandleFunc("/v1/fill", s.handleFill)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns a point-in-time snapshot of the service counters.
func (s *Server) Metrics() Snapshot {
	snap := s.met.snapshot()
	snap.CacheEntries, snap.CacheEvictions, snap.CacheShards = s.cache.stats()
	snap.FlightShards = len(s.flight.shards)
	snap.QueueDepth = s.pool.depth()
	snap.Workers = s.cfg.Workers
	return snap
}

// Close drains the worker pool: queued simulations complete, their waiters
// get responses, and Close returns once the workers have exited. The HTTP
// listener must already have stopped dispatching new requests (e.g. via
// http.Server.Shutdown) — new arrivals during the drain are answered 503,
// but requests already past that check may not be.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	s.pool.close()
}

// ------------------------------------------------------------ handlers --

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost && r.Method != http.MethodHead {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET with query parameters or POST with a JSON spec")
		return
	}
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	start := time.Now()
	spec, err := ParseSpecRequest(r)
	if err == nil {
		spec, err = spec.Normalize()
	}
	if err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The key lives in a stack buffer until a miss forces a string: the
	// hit path (cache probe, entry lookup, response headers) never needs
	// one — getBytes indexes the shard map straight from these bytes and
	// the entry carries its own key string for the X-Spec-Key header.
	var kb [64]byte
	key := spec.appendKey(kb[:0])

	// Probe mode (HEAD, or ?probe=1 on GET/POST): answer from the result
	// cache only, never simulating and never touching the queue. A hit is
	// the normal 200 response (HEAD drops the body); a miss is 404 with
	// X-Cache: miss. This is the cheap cache-visibility path the fleet
	// router uses to ask "do you have this?" before paying for a
	// simulation — a probe miss must stay O(cache lookup).
	if probe, _ := rawQueryGet(r.URL.RawQuery, "probe"); r.Method == http.MethodHead || probe == "1" {
		s.met.probes.Add(1)
		e, ok := s.cache.getBytes(key)
		if !ok {
			h := w.Header()
			h["X-Cache"] = hdrMiss
			h["X-Spec-Key"] = []string{string(key)}
			if r.Method == http.MethodHead {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			s.writeError(w, http.StatusNotFound, "not cached")
			return
		}
		s.met.probeHits.Add(1)
		s.writeEntry(w, r, e, hdrHit)
		return
	}
	s.met.requests.Add(1)

	// Fast path: a cache hit writes the entry's stored bytes straight to
	// the response — no key string, no header formatting, no copies.
	if e, ok := s.cache.getBytes(key); ok {
		s.met.hits.Add(1)
		s.writeEntry(w, r, e, hdrHit)
		s.met.latency.observe(time.Since(start))
		return
	}

	keyStr := string(key)
	e, call, state := s.start(spec, keyStr, 0)
	switch state {
	case dispatchHit: // filled between the fast-path lookup and dispatch
		s.met.hits.Add(1)
		s.writeEntry(w, r, e, hdrHit)
		s.met.latency.observe(time.Since(start))
		return
	case dispatchMiss:
		s.met.misses.Add(1)
	case dispatchCoalesced:
		s.met.coalesced.Add(1)
	}

	deadline := time.NewTimer(s.cfg.Timeout)
	defer deadline.Stop()
	select {
	case <-call.done:
	case <-deadline.C:
		s.met.timeouts.Add(1)
		s.writeError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("deadline of %s exceeded (queue wait + simulation)", s.cfg.Timeout))
		return
	case <-r.Context().Done():
		// Client gone; nothing useful to write.
		return
	}
	switch {
	case call.err == errBusy:
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("simulation queue full (%d queued); retry shortly", s.cfg.Queue))
	case call.err != nil:
		s.met.errors.Add(1)
		s.writeError(w, http.StatusInternalServerError, call.err.Error())
	default:
		label := "miss"
		if state == dispatchCoalesced {
			label = "coalesced"
		}
		s.writeOutcome(w, call.data, label, keyStr, start)
	}
}

// dispatchState classifies how start resolved a spec: already cached,
// newly dispatched to the worker pool, or merged into an in-flight
// identical simulation.
type dispatchState uint8

const (
	dispatchHit dispatchState = iota
	dispatchMiss
	dispatchCoalesced
)

// start resolves one canonical spec without blocking on the simulation:
// a cache hit returns the stored entry directly; otherwise the caller
// gets the single-flight call to wait on. On a miss this caller's spec is
// submitted to the worker pool, waiting up to queueWait for space (a still
// full queue fails the call with errBusy, releasing any followers that
// joined meanwhile); /v1/sim passes zero and turns errBusy into its 429.
// Both the single-sim and the batch sweep handlers dispatch through here,
// so they share one cache and one in-flight set — a sweep point coalesces
// with a concurrent /v1/sim request for the same spec and vice versa.
func (s *Server) start(spec Spec, key string, queueWait time.Duration) (*cacheEntry, *flightCall, dispatchState) {
	if e, ok := s.cache.get(key); ok {
		return e, nil, dispatchHit
	}
	call, leader := s.flight.join(key)
	if !leader {
		return nil, call, dispatchCoalesced
	}
	if !s.pool.submitWait(func(slot *exper.MachineSlot) {
		data, err := s.runEncoded(spec, slot)
		if err == nil {
			s.cache.put(key, data)
		}
		s.flight.complete(key, call, data, err)
	}, queueWait) {
		s.flight.complete(key, call, nil, errBusy)
	}
	return nil, call, dispatchMiss
}

// runEncoded executes the spec on the worker's machine slot and returns
// its canonical JSON bytes, converting a panic anywhere under the
// simulator into an error so one bad run cannot take down a worker. A
// panicked run leaves the slot's machine in an unknown state, so the slot
// is cleared and the next job on this worker builds a fresh machine.
func (s *Server) runEncoded(spec Spec, slot *exper.MachineSlot) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			*slot = exper.MachineSlot{}
			err = fmt.Errorf("simulation failed: %v", r)
		}
	}()
	s.met.runs.Add(1)
	return RunOn(spec, slot).Encode()
}

var errBusy = fmt.Errorf("queue full")

// handleFill inserts an externally obtained result into the cache:
// POST /v1/fill with a body that is byte-for-byte a /v1/sim response (the
// canonical Outcome encoding). The fleet router uses this to copy a result
// from the backend that has it to the backends that should — peer fill
// after a membership change, and hot-key replication — without re-running
// the simulation. The body's embedded spec is re-normalized and its content
// address recomputed; a body whose bytes do not carry the key they claim is
// rejected, so a fill can relocate results but never relabel them. The
// endpoint trusts its callers beyond that (it is a fleet-internal surface,
// like /metrics), so deployments must not expose it publicly.
func (s *Server) handleFill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST with a /v1/sim response body")
		return
	}
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<22))
	if err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad fill body: %v", err))
		return
	}
	var claim struct {
		Spec Spec   `json:"spec"`
		Key  string `json:"key"`
	}
	if err := json.Unmarshal(body, &claim); err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("fill body is not an outcome: %v", err))
		return
	}
	spec, err := claim.Spec.Normalize()
	if err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("fill spec: %v", err))
		return
	}
	if key := spec.Key(); key != claim.Key {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("fill key %s does not match its spec (%s)", claim.Key, key))
		return
	}
	s.cache.put(claim.Key, body)
	s.met.fills.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// ------------------------------------------------------------ encoding --

// Static header value slices, assigned directly into response header maps.
// Header().Set allocates a fresh []string per call; these are built once
// and shared across all responses — safe because nothing ever mutates a
// header value slice, only the maps that point at them.
var (
	hdrJSON           = []string{"application/json"}
	hdrNDJSON         = []string{"application/x-ndjson"}
	hdrHit            = []string{"hit"}
	hdrMiss           = []string{"miss"}
	hdrGzip           = []string{"gzip"}
	hdrAcceptEncoding = []string{"Accept-Encoding"}
)

// writeEntry answers a request from a cached entry: the precompressed gzip
// variant when the client accepts gzip and one exists, the identity bytes
// otherwise. Every header value is a preassembled slice (the key header
// lives on the entry) and the body is the cache's own storage handed to
// the ResponseWriter — the serve layer neither formats nor copies a byte,
// which is what pins the hit path at zero allocations.
func (s *Server) writeEntry(w http.ResponseWriter, r *http.Request, e *cacheEntry, cache []string) {
	h := w.Header()
	h["Content-Type"] = hdrJSON
	h["X-Cache"] = cache
	h["X-Spec-Key"] = e.keyHdr
	body := e.data
	if e.gz != nil {
		// The representation varies with the request even when only one
		// is ever sent, so caches must key on Accept-Encoding.
		h["Vary"] = hdrAcceptEncoding
		if AcceptsGzip(r) {
			h["Content-Encoding"] = hdrGzip
			body = e.gz
		}
	}
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.Write(body)
}

// AcceptsGzip reports whether the request advertises gzip support: a token
// scan over Accept-Encoding values rather than a full quality-value parse.
// "gzip" as a listed coding counts unless it carries an explicit zero
// quality ("gzip;q=0", "gzip;q=0.0"), which covers every encoding real
// clients send without allocating. Exported so the fleet router negotiates
// content codings exactly the way the backends it fronts do.
func AcceptsGzip(r *http.Request) bool {
	for _, v := range r.Header["Accept-Encoding"] {
		for len(v) > 0 {
			var item string
			if i := strings.IndexByte(v, ','); i >= 0 {
				item, v = v[:i], v[i+1:]
			} else {
				item, v = v, ""
			}
			name, params, _ := strings.Cut(item, ";")
			if strings.TrimSpace(name) != "gzip" {
				continue
			}
			return !zeroQ(params)
		}
	}
	return false
}

// zeroQ reports whether an Accept-Encoding parameter string sets an
// explicit zero quality (q=0, q=0.0, ...), the RFC 9110 way to refuse a
// coding by name.
func zeroQ(params string) bool {
	p := strings.TrimSpace(params)
	if !strings.HasPrefix(p, "q=0") {
		return false
	}
	for _, c := range p[len("q=0"):] {
		if c >= '1' && c <= '9' {
			return false
		}
		if c != '.' && c != '0' {
			break
		}
	}
	return true
}

func (s *Server) writeOutcome(w http.ResponseWriter, data []byte, cache, key string, start time.Time) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Header().Set("X-Spec-Key", key)
	w.Write(data)
	s.met.latency.observe(time.Since(start))
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ParseSpecRequest decodes a spec from a POST JSON body or GET/HEAD query
// parameters (app, policy, prim, cas, ldex, drop, procs, c, a, rounds,
// size, seed — mirroring the cmd/dsmsim flags). Exported so the fleet
// router parses requests exactly the way the backends it fronts do; the
// result still needs Normalize before Key or Point.
func ParseSpecRequest(r *http.Request) (Spec, error) {
	if r.Method == http.MethodPost {
		return parseSpecBody(r)
	}
	var sp Spec
	// The query is scanned in place (rawQueryGet) rather than parsed into
	// url.Values: building the Values map costs several allocations per
	// request, which would dominate a cache-hit GET. Values are substrings
	// of RawQuery unless a pair actually carries %-escapes. The field
	// helpers are top-level functions, not closures — calls through a
	// func-typed variable make escape analysis treat &sp.Field as escaping,
	// which would heap-allocate the spec on every GET.
	raw := r.URL.RawQuery
	sp.App, _ = rawQueryGet(raw, "app")
	sp.Policy, _ = rawQueryGet(raw, "policy")
	sp.Prim, _ = rawQueryGet(raw, "prim")
	sp.Variant, _ = rawQueryGet(raw, "cas")
	var err error
	queryInt(raw, "procs", &sp.Procs, &err)
	queryInt(raw, "c", &sp.Contention, &err)
	queryInt(raw, "rounds", &sp.Rounds, &err)
	queryInt(raw, "size", &sp.Size, &err)
	queryBool(raw, "ldex", &sp.LoadEx, &err)
	queryBool(raw, "drop", &sp.Drop, &err)
	if v, ok := rawQueryGet(raw, "a"); err == nil && ok {
		if sp.WriteRun, err = strconv.ParseFloat(v, 64); err != nil {
			err = fmt.Errorf("bad a %q", v)
		}
	}
	if v, ok := rawQueryGet(raw, "seed"); err == nil && ok {
		if sp.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			err = fmt.Errorf("bad seed %q", v)
		}
	}
	return sp, err
}

// specParseBufPool recycles POST body read buffers: a spec encodes to well
// under 200 bytes, so one small pooled buffer per concurrent request
// replaces the decoder's per-request stream buffering. Buffers grown past
// the put-back bound (a near-limit body) are dropped to the GC rather than
// pinned in the pool.
var specParseBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

const specParseBufMax = 16 << 10

// parseSpecBody decodes the POST form of a spec through a pooled read
// buffer. It lives apart from the GET path because Decode(&sp) makes the
// spec escape, and escape analysis is flow-insensitive — one function
// handling both methods would heap-allocate the spec on every GET too.
func parseSpecBody(r *http.Request) (Spec, error) {
	var sp Spec
	bp := specParseBufPool.Get().(*[]byte)
	defer func() {
		if cap(*bp) <= specParseBufMax {
			specParseBufPool.Put(bp)
		}
	}()
	body, err := appendReadAll((*bp)[:0], http.MaxBytesReader(nil, r.Body, 1<<16))
	*bp = body[:0]
	if err != nil {
		return sp, fmt.Errorf("bad spec JSON: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return sp, fmt.Errorf("bad spec JSON: %w", err)
	}
	return sp, nil
}

// appendReadAll is io.ReadAll into a caller-provided buffer: identical
// semantics, but the buffer comes back to the caller instead of being
// freshly allocated per call.
func appendReadAll(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// queryInt parses an optional integer query parameter into dst, recording
// the first failure in *err and leaving dst untouched after one.
func queryInt(raw, name string, dst *int, err *error) {
	v, ok := rawQueryGet(raw, name)
	if *err != nil || !ok {
		return
	}
	n, e := strconv.ParseInt(v, 10, 0)
	if e != nil {
		*err = fmt.Errorf("bad %s %q", name, v)
		return
	}
	*dst = int(n)
}

// queryBool is queryInt for boolean parameters.
func queryBool(raw, name string, dst *bool, err *error) {
	v, ok := rawQueryGet(raw, name)
	if *err != nil || !ok {
		return
	}
	b, e := strconv.ParseBool(v)
	if e != nil {
		*err = fmt.Errorf("bad %s %q", name, v)
		return
	}
	*dst = b
}

// rawQueryGet returns the first value of name in a raw query string,
// decoding percent/plus escapes only when a pair actually contains them —
// the API's enum and numeric values never do, so the common path returns a
// substring of raw and allocates nothing. Malformed pairs (bad escapes,
// semicolon separators) are skipped, matching url.ParseQuery, which drops
// the pairs it cannot decode while keeping the rest.
func rawQueryGet(raw, name string) (string, bool) {
	for len(raw) > 0 {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if strings.IndexByte(pair, ';') >= 0 {
			continue
		}
		k, v, _ := strings.Cut(pair, "=")
		if k != name {
			if !strings.ContainsAny(k, "%+") {
				continue
			}
			dk, err := url.QueryUnescape(k)
			if err != nil || dk != name {
				continue
			}
		}
		if strings.ContainsAny(v, "%+") {
			dv, err := url.QueryUnescape(v)
			if err != nil {
				continue
			}
			return dv, true
		}
		return v, true
	}
	return "", false
}
