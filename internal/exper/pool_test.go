package exper

import (
	"fmt"
	"strings"
	"testing"

	"dsm/internal/core"
	"dsm/internal/locks"
)

func TestReleaseMachineTwicePanics(t *testing.T) {
	m := NewMachine(Small(), Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP})
	ReleaseMachine(m)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double ReleaseMachine did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "ReleaseMachine called twice") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	ReleaseMachine(m)
}

func TestReleaseMachineNilIsNoop(t *testing.T) {
	ReleaseMachine(nil) // must not panic
}

func TestReacquiredMachineIsReleasable(t *testing.T) {
	bar := Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
	// A machine that comes back out of the pool must be releasable again
	// without tripping the double-release guard.
	for i := 0; i < 3; i++ {
		m := NewMachine(Small(), bar)
		ReleaseMachine(m)
	}
}
