package serve

import "testing"

// go test -bench wrappers over the exported benchmark bodies in bench.go
// (shared with cmd/dsmload -bench).

func BenchmarkServeHit(b *testing.B)   { BenchServeHit(b) }
func BenchmarkServeMiss(b *testing.B)  { BenchServeMiss(b) }
func BenchmarkServeDup90(b *testing.B) { BenchServeDup90(b) }
