package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
)

// Stack is a Treiber-style lock-free stack over statically allocated
// nodes, built to demonstrate the paper's "pointer problem" (section 2.2):
// a pop implemented with compare_and_swap can succeed incorrectly when the
// top node was popped and re-pushed while the popper was preempted (the
// ABA problem), because CAS "cannot detect if a shared location has been
// written with the same value that has been read". The
// load_linked/store_conditional pop is immune: any intervening write
// invalidates the reservation.
//
// Node ids are 1-based; 0 is the empty stack. Each node's next link lives
// in its own block.
type Stack struct {
	Top  arch.Addr
	next []arch.Addr // per node id (index 0 unused)
	Opts Options
}

// NewStack allocates a stack and nodes 1..capacity.
func NewStack(m *machine.Machine, policy core.Policy, capacity int, opts Options) *Stack {
	s := &Stack{
		Top:  m.AllocSync(policy),
		next: make([]arch.Addr, capacity+1),
		Opts: opts,
	}
	for i := 1; i <= capacity; i++ {
		s.next[i] = m.Alloc(arch.BlockBytes)
	}
	return s
}

// Push links node onto the stack.
func (s *Stack) Push(p *machine.Proc, node arch.Word) {
	switch s.Opts.Prim {
	case PrimLLSC:
		for {
			old := p.LoadLinked(s.Top)
			p.Store(s.next[node], old)
			if p.StoreConditional(s.Top, node) {
				return
			}
		}
	default:
		for {
			old := p.Load(s.Top)
			p.Store(s.next[node], old)
			if p.CompareAndSwap(s.Top, old, node) {
				return
			}
		}
	}
}

// Pop unlinks and returns the top node (0 when empty). The interposed
// function, if non-nil, runs between reading the top and attempting the
// swing — the window in which the ABA problem strikes; tests and the
// abaproblem example use it to stage an adversarial interleaving.
func (s *Stack) Pop(p *machine.Proc, interpose func()) arch.Word {
	switch s.Opts.Prim {
	case PrimLLSC:
		for {
			old := p.LoadLinked(s.Top)
			if old == 0 {
				return 0
			}
			next := p.Load(s.next[old])
			if interpose != nil {
				interpose()
			}
			if p.StoreConditional(s.Top, next) {
				return old
			}
		}
	default:
		// The CAS pop is intentionally the textbook ABA-prone version;
		// see PopValue for why real systems need tags/serials.
		for {
			old := p.Load(s.Top)
			if old == 0 {
				return 0
			}
			next := p.Load(s.next[old])
			if interpose != nil {
				interpose()
			}
			if p.CompareAndSwap(s.Top, old, next) {
				return old
			}
		}
	}
}

// Drain pops until empty, returning the node ids in pop order.
func (s *Stack) Drain(p *machine.Proc) []arch.Word {
	var out []arch.Word
	for {
		n := s.Pop(p, nil)
		if n == 0 {
			return out
		}
		out = append(out, n)
	}
}
