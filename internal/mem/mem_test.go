package mem

import (
	"testing"
	"testing/quick"

	"dsm/internal/arch"
	"dsm/internal/sim"
)

func newTestModule() (*sim.Engine, *Module) {
	eng := sim.NewEngine()
	return eng, New(eng, DefaultConfig())
}

func TestIsolatedAccessLatency(t *testing.T) {
	eng, m := newTestModule()
	var at sim.Time
	m.Access(func() { at = eng.Now() })
	eng.Run(0)
	if at != 18 {
		t.Fatalf("access completed at %d, want 18", at)
	}
}

func TestBackToBackAccessesPipeline(t *testing.T) {
	eng, m := newTestModule()
	var times []sim.Time
	for i := 0; i < 3; i++ {
		m.Access(func() { times = append(times, eng.Now()) })
	}
	eng.Run(0)
	// Service starts at 0, 6, 12; completions at 18, 24, 30.
	want := []sim.Time{18, 24, 30}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("completions %v, want %v", times, want)
		}
	}
	if m.Stats().QueueWait != 6+12 {
		t.Fatalf("QueueWait = %d, want 18", m.Stats().QueueWait)
	}
}

func TestAccessAfterIdleStartsImmediately(t *testing.T) {
	eng, m := newTestModule()
	var second sim.Time
	m.Access(func() {
		// Module idle again at occupancy end (6); now is 18.
		m.Access(func() { second = eng.Now() })
	})
	eng.Run(0)
	if second != 36 {
		t.Fatalf("second access at %d, want 36", second)
	}
}

func TestStatsCountAccesses(t *testing.T) {
	eng, m := newTestModule()
	for i := 0; i < 5; i++ {
		m.Access(func() {})
	}
	eng.Run(0)
	if m.Stats().Accesses != 5 {
		t.Fatalf("Accesses = %d, want 5", m.Stats().Accesses)
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear")
	}
}

func TestStorageZeroInitialized(t *testing.T) {
	_, m := newTestModule()
	if v := m.ReadWord(0x1000); v != 0 {
		t.Fatalf("fresh word = %d, want 0", v)
	}
	if b := m.ReadBlock(0x2000); b != (arch.BlockData{}) {
		t.Fatalf("fresh block = %v, want zeros", b)
	}
}

func TestWordReadWrite(t *testing.T) {
	_, m := newTestModule()
	m.WriteWord(0x40, 0xdeadbeef)
	m.WriteWord(0x44, 7)
	if m.ReadWord(0x40) != 0xdeadbeef || m.ReadWord(0x44) != 7 {
		t.Fatal("word readback mismatch")
	}
	// Words land in the right block slots.
	b := m.ReadBlock(0x40)
	if b[0] != 0xdeadbeef || b[1] != 7 {
		t.Fatalf("block = %v", b)
	}
}

func TestBlockReadWriteRoundTrip(t *testing.T) {
	_, m := newTestModule()
	f := func(raw [arch.WordsPerBlock]uint32, aRaw uint32) bool {
		a := arch.BlockBase(arch.Addr(aRaw))
		var d arch.BlockData
		for i, w := range raw {
			d[i] = arch.Word(w)
		}
		m.WriteBlock(a, d)
		return m.ReadBlock(a) == d && m.ReadWord(a+4) == d[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlocksAreIndependent(t *testing.T) {
	_, m := newTestModule()
	m.WriteWord(0x20, 1)
	m.WriteWord(0x40, 2)
	if m.ReadWord(0x20) != 1 || m.ReadWord(0x40) != 2 || m.ReadWord(0x60) != 0 {
		t.Fatal("cross-block interference")
	}
}

func TestMisalignedWordPanics(t *testing.T) {
	_, m := newTestModule()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for misaligned read")
		}
	}()
	m.ReadWord(0x41)
}
