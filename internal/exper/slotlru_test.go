package exper_test

import (
	"reflect"
	"testing"

	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/locks"
)

// geometries returns n distinct machine configurations (distinct processor
// counts, hence distinct mesh geometries).
func geometries(n int) []core.Config {
	bar := exper.Bar{Policy: core.PolicyINV, Prim: locks.PrimFAP}
	out := make([]core.Config, n)
	for i := range out {
		out[i] = exper.MachineConfig(exper.RunOpts{Procs: 1 << i}, bar)
	}
	return out
}

func TestSlotLRUBoundAndAccounting(t *testing.T) {
	cfgs := geometries(exper.SlotMachines + 2)
	var s exper.MachineSlot

	// Distinct geometries each build once; residency never exceeds the
	// bound.
	for i, cfg := range cfgs {
		s.Machine(cfg)
		if got := s.Resident(); got > exper.SlotMachines {
			t.Fatalf("after %d geometries: %d resident machines, bound is %d", i+1, got, exper.SlotMachines)
		}
	}
	if builds, resets := s.Stats(); builds != uint64(len(cfgs)) || resets != 0 {
		t.Fatalf("after %d distinct geometries: builds=%d resets=%d", len(cfgs), builds, resets)
	}

	// The most recent SlotMachines geometries are resident: re-requesting
	// them is all resets, and each returns the same machine it returned
	// before (identity, not just equivalence).
	recent := cfgs[len(cfgs)-exper.SlotMachines:]
	prev := make(map[int]any)
	for i, cfg := range recent {
		prev[i] = s.Machine(cfg)
	}
	builds0, _ := s.Stats()
	for i, cfg := range recent {
		if m := s.Machine(cfg); m != prev[i] {
			t.Fatalf("geometry %d: reuse returned a different machine", i)
		}
	}
	builds, resets := s.Stats()
	if builds != builds0 {
		t.Fatalf("re-requesting resident geometries built %d machines", builds-builds0)
	}
	if resets != uint64(2*len(recent)) {
		t.Fatalf("resets=%d, want %d", resets, 2*len(recent))
	}

	// The oldest geometry was evicted: requesting it builds again.
	s.Machine(cfgs[0])
	if b, _ := s.Stats(); b != builds+1 {
		t.Fatalf("evicted geometry did not rebuild: builds %d -> %d", builds, b)
	}
}

func TestSlotLRUEvictsLeastRecentlyUsed(t *testing.T) {
	cfgs := geometries(exper.SlotMachines + 1)
	var s exper.MachineSlot
	// Fill the slot with cfgs[0..bound-1], then touch cfgs[0] so cfgs[1]
	// becomes the least recently used.
	for _, cfg := range cfgs[:exper.SlotMachines] {
		s.Machine(cfg)
	}
	s.Machine(cfgs[0])
	// Inserting a new geometry must evict cfgs[1], not cfgs[0].
	s.Machine(cfgs[exper.SlotMachines])
	builds0, _ := s.Stats()
	s.Machine(cfgs[0])
	if b, _ := s.Stats(); b != builds0 {
		t.Fatal("recently-touched geometry was evicted")
	}
	s.Machine(cfgs[1])
	if b, _ := s.Stats(); b != builds0+1 {
		t.Fatal("least-recently-used geometry was not the one evicted")
	}
}

// mixedGeometryPlan interleaves three processor counts so consecutive plan
// indices almost never share a geometry — the slot-thrashing shape the
// grouped execution order exists for.
func mixedGeometryPlan(par int) exper.Plan {
	bars := exper.SyntheticBars()
	var pts []exper.Point
	for i, procs := range []int{4, 8, 16, 4, 8, 16, 8, 4} {
		bar := bars[i%len(bars)]
		pts = append(pts, exper.Point{
			App:     exper.AppCounter,
			Bar:     bar,
			Scale:   exper.RunOpts{Procs: procs, Rounds: 2},
			Pattern: exper.Pattern{Contention: 2, Rounds: 2},
		})
	}
	return exper.Plan{Points: pts, Par: par}
}

func TestGroupedSweepDeterminism(t *testing.T) {
	serial := exper.Run(mixedGeometryPlan(1))
	wide := exper.Run(mixedGeometryPlan(8))
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("mixed-geometry plan results differ between par=1 and par=8:\n%+v\nvs\n%+v", serial, wide)
	}
}

// TestGroupedSweepReducesRebuilds checks the point of the grouping: a
// serial mixed-geometry plan builds each geometry once per worker rather
// than once per geometry switch.
func TestGroupedSweepReducesRebuilds(t *testing.T) {
	pl := mixedGeometryPlan(1)
	var s exper.MachineSlot
	order := exper.GroupOrderForTest(pl.Points)
	for _, i := range order {
		pl.Points[i].RunSlot(&s, false)
	}
	builds, resets := s.Stats()
	if builds != 3 {
		t.Fatalf("grouped execution built %d machines for 3 geometries", builds)
	}
	if want := uint64(len(pl.Points) - 3); resets != want {
		t.Fatalf("grouped execution reset %d machines, want %d", resets, want)
	}
}
