package cache

import (
	"testing"
	"testing/quick"

	"dsm/internal/arch"
)

func blockAt(w0 arch.Word) arch.BlockData {
	var d arch.BlockData
	d[0] = w0
	return d
}

func TestLookupMissOnEmpty(t *testing.T) {
	c := New(DefaultConfig())
	if c.Lookup(0x100) != nil {
		t.Fatal("hit in empty cache")
	}
}

func TestInsertThenHit(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(0x104, SharedRO, blockAt(7))
	l := c.Lookup(0x108) // same block
	if l == nil || l.State != SharedRO || l.Base != 0x100 || l.Data[0] != 7 {
		t.Fatalf("lookup = %+v", l)
	}
	if c.Lookup(0x120) != nil {
		t.Fatal("adjacent block hit")
	}
}

func TestInsertSameBlockUpdatesInPlace(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(0x100, SharedRO, blockAt(1))
	l, v := c.Insert(0x100, ExclusiveRW, blockAt(2))
	if v != nil {
		t.Fatal("in-place update produced a victim")
	}
	if l.State != ExclusiveRW || l.Data[0] != 2 {
		t.Fatalf("line = %+v", l)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Sets: 1, Assoc: 2})
	c.Insert(0x00, SharedRO, blockAt(1))
	c.Insert(0x20, SharedRO, blockAt(2))
	c.Lookup(0x00) // make 0x20 the LRU
	_, v := c.Insert(0x40, SharedRO, blockAt(3))
	if v == nil || v.Base != 0x20 {
		t.Fatalf("victim = %+v, want block 0x20", v)
	}
	if c.Peek(0x00) == nil || c.Peek(0x40) == nil || c.Peek(0x20) != nil {
		t.Fatal("post-eviction contents wrong")
	}
	if c.Stats().Evictions != 1 || c.Stats().DirtyEvictions != 0 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestDirtyEvictionCounted(t *testing.T) {
	c := New(Config{Sets: 1, Assoc: 1})
	c.Insert(0x00, ExclusiveRW, blockAt(1))
	_, v := c.Insert(0x20, SharedRO, blockAt(2))
	if v == nil || v.State != ExclusiveRW || v.Data[0] != 1 {
		t.Fatalf("victim = %+v", v)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := New(Config{Sets: 1, Assoc: 2})
	c.Insert(0x00, SharedRO, blockAt(1))
	c.Insert(0x20, SharedRO, blockAt(2))
	c.Peek(0x00) // would protect 0x00 if it touched LRU
	_, v := c.Insert(0x40, SharedRO, blockAt(3))
	if v == nil || v.Base != 0x00 {
		t.Fatalf("victim = %+v, want LRU block 0x00", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(0x100, ExclusiveRW, blockAt(9))
	v := c.Invalidate(0x10c)
	if v == nil || v.State != ExclusiveRW || v.Data[0] != 9 {
		t.Fatalf("invalidate returned %+v", v)
	}
	if c.Peek(0x100) != nil {
		t.Fatal("line survived invalidation")
	}
	if c.Invalidate(0x100) != nil {
		t.Fatal("second invalidate returned data")
	}
}

func TestDowngrade(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(0x100, ExclusiveRW, blockAt(3))
	l := c.Downgrade(0x100)
	if l == nil || l.State != SharedRO {
		t.Fatalf("downgraded line = %+v", l)
	}
	// Downgrading a shared line keeps it shared.
	if c.Downgrade(0x100).State != SharedRO {
		t.Fatal("downgrade of shared line changed state")
	}
	if c.Downgrade(0x200) != nil {
		t.Fatal("downgrade of absent line returned a line")
	}
}

func TestLineWordAccessors(t *testing.T) {
	c := New(DefaultConfig())
	l, _ := c.Insert(0x100, ExclusiveRW, arch.BlockData{})
	l.SetWord(0x110, 42)
	if l.Word(0x110) != 42 || l.Data[4] != 42 {
		t.Fatal("word accessors broken")
	}
}

func TestLineWordPanicsOutsideLine(t *testing.T) {
	c := New(DefaultConfig())
	l, _ := c.Insert(0x100, SharedRO, arch.BlockData{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-line address")
		}
	}()
	l.Word(0x200)
}

func TestReservationLifecycle(t *testing.T) {
	c := New(DefaultConfig())
	if _, ok := c.Reservation(); ok {
		t.Fatal("fresh cache holds a reservation")
	}
	c.SetReservation(0x104)
	if a, ok := c.Reservation(); !ok || a != 0x100 {
		t.Fatalf("reservation = %#x,%v", a, ok)
	}
	if !c.ReservedOn(0x11c) || c.ReservedOn(0x120) {
		t.Fatal("ReservedOn block matching wrong")
	}
	// A second reservation displaces the first (one per processor).
	c.SetReservation(0x200)
	if c.ReservedOn(0x100) || !c.ReservedOn(0x200) {
		t.Fatal("reservation displacement wrong")
	}
	c.ClearReservation()
	if _, ok := c.Reservation(); ok {
		t.Fatal("ClearReservation did not clear")
	}
}

func TestInvalidationClearsMatchingReservation(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(0x100, SharedRO, blockAt(1))
	c.SetReservation(0x100)
	c.Invalidate(0x300) // unrelated
	if !c.ReservedOn(0x100) {
		t.Fatal("unrelated invalidation cleared reservation")
	}
	c.Invalidate(0x100)
	if c.ReservedOn(0x100) {
		t.Fatal("matching invalidation kept reservation")
	}
}

func TestInvalidationOfUncachedReservedBlockClearsReservation(t *testing.T) {
	// The reservation can outlive the cached copy (e.g. the line was never
	// cached exclusively); an invalidation for that address must still
	// clear it.
	c := New(DefaultConfig())
	c.SetReservation(0x100)
	c.Invalidate(0x100)
	if c.ReservedOn(0x100) {
		t.Fatal("reservation survived invalidation of uncached block")
	}
}

func TestEvictionClearsReservation(t *testing.T) {
	c := New(Config{Sets: 1, Assoc: 1})
	c.Insert(0x00, SharedRO, blockAt(1))
	c.SetReservation(0x00)
	c.Insert(0x20, SharedRO, blockAt(2))
	if c.ReservedOn(0x00) {
		t.Fatal("reservation survived eviction of its line")
	}
}

func TestForEachVisitsAllValidLines(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(0x000, SharedRO, blockAt(1))
	c.Insert(0x020, ExclusiveRW, blockAt(2))
	c.Insert(0x040, SharedRO, blockAt(3))
	c.Invalidate(0x020)
	n := 0
	c.ForEach(func(l *Line) { n++ })
	if n != 2 {
		t.Fatalf("ForEach visited %d lines, want 2", n)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []Config{{Sets: 0, Assoc: 1}, {Sets: 3, Assoc: 1}, {Sets: 4, Assoc: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestInsertInvalidStatePanics(t *testing.T) {
	c := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Invalid insert")
		}
	}()
	c.Insert(0x100, Invalid, arch.BlockData{})
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || SharedRO.String() != "S" || ExclusiveRW.String() != "E" {
		t.Fatal("state names wrong")
	}
}

func TestPropertyLookupFindsWhatInsertPut(t *testing.T) {
	c := New(DefaultConfig())
	f := func(aRaw uint16, w uint32) bool {
		a := arch.Addr(aRaw) * 4
		c.Insert(a, ExclusiveRW, blockAt(arch.Word(w)))
		l := c.Lookup(a)
		return l != nil && l.Base == arch.BlockBase(a) && l.Data[0] == arch.Word(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertySingleCopyPerBlock(t *testing.T) {
	// Repeated inserts of the same block never duplicate it.
	c := New(Config{Sets: 2, Assoc: 4})
	for i := 0; i < 100; i++ {
		st := SharedRO
		if i%2 == 0 {
			st = ExclusiveRW
		}
		c.Insert(arch.Addr(i%6)*32, st, blockAt(arch.Word(i)))
	}
	seen := map[arch.Addr]int{}
	c.ForEach(func(l *Line) { seen[l.Base]++ })
	for base, n := range seen {
		if n != 1 {
			t.Fatalf("block %#x cached %d times", base, n)
		}
	}
}
