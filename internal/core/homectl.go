package core

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/dir"
	"dsm/internal/mem"
	"dsm/internal/mesh"
)

// homeTxn is the home controller's per-block transient state: an
// outstanding recall (awaiting data or a negative answer from the owner),
// or a wait for an in-flight write-back after a recall found the owner's
// copy already gone. The retained request message (orig) is owned by this
// record until it is replayed or freed.
type homeTxn struct {
	owner mesh.NodeID // node the data must come from
	orig  *msg        // request to replay when the data arrives; nil for awaitWB
}

// HomeCtl is one node's memory/directory controller: the serialization
// point for its share of the address space, and the locus of computational
// power for the UPD and UNC implementations of the atomic primitives.
type HomeCtl struct {
	sys  *System
	node mesh.NodeID
	mod  mem.Module
	dir  dir.Directory
	busy map[arch.Addr]homeTxn // block base -> in-flight transaction

	// Preallocated hooks: recvHook receives a delivered message (via
	// Mesh.SendArg); processHook runs it after the memory-bank queue delay
	// (via Module.AccessArg). Allocated once so steady-state traffic
	// schedules without building closures.
	recvHook    func(any)
	processHook func(any)

	// retained marks that the request handler took ownership of the message
	// it was dispatched (recall stored it in busy); see dispatchRequest.
	retained bool
}

func (h *HomeCtl) init(s *System, n mesh.NodeID) {
	h.sys = s
	h.node = n
	h.mod.Init(s.eng, s.cfg.Mem)
	h.dir.Init()
	h.busy = make(map[arch.Addr]homeTxn)
	h.recvHook = func(a any) { h.receive(a.(*msg)) }
	h.processHook = func(a any) { h.process(a.(*msg)) }
}

// reset returns the controller to its post-init state for machine reuse,
// keeping the preallocated hooks and map storage. Any request message still
// retained by an in-flight transaction goes back to the pool (a quiescent
// system has none).
func (h *HomeCtl) reset() {
	h.mod.Reset()
	h.dir.Reset()
	for base, t := range h.busy {
		if t.orig != nil {
			h.sys.freeMsg(t.orig)
		}
		delete(h.busy, base)
	}
	h.retained = false
}

// Node returns the controller's node id.
func (h *HomeCtl) Node() mesh.NodeID { return h.node }

// Memory exposes the underlying module (allocation, tests, and debugging).
func (h *HomeCtl) Memory() *mem.Module { return &h.mod }

// Directory exposes the directory (tests and invariant checks).
func (h *HomeCtl) Directory() *dir.Directory { return &h.dir }

// receive queues the message through the memory bank: every home-side
// action costs one (queued) memory access, which is how memory contention
// enters the model.
func (h *HomeCtl) receive(m *msg) {
	h.mod.AccessArg(h.processHook, m)
}

// process dispatches one message and recycles it. Request kinds go through
// dispatchRequest, which knows a recall may retain the request; every other
// kind is fully consumed here.
func (h *HomeCtl) process(m *msg) {
	base := arch.BlockBase(m.addr)
	switch m.kind {
	case mRead, mReadEx, mSCHome, mCASHome, mUncOp, mUpdRead, mUpdOp:
		h.dispatchRequest(m, base)
		return
	case mWB, mWBRecall, mWBShare:
		h.handleDataReturn(m, base)
	case mDropS:
		h.handleDropS(m, base)
	case mRecallNak:
		h.handleRecallNak(m, base)
	case mCASRel:
		h.handleCASRel(m, base)
	default:
		panic(fmt.Sprintf("core: home %d received %v", h.node, m.kind))
	}
	h.sys.freeMsg(m)
}

// dispatchRequest runs a (possibly replayed) request and recycles it unless
// the handler retained it in the busy state for a later replay.
func (h *HomeCtl) dispatchRequest(m *msg, base arch.Addr) {
	h.retained = false
	h.handleRequest(m, base)
	if !h.retained {
		h.sys.freeMsg(m)
	}
}

// reply sends a response to the transaction's requester.
func (h *HomeCtl) reply(m *msg, r *msg) {
	r.addr = m.addr
	r.requester = m.requester
	r.op = m.op
	r.chain = m.chain
	h.sys.send(h.node, m.requester, r, false)
}

func (h *HomeCtl) nak(m *msg) {
	r := h.sys.newMsg()
	*r = msg{kind: mNak}
	h.reply(m, r)
}

// recall puts the block in the busy state and asks the current owner for
// the data (or, for mCASFwd, for an owner-side comparison). It takes
// ownership of m, holding it for replay when the data arrives.
func (h *HomeCtl) recall(m *msg, base arch.Addr, owner mesh.NodeID, kind msgKind) {
	h.busy[base] = homeTxn{owner: owner, orig: m}
	h.retained = true
	fwd := h.sys.newMsg()
	*fwd = msg{
		kind: kind, addr: m.addr, requester: m.requester,
		forwardVal: m.val, forwardV2: m.val2, chain: m.chain,
	}
	h.sys.send(h.node, owner, fwd, false)
}

func (h *HomeCtl) handleRequest(m *msg, base arch.Addr) {
	if _, inFlight := h.busy[base]; inFlight {
		h.nak(m)
		return
	}
	e := h.dir.Entry(base)
	defer e.Check(base)
	switch m.kind {
	case mRead:
		h.handleRead(m, base, e)
	case mReadEx:
		h.handleReadEx(m, base, e)
	case mSCHome:
		h.handleSCHome(m, base, e)
	case mCASHome:
		h.handleCASHome(m, base, e)
	case mUncOp:
		h.handleUncOp(m, base, e)
	case mUpdRead:
		h.handleUpdRead(m, base, e)
	case mUpdOp:
		h.handleUpdOp(m, base, e)
	}
}

// ------------------------------------------------------------- INV ------

func (h *HomeCtl) handleRead(m *msg, base arch.Addr, e *dir.Entry) {
	switch e.State {
	case dir.Unowned, dir.Shared:
		e.State = dir.Shared
		e.Sharers.Add(m.requester)
		r := h.sys.newMsg()
		*r = msg{kind: mDataS, data: h.mod.ReadBlock(base), hasData: true}
		h.reply(m, r)
	case dir.Exclusive:
		if e.Owner == m.requester {
			// The requester's write-back is in flight; retry until it lands.
			h.nak(m)
			return
		}
		h.recall(m, base, e.Owner, mRecallS)
	default:
		h.nak(m)
	}
}

func (h *HomeCtl) handleReadEx(m *msg, base arch.Addr, e *dir.Entry) {
	switch e.State {
	case dir.Unowned:
		h.grantExclusive(m, base, e, false)
	case dir.Shared:
		h.grantExclusive(m, base, e, false)
	case dir.Exclusive:
		if e.Owner == m.requester {
			h.nak(m)
			return
		}
		h.recall(m, base, e.Owner, mRecallE)
	default:
		h.nak(m)
	}
}

// grantExclusive transfers the block exclusively to the requester from the
// Unowned or Shared state: invalidations go to the other sharers, which
// acknowledge directly to the requester; the grant carries the expected
// acknowledgment count. scGrant marks a store_conditional success grant.
func (h *HomeCtl) grantExclusive(m *msg, base arch.Addr, e *dir.Entry, scGrant bool) {
	others := e.Sharers
	others.Remove(m.requester)
	acks := others.Count()
	for bits, n := uint64(others), mesh.NodeID(0); bits != 0; bits, n = bits>>1, n+1 {
		if bits&1 == 0 {
			continue
		}
		h.sys.counters.Invals++
		inv := h.sys.newMsg()
		*inv = msg{kind: mInval, addr: m.addr, requester: m.requester, chain: m.chain}
		h.sys.send(h.node, n, inv, false)
	}
	e.State = dir.Exclusive
	e.Sharers = 0
	e.Owner = m.requester
	r := h.sys.newMsg()
	*r = msg{
		kind: mDataE, data: h.mod.ReadBlock(base), hasData: true,
		acks: acks, ok: scGrant,
	}
	h.reply(m, r)
}

func (h *HomeCtl) handleSCHome(m *msg, base arch.Addr, e *dir.Entry) {
	if e.State == dir.Shared && e.Sharers.Has(m.requester) {
		// No write intervened since the reservation was set (any write
		// would have invalidated the requester's copy first): succeed.
		h.grantExclusive(m, base, e, true)
		return
	}
	// Exclusive elsewhere or unowned: fail, per the paper's protocol.
	r := h.sys.newMsg()
	*r = msg{kind: mSCFail}
	h.reply(m, r)
}

func (h *HomeCtl) handleCASHome(m *msg, base arch.Addr, e *dir.Entry) {
	switch e.State {
	case dir.Unowned, dir.Shared:
		old := h.mod.ReadWord(m.addr)
		if old == m.val {
			// Comparison succeeds at home: behave like INV (the requester
			// acquires an exclusive copy and performs the swap locally).
			h.grantExclusive(m, base, e, false)
			return
		}
		fail := h.sys.newMsg()
		*fail = msg{kind: mCASFail, val: old}
		if h.sys.cfg.CAS == CASShare {
			e.State = dir.Shared
			e.Sharers.Add(m.requester)
			fail.data = h.mod.ReadBlock(base)
			fail.hasData = true
		}
		h.reply(m, fail)
	case dir.Exclusive:
		if e.Owner == m.requester {
			h.nak(m)
			return
		}
		// Compare at the owner, which has the most up-to-date copy.
		h.recall(m, base, e.Owner, mCASFwd)
	default:
		h.nak(m)
	}
}

// handleDataReturn processes dirty data arriving at the home: ordinary
// write-backs (eviction or drop_copy), and the owner's responses to
// recalls and forwarded CAS comparisons.
func (h *HomeCtl) handleDataReturn(m *msg, base arch.Addr) {
	e := h.dir.Entry(base)
	if t, inFlight := h.busy[base]; inFlight {
		if m.src != t.owner {
			panic(fmt.Sprintf("core: home %d got %v for busy %#x from %d, expected %d",
				h.node, m.kind, base, m.src, t.owner))
		}
		h.mod.WriteBlock(base, m.data)
		if m.kind == mWBShare {
			// The owner kept a read-only copy (read recall or INVs fail).
			e.State = dir.Shared
			e.Sharers = 0
			e.Sharers.Add(t.owner)
			e.Owner = 0
		} else {
			e.State = dir.Unowned
			e.Sharers = 0
			e.Owner = 0
		}
		delete(h.busy, base)
		e.Check(base)
		if t.orig != nil {
			// Replay the retained request against the refreshed directory
			// state; the chain accumulated so far carries over, giving the
			// paper's 4-serialized-message remote-exclusive store path.
			// dispatchRequest recycles it unless a second recall retains it.
			orig := t.orig
			orig.chain = m.chain
			h.dispatchRequest(orig, base)
		}
		return
	}
	// Spontaneous write-back from the recorded owner.
	if e.State != dir.Exclusive || e.Owner != m.src {
		panic(fmt.Sprintf("core: home %d got %v for %#x in state %v from %d",
			h.node, m.kind, base, e.State, m.src))
	}
	if m.kind != mWB {
		panic(fmt.Sprintf("core: unexpected %v outside a recall", m.kind))
	}
	h.mod.WriteBlock(base, m.data)
	e.State = dir.Unowned
	e.Owner = 0
	e.Check(base)
}

func (h *HomeCtl) handleDropS(m *msg, base arch.Addr) {
	e := h.dir.Entry(base)
	// The drop hint may be stale (the sharer was already invalidated or
	// the block moved on); act only if the sender is still recorded.
	if e.State == dir.Shared && e.Sharers.Has(m.src) {
		e.Sharers.Remove(m.src)
		if e.Sharers.Empty() {
			e.State = dir.Unowned
		}
	}
}

func (h *HomeCtl) handleRecallNak(m *msg, base arch.Addr) {
	t, inFlight := h.busy[base]
	if !inFlight || t.owner != m.src || t.orig == nil {
		// Stale: the write-back arrived first and completed the recall.
		return
	}
	// The owner's copy is already on its way back as a write-back. NAK the
	// waiting requester (it will retry, per the paper's drop_copy
	// discussion) and hold the block until the write-back lands.
	h.nak(t.orig)
	h.sys.freeMsg(t.orig)
	t.orig = nil
	h.busy[base] = t
}

func (h *HomeCtl) handleCASRel(m *msg, base arch.Addr) {
	t, inFlight := h.busy[base]
	if !inFlight || t.owner != m.src {
		return
	}
	// INVd failure handled entirely at the owner; ownership is unchanged.
	if t.orig != nil {
		h.sys.freeMsg(t.orig)
	}
	delete(h.busy, base)
}

// ------------------------------------------------------- UNC and UPD ----

// execMem performs an operation at the memory: the locus of computational
// power for the UNC and UPD implementations.
func (h *HomeCtl) execMem(e *dir.Entry, m *msg) (val arch.Word, ok, wrote bool, serial arch.Word, hint bool) {
	old := h.mod.ReadWord(m.addr)
	val, ok = old, true
	write := func(v arch.Word) {
		h.mod.WriteWord(m.addr, v)
		wrote = true
		if e.Reservations != nil {
			e.Reservations.OnWrite()
		}
	}
	switch m.op {
	case OpLoad, OpLoadExclusive:
		// Reads; load_exclusive degenerates to a load at memory.
	case OpStore:
		write(m.val)
	case OpFetchAdd:
		write(old + m.val)
	case OpFetchStore:
		write(m.val)
	case OpFetchOr:
		write(old | m.val)
	case OpTestAndSet:
		write(1)
	case OpCAS:
		if old == m.val {
			write(m.val2)
		} else {
			ok = false
		}
	case OpLL:
		rs := h.reservations(e)
		hint = !rs.Reserve(m.requester)
		serial = rs.Serial()
	case OpSC:
		rs := h.reservations(e)
		if rs.Validate(m.requester, m.val2) {
			write(m.val)
		} else {
			ok = false
		}
	default:
		panic(fmt.Sprintf("core: execMem of %v", m.op))
	}
	h.sys.trackAccess(m.addr, m.requester, m.op, wrote)
	return val, ok, wrote, serial, hint
}

func (h *HomeCtl) reservations(e *dir.Entry) *dir.ResvState {
	// Directory.Reset keeps reservation state allocated across machine
	// reuse, but Reset may change the behavioral configuration, so a
	// retained state whose scheme or limit no longer matches is replaced.
	rs := e.Reservations
	if rs == nil || rs.Scheme != h.sys.cfg.ResvScheme ||
		(rs.Scheme == dir.ResvLimited && rs.Limit != h.sys.cfg.ResvLimit) {
		rs = dir.NewResvState(h.sys.cfg.ResvScheme, h.sys.cfg.ResvLimit)
		e.Reservations = rs
	}
	rs.Wake()
	return rs
}

func (h *HomeCtl) handleUncOp(m *msg, base arch.Addr, e *dir.Entry) {
	val, ok, _, serial, hint := h.execMem(e, m)
	r := h.sys.newMsg()
	*r = msg{kind: mUncReply, val: val, ok: ok, serial: serial, hint: hint}
	h.reply(m, r)
}

func (h *HomeCtl) handleUpdRead(m *msg, base arch.Addr, e *dir.Entry) {
	e.State = dir.Shared
	e.Sharers.Add(m.requester)
	r := h.sys.newMsg()
	*r = msg{kind: mDataS, data: h.mod.ReadBlock(base), hasData: true}
	h.reply(m, r)
}

func (h *HomeCtl) handleUpdOp(m *msg, base arch.Addr, e *dir.Entry) {
	val, ok, wrote, serial, hint := h.execMem(e, m)
	acks := 0
	newWord := h.mod.ReadWord(m.addr)
	// Updates go out only when the value actually changed: a write of the
	// same value (e.g. test_and_set on an already-held lock) leaves every
	// cached copy correct. This is why, under UPD, "only successful
	// writes cause updates" (section 4.3.1).
	if wrote && newWord != val {
		targets := e.Sharers
		targets.Remove(m.requester)
		acks = targets.Count()
		for bits, n := uint64(targets), mesh.NodeID(0); bits != 0; bits, n = bits>>1, n+1 {
			if bits&1 == 0 {
				continue
			}
			h.sys.counters.Updates++
			upd := h.sys.newMsg()
			*upd = msg{
				kind: mUpdate, addr: m.addr, requester: m.requester,
				updWord: newWord, chain: m.chain,
			}
			h.sys.send(h.node, n, upd, false)
		}
	}
	// The requester retains (or acquires) a shared copy of the block.
	e.State = dir.Shared
	e.Sharers.Add(m.requester)
	r := h.sys.newMsg()
	*r = msg{
		kind: mUpdReply, val: val, ok: ok, serial: serial, hint: hint,
		data: h.mod.ReadBlock(base), hasData: true, acks: acks,
	}
	h.reply(m, r)
}
