package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run(0)
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order %v, want ascending", order)
		}
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func() {
		e.After(7, func() { fired = e.Now() })
	})
	e.Run(0)
	if fired != 107 {
		t.Fatalf("After fired at %d, want 107", fired)
	}
}

func TestEngineSchedulingInPastRunsNow(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(50, func() {
		e.At(10, func() { fired = e.Now() })
	})
	e.Run(0)
	if fired != 50 {
		t.Fatalf("past event fired at %d, want clamped to 50", fired)
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func() { ran = true })
	ev.Cancel()
	e.Run(0)
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %d for a dead event", e.Now())
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	n := e.Run(12)
	if n != 2 || len(ran) != 2 {
		t.Fatalf("ran %d events %v, want 2 within limit 12", n, ran)
	}
	// Remaining events still runnable.
	n = e.Run(0)
	if n != 2 {
		t.Fatalf("second Run executed %d, want 2", n)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(0)
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	a := e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	a.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", e.Pending())
	}
}

func TestEnginePendingOnDoubleCancel(t *testing.T) {
	e := NewEngine()
	a := e.At(1, func() {})
	e.At(2, func() {})
	a.Cancel()
	a.Cancel() // must not decrement the live counter twice
	if e.Pending() != 1 {
		t.Fatalf("Pending after double cancel = %d, want 1", e.Pending())
	}
	e.Run(0)
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}

func TestEnginePendingTracksRunAndReschedule(t *testing.T) {
	e := NewEngine()
	e.At(1, func() { e.After(1, func() {}) })
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 2 { // one ran, one was scheduled from inside it
		t.Fatalf("Pending after step = %d, want 2", e.Pending())
	}
	e.Run(0)
	if e.Pending() != 0 {
		t.Fatalf("Pending after Run = %d, want 0", e.Pending())
	}
}

func TestEventPoolReusesFiredEvent(t *testing.T) {
	e := NewEngine()
	ev1 := e.At(1, func() {})
	e.Run(0)
	ev2 := e.At(2, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event was not recycled by the next At")
	}
	// Cancel through the stale first handle targets the same storage; the
	// live counter must stay consistent.
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run(0)
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}

func TestEventPoolReuseAfterCancel(t *testing.T) {
	e := NewEngine()
	ran := 0
	ev := e.At(5, func() { ran++ })
	ev.Cancel()
	e.Run(0) // pops and recycles the dead event
	if ran != 0 {
		t.Fatal("cancelled event ran")
	}
	ev2 := e.At(7, func() { ran++ })
	if ev2 != ev {
		t.Fatal("cancelled event was not recycled")
	}
	if ev2.dead {
		t.Fatal("recycled event still marked dead")
	}
	e.Run(0)
	if ran != 1 {
		t.Fatalf("recycled event ran %d times, want 1", ran)
	}
}

func TestEventCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, func() {})
	e.Run(0)
	ev.Cancel() // fired and recycled to the pool: must be a no-op
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	later := e.At(3, func() {})
	if later.dead {
		t.Fatal("event scheduled after stale Cancel is dead")
	}
}

// TestEngineEqualTimestampStress drives the 4-ary heap through a large mix
// of duplicate timestamps and verifies the (time, seq) total order — the
// scheduling-order tie-break — survives sift-up/sift-down at every arity
// boundary.
func TestEngineEqualTimestampStress(t *testing.T) {
	e := NewEngine()
	r := NewRNG(77)
	type rec struct {
		at  Time
		ord int
	}
	var got []rec
	next := 0
	for i := 0; i < 3000; i++ {
		at := Time(r.Intn(17)) // heavy timestamp collisions
		ord := next
		next++
		e.At(at, func() { got = append(got, rec{at, ord}) })
	}
	e.Run(0)
	if len(got) != 3000 {
		t.Fatalf("ran %d events, want 3000", len(got))
	}
	seen := make(map[Time]int)
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time order violated at %d: %d after %d", i, got[i].at, got[i-1].at)
		}
	}
	for _, g := range got {
		if last, ok := seen[g.at]; ok && g.ord < last {
			t.Fatalf("tie-break violated at t=%d: order %d after %d", g.at, g.ord, last)
		}
		seen[g.at] = g.ord
	}
}

// TestEnginePoolStressDeterminism interleaves scheduling, cancellation, and
// execution so events cycle through the pool many times, and checks the
// execution trace is reproducible.
func TestEnginePoolStressDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		r := NewRNG(9)
		var trace []Time
		var spawn func()
		n := 0
		spawn = func() {
			trace = append(trace, e.Now())
			n++
			if n >= 500 {
				return
			}
			e.After(Time(1+r.Intn(5)), spawn)
			e.After(Time(1+r.Intn(5)), func() { t.Error("cancelled event ran") }).Cancel()
		}
		e.At(0, spawn)
		e.Run(0)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

func TestEngineStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		r := NewRNG(42)
		var trace []Time
		var spawn func()
		spawn = func() {
			trace = append(trace, e.Now())
			if len(trace) < 200 {
				e.After(Time(1+r.Intn(10)), spawn)
			}
		}
		e.At(0, spawn)
		e.At(0, spawn)
		e.Run(0)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGDeterministicAndDistinct(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs coincide %d/100 times", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(123)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork(1)
	f2 := r.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked RNGs coincide %d/100 times", same)
	}
}

func TestRNGIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(2024)
	const n, trials = 8, 80000
	var buckets [n]int
	for i := 0; i < trials; i++ {
		buckets[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range buckets {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}
