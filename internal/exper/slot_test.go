package exper

import (
	"bytes"
	"testing"

	"dsm/internal/core"
	"dsm/internal/locks"
)

// TestSweepPerWorkerMachineDeterminism pins the per-worker machine
// ownership contract: a plan whose workers each reuse one resident machine
// across points — including points of different geometry, which force the
// slot to rebuild mid-sweep — produces byte-identical results at par 1 and
// par 8, full reports included.
func TestSweepPerWorkerMachineDeterminism(t *testing.T) {
	small := RunOpts{Procs: 4, Rounds: 2}
	large := RunOpts{Procs: 8, Rounds: 2}
	var points []Point
	for _, o := range []RunOpts{small, large, small, large} {
		for _, bar := range SyntheticBars()[:4] {
			points = append(points, Point{
				App: AppCounter, Bar: bar, Scale: o,
				Pattern: Pattern{Contention: o.Procs, Rounds: o.Rounds},
			})
		}
	}
	run := func(par int) []Result {
		return Run(Plan{Points: points, Par: par, Collect: true})
	}
	serial := run(1)
	par8 := run(8)
	if len(par8) != len(serial) {
		t.Fatalf("par=8: %d results, want %d", len(par8), len(serial))
	}
	for i := range serial {
		if par8[i].Elapsed != serial[i].Elapsed ||
			par8[i].Updates != serial[i].Updates ||
			par8[i].AvgCycles != serial[i].AvgCycles {
			t.Fatalf("point %d: par=8 %+v != par=1 %+v", i, par8[i], serial[i])
		}
		var a, b bytes.Buffer
		if err := serial[i].Report.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := par8[i].Report.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("point %d: par=8 report differs from par=1\n%s\n--- vs ---\n%s",
				i, b.String(), a.String())
		}
	}
}

// TestMachineSlotReusesResidentMachine checks the slot actually reuses its
// machine for matching geometry (no rebuild per point) and rebuilds only
// on a structural mismatch.
func TestMachineSlotReusesResidentMachine(t *testing.T) {
	bar := Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
	var s MachineSlot
	m1 := s.Machine(MachineConfig(RunOpts{Procs: 8}, bar))
	m2 := s.Machine(MachineConfig(RunOpts{Procs: 8}, bar))
	if m1 != m2 {
		t.Fatal("slot rebuilt a machine for matching geometry")
	}
	m3 := s.Machine(MachineConfig(RunOpts{Procs: 4}, bar))
	if m3 == m1 {
		t.Fatal("slot reused a machine across a geometry change")
	}
	if got := m3.Procs(); got != 4 {
		t.Fatalf("rebuilt machine has %d procs, want 4", got)
	}
}

// TestRunSlotMatchesRun checks the slot path and the pooled one-off path
// produce identical results for the same point — determinism is per run,
// not per machine-ownership scheme.
func TestRunSlotMatchesRun(t *testing.T) {
	p := Point{
		App:     AppCounter,
		Bar:     Bar{Policy: core.PolicyINV, Prim: locks.PrimCAS},
		Scale:   RunOpts{Procs: 8, Rounds: 3},
		Pattern: Pattern{Contention: 8, Rounds: 3},
	}
	want := p.Run(false)
	var s MachineSlot
	for i := 0; i < 3; i++ {
		if got := p.RunSlot(&s, false); got != want {
			t.Fatalf("RunSlot pass %d: %+v != Run %+v", i, got, want)
		}
	}
}
