// Package stats implements the measurement machinery of the paper's
// methodology: integer histograms, the contention tracker behind the
// figure-2 histograms ("number of processors contending to access an
// atomically accessed shared location at the beginning of each access"),
// the write-run-length tracker of Eggers & Katz as used in section 4.2, and
// the serialized-message-chain recorder behind Table 1.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Histogram counts occurrences of small integer values.
type Histogram struct {
	counts map[int]uint64
	total  uint64
	sum    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Reset forgets all samples, keeping the map's buckets allocated.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.total = 0
	h.sum = 0
}

// Add records one occurrence of v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
	h.sum += int64(v)
}

// AddN records n occurrences of v.
func (h *Histogram) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	h.counts[v] += n
	h.total += n
	h.sum += int64(v) * int64(n)
}

// Count returns the number of occurrences of v.
func (h *Histogram) Count(v int) uint64 { return h.counts[v] }

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the average sample, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest recorded value, or 0 for an empty histogram.
func (h *Histogram) Max() int {
	max := 0
	first := true
	for v := range h.counts {
		if first || v > max {
			max = v
			first = false
		}
	}
	return max
}

// Percent returns the percentage of samples equal to v.
func (h *Histogram) Percent(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return 100 * float64(h.counts[v]) / float64(h.total)
}

// Values returns the recorded values in increasing order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for v, n := range other.counts {
		h.AddN(v, n)
	}
}

// histogramBin is one value/count pair of the JSON encoding.
type histogramBin struct {
	V int    `json:"v"`
	N uint64 `json:"n"`
}

// MarshalJSON encodes the histogram as an array of {"v":value,"n":count}
// bins in increasing value order, so the encoding of a given histogram is
// byte-stable (map iteration order never leaks into the output).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	bins := make([]histogramBin, 0, len(h.counts))
	for _, v := range h.Values() {
		bins = append(bins, histogramBin{V: v, N: h.counts[v]})
	}
	return json.Marshal(bins)
}

// UnmarshalJSON rebuilds the histogram from its bin array, restoring the
// derived total and sum.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var bins []histogramBin
	if err := json.Unmarshal(data, &bins); err != nil {
		return err
	}
	if h.counts == nil {
		h.counts = make(map[int]uint64)
	} else {
		h.Reset()
	}
	for _, b := range bins {
		h.AddN(b.V, b.N)
	}
	return nil
}

// String renders "v:count" pairs in increasing value order.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, v := range h.Values() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", v, h.counts[v])
	}
	return b.String()
}
