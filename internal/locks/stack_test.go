package locks

import (
	"testing"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
)

func TestStackPushPopLIFO(t *testing.T) {
	for _, prim := range []Prim{PrimCAS, PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			m := newM(4)
			s := NewStack(m, core.PolicyINV, 8, Options{Prim: prim})
			m.RunEach([]func(*machine.Proc){
				func(p *machine.Proc) {
					for n := arch.Word(1); n <= 3; n++ {
						s.Push(p, n)
					}
					got := s.Drain(p)
					want := []arch.Word{3, 2, 1}
					if len(got) != 3 {
						t.Errorf("drained %v", got)
						return
					}
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("pop order %v, want %v", got, want)
						}
					}
				},
				nil, nil, nil,
			})
		})
	}
}

func TestStackConcurrentPushersNoLoss(t *testing.T) {
	for _, prim := range []Prim{PrimCAS, PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			const procs, each = 4, 4
			m := newM(procs)
			s := NewStack(m, core.PolicyINV, procs*each, Options{Prim: prim})
			m.Run(func(p *machine.Proc) {
				for k := 0; k < each; k++ {
					s.Push(p, arch.Word(p.ID()*each+k+1))
				}
			})
			var got []arch.Word
			m.RunEach([]func(*machine.Proc){
				func(p *machine.Proc) { got = s.Drain(p) },
				nil, nil, nil,
			})
			if len(got) != procs*each {
				t.Fatalf("drained %d nodes, want %d", len(got), procs*each)
			}
			seen := map[arch.Word]bool{}
			for _, n := range got {
				if seen[n] {
					t.Fatalf("node %d popped twice", n)
				}
				seen[n] = true
			}
		})
	}
}

// TestStackABAProblem stages the paper's section-2.2 pointer problem: a
// popper reads top=A and next(A)=B, is delayed, and meanwhile another
// processor pops A and B and pushes A back. The CAS pop then succeeds —
// installing B, a node the adversary now owns, corrupting the stack. The
// identical interleaving with load_linked/store_conditional fails the SC
// and retries correctly.
func TestStackABAProblem(t *testing.T) {
	stage := func(prim Prim) (popped arch.Word, topAfter arch.Word, stolen arch.Word) {
		m := newM(4)
		s := NewStack(m, core.PolicyINV, 4, Options{Prim: prim})
		// Simulated-memory handshake flags between victim and adversary.
		windowOpen := m.Alloc(4)
		adversaryDone := m.Alloc(4)
		var victim arch.Word
		m.RunEach([]func(*machine.Proc){
			func(p *machine.Proc) {
				// Build stack: top -> A(1) -> B(2) -> C(3).
				s.Push(p, 3)
				s.Push(p, 2)
				s.Push(p, 1)
				victim = s.Pop(p, func() {
					// Delayed after reading top=1, next=2: let the
					// adversary run to completion before the swing.
					p.Store(windowOpen, 1)
					for p.Load(adversaryDone) == 0 {
						p.Compute(50)
					}
				})
			},
			func(p *machine.Proc) {
				for p.Load(windowOpen) == 0 {
					p.Compute(50)
				}
				a := s.Pop(p, nil) // pops 1
				_ = s.Pop(p, nil)  // pops 2 — adversary now owns node 2
				s.Push(p, a)       // pushes 1 back: top=1 -> 3
				p.Store(adversaryDone, 1)
			},
			nil, nil,
		})
		var top arch.Word
		m.RunEach([]func(*machine.Proc){
			func(p *machine.Proc) { top = p.Load(s.Top) },
			nil, nil, nil,
		})
		return victim, top, 2
	}

	// CAS: the delayed pop's CAS(top, 1, 2) succeeds against the re-pushed
	// node 1, installing node 2 — which the adversary privately owns. The
	// stack is corrupt: node 3 is lost and node 2 is doubly owned.
	popped, top, stolen := stage(PrimCAS)
	if popped != 1 {
		t.Fatalf("CAS pop returned %d, expected to (incorrectly) succeed with 1", popped)
	}
	if top != stolen {
		t.Fatalf("CAS top after ABA = %d; expected the corrupted %d", top, stolen)
	}

	// LL/SC: the intervening writes cleared the reservation; the delayed
	// SC fails, the pop retries on the fresh state and pops 1 correctly,
	// leaving top = 3.
	popped, top, _ = stage(PrimLLSC)
	if popped != 1 {
		t.Fatalf("LLSC pop returned %d, want 1", popped)
	}
	if top != 3 {
		t.Fatalf("LLSC top after interleaving = %d, want 3 (no corruption)", top)
	}
}

// TestRWLock exercises the reader-writer lock in all primitive families.
func TestRWLockWritersExclusive(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			const procs, iters = 8, 4
			m := newM(procs)
			l := NewRWLock(m, core.PolicyINV, Options{Prim: prim})
			shared := m.Alloc(4)
			readersIn, writersIn := 0, 0
			m.Run(func(p *machine.Proc) {
				for i := 0; i < iters; i++ {
					if p.ID()%2 == 0 {
						l.Lock(p)
						writersIn++
						if writersIn != 1 || readersIn != 0 {
							t.Errorf("writer entered with %d writers, %d readers", writersIn, readersIn)
						}
						v := p.Load(shared)
						p.Compute(15)
						p.Store(shared, v+1)
						writersIn--
						l.Unlock(p)
					} else {
						l.RLock(p)
						readersIn++
						if writersIn != 0 {
							t.Errorf("reader entered alongside a writer")
						}
						p.Load(shared)
						p.Compute(10)
						readersIn--
						l.RUnlock(p)
					}
					p.Compute(20)
				}
			})
			want := arch.Word(procs / 2 * iters)
			if got := m.Peek(shared); got != want {
				t.Fatalf("writer increments = %d, want %d", got, want)
			}
			m.System().CheckCoherence()
		})
	}
}

func TestRWLockReadersShareAccess(t *testing.T) {
	// With only readers, all should overlap: total elapsed must be far
	// below the serialized sum of critical sections.
	m := newM(8)
	l := NewRWLock(m, core.PolicyINV, Options{Prim: PrimFAP})
	elapsed := m.Run(func(p *machine.Proc) {
		l.RLock(p)
		p.Compute(1000)
		l.RUnlock(p)
	})
	if elapsed > 8*1000/2 {
		t.Fatalf("readers serialized: %d cycles for 8 overlapping 1000-cycle sections", elapsed)
	}
}
