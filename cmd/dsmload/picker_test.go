package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dsm/internal/fleet"
)

func TestPickerDeterministicFromSeed(t *testing.T) {
	specs := workingSet(16)
	a := newPicker(7, 3, specs, 0.5, 0)
	b := newPicker(7, 3, specs, 0.5, 0)
	for i := 0; i < 200; i++ {
		if da, db := a.draw(), b.draw(); da != db {
			t.Fatalf("draw %d diverged for identical (seed, worker)", i)
		}
	}
	// A different seed names a different stream.
	c := newPicker(8, 3, specs, 0.5, 0)
	same := 0
	for i := 0; i < 200; i++ {
		if a.draw() == c.draw() {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed 7 and seed 8 produced identical streams")
	}
}

func TestPickerZipfSkewsWorkingSet(t *testing.T) {
	specs := workingSet(16)
	p := newPicker(1, 0, specs, 1.0, 1.5) // every draw from the working set
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[p.draw()]++
	}
	// Rank 0 must dominate: well above the uniform share and above the
	// coldest spec.
	if counts[specs[0]] < 2*n/len(specs) {
		t.Fatalf("rank-0 drew %d of %d: no skew", counts[specs[0]], n)
	}
	if counts[specs[0]] <= counts[specs[len(specs)-1]] {
		t.Fatalf("rank 0 (%d) not hotter than rank %d (%d)",
			counts[specs[0]], len(specs)-1, counts[specs[len(specs)-1]])
	}
	// Uniform picker at the same dup rate stays flat-ish by comparison.
	u := newPicker(1, 0, specs, 1.0, 0)
	ucounts := make(map[string]int)
	for i := 0; i < n; i++ {
		ucounts[u.draw()]++
	}
	if ucounts[specs[0]] >= 2*n/len(specs) {
		t.Fatalf("uniform picker skewed: rank-0 drew %d of %d", ucounts[specs[0]], n)
	}
}

// TestBackoffEngagesThroughRouter pins satellite behavior end-to-end: a
// backend sheds load with 429 + Retry-After, the fleet router relays both
// unchanged, and dsmload's capped exponential backoff absorbs the
// rejections and lands the request.
func TestBackoffEngagesThroughRouter(t *testing.T) {
	var sims atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("probe") == "1" {
			w.Header().Set("X-Cache", "miss")
			http.Error(w, `{"error":"not cached"}`, http.StatusNotFound)
			return
		}
		switch sims.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		case 2: // no Retry-After: the client's own backoff step applies
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()

	rt, err := fleet.New(fleet.Config{Backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	spec := workingSet(1)[0]
	t0 := time.Now()
	res, err := issueRetry(client, router.URL+"/v1/sim", spec, time.Now().Add(30*time.Second))
	waited := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("final status = %d after retries", res.status)
	}
	if res.retries != 2 {
		t.Fatalf("absorbed %d rejections, want 2", res.retries)
	}
	if got := sims.Load(); got != 3 {
		t.Fatalf("backend saw %d simulate attempts, want 3", got)
	}
	if m := rt.Metrics(); m.Rejected != 2 {
		t.Fatalf("router relayed %d rejections, want 2", m.Rejected)
	}
	// The first rejection's Retry-After: 1 reached the client through the
	// router and was honored as a backoff floor.
	if waited < time.Second {
		t.Fatalf("request completed in %v: the relayed Retry-After floor was ignored", waited)
	}
}
