package hostbench

import "testing"

// TestMeasureSocketSmoke runs a tiny socket curve end to end: both modes
// over a real loopback listener, sane rates and accounting. Point counts
// are small; this checks plumbing, not performance.
func TestMeasureSocketSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket measurement in -short mode")
	}
	pts := MeasureSocket(128)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want sim and two sweep batches", len(pts))
	}
	for _, p := range pts {
		if p.Mode != "sim" && p.Mode != "sweep" {
			t.Fatalf("unknown mode %q", p.Mode)
		}
		if p.PtsPerSec <= 0 {
			t.Fatalf("%s: pts/s = %v", p.Mode, p.PtsPerSec)
		}
		if p.Clients != socketClients || p.Dup != socketDup {
			t.Fatalf("%s: conditions drifted: %+v", p.Mode, p)
		}
		if p.ConnsNew == 0 {
			t.Fatalf("%s: no connections dialed — not a socket path", p.Mode)
		}
		if p.ConnsReused == 0 {
			t.Fatalf("%s: no connection reuse — idle pool misconfigured", p.Mode)
		}
		if p.HitRatio <= 0 || p.HitRatio > 1 {
			t.Fatalf("%s: hit ratio %v outside (0,1]", p.Mode, p.HitRatio)
		}
	}
	if pts[1].Batch != socketBatch || pts[2].Batch != 4*socketBatch {
		t.Fatalf("sweep batches = %d, %d, want %d, %d", pts[1].Batch, pts[2].Batch, socketBatch, 4*socketBatch)
	}
}
