package serve

import (
	"sync"
	"time"

	"dsm/internal/exper"
)

// workerPool runs simulations on a fixed set of goroutines fed by a
// bounded queue. The queue bound is the service's backpressure valve: when
// it is full, submit fails immediately and the handler answers 429 rather
// than letting latency grow without bound.
//
// Each worker goroutine owns one exper.MachineSlot for its lifetime and
// hands it to every job it runs: a job executes its simulation on the
// slot's resident machine, which the next job on the same worker resets
// and reuses. Machines therefore never cross goroutines and never visit
// the shared sync.Pool — at GOMAXPROCS > 1 the per-request path has no
// machine-pool lock, no MarkPooled/ClearPooled transitions, and no
// cross-core machine handoff.
type workerPool struct {
	mu     sync.Mutex // serializes submit against close
	closed bool
	jobs   chan func(*exper.MachineSlot)
	wg     sync.WaitGroup
}

func newWorkerPool(workers, queue int) *workerPool {
	p := &workerPool{jobs: make(chan func(*exper.MachineSlot), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			var slot exper.MachineSlot // this worker's machine, reused across jobs
			for job := range p.jobs {
				job(&slot)
			}
		}()
	}
	return p
}

// submit enqueues one job, reporting false when the queue is full or the
// pool is draining. The mutex makes submit safe against a concurrent
// close (a bare send racing a channel close would panic).
func (p *workerPool) submit(job func(*exper.MachineSlot)) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- job:
		return true
	default:
		return false
	}
}

// submitWait enqueues one job, waiting up to wait for queue space to free.
// It polls submit rather than blocking on the channel directly so a
// concurrent close cannot panic a pending send; the 1ms poll is noise
// against simulation times. A wait of zero degenerates to one try. The
// batch sweep dispatcher uses this so plans larger than the queue bound
// drain through it instead of bouncing.
func (p *workerPool) submitWait(job func(*exper.MachineSlot), wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		if p.submit(job) {
			return true
		}
		if wait <= 0 || !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// depth returns the number of queued (not yet started) jobs.
func (p *workerPool) depth() int { return len(p.jobs) }

// close drains the pool: no further submissions are accepted, queued jobs
// run to completion, and close returns once every worker has exited. This
// is the graceful-shutdown path — in-flight simulations finish and their
// waiters get responses.
func (p *workerPool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
