package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/mesh"
)

// arity of the arrival tree (the MCS barrier uses a 4-ary arrival tree and
// a binary wakeup tree).
const arrivalArity = 4

// TreeBarrier is the scalable sense-reversing tree barrier of
// Mellor-Crummey & Scott, used by the Transitive Closure application. Each
// processor spins only on flags homed at its own node; arrival climbs a
// 4-ary tree and wakeup descends a binary tree. Instead of sense reversal
// the flags carry a monotonic round number, which is equivalent and
// simpler to verify.
type TreeBarrier struct {
	n      int
	arrive [][]arch.Addr // [parent][slot]: written by child, spun on by parent
	wake   []arch.Addr   // [proc]: written by wakeup parent, spun on by proc
	round  []arch.Word   // per-processor private round counter
}

// NewTreeBarrier allocates the barrier's flags, homed for local spinning.
func NewTreeBarrier(m *machine.Machine) *TreeBarrier {
	n := m.Procs()
	b := &TreeBarrier{
		n:      n,
		arrive: make([][]arch.Addr, n),
		wake:   make([]arch.Addr, n),
		round:  make([]arch.Word, n),
	}
	for i := 0; i < n; i++ {
		b.arrive[i] = make([]arch.Addr, arrivalArity)
		for k := 0; k < arrivalArity; k++ {
			if arrivalArity*i+k+1 < n {
				b.arrive[i][k] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
			}
		}
		b.wake[i] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
	}
	return b
}

// Wait blocks (in simulated time) until all processors have called Wait
// for the current round.
func (b *TreeBarrier) Wait(p *machine.Proc) {
	i := p.ID()
	b.round[i]++
	round := b.round[i]

	// Arrival: wait for our subtree, then report to the parent.
	for k := 0; k < arrivalArity; k++ {
		if arrivalArity*i+k+1 >= b.n {
			break
		}
		for p.Load(b.arrive[i][k]) < round {
			p.Compute(2)
		}
	}
	if i != 0 {
		parent := (i - 1) / arrivalArity
		slot := (i - 1) % arrivalArity
		p.Store(b.arrive[parent][slot], round)
		for p.Load(b.wake[i]) < round {
			p.Compute(2)
		}
	}
	// Wakeup: release our binary-tree children.
	for _, c := range []int{2*i + 1, 2*i + 2} {
		if c < b.n {
			p.Store(b.wake[c], round)
		}
	}
}
