// Package check verifies concurrent histories collected from the
// simulator: exact linearizability checkers for the shared counter, the
// FIFO queue, and the LIFO stack — the objects behind the synthetic and
// lock-free workloads. Each checker exploits its object's structure:
//
//   - CheckCounter: fetched values must be a permutation of 0..n-1 that
//     respects the real-time order of non-overlapping operations, and
//     reads must fall within the window of increments concurrent with
//     them.
//   - CheckQueue: the aspect rules of Henzinger, Sezgin & Vafeiadis — an
//     O(n²) pairwise test that is complete for complete histories with
//     distinct enqueued values.
//   - CheckStack: a memoized depth-first search over linearization
//     prefixes (Wing & Gong, with Lowe's state-set pruning).
//
// A naive brute-force reference checker (reference.go) independently
// re-derives each verdict on small histories; randomized property tests
// hold the three production checkers to it.
package check

import (
	"fmt"
	"sort"

	"dsm/internal/arch"
	"dsm/internal/sim"
)

// Op is one completed operation in a history.
type Op struct {
	Proc    int
	Invoke  sim.Time // when the operation was issued
	Respond sim.Time // when it completed
	Kind    Kind
	Value   arch.Word // increment: fetched (old) value; read: value seen
}

// Kind classifies history operations.
type Kind uint8

const (
	// Inc is a successful atomic increment (fetch_and_add(1), or a
	// CAS/LL-SC loop that succeeded).
	Inc Kind = iota
	// Read is an ordinary read of the counter.
	Read
	// Enq is a queue enqueue of Value.
	Enq
	// Deq is a queue dequeue that returned Value.
	Deq
	// DeqEmpty is a queue dequeue that reported an empty queue.
	DeqEmpty
	// Push is a stack push of Value.
	Push
	// Pop is a stack pop that returned Value.
	Pop
	// PopEmpty is a stack pop that reported an empty stack.
	PopEmpty
)

var kindNames = [...]string{"inc", "read", "enq", "deq", "deq-empty", "push", "pop", "pop-empty"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// History accumulates operations. Record order is irrelevant; operations
// carry their own timestamps.
type History struct {
	ops []Op
}

// Record appends one completed operation. It panics if the response
// precedes the invocation (a harness bug).
func (h *History) Record(op Op) {
	if op.Respond < op.Invoke {
		panic(fmt.Sprintf("check: response %d before invocation %d", op.Respond, op.Invoke))
	}
	h.ops = append(h.ops, op)
}

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// CheckCounter verifies that the history is a linearizable execution of a
// counter with initial value 0. It returns nil if so, or an error
// describing the first violation found.
func (h *History) CheckCounter() error {
	var incs, reads []Op
	for _, op := range h.ops {
		switch op.Kind {
		case Inc:
			incs = append(incs, op)
		case Read:
			reads = append(reads, op)
		default:
			return fmt.Errorf("check: unknown op kind %d", op.Kind)
		}
	}

	// 1. Fetched values are a permutation of 0..n-1.
	seen := make([]int, len(incs)) // fetched value -> count
	for _, op := range incs {
		v := int(op.Value)
		if v < 0 || v >= len(incs) {
			return fmt.Errorf("check: proc %d fetched %d outside 0..%d", op.Proc, v, len(incs)-1)
		}
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			return fmt.Errorf("check: value %d fetched %d times", v, n)
		}
	}

	// 2. Real-time order: an increment that finished before another began
	// must have fetched a smaller value.
	byValue := append([]Op(nil), incs...)
	sort.Slice(byValue, func(i, j int) bool { return byValue[i].Value < byValue[j].Value })
	for i := range byValue {
		for j := i + 1; j < len(byValue); j++ {
			// byValue[j] linearized after byValue[i]; it must not have
			// completed before byValue[i] was invoked.
			if byValue[j].Respond < byValue[i].Invoke {
				return fmt.Errorf(
					"check: inc fetching %d (proc %d) completed at %d, before inc fetching %d (proc %d) began at %d",
					byValue[j].Value, byValue[j].Proc, byValue[j].Respond,
					byValue[i].Value, byValue[i].Proc, byValue[i].Invoke)
			}
		}
	}

	// 3. Reads: the value must lie between the number of increments that
	// completed before the read began and the number that began before the
	// read completed.
	for _, r := range reads {
		lo, hi := 0, 0
		for _, inc := range incs {
			if inc.Respond < r.Invoke {
				lo++
			}
			if inc.Invoke <= r.Respond {
				hi++
			}
		}
		v := int(r.Value)
		if v < lo || v > hi {
			return fmt.Errorf(
				"check: proc %d read %d during [%d,%d], legal window [%d,%d]",
				r.Proc, v, r.Invoke, r.Respond, lo, hi)
		}
	}

	// 4. Cross order: the value sequence fixes a required order between
	// every inc and every read (the inc fetching v precedes reads of
	// values above v and follows reads of values at or below v) and
	// between reads of different values; an op required later must not
	// complete before an op required earlier begins. Subsumes rule 3 but
	// kept separate for the clearer per-read message above.
	for _, r := range reads {
		for _, in := range incs {
			if in.Value < r.Value && r.Respond < in.Invoke {
				return fmt.Errorf(
					"check: proc %d read %d (ending %d) before the inc fetching %d began at %d",
					r.Proc, r.Value, r.Respond, in.Value, in.Invoke)
			}
			if r.Value <= in.Value && in.Respond < r.Invoke {
				return fmt.Errorf(
					"check: proc %d read %d at %d after the inc fetching %d completed at %d",
					r.Proc, r.Value, r.Invoke, in.Value, in.Respond)
			}
		}
	}
	for _, r1 := range reads {
		for _, r2 := range reads {
			if r1.Value < r2.Value && r2.Respond < r1.Invoke {
				return fmt.Errorf(
					"check: reads not monotonic: proc %d read %d (ending %d) before proc %d read %d (from %d)",
					r2.Proc, r2.Value, r2.Respond, r1.Proc, r1.Value, r1.Invoke)
			}
		}
	}
	return nil
}
