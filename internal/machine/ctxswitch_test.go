package machine

import (
	"testing"

	"dsm/internal/core"
)

// TestContextSwitchSpuriousSCFailures models the paper's section 2.1: on
// processors like the R4000, reservations are invalidated on context
// switches, so store_conditionals fail spuriously — harmless for
// lock-freedom "so long as we always try again".
func TestContextSwitchSpuriousSCFailures(t *testing.T) {
	m := newSmall()
	m.SetContextSwitchQuantum(40) // aggressive switching
	a := m.AllocSync(core.PolicyINV)
	const iters = 25
	m.Run(func(p *Proc) {
		for i := 0; i < iters; i++ {
			for {
				v := p.LoadLinked(a)
				if p.StoreConditional(a, v+1) {
					break
				}
				// Spurious failure: retry, as correct code must.
			}
		}
	})
	if got := m.Peek(a); got != 4*iters {
		t.Fatalf("counter = %d, want %d (increments lost)", got, 4*iters)
	}
	if m.System().Counters().SCFailLocal == 0 {
		t.Fatal("aggressive context switching caused no spurious SC failures")
	}
}

func TestContextSwitchDisabledByDefault(t *testing.T) {
	m := newSmall()
	a := m.AllocSync(core.PolicyINV)
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			v := p.LoadLinked(a)
			p.Compute(500) // plenty of time for a quantum to fire, if armed
			if !p.StoreConditional(a, v+1) {
				t.Error("SC failed with context switching disabled")
			}
		},
		nil, nil, nil,
	})
}

func TestContextSwitchTicksStopAfterRun(t *testing.T) {
	// The recurring ticks must not keep the post-run drain alive forever;
	// reaching this assertion at all proves termination.
	m := newSmall()
	m.SetContextSwitchQuantum(10)
	m.Run(func(p *Proc) { p.Compute(100) })
	if m.Now() == 0 {
		t.Fatal("no time elapsed")
	}
	// A second program still works (ticks re-arm).
	a := m.AllocSync(core.PolicyINV)
	m.Run(func(p *Proc) { p.FetchAdd(a, 1) })
	if m.Peek(a) != 4 {
		t.Fatalf("counter = %d", m.Peek(a))
	}
}
