package core

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/cache"
	"dsm/internal/mesh"
	"dsm/internal/proto"
	"dsm/internal/sim"
	"dsm/internal/stats"
)

// txn is the cache controller's single outstanding transaction (the
// processors are in-order and blocking, as in the simulated machine).
type txn struct {
	req     Request
	retries int

	granted  bool // grant/reply received and its effect applied
	needAcks int  // valid once granted
	acks     int
	chainMax int // max serialized chain over grant and ack paths

	// result is the operation outcome, computed when the grant arrives;
	// delivery waits for the invalidation/update acknowledgments.
	result Result

	tracking bool // contention tracking began for this txn
}

// CacheCtl is one node's cache controller: it satisfies processor requests
// locally when it can (the computational power for INV-policy atomic
// primitives lives here), converses with home controllers otherwise, and
// services incoming coherence traffic (invalidations, recalls, updates,
// owner-side CAS comparisons). What to do for each (policy, op) start and
// each incoming message kind is not coded here: it is read from the
// guarded-action tables in internal/proto (CacheStart, CacheRecv), and
// this controller interprets them against the real cache array and mesh.
type CacheCtl struct {
	sys   *System
	node  mesh.NodeID
	cache cache.Cache

	// txn is the controller's only transaction storage: each processor has
	// exactly one outstanding request, so every Issue reuses this struct
	// instead of allocating. pending points at it while a request is in
	// flight and is nil otherwise.
	txn     txn
	pending *txn

	// Preallocated hooks for the per-message hot path: message delivery
	// (recvHook, via Mesh.SendArg), request dispatch after the local
	// controller step (startFn), and delayed responses (sendHook, carrying
	// the reply message as the event payload). Allocated once here so
	// steady-state traffic schedules without building closures.
	recvHook func(any)
	startFn  func()
	sendHook func(any)

	// llHintFail is set when a UNC/UPD load_linked under the limited
	// reservation scheme returned a beyond-the-limit hint; the next
	// store_conditional then fails locally without network traffic.
	llHintFail bool
}

func (c *CacheCtl) init(s *System, n mesh.NodeID) {
	c.sys = s
	c.node = n
	c.cache.Init(s.cfg.Cache)
	c.recvHook = func(a any) { c.receive(a.(*msg)) }
	c.startFn = func() { c.start(&c.txn) }
	c.sendHook = func(a any) {
		m := a.(*msg)
		c.sys.send(c.node, m.dst, m, m.toHome)
	}
}

// reset returns the controller to its post-init state for machine reuse.
// The preallocated hooks and the cache's line slab are kept; the cache is
// emptied by advancing its validity epoch.
func (c *CacheCtl) reset() {
	c.cache.Reset()
	c.pending = nil
	c.llHintFail = false
}

// sendLater transmits m to dst one local controller step from now,
// modeling the controller's occupancy, without allocating: the reply
// carries its own routing and rides a (hook, payload) event.
func (c *CacheCtl) sendLater(m *msg, dst mesh.NodeID, toHome bool) {
	m.dst = dst
	m.toHome = toHome
	c.sys.eng.AfterArg(c.sys.cfg.CacheHitTime, c.sendHook, m)
}

// Node returns the controller's node id.
func (c *CacheCtl) Node() mesh.NodeID { return c.node }

// CacheArray exposes the underlying cache (tests and invariant checks).
func (c *CacheCtl) CacheArray() *cache.Cache { return &c.cache }

// Busy reports whether a processor request is outstanding.
func (c *CacheCtl) Busy() bool { return c.pending != nil }

// Issue starts one processor memory operation. Exactly one operation may be
// outstanding per processor; a second Issue before Done fires panics.
// Issue must be called from the engine's event loop.
func (c *CacheCtl) Issue(req Request) {
	if c.pending != nil {
		panic(fmt.Sprintf("core: node %d issued %v with a request outstanding", c.node, req.Op))
	}
	arch.CheckWordAligned(req.Addr)
	c.sys.counters.Requests++
	if c.sys.tracer != nil {
		c.sys.trace(c.node, "issue", "%v addr=%#x val=%d,%d", req.Op, req.Addr, req.Val, req.Val2)
	}
	t := &c.txn
	*t = txn{req: req}
	if c.sys.cfg.Track && req.Op.IsAtomic() {
		c.sys.contention.Begin(stats.Location(req.Addr), int(c.node))
		t.tracking = true
	}
	c.pending = t
	c.sys.eng.After(c.sys.cfg.CacheHitTime, c.startFn)
}

// complete finishes the outstanding transaction and delivers the result.
func (c *CacheCtl) complete(t *txn, r Result) {
	if c.pending != t {
		panic("core: completing a transaction that is not pending")
	}
	c.pending = nil
	if t.tracking {
		c.sys.contention.End(stats.Location(t.req.Addr), int(c.node))
	}
	if r.Chain == 0 {
		c.sys.counters.LocalHits++
	}
	if c.sys.tracer != nil {
		c.sys.trace(c.node, "complete", "%v addr=%#x value=%d ok=%v chain=%d",
			t.req.Op, t.req.Addr, r.Value, r.OK, r.Chain)
	}
	c.sys.chains.RecordAt(int(t.req.Op), int(c.sys.PolicyOf(t.req.Addr)), r.Chain)
	if t.req.Done != nil {
		t.req.Done(r)
	}
}

// start dispatches a (possibly retried) request by interpreting the
// cache-start table entry for the block's policy and the request's op:
// perform the entry's cache probe, find the first rule whose guard holds,
// and run its actions in order.
func (c *CacheCtl) start(t *txn) {
	spec := &proto.CacheStart[c.sys.PolicyOf(t.req.Addr)][t.req.Op]
	var l *cache.Line
	switch spec.Prep {
	case proto.PrepLookup:
		l = c.cache.Lookup(t.req.Addr)
	case proto.PrepPeek:
		l = c.cache.Peek(t.req.Addr)
	}
	c.runRules(spec.Rules, t, nil, l)
}

// request constructs the base request message for the transaction.
func (c *CacheCtl) request(t *txn, kind msgKind) *msg {
	m := c.sys.newMsg()
	*m = msg{
		kind:      kind,
		addr:      t.req.Addr,
		requester: c.node,
		op:        t.req.Op,
		val:       t.req.Val,
		val2:      t.req.Val2,
	}
	return m
}

func (c *CacheCtl) toHome(t *txn, kind msgKind) {
	m := c.request(t, kind)
	c.sys.send(c.node, c.sys.HomeOf(t.req.Addr), m, true)
}

// dropINV implements drop_copy for an INV-policy block: a dirty line is
// written back, a shared line sends a replacement hint; both self-invalidate.
func (c *CacheCtl) dropINV(a arch.Addr) {
	v := c.cache.Invalidate(a)
	if v == nil {
		return
	}
	c.evictVictim(v)
}

// evictVictim notifies the home about a line displaced by a fill, a
// drop_copy, or an eviction.
func (c *CacheCtl) evictVictim(v *cache.Victim) {
	home := c.sys.HomeOf(v.Base)
	m := c.sys.newMsg()
	*m = msg{addr: v.Base, requester: c.node}
	if v.State == cache.ExclusiveRW {
		m.kind = mWB
		m.data = v.Data
		m.hasData = true
		c.sys.counters.Writebacks++
	} else {
		m.kind = mDropS
	}
	c.sys.send(c.node, home, m, true)
}

// insert fills a line, handling any displaced victim.
func (c *CacheCtl) insert(a arch.Addr, st cache.State, data arch.BlockData) *cache.Line {
	l, victim := c.cache.Insert(a, st, data)
	if victim != nil {
		c.evictVictim(victim)
	}
	return l
}

// localExec performs an operation on a locally held exclusive line and
// completes the transaction: this is the cache controller's "computational
// power" of the INV implementations.
func (c *CacheCtl) localExec(t *txn, l *cache.Line) {
	r := c.execOnLine(t.req, l)
	r.Chain = t.chainMax
	c.complete(t, r)
}

// execOnLine applies an operation to an exclusive line and returns its
// result (Chain left zero for the caller to fill in).
func (c *CacheCtl) execOnLine(req Request, l *cache.Line) Result {
	old := l.Word(req.Addr)
	r := Result{Value: old, OK: true}
	wrote := false
	switch req.Op {
	case OpLoadExclusive:
		// Value read; exclusivity already held.
	case OpStore:
		l.SetWord(req.Addr, req.Val)
		wrote = true
	case OpFetchAdd:
		l.SetWord(req.Addr, old+req.Val)
		wrote = true
	case OpFetchStore:
		l.SetWord(req.Addr, req.Val)
		wrote = true
	case OpFetchOr:
		l.SetWord(req.Addr, old|req.Val)
		wrote = true
	case OpTestAndSet:
		l.SetWord(req.Addr, 1)
		wrote = true
	case OpCAS:
		if old == req.Val {
			l.SetWord(req.Addr, req.Val2)
			wrote = true
		} else {
			r.OK = false
		}
	case OpSC:
		l.SetWord(req.Addr, req.Val)
		wrote = true
		c.cache.ClearReservation()
	case OpLL:
		c.cache.SetReservation(req.Addr)
	default:
		panic(fmt.Sprintf("core: execOnLine of %v", req.Op))
	}
	c.sys.trackAccess(req.Addr, c.node, req.Op, wrote)
	return r
}

// retry re-dispatches a NAKed transaction after a backoff proportional to
// the retry count, staggered by node id to avoid lockstep retries.
func (c *CacheCtl) retry(t *txn) {
	c.sys.counters.Retries++
	t.retries++
	n := t.retries
	if n > 8 {
		n = 8
	}
	delay := c.sys.cfg.RetryDelay + sim.Time(int(c.node)%8)*2 + sim.Time(n)*8
	// Reset per-attempt reply state; acks never span attempts because a
	// NAKed request changed no directory state.
	t.granted = false
	t.needAcks = 0
	t.acks = 0
	c.sys.eng.After(delay, c.startFn)
}

// receive dispatches an incoming protocol message by interpreting its
// cache-receive table entry: resolve the outstanding transaction when the
// entry marks the kind as a reply, perform the entry's cache probe, and
// run the first matching rule. The cache controller consumes every message
// it is delivered (responses are built eagerly, not captured in
// callbacks), so the message is recycled when the rule finishes.
func (c *CacheCtl) receive(m *msg) {
	spec := &proto.CacheRecv[m.kind]
	if len(spec.Rules) == 0 {
		panic(fmt.Sprintf("core: cache %d received %v", c.node, m.kind))
	}
	var t *txn
	if spec.NeedTxn {
		t = c.mustPending(m)
	}
	var l *cache.Line
	if spec.Prep == proto.PrepPeek {
		l = c.cache.Peek(m.addr)
	}
	c.runRules(spec.Rules, t, m, l)
	c.sys.freeMsg(m)
}

// mustPending returns the outstanding transaction, which must exist and
// match the reply's address: the table entries marked NeedTxn are replies,
// and the protocol delivers replies only for the single outstanding
// request.
func (c *CacheCtl) mustPending(m *msg) *txn {
	if c.pending == nil {
		panic(fmt.Sprintf("core: node %d got %v with no pending txn", c.node, m.kind))
	}
	if arch.BlockBase(c.pending.req.Addr) != arch.BlockBase(m.addr) {
		panic(fmt.Sprintf("core: node %d got %v for %#x while waiting on %#x",
			c.node, m.kind, m.addr, c.pending.req.Addr))
	}
	return c.pending
}

// runRules fires the first rule whose guard holds and executes its actions
// left to right. Falling off the end is a protocol error: the tables must
// enumerate every reachable case.
func (c *CacheCtl) runRules(rules []proto.Rule, t *txn, m *msg, l *cache.Line) {
	for i := range rules {
		if !c.guard(rules[i].Guard, t, m, l) {
			continue
		}
		for _, a := range rules[i].Actions {
			l = c.apply(a, t, m, l)
		}
		return
	}
	if m != nil {
		panic(fmt.Sprintf("core: cache %d: no rule for %v", c.node, m.kind))
	}
	panic(fmt.Sprintf("core: cache %d: no rule to start %v", c.node, t.req.Op))
}

// guard evaluates one predicate against the controller's local view: the
// probed line l, the outstanding transaction t, the incoming message m,
// and the system configuration. Guards a table entry cannot reach may be
// passed nil operands.
func (c *CacheCtl) guard(g proto.CacheGuard, t *txn, m *msg, l *cache.Line) bool {
	switch g {
	case proto.GAlways:
		return true
	case proto.GHit:
		return l != nil
	case proto.GOwned:
		return l != nil && l.State == cache.ExclusiveRW
	case proto.GNotOwned:
		return l == nil || l.State != cache.ExclusiveRW
	case proto.GLLHintFail:
		return c.llHintFail
	case proto.GNoResv:
		return !c.cache.ReservedOn(t.req.Addr)
	case proto.GCASRemote:
		return c.sys.cfg.CAS != CASPlain
	case proto.GCASMatch:
		return l.Word(m.addr) == m.forwardVal
	case proto.GCASShare:
		return c.sys.cfg.CAS == CASShare
	case proto.GOpRead:
		return t.req.Op == OpLoad || t.req.Op == OpLoadExclusive
	case proto.GOpLL:
		return t.req.Op == OpLL
	case proto.GOpSC:
		return t.req.Op == OpSC
	}
	panic(fmt.Sprintf("core: cache %d: unknown guard %v", c.node, g))
}

// apply executes one table action. It returns the (possibly re-bound)
// probed line so a fill action can hand the fresh line to the actions
// after it.
func (c *CacheCtl) apply(a proto.Act, t *txn, m *msg, l *cache.Line) *cache.Line {
	switch a.Do {
	case proto.ACompleteOK:
		c.complete(t, Result{OK: true})

	case proto.ACompleteFail:
		c.complete(t, Result{OK: false})

	case proto.ACompleteHit:
		c.sys.trackAccess(t.req.Addr, c.node, t.req.Op, false)
		c.complete(t, Result{Value: l.Word(t.req.Addr), OK: true})

	case proto.ACountSCFail:
		c.sys.counters.SCFailLocal++

	case proto.AClearLLHint:
		c.llHintFail = false

	case proto.ASetResv:
		c.cache.SetReservation(t.req.Addr)

	case proto.ASendHome:
		c.toHome(t, a.Msg)

	case proto.ALocalExec:
		c.localExec(t, l)

	case proto.AEvictLine:
		c.dropINV(t.req.Addr)

	case proto.ADropShared:
		c.cache.Invalidate(t.req.Addr)
		d := c.request(t, mDropS)
		c.sys.send(c.node, c.sys.HomeOf(t.req.Addr), d, true)

	case proto.AInvalLine:
		// Invalidate if present (this also clears a matching LL
		// reservation); our copy may already be gone if our drop or
		// replacement hint is still in flight.
		v := c.cache.Invalidate(m.addr)
		if v != nil && v.State == cache.ExclusiveRW {
			panic(fmt.Sprintf("core: node %d invalidated while owning %#x", c.node, m.addr))
		}

	case proto.AAckRequester:
		ack := c.sys.newMsg()
		*ack = msg{kind: a.Msg, addr: m.addr, requester: m.requester, chain: m.chain}
		c.sendLater(ack, m.requester, false)

	case proto.ASurrenderE:
		reply := c.sys.newMsg()
		*reply = msg{kind: mWBRecall, addr: m.addr, requester: m.requester,
			data: l.Data, hasData: true, chain: m.chain}
		c.cache.Invalidate(m.addr)
		c.sys.counters.Writebacks++
		c.sendLater(reply, c.sys.HomeOf(m.addr), true)

	case proto.ASurrenderS:
		reply := c.sys.newMsg()
		*reply = msg{kind: mWBShare, addr: m.addr, requester: m.requester,
			data: l.Data, hasData: true, chain: m.chain}
		c.cache.Downgrade(m.addr)
		c.sys.counters.Writebacks++
		c.sendLater(reply, c.sys.HomeOf(m.addr), true)

	case proto.ASendRecallNak:
		// Our write-back or drop is in flight; tell the home immediately to
		// wait for it.
		nak := c.sys.newMsg()
		*nak = msg{kind: mRecallNak, addr: m.addr, requester: m.requester, chain: m.chain}
		c.sys.send(c.node, c.sys.HomeOf(m.addr), nak, true)

	case proto.ACASGive:
		// Comparison succeeds: surrender the line; the home completes the
		// grant and the requester performs the swap on its new exclusive
		// copy, exactly as in plain INV.
		c.cache.Invalidate(m.addr)
		c.sys.counters.Writebacks++
		wb := c.sys.newMsg()
		*wb = msg{kind: mWBRecall, addr: m.addr, requester: m.requester,
			data: l.Data, hasData: true, chain: m.chain}
		c.sendLater(wb, c.sys.HomeOf(m.addr), true)

	case proto.ACASKeepShare:
		// INVs failure: the line stays put read-only; the requester gets a
		// read-only copy via the home.
		c.cache.Downgrade(m.addr)
		c.sys.counters.Writebacks++
		wb := c.sys.newMsg()
		*wb = msg{kind: mWBShare, addr: m.addr, requester: m.requester,
			data: l.Data, hasData: true, chain: m.chain}
		c.sendLater(wb, c.sys.HomeOf(m.addr), true)

	case proto.ACASDeny:
		// INVd failure: deny directly; separately release the home's busy
		// state.
		fail := c.sys.newMsg()
		*fail = msg{kind: mCASFail, addr: m.addr, requester: m.requester,
			val: l.Word(m.addr), chain: m.chain}
		c.sendLater(fail, m.requester, false)
		rel := c.sys.newMsg()
		*rel = msg{kind: mCASRel, addr: m.addr, requester: m.requester}
		c.sendLater(rel, c.sys.HomeOf(m.addr), true)

	case proto.AApplyUpdate:
		l.SetWord(m.addr, m.updWord)

	case proto.ACountNak:
		c.sys.counters.Naks++

	case proto.ARetry:
		c.retry(t)

	case proto.ABumpAck:
		t.acks++

	case proto.AMergeChain:
		if m.chain > t.chainMax {
			t.chainMax = m.chain
		}

	case proto.AGrant:
		t.granted = true
		t.needAcks = m.acks

	case proto.AFillShared:
		c.insert(m.addr, cache.SharedRO, m.data)

	case proto.AFillIfData:
		if m.hasData {
			// INVs / UPD: a read-only copy accompanies the reply. Fill it
			// now: update messages from later writes may arrive before the
			// acknowledgments for ours do, and they must land on this copy,
			// not under it.
			c.insert(m.addr, cache.SharedRO, m.data)
		}

	case proto.AFillExclusive:
		// Fill and apply at grant time: the data is coherent now and a
		// recall may arrive before the invalidation acks do.
		l = c.insert(m.addr, cache.ExclusiveRW, m.data)

	case proto.ASCApply:
		// The home validated the reservation and invalidated the other
		// sharers; apply the conditional store.
		l.SetWord(t.req.Addr, t.req.Val)
		c.cache.ClearReservation()
		c.sys.trackAccess(t.req.Addr, c.node, t.req.Op, true)
		t.result = Result{Value: m.data[arch.WordIndex(t.req.Addr)], OK: true}

	case proto.AExecLine:
		t.result = c.execOnLine(t.req, l)

	case proto.AHintIfLL:
		if t.req.Op == OpLL && m.hint {
			c.llHintFail = true
		}

	case proto.AStashReply:
		wrote := t.req.Op.Writes() && m.ok
		c.sys.trackAccess(t.req.Addr, c.node, t.req.Op, wrote)
		t.result = Result{Value: m.val, OK: m.ok, Serial: m.serial, Hint: m.hint}

	case proto.ACompleteData:
		c.sys.trackAccess(t.req.Addr, c.node, t.req.Op, false)
		c.complete(t, Result{Value: m.data[arch.WordIndex(t.req.Addr)], OK: true, Chain: t.chainMax})

	case proto.ACompleteCASFail:
		c.sys.trackAccess(t.req.Addr, c.node, t.req.Op, false)
		c.complete(t, Result{Value: m.val, OK: false, Chain: t.chainMax})

	case proto.ACompleteSCFail:
		c.cache.ClearReservation()
		c.complete(t, Result{OK: false, Chain: m.chain})

	case proto.ACompleteReply:
		wrote := t.req.Op.Writes() && m.ok
		c.sys.trackAccess(t.req.Addr, c.node, t.req.Op, wrote)
		c.complete(t, Result{Value: m.val, OK: m.ok, Serial: m.serial, Hint: m.hint, Chain: t.chainMax})

	case proto.AMaybeFinish:
		c.maybeFinishGranted(t)

	default:
		panic(fmt.Sprintf("core: cache %d: unknown action %v", c.node, a.Do))
	}
	return l
}

// maybeFinishGranted delivers the already-computed result once the grant
// and all invalidation/update acknowledgments have arrived.
func (c *CacheCtl) maybeFinishGranted(t *txn) {
	if !t.granted || t.acks < t.needAcks {
		return
	}
	if t.acks > t.needAcks {
		panic("core: more acks than sharers")
	}
	r := t.result
	r.Chain = t.chainMax
	c.complete(t, r)
}
