package figures

import (
	"fmt"
	"io"

	"dsm/internal/exper"
)

// WriteTable1CSV renders Table 1 as CSV (case,paper,measured).
func WriteTable1CSV(w io.Writer) { WriteTable1CSVPar(w, 0) }

// WriteTable1CSVPar is WriteTable1CSV with an explicit sweep width.
func WriteTable1CSVPar(w io.Writer, par int) {
	fmt.Fprintln(w, "case,paper,measured")
	for _, r := range exper.Table1Par(par) {
		fmt.Fprintf(w, "%q,%d,%d\n", r.Case, r.Paper, r.Got)
	}
}

// WriteSyntheticCSV renders one of figures 3-5 as CSV rows of
// (bar,pattern,avg_cycles_per_update).
func WriteSyntheticCSV(w io.Writer, name string, app exper.App, o RunOpts) {
	grid, bars, pats := SyntheticFigure(app, o)
	fmt.Fprintln(w, "figure,bar,pattern,avg_cycles")
	for pi, pat := range pats {
		for bi, bar := range bars {
			fmt.Fprintf(w, "%s,%q,%q,%.2f\n", name, bar.Label, pat.String(), grid[pi][bi])
		}
	}
}

// WriteFig6CSV renders figure 6 as CSV rows of (app,bar,elapsed_cycles).
func WriteFig6CSV(w io.Writer, o RunOpts) {
	grid, bars, realApps := fig6Grid(o)
	fmt.Fprintln(w, "app,bar,elapsed_cycles")
	for bi, bar := range bars {
		for ai, app := range realApps {
			fmt.Fprintf(w, "%s,%q,%d\n", app, bar.Label, grid[bi][ai])
		}
	}
}
