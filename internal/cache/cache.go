// Package cache implements the per-node set-associative write-back cache of
// the simulated machine, including the cache-side load_linked reservation
// (one reservation bit plus one reservation address register per processor,
// as on the MIPS R4000).
package cache

import (
	"fmt"

	"dsm/internal/arch"
)

// State is the coherence state of a cached line.
type State uint8

const (
	// Invalid: the line holds no valid data.
	Invalid State = iota
	// SharedRO: a read-only copy; other caches may also hold copies and
	// memory is current. Under the UPD policy all cached copies are in
	// this state.
	SharedRO
	// ExclusiveRW: the only cached copy, writable, possibly dirty with
	// respect to memory (the directory records this cache as owner).
	ExclusiveRW
)

// String returns a short state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case SharedRO:
		return "S"
	case ExclusiveRW:
		return "E"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Line is one cache line.
type Line struct {
	Base  arch.Addr // block base address; valid only when State != Invalid
	State State
	Data  arch.BlockData

	lastUse uint64 // LRU timestamp
	epoch   uint64 // validity generation; line is live only when it matches the cache's
}

// Word returns the word at address a, which must fall in this line.
func (l *Line) Word(a arch.Addr) arch.Word {
	arch.CheckWordAligned(a)
	if arch.BlockBase(a) != l.Base {
		panic(fmt.Sprintf("cache: address %#x not in line %#x", a, l.Base))
	}
	return l.Data[arch.WordIndex(a)]
}

// SetWord stores v at address a, which must fall in this line.
func (l *Line) SetWord(a arch.Addr, v arch.Word) {
	arch.CheckWordAligned(a)
	if arch.BlockBase(a) != l.Base {
		panic(fmt.Sprintf("cache: address %#x not in line %#x", a, l.Base))
	}
	l.Data[arch.WordIndex(a)] = v
}

// Config describes cache geometry.
type Config struct {
	Sets  int // number of sets; power of two
	Assoc int // ways per set
}

// DefaultConfig is a 64 KiB 4-way cache of 32-byte lines (512 sets).
func DefaultConfig() Config { return Config{Sets: 512, Assoc: 4} }

// Stats aggregates cache activity observed by the controller.
type Stats struct {
	Evictions      uint64 `json:"evictions"`       // lines displaced by fills
	DirtyEvictions uint64 `json:"dirty_evictions"` // displaced lines that required write-back
}

// Cache is one node's cache array. It is a passive structure: the coherence
// controller in internal/core decides what to insert, invalidate, and write
// back; Cache only tracks contents and LRU order.
type Cache struct {
	cfg   Config
	sets  [][]Line
	clock uint64
	stats Stats

	// epoch is the current line-validity generation: a line is live only
	// when line.epoch == epoch. Reset advances it instead of zeroing the
	// line slab, making between-run invalidation O(1) — clearing a
	// default-geometry cache (512 sets x 4 ways) otherwise costs ~100KB of
	// writes, which dominates short simulations when machines are pooled.
	epoch uint64

	// Cache-side LL/SC reservation: one bit and one address register.
	resvValid bool
	resvAddr  arch.Addr // block base

	// victim is scratch space for the *Victim returned by Insert and
	// Invalidate, so displacing a line never allocates. The returned
	// pointer is valid only until the next Insert or Invalidate call.
	victim Victim
}

// New returns an empty cache. It panics on non-positive or non-power-of-two
// geometry (programming errors in machine assembly).
func New(cfg Config) *Cache {
	c := &Cache{}
	c.Init(cfg)
	return c
}

// Init (re)initializes a cache in place, for callers that embed Cache by
// value. It panics on non-positive or non-power-of-two geometry
// (programming errors in machine assembly).
func (c *Cache) Init(cfg Config) {
	if cfg.Sets <= 0 || cfg.Assoc <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cache: invalid geometry %+v", cfg))
	}
	// All lines live in one slab; sets are full-capacity subslices of it.
	// A default-geometry cache is two allocations, not Sets+1.
	lines := make([]Line, cfg.Sets*cfg.Assoc)
	sets := make([][]Line, cfg.Sets)
	for i := range sets {
		sets[i] = lines[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	*c = Cache{cfg: cfg, sets: sets}
}

// Reset empties the cache without touching the line slab: it advances the
// validity epoch (invalidating every line in O(1)), rewinds the LRU clock,
// and clears the stats and the LL/SC reservation. A reset cache behaves
// identically to a freshly initialized one — stale-epoch lines compare as
// free ways and never reach the LRU victim scan, and LRU timestamps restart
// from the same clock values a fresh cache would assign.
func (c *Cache) Reset() {
	c.epoch++
	c.clock = 0
	c.stats = Stats{}
	c.resvValid = false
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) setIndex(base arch.Addr) int {
	return int(arch.BlockNumber(base)) & (c.cfg.Sets - 1)
}

// Lookup returns the line holding the block containing a, or nil on miss.
// A hit refreshes the line's LRU position.
func (c *Cache) Lookup(a arch.Addr) *Line {
	base := arch.BlockBase(a)
	set := c.sets[c.setIndex(base)]
	for i := range set {
		l := &set[i]
		if l.State != Invalid && l.epoch == c.epoch && l.Base == base {
			c.clock++
			l.lastUse = c.clock
			return l
		}
	}
	return nil
}

// Peek is Lookup without the LRU side effect.
func (c *Cache) Peek(a arch.Addr) *Line {
	base := arch.BlockBase(a)
	set := c.sets[c.setIndex(base)]
	for i := range set {
		l := &set[i]
		if l.State != Invalid && l.epoch == c.epoch && l.Base == base {
			return l
		}
	}
	return nil
}

// Victim describes a line displaced by Insert that the controller must
// handle (write back if dirty-exclusive, or notify the home for shared
// replacement hints).
type Victim struct {
	Base  arch.Addr
	State State
	Data  arch.BlockData
}

// Insert fills the block containing a with the given state and data,
// returning the displaced victim, if any. Inserting over an existing copy
// of the same block updates it in place (no victim). Filling an Invalid way
// produces no victim. The returned victim points at scratch space inside
// the cache and is overwritten by the next Insert or Invalidate.
func (c *Cache) Insert(a arch.Addr, st State, data arch.BlockData) (*Line, *Victim) {
	if st == Invalid {
		panic("cache: inserting an invalid line")
	}
	base := arch.BlockBase(a)
	set := c.sets[c.setIndex(base)]
	c.clock++

	// Same-block update in place.
	for i := range set {
		l := &set[i]
		if l.State != Invalid && l.epoch == c.epoch && l.Base == base {
			l.State = st
			l.Data = data
			l.lastUse = c.clock
			return l, nil
		}
	}
	// Free way (never filled, or left over from before a Reset).
	for i := range set {
		l := &set[i]
		if l.State == Invalid || l.epoch != c.epoch {
			*l = Line{Base: base, State: st, Data: data, lastUse: c.clock, epoch: c.epoch}
			return l, nil
		}
	}
	// Evict LRU.
	v := &set[0]
	for i := range set {
		if set[i].lastUse < v.lastUse {
			v = &set[i]
		}
	}
	c.victim = Victim{Base: v.Base, State: v.State, Data: v.Data}
	c.stats.Evictions++
	if v.State == ExclusiveRW {
		c.stats.DirtyEvictions++
	}
	if c.resvValid && c.resvAddr == v.Base {
		// Losing the reserved line clears the reservation (conservative,
		// as on real hardware).
		c.resvValid = false
	}
	*v = Line{Base: base, State: st, Data: data, lastUse: c.clock, epoch: c.epoch}
	return v, &c.victim
}

// Invalidate drops the block containing a, returning its former contents
// (nil if not present). It clears a matching LL reservation, implementing
// the paper's INV reservation semantics. The returned victim points at
// scratch space inside the cache and is overwritten by the next Insert or
// Invalidate.
func (c *Cache) Invalidate(a arch.Addr) *Victim {
	base := arch.BlockBase(a)
	l := c.Peek(base)
	if l == nil {
		if c.resvValid && c.resvAddr == base {
			c.resvValid = false
		}
		return nil
	}
	c.victim = Victim{Base: l.Base, State: l.State, Data: l.Data}
	l.State = Invalid
	if c.resvValid && c.resvAddr == base {
		c.resvValid = false
	}
	return &c.victim
}

// Downgrade moves an exclusive copy of the block containing a to SharedRO,
// returning the line (nil if not present). The controller uses this when
// the home recalls data but allows a read copy to remain.
func (c *Cache) Downgrade(a arch.Addr) *Line {
	l := c.Peek(a)
	if l == nil {
		return nil
	}
	if l.State == ExclusiveRW {
		l.State = SharedRO
	}
	return l
}

// SetReservation records a load_linked reservation on the block containing
// a, displacing any previous reservation (processors have one).
func (c *Cache) SetReservation(a arch.Addr) {
	c.resvValid = true
	c.resvAddr = arch.BlockBase(a)
}

// ClearReservation invalidates the reservation unconditionally (e.g. after
// a store_conditional, successful or not, or on a context switch).
func (c *Cache) ClearReservation() { c.resvValid = false }

// Reservation reports whether a reservation is held and, if so, for which
// block.
func (c *Cache) Reservation() (arch.Addr, bool) {
	return c.resvAddr, c.resvValid
}

// ReservedOn reports whether a valid reservation covers the block
// containing a.
func (c *Cache) ReservedOn(a arch.Addr) bool {
	return c.resvValid && c.resvAddr == arch.BlockBase(a)
}

// ForEach calls fn for every valid line, in set order. Used by invariant
// checks and debugging dumps.
func (c *Cache) ForEach(fn func(*Line)) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.State != Invalid && l.epoch == c.epoch {
				fn(l)
			}
		}
	}
}
