package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// CentralBarrier is the classic sense-reversing centralized barrier: a
// shared arrival counter (updated with the primitive family under study)
// and a global release flag all waiters spin on. It is the foil for the
// scalable tree barrier — under INV every release invalidates every
// spinner, and the counter is a hot spot, which is exactly why the paper's
// Transitive Closure uses the tree barrier instead. Kept for the barrier
// ablation benchmark.
type CentralBarrier struct {
	count arch.Addr // arrivals this episode
	sense arch.Addr // release flag: episode number
	n     int
	opts  Options

	episode []arch.Word // per-processor private episode counter
}

// NewCentralBarrier allocates the barrier under the given policy for its
// counter (the hot atomic word); the release flag is ordinary data.
func NewCentralBarrier(m *machine.Machine, policy core.Policy, opts Options) *CentralBarrier {
	return &CentralBarrier{
		count:   m.AllocSync(policy),
		sense:   m.Alloc(4),
		n:       m.Procs(),
		opts:    opts,
		episode: make([]arch.Word, m.Procs()),
	}
}

// Wait blocks (in simulated time) until all processors have arrived.
func (b *CentralBarrier) Wait(p *machine.Proc) {
	i := p.ID()
	b.episode[i]++
	target := b.episode[i]
	arrived := b.opts.FetchAdd(p, b.count, 1)
	if int(arrived) == b.n-1 {
		// Last arriver: reset the counter and release everyone.
		p.Store(b.count, 0)
		p.Store(b.sense, target)
		return
	}
	for p.Load(b.sense) < target {
		p.Compute(sim.Time(4 + p.Rand().Intn(12)))
	}
}
