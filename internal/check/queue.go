package check

import (
	"fmt"
	"sort"

	"dsm/internal/arch"
	"dsm/internal/sim"
)

// CheckQueue verifies that the history is a linearizable execution of a
// FIFO queue that starts empty, returning nil if so or an error naming the
// first violation found. It implements the aspect rules of Henzinger,
// Sezgin & Vafeiadis ("Aspect-Oriented Linearizability Proofs"): for a
// complete, differentiated history — every op responded, every value
// enqueued at most once — FIFO linearizability reduces to the absence of
// four O(n²)-testable pairwise violations, checked below in order. The
// reduction does not hold for repeated values, so a history that enqueues
// the same value twice is rejected as a harness bug.
func (h *History) CheckQueue() error {
	enq := map[arch.Word]*Op{}
	deq := map[arch.Word]*Op{}
	var empties []*Op
	for i := range h.ops {
		op := &h.ops[i]
		switch op.Kind {
		case Enq:
			if enq[op.Value] != nil {
				return fmt.Errorf("check: value %d enqueued twice — history not differentiated", op.Value)
			}
			enq[op.Value] = op
		case Deq:
			if d := deq[op.Value]; d != nil {
				// VRepet: one value left the queue twice.
				return fmt.Errorf("check: value %d dequeued twice (procs %d and %d)", op.Value, d.Proc, op.Proc)
			}
			deq[op.Value] = op
		case DeqEmpty:
			empties = append(empties, op)
		default:
			return fmt.Errorf("check: op kind %s in a queue history", op.Kind)
		}
	}

	// Stable iteration order for deterministic error messages.
	values := make([]arch.Word, 0, len(enq))
	for v := range enq {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

	// VFresh: every dequeued value was enqueued, and not wholly after the
	// dequeue.
	for v, d := range deq {
		e := enq[v]
		if e == nil {
			return fmt.Errorf("check: proc %d dequeued %d, which was never enqueued", d.Proc, v)
		}
		if d.Respond < e.Invoke {
			return fmt.Errorf("check: value %d dequeued (ending %d) before its enqueue began (%d)", v, d.Respond, e.Invoke)
		}
	}

	// VOrd: if enq(a) strictly precedes enq(b), then b must not leave the
	// queue while a provably remains — a must be dequeued too, and deq(b)
	// must not strictly precede deq(a).
	for _, a := range values {
		for _, b := range values {
			if a == b || !(enq[a].Respond < enq[b].Invoke) || deq[b] == nil {
				continue
			}
			if deq[a] == nil {
				return fmt.Errorf(
					"check: FIFO violation: %d enqueued before %d, but %d was dequeued (proc %d) while %d never was",
					a, b, b, deq[b].Proc, a)
			}
			if deq[b].Respond < deq[a].Invoke {
				return fmt.Errorf(
					"check: FIFO violation: %d enqueued before %d, but dequeued after it (procs %d, %d)",
					a, b, deq[a].Proc, deq[b].Proc)
			}
		}
	}

	// VWit: an empty-returning dequeue needs an instant in its interval at
	// which the queue could be empty. Value x is certainly in the queue on
	// the open span (enq(x).Respond, deq(x).Invoke) — its enqueue point can
	// be no later than the former, its dequeue point no earlier than the
	// latter (unbounded if never dequeued). The dequeue is a violation iff
	// those spans jointly cover its whole interval. No single span need
	// cover it: an uncovered instant, if any, is the interval's start or
	// some span's right endpoint (the infimum of the uncovered closed set),
	// so only those candidates are probed.
	for _, d := range empties {
		uncovered := func(t sim.Time) bool {
			for _, x := range values {
				if enq[x].Respond < t && (deq[x] == nil || t < deq[x].Invoke) {
					return false
				}
			}
			return true
		}
		legal := uncovered(d.Invoke)
		for _, x := range values {
			if deq[x] != nil && d.Invoke < deq[x].Invoke && deq[x].Invoke <= d.Respond && uncovered(deq[x].Invoke) {
				legal = true
			}
		}
		if !legal {
			return fmt.Errorf(
				"check: proc %d saw an empty queue during [%d,%d], but the queue was provably non-empty throughout",
				d.Proc, d.Invoke, d.Respond)
		}
	}
	return nil
}
