package mc

import (
	"fmt"

	"dsm/internal/proto"
)

// interp executes one transition (an issue, a retry, or a message
// delivery) against a state by interpreting the shared transition tables
// in internal/proto, mirroring internal/core's bindings on the abstract
// machine. The first invariant failure is recorded in vio; the transition
// still runs to completion so the resulting state is well-formed for the
// visited set.
type interp struct {
	cfg *Config
	st  *state
	vio *violation

	// Home reply scratch (mirrors HomeCtl's exec fields).
	exVal    int
	exOK     bool
	exWrote  bool
	exSerial int
	exHint   bool
	exAcks   int
	exVer    int
	replay   *mmsg
}

func (in *interp) fail(k Kind, expected bool, format string, args ...any) {
	if in.vio == nil {
		in.vio = &violation{kind: k, expected: expected, detail: fmt.Sprintf(format, args...)}
	}
}

const home = 0 // the single block's home node

func (in *interp) enqueue(d int, m mmsg) {
	in.st.q[d] = append(in.st.q[d], m)
}

// ---------------------------------------------------------- cache side --

// issue starts program step spec on node i (issue and table dispatch are
// one atomic transition: any delivery that could land between them is
// explored as a delivery before the issue).
func (in *interp) issue(i int, spec OpSpec) {
	s := in.st
	val2 := spec.Val2
	if spec.Op == proto.OpSC && val2 == UseLLSerial {
		val2 = s.llSerial[i]
	}
	s.txn[i] = mtxn{active: true, op: spec.Op, val: spec.Val, val2: val2}
	s.pc[i]++
	s.snap[i] = s.front
	in.start(i)
}

// start interprets the cache-start table entry for the node's transaction.
func (in *interp) start(i int) {
	s := in.st
	spec := &proto.CacheStart[in.cfg.Policy][s.txn[i].op]
	var l *cline
	if spec.Prep != proto.PrepNone && s.line[i].present {
		l = &s.line[i]
	}
	in.runCacheRules(i, spec.Rules, nil, l)
}

// cacheReceive interprets the cache-receive table entry at node i.
func (in *interp) cacheReceive(i int, m mmsg) {
	spec := &proto.CacheRecv[m.kind]
	if len(spec.Rules) == 0 {
		in.fail(KindProtocol, false, "cache n%d received %v", i, m.kind)
		return
	}
	s := in.st
	if spec.NeedTxn && !s.txn[i].active {
		in.fail(KindProtocol, false, "n%d got %v with no transaction outstanding", i, m.kind)
		return
	}
	var l *cline
	if spec.Prep == proto.PrepPeek && s.line[i].present {
		l = &s.line[i]
	}
	in.runCacheRules(i, spec.Rules, &m, l)
}

func (in *interp) runCacheRules(i int, rules []proto.Rule, m *mmsg, l *cline) {
	for r := range rules {
		if !in.cacheGuard(i, rules[r].Guard, m, l) {
			continue
		}
		for _, a := range rules[r].Actions {
			l = in.cacheApply(i, a, m, l)
			if in.vio != nil {
				return
			}
		}
		return
	}
	if m != nil {
		in.fail(KindProtocol, false, "cache n%d: no rule for %v", i, m.kind)
	} else {
		in.fail(KindProtocol, false, "cache n%d: no rule to start %v", i, in.st.txn[i].op)
	}
}

func (in *interp) cacheGuard(i int, g proto.CacheGuard, m *mmsg, l *cline) bool {
	s := in.st
	t := &s.txn[i]
	switch g {
	case proto.GAlways:
		return true
	case proto.GHit:
		return l != nil
	case proto.GOwned:
		return l != nil && l.excl
	case proto.GNotOwned:
		return l == nil || !l.excl
	case proto.GLLHintFail:
		return s.llFail[i]
	case proto.GNoResv:
		return l == nil || !l.resv
	case proto.GCASRemote:
		return in.cfg.CAS != proto.CASPlain
	case proto.GCASMatch:
		return l.val == m.fwdVal
	case proto.GCASShare:
		return in.cfg.CAS == proto.CASShare
	case proto.GOpRead:
		return t.op == proto.OpLoad || t.op == proto.OpLoadExclusive
	case proto.GOpLL:
		return t.op == proto.OpLL
	case proto.GOpSC:
		return t.op == proto.OpSC
	}
	panic(fmt.Sprintf("mc: unknown cache guard %v", g))
}

// complete finishes node i's transaction, enforcing the real-time read
// front: the observed version (obsVer >= 0, the version of the value the
// operation returned) must not precede anything observed by operations
// that completed before this one was issued. A violating plain load is
// expected — the documented read windows — exactly when the coherence
// message that would repair this node's copy (an update under UPD, an
// invalidation under INV) is still in flight toward it.
func (in *interp) complete(i, obsVer int) {
	s := in.st
	if obsVer >= 0 {
		if obsVer < s.snap[i] {
			in.fail(KindStaleRead,
				s.txn[i].op == proto.OpLoad && in.repairInFlight(i),
				"n%d %v returned version %d, but version %d was observed before it was issued",
				i, s.txn[i].op, obsVer, s.snap[i])
		}
		if obsVer > s.front {
			s.front = obsVer
		}
	}
	s.txn[i] = mtxn{}
}

// execLine applies the transaction's op to the node's exclusive line (the
// authoritative copy), mirroring core's execOnLine with ghost stamping.
func (in *interp) execLine(i int, l *cline) (val int, ok bool, obsVer int) {
	s := in.st
	t := &s.txn[i]
	old := l.val
	val, ok = old, true
	write := func(v int) {
		s.gver++
		l.val = v
		l.ver = s.gver
	}
	switch t.op {
	case proto.OpLoadExclusive:
	case proto.OpStore, proto.OpFetchStore:
		write(t.val)
	case proto.OpFetchAdd:
		write(old + t.val)
	case proto.OpFetchOr:
		write(old | t.val)
	case proto.OpTestAndSet:
		write(1)
	case proto.OpCAS:
		if old == t.val {
			write(t.val2)
		} else {
			ok = false
		}
	case proto.OpSC:
		if l.ver != s.llVer[i] {
			in.fail(KindSC, false,
				"n%d SC succeeding on version %d, LL observed %d", i, l.ver, s.llVer[i])
		}
		write(t.val)
		l.resv = false
	case proto.OpLL:
		l.resv = true
		s.llVer[i] = l.ver
	default:
		in.fail(KindProtocol, false, "execLine of %v", t.op)
	}
	return val, ok, l.ver
}

func (in *interp) cacheApply(i int, a proto.Act, m *mmsg, l *cline) *cline {
	s := in.st
	t := &s.txn[i]
	switch a.Do {
	case proto.ACompleteOK:
		in.complete(i, -1)

	case proto.ACompleteFail:
		in.complete(i, -1)

	case proto.ACompleteHit:
		if t.op == proto.OpLL {
			s.llVer[i] = l.ver
		}
		in.complete(i, l.ver)

	case proto.ACountSCFail:
		// Statistics only in the simulator.

	case proto.AClearLLHint:
		s.llFail[i] = false

	case proto.ASetResv:
		l.resv = true
		s.llVer[i] = l.ver

	case proto.ASendHome:
		in.enqueue(home, mmsg{kind: a.Msg, src: i, req: i,
			op: t.op, val: t.val, val2: t.val2, toHome: true})

	case proto.ALocalExec:
		_, _, ver := in.execLine(i, l)
		in.complete(i, ver)

	case proto.AEvictLine:
		if l != nil || s.line[i].present {
			in.evict(i)
		}

	case proto.ADropShared:
		s.line[i] = cline{}
		in.enqueue(home, mmsg{kind: proto.KDropS, src: i, req: i, toHome: true})

	case proto.AInvalLine:
		if s.line[i].present {
			if s.line[i].excl {
				in.fail(KindProtocol, false, "n%d invalidated while owning", i)
			}
			s.line[i] = cline{}
		}

	case proto.AAckRequester:
		in.enqueue(m.req, mmsg{kind: a.Msg, src: i, req: m.req})

	case proto.ASurrenderE:
		in.enqueue(home, mmsg{kind: proto.KWBRecall, src: i, req: m.req,
			data: l.val, dver: l.ver, hasData: true, toHome: true})
		s.line[i] = cline{}

	case proto.ASurrenderS:
		in.enqueue(home, mmsg{kind: proto.KWBShare, src: i, req: m.req,
			data: l.val, dver: l.ver, hasData: true, toHome: true})
		s.line[i].excl = false

	case proto.ASendRecallNak:
		in.enqueue(home, mmsg{kind: proto.KRecallNak, src: i, req: m.req, toHome: true})

	case proto.ACASGive:
		data, dver := l.val, l.ver
		s.line[i] = cline{}
		in.enqueue(home, mmsg{kind: proto.KWBRecall, src: i, req: m.req,
			data: data, dver: dver, hasData: true, toHome: true})

	case proto.ACASKeepShare:
		s.line[i].excl = false
		in.enqueue(home, mmsg{kind: proto.KWBShare, src: i, req: m.req,
			data: l.val, dver: l.ver, hasData: true, toHome: true})

	case proto.ACASDeny:
		in.enqueue(m.req, mmsg{kind: proto.KCASFail, src: i, req: m.req,
			val: l.val, vver: l.ver})
		in.enqueue(home, mmsg{kind: proto.KCASRel, src: i, req: m.req, toHome: true})

	case proto.AApplyUpdate:
		l.val = m.updWord
		l.ver = m.updVer

	case proto.ACountNak:
		// Statistics only in the simulator.

	case proto.ARetry:
		t.granted = false
		t.needAcks = 0
		t.acks = 0
		t.retry = true

	case proto.ABumpAck:
		t.acks++

	case proto.AMergeChain:
		// Chain accounting is statistics only.

	case proto.AGrant:
		t.granted = true
		t.needAcks = m.acks

	case proto.AFillShared:
		s.line[i] = cline{present: true, val: m.data, ver: m.dver}
		l = &s.line[i]

	case proto.AFillIfData:
		if m.hasData {
			s.line[i] = cline{present: true, val: m.data, ver: m.dver}
			l = &s.line[i]
		}

	case proto.AFillExclusive:
		s.line[i] = cline{present: true, excl: true, val: m.data, ver: m.dver}
		l = &s.line[i]

	case proto.ASCApply:
		if m.dver != s.llVer[i] {
			in.fail(KindSC, false,
				"n%d SC granted on version %d, LL observed %d", i, m.dver, s.llVer[i])
		}
		s.gver++
		l.val = t.val
		l.ver = s.gver
		l.resv = false
		t.resVal, t.resOK, t.resVer = m.data, true, s.gver

	case proto.AExecLine:
		t.resVal, t.resOK, t.resVer = in.execLine(i, l)

	case proto.AHintIfLL:
		if t.op == proto.OpLL {
			s.llVer[i] = m.vver
			s.llSerial[i] = m.serial
			if m.hint {
				s.llFail[i] = true
			}
		}

	case proto.AStashReply:
		if t.op == proto.OpCAS && m.ok && m.val != t.val {
			in.fail(KindCAS, false,
				"n%d CAS reported success over old value %d, expected %d", i, m.val, t.val)
		}
		t.resVal, t.resOK, t.resVer = m.val, m.ok, m.vver

	case proto.ACompleteData:
		in.complete(i, m.dver)

	case proto.ACompleteCASFail:
		in.complete(i, m.vver)

	case proto.ACompleteSCFail:
		if s.line[i].present {
			s.line[i].resv = false
		}
		in.complete(i, -1)

	case proto.ACompleteReply:
		if t.op == proto.OpCAS && m.ok && m.val != t.val {
			in.fail(KindCAS, false,
				"n%d CAS reported success over old value %d, expected %d", i, m.val, t.val)
		}
		in.complete(i, m.vver)

	case proto.AMaybeFinish:
		in.maybeFinish(i)

	default:
		in.fail(KindProtocol, false, "unknown cache action %v", a.Do)
	}
	return l
}

func (in *interp) maybeFinish(i int) {
	s := in.st
	t := &s.txn[i]
	if !t.granted || t.acks < t.needAcks {
		return
	}
	if t.acks > t.needAcks {
		in.fail(KindAcks, false, "n%d collected %d acks for %d expected", i, t.acks, t.needAcks)
	}
	in.complete(i, t.resVer)
}

// evict mirrors evictVictim/dropINV for the single line.
func (in *interp) evict(i int) {
	s := in.st
	l := &s.line[i]
	if !l.present {
		return
	}
	if l.excl {
		in.enqueue(home, mmsg{kind: proto.KWB, src: i, req: i,
			data: l.val, dver: l.ver, hasData: true, toHome: true})
	} else {
		in.enqueue(home, mmsg{kind: proto.KDropS, src: i, req: i, toHome: true})
	}
	s.line[i] = cline{}
}

// ----------------------------------------------------------- home side --

func (in *interp) homeProcess(m mmsg) {
	if m.kind.IsRequest() {
		in.homeRequest(m)
		return
	}
	rules := proto.HomeRet[m.kind]
	if rules == nil {
		in.fail(KindProtocol, false, "home received %v", m.kind)
		return
	}
	in.runHomeRules(rules, &m)
}

func (in *interp) homeRequest(m mmsg) {
	s := in.st
	if s.busyActive {
		in.runHomeRules(proto.HomeReq[proto.HBusy][m.kind], &m)
		return
	}
	in.runHomeRules(proto.HomeReq[s.dirState][m.kind], &m)
}

func (in *interp) runHomeRules(rules []proto.HRule, m *mmsg) {
	for r := range rules {
		if !in.homeGuard(rules[r].Guard, m) {
			continue
		}
		for _, a := range rules[r].Actions {
			in.homeApply(a, m)
			if in.vio != nil {
				return
			}
		}
		return
	}
	in.fail(KindProtocol, false, "home: no rule for %v", m.kind)
}

func (in *interp) homeGuard(g proto.HomeGuard, m *mmsg) bool {
	s := in.st
	switch g {
	case proto.HGAlways:
		return true
	case proto.HGOwnerIsReq:
		return s.owner == m.req
	case proto.HGSharerHasReq:
		return s.sharers&bit(m.req) != 0
	case proto.HGCASMatch:
		return s.mem == m.val
	case proto.HGCASShare:
		return in.cfg.CAS == proto.CASShare
	case proto.HGBusyBlock:
		return s.busyActive
	case proto.HGFromOwnerOrig:
		return s.busyActive && s.busyOwner == m.src && s.busyHasOrg
	case proto.HGFromOwner:
		return s.busyActive && s.busyOwner == m.src
	}
	panic(fmt.Sprintf("mc: unknown home guard %v", g))
}

// homeReply enqueues r to the request's sender with the reply fields the
// simulator copies over (op in particular: the cache-side tables dispatch
// replies by the transaction's op, which m carries).
func (in *interp) homeReply(m *mmsg, r mmsg) {
	r.src = home
	r.req = m.req
	r.op = m.op
	in.enqueue(m.req, r)
}

func (in *interp) homeApply(a proto.HAct, m *mmsg) {
	s := in.st
	switch a.Do {
	case proto.HNak:
		in.homeReply(m, mmsg{kind: proto.KNak})

	case proto.HShareReply:
		s.dirState = proto.HShared
		s.sharers |= bit(m.req)
		in.homeReply(m, mmsg{kind: proto.KDataS, data: s.mem, dver: s.mver, hasData: true})

	case proto.HGrantE:
		in.grantExclusive(m, false)

	case proto.HGrantESC:
		in.grantExclusive(m, true)

	case proto.HRecall:
		s.busyActive = true
		s.busyOwner = s.owner
		s.busyOrig = *m
		s.busyHasOrg = true
		in.enqueue(s.owner, mmsg{kind: a.Msg, src: home, req: m.req,
			fwdVal: m.val, fwdVal2: m.val2})

	case proto.HSCFail:
		in.homeReply(m, mmsg{kind: proto.KSCFail})

	case proto.HCASFail:
		in.homeReply(m, mmsg{kind: proto.KCASFail, val: s.mem, vver: s.mver})

	case proto.HCASFailShare:
		r := mmsg{kind: proto.KCASFail, val: s.mem, vver: s.mver}
		s.dirState = proto.HShared
		s.sharers |= bit(m.req)
		r.data, r.dver, r.hasData = s.mem, s.mver, true
		in.homeReply(m, r)

	case proto.HExec:
		in.execMem(m)
		in.exAcks = 0

	case proto.HUncReply:
		in.homeReply(m, mmsg{kind: proto.KUncReply, val: in.exVal, ok: in.exOK,
			serial: in.exSerial, hint: in.exHint, vver: in.exVer})

	case proto.HUpdFanout:
		if in.exWrote && s.mem != in.exVal {
			targets := s.sharers &^ bit(m.req)
			in.exAcks = 0
			for j := 0; j < in.cfg.Nodes; j++ {
				if targets&bit(j) == 0 {
					continue
				}
				in.exAcks++
				in.enqueue(j, mmsg{kind: proto.KUpdate, src: home, req: m.req,
					updWord: s.mem, updVer: s.mver})
			}
		}

	case proto.HUpdReply:
		s.dirState = proto.HShared
		s.sharers |= bit(m.req)
		in.homeReply(m, mmsg{kind: proto.KUpdReply, val: in.exVal, ok: in.exOK,
			serial: in.exSerial, hint: in.exHint, vver: in.exVer,
			data: s.mem, dver: s.mver, hasData: true, acks: in.exAcks})

	case proto.HAcceptUnowned, proto.HAcceptShare:
		if m.src != s.busyOwner {
			in.fail(KindProtocol, false, "home got %v for busy block from n%d, expected n%d",
				m.kind, m.src, s.busyOwner)
			return
		}
		s.mem, s.mver = m.data, m.dver
		if a.Do == proto.HAcceptShare {
			s.dirState = proto.HShared
			s.sharers = bit(s.busyOwner)
			s.owner = 0
		} else {
			s.dirState = proto.HUnowned
			s.sharers = 0
			s.owner = 0
		}
		s.busyActive = false
		if s.busyHasOrg {
			orig := s.busyOrig
			in.replay = &orig
			s.busyHasOrg = false
		}

	case proto.HReplay:
		if in.replay != nil {
			orig := *in.replay
			in.replay = nil
			in.homeRequest(orig)
		}

	case proto.HWriteBack:
		if s.dirState != proto.HExclusive || s.owner != m.src {
			in.fail(KindProtocol, false, "home got %v in state %v from n%d",
				m.kind, s.dirState, m.src)
			return
		}
		if m.kind != proto.KWB {
			in.fail(KindProtocol, false, "unexpected %v outside a recall", m.kind)
			return
		}
		s.mem, s.mver = m.data, m.dver
		s.dirState = proto.HUnowned
		s.owner = 0

	case proto.HDropSharer:
		if s.dirState == proto.HShared && s.sharers&bit(m.src) != 0 {
			s.sharers &^= bit(m.src)
			if s.sharers == 0 {
				s.dirState = proto.HUnowned
			}
		}

	case proto.HNakOrig:
		orig := s.busyOrig
		in.homeReply(&orig, mmsg{kind: proto.KNak})
		s.busyHasOrg = false

	case proto.HReleaseBusy:
		s.busyActive = false
		s.busyHasOrg = false

	default:
		in.fail(KindProtocol, false, "unknown home action %v", a.Do)
	}
}

func (in *interp) grantExclusive(m *mmsg, scGrant bool) {
	s := in.st
	others := s.sharers &^ bit(m.req)
	acks := 0
	for j := 0; j < in.cfg.Nodes; j++ {
		if others&bit(j) == 0 {
			continue
		}
		acks++
		in.enqueue(j, mmsg{kind: proto.KInval, src: home, req: m.req})
	}
	if scGrant && s.mver != s.llVer[m.req] {
		in.fail(KindSC, false,
			"home granting SC success on version %d, n%d's LL observed %d",
			s.mver, m.req, s.llVer[m.req])
	}
	s.dirState = proto.HExclusive
	s.sharers = 0
	s.owner = m.req
	in.homeReply(m, mmsg{kind: proto.KDataE, data: s.mem, dver: s.mver,
		hasData: true, acks: acks, ok: scGrant})
}

// execMem mirrors HomeCtl.execMem on the abstract memory word, with the
// reservation schemes inlined and ghost checks for CAS and SC.
func (in *interp) execMem(m *mmsg) {
	s := in.st
	old := s.mem
	in.exVal, in.exOK = old, true
	in.exWrote, in.exSerial, in.exHint = false, 0, false
	write := func(v int) {
		in.exWrote = true
		if !s.resvDormant {
			s.resvHolders = 0
			s.resvSerial++
		}
		// A write that leaves the value unchanged is invisible to readers
		// (the home suppresses the update fan-out for it, see HUpdFanout),
		// so it does not advance the ghost version; reservations above are
		// still consumed.
		if v != s.mem {
			s.gver++
			s.mem, s.mver = v, s.gver
		}
	}
	switch m.op {
	case proto.OpLoad, proto.OpLoadExclusive:
	case proto.OpStore, proto.OpFetchStore:
		write(m.val)
	case proto.OpFetchAdd:
		write(old + m.val)
	case proto.OpFetchOr:
		write(old | m.val)
	case proto.OpTestAndSet:
		write(1)
	case proto.OpCAS:
		if old == m.val {
			write(m.val2)
		} else {
			in.exOK = false
		}
	case proto.OpLL:
		s.resvDormant = false
		switch in.cfg.Resv {
		case ResvBits:
			s.resvHolders |= bit(m.req)
		case ResvLimited:
			if s.resvHolders&bit(m.req) == 0 {
				if popcount(s.resvHolders) >= in.cfg.ResvLimit {
					in.exHint = true
				} else {
					s.resvHolders |= bit(m.req)
				}
			}
		case ResvSerial:
			// Always succeeds; the serial below is the reservation.
		}
		in.exSerial = s.resvSerial
	case proto.OpSC:
		s.resvDormant = false
		valid := false
		switch in.cfg.Resv {
		case ResvBits, ResvLimited:
			valid = s.resvHolders&bit(m.req) != 0
		case ResvSerial:
			valid = s.resvSerial == m.val2
		}
		if valid {
			if s.mver != s.llVer[m.req] {
				in.fail(KindSC, false,
					"home SC success on version %d, n%d's LL observed %d",
					s.mver, m.req, s.llVer[m.req])
			}
			write(m.val)
		} else {
			in.exOK = false
		}
	default:
		in.fail(KindProtocol, false, "execMem of %v", m.op)
	}
	in.exVer = s.mver
}

func popcount(b uint) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// --------------------------------------------------------- invariants ---

// checkGlobal enforces the state invariants that must hold after every
// transition: single-writer (modulo in-flight invalidations) and
// directory-cache agreement.
func (in *interp) checkGlobal() {
	s := in.st
	owner := -1
	for i := 0; i < in.cfg.Nodes; i++ {
		if s.line[i].present && s.line[i].excl {
			if owner >= 0 {
				in.fail(KindSWMR, false, "n%d and n%d both hold exclusive copies", owner, i)
				return
			}
			owner = i
		}
	}
	if owner >= 0 {
		if s.dirState != proto.HExclusive || s.owner != owner {
			in.fail(KindAgreement, false,
				"n%d holds exclusively but the directory records state %v owner n%d",
				owner, s.dirState, s.owner)
			return
		}
		for i := 0; i < in.cfg.Nodes; i++ {
			if i == owner || !s.line[i].present {
				continue
			}
			if !in.invalInFlight(i) {
				in.fail(KindSWMR, false,
					"n%d holds a copy while n%d is exclusive with no invalidation in flight",
					i, owner)
				return
			}
		}
	}
	for i := 0; i < in.cfg.Nodes; i++ {
		if !s.line[i].present || s.line[i].excl {
			continue
		}
		recorded := s.sharers&bit(i) != 0 ||
			(s.busyActive && s.busyOwner == i) ||
			// The upgrade window: the holder is the recorded owner and
			// its exclusive grant is still in flight toward it.
			(s.dirState == proto.HExclusive && s.owner == i)
		if !recorded && !in.invalInFlight(i) {
			in.fail(KindAgreement, false,
				"n%d holds a copy the directory does not account for", i)
			return
		}
	}
}

// invalInFlight reports whether an invalidation is queued toward node i.
func (in *interp) invalInFlight(i int) bool {
	for _, m := range in.st.q[i] {
		if m.kind == proto.KInval {
			return true
		}
	}
	return false
}

// repairInFlight reports whether a coherence message that would repair
// node i's stale copy — an invalidation or a pushed update — is queued
// toward it. A stale plain-load hit under exactly this condition is the
// documented read-window behavior.
func (in *interp) repairInFlight(i int) bool {
	for _, m := range in.st.q[i] {
		if m.kind == proto.KInval || m.kind == proto.KUpdate {
			return true
		}
	}
	return false
}
