package exper

// GroupOrderForTest exposes the grouped execution order to the package's
// external tests.
var GroupOrderForTest = groupOrder
