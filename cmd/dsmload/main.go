// Command dsmload is a closed-loop load generator for dsmserve: N client
// goroutines issue simulation requests back to back, drawing each request
// from a fixed working set with probability -dup (these become cache hits
// once warm) and from never-seen specs otherwise (these cost a real
// simulation). It prints achieved throughput, latency percentiles, and the
// client-observed cache-hit ratio, and with -o writes the run as JSON —
// the serving benchmark of record (BENCH_PR4.json, BENCH_PR5.json).
//
//	dsmserve &
//	dsmload -addr http://localhost:8080 -c 32 -d 10s -dup 0.9 -o BENCH_PR4.json
//	dsmload -sweep -batch 8 -c 32 -d 10s -dup 0.9 -o BENCH_PR5.json
//
// A 429 rejection is retried up to 5 times, honoring the server's
// Retry-After with capped exponential backoff; retries are recorded in the
// JSON run record as retries_429. With -sweep each request is a -batch
// point plan POSTed to /v1/sweep, and the per-point cache profile comes
// from the X-Sweep-* response headers.
//
// Working-set draws are uniform by default; -zipf s (s > 1) skews them
// Zipf-fashion so a few specs dominate — the workload that exercises
// dsmrouter's hot-key replication. All randomness derives from -seed, so a
// recorded run names the exact request sequence that produced it. -targets
// takes a comma-separated URL list and round-robins requests across it
// (client-side spreading without a router in the path); the distribution,
// seed, and target list land in the -o JSON provenance. With -bench it also runs the
// in-process serving benchmarks (serve.BenchServe*) and records them
// alongside the load run. -procs pins the client's GOMAXPROCS for
// scaling-curve runs; the run record carries both the effective client
// gomaxprocs and the server's worker count (from /metrics), so a recorded
// point states the core budget on both sides of the connection.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptrace"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsm/internal/serve"
)

// Connection accounting: every request carries an httptrace that counts
// whether its connection came fresh off a dial or out of the idle pool.
// The split lands in the run record (conns_new / conns_reused), so a
// throughput regression is attributable — connection churn on the client
// vs time spent on the server.
var connsNew, connsReused atomic.Uint64

var traceCtx = httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
	GotConn: func(info httptrace.GotConnInfo) {
		if info.Reused {
			connsReused.Add(1)
		} else {
			connsNew.Add(1)
		}
	},
})

// workingSet builds the duplicate pool: n specs spread across the paper's
// design space (policy x primitive x contention), all at the reduced scale
// the host benchmarks use. Every dsmload invocation generates the same
// set, so back-to-back runs against a warm server hit immediately.
func workingSet(n int) []string {
	policies := []string{"INV", "UPD", "UNC"}
	prims := []string{"FAP", "CAS", "LLSC"}
	conts := []int{1, 2, 4, 8}
	specs := make([]string, 0, n)
	for i := 0; len(specs) < n; i++ {
		specs = append(specs, fmt.Sprintf(
			`{"app":"counter","policy":%q,"prim":%q,"procs":8,"c":%d,"rounds":3}`,
			policies[i%len(policies)], prims[(i/3)%len(prims)], conts[(i/9)%len(conts)]))
	}
	return specs
}

// picker draws one client's request stream: a working-set spec with
// probability dup (uniform, or Zipf-skewed when zipfS > 1 — rank 0
// hottest), a never-seen spec otherwise. Each (seed, worker) pair names a
// deterministic sequence, so a run is reproducible from its JSON record.
type picker struct {
	rng    *rand.Rand
	specs  []string
	dup    float64
	zipf   *rand.Zipf
	unique uint64
}

func newPicker(seed int64, worker int, specs []string, dup, zipfS float64) *picker {
	rng := rand.New(rand.NewSource(seed<<20 + int64(worker)))
	p := &picker{
		rng:    rng,
		specs:  specs,
		dup:    dup,
		unique: uint64(worker) << 32, // per-client unique-seed space
	}
	if zipfS > 1 {
		p.zipf = rand.NewZipf(rng, zipfS, 1, uint64(len(specs)-1))
	}
	return p
}

func (p *picker) draw() string {
	if p.rng.Float64() < p.dup {
		if p.zipf != nil {
			return p.specs[p.zipf.Uint64()]
		}
		return p.specs[p.rng.Intn(len(p.specs))]
	}
	p.unique++
	return fmt.Sprintf(`{"app":"counter","procs":8,"c":8,"rounds":3,"seed":%d}`, p.unique)
}

// result is one request's outcome as the client saw it.
type result struct {
	latency    time.Duration
	status     int
	cache      string // X-Cache header: hit, miss, coalesced ("" on error)
	retryAfter string // Retry-After header of a 429 response
	retries    int    // 429 responses retried before this outcome

	// Sweep mode: per-point accounting decoded from the X-Sweep-* headers
	// of one batch response (points > 0 marks a batch result).
	points, hits, coalesced int
	lines                   int // NDJSON lines actually received
}

type loadStats struct {
	Addr        string  `json:"addr"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	DupRate     float64 `json:"dup_rate"`
	SpecSet     int     `json:"spec_set"`

	// Provenance: the seed all client randomness derives from, the Zipf
	// exponent when working-set draws were skewed (0: uniform), and the
	// full target list when requests were spread client-side.
	Seed    int64    `json:"seed"`
	ZipfS   float64  `json:"zipf_s,omitempty"`
	Targets []string `json:"targets,omitempty"`

	SweepBatch int `json:"sweep_batch,omitempty"` // points per /v1/sweep plan (0: /v1/sim mode)

	Requests   uint64 `json:"requests"`
	Failed     uint64 `json:"failed"`
	Rejected   uint64 `json:"rejected"`    // 429s that exhausted their retries (also counted in Failed)
	Retries429 uint64 `json:"retries_429"` // 429 responses retried after honoring Retry-After
	Hits       uint64 `json:"hits"`
	Coalesced  uint64 `json:"coalesced"`
	Misses     uint64 `json:"misses"`

	ReqPerSec float64 `json:"req_per_sec"`
	HitRatio  float64 `json:"hit_ratio"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`

	// Client-side cost of the run: connections dialed vs reused (httptrace
	// on every request; a healthy closed loop dials ~concurrency conns and
	// reuses the rest) and the client process's own allocation rate across
	// the measured window (runtime.MemStats delta / HTTP requests issued).
	ConnsNew           uint64  `json:"conns_new"`
	ConnsReused        uint64  `json:"conns_reused"`
	ClientAllocsPerReq float64 `json:"client_allocs_per_req"`
	ClientBytesPerReq  float64 `json:"client_bytes_per_req"`
}

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type output struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is the client's effective setting (after -procs, when
	// given); ServerWorkers is the serving side's worker count as reported
	// by /metrics (0 when the metrics fetch failed).
	GOMAXPROCS    int             `json:"gomaxprocs"`
	ServerWorkers int             `json:"server_workers"`
	Load          loadStats       `json:"load"`
	ServerMetrics *serve.Snapshot `json:"server_metrics,omitempty"`
	Benchmarks    []benchResult   `json:"benchmarks,omitempty"`
}

func main() {
	var (
		addr  = flag.String("addr", "http://localhost:8080", "dsmserve base URL")
		conc  = flag.Int("c", 32, "concurrent closed-loop clients")
		dur   = flag.Duration("d", 10*time.Second, "load duration")
		dup   = flag.Float64("dup", 0.9, "probability a request repeats the working set")
		nset  = flag.Int("specs", 16, "working-set size (distinct duplicate specs)")
		out   = flag.String("o", "", "write the run as JSON to this file (- for stdout)")
		bench = flag.Bool("bench", false, "also run the in-process serve benchmarks")
		sweep = flag.Bool("sweep", false, "issue batch plans to /v1/sweep instead of single sims")
		batch = flag.Int("batch", 8, "points per sweep plan (with -sweep)")
		procs = flag.Int("procs", 0, "pin client GOMAXPROCS for scaling runs (0: runtime default)")
		seed  = flag.Int64("seed", 1, "seed for all client randomness (reproducible request streams)")
		zipfS = flag.Float64("zipf", 0, "Zipf exponent s > 1 for working-set draws (0: uniform)")
		multi = flag.String("targets", "", "comma-separated base URLs to round-robin across (overrides -addr)")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "dsmload: -zipf needs s > 1 (the Zipf exponent)")
		os.Exit(1)
	}

	targets := []string{strings.TrimSuffix(*addr, "/")}
	if *multi != "" {
		targets = targets[:0]
		for _, t := range strings.Split(*multi, ",") {
			if t = strings.TrimSuffix(strings.TrimSpace(t), "/"); t != "" {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "dsmload: -targets has no URLs")
			os.Exit(1)
		}
	}

	specs := workingSet(*nset)
	// One idle slot per client per target: DefaultTransport keeps only two
	// idle conns per host, so at -c 32 thirty clients would redial every
	// request — the conns_new/conns_reused split in the run record is how
	// that misconfiguration shows up.
	transport := &http.Transport{
		MaxIdleConns:        2 * *conc * len(targets),
		MaxIdleConnsPerHost: *conc,
	}
	client := &http.Client{Transport: transport, Timeout: 60 * time.Second}
	path := "/v1/sim"
	if *sweep {
		path = "/v1/sweep"
	}

	// Warm-up probe: fail fast when any target is not listening.
	for _, t := range targets {
		if _, err := issue(client, t+"/v1/sim", specs[0]); err != nil {
			fmt.Fprintf(os.Stderr, "dsmload: cannot reach %s: %v\n", t, err)
			os.Exit(1)
		}
	}

	// The warm-up probes above are not part of the measured window: reset
	// the connection counters, then bracket the loop with MemStats so the
	// run record carries the client's own allocation rate.
	connsNew.Store(0)
	connsReused.Store(0)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	results := make([][]result, *conc)
	deadline := time.Now().Add(*dur)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := newPicker(*seed, w, specs, *dup, *zipfS)
			rr := w // round-robin cursor, offset per worker so targets warm evenly
			for time.Now().Before(deadline) {
				url := targets[rr%len(targets)] + path
				rr++
				var r result
				var err error
				t0 := time.Now()
				if *sweep {
					points := make([]string, *batch)
					for i := range points {
						points[i] = p.draw()
					}
					plan := `{"points":[` + strings.Join(points, ",") + `]}`
					r, err = issueSweep(client, url, plan)
				} else {
					r, err = issueRetry(client, url, p.draw(), deadline)
				}
				r.latency = time.Since(t0)
				if err != nil {
					r.status = 0
				}
				results[w] = append(results[w], r)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	stats := reduce(results, elapsed)
	stats.ConnsNew = connsNew.Load()
	stats.ConnsReused = connsReused.Load()
	// Per-HTTP-round-trip client cost: GotConn fires once per round trip,
	// so the counter sum is the denominator (sweep plans are one round trip
	// for -batch points; retried 429s each count).
	if trips := stats.ConnsNew + stats.ConnsReused; trips > 0 {
		stats.ClientAllocsPerReq = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(trips)
		stats.ClientBytesPerReq = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(trips)
	}
	stats.Addr = targets[0]
	stats.Concurrency = *conc
	stats.DupRate = *dup
	stats.SpecSet = len(specs)
	stats.Seed = *seed
	stats.ZipfS = *zipfS
	if len(targets) > 1 {
		stats.Targets = targets
	}
	if *sweep {
		stats.SweepBatch = *batch
	}

	fmt.Printf("dsmload: %d requests in %.2fs = %.0f req/s (%d clients, dup %.2f)\n",
		stats.Requests, elapsed.Seconds(), stats.ReqPerSec, *conc, *dup)
	fmt.Printf("  latency: p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		stats.P50Ms, stats.P90Ms, stats.P99Ms, stats.MaxMs)
	fmt.Printf("  cache:   %.1f%% hits, %d coalesced, %d misses\n",
		100*stats.HitRatio, stats.Coalesced, stats.Misses)
	fmt.Printf("  errors:  %d failed (%d rejected with 429, %d retried)\n",
		stats.Failed, stats.Rejected, stats.Retries429)
	fmt.Printf("  client:  %d conns dialed, %d reused; %.0f allocs (%.0f B) per round trip\n",
		stats.ConnsNew, stats.ConnsReused, stats.ClientAllocsPerReq, stats.ClientBytesPerReq)

	rep := output{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Load:       stats,
	}
	if snap, err := fetchMetrics(client, targets[0]+"/metrics"); err == nil {
		rep.ServerMetrics = snap
		rep.ServerWorkers = snap.Workers
	}
	if *bench {
		for _, b := range []struct {
			name string
			body func(*testing.B)
		}{
			{"ServeHit", serve.BenchServeHit},
			{"ServeMiss", serve.BenchServeMiss},
			{"ServeDup90", serve.BenchServeDup90},
		} {
			fmt.Fprintf(os.Stderr, "running Benchmark%s...\n", b.name)
			r := testing.Benchmark(b.body)
			rep.Benchmarks = append(rep.Benchmarks, benchResult{
				Name:        b.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Metrics:     r.Extra,
			})
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmload:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dsmload:", err)
			os.Exit(1)
		}
	}
	if stats.Failed > 0 {
		os.Exit(1)
	}
}

// post issues one traced POST: the shared httptrace counts the connection
// as dialed or reused before the request body goes out.
func post(client *http.Client, url, body string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(traceCtx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}

// issue posts one spec and drains the response body (keep-alive requires
// reading to EOF before reuse).
func issue(client *http.Client, url, spec string) (result, error) {
	resp, err := post(client, url, spec)
	if err != nil {
		return result{}, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return result{
		status:     resp.StatusCode,
		cache:      resp.Header.Get("X-Cache"),
		retryAfter: resp.Header.Get("Retry-After"),
	}, nil
}

// Backoff bounds for retried 429s: the server's Retry-After is honored as
// a floor, doubled per consecutive rejection, and capped.
const (
	retryBase = 50 * time.Millisecond
	retryCap  = 2 * time.Second
	retryMax  = 5 // rejections tolerated per request before giving up
)

// issueRetry posts one spec, honoring 429 + Retry-After with capped
// exponential backoff: a rejected request sleeps max(Retry-After, the
// current backoff step) and reissues, up to retryMax rejections or the
// run deadline. The final result carries how many 429s were absorbed, so
// the run record separates retried rejections from failed ones.
func issueRetry(client *http.Client, url, spec string, deadline time.Time) (result, error) {
	backoff := retryBase
	retries := 0
	for {
		r, err := issue(client, url, spec)
		r.retries = retries
		if err != nil || r.status != http.StatusTooManyRequests {
			return r, err
		}
		if retries >= retryMax {
			return r, nil // give up; reduce counts it as rejected
		}
		wait := backoff
		if ra, err := strconv.Atoi(r.retryAfter); err == nil && ra > 0 {
			if server := time.Duration(ra) * time.Second; server > wait {
				wait = server
			}
		}
		if wait > retryCap {
			wait = retryCap
		}
		if time.Now().Add(wait).After(deadline) {
			return r, nil // no budget left to retry into
		}
		time.Sleep(wait)
		retries++
		backoff *= 2
	}
}

// issueSweep posts one plan to /v1/sweep and reduces the NDJSON stream to
// its per-point accounting: the X-Sweep-* headers carry the cache profile
// computed at dispatch, and the line count checks the one-line-per-point
// framing.
func issueSweep(client *http.Client, url, plan string) (result, error) {
	resp, err := post(client, url, plan)
	if err != nil {
		return result{}, err
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lines++
	}
	r := result{status: resp.StatusCode, lines: lines}
	atoi := func(name string) int {
		v, _ := strconv.Atoi(resp.Header.Get(name))
		return v
	}
	r.points = atoi("X-Sweep-Points")
	r.hits = atoi("X-Sweep-Hits")
	r.coalesced = atoi("X-Sweep-Coalesced")
	return r, sc.Err()
}

func fetchMetrics(client *http.Client, url string) (*serve.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// reduce aggregates per-client results into the run's statistics.
func reduce(results [][]result, elapsed time.Duration) loadStats {
	var s loadStats
	s.DurationSec = elapsed.Seconds()
	var lats []time.Duration
	for _, rs := range results {
		for _, r := range rs {
			lats = append(lats, r.latency)
			s.Retries429 += uint64(r.retries)
			if r.points > 0 {
				// One sweep batch: every point is a request; the dispatch
				// headers carry the per-point cache profile. A line count
				// short of the point count marks lost responses.
				s.Requests += uint64(r.points)
				if r.status == http.StatusOK && r.lines == r.points {
					s.Hits += uint64(r.hits)
					s.Coalesced += uint64(r.coalesced)
					s.Misses += uint64(r.points - r.hits - r.coalesced)
				} else {
					s.Failed += uint64(r.points)
				}
				continue
			}
			s.Requests++
			switch {
			case r.status == http.StatusOK:
				switch r.cache {
				case "hit":
					s.Hits++
				case "coalesced":
					s.Coalesced++
				default:
					s.Misses++
				}
			case r.status == http.StatusTooManyRequests:
				s.Rejected++
				s.Failed++
			default:
				s.Failed++
			}
		}
	}
	if s.Requests > 0 {
		s.ReqPerSec = float64(s.Requests) / elapsed.Seconds()
		s.HitRatio = float64(s.Hits) / float64(s.Requests)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	if n := len(lats); n > 0 {
		s.P50Ms = ms(lats[n*50/100])
		s.P90Ms = ms(lats[min(n*90/100, n-1)])
		s.P99Ms = ms(lats[min(n*99/100, n-1)])
		s.MaxMs = ms(lats[n-1])
	}
	return s
}
