package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// RWLock is a counter-based reader-writer lock (after Mellor-Crummey &
// Scott's simple scalable reader-writer locks), one of the synchronization
// styles the paper cites general-purpose primitives for. The lock word
// packs a writer bit (bit 0) and a reader count (bits 1..31); readers
// enter with fetch_and_add(+2) and retreat if a writer is present, writers
// enter with fetch_and_or(1) and drain readers. Every atomic step is
// expressible in all three primitive families.
type RWLock struct {
	Addr arch.Addr
	Opts Options

	MinBackoff sim.Time
	MaxBackoff sim.Time
}

// NewRWLock allocates the lock word in its own block under the policy.
func NewRWLock(m *machine.Machine, policy core.Policy, opts Options) *RWLock {
	return &RWLock{
		Addr:       m.AllocSync(policy),
		Opts:       opts,
		MinBackoff: 16,
		MaxBackoff: 512,
	}
}

const (
	rwWriterBit = 1
	rwReaderInc = 2
)

// RLock acquires the lock for reading (shared with other readers).
func (l *RWLock) RLock(p *machine.Proc) {
	backoff := l.MinBackoff
	for {
		old := l.Opts.FetchAdd(p, l.Addr, rwReaderInc)
		if old&rwWriterBit == 0 {
			return
		}
		// A writer holds or is draining; retreat and retry.
		l.Opts.FetchAdd(p, l.Addr, ^arch.Word(rwReaderInc-1)) // -2
		p.Compute(jitter(p, backoff))
		if backoff < l.MaxBackoff {
			backoff *= 2
		}
	}
}

// RUnlock releases a read hold.
func (l *RWLock) RUnlock(p *machine.Proc) {
	l.Opts.FetchAdd(p, l.Addr, ^arch.Word(rwReaderInc-1)) // -2
}

// Lock acquires the lock for writing (exclusive).
func (l *RWLock) Lock(p *machine.Proc) {
	backoff := l.MinBackoff
	// Claim the writer bit against other writers.
	for {
		old := l.Opts.FetchOr(p, l.Addr, rwWriterBit)
		if old&rwWriterBit == 0 {
			break
		}
		p.Compute(jitter(p, backoff))
		if backoff < l.MaxBackoff {
			backoff *= 2
		}
	}
	// Drain readers (including retreating ones).
	for p.Load(l.Addr)>>1 != 0 {
		p.Compute(jitter(p, l.MinBackoff))
	}
}

// Unlock releases a write hold.
func (l *RWLock) Unlock(p *machine.Proc) {
	// Subtracting 1 clears the writer bit; transient retreating readers in
	// the upper bits are unaffected.
	l.Opts.FetchAdd(p, l.Addr, ^arch.Word(0)) // -1
}
