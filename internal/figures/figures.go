// Package figures renders every table and figure of the paper's evaluation
// section as text or CSV: Table 1 (serialized network messages per store),
// Figure 2 (contention histograms of the real applications), Figures 3-5
// (average time per counter update for the three synthetic applications
// across the primitive/policy/auxiliary design space), and Figure 6 (total
// elapsed time of the real applications). It is pure presentation:
// experiment execution — the point specs, the machine reuse pool, and the
// parallel sweep executor — lives in internal/exper, and this package only
// builds plans, runs them through exper, and formats the results. It is
// shared by cmd/figures and the benchmark suite.
package figures

import (
	"fmt"
	"io"

	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/locks"
	"dsm/internal/stats"
)

// WriteTable1 renders Table 1 with paper-vs-measured columns.
func WriteTable1(w io.Writer) { WriteTable1Par(w, 0) }

// WriteTable1Par is WriteTable1 with an explicit sweep width.
func WriteTable1Par(w io.Writer, par int) {
	fmt.Fprintln(w, "Table 1: serialized network messages for stores to shared memory")
	fmt.Fprintf(w, "%-28s %6s %9s\n", "case", "paper", "measured")
	for _, r := range exper.Table1Par(par) {
		mark := ""
		if r.Got != r.Paper {
			mark = "  MISMATCH"
		}
		fmt.Fprintf(w, "%-28s %6d %9d%s\n", r.Case, r.Paper, r.Got, mark)
	}
}

// ---------------------------------------------------------- figures 3-5 --

// SyntheticFigure runs one of figures 3-5: every bar under every sharing
// pattern, returning average cycles per counter update indexed as
// [pattern][bar]. The pattern x bar grid is one exper plan fanned across
// o.Par workers; results land in plan order regardless of completion order.
func SyntheticFigure(app exper.App, o RunOpts) ([][]float64, []Bar, []Pattern) {
	bars := exper.SyntheticBars()
	pats := exper.Patterns(o)
	res := exper.Run(exper.SyntheticPlan(app, o))
	grid := make([][]float64, len(pats))
	for pi := range grid {
		grid[pi] = make([]float64, len(bars))
		for bi := range bars {
			grid[pi][bi] = res[pi*len(bars)+bi].AvgCycles
		}
	}
	return grid, bars, pats
}

// WriteSyntheticFigure renders one of figures 3-5 as a bar-label by
// pattern matrix of average cycles per update.
func WriteSyntheticFigure(w io.Writer, title string, app exper.App, o RunOpts) {
	grid, bars, pats := SyntheticFigure(app, o)
	fmt.Fprintf(w, "%s (p=%d, avg cycles per counter update)\n", title, o.Procs)
	fmt.Fprintf(w, "%-18s", "")
	for _, pat := range pats {
		fmt.Fprintf(w, "%10s", pat.String())
	}
	fmt.Fprintln(w)
	for bi, bar := range bars {
		fmt.Fprintf(w, "%-18s", bar.Label)
		for pi := range pats {
			fmt.Fprintf(w, "%10.1f", grid[pi][bi])
		}
		fmt.Fprintln(w)
	}
}

// Fig3 runs figure 3 (lock-free counter).
func Fig3(w io.Writer, o RunOpts) {
	WriteSyntheticFigure(w, "Figure 3: lock-free counter", exper.AppCounter, o)
}

// Fig4 runs figure 4 (counter under test-and-test-and-set lock).
func Fig4(w io.Writer, o RunOpts) {
	WriteSyntheticFigure(w, "Figure 4: TTS-lock counter", exper.AppTTS, o)
}

// Fig5 runs figure 5 (counter under MCS lock).
func Fig5(w io.Writer, o RunOpts) {
	WriteSyntheticFigure(w, "Figure 5: MCS-lock counter", exper.AppMCS, o)
}

// ------------------------------------------------------- figures 2 & 6 ---

// fig2Plan is the figure-2 grid: each real application under each policy,
// app-major, with full reports collected (the histogram and write-run
// numbers render from the report, not the machine).
func fig2Plan(o RunOpts) (exper.Plan, []RealApp, []core.Policy) {
	realApps := exper.RealApps()
	pols := []core.Policy{core.PolicyINV, core.PolicyUNC, core.PolicyUPD}
	pl := exper.Plan{Par: o.Par, Collect: true,
		Points: make([]exper.Point, 0, len(realApps)*len(pols))}
	for _, app := range realApps {
		for _, pol := range pols {
			pl.Points = append(pl.Points, exper.Point{
				App: app, Bar: Bar{Policy: pol, Prim: locks.PrimFAP}, Scale: o,
			})
		}
	}
	return pl, realApps, pols
}

// Fig2 renders the contention histograms and write-run measurements of the
// real applications under the three coherence policies (figure 2 plus the
// write-run numbers of section 4.2). The primitive is FAP, as in the
// paper's baseline runs.
func Fig2(w io.Writer, o RunOpts) {
	fmt.Fprintf(w, "Figure 2: contention histograms (p=%d; %% of accesses at each level)\n", o.Procs)
	levels := []int{1, 2, 3, 4, 8, 16, 32, 48, 64}
	pl, realApps, pols := fig2Plan(o)
	results := exper.Run(pl)
	for i, res := range results {
		app, pol := realApps[i/len(pols)], pols[i%len(pols)]
		fmt.Fprintf(w, "%-18s %-3s  write-run %.2f  |", app, pol, res.Report.WriteRunMean)
		for _, lv := range levels {
			// Bucket: sum counts in (prev, lv].
			fmt.Fprintf(w, " %2d:%5.1f%%", lv, bucketPercent(res.Report.Contention, levels, lv))
		}
		fmt.Fprintln(w)
	}
}

// bucketPercent sums the histogram percentage over (prevLevel, level].
func bucketPercent(h *stats.Histogram, levels []int, level int) float64 {
	prev := 0
	for _, lv := range levels {
		if lv == level {
			break
		}
		prev = lv
	}
	sum := 0.0
	for v := prev + 1; v <= level; v++ {
		sum += h.Percent(v)
	}
	return sum
}

// fig6Grid runs every bar x application combination, returning total
// elapsed cycles indexed as [bar][app].
func fig6Grid(o RunOpts) ([][]uint64, []Bar, []RealApp) {
	bars := exper.SyntheticBars()
	realApps := exper.RealApps()
	pl := exper.Plan{Par: o.Par, Points: make([]exper.Point, 0, len(bars)*len(realApps))}
	for _, bar := range bars {
		for _, app := range realApps {
			pl.Points = append(pl.Points, exper.Point{App: app, Bar: bar, Scale: o})
		}
	}
	res := exper.Run(pl)
	grid := make([][]uint64, len(bars))
	for bi := range grid {
		grid[bi] = make([]uint64, len(realApps))
		for ai := range realApps {
			grid[bi][ai] = res[bi*len(realApps)+ai].Elapsed
		}
	}
	return grid, bars, realApps
}

// Fig6 renders the total elapsed time of the real applications under every
// bar configuration.
func Fig6(w io.Writer, o RunOpts) {
	grid, bars, realApps := fig6Grid(o)
	fmt.Fprintf(w, "Figure 6: total elapsed cycles, real applications (p=%d)\n", o.Procs)
	fmt.Fprintf(w, "%-18s", "")
	for _, app := range realApps {
		fmt.Fprintf(w, "%14s", app.String())
	}
	fmt.Fprintln(w)
	for bi, bar := range bars {
		fmt.Fprintf(w, "%-18s", bar.Label)
		for ai := range realApps {
			fmt.Fprintf(w, "%14d", grid[bi][ai])
		}
		fmt.Fprintln(w)
	}
}
