package dir

import (
	"testing"
	"testing/quick"

	"dsm/internal/arch"
	"dsm/internal/mesh"
)

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	b.Add(3)
	b.Add(63)
	b.Add(3)
	if b.Count() != 2 || !b.Has(3) || !b.Has(63) || b.Has(0) {
		t.Fatalf("bitset = %b", b)
	}
	b.Remove(3)
	if b.Has(3) || b.Count() != 1 {
		t.Fatal("Remove failed")
	}
	b.Remove(3) // idempotent
	if b.Count() != 1 {
		t.Fatal("double Remove changed set")
	}
}

func TestBitsetOnly(t *testing.T) {
	var b Bitset
	b.Add(5)
	if !b.Only(5) || b.Only(4) {
		t.Fatal("Only misreports singleton")
	}
	b.Add(6)
	if b.Only(5) {
		t.Fatal("Only true for two-element set")
	}
}

func TestBitsetForEachOrdered(t *testing.T) {
	var b Bitset
	for _, n := range []mesh.NodeID{40, 1, 63, 0} {
		b.Add(n)
	}
	var got []mesh.NodeID
	b.ForEach(func(n mesh.NodeID) { got = append(got, n) })
	want := []mesh.NodeID{0, 1, 40, 63}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestBitsetCountMatchesForEach(t *testing.T) {
	f := func(raw uint64) bool {
		b := Bitset(raw)
		n := 0
		b.ForEach(func(mesh.NodeID) { n++ })
		return n == b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsetAddRemoveInverse(t *testing.T) {
	f := func(raw uint64, nRaw uint8) bool {
		n := mesh.NodeID(nRaw % 64)
		b := Bitset(raw)
		orig := b
		b.Add(n)
		if !b.Has(n) {
			return false
		}
		b.Remove(n)
		if b.Has(n) {
			return false
		}
		// Removing then restoring membership preserves other members.
		if orig.Has(n) {
			b.Add(n)
		}
		return b == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectoryEntryCreatesUnowned(t *testing.T) {
	d := New()
	e := d.Entry(0x123) // mid-block address
	if e.State != Unowned || !e.Sharers.Empty() {
		t.Fatalf("fresh entry = %+v", e)
	}
	// Same block, same entry.
	if d.Entry(0x120) != e || d.Entry(0x13f) != e {
		t.Fatal("block aliasing broken")
	}
	if d.Entry(0x140) == e {
		t.Fatal("adjacent block shares entry")
	}
}

func TestDirectoryPeek(t *testing.T) {
	d := New()
	if d.Peek(0x40) != nil {
		t.Fatal("Peek created an entry")
	}
	e := d.Entry(0x40)
	if d.Peek(0x5c) != e {
		t.Fatal("Peek missed existing entry")
	}
}

func TestDirectoryForEach(t *testing.T) {
	d := New()
	d.Entry(0x00)
	d.Entry(0x20)
	d.Entry(0x40)
	n := 0
	d.ForEach(func(a arch.Addr, e *Entry) { n++ })
	if n != 3 {
		t.Fatalf("ForEach visited %d entries, want 3", n)
	}
}

func TestEntryCheckViolations(t *testing.T) {
	mustPanic := func(name string, e *Entry) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Check did not panic", name)
			}
		}()
		e.Check(0)
	}
	e := &Entry{State: Unowned}
	e.Sharers.Add(1)
	mustPanic("unowned with sharers", e)
	mustPanic("shared with none", &Entry{State: Shared})
	e2 := &Entry{State: Exclusive, Owner: 2}
	e2.Sharers.Add(3)
	mustPanic("exclusive with sharers", e2)

	// Valid states do not panic.
	(&Entry{State: Unowned}).Check(0)
	ok := &Entry{State: Shared}
	ok.Sharers.Add(0)
	ok.Check(0)
	(&Entry{State: Exclusive, Owner: 5}).Check(0)
	(&Entry{State: Busy}).Check(0)
}

func TestStateString(t *testing.T) {
	names := map[State]string{Unowned: "unowned", Shared: "shared", Exclusive: "exclusive", Busy: "busy"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state has empty name")
	}
}
