package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// nopResponseWriter is a reusable ResponseWriter: a plain header map and
// byte counter, so AllocsPerRun sees only the handler's own allocations,
// not the recorder's.
type nopResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { w.n += len(b); return len(b), nil }
func (w *nopResponseWriter) WriteHeader(code int)        { w.status = code }

func (w *nopResponseWriter) reset() {
	clear(w.h)
	w.status = 0
	w.n = 0
}

// TestHitPathZeroAlloc pins the GET cache-hit path — route, parse, key,
// lookup, headers, body write — at zero allocations per request. This is
// the property the zero-copy serving work exists for: a hot key must cost
// a hash and a map probe, never a byte of garbage. The pin covers the
// identity and the gzip-negotiated variants, and the probe hit.
func TestHitPathZeroAlloc(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	h := s.Handler()
	const path = "/v1/sim?app=counter&procs=4&rounds=2"
	if w := doGet(s, path); w.Code != http.StatusOK { // prime the cache
		t.Fatalf("prime = %d: %s", w.Code, w.Body)
	}

	cases := []struct {
		name   string
		req    *http.Request
		status int
	}{
		{"get-identity", httptest.NewRequest(http.MethodGet, path, nil), 0},
		{"probe-hit", httptest.NewRequest(http.MethodHead, path, nil), http.StatusOK},
	}
	gz := httptest.NewRequest(http.MethodGet, path, nil)
	gz.Header.Set("Accept-Encoding", "gzip")
	cases = append(cases, cases[0])
	cases[len(cases)-1].name, cases[len(cases)-1].req = "get-gzip", gz

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := &nopResponseWriter{h: make(http.Header)}
			run := func() {
				w.reset()
				h.ServeHTTP(w, tc.req)
			}
			run() // warm the header map's buckets
			if tc.status != 0 && w.status != tc.status {
				t.Fatalf("status = %d, want %d", w.status, tc.status)
			}
			if tc.req.Method == http.MethodGet && w.n == 0 {
				t.Fatal("hit wrote no body")
			}
			if n := testing.AllocsPerRun(50, run); n != 0 {
				t.Fatalf("cache-hit request allocates %.1f times, want 0", n)
			}
		})
	}
}
