// Package sim provides the discrete-event simulation engine that drives the
// DSM machine model: a virtual clock, an event queue with deterministic
// tie-breaking, and a seeded pseudo-random number source.
//
// All back-end components (caches, directories, memory modules, the mesh)
// run inside the engine's single event loop; determinism follows from the
// total order (time, sequence number) on events.
//
// The engine is the simulator's hot path: every memory reference, message
// hop, and compute delay becomes at least one event. The queue is therefore
// a concrete 4-ary min-heap over []*Event (no container/heap interface
// boxing) and fired or dead events are recycled through a free list, so a
// steady-state simulation schedules events without allocating.
package sim

// Time is the virtual clock, in processor cycles.
type Time uint64

// Event is a callback scheduled to run at a particular virtual time.
//
// The *Event returned by At/After is a live handle only until the event
// fires or is cancelled; the engine then recycles the Event for a future
// schedule. Cancelling a handle after its event has run is a no-op, but a
// handle must not be retained and cancelled after later At/After calls may
// have reused it.
//
// An event carries either a plain callback (At/After) or a
// (handler, payload) pair (AtArg/AfterArg). The latter lets callers with a
// long-lived handler — a controller's receive method — schedule per-message
// deliveries without allocating a closure per message.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
	eng   *Engine
	dead  bool
	idx   int32 // position in the heap; -1 when not queued
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead || e.idx < 0 {
		return
	}
	e.dead = true
	e.eng.live--
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now      Time
	seq      uint64
	queue    []*Event // 4-ary min-heap ordered by (at, seq)
	live     int      // scheduled events that have not been cancelled
	executed uint64   // events fired since construction
	pool     []*Event // free list of recycled events
	// Stopped is set by Stop and terminates Run at the next event boundary.
	stopped bool
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// schedule enqueues a recycled or fresh event at absolute time t.
// Scheduling in the past (t less than Now) runs the event at the current
// time, preserving issue order.
func (e *Engine) schedule(t Time) *Event {
	if t < e.now {
		t = e.now
	}
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		ev.dead = false
	} else {
		ev = &Event{eng: e}
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	e.live++
	e.push(ev)
	return ev
}

// At schedules fn to run at absolute time t.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.schedule(t)
	ev.fn = fn
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// AtArg schedules fn(arg) to run at absolute time t. Unlike At, the callback
// and its payload travel separately, so a preallocated handler (a method
// value created once) can be scheduled per message without building a new
// closure each time; when arg is a pointer, the call allocates nothing.
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	ev := e.schedule(t)
	ev.argFn = fn
	ev.arg = arg
	return ev
}

// AfterArg schedules fn(arg) to run d cycles from now.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) *Event {
	return e.AtArg(e.now+d, fn, arg)
}

// Pending reports the number of live scheduled events in O(1).
func (e *Engine) Pending() int { return e.live }

// EventsExecuted reports the total number of events fired since the engine
// was constructed (cancelled events are not counted).
func (e *Engine) EventsExecuted() uint64 { return e.executed }

// Stop makes Run return after the event currently executing (if any).
func (e *Engine) Stop() { e.stopped = true }

// recycle returns a popped event to the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil // release the closure
	ev.argFn = nil
	ev.arg = nil
	ev.dead = true
	e.pool = append(e.pool, ev)
}

// Step executes the single earliest pending event, advancing the clock to its
// time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.live--
		e.executed++
		e.now = ev.at
		fn := ev.fn
		argFn := ev.argFn
		arg := ev.arg
		e.recycle(ev)
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or the clock
// passes limit (limit zero means no limit). It returns the number of events
// executed.
func (e *Engine) Run(limit Time) uint64 {
	var n uint64
	e.stopped = false
	for !e.stopped {
		if limit != 0 {
			// Peek for the limit check, discarding dead events at the top.
			for len(e.queue) > 0 && e.queue[0].dead {
				e.recycle(e.pop())
			}
			if len(e.queue) == 0 || e.queue[0].at > limit {
				break
			}
		}
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// ------------------------------------------------------------- 4-ary heap --

// The queue is a 4-ary min-heap: children of node i are 4i+1 .. 4i+4. The
// wider fan-out roughly halves the tree depth relative to a binary heap,
// trading a few extra comparisons per level for fewer cache-missing levels —
// a win for the short-lived, bursty queues the machine model produces.

// eventLess orders events by (time, sequence); the sequence tie-break makes
// same-cycle events run in scheduling order.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting it up from the bottom.
func (e *Engine) push(ev *Event) {
	e.queue = append(e.queue, ev)
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := q[parent]
		if !eventLess(ev, p) {
			break
		}
		q[i] = p
		p.idx = int32(i)
		i = parent
	}
	q[i] = ev
	ev.idx = int32(i)
}

// pop removes and returns the minimum event.
func (e *Engine) pop() *Event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(last)
	}
	top.idx = -1
	return top
}

// siftDown places ev (conceptually at the root) at its final position.
func (e *Engine) siftDown(ev *Event) {
	q := e.queue
	n := len(q)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if eventLess(q[j], q[min]) {
				min = j
			}
		}
		if !eventLess(q[min], ev) {
			break
		}
		q[i] = q[min]
		q[i].idx = int32(i)
		i = min
	}
	q[i] = ev
	ev.idx = int32(i)
}
