package serve

import (
	"bytes"
	"encoding/json"

	"dsm/internal/exper"
	"dsm/internal/report"
)

// Outcome is the service's response body: the canonical spec that was run,
// its content address, the workload's headline numbers, and the full
// measurement report. Field order is fixed by declaration order and every
// nested encoder is byte-stable, so encoding a given outcome twice yields
// identical bytes — the property behind the cache-hit determinism
// guarantee.
type Outcome struct {
	Spec    Spec   `json:"spec"`
	Key     string `json:"key"`
	Elapsed uint64 `json:"elapsed_cycles"`

	// Synthetic workloads: counter updates and the figures 3-5 y-axis.
	Updates   uint64  `json:"updates,omitempty"`
	AvgCycles float64 `json:"avg_cycles,omitempty"`

	// Real applications: completed work items (wires routed, columns
	// factored, reachable pairs).
	Work uint64 `json:"work,omitempty"`

	Report *report.Report `json:"report"`
}

// Encode renders the outcome as its canonical JSON bytes (one object plus
// a trailing newline, matching report.WriteJSON framing).
func (o *Outcome) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(o); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Run executes one canonical spec as an exper point on a pooled machine
// and returns its outcome. The simulation is deterministic: the same
// canonical spec always produces the same outcome, on a fresh machine or a
// recycled one (machine.Reset replays a fresh machine cycle for cycle), so
// Run is safe to memoize by spec key.
//
// The spec must already be normalized; Run panics on enum values
// Normalize would have rejected. Worker goroutines that run many specs
// should hold an exper.MachineSlot and call RunOn instead.
func Run(sp Spec) *Outcome {
	return outcome(sp, sp.Point().Run(true))
}

// RunOn executes one canonical spec on the slot's resident machine,
// resetting or rebuilding it to the spec's geometry. The outcome is
// byte-identical to Run's — determinism is per run, not per machine — but
// the shared machine pool is never touched, which is what keeps the serve
// worker pool contention-free across cores.
func RunOn(sp Spec, slot *exper.MachineSlot) *Outcome {
	return outcome(sp, sp.Point().RunSlot(slot, true))
}

func outcome(sp Spec, res exper.Result) *Outcome {
	return &Outcome{
		Spec:      sp,
		Key:       sp.Key(),
		Elapsed:   res.Elapsed,
		Updates:   res.Updates,
		AvgCycles: res.AvgCycles,
		Work:      res.Work,
		Report:    res.Report,
	}
}
