// Command benchjson runs the host-time benchmark family (the same bodies
// behind `go test -bench BenchmarkHost`) and writes the results as JSON, so
// the repository tracks its host-performance trajectory PR over PR:
//
//	go run ./cmd/benchjson -o BENCH_PR1.json
//
// Reported per benchmark: ns/op, B/op, allocs/op, and any custom metrics
// the body emits (ns/event, events/sec). The header records the host shape
// (cores, GOMAXPROCS, Go version) so baselines from different machines are
// not compared naively.
//
// Compare two recorded baselines without running anything:
//
//	go run ./cmd/benchjson -compare BENCH_PR1.json BENCH_PR2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"dsm/internal/hostbench"
)

type result struct {
	Name        string             `json:"name"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Date       string                   `json:"date"`
	GoVersion  string                   `json:"go_version"`
	NumCPU     int                      `json:"num_cpu"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Benchmarks []result                 `json:"benchmarks"`
	Scaling    []hostbench.ScalingPoint `json:"scaling,omitempty"`
	Fleet      []hostbench.FleetPoint   `json:"fleet,omitempty"`
	Socket     []hostbench.SocketPoint  `json:"socket,omitempty"`
	Structs    []hostbench.StructPoint  `json:"structs,omitempty"`
}

// loadReport reads a JSON baseline previously written by this command.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// delta formats "old -> new (+x.x%)" for one metric, or just the new value
// when the benchmark is absent from the old baseline.
func delta(old, new float64, haveOld bool, format string) string {
	if !haveOld {
		return fmt.Sprintf(format, new)
	}
	pct := "n/a"
	if old != 0 {
		pct = fmt.Sprintf("%+.1f%%", (new-old)/old*100)
	}
	return fmt.Sprintf(format+" -> "+format+" (%s)", old, new, pct)
}

// gatedBenches are the benchmarks -compare treats as a regression gate: a
// >20% ns/op increase fails the comparison. They measure the simulator's
// own hot loops, which are stable run to run; the serving and sweep
// numbers are load- and host-sensitive, so those stay warn-only.
var gatedBenches = map[string]bool{"HostEngine": true, "HostMachine": true}

// gateThreshold is the fractional ns/op increase a gated benchmark may
// show before -compare fails.
const gateThreshold = 0.20

// compare prints a per-benchmark table of ns/op, B/op, and allocs/op deltas
// between two recorded baselines, and errors when a gated benchmark's
// ns/op regressed past gateThreshold. Benchmarks present in only one file
// are listed as added or removed.
func compare(oldPath, newPath string) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]result, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Printf("old: %s (%s, %d cpu, gomaxprocs %d)\n", oldPath, oldRep.Date, oldRep.NumCPU, oldRep.GOMAXPROCS)
	fmt.Printf("new: %s (%s, %d cpu, gomaxprocs %d)\n", newPath, newRep.Date, newRep.NumCPU, newRep.GOMAXPROCS)
	if oldRep.NumCPU != newRep.NumCPU {
		fmt.Println("warning: host CPU count differs; time deltas are not comparable")
	}
	if oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Println("warning: GOMAXPROCS differs; HostSweep par=max widths differ, so " +
			"sweep speedup deltas reflect the width change, not the code")
	}
	var gateFailures []string
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		delete(oldBy, nb.Name)
		fmt.Printf("\n%s\n", nb.Name)
		fmt.Printf("  ns/op:     %s\n", delta(ob.NsPerOp, nb.NsPerOp, ok, "%.1f"))
		fmt.Printf("  B/op:      %s\n", delta(float64(ob.BytesPerOp), float64(nb.BytesPerOp), ok, "%.0f"))
		fmt.Printf("  allocs/op: %s\n", delta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp), ok, "%.0f"))
		if ok && ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+gateThreshold) {
			msg := fmt.Sprintf("%s ns/op regressed %.1f%% (%.1f -> %.1f)",
				nb.Name, (nb.NsPerOp-ob.NsPerOp)/ob.NsPerOp*100, ob.NsPerOp, nb.NsPerOp)
			if gatedBenches[nb.Name] {
				fmt.Printf("  GATE FAIL: %s\n", msg)
				gateFailures = append(gateFailures, msg)
			} else {
				fmt.Printf("  warning: %s (ungated)\n", msg)
			}
		}
	}
	for name := range oldBy {
		fmt.Printf("\n%s: removed (only in %s)\n", name, oldPath)
	}
	compareScaling(oldRep, newRep)
	compareFleet(oldRep, newRep)
	compareSocket(oldRep, newRep)
	compareStructs(oldRep, newRep)
	if len(gateFailures) > 0 {
		return fmt.Errorf("%d gated regression(s): %s", len(gateFailures), strings.Join(gateFailures, "; "))
	}
	return nil
}

// compareSocket prints the loopback-TCP curve delta: per mode, real-socket
// points/sec, p99, and the connection-reuse profile. Baselines recorded
// before the socket curve simply have no socket section.
func compareSocket(oldRep, newRep *report) {
	if len(newRep.Socket) == 0 && len(oldRep.Socket) == 0 {
		return
	}
	key := func(p hostbench.SocketPoint) string {
		return fmt.Sprintf("%s/batch=%d", p.Mode, p.Batch)
	}
	oldBy := make(map[string]hostbench.SocketPoint, len(oldRep.Socket))
	for _, p := range oldRep.Socket {
		oldBy[key(p)] = p
	}
	fmt.Printf("\nsocket (loopback TCP, per mode)\n")
	for _, np := range newRep.Socket {
		op, ok := oldBy[key(np)]
		delete(oldBy, key(np))
		fmt.Printf("  %s (clients=%d batch=%d dup=%.2f)\n", np.Mode, np.Clients, np.Batch, np.Dup)
		fmt.Printf("    pts/s:       %s\n", delta(op.PtsPerSec, np.PtsPerSec, ok, "%.0f"))
		fmt.Printf("    p99 us:      %s\n", delta(float64(op.P99US), float64(np.P99US), ok, "%.0f"))
		fmt.Printf("    conns new:   %s\n", delta(float64(op.ConnsNew), float64(np.ConnsNew), ok, "%.0f"))
		fmt.Printf("    conns reuse: %s\n", delta(float64(op.ConnsReused), float64(np.ConnsReused), ok, "%.0f"))
	}
	for mode := range oldBy {
		fmt.Printf("  %s: removed\n", mode)
	}
}

// compareStructs prints the lock-free structure curve delta: per
// (app, policy, prim) cell, host ops/sec plus the deterministic per-run
// operation and retry counts — a retry-count change means the structure's
// protocol behavior changed, not just the host speed. Baselines recorded
// before the workload library simply have no structs section.
func compareStructs(oldRep, newRep *report) {
	if len(newRep.Structs) == 0 && len(oldRep.Structs) == 0 {
		return
	}
	key := func(p hostbench.StructPoint) string {
		return fmt.Sprintf("%s/%s/%s", p.App, p.Policy, p.Prim)
	}
	oldBy := make(map[string]hostbench.StructPoint, len(oldRep.Structs))
	for _, p := range oldRep.Structs {
		oldBy[key(p)] = p
	}
	fmt.Printf("\nstructs (lock-free workloads, per app x policy x prim)\n")
	for _, np := range newRep.Structs {
		op, ok := oldBy[key(np)]
		delete(oldBy, key(np))
		fmt.Printf("  %s\n", key(np))
		fmt.Printf("    ops/s:   %s\n", delta(op.OpsPerSec, np.OpsPerSec, ok, "%.0f"))
		fmt.Printf("    ops:     %s\n", delta(float64(op.Ops), float64(np.Ops), ok, "%.0f"))
		fmt.Printf("    retries: %s\n", delta(float64(op.Retries), float64(np.Retries), ok, "%.0f"))
	}
	for k := range oldBy {
		fmt.Printf("  %s: removed\n", k)
	}
}

// compareScaling prints the multi-core ladder delta: per GOMAXPROCS rung,
// serving points/sec, per-point p99, and plan-sweep points/sec. Baselines
// recorded before the ladder existed simply have no scaling section.
func compareScaling(oldRep, newRep *report) {
	if len(newRep.Scaling) == 0 && len(oldRep.Scaling) == 0 {
		return
	}
	oldBy := make(map[int]hostbench.ScalingPoint, len(oldRep.Scaling))
	for _, p := range oldRep.Scaling {
		oldBy[p.Procs] = p
	}
	fmt.Printf("\nscaling (per GOMAXPROCS rung)\n")
	for _, np := range newRep.Scaling {
		op, ok := oldBy[np.Procs]
		delete(oldBy, np.Procs)
		fmt.Printf("  procs=%d\n", np.Procs)
		fmt.Printf("    serve pts/s: %s\n", delta(op.PtsPerSec, np.PtsPerSec, ok, "%.0f"))
		fmt.Printf("    p99 us:      %s\n", delta(float64(op.P99US), float64(np.P99US), ok, "%.0f"))
		fmt.Printf("    plan pts/s:  %s\n", delta(op.PlanPtsPerSec, np.PlanPtsPerSec, ok, "%.0f"))
	}
	for procs := range oldBy {
		fmt.Printf("  procs=%d: removed\n", procs)
	}
}

// compareFleet prints the fleet curve delta: per (workload, backends)
// cell, router-path points/sec and the fleet-wide hit ratio. Baselines
// recorded before fleet mode simply have no fleet section.
func compareFleet(oldRep, newRep *report) {
	if len(newRep.Fleet) == 0 && len(oldRep.Fleet) == 0 {
		return
	}
	key := func(p hostbench.FleetPoint) string {
		return fmt.Sprintf("%s/backends=%d", p.Workload, p.Backends)
	}
	oldBy := make(map[string]hostbench.FleetPoint, len(oldRep.Fleet))
	for _, p := range oldRep.Fleet {
		oldBy[key(p)] = p
	}
	fmt.Printf("\nfleet (router path, per workload x backends)\n")
	for _, np := range newRep.Fleet {
		op, ok := oldBy[key(np)]
		delete(oldBy, key(np))
		fmt.Printf("  %s\n", key(np))
		fmt.Printf("    pts/s:     %s\n", delta(op.PtsPerSec, np.PtsPerSec, ok, "%.0f"))
		fmt.Printf("    p99 us:    %s\n", delta(float64(op.P99US), float64(np.P99US), ok, "%.0f"))
		fmt.Printf("    hit ratio: %s\n", delta(op.HitRatio, np.HitRatio, ok, "%.3f"))
	}
	for k := range oldBy {
		fmt.Printf("  %s: removed\n", k)
	}
}

// hostCPUs returns the machine's processor count. runtime.NumCPU reports
// the CPUs usable by this process — clipped by affinity masks and cgroup
// limits — which under a constrained runner records a shape the host does
// not have. Count the processors the kernel reports instead, falling back
// to runtime.NumCPU where /proc is unavailable.
func hostCPUs() int {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.NumCPU()
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "processor") {
			n++
		}
	}
	if n == 0 {
		return runtime.NumCPU()
	}
	return n
}

func main() {
	out := flag.String("o", "BENCH_PR1.json", "output file (- for stdout)")
	cmp := flag.Bool("compare", false, "compare two baseline files: -compare old.json new.json")
	scalingPts := flag.Int("scaling-points", 2000, "simulation points per scaling-ladder rung (0 skips the ladder)")
	fleetPts := flag.Int("fleet-points", 800, "router-path requests per fleet-curve cell (0 skips the fleet curve)")
	socketPts := flag.Int("socket-points", 20000, "simulation points per loopback-TCP mode (0 skips the socket curve)")
	structRuns := flag.Int("struct-runs", 40, "runs per lock-free structure cell (0 skips the structure curve)")
	flag.Parse()

	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	benches := []struct {
		name string
		body func(*testing.B)
	}{
		{"HostEngine", hostbench.Engine},
		{"HostMachine", hostbench.MachineRun},
		{"HostSweep/par=1", hostbench.Sweep(1)},
		// One worker per core; the actual width is the gomaxprocs header
		// field. The par=1 / par=max ratio is this host's sweep speedup.
		{"HostSweep/par=max", hostbench.Sweep(0)},
		{"MeshTransit/hops=1", hostbench.MeshTransit(1, false)},
		{"MeshTransit/hops=14", hostbench.MeshTransit(14, false)},
		{"MeshTransit/routers/hops=14", hostbench.MeshTransit(14, true)},
	}

	rep := report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     hostCPUs(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, bench := range benches {
		fmt.Fprintf(os.Stderr, "running %s...\n", bench.name)
		r := testing.Benchmark(bench.body)
		rep.Benchmarks = append(rep.Benchmarks, result{
			Name:        bench.name,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Metrics:     r.Extra,
		})
	}
	if *scalingPts > 0 {
		ladder := hostbench.Ladder(rep.NumCPU)
		fmt.Fprintf(os.Stderr, "running scaling ladder %v (%d points per rung)...\n", ladder, *scalingPts)
		rep.Scaling = hostbench.MeasureScaling(ladder, *scalingPts)
	}
	if *fleetPts > 0 {
		fmt.Fprintf(os.Stderr, "running fleet curve (%d points per cell)...\n", *fleetPts)
		rep.Fleet = hostbench.MeasureFleet(*fleetPts)
	}
	if *socketPts > 0 {
		fmt.Fprintf(os.Stderr, "running socket curve (%d points per mode)...\n", *socketPts)
		rep.Socket = hostbench.MeasureSocket(*socketPts)
	}
	if *structRuns > 0 {
		fmt.Fprintf(os.Stderr, "running structure curve (%d runs per cell)...\n", *structRuns)
		rep.Structs = hostbench.MeasureStructures(*structRuns)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
