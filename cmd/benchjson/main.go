// Command benchjson runs the host-time benchmark family (the same bodies
// behind `go test -bench BenchmarkHost`) and writes the results as JSON, so
// the repository tracks its host-performance trajectory PR over PR:
//
//	go run ./cmd/benchjson -o BENCH_PR1.json
//
// Reported per benchmark: ns/op, B/op, allocs/op, and any custom metrics
// the body emits (ns/event, events/sec). The header records the host shape
// (cores, GOMAXPROCS, Go version) so baselines from different machines are
// not compared naively.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dsm/internal/hostbench"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_PR1.json", "output file (- for stdout)")
	flag.Parse()

	benches := []struct {
		name string
		body func(*testing.B)
	}{
		{"HostEngine", hostbench.Engine},
		{"HostMachine", hostbench.MachineRun},
		{"HostSweep/par=1", hostbench.Sweep(1)},
		// One worker per core; the actual width is the gomaxprocs header
		// field. The par=1 / par=max ratio is this host's sweep speedup.
		{"HostSweep/par=max", hostbench.Sweep(0)},
	}

	rep := report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, bench := range benches {
		fmt.Fprintf(os.Stderr, "running %s...\n", bench.name)
		r := testing.Benchmark(bench.body)
		rep.Benchmarks = append(rep.Benchmarks, result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Metrics:     r.Extra,
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
