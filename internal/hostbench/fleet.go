package hostbench

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsm/internal/fleet"
	"dsm/internal/serve"
)

// FleetPoint is one measurement on the fleet scaling curve: the
// router-path throughput the host sustains with Backends in-process
// dsmserve instances (one simulation worker each, so backend count is the
// fleet's real capacity) behind one fleet.Router, under a named workload:
//
//   - dup09: dsmload's profile of record — 90% draws from a warmed 16-spec
//     working set, 10% never-seen specs.
//   - zipf: every draw from the working set, Zipf-skewed (s = 1.2, rank 0
//     hottest), with the router's hot-key threshold lowered so replication
//     engages mid-run.
//   - miss: every request a never-seen spec — the pure capacity curve,
//     where doubling backends should raise throughput.
//
// HitRatio, PeerFills, and Replications come from the router's own
// counters, so the point records what the fleet machinery actually did,
// not just how fast it went.
type FleetPoint struct {
	Backends     int     `json:"backends"`
	Workload     string  `json:"workload"`
	PtsPerSec    float64 `json:"pts_per_sec"`
	P99US        uint64  `json:"p99_us"`
	HitRatio     float64 `json:"hit_ratio"`
	PeerFills    uint64  `json:"peer_fills"`
	Replications uint64  `json:"replications"`
}

// fleetWorkloads orders the measured workloads; fleetCounts the backend
// ladder. 4 backends on a small host measures oversubscription, the same
// way the GOMAXPROCS ladder extends past the core count.
var (
	fleetWorkloads = []string{"dup09", "zipf", "miss"}
	fleetCounts    = []int{1, 2, 4}
)

// handlerTransport serves upstream requests by invoking an in-process
// handler for the request's host — the fleet benchmark's loopback: the
// full router code path runs (URL routing, header relay, body copies)
// without sockets, so the curve isolates fleet mechanics from kernel
// networking.
type handlerTransport map[string]http.Handler

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("hostbench: no in-process backend %q", req.URL.Host)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	resp := w.Result()
	resp.Request = req
	return resp, nil
}

// MeasureFleet walks backends x workload, measuring points router-path
// requests per cell. Unique-spec seeds advance monotonically across cells
// and every cell gets a fresh fleet, so no cell hits a result a previous
// one cached.
func MeasureFleet(points int) []FleetPoint {
	out := make([]FleetPoint, 0, len(fleetCounts)*len(fleetWorkloads))
	seed := uint64(1) << 48 // distinct from the scaling ladder's seed space
	for _, wl := range fleetWorkloads {
		for _, nb := range fleetCounts {
			pt, next := measureFleetCell(nb, points, wl, seed)
			seed = next
			out = append(out, pt)
		}
	}
	return out
}

// measureFleetCell builds nb single-worker backends behind a router and
// drives 2*nb closed-loop clients through it.
func measureFleetCell(nb, points int, workload string, seed0 uint64) (FleetPoint, uint64) {
	clients := 2 * nb
	hosts := make([]string, nb)
	transport := make(handlerTransport, nb)
	backends := make([]*serve.Server, nb)
	for i := 0; i < nb; i++ {
		backends[i] = serve.New(serve.Config{Workers: 1, Queue: 2*clients + 16})
		host := fmt.Sprintf("b%d.fleet", i)
		hosts[i] = "http://" + host
		transport[host] = backends[i].Handler()
	}
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	cfg := fleet.Config{Backends: hosts, Transport: transport}
	if workload == "zipf" {
		cfg.HotThreshold = 32 // promote mid-run so the curve includes replication
	}
	rt, err := fleet.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("hostbench: fleet.New: %v", err))
	}
	h := rt.Handler()
	post := func(body string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/sim", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code
	}

	set := scalingWorkingSet()
	if workload == "dup09" {
		for _, spec := range set { // warm: every working-set spec simulates once
			if code := post(spec); code != http.StatusOK {
				panic(fmt.Sprintf("hostbench: fleet warmup answered %d", code))
			}
		}
	}

	var seed, failed atomic.Uint64
	seed.Store(seed0 - 1) // Add(1) yields seed0 first
	var handout atomic.Int64
	fresh := func() string {
		return fmt.Sprintf(`{"app":"counter","procs":8,"c":8,"rounds":3,"seed":%d}`, seed.Add(1))
	}
	lat := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			var zipf *rand.Zipf
			if workload == "zipf" {
				zipf = rand.NewZipf(rng, 1.2, 1, uint64(len(set)-1))
			}
			draw := func() string {
				switch workload {
				case "dup09":
					if rng.Float64() < scalingDup {
						return set[rng.Intn(len(set))]
					}
					return fresh()
				case "zipf":
					return set[zipf.Uint64()]
				default: // miss
					return fresh()
				}
			}
			lat[c] = make([]time.Duration, 0, points/clients+1)
			for handout.Add(1) <= int64(points) {
				t0 := time.Now()
				code := post(draw())
				lat[c] = append(lat[c], time.Since(t0))
				if code != http.StatusOK {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		panic(fmt.Sprintf("hostbench: fleet cell %s/%d dropped %d of %d points", workload, nb, n, points))
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	m := rt.Metrics()
	pt := FleetPoint{
		Backends:     nb,
		Workload:     workload,
		PtsPerSec:    float64(points) / elapsed.Seconds(),
		P99US:        uint64(all[len(all)*99/100].Microseconds()),
		PeerFills:    m.PeerFills,
		Replications: m.Replications,
	}
	if resolved := m.Hits + m.Misses; resolved > 0 {
		pt.HitRatio = float64(m.Hits) / float64(resolved)
	}
	return pt, seed.Load() + 1
}
