// Package sim provides the discrete-event simulation engine that drives the
// DSM machine model: a virtual clock, an event queue with deterministic
// tie-breaking, and a seeded pseudo-random number source.
//
// All back-end components (caches, directories, memory modules, the mesh)
// run inside the engine's single event loop; determinism follows from the
// total order (time, sequence number) on events.
//
// The engine is the simulator's hot path: every memory reference, message
// delivery, and compute delay becomes at least one event. Scheduling is a
// two-level structure: a timing wheel of one-cycle buckets covers the near
// future (where nearly every delay in the machine model lands — hop, flit,
// memory, and retry delays are all tens of cycles) at amortized O(1) per
// event, and a concrete 4-ary min-heap holds the rare events beyond the
// wheel's horizon. Buckets are intrusive linked lists threaded through the
// events themselves, and fired or dead events are recycled through a free
// list, so a steady-state simulation schedules events without allocating.
package sim

// Time is the virtual clock, in processor cycles.
type Time uint64

// The timing wheel spans wheelSpan cycles of one-cycle buckets. An event
// scheduled less than wheelSpan cycles ahead is appended to the bucket
// (at & wheelMask) in O(1); anything farther out goes to the overflow heap.
// Because insertion is gated on the delta, a bucket holds live events of at
// most one distinct timestamp at any moment, and appending to the list tail
// preserves sequence order, so draining a bucket front to back fires events
// in exactly the heap's (time, seq) order.
const (
	wheelBits = 10
	wheelSpan = 1 << wheelBits
	wheelMask = wheelSpan - 1
)

// Event queue position markers (Event.idx).
const (
	idxNone  int32 = -1 // not queued
	idxWheel int32 = -2 // in a wheel bucket
)

// Event is a callback scheduled to run at a particular virtual time.
//
// The *Event returned by At/After is a live handle only until the event
// fires or is cancelled; the engine then recycles the Event for a future
// schedule. Cancelling a handle after its event has run is a no-op, but a
// handle must not be retained and cancelled after later At/After calls may
// have reused it.
//
// An event carries either a plain callback (At/After) or a
// (handler, payload) pair (AtArg/AfterArg). The latter lets callers with a
// long-lived handler — a controller's receive method — schedule per-message
// deliveries without allocating a closure per message.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
	next  *Event // wheel bucket chain, or free-list chain
	eng   *Engine
	dead  bool
	idx   int32 // heap position, or idxWheel / idxNone
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran (or was already cancelled) is a no-op. Cancellation is lazy:
// the event stays in its bucket or heap slot and is discarded when the
// scheduler reaches it.
func (e *Event) Cancel() {
	if e == nil || e.dead || e.idx == idxNone {
		return
	}
	e.dead = true
	e.eng.live--
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now      Time
	seq      uint64
	live     int    // scheduled events that have not been cancelled
	executed uint64 // events fired since construction (or the last Reset)
	free     *Event // recycled events, chained through Event.next

	// Near-future events. Bucket b holds an intrusive FIFO list
	// (head[b]..tail[b], chained through Event.next) of the events
	// scheduled for some time t with t & wheelMask == b and t within
	// wheelSpan cycles of now. wheelTime is the earliest time whose bucket
	// may still hold live entries (the scan cursor). wheelCount counts
	// events physically present in buckets, including cancelled ones.
	// bucketTime[b] records the timestamp bucket b was last filled for:
	// when the clock jumps over a bucket whose events were all cancelled,
	// the leftovers are reclaimed by the next append that finds a stale
	// stamp (see schedule).
	head       []*Event
	tail       []*Event
	bucketTime []Time
	wheelTime  Time
	wheelCount int

	// Far-future events (at - now >= wheelSpan at scheduling time): a 4-ary
	// min-heap ordered by (at, seq).
	far []*Event

	// forceHeap routes every event through the far heap, bypassing the
	// wheel. The scheduler-equivalence property test uses it to run the
	// heap-only scheduler against the wheel on identical workloads.
	forceHeap bool

	// Stopped is set by Stop and terminates Run at the next event boundary.
	stopped bool
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		head:       make([]*Event, wheelSpan),
		tail:       make([]*Event, wheelSpan),
		bucketTime: make([]Time, wheelSpan),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Reset restores the engine to its post-NewEngine state — clock at zero, no
// pending events, counters cleared — while keeping the event free list, so
// a reused engine schedules without allocating.
func (e *Engine) Reset() {
	if e.wheelCount > 0 {
		for b := range e.head {
			for ev := e.head[b]; ev != nil; {
				next := ev.next
				e.recycle(ev)
				ev = next
			}
			e.head[b], e.tail[b] = nil, nil
		}
	}
	for _, ev := range e.far {
		ev.idx = idxNone
		e.recycle(ev)
	}
	e.far = e.far[:0]
	e.now, e.seq, e.live, e.executed = 0, 0, 0, 0
	e.wheelTime, e.wheelCount = 0, 0
	e.stopped = false
}

// schedule enqueues a recycled or fresh event at absolute time t.
// Scheduling in the past (t less than Now) runs the event at the current
// time, preserving issue order.
func (e *Engine) schedule(t Time) *Event {
	if t < e.now {
		t = e.now
	}
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
		ev.dead = false
	} else {
		ev = &Event{eng: e}
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	e.live++
	if t-e.now < wheelSpan && !e.forceHeap {
		b := int(t) & wheelMask
		if e.head[b] != nil && e.bucketTime[b] != t {
			// The bucket still holds events from an earlier lap of the
			// wheel. They are all cancelled — a live event would have
			// halted the cursor at its time instead of letting the clock
			// jump past — so reclaim them before appending.
			for old := e.head[b]; old != nil; {
				next := old.next
				e.wheelCount--
				e.recycle(old)
				old = next
			}
			e.head[b], e.tail[b] = nil, nil
		}
		e.bucketTime[b] = t
		ev.idx = idxWheel
		if e.tail[b] == nil {
			e.head[b] = ev
		} else {
			e.tail[b].next = ev
		}
		e.tail[b] = ev
		e.wheelCount++
		if t < e.wheelTime {
			// The event landed behind the scan cursor (the callback running
			// now scheduled closer than the previously-earliest bucket);
			// its bucket was necessarily empty, so rewinding is exact.
			e.wheelTime = t
		}
	} else {
		e.push(ev)
	}
	return ev
}

// At schedules fn to run at absolute time t.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.schedule(t)
	ev.fn = fn
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// AtArg schedules fn(arg) to run at absolute time t. Unlike At, the callback
// and its payload travel separately, so a preallocated handler (a method
// value created once) can be scheduled per message without building a new
// closure each time; when arg is a pointer, the call allocates nothing.
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	ev := e.schedule(t)
	ev.argFn = fn
	ev.arg = arg
	return ev
}

// AfterArg schedules fn(arg) to run d cycles from now.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) *Event {
	return e.AtArg(e.now+d, fn, arg)
}

// Pending reports the number of scheduled events that have neither fired nor
// been cancelled. It is a counter maintained by schedule/Cancel/Step, not a
// queue traversal, so it costs O(1) regardless of how many cancelled events
// still occupy wheel buckets or heap slots awaiting lazy removal.
func (e *Engine) Pending() int { return e.live }

// EventsExecuted reports the number of events fired since the engine was
// constructed or last Reset. Cancelled events are never counted, and the
// counter is independent of the queue data structure — it advances once per
// callback invocation in Step, whether the event came from a wheel bucket
// or the overflow heap.
func (e *Engine) EventsExecuted() uint64 { return e.executed }

// Stop makes Run return after the event currently executing (if any).
func (e *Engine) Stop() { e.stopped = true }

// recycle returns a consumed event to the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil // release the closure
	ev.argFn = nil
	ev.arg = nil
	ev.dead = true
	ev.idx = idxNone
	ev.next = e.free
	e.free = ev
}

// nextWheel returns the earliest live wheel event without removing it,
// advancing the scan cursor past empty buckets and lazily discarding
// cancelled events on the way. It returns nil when no live wheel event
// exists. The cursor only moves forward in time (or is rewound exactly by
// schedule), so scanning is amortized O(1) per event: each bucket is
// visited once per wheelSpan cycles of simulated time, and every list node
// popped here was pushed by exactly one schedule call.
func (e *Engine) nextWheel() *Event {
	for {
		if e.wheelCount == 0 {
			return nil
		}
		if e.wheelTime < e.now {
			// Buckets behind the clock hold no live events (events are
			// never scheduled in the past); fast-forward the cursor.
			// Cancelled stragglers left behind are reclaimed by schedule
			// when their bucket is refilled.
			e.wheelTime = e.now
		}
		b := int(e.wheelTime) & wheelMask
		for ev := e.head[b]; ev != nil; ev = e.head[b] {
			if !ev.dead && ev.at == e.wheelTime {
				return ev
			}
			// Cancelled, or a dead leftover from an earlier lap.
			e.popWheelHead(b)
			e.recycle(ev)
		}
		e.wheelTime++
	}
}

// popWheelHead unlinks the head event of bucket b.
func (e *Engine) popWheelHead(b int) {
	ev := e.head[b]
	e.head[b] = ev.next
	if ev.next == nil {
		e.tail[b] = nil
	}
	ev.next = nil
	e.wheelCount--
}

// nextFar returns the earliest live heap event without removing it,
// discarding cancelled events at the top.
func (e *Engine) nextFar() *Event {
	for len(e.far) > 0 {
		if !e.far[0].dead {
			return e.far[0]
		}
		e.recycle(e.pop())
	}
	return nil
}

// next returns the earliest live event across the wheel and the heap, or
// nil. Ties between the two structures resolve on sequence number, keeping
// the global (time, seq) order exact.
func (e *Engine) next() (ev *Event, fromWheel bool) {
	w := e.nextWheel()
	f := e.nextFar()
	if w == nil {
		return f, false
	}
	if f == nil || eventLess(w, f) {
		return w, true
	}
	return f, false
}

// Step executes the single earliest pending event, advancing the clock to
// its time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev, fromWheel := e.next()
	if ev == nil {
		return false
	}
	if fromWheel {
		e.popWheelHead(int(e.wheelTime) & wheelMask)
	} else {
		e.pop()
	}
	e.live--
	e.executed++
	e.now = ev.at
	fn := ev.fn
	argFn := ev.argFn
	arg := ev.arg
	e.recycle(ev)
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue drains, Stop is called, or the clock
// passes limit (limit zero means no limit). It returns the number of events
// executed.
func (e *Engine) Run(limit Time) uint64 {
	var n uint64
	e.stopped = false
	for !e.stopped {
		if limit != 0 {
			ev, _ := e.next()
			if ev == nil || ev.at > limit {
				break
			}
		}
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// ------------------------------------------------------------- 4-ary heap --

// The overflow heap is a 4-ary min-heap: children of node i are 4i+1 ..
// 4i+4. The wider fan-out roughly halves the tree depth relative to a
// binary heap, trading a few extra comparisons per level for fewer
// cache-missing levels. It only ever holds events scheduled at least
// wheelSpan cycles out (plus everything, in the property test's forced-heap
// mode), so its size stays small in the machine model.

// eventLess orders events by (time, sequence); the sequence tie-break makes
// same-cycle events run in scheduling order.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting it up from the bottom.
func (e *Engine) push(ev *Event) {
	e.far = append(e.far, ev)
	q := e.far
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := q[parent]
		if !eventLess(ev, p) {
			break
		}
		q[i] = p
		p.idx = int32(i)
		i = parent
	}
	q[i] = ev
	ev.idx = int32(i)
}

// pop removes and returns the minimum event.
func (e *Engine) pop() *Event {
	q := e.far
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.far = q[:n]
	if n > 0 {
		e.siftDown(last)
	}
	top.idx = idxNone
	return top
}

// siftDown places ev (conceptually at the root) at its final position.
func (e *Engine) siftDown(ev *Event) {
	q := e.far
	n := len(q)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if eventLess(q[j], q[min]) {
				min = j
			}
		}
		if !eventLess(q[min], ev) {
			break
		}
		q[i] = q[min]
		q[i].idx = int32(i)
		i = min
	}
	q[i] = ev
	ev.idx = int32(i)
}
