package proto

import (
	"bufio"
	"fmt"
	"io"
)

// WriteTables prints every transition table in a stable human-readable
// form: one line per rule, "guard -> action, action(operand), ...". The
// output is pinned by a golden-file test so that any protocol edit —
// intended or not — shows up as a diff.
func WriteTables(w io.Writer) error {
	b := bufio.NewWriter(w)

	fmt.Fprintln(b, "protocol transition tables")
	fmt.Fprintln(b, "==========================")

	fmt.Fprintln(b, "\ncache start (policy, op) -> rules")
	for pol := Policy(0); pol < NumPolicies; pol++ {
		for op := OpKind(0); op < NumOps; op++ {
			spec := &CacheStart[pol][op]
			fmt.Fprintf(b, "\n%s %s", pol, op)
			if spec.Prep != PrepNone {
				fmt.Fprintf(b, " [%s]", spec.Prep)
			}
			fmt.Fprintln(b, ":")
			writeRules(b, spec.Rules)
		}
	}

	fmt.Fprintln(b, "\ncache receive (message) -> rules")
	for k := MsgKind(0); k < NumMsgKinds; k++ {
		spec := &CacheRecv[k]
		if len(spec.Rules) == 0 {
			continue
		}
		fmt.Fprintf(b, "\n%s", k)
		if spec.NeedTxn {
			fmt.Fprint(b, " [txn]")
		}
		if spec.Prep != PrepNone {
			fmt.Fprintf(b, " [%s]", spec.Prep)
		}
		fmt.Fprintln(b, ":")
		writeRules(b, spec.Rules)
	}

	fmt.Fprintln(b, "\nhome request (state, message) -> rules")
	for st := HomeState(0); st < NumHomeStates; st++ {
		for k := MsgKind(0); k < NumMsgKinds; k++ {
			rules := HomeReq[st][k]
			if len(rules) == 0 {
				continue
			}
			fmt.Fprintf(b, "\n%s %s:\n", st, k)
			writeHomeRules(b, rules)
		}
	}

	fmt.Fprintln(b, "\nhome return (message) -> rules")
	for k := MsgKind(0); k < NumMsgKinds; k++ {
		rules := HomeRet[k]
		if len(rules) == 0 {
			continue
		}
		fmt.Fprintf(b, "\n%s:\n", k)
		writeHomeRules(b, rules)
	}

	return b.Flush()
}

func writeRules(b *bufio.Writer, rules []Rule) {
	for _, r := range rules {
		fmt.Fprintf(b, "  %s ->", r.Guard)
		for i, a := range r.Actions {
			if i > 0 {
				fmt.Fprint(b, ",")
			}
			fmt.Fprintf(b, " %s", actString(a))
		}
		fmt.Fprintln(b)
	}
}

func writeHomeRules(b *bufio.Writer, rules []HRule) {
	for _, r := range rules {
		fmt.Fprintf(b, "  %s ->", r.Guard)
		if r.Actions == nil {
			fmt.Fprint(b, " ignore-stale")
		}
		for i, a := range r.Actions {
			if i > 0 {
				fmt.Fprint(b, ",")
			}
			fmt.Fprintf(b, " %s", hactString(a))
		}
		fmt.Fprintln(b)
	}
}

// actString renders an action, appending the message operand for the
// actions that carry one.
func actString(a Act) string {
	if a.Do == ASendHome || a.Do == AAckRequester {
		return fmt.Sprintf("%s(%s)", a.Do, a.Msg)
	}
	return a.Do.String()
}

// hactString renders a home action, appending the forwarded-kind operand.
func hactString(a HAct) string {
	if a.Do == HRecall {
		return fmt.Sprintf("%s(%s)", a.Do, a.Msg)
	}
	return a.Do.String()
}
