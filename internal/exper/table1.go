package exper

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
)

// Table1Row is one measured row of Table 1.
type Table1Row struct {
	Case  string
	Paper int // serialized messages the paper reports
	Got   int // serialized messages measured from the simulator
}

// Table1 measures the serialized network message counts for stores under
// every coherence situation of the paper's Table 1, by constructing each
// situation directly and reading the transaction's chain length. Runs are
// fanned across GOMAXPROCS workers; use Table1Par to control the width.
func Table1() []Table1Row { return Table1Par(0) }

// Table1Par is Table1 with an explicit sweep width (see Sweep).
func Table1Par(par int) []Table1Row {
	cfg := core.DefaultConfig()
	measureStore := func(policy core.Policy, setup func(m *machine.Machine, a arch.Addr)) int {
		m := AcquireMachine(cfg)
		defer ReleaseMachine(m)
		a := m.AllocSyncAt(9, policy) // remote home for nodes 0-2
		if setup != nil {
			setup(m, a)
		}
		chain := -1
		progs := make([]func(*machine.Proc), m.Procs())
		progs[0] = func(p *machine.Proc) {
			chain = p.Do(core.Request{Op: core.OpStore, Addr: a, Val: 1}).Chain
		}
		m.RunEach(progs)
		return chain
	}
	runOn := func(m *machine.Machine, node int, f func(p *machine.Proc)) {
		progs := make([]func(*machine.Proc), m.Procs())
		progs[node] = f
		m.RunEach(progs)
	}

	cases := []struct {
		name   string
		paper  int
		policy core.Policy
		setup  func(m *machine.Machine, a arch.Addr)
	}{
		{"UNC", 2, core.PolicyUNC, nil},
		{"INV to cached exclusive", 0, core.PolicyINV,
			func(m *machine.Machine, a arch.Addr) {
				runOn(m, 0, func(p *machine.Proc) { p.Store(a, 7) })
			}},
		{"INV to remote exclusive", 4, core.PolicyINV,
			func(m *machine.Machine, a arch.Addr) {
				runOn(m, 1, func(p *machine.Proc) { p.Store(a, 7) })
			}},
		{"INV to remote shared", 3, core.PolicyINV,
			func(m *machine.Machine, a arch.Addr) {
				runOn(m, 1, func(p *machine.Proc) { p.Load(a) })
				runOn(m, 2, func(p *machine.Proc) { p.Load(a) })
			}},
		{"INV to uncached", 2, core.PolicyINV, nil},
		{"UPD to cached", 3, core.PolicyUPD,
			func(m *machine.Machine, a arch.Addr) {
				runOn(m, 1, func(p *machine.Proc) { p.Load(a) })
			}},
		{"UPD to uncached", 2, core.PolicyUPD, nil},
	}

	rows := make([]Table1Row, len(cases))
	Sweep(len(cases), par, func(i int) {
		c := cases[i]
		rows[i] = Table1Row{Case: c.name, Paper: c.paper, Got: measureStore(c.policy, c.setup)}
	})
	return rows
}
