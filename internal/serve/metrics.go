package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free log-scale latency histogram: bucket i counts
// requests whose latency in microseconds has bit length i, so buckets
// cover [2^(i-1), 2^i) microseconds. Percentiles read as the upper bound
// of the bucket where the cumulative count crosses the quantile — a <=2x
// estimate, which is enough to watch a serving benchmark move.
type latencyHist struct {
	buckets [48]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	h.buckets[bits.Len64(us)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// quantile returns the approximate q-quantile latency in microseconds.
func (h *latencyHist) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > target {
			return 1 << i // bucket upper bound
		}
	}
	return 1 << (len(h.buckets) - 1)
}

func (h *latencyHist) mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumUS.Load()) / float64(n)
}

// LatencyBucket is one non-empty bucket of the exported latency histogram:
// Count requests finished in at most LeUS microseconds (and more than half
// that — the buckets are powers of two).
type LatencyBucket struct {
	LeUS  uint64 `json:"le_us"`
	Count uint64 `json:"count"`
}

// bucketsSnapshot exports the non-empty buckets in increasing bound order.
func (h *latencyHist) bucketsSnapshot() []LatencyBucket {
	var out []LatencyBucket
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, LatencyBucket{LeUS: 1 << i, Count: n})
		}
	}
	return out
}

// metrics holds the service counters behind /metrics. All fields are
// atomics; Snapshot assembles a consistent-enough view (counters are
// monotonic, exactness across fields is not required).
type metrics struct {
	requests   atomic.Uint64 // /v1/sim requests accepted for processing
	badRequest atomic.Uint64 // invalid specs rejected with 400
	hits       atomic.Uint64 // served from the result cache
	misses     atomic.Uint64 // required a new simulation (single-flight leaders)
	coalesced  atomic.Uint64 // joined an in-flight identical simulation
	rejected   atomic.Uint64 // bounced with 429 (queue full)
	timeouts   atomic.Uint64 // gave up waiting (per-request deadline)
	errors     atomic.Uint64 // internal failures answered with 500
	runs       atomic.Uint64 // simulations actually executed
	probes     atomic.Uint64 // cache probes (HEAD or ?probe=1; never simulate)
	probeHits  atomic.Uint64 // probes answered from the result cache
	fills      atomic.Uint64 // results inserted via /v1/fill (peer fill / replication)

	sweeps         atomic.Uint64 // /v1/sweep plans accepted for processing
	sweepPoints    atomic.Uint64 // points across all accepted plans
	sweepHits      atomic.Uint64 // sweep points served from the result cache
	sweepMisses    atomic.Uint64 // sweep points that dispatched a new simulation
	sweepCoalesced atomic.Uint64 // sweep points merged into an in-flight run
	sweepErrors    atomic.Uint64 // sweep points answered with an error line

	latency latencyHist
}

// Snapshot is the exported /metrics payload. Field order is the JSON
// field order.
type Snapshot struct {
	Requests    uint64 `json:"requests"`
	BadRequests uint64 `json:"bad_requests"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	Rejected    uint64 `json:"rejected"`
	Timeouts    uint64 `json:"timeouts"`
	Errors      uint64 `json:"errors"`
	Runs        uint64 `json:"runs"`

	// Fleet-facing counters: cache probes (HEAD /v1/sim or ?probe=1) answer
	// hit/miss without simulating, and fills are results inserted by a
	// router via /v1/fill (peer fill and hot-key replication).
	Probes    uint64 `json:"probes"`
	ProbeHits uint64 `json:"probe_hits"`
	Fills     uint64 `json:"fills"`

	Sweeps         uint64 `json:"sweeps"`
	SweepPoints    uint64 `json:"sweep_points"`
	SweepHits      uint64 `json:"sweep_hits"`
	SweepMisses    uint64 `json:"sweep_misses"`
	SweepCoalesced uint64 `json:"sweep_coalesced"`
	SweepErrors    uint64 `json:"sweep_errors"`

	// FlightMerges is the total single-flight merge count: requests (single
	// or sweep points) that joined an identical in-flight simulation instead
	// of running their own.
	FlightMerges uint64 `json:"flight_merges"`

	CacheEntries   int    `json:"cache_entries"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheShards    int    `json:"cache_shards"`
	FlightShards   int    `json:"flight_shards"`
	QueueDepth     int    `json:"queue_depth"`
	Workers        int    `json:"workers"`

	LatencyCount   uint64          `json:"latency_count"`
	LatencyMeanUS  float64         `json:"latency_mean_us"`
	LatencyP50US   uint64          `json:"latency_p50_us"`
	LatencyP90US   uint64          `json:"latency_p90_us"`
	LatencyP99US   uint64          `json:"latency_p99_us"`
	LatencyBuckets []LatencyBucket `json:"latency_buckets_us"`
}

func (m *metrics) snapshot() Snapshot {
	return Snapshot{
		Requests:       m.requests.Load(),
		BadRequests:    m.badRequest.Load(),
		CacheHits:      m.hits.Load(),
		CacheMisses:    m.misses.Load(),
		Coalesced:      m.coalesced.Load(),
		Rejected:       m.rejected.Load(),
		Timeouts:       m.timeouts.Load(),
		Errors:         m.errors.Load(),
		Runs:           m.runs.Load(),
		Probes:         m.probes.Load(),
		ProbeHits:      m.probeHits.Load(),
		Fills:          m.fills.Load(),
		Sweeps:         m.sweeps.Load(),
		SweepPoints:    m.sweepPoints.Load(),
		SweepHits:      m.sweepHits.Load(),
		SweepMisses:    m.sweepMisses.Load(),
		SweepCoalesced: m.sweepCoalesced.Load(),
		SweepErrors:    m.sweepErrors.Load(),
		FlightMerges:   m.coalesced.Load() + m.sweepCoalesced.Load(),
		LatencyCount:   m.latency.count.Load(),
		LatencyMeanUS:  m.latency.mean(),
		LatencyP50US:   m.latency.quantile(0.50),
		LatencyP90US:   m.latency.quantile(0.90),
		LatencyP99US:   m.latency.quantile(0.99),
		LatencyBuckets: m.latency.bucketsSnapshot(),
	}
}
