// Package exper is the experiment layer: it owns the paper's design space
// (which workload, under which primitive/policy bar, at what scale and
// sharing pattern) and executes it. A Point names one simulation, a Plan is
// an ordered list of points, and Run fans a plan's points across host
// workers, drawing machines from a reuse pool and returning results — with
// optional byte-stable measurement reports — in plan order regardless of
// completion order.
//
// Everything above the machine model goes through this package:
// internal/figures renders plans as the paper's tables and figures,
// internal/serve answers HTTP requests by running single points and batch
// plans, and cmd/dsmsim runs one point from flags. The presentation layers
// (figures, serve) never import each other; exper is their shared substrate
// (see DESIGN.md §8, Layering).
package exper

import (
	"dsm/internal/apps"
	"dsm/internal/core"
	"dsm/internal/locks"
)

// Pattern aliases the synthetic sharing pattern for brevity.
type Pattern = apps.Pattern

// Bar is one bar of the paper's figures 3-6: a primitive family under a
// coherence policy with a choice of auxiliary instructions and CAS variant.
type Bar struct {
	Label   string
	Policy  core.Policy
	Prim    locks.Prim
	Variant core.CASVariant // INV-policy CAS implementation
	LoadEx  bool            // pair compare_and_swap with load_exclusive
	Drop    bool            // issue drop_copy after updates
}

// Opts converts the bar into algorithm options.
func (b Bar) Opts() locks.Options {
	return locks.Options{Prim: b.Prim, UseLoadExclusive: b.LoadEx, Drop: b.Drop}
}

// SyntheticBars returns the paper's 21 bars in figure order: UNC
// (FAP/LLSC/CAS), INV without and with drop_copy (FAP, LLSC, and the four
// CAS implementations INV, INVd, INVs, INV+load_exclusive), and UPD
// without and with drop_copy (FAP/LLSC/CAS).
func SyntheticBars() []Bar {
	var bars []Bar
	add := func(label string, p core.Policy, pr locks.Prim, v core.CASVariant, ldex, drop bool) {
		bars = append(bars, Bar{Label: label, Policy: p, Prim: pr, Variant: v, LoadEx: ldex, Drop: drop})
	}
	// UNC
	add("UNC FAP", core.PolicyUNC, locks.PrimFAP, core.CASPlain, false, false)
	add("UNC LLSC", core.PolicyUNC, locks.PrimLLSC, core.CASPlain, false, false)
	add("UNC CAS", core.PolicyUNC, locks.PrimCAS, core.CASPlain, false, false)
	// INV, without and with drop_copy
	for _, drop := range []bool{false, true} {
		suffix := ""
		if drop {
			suffix = "+drop"
		}
		add("INV FAP"+suffix, core.PolicyINV, locks.PrimFAP, core.CASPlain, false, drop)
		add("INV LLSC"+suffix, core.PolicyINV, locks.PrimLLSC, core.CASPlain, false, drop)
		add("INV CAS"+suffix, core.PolicyINV, locks.PrimCAS, core.CASPlain, false, drop)
		add("INVd CAS"+suffix, core.PolicyINV, locks.PrimCAS, core.CASDeny, false, drop)
		add("INVs CAS"+suffix, core.PolicyINV, locks.PrimCAS, core.CASShare, false, drop)
		add("INV CAS+ldex"+suffix, core.PolicyINV, locks.PrimCAS, core.CASPlain, true, drop)
	}
	// UPD, without and with drop_copy
	for _, drop := range []bool{false, true} {
		suffix := ""
		if drop {
			suffix = "+drop"
		}
		add("UPD FAP"+suffix, core.PolicyUPD, locks.PrimFAP, core.CASPlain, false, drop)
		add("UPD LLSC"+suffix, core.PolicyUPD, locks.PrimLLSC, core.CASPlain, false, drop)
		add("UPD CAS"+suffix, core.PolicyUPD, locks.PrimCAS, core.CASPlain, false, drop)
	}
	return bars
}

// RunOpts scales an experiment: the full paper configuration is 64
// processors; smaller settings keep tests and benchmarks fast.
type RunOpts struct {
	Procs  int // simulated processors
	Rounds int // barrier-separated rounds per synthetic pattern

	// Par is the number of independent simulation runs executed
	// concurrently on host goroutines (see Sweep). 0 means GOMAXPROCS;
	// 1 restores fully serial execution. Results are identical for any
	// value: determinism is per-run, parallelism is across runs.
	Par int

	// Real-application sizes (figure 2 and 6).
	TCSize  int // transitive-closure vertices
	Wires   int // LocusRoute wires (0 = 3*Procs)
	Columns int // Cholesky columns (0 = 3*Procs)
}

// Defaults is the paper-scale configuration.
func Defaults() RunOpts {
	return RunOpts{Procs: 64, Rounds: 16, TCSize: 32}
}

// Small is a reduced configuration for tests and quick runs.
func Small() RunOpts {
	return RunOpts{Procs: 16, Rounds: 6, TCSize: 12}
}

// Patterns returns the paper's ten sharing patterns: no contention with
// average write runs of 1, 1.5, 2, 3, and 10, and contention levels 2, 4,
// 8, 16, and 64 (clamped to the machine size).
func Patterns(o RunOpts) []Pattern {
	pats := []Pattern{
		{Contention: 1, WriteRun: 1, Rounds: o.Rounds},
		{Contention: 1, WriteRun: 1.5, Rounds: o.Rounds},
		{Contention: 1, WriteRun: 2, Rounds: o.Rounds},
		{Contention: 1, WriteRun: 3, Rounds: o.Rounds},
		{Contention: 1, WriteRun: 10, Rounds: o.Rounds},
	}
	seen := make(map[int]bool)
	for _, c := range []int{2, 4, 8, 16, 64} {
		if c > o.Procs {
			c = o.Procs
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		pats = append(pats, Pattern{Contention: c, Rounds: o.Rounds})
	}
	return pats
}
