package apps

import (
	"dsm/internal/arch"
	"dsm/internal/check"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// This file is the lock-free workload library: the data structures the
// paper's primitives exist to support, run under the same sharing-pattern
// methodology as the synthetic counters. Each workload reuses Pattern —
// Contention is how many processors operate on the structure per
// barrier-separated round (for RCU, how many write), and WriteRun is the
// number of consecutive operation pairs an uncontended owner performs per
// turn. Every workload runs under every policy×primitive bar; the queue
// and stack need a universal primitive, so under fetch_and_Φ they fall
// back to the structures that family can express (the Gottlieb-style
// ticket queue of locks.Queue, and a stack under a test-and-set lock) —
// the comparison the paper's section 6 draws between primitive families.
//
// The queue and stack optionally record per-operation invoke/respond
// histories into a check.History, closing the loop with the exact
// linearizability checkers: the simulation's full protocol stack — mesh,
// directory, caches, primitive implementations — sits between the
// operations and the checker's verdict.

// WorkloadResult reports a lock-free workload run.
type WorkloadResult struct {
	// Ops counts completed structure operations: queue/stack ops, RCU
	// reads+updates, or barrier-app counter increments.
	Ops uint64
	// Retries counts failed atomic swings (CAS misses, SC failures); for
	// RCU it counts torn reads, which must be zero.
	Retries uint64
	Elapsed sim.Time
	// AvgCycles is Elapsed per unit of work: per structure operation, or
	// per barrier episode for the barrier workloads.
	AvgCycles float64
}

// scratch is the machine's resident app-layer container: one slot per
// runner family, so alternating synthetic and workload points on a reused
// machine does not thrash either runner.
type scratch struct {
	synth *synthRunner
	work  *workRunner
}

// scratchFor returns m's scratch container, creating it on first use.
func scratchFor(m *machine.Machine) *scratch {
	if sc, ok := m.AppScratch().(*scratch); ok {
		return sc
	}
	sc := &scratch{}
	m.SetAppScratch(sc)
	return sc
}

// workRunner is the resident scaffolding for workload runs, mirroring
// synthRunner: the program closure is allocated once per machine, while
// all simulated state is allocated per run so reuse replays exactly.
type workRunner struct {
	m    *machine.Machine
	prog func(p *machine.Proc)

	pat      Pattern
	procs, c int
	episode  func(p *machine.Proc, round, runs int)
	ops      uint64
}

func workFor(m *machine.Machine) *workRunner {
	sc := scratchFor(m)
	if sc.work != nil {
		return sc.work
	}
	r := &workRunner{m: m}
	r.prog = r.body
	sc.work = r
	return r
}

// body mirrors synthRunner.body: barrier-separated rounds with the
// pattern selecting the active processors; an uncontended owner performs
// a write run of episodes.
func (r *workRunner) body(p *machine.Proc) {
	for round := 0; round < r.pat.Rounds; round++ {
		if r.c == 1 {
			if p.ID() == round%r.procs {
				r.episode(p, round, r.pat.runsFor(round))
			}
		} else if (p.ID()-round*r.c%r.procs+r.procs)%r.procs < r.c {
			r.episode(p, round, 1)
		}
		p.Barrier()
	}
}

func (r *workRunner) run(pat Pattern, episode func(p *machine.Proc, round, runs int)) (uint64, sim.Time) {
	procs := r.m.Procs()
	c := pat.Contention
	if c < 1 {
		c = 1
	}
	if c > procs {
		c = procs
	}
	r.pat, r.procs, r.c = pat, procs, c
	r.episode = episode
	r.ops = 0
	elapsed := r.m.Run(r.prog)
	r.episode = nil
	return r.ops, elapsed
}

// clampC mirrors run's contention clamping for pre-run sizing.
func clampC(pat Pattern, procs int) int {
	c := pat.Contention
	if c < 1 {
		c = 1
	}
	if c > procs {
		c = procs
	}
	return c
}

// totalEpisodes is the number of operation pairs the pattern will drive.
func totalEpisodes(pat Pattern, procs int) int {
	c := clampC(pat, procs)
	total := 0
	for round := 0; round < pat.Rounds; round++ {
		if c == 1 {
			total += pat.runsFor(round)
		} else {
			total += c
		}
	}
	return total
}

// workVal builds the unique value for an episode iteration: values are
// distinct across the whole run (the differentiated-history requirement
// of the queue checker). Write runs are at most 11 long (WriteRun ≤ 10),
// so 16 slots per (round, proc) suffice.
func workVal(round, procs, id, it int) arch.Word {
	return arch.Word((round*procs+id)*16 + it + 1)
}

// record appends one op to h (nil h skips recording). Histories are
// written from proc goroutines; the engine's single-runnable discipline
// serializes them.
func record(h *check.History, p *machine.Proc, kind check.Kind, invoke sim.Time, v arch.Word) {
	if h != nil {
		h.Record(check.Op{Proc: p.ID(), Invoke: invoke, Respond: p.Now(), Kind: kind, Value: v})
	}
}

// QueueApp drives a FIFO queue under the pattern: each active processor
// enqueues a fresh value and then dequeues one, so rounds stay balanced
// and dequeues never find the queue empty. Under CAS and LL/SC the queue
// is the Michael-Scott lock-free queue; fetch_and_Φ cannot express its
// pointer swings, so that family runs the ticket queue built on
// fetch_and_add. With h non-nil every operation is recorded for
// (*check.History).CheckQueue.
func QueueApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern, h *check.History) WorkloadResult {
	r := workFor(m)
	procs := m.Procs()
	var enqueue func(p *machine.Proc, v arch.Word)
	var dequeue func(p *machine.Proc) arch.Word
	var retries *uint64
	if opts.Prim == locks.PrimFAP {
		q := locks.NewQueue(m, policy, procs+1, opts)
		enqueue = q.Enqueue
		dequeue = q.Dequeue
	} else {
		q := locks.NewMSQueue(m, policy, totalEpisodes(pat, procs), opts)
		enqueue = func(p *machine.Proc, v arch.Word) { q.Enqueue(p, q.AcquireNode(), v) }
		dequeue = func(p *machine.Proc) arch.Word {
			v, ok := q.Dequeue(p)
			if !ok {
				panic("apps: balanced queue workload saw an empty queue")
			}
			return v
		}
		retries = &q.Retries
	}
	ops, elapsed := r.run(pat, func(p *machine.Proc, round, runs int) {
		for it := 0; it < runs; it++ {
			v := workVal(round, r.procs, p.ID(), it)
			inv := p.Now()
			enqueue(p, v)
			record(h, p, check.Enq, inv, v)
			inv = p.Now()
			got := dequeue(p)
			record(h, p, check.Deq, inv, got)
			r.ops += 2
		}
	})
	res := WorkloadResult{Ops: ops, Elapsed: elapsed}
	if retries != nil {
		res.Retries = *retries
	}
	if ops > 0 {
		res.AvgCycles = float64(elapsed) / float64(ops)
	}
	return res
}

// ttsStack is the fetch_and_Φ stack fallback: an array stack under a
// test-and-test-and-set lock (test_and_set is in the fetch_and_Φ family).
type ttsStack struct {
	lock *locks.TTSLock
	sp   arch.Addr
	slot []arch.Addr
}

func newTTSStack(m *machine.Machine, policy core.Policy, capacity int, opts locks.Options) *ttsStack {
	s := &ttsStack{lock: locks.NewTTSLock(m, policy, opts), sp: m.Alloc(4), slot: make([]arch.Addr, capacity)}
	for i := range s.slot {
		s.slot[i] = m.Alloc(arch.BlockBytes)
	}
	return s
}

func (s *ttsStack) push(p *machine.Proc, v arch.Word) {
	s.lock.Acquire(p)
	n := p.Load(s.sp)
	p.Store(s.slot[n], v)
	p.Store(s.sp, n+1)
	s.lock.Release(p)
}

func (s *ttsStack) pop(p *machine.Proc) arch.Word {
	s.lock.Acquire(p)
	n := p.Load(s.sp)
	v := p.Load(s.slot[n-1])
	p.Store(s.sp, n-1)
	s.lock.Release(p)
	return v
}

// StackApp drives a LIFO stack under the pattern, push-then-pop per
// episode like QueueApp. Under CAS and LL/SC it is the Treiber stack with
// genuinely recycled nodes: each processor starts owning one node and
// afterwards owns whichever node its pop returned, so re-pushes race
// stale readers exactly as the paper's section 2.2 describes — the
// counted-pointer tag (CAS) or the reservation (LL/SC) is load-bearing.
// Under fetch_and_Φ it is an array stack under a TTS lock. With h
// non-nil every operation is recorded for (*check.History).CheckStack.
func StackApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern, h *check.History) WorkloadResult {
	r := workFor(m)
	procs := m.Procs()
	var push func(p *machine.Proc, v arch.Word)
	var pop func(p *machine.Proc) arch.Word
	var retries *uint64
	if opts.Prim == locks.PrimFAP {
		s := newTTSStack(m, policy, procs+1, opts)
		push = s.push
		pop = s.pop
	} else {
		s := locks.NewTreiberStack(m, policy, procs, opts)
		held := make([]arch.Word, procs)
		for i := range held {
			held[i] = arch.Word(i + 1)
		}
		push = func(p *machine.Proc, v arch.Word) { s.Push(p, held[p.ID()], v) }
		pop = func(p *machine.Proc) arch.Word {
			node, v, ok := s.Pop(p, nil)
			if !ok {
				panic("apps: balanced stack workload saw an empty stack")
			}
			held[p.ID()] = node
			return v
		}
		retries = &s.Retries
	}
	ops, elapsed := r.run(pat, func(p *machine.Proc, round, runs int) {
		for it := 0; it < runs; it++ {
			v := workVal(round, r.procs, p.ID(), it)
			inv := p.Now()
			push(p, v)
			record(h, p, check.Push, inv, v)
			inv = p.Now()
			got := pop(p)
			record(h, p, check.Pop, inv, got)
			r.ops += 2
		}
	})
	res := WorkloadResult{Ops: ops, Elapsed: elapsed}
	if retries != nil {
		res.Retries = *retries
	}
	if ops > 0 {
		res.AvgCycles = float64(elapsed) / float64(ops)
	}
	return res
}

// rcuSnapshotWords is the snapshot size the RCU workload publishes.
const rcuSnapshotWords = 4

// RCUApp drives the read-copy-update workload: Contention processors
// write (serialized, each performing Rounds updates with grace periods),
// the rest read and announce quiescent states until the writers finish.
// This is the read-mostly inverse of every other workload — readers issue
// only ordinary loads — so UPD/INV/UNC differentiate on the publish
// fan-out rather than on atomic-op latency. Retries reports torn reads,
// which grace periods make impossible; a nonzero count is a protocol
// violation.
func RCUApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern) WorkloadResult {
	r := workFor(m)
	procs := m.Procs()
	writers := clampC(pat, procs)
	if writers >= procs && procs > 1 {
		writers = procs - 1
	}
	rcu := locks.NewRCU(m, policy, rcuSnapshotWords, opts)
	isReader := func(i int) bool { return i >= writers }
	done := m.AllocSync(core.PolicyINV)
	torn := uint64(0)
	// The RCU workload cannot use the round/barrier scaffold: a writer
	// waiting out a grace period needs the readers still running, not
	// parked at a barrier. Readers therefore spin until the last writer
	// raises done.
	r.ops = 0
	elapsed := m.Run(func(p *machine.Proc) {
		if p.ID() < writers {
			for u := 0; u < pat.Rounds; u++ {
				rcu.Update(p, isReader)
				r.ops++
				p.Compute(sim.Time(10 + p.Rand().Intn(20)))
			}
			p.FetchAdd(done, 1)
			return
		}
		for p.Load(done) < arch.Word(writers) {
			_, bad := rcu.ReadSnapshot(p)
			if bad {
				torn++
			}
			r.ops++
			rcu.Quiesce(p)
			p.Compute(sim.Time(5 + p.Rand().Intn(10)))
		}
	})
	res := WorkloadResult{Ops: r.ops, Retries: torn, Elapsed: elapsed}
	if r.ops > 0 {
		res.AvgCycles = float64(elapsed) / float64(r.ops)
	}
	return res
}

// waiter is the common face of the scalable barriers.
type waiter interface {
	Wait(p *machine.Proc)
}

// runBarrierApp drives a barrier workload: per round, the pattern's
// active processors increment a shared counter with the primitive under
// study (recorded as Inc ops for the counter checker when h is non-nil),
// then every processor enters the barrier. AvgCycles is per barrier
// episode — the barrier-latency figure — while Ops counts the increments.
func runBarrierApp(r *workRunner, b waiter, ctr *locks.Counter, pat Pattern, h *check.History) WorkloadResult {
	procs := r.m.Procs()
	c := clampC(pat, procs)
	r.pat, r.procs, r.c = pat, procs, c
	r.ops = 0
	elapsed := r.m.Run(func(p *machine.Proc) {
		for round := 0; round < pat.Rounds; round++ {
			if (p.ID()-round*c%procs+procs)%procs < c {
				inv := p.Now()
				fetched := ctr.Inc(p)
				record(h, p, check.Inc, inv, fetched)
				r.ops++
			}
			b.Wait(p)
		}
	})
	res := WorkloadResult{Ops: r.ops, Elapsed: elapsed}
	if pat.Rounds > 0 {
		res.AvgCycles = float64(elapsed) / float64(pat.Rounds)
	}
	return res
}

// TournamentApp runs the counter-then-barrier workload over the
// tournament barrier.
func TournamentApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern, h *check.History) WorkloadResult {
	ctr := &locks.Counter{Addr: m.AllocSync(policy), Opts: opts}
	return runBarrierApp(workFor(m), locks.NewTournamentBarrier(m), ctr, pat, h)
}

// DisseminationApp runs the counter-then-barrier workload over the
// dissemination barrier.
func DisseminationApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern, h *check.History) WorkloadResult {
	ctr := &locks.Counter{Addr: m.AllocSync(policy), Opts: opts}
	return runBarrierApp(workFor(m), locks.NewDisseminationBarrier(m), ctr, pat, h)
}
