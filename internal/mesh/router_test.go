package mesh

import (
	"testing"

	"dsm/internal/sim"
)

func newRouterMesh() (*sim.Engine, *Mesh) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ModelRouters = true
	return eng, New(eng, cfg)
}

func TestRouterModeUncontendedMatchesSimpleModel(t *testing.T) {
	// Without contention, per-link routing gives the same head latency as
	// the hops*HopDelay abstraction.
	engA, mA := newTestMesh()
	engB, mB := newRouterMesh()
	var a, b sim.Time
	mA.Send(0, 63, 5, func() { a = engA.Now() })
	mB.Send(0, 63, 5, func() { b = engB.Now() })
	engA.Run(0)
	engB.Run(0)
	if a != b {
		t.Fatalf("uncontended latency differs: simple %d vs routed %d", a, b)
	}
}

func TestRouterModeSharedLinkSerializes(t *testing.T) {
	// Two messages whose dimension-order routes share the 1->2 link: the
	// second head waits for the first message's tail.
	eng, m := newRouterMesh()
	var first, second sim.Time
	m.Send(0, 2, 5, func() { first = eng.Now() })  // route 0->1->2
	m.Send(1, 2, 5, func() { second = eng.Now() }) // route 1->2
	eng.Run(0)
	if m.Stats().LinkWait == 0 {
		t.Fatal("no link contention recorded on a shared link")
	}
	if second <= first-5 {
		t.Fatalf("second message unaffected by link contention: %d vs %d", second, first)
	}
}

func TestRouterModeDisjointPathsDoNotInterfere(t *testing.T) {
	// Messages on disjoint rows never share a link.
	eng, m := newRouterMesh()
	m.Send(0, 7, 5, func() {})   // row 0
	m.Send(8, 15, 5, func() {})  // row 1
	m.Send(16, 23, 5, func() {}) // row 2
	eng.Run(0)
	if m.Stats().LinkWait != 0 {
		t.Fatalf("disjoint paths recorded LinkWait=%d", m.Stats().LinkWait)
	}
}

func TestRouterModeDimensionOrderXFirst(t *testing.T) {
	// A 0 -> 9 message (diagonal) routes X first: link 0->1, then the
	// vertical link 1->9. A message 1 -> 9 shares that vertical link; a
	// message 8 -> 9 (the Y-first alternative's last link) does not.
	eng, m := newRouterMesh()
	m.Send(0, 9, 5, func() {})
	m.Send(1, 9, 5, func() {})
	eng.Run(0)
	if m.Stats().LinkWait == 0 {
		t.Fatal("X-first route did not use the 1->9 link")
	}

	eng2, m2 := newRouterMesh()
	m2.Send(0, 9, 5, func() {})
	m2.Send(8, 9, 5, func() {})
	eng2.Run(0)
	if m2.Stats().LinkWait != 0 {
		t.Fatal("route unexpectedly used the 8->9 link (Y-first?)")
	}
}

func TestRouterModeOppositeDirectionsIndependent(t *testing.T) {
	// Links are directed: 0->1 and 1->0 do not contend.
	eng, m := newRouterMesh()
	m.Send(0, 1, 5, func() {})
	m.Send(1, 0, 5, func() {})
	eng.Run(0)
	if m.Stats().LinkWait != 0 {
		t.Fatalf("opposite directions contended: LinkWait=%d", m.Stats().LinkWait)
	}
}
