package exper

import (
	"bytes"
	"testing"

	"dsm/internal/core"
	"dsm/internal/locks"
)

// TestRunParallelMatchesSerial is the layer's determinism contract: a plan's
// results are identical whether the points run serially or fanned across
// workers — including the full collected reports, byte for byte.
func TestRunParallelMatchesSerial(t *testing.T) {
	o := RunOpts{Procs: 8, Rounds: 2, TCSize: 8}
	base := SyntheticPlan(AppCounter, o)
	base.Points = append(base.Points,
		Point{App: AppTClosure, Bar: Bar{Policy: core.PolicyINV, Prim: locks.PrimFAP}, Scale: o})
	base.Collect = true

	run := func(par int) []Result {
		pl := base
		pl.Par = par
		return Run(pl)
	}
	serial := run(1)
	for _, par := range []int{4, 0} {
		res := run(par)
		if len(res) != len(serial) {
			t.Fatalf("par=%d: %d results, want %d", par, len(res), len(serial))
		}
		for i := range res {
			if res[i].Elapsed != serial[i].Elapsed ||
				res[i].Updates != serial[i].Updates ||
				res[i].AvgCycles != serial[i].AvgCycles ||
				res[i].Work != serial[i].Work {
				t.Fatalf("par=%d point %d: %+v != serial %+v", par, i, res[i], serial[i])
			}
			var a, b bytes.Buffer
			if err := res[i].Report.WriteJSON(&a); err != nil {
				t.Fatal(err)
			}
			if err := serial[i].Report.WriteJSON(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("par=%d point %d: report differs from serial\n%s\n--- vs ---\n%s",
					par, i, a.String(), b.String())
			}
		}
	}
}

// TestPointRunDeterministic re-runs the same point and requires identical
// results: the seed discipline plus machine reuse must replay exactly.
func TestPointRunDeterministic(t *testing.T) {
	p := Point{
		App:     AppCounter,
		Bar:     Bar{Policy: core.PolicyINV, Prim: locks.PrimCAS, LoadEx: true},
		Scale:   RunOpts{Procs: 8, Rounds: 4},
		Pattern: Pattern{Contention: 8, Rounds: 4},
	}
	first := p.Run(false)
	for i := 0; i < 3; i++ {
		if got := p.Run(false); got != first {
			t.Fatalf("re-run %d: %+v != %+v", i, got, first)
		}
	}
}

// TestPointSeedSelectsRun checks the explicit seed changes the run (and
// zero keeps the default).
func TestPointSeedSelectsRun(t *testing.T) {
	p := Point{
		App:   AppTClosure,
		Bar:   Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP},
		Scale: RunOpts{Procs: 4, TCSize: 10},
	}
	def := p.Run(false)
	p.Seed = 11 // the default TClosure seed, set explicitly
	if got := p.Run(false); got != def {
		t.Fatalf("seed 11 should match the default run: %+v != %+v", got, def)
	}
	p.Seed = 99
	if got := p.Run(false); got == def {
		t.Fatalf("seed 99 replayed the default run exactly: %+v", got)
	}
}

func TestSyntheticPlanLayout(t *testing.T) {
	o := RunOpts{Procs: 4, Rounds: 1}
	bars, pats := SyntheticBars(), Patterns(o)
	pl := SyntheticPlan(AppTTS, o)
	if len(pl.Points) != len(bars)*len(pats) {
		t.Fatalf("plan has %d points, want %d", len(pl.Points), len(bars)*len(pats))
	}
	// Pattern-major: point pi*len(bars)+bi is bar bi under pattern pi.
	for pi, pat := range pats {
		for bi, bar := range bars {
			p := pl.Points[pi*len(bars)+bi]
			if p.App != AppTTS || p.Bar.Label != bar.Label || p.Pattern != pat {
				t.Fatalf("point (%d,%d) = %+v, want bar %q pattern %v", pi, bi, p, bar.Label, pat)
			}
		}
	}
}

func TestCollectToggle(t *testing.T) {
	pl := SyntheticPlan(AppCounter, RunOpts{Procs: 4, Rounds: 1})
	pl.Points = pl.Points[:2]
	for _, r := range Run(pl) {
		if r.Report != nil {
			t.Fatal("Collect=false attached a report")
		}
	}
	pl.Collect = true
	for _, r := range Run(pl) {
		if r.Report == nil {
			t.Fatal("Collect=true produced a nil report")
		}
		if r.Report.Procs != 4 {
			t.Fatalf("report procs = %d, want 4", r.Report.Procs)
		}
	}
}

// TestCollectedReportSurvivesPoolReuse pins the aliasing contract: a
// collected report must stay valid after its machine returns to the pool
// and is reused by later points.
func TestCollectedReportSurvivesPoolReuse(t *testing.T) {
	o := RunOpts{Procs: 8, Rounds: 2}
	hot := Point{
		App: AppCounter, Bar: Bar{Policy: core.PolicyINV, Prim: locks.PrimFAP},
		Scale: o, Pattern: Pattern{Contention: 8, Rounds: o.Rounds},
	}
	first := hot.Run(true)
	total := first.Report.Contention.Total()
	mean := first.Report.Contention.Mean()
	// Churn the pool with different runs that would clobber a live alias.
	cold := hot
	cold.Pattern = Pattern{Contention: 1, Rounds: o.Rounds}
	for i := 0; i < 4; i++ {
		cold.Run(false)
	}
	if first.Report.Contention.Total() != total || first.Report.Contention.Mean() != mean {
		t.Fatalf("report histogram mutated by pool reuse: total %d->%d mean %.3f->%.3f",
			total, first.Report.Contention.Total(), mean, first.Report.Contention.Mean())
	}
}

// TestWorkloadPlanParallelMatchesSerial extends the determinism contract
// to the lock-free workload library: every workload app under every
// synthetic bar, serial vs fanned-out, byte-identical reports.
func TestWorkloadPlanParallelMatchesSerial(t *testing.T) {
	o := RunOpts{Procs: 8, Rounds: 3}
	base := Plan{Collect: true}
	for _, app := range WorkloadApps() {
		for _, bar := range SyntheticBars() {
			base.Points = append(base.Points, Point{
				App: app, Bar: bar, Scale: o,
				Pattern: Pattern{Contention: 4, Rounds: o.Rounds},
			})
		}
	}
	run := func(par int) []Result {
		pl := base
		pl.Par = par
		return Run(pl)
	}
	serial := run(1)
	res := run(0)
	for i := range res {
		if res[i].Elapsed != serial[i].Elapsed || res[i].Updates != serial[i].Updates ||
			res[i].AvgCycles != serial[i].AvgCycles || res[i].Work != serial[i].Work {
			t.Fatalf("point %d (%s): %+v != serial %+v",
				i, base.Points[i].App, res[i], serial[i])
		}
		var a, b bytes.Buffer
		if err := res[i].Report.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := serial[i].Report.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("point %d (%s): report differs from serial", i, base.Points[i].App)
		}
		if res[i].Updates == 0 {
			t.Fatalf("point %d (%s): zero operations", i, base.Points[i].App)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, a := range []App{AppCounter, AppTTS, AppMCS, AppTClosure, AppLocusRoute, AppCholesky,
		AppMSQueue, AppStack, AppRCU, AppTournament, AppDissemination} {
		got, err := ParseApp(a.Name())
		if err != nil || got != a {
			t.Fatalf("ParseApp(%q) = %v, %v", a.Name(), got, err)
		}
	}
	if _, err := ParseApp("nope"); err == nil {
		t.Fatal("ParseApp accepted junk")
	}
}
