package hostbench

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsm/internal/exper"
	"dsm/internal/serve"
)

// ScalingPoint is one rung of the multi-core ladder: the serving and plan
// throughput the host sustains with GOMAXPROCS (and the serve worker
// count) pinned to Procs. PtsPerSec counts simulation points resolved per
// second through the serving stack under the dsmload profile of record —
// 90% of requests drawn from a warmed 16-spec working set (cache hits),
// 10% never-seen specs (full simulations) — so the number is comparable
// to the recorded dsmload baselines, minus the socket hop. P99US is the
// 99th percentile per-point latency seen by the clients, queue wait
// included. PlanPtsPerSec is the same host driven through exper.Run at
// Par=Procs: the in-process sweep path, all points simulated, no serving
// layer.
type ScalingPoint struct {
	Procs         int     `json:"procs"`
	PtsPerSec     float64 `json:"pts_per_sec"`
	P99US         uint64  `json:"p99_us"`
	PlanPtsPerSec float64 `json:"plan_pts_per_sec"`
}

// minLadderRungs is the smallest ladder worth recording: even a small host
// extends into oversubscribed rungs so the curve shows where real
// parallelism stops, not just that it stopped.
const minLadderRungs = 4

// Ladder returns the GOMAXPROCS settings to measure: 1, 2, 4, 8, 16
// truncated at the host's core count, but always at least minLadderRungs
// rungs — on a 2-core host that yields {1, 2, 4, 8}, where the rungs past
// 2 measure oversubscription (expected roughly flat, not faster).
func Ladder(hostCPUs int) []int {
	var out []int
	for _, n := range []int{1, 2, 4, 8, 16} {
		if n <= hostCPUs || len(out) < minLadderRungs {
			out = append(out, n)
		}
	}
	return out
}

// MeasureScaling walks the ladder, pinning GOMAXPROCS to each rung and
// measuring serving throughput/latency over points requests plus
// plan-sweep throughput. The process GOMAXPROCS is restored afterwards.
// Unique-spec seeds advance monotonically across rungs, and each rung gets
// a fresh server, so no rung hits a result cached by an earlier one except
// through its own warmed working set.
func MeasureScaling(ladder []int, points int) []ScalingPoint {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	out := make([]ScalingPoint, 0, len(ladder))
	seed := uint64(1)
	for _, n := range ladder {
		runtime.GOMAXPROCS(n)
		pt, next := measureServeRung(n, points, seed)
		seed = next
		pt.PlanPtsPerSec = measurePlanRung(n)
		out = append(out, pt)
	}
	return out
}

// scalingDup is the working-set draw probability, matching dsmload's
// default -dup 0.9.
const scalingDup = 0.9

// scalingWorkingSet mirrors dsmload's 16-spec duplicate pool: the paper's
// design space (policy x primitive x contention) at the reduced host-bench
// scale.
func scalingWorkingSet() []string {
	policies := []string{"INV", "UPD", "UNC"}
	prims := []string{"FAP", "CAS", "LLSC"}
	conts := []int{1, 2, 4, 8}
	specs := make([]string, 0, 16)
	for i := 0; len(specs) < 16; i++ {
		specs = append(specs, fmt.Sprintf(
			`{"app":"counter","policy":%q,"prim":%q,"procs":8,"c":%d,"rounds":3}`,
			policies[i%len(policies)], prims[(i/3)%len(prims)], conts[(i/9)%len(conts)]))
	}
	return specs
}

// measureServeRung drives an in-process server (Workers = n) with 2n
// client goroutines under the dup-0.9 profile: the working set is warmed
// first, then points requests draw 90% warm specs and 10% fresh seeds.
// Returns the rung's measurement and the next unused seed.
func measureServeRung(n, points int, seed0 uint64) (ScalingPoint, uint64) {
	clients := 2 * n
	s := serve.New(serve.Config{Workers: n, Queue: 2*clients + 16})
	defer s.Close()
	h := s.Handler()
	post := func(body string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/sim", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code
	}
	set := scalingWorkingSet()
	for _, spec := range set { // warm: every working-set spec simulates once
		if code := post(spec); code != http.StatusOK {
			panic(fmt.Sprintf("hostbench: scaling warmup answered %d", code))
		}
	}
	var seed, failed atomic.Uint64
	seed.Store(seed0 - 1) // Add(1) yields seed0 first
	var handout atomic.Int64
	lat := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			lat[c] = make([]time.Duration, 0, points/clients+1)
			for handout.Add(1) <= int64(points) {
				var body string
				if rng.Float64() < scalingDup {
					body = set[rng.Intn(len(set))]
				} else {
					body = fmt.Sprintf(
						`{"app":"counter","procs":8,"c":8,"rounds":3,"seed":%d}`,
						seed.Add(1))
				}
				t0 := time.Now()
				code := post(body)
				lat[c] = append(lat[c], time.Since(t0))
				if code != http.StatusOK {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		panic(fmt.Sprintf("hostbench: scaling rung dropped %d of %d points", n, points))
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100]
	return ScalingPoint{
		Procs:     n,
		PtsPerSec: float64(points) / elapsed.Seconds(),
		P99US:     uint64(p99.Microseconds()),
	}, seed.Load() + 1
}

// planRungReps amortizes plan setup and scheduler warmup over several full
// grids per rung.
const planRungReps = 4

// measurePlanRung times the in-process sweep path at Par = n: regenerating
// the reduced figure-3 grid (every bar x pattern) with n plan workers,
// each owning one resident machine across its share of the points.
func measurePlanRung(n int) float64 {
	plan := exper.SyntheticPlan(exper.AppCounter, sweepOpts(n))
	exper.Run(plan) // warm up: machine slabs, scheduler arrays
	start := time.Now()
	pts := 0
	for i := 0; i < planRungReps; i++ {
		pts += len(exper.Run(plan))
	}
	return float64(pts) / time.Since(start).Seconds()
}
