package locks

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
)

// MSQueue is the Michael & Scott lock-free FIFO queue — by the same
// authors as the paper — built over statically allocated nodes on the
// simulated memory system. Head and Tail are single-word pointers updated
// with the universal primitive under study; fetch_and_Φ cannot express it
// (Herlihy's hierarchy), which is why the queue workload falls back to the
// fetch_and_add ticket queue under PrimFAP.
//
// ABA countermeasures follow the original algorithm's two deployments:
//
//   - PrimCAS: Head and Tail are counted ("tagged") pointers — the node id
//     in the low 16 bits, a modification count in the high 16 — so a
//     pointer popped and re-installed never compares equal to a stale
//     read. Nodes in this workload are never recycled, so the tag is
//     belt-and-braces here; the Treiber stack (TreiberStack) is where tag
//     omission corrupts.
//   - PrimLLSC: plain node ids. The reservation detects any intervening
//     write, tags are unnecessary — the hardware-LL/SC-vs-emulated-CAS
//     comparison of Blelloch & Wei (arXiv 1911.09671).
//
// Node ids are 1-based; id 0 is the null pointer. Each node owns one
// block: word 0 is the next link, word 1 the value. The dummy node the
// algorithm requires is id 1; AcquireNode hands out 2..capacity+1.
type MSQueue struct {
	Head arch.Addr
	Tail arch.Addr
	node []arch.Addr // per id (index 0 unused): word 0 next, word 1 value
	next uint16      // first unissued node id
	Opts Options

	// Retries counts failed pointer swings (CAS misses, SC failures, and
	// helped tail advances) — the contention metric of the workload.
	Retries uint64
}

// msTagBits is the width of the node-id field of a counted pointer; the
// remaining high bits hold the modification count.
const msTagBits = 16

// msPack builds a counted pointer from a node id and a tag.
func msPack(id, tag arch.Word) arch.Word {
	return tag<<msTagBits | id&(1<<msTagBits-1)
}

// msID extracts the node id of a counted pointer.
func msID(w arch.Word) arch.Word { return w & (1<<msTagBits - 1) }

// NewMSQueue allocates a queue and capacity nodes (plus the dummy). The
// caller acquires nodes with AcquireNode; they are not recycled.
func NewMSQueue(m *machine.Machine, policy core.Policy, capacity int, opts Options) *MSQueue {
	if opts.Prim == PrimFAP {
		panic("locks: the MS queue needs a universal primitive (CAS or LL/SC)")
	}
	if capacity < 1 || capacity+1 >= 1<<msTagBits {
		panic(fmt.Sprintf("locks: MS queue capacity %d out of range", capacity))
	}
	q := &MSQueue{
		Head: m.AllocSync(policy),
		Tail: m.AllocSync(policy),
		node: make([]arch.Addr, capacity+2),
		Opts: opts,
	}
	for id := 1; id < len(q.node); id++ {
		q.node[id] = m.AllocSync(policy)
	}
	q.next = 2 // id 1 is the initial dummy
	m.Poke(q.Head, q.ptr(1, 0))
	m.Poke(q.Tail, q.ptr(1, 0))
	return q
}

// ptr renders a head/tail word for the configured primitive: counted under
// CAS, a plain id under LL/SC.
func (q *MSQueue) ptr(id, tag arch.Word) arch.Word {
	if q.Opts.Prim == PrimLLSC {
		return id
	}
	return msPack(id, tag)
}

// AcquireNode hands out the next unused node id. Node issue order is a
// host-side cursor, so callers wanting determinism across runs must
// acquire in a deterministic order (the workload preassigns per-processor
// ranges for exactly that reason).
func (q *MSQueue) AcquireNode() arch.Word {
	if int(q.next) >= len(q.node) {
		panic("locks: MS queue out of nodes")
	}
	id := arch.Word(q.next)
	q.next++
	return id
}

func (q *MSQueue) nextAddr(id arch.Word) arch.Addr { return q.node[id] }
func (q *MSQueue) valAddr(id arch.Word) arch.Addr  { return q.node[id] + arch.WordBytes }

// Enqueue appends value in a fresh node (from AcquireNode) at the tail.
func (q *MSQueue) Enqueue(p *machine.Proc, node arch.Word, value arch.Word) {
	p.Store(q.nextAddr(node), 0)
	p.Store(q.valAddr(node), value)
	if q.Opts.Prim == PrimLLSC {
		q.enqueueLLSC(p, node)
		return
	}
	for {
		tail := p.Load(q.Tail)
		tn := msID(tail)
		next := q.Opts.read(p, q.nextAddr(tn))
		if tail != p.Load(q.Tail) { // tail moved while reading next
			q.Retries++
			continue
		}
		if next == 0 {
			// Tail was last: link the new node after it.
			if p.CompareAndSwap(q.nextAddr(tn), 0, node) {
				// Swing tail to the inserted node; a failure means
				// someone helped, which is not a retry of ours.
				p.CompareAndSwap(q.Tail, tail, msPack(node, tail>>msTagBits+1))
				return
			}
			q.Retries++
		} else {
			// Tail lagging: help swing it, then retry.
			p.CompareAndSwap(q.Tail, tail, msPack(msID(next), tail>>msTagBits+1))
			q.Retries++
		}
	}
}

// enqueueLLSC is the native load_linked/store_conditional enqueue: the
// reservation on the predecessor's next link replaces the counted pointer.
func (q *MSQueue) enqueueLLSC(p *machine.Proc, node arch.Word) {
	for {
		tn := p.Load(q.Tail)
		next := p.LoadLinked(q.nextAddr(tn))
		if next != 0 {
			// Tail lagging: help swing it, then retry.
			for {
				t := p.LoadLinked(q.Tail)
				if t != tn || p.StoreConditional(q.Tail, next) {
					break
				}
			}
			q.Retries++
			continue
		}
		if p.StoreConditional(q.nextAddr(tn), node) {
			// Swing tail; on interference someone helped.
			for {
				t := p.LoadLinked(q.Tail)
				if t != tn || p.StoreConditional(q.Tail, node) {
					break
				}
			}
			return
		}
		q.Retries++
	}
}

// Dequeue removes the value at the head, reporting ok=false when the queue
// is empty.
func (q *MSQueue) Dequeue(p *machine.Proc) (value arch.Word, ok bool) {
	if q.Opts.Prim == PrimLLSC {
		return q.dequeueLLSC(p)
	}
	for {
		head := q.Opts.read(p, q.Head)
		tail := p.Load(q.Tail)
		hn := msID(head)
		next := p.Load(q.nextAddr(hn))
		if head != p.Load(q.Head) {
			q.Retries++
			continue
		}
		if hn == msID(tail) {
			if next == 0 {
				return 0, false
			}
			// Tail lagging behind a half-finished enqueue: help.
			p.CompareAndSwap(q.Tail, tail, msPack(msID(next), tail>>msTagBits+1))
			q.Retries++
			continue
		}
		// Read the value before the swing frees the node for its next
		// life (in this workload nodes are not recycled, but the
		// algorithm's ordering is kept).
		v := p.Load(q.valAddr(next))
		if p.CompareAndSwap(q.Head, head, msPack(msID(next), head>>msTagBits+1)) {
			return v, true
		}
		q.Retries++
	}
}

// dequeueLLSC is the native LL/SC dequeue.
func (q *MSQueue) dequeueLLSC(p *machine.Proc) (value arch.Word, ok bool) {
	for {
		hn := p.LoadLinked(q.Head)
		tn := p.Load(q.Tail)
		next := p.Load(q.nextAddr(hn))
		if hn == tn {
			if next == 0 {
				return 0, false
			}
			for {
				t := p.LoadLinked(q.Tail)
				if t != tn || p.StoreConditional(q.Tail, next) {
					break
				}
			}
			q.Retries++
			continue
		}
		v := p.Load(q.valAddr(next))
		if p.StoreConditional(q.Head, next) {
			return v, true
		}
		q.Retries++
	}
}

// String describes the queue configuration.
func (q *MSQueue) String() string {
	return fmt.Sprintf("ms-queue(nodes=%d, prim=%s)", len(q.node)-2, q.Opts.Prim)
}
