package mc

import (
	"strings"
	"testing"

	"dsm/internal/proto"
)

// runClean checks cfg and fails the test on any violation not documented
// as expected.
func runClean(t *testing.T, name string, cfg Config) Report {
	t.Helper()
	rep := Check(cfg)
	if rep.Terminals == 0 {
		t.Errorf("%s: no quiescent terminal state reached", name)
	}
	for _, v := range rep.Unexpected() {
		t.Errorf("%s: unexpected violation:\n%v", name, v)
	}
	return rep
}

func ops(specs ...OpSpec) []OpSpec { return specs }

// TestTwoNodeAllPoliciesAllPrimitives is the exhaustive small-config
// sweep (and the CI model-checker smoke): two nodes, one block, at most
// two outstanding operations per node, every policy crossed with every
// primitive family. Every interleaving must satisfy every invariant —
// including the real-time read front, which the UPD window cannot break
// with a single reader.
func TestTwoNodeAllPoliciesAllPrimitives(t *testing.T) {
	load := OpSpec{Op: proto.OpLoad}
	prims := []struct {
		name  string
		progs [][]OpSpec
	}{
		{"store-store", [][]OpSpec{
			ops(OpSpec{Op: proto.OpStore, Val: 5}),
			ops(OpSpec{Op: proto.OpStore, Val: 9})}},
		{"store-vs-loads", [][]OpSpec{
			ops(OpSpec{Op: proto.OpStore, Val: 5}),
			ops(load, load)}},
		{"load-exclusive", [][]OpSpec{
			ops(OpSpec{Op: proto.OpLoadExclusive}, load),
			ops(OpSpec{Op: proto.OpLoadExclusive})}},
		{"fetch-add", [][]OpSpec{
			ops(OpSpec{Op: proto.OpFetchAdd, Val: 1}, load),
			ops(OpSpec{Op: proto.OpFetchAdd, Val: 1})}},
		{"fetch-store", [][]OpSpec{
			ops(OpSpec{Op: proto.OpFetchStore, Val: 5}),
			ops(OpSpec{Op: proto.OpFetchStore, Val: 9})}},
		{"fetch-or", [][]OpSpec{
			ops(OpSpec{Op: proto.OpFetchOr, Val: 1}),
			ops(OpSpec{Op: proto.OpFetchOr, Val: 2})}},
		{"test-and-set", [][]OpSpec{
			ops(OpSpec{Op: proto.OpTestAndSet}, load),
			ops(OpSpec{Op: proto.OpTestAndSet})}},
		{"cas-race", [][]OpSpec{
			ops(OpSpec{Op: proto.OpCAS, Val: 0, Val2: 1}),
			ops(OpSpec{Op: proto.OpCAS, Val: 0, Val2: 2})}},
		{"cas-vs-owner", [][]OpSpec{
			ops(OpSpec{Op: proto.OpStore, Val: 3}),
			ops(OpSpec{Op: proto.OpCAS, Val: 3, Val2: 7})}},
		{"cas-mismatch", [][]OpSpec{
			ops(OpSpec{Op: proto.OpStore, Val: 3}),
			ops(OpSpec{Op: proto.OpCAS, Val: 4, Val2: 7}, load)}},
		{"drop-copy", [][]OpSpec{
			ops(OpSpec{Op: proto.OpStore, Val: 5}, OpSpec{Op: proto.OpDropCopy}),
			ops(load)}},
		{"ll-sc", [][]OpSpec{
			ops(OpSpec{Op: proto.OpLL}, OpSpec{Op: proto.OpSC, Val: 5, Val2: UseLLSerial}),
			ops(OpSpec{Op: proto.OpLL}, OpSpec{Op: proto.OpSC, Val: 9, Val2: UseLLSerial})}},
	}
	for _, pol := range []proto.Policy{proto.PolicyINV, proto.PolicyUPD, proto.PolicyUNC} {
		for _, p := range prims {
			name := pol.String() + "/" + p.name
			t.Run(name, func(t *testing.T) {
				rep := runClean(t, name, Config{
					Nodes: 2, Policy: pol, CAS: proto.CASPlain,
					Resv: ResvBits, ResvLimit: 4, Progs: p.progs,
				})
				t.Logf("%s: %d states, %d terminals", name, rep.States, rep.Terminals)
			})
		}
	}
}

// TestCASVariants drives the three CAS implementations (plain recall,
// owner-side deny, owner-side share) through the owner-held and
// mismatch cases.
func TestCASVariants(t *testing.T) {
	load := OpSpec{Op: proto.OpLoad}
	progSets := [][][]OpSpec{
		{ops(OpSpec{Op: proto.OpStore, Val: 3}), ops(OpSpec{Op: proto.OpCAS, Val: 3, Val2: 7})},
		{ops(OpSpec{Op: proto.OpStore, Val: 3}), ops(OpSpec{Op: proto.OpCAS, Val: 4, Val2: 7}, load)},
		{ops(OpSpec{Op: proto.OpCAS, Val: 0, Val2: 1}), ops(OpSpec{Op: proto.OpCAS, Val: 0, Val2: 2})},
	}
	for _, cas := range []proto.CASVariant{proto.CASPlain, proto.CASDeny, proto.CASShare} {
		for pi, progs := range progSets {
			name := cas.String()
			rep := runClean(t, name, Config{
				Nodes: 2, Policy: proto.PolicyINV, CAS: cas,
				Resv: ResvBits, ResvLimit: 4, Progs: progs,
			})
			t.Logf("%s/progs%d: %d states", name, pi, rep.States)
		}
	}
}

// TestReservationSchemes drives memory-side LL/SC under each reservation
// scheme for the UNC and UPD policies, including the limited scheme with
// limit 1 (the beyond-limit hint makes the loser's SC fail locally).
func TestReservationSchemes(t *testing.T) {
	llsc := [][]OpSpec{
		ops(OpSpec{Op: proto.OpLL}, OpSpec{Op: proto.OpSC, Val: 5, Val2: UseLLSerial}),
		ops(OpSpec{Op: proto.OpLL}, OpSpec{Op: proto.OpSC, Val: 9, Val2: UseLLSerial}),
	}
	for _, pol := range []proto.Policy{proto.PolicyUNC, proto.PolicyUPD} {
		for _, rs := range []struct {
			r     Resv
			limit int
		}{{ResvBits, 4}, {ResvLimited, 1}, {ResvSerial, 0}} {
			name := pol.String() + "/" + rs.r.String()
			rep := runClean(t, name, Config{
				Nodes: 2, Policy: pol, CAS: proto.CASPlain,
				Resv: rs.r, ResvLimit: rs.limit, Progs: llsc,
			})
			t.Logf("%s: %d states", name, rep.States)
		}
	}
}

// TestUPDReadWindowThreeNodes rediscovers the documented single-phase
// write-update read window (EXPERIMENTS.md, the paper's §2.2-adjacent
// hazard): the home applies a write and pushes updates that reach the two
// sharers at different times, so a plain load on the not-yet-updated
// sharer, issued after a load on the updated sharer completed, observes
// the values out of order. The checker must flag it as an expected
// stale-read with the BFS-minimal trace. The same program under INV has
// its own, narrower, expected window (a recalled dirty line propagates
// through the home while an old sharer's invalidation is still in
// flight), which needs the longer recall path to open.
func TestUPDReadWindowThreeNodes(t *testing.T) {
	cfg := Config{
		Nodes: 3, Policy: proto.PolicyUPD, CAS: proto.CASPlain,
		Resv: ResvBits, ResvLimit: 4,
		Progs: [][]OpSpec{
			ops(OpSpec{Op: proto.OpStore, Val: 7}),
			ops(OpSpec{Op: proto.OpLoad}),
			ops(OpSpec{Op: proto.OpLoad}),
		},
		PreShare: []int{1, 2},
	}
	rep := Check(cfg)
	for _, v := range rep.Unexpected() {
		t.Errorf("unexpected violation:\n%v", v)
	}
	var win *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Kind == KindStaleRead {
			win = &rep.Violations[i]
		}
	}
	if win == nil {
		t.Fatalf("UPD read window not rediscovered (%d states)", rep.States)
	}
	if !win.Expected {
		t.Errorf("read window must be flagged expected, got %+v", *win)
	}
	// Minimal counterexample: issue the store, execute it at the home,
	// deliver one sharer's update, read there, then read on the stale
	// sharer. BFS guarantees no shorter trace exists; pin the length so
	// the trace stays minimal.
	if len(win.Trace) != 5 {
		t.Errorf("expected the 5-step minimal trace, got %d steps:\n%s",
			len(win.Trace), strings.Join(win.Trace, "\n"))
	}
	t.Logf("read-window counterexample:\n%v", *win)

	inv := cfg
	inv.Policy = proto.PolicyINV
	repINV := Check(inv)
	for _, v := range repINV.Unexpected() {
		t.Errorf("INV run of the window program: unexpected violation:\n%v", v)
	}
	for _, v := range repINV.Violations {
		if v.Kind == KindStaleRead && len(v.Trace) <= len(win.Trace) {
			t.Errorf("INV recall window should need a longer trace than UPD's %d steps, got:\n%v",
				len(win.Trace), v)
		}
	}

	// With a single reader the window needs no third node to observe the
	// reorder, so two-node UPD stays clean — the reason the exhaustive
	// two-node sweep passes for every primitive.
	two := Config{
		Nodes: 2, Policy: proto.PolicyUPD, CAS: proto.CASPlain,
		Resv: ResvBits, ResvLimit: 4,
		Progs: [][]OpSpec{
			ops(OpSpec{Op: proto.OpStore, Val: 7}),
			ops(OpSpec{Op: proto.OpLoad}, OpSpec{Op: proto.OpLoad}),
		},
		PreShare: []int{1},
	}
	repTwo := Check(two)
	for _, v := range repTwo.Violations {
		t.Errorf("two-node UPD must be clean, got:\n%v", v)
	}
}

// TestThreeNodeINVContention is a deeper INV run: three nodes race a
// store, an atomic, and loads through recall, replay, and eviction paths.
func TestThreeNodeINVContention(t *testing.T) {
	rep := runClean(t, "inv-3", Config{
		Nodes: 3, Policy: proto.PolicyINV, CAS: proto.CASPlain,
		Resv: ResvBits, ResvLimit: 4,
		Progs: [][]OpSpec{
			ops(OpSpec{Op: proto.OpStore, Val: 5}),
			ops(OpSpec{Op: proto.OpFetchAdd, Val: 1}),
			ops(OpSpec{Op: proto.OpLoad}, OpSpec{Op: proto.OpLoad}),
		},
		PreShare: []int{2},
	})
	t.Logf("inv-3: %d states, %d terminals", rep.States, rep.Terminals)
}
