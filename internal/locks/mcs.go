package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/mesh"
)

// MCSLock is the queue-based spin lock of Mellor-Crummey & Scott: each
// waiter spins on a flag in its own locally-homed block, so contention
// generates no global traffic. The paper's third synthetic application
// protects a counter with it, exercising the case where load_linked /
// store_conditional must simulate compare_and_swap (the release path).
//
// Queue-node "pointers" are encoded as processor id + 1 (0 is nil), since
// each processor owns one statically allocated qnode per lock.
type MCSLock struct {
	Tail arch.Addr
	Opts Options

	next   []arch.Addr // per processor: successor link (own block, home = processor)
	locked []arch.Addr // per processor: spin flag (own block, home = processor)
	serial []arch.Word // per processor: expected tail serial for bare-SC release

	// BareSCRelease uses a bare store_conditional carrying the serial
	// number captured at acquire to release the lock without re-reading
	// the tail — the optimization section 3.1 attributes to the
	// serial-number reservation scheme. Valid only with PrimLLSC and a
	// memory-side serial-number scheme (the lock's policy UNC or UPD).
	BareSCRelease bool
}

// NewMCSLock allocates the lock's tail under the given policy and one
// qnode per processor, homed at that processor for local spinning.
func NewMCSLock(m *machine.Machine, policy core.Policy, opts Options) *MCSLock {
	l := &MCSLock{}
	l.Init(m, policy, opts)
	return l
}

// Init (re)initializes the lock in place, performing exactly the
// allocation sequence NewMCSLock performs on a fresh lock. Reusing one
// MCSLock value across runs on machines of the same processor count keeps
// the per-run path free of heap allocation: the per-processor slices are
// retained when their length already matches.
func (l *MCSLock) Init(m *machine.Machine, policy core.Policy, opts Options) {
	procs := m.Procs()
	l.Tail = m.AllocSync(policy)
	l.Opts = opts
	l.BareSCRelease = false
	if len(l.next) != procs {
		l.next = make([]arch.Addr, procs)
		l.locked = make([]arch.Addr, procs)
		l.serial = make([]arch.Word, procs)
	} else {
		clear(l.serial)
	}
	for i := 0; i < procs; i++ {
		l.next[i] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
		l.locked[i] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
	}
}

// Acquire enqueues the processor and spins locally until it holds the lock.
func (l *MCSLock) Acquire(p *machine.Proc) {
	i := p.ID()
	me := arch.Word(i + 1)
	p.Store(l.next[i], 0)

	var pred arch.Word
	if l.BareSCRelease && l.Opts.Prim == PrimLLSC {
		// Capture the tail serial our enqueue produces, for the bare-SC
		// release.
		for {
			r := p.LoadLinkedFull(l.Tail)
			if p.StoreConditional(l.Tail, me) {
				pred = r.Value
				l.serial[i] = r.Serial + 1
				break
			}
		}
	} else {
		pred = l.Opts.Swap(p, l.Tail, me)
	}
	if l.Opts.Drop {
		// The tail is touched once per acquire; dropping the copy spares
		// the next enqueuer two serialized messages.
		p.DropCopy(l.Tail)
	}
	if pred == 0 {
		return
	}
	p.Store(l.locked[i], 1)
	p.Store(l.next[pred-1], me)
	for p.Load(l.locked[i]) != 0 {
		p.Compute(2)
	}
}

// Release passes the lock to the successor, if any.
func (l *MCSLock) Release(p *machine.Proc) {
	i := p.ID()
	me := arch.Word(i + 1)
	if p.Load(l.next[i]) == 0 {
		if l.releaseNoSuccessor(p, i, me) {
			if l.Opts.Drop {
				p.DropCopy(l.Tail)
			}
			return
		}
		// A successor announced itself between our check and the tail
		// update attempt; wait for its link.
		for p.Load(l.next[i]) == 0 {
			p.Compute(2)
		}
	}
	succ := p.Load(l.next[i])
	p.Store(l.locked[succ-1], 0)
}

// releaseNoSuccessor attempts the empty-queue release; it reports true when
// the lock was fully released (no successor to wake).
func (l *MCSLock) releaseNoSuccessor(p *machine.Proc, i int, me arch.Word) bool {
	if l.Opts.Prim == PrimFAP {
		return l.releaseNoCAS(p, i, me)
	}
	if l.BareSCRelease && l.Opts.Prim == PrimLLSC {
		// Bare store_conditional: succeeds iff the tail still holds our
		// node with the serial our enqueue produced — one memory access
		// instead of an LL/SC pair.
		return p.StoreConditionalSerial(l.Tail, 0, l.serial[i])
	}
	return l.Opts.CAS(p, l.Tail, me, 0)
}

// releaseNoCAS is Mellor-Crummey & Scott's release for machines with only
// fetch_and_store: it momentarily severs the queue and splices any
// "usurpers" that slipped in between the two swaps.
func (l *MCSLock) releaseNoCAS(p *machine.Proc, i int, me arch.Word) bool {
	oldTail := p.FetchStore(l.Tail, 0)
	if oldTail == me {
		return true
	}
	usurper := p.FetchStore(l.Tail, oldTail)
	for p.Load(l.next[i]) == 0 {
		p.Compute(2)
	}
	succ := p.Load(l.next[i])
	if usurper != 0 {
		// Processors entered between the swaps; our successors go behind
		// them.
		p.Store(l.next[usurper-1], succ)
	} else {
		p.Store(l.locked[succ-1], 0)
	}
	return true
}
