// Package figures regenerates every table and figure of the paper's
// evaluation section: Table 1 (serialized network messages per store),
// Figure 2 (contention histograms of the real applications), Figures 3-5
// (average time per counter update for the three synthetic applications
// across the primitive/policy/auxiliary design space), and Figure 6 (total
// elapsed time of the real applications). It is shared by cmd/figures and
// the benchmark suite.
package figures

import (
	"sync"

	"dsm/internal/apps"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
)

// Pattern aliases the synthetic sharing pattern for brevity.
type Pattern = apps.Pattern

// Bar is one bar of the paper's figures 3-6: a primitive family under a
// coherence policy with a choice of auxiliary instructions and CAS variant.
type Bar struct {
	Label   string
	Policy  core.Policy
	Prim    locks.Prim
	Variant core.CASVariant // INV-policy CAS implementation
	LoadEx  bool            // pair compare_and_swap with load_exclusive
	Drop    bool            // issue drop_copy after updates
}

// Opts converts the bar into algorithm options.
func (b Bar) Opts() locks.Options {
	return locks.Options{Prim: b.Prim, UseLoadExclusive: b.LoadEx, Drop: b.Drop}
}

// SyntheticBars returns the paper's 21 bars in figure order: UNC
// (FAP/LLSC/CAS), INV without and with drop_copy (FAP, LLSC, and the four
// CAS implementations INV, INVd, INVs, INV+load_exclusive), and UPD
// without and with drop_copy (FAP/LLSC/CAS).
func SyntheticBars() []Bar {
	var bars []Bar
	add := func(label string, p core.Policy, pr locks.Prim, v core.CASVariant, ldex, drop bool) {
		bars = append(bars, Bar{Label: label, Policy: p, Prim: pr, Variant: v, LoadEx: ldex, Drop: drop})
	}
	// UNC
	add("UNC FAP", core.PolicyUNC, locks.PrimFAP, core.CASPlain, false, false)
	add("UNC LLSC", core.PolicyUNC, locks.PrimLLSC, core.CASPlain, false, false)
	add("UNC CAS", core.PolicyUNC, locks.PrimCAS, core.CASPlain, false, false)
	// INV, without and with drop_copy
	for _, drop := range []bool{false, true} {
		suffix := ""
		if drop {
			suffix = "+drop"
		}
		add("INV FAP"+suffix, core.PolicyINV, locks.PrimFAP, core.CASPlain, false, drop)
		add("INV LLSC"+suffix, core.PolicyINV, locks.PrimLLSC, core.CASPlain, false, drop)
		add("INV CAS"+suffix, core.PolicyINV, locks.PrimCAS, core.CASPlain, false, drop)
		add("INVd CAS"+suffix, core.PolicyINV, locks.PrimCAS, core.CASDeny, false, drop)
		add("INVs CAS"+suffix, core.PolicyINV, locks.PrimCAS, core.CASShare, false, drop)
		add("INV CAS+ldex"+suffix, core.PolicyINV, locks.PrimCAS, core.CASPlain, true, drop)
	}
	// UPD, without and with drop_copy
	for _, drop := range []bool{false, true} {
		suffix := ""
		if drop {
			suffix = "+drop"
		}
		add("UPD FAP"+suffix, core.PolicyUPD, locks.PrimFAP, core.CASPlain, false, drop)
		add("UPD LLSC"+suffix, core.PolicyUPD, locks.PrimLLSC, core.CASPlain, false, drop)
		add("UPD CAS"+suffix, core.PolicyUPD, locks.PrimCAS, core.CASPlain, false, drop)
	}
	return bars
}

// RunOpts scales the reproduction: the full paper configuration is 64
// processors; smaller settings keep tests and benchmarks fast.
type RunOpts struct {
	Procs  int // simulated processors
	Rounds int // barrier-separated rounds per synthetic pattern

	// Par is the number of independent simulation runs executed
	// concurrently on host goroutines (see Sweep). 0 means GOMAXPROCS;
	// 1 restores fully serial execution. Results are identical for any
	// value: determinism is per-run, parallelism is across runs.
	Par int

	// Real-application sizes (figure 2 and 6).
	TCSize  int // transitive-closure vertices
	Wires   int // LocusRoute wires (0 = 3*Procs)
	Columns int // Cholesky columns (0 = 3*Procs)
}

// Defaults is the paper-scale configuration.
func Defaults() RunOpts {
	return RunOpts{Procs: 64, Rounds: 16, TCSize: 32}
}

// Small is a reduced configuration for tests and quick runs.
func Small() RunOpts {
	return RunOpts{Procs: 16, Rounds: 6, TCSize: 12}
}

// machinePool recycles machines between the hundreds of independent runs a
// figure sweep performs. Machine construction dominates short runs (the
// cache slabs alone are ~100KB per node pair), and machine.Reset restores a
// used machine to a state that replays a fresh one cycle for cycle, so
// reuse changes host time only. Machines of mismatched geometry (Reset
// returns false) are simply dropped back to the GC.
var machinePool sync.Pool

// acquireMachine returns a machine configured as cfg, reusing a pooled one
// when its structure matches.
func acquireMachine(cfg core.Config) *machine.Machine {
	if m, ok := machinePool.Get().(*machine.Machine); ok {
		m.ClearPooled()
		if m.Reset(cfg) {
			return m
		}
	}
	return machine.New(cfg)
}

// ReleaseMachine returns a machine to the reuse pool. The machine must be
// quiescent (between runs) and must not be used by the caller afterwards.
// Releasing the same machine twice panics: the second release would let
// the pool hand one machine to two concurrent runs, corrupting both (the
// same freed-flag discipline the pooled protocol messages enforce).
func ReleaseMachine(m *machine.Machine) {
	if m == nil {
		return
	}
	if !m.MarkPooled() {
		panic("figures: ReleaseMachine called twice on the same machine; " +
			"the machine is pool property after the first release")
	}
	machinePool.Put(m)
}

// NewMachine builds (or recycles) a machine for one bar under the given
// scale. Pair with ReleaseMachine when the machine's statistics are no
// longer needed.
func NewMachine(o RunOpts, b Bar) *machine.Machine {
	cfg := core.DefaultConfig()
	cfg.Nodes = o.Procs
	w := 1
	for w*w < o.Procs {
		w++
	}
	cfg.Mesh.Width = w
	cfg.Mesh.Height = (o.Procs + w - 1) / w
	cfg.CAS = b.Variant
	return acquireMachine(cfg)
}

// Patterns returns the paper's ten sharing patterns: no contention with
// average write runs of 1, 1.5, 2, 3, and 10, and contention levels 2, 4,
// 8, 16, and 64 (clamped to the machine size).
func Patterns(o RunOpts) []Pattern {
	pats := []Pattern{
		{Contention: 1, WriteRun: 1, Rounds: o.Rounds},
		{Contention: 1, WriteRun: 1.5, Rounds: o.Rounds},
		{Contention: 1, WriteRun: 2, Rounds: o.Rounds},
		{Contention: 1, WriteRun: 3, Rounds: o.Rounds},
		{Contention: 1, WriteRun: 10, Rounds: o.Rounds},
	}
	seen := make(map[int]bool)
	for _, c := range []int{2, 4, 8, 16, 64} {
		if c > o.Procs {
			c = o.Procs
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		pats = append(pats, Pattern{Contention: c, Rounds: o.Rounds})
	}
	return pats
}
