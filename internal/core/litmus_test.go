package core

import (
	"testing"

	"dsm/internal/arch"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// Litmus tests: the simulated machine has blocking, in-order processors
// over a directory protocol that serializes writes at the home and
// collects invalidation acknowledgments before a write completes, so
// executions must be sequentially consistent. These classic tests verify
// the forbidden outcomes never appear, across coherence policies, by
// enumerating many deterministic interleavings (varying issue skew).

// TestLitmusMessagePassing: proc0 writes data then flag; proc1 reads flag
// then data. Forbidden: flag=1 with data=0.
func TestLitmusMessagePassing(t *testing.T) {
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for skew := 0; skew < 40; skew += 3 {
				h := newH(t)
				data := h.addrAtHome(1, 0)
				flag := h.addrAtHome(2, 0)
				h.sys.SetPolicy(data, pol)
				h.sys.SetPolicy(flag, pol)

				var rFlag, rData arch.Word
				remaining := 2
				// Proc 0: data=1; flag=1 (sequential, blocking).
				h.eng.At(0, func() {
					h.sys.Cache(0).Issue(Request{Op: OpStore, Addr: data, Val: 1,
						Done: func(Result) {
							h.sys.Cache(0).Issue(Request{Op: OpStore, Addr: flag, Val: 1,
								Done: func(Result) { remaining-- }})
						}})
				})
				// Proc 1: r1=flag; r2=data.
				h.eng.At(sim0(skew), func() {
					h.sys.Cache(1).Issue(Request{Op: OpLoad, Addr: flag,
						Done: func(r1 Result) {
							rFlag = r1.Value
							h.sys.Cache(1).Issue(Request{Op: OpLoad, Addr: data,
								Done: func(r2 Result) {
									rData = r2.Value
									remaining--
								}})
						}})
				})
				for remaining > 0 {
					if !h.eng.Step() {
						t.Fatal("litmus deadlocked")
					}
				}
				h.drain()
				if rFlag == 1 && rData == 0 {
					t.Fatalf("%s skew %d: observed flag=1, data=0 (SC violation)", pol, skew)
				}
			}
		})
	}
}

// TestLitmusStoreBuffering: proc0 writes x, reads y; proc1 writes y,
// reads x. Forbidden under SC: both read 0.
func TestLitmusStoreBuffering(t *testing.T) {
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for skew := 0; skew < 40; skew += 3 {
				h := newH(t)
				x := h.addrAtHome(1, 0)
				y := h.addrAtHome(2, 0)
				h.sys.SetPolicy(x, pol)
				h.sys.SetPolicy(y, pol)

				var r0, r1 arch.Word
				remaining := 2
				h.eng.At(0, func() {
					h.sys.Cache(0).Issue(Request{Op: OpStore, Addr: x, Val: 1,
						Done: func(Result) {
							h.sys.Cache(0).Issue(Request{Op: OpLoad, Addr: y,
								Done: func(r Result) { r0 = r.Value; remaining-- }})
						}})
				})
				h.eng.At(sim0(skew), func() {
					h.sys.Cache(1).Issue(Request{Op: OpStore, Addr: y, Val: 1,
						Done: func(Result) {
							h.sys.Cache(1).Issue(Request{Op: OpLoad, Addr: x,
								Done: func(r Result) { r1 = r.Value; remaining-- }})
						}})
				})
				for remaining > 0 {
					if !h.eng.Step() {
						t.Fatal("litmus deadlocked")
					}
				}
				h.drain()
				if r0 == 0 && r1 == 0 {
					t.Fatalf("%s skew %d: both reads 0 (store buffering observed)", pol, skew)
				}
			}
		})
	}
}

// TestLitmusCoherence: all processors must agree on the order of writes to
// a single location (per-location coherence). Two writers, two readers
// each reading the location twice: readers must not see the two values in
// opposite orders.
func TestLitmusCoherence(t *testing.T) {
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for skew := 0; skew < 30; skew += 5 {
				h := newH(t)
				x := h.addrAtHome(1, 0)
				h.sys.SetPolicy(x, pol)
				var r = [2][2]arch.Word{}
				remaining := 4
				store := func(node int, v arch.Word, at int) {
					h.eng.At(sim0(at), func() {
						h.sys.Cache(nodeOf(node)).Issue(Request{Op: OpStore, Addr: x, Val: v,
							Done: func(Result) { remaining-- }})
					})
				}
				read2 := func(node, idx, at int) {
					h.eng.At(sim0(at), func() {
						h.sys.Cache(nodeOf(node)).Issue(Request{Op: OpLoad, Addr: x,
							Done: func(a Result) {
								h.sys.Cache(nodeOf(node)).Issue(Request{Op: OpLoad, Addr: x,
									Done: func(b Result) {
										r[idx][0], r[idx][1] = a.Value, b.Value
										remaining--
									}})
							}})
					})
				}
				store(0, 1, 0)
				store(1, 2, skew)
				read2(2, 0, skew/2)
				read2(3, 1, skew/3)
				for remaining > 0 {
					if !h.eng.Step() {
						t.Fatal("litmus deadlocked")
					}
				}
				h.drain()
				// Forbidden: reader A sees 1 then 2 while reader B sees 2 then 1.
				if r[0][0] == 1 && r[0][1] == 2 && r[1][0] == 2 && r[1][1] == 1 {
					t.Fatalf("%s skew %d: readers disagree on write order: %v", pol, skew, r)
				}
				if r[1][0] == 1 && r[1][1] == 2 && r[0][0] == 2 && r[0][1] == 1 {
					t.Fatalf("%s skew %d: readers disagree on write order: %v", pol, skew, r)
				}
			}
		})
	}
}

// TestLitmusAtomicityRMW: a fetch_and_add must never interleave with a
// racing store such that the add is lost entirely and the counter exceeds
// all writes. Enumerate skews for FAA vs store.
func TestLitmusAtomicityRMW(t *testing.T) {
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for skew := 0; skew < 60; skew += 4 {
				h := newH(t)
				x := h.addrAtHome(1, 0)
				h.sys.SetPolicy(x, pol)
				remaining := 2
				h.eng.At(0, func() {
					h.sys.Cache(0).Issue(Request{Op: OpFetchAdd, Addr: x, Val: 1,
						Done: func(Result) { remaining-- }})
				})
				h.eng.At(sim0(skew), func() {
					h.sys.Cache(1).Issue(Request{Op: OpStore, Addr: x, Val: 10,
						Done: func(Result) { remaining-- }})
				})
				for remaining > 0 {
					if !h.eng.Step() {
						t.Fatal("litmus deadlocked")
					}
				}
				h.drain()
				v := h.do(2, OpLoad, x).Value
				// Legal final values: 11 (store then add) or 10 (add then
				// store). 1 would mean the store was lost; anything else
				// means atomicity broke.
				if v != 10 && v != 11 {
					t.Fatalf("%s skew %d: final value %d, want 10 or 11", pol, skew, v)
				}
			}
		})
	}
}

func sim0(n int) sim.Time { return sim.Time(n) }

func nodeOf(n int) mesh.NodeID { return mesh.NodeID(n) }
