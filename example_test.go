package dsm_test

import (
	"fmt"

	"dsm"
)

// Example reproduces the library's core comparison in eight lines: the
// same shared counter updated under each coherence policy. Simulation is
// deterministic, so the final values (and, on any one build of this
// library, the cycle counts) are reproducible.
func Example() {
	for _, policy := range []dsm.Policy{dsm.INV, dsm.UPD, dsm.UNC} {
		m := dsm.NewSmall(8)
		counter := m.AllocSync(policy)
		m.Run(func(p *dsm.Proc) {
			for i := 0; i < 3; i++ {
				p.FetchAdd(counter, 1)
			}
		})
		fmt.Printf("%s: counter=%d\n", policy, m.Peek(counter))
	}
	// Output:
	// INV: counter=24
	// UPD: counter=24
	// UNC: counter=24
}

// ExampleProc_LoadLinked shows the LL/SC retry idiom every lock-free
// structure in the paper builds on.
func ExampleProc_LoadLinked() {
	m := dsm.NewSmall(4)
	counter := m.AllocSync(dsm.INV)
	m.Run(func(p *dsm.Proc) {
		for {
			v := p.LoadLinked(counter)
			if p.StoreConditional(counter, v+1) {
				break
			}
		}
	})
	fmt.Println(m.Peek(counter))
	// Output: 4
}

// ExampleMachine_AllocSyncAt places a synchronization variable at a chosen
// home node and inspects an operation's serialized network messages — the
// metric of the paper's Table 1.
func ExampleMachine_AllocSyncAt() {
	m := dsm.NewSmall(4)
	remote := m.AllocSyncAt(3, dsm.UNC) // homed away from processor 0
	progs := make([]func(*dsm.Proc), m.Procs())
	progs[0] = func(p *dsm.Proc) {
		r := p.Do(dsm.Request{Op: dsm.OpFetchAdd, Addr: remote, Val: 1})
		fmt.Println("serialized messages:", r.Chain)
	}
	m.RunEach(progs)
	// Output: serialized messages: 2
}
