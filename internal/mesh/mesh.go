// Package mesh models the interconnect of the simulated multiprocessor: a
// two-dimensional wormhole-routed mesh with dimension-order routing.
//
// Following the paper's methodology, contention is modeled at the entry and
// exit of the network (the injection and ejection ports of each node's
// network interface) and at the memory modules, but not at internal routers:
// in-flight transit time is a deterministic function of distance and message
// length.
package mesh

import (
	"fmt"

	"dsm/internal/sim"
)

// NodeID identifies a processing node. Nodes are numbered row-major in the
// mesh: node id = y*Width + x.
type NodeID int

// Config holds the network timing parameters, in cycles.
type Config struct {
	Width  int // mesh X dimension
	Height int // mesh Y dimension

	HopDelay   sim.Time // router/wire delay per hop for the head flit
	FlitDelay  sim.Time // cycles per flit through a port (bandwidth)
	FlitBytes  int      // flit width in bytes
	LocalDelay sim.Time // delivery delay for same-node messages (bypass)

	// ModelRouters additionally serializes messages on every internal
	// link along the dimension-order route. The paper's methodology
	// models contention only at the network entry and exit; this mode
	// exists to test that simplification (see the router ablation
	// benchmark).
	ModelRouters bool
}

// DefaultConfig is an 8x8 mesh with timing loosely modeled on early-90s
// wormhole networks (2 cycles/hop, 8-byte flits at 1 flit/cycle/port).
func DefaultConfig() Config {
	return Config{
		Width:      8,
		Height:     8,
		HopDelay:   2,
		FlitDelay:  1,
		FlitBytes:  8,
		LocalDelay: 1,
	}
}

// Stats aggregates network traffic counters.
type Stats struct {
	Messages   uint64 `json:"messages"`    // mesh messages sent (excludes same-node bypass)
	LocalMsgs  uint64 `json:"local_msgs"`  // same-node deliveries
	Flits      uint64 `json:"flits"`       // total flits injected
	HopsTotal  uint64 `json:"hops_total"`  // sum of hop counts over messages
	InjectWait uint64 `json:"inject_wait"` // cycles messages waited for the injection port
	EjectWait  uint64 `json:"eject_wait"`  // cycles messages waited for the ejection port
	LinkWait   uint64 `json:"link_wait"`   // cycles head flits waited for internal links (ModelRouters)
}

// Mesh is the interconnect instance. It serializes messages through each
// node's injection and ejection port and delivers them by scheduling events
// on the engine.
//
// Transit never schedules per-hop events: a message's whole path is priced
// at send time from tables precomputed per (src, dst) at construction, and
// exactly one delivery event is scheduled at the computed arrival time.
// Event count per message is therefore O(1) regardless of distance.
type Mesh struct {
	cfg    Config
	eng    *sim.Engine
	inject []sim.Time // per node: injection port free at
	eject  []sim.Time // per node: ejection port free at
	// links holds, per node and outgoing direction, when that directed
	// channel to the adjacent router is next free (ModelRouters mode).
	// Indexed node*4+direction; a flat slice instead of a map keyed by
	// (from, to) pairs, since hashing per hop is pure overhead.
	links []sim.Time

	// Tables indexed by src*Nodes()+dst, filled once at construction.
	// hops is the dimension-order distance; headLat the head flit's
	// contention-free pipeline latency (hops*HopDelay), so the router-off
	// fast path prices a route with one load instead of per-send
	// coordinate arithmetic.
	hops    []int32
	headLat []sim.Time
	// In ModelRouters mode the dimension-order route of pair p is the
	// link-index sequence routeLinks[routeOff[p]:routeOff[p+1]]; walking
	// it replaces per-hop coordinate/direction recomputation with a flat
	// scan over precomputed links indices.
	routeOff   []int32
	routeLinks []int32

	stats Stats
}

// Outgoing link directions from a router (ModelRouters mode).
const (
	dirEast  = iota // +x
	dirWest         // -x
	dirSouth        // +y (row-major: higher y)
	dirNorth        // -y
	numDirs
)

// New creates a mesh over the given engine. It panics on a non-positive
// geometry, which indicates a programming error in machine assembly.
func New(eng *sim.Engine, cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("mesh: invalid geometry %dx%d", cfg.Width, cfg.Height))
	}
	n := cfg.Width * cfg.Height
	m := &Mesh{
		cfg:     cfg,
		eng:     eng,
		inject:  make([]sim.Time, n),
		eject:   make([]sim.Time, n),
		links:   make([]sim.Time, n*numDirs),
		hops:    make([]int32, n*n),
		headLat: make([]sim.Time, n*n),
	}
	for src := 0; src < n; src++ {
		sx, sy := m.Coord(NodeID(src))
		for dst := 0; dst < n; dst++ {
			dx, dy := m.Coord(NodeID(dst))
			h := abs(sx-dx) + abs(sy-dy)
			p := src*n + dst
			m.hops[p] = int32(h)
			m.headLat[p] = sim.Time(h) * cfg.HopDelay
		}
	}
	if cfg.ModelRouters {
		m.buildRoutes(n)
	}
	return m
}

// buildRoutes precomputes, for every (src, dst) pair, the directed link
// indices along the dimension-order route (X then Y), concatenated into one
// slab. Only ModelRouters mode walks routes, so the tables are built only
// then.
func (m *Mesh) buildRoutes(n int) {
	m.routeOff = make([]int32, n*n+1)
	total := 0
	for p := range m.hops {
		total += int(m.hops[p])
	}
	m.routeLinks = make([]int32, 0, total)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			m.routeOff[src*n+dst] = int32(len(m.routeLinks))
			sx, sy := m.Coord(NodeID(src))
			dx, dy := m.Coord(NodeID(dst))
			cur := src
			xd, xdir := sign(dx-sx), dirEast
			if dx < sx {
				xdir = dirWest
			}
			for x := sx; x != dx; x += xd {
				m.routeLinks = append(m.routeLinks, int32(cur*numDirs+xdir))
				cur = sy*m.cfg.Width + x + xd
			}
			yd, ydir := sign(dy-sy), dirSouth
			if dy < sy {
				ydir = dirNorth
			}
			for y := sy; y != dy; y += yd {
				m.routeLinks = append(m.routeLinks, int32(cur*numDirs+ydir))
				cur = (y+yd)*m.cfg.Width + dx
			}
		}
	}
	m.routeOff[n*n] = int32(len(m.routeLinks))
}

// Nodes returns the number of nodes in the mesh.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// Stats returns a snapshot of the traffic counters.
func (m *Mesh) Stats() Stats { return m.stats }

// ResetStats clears the traffic counters. Port and link reservations — the
// times at which each injection port, ejection port, and (in ModelRouters
// mode) internal link next becomes free — are deliberately kept: they are
// simulation state, not statistics, and in-flight messages still occupy
// them. Counters reset mid-run therefore exclude the waiting already
// accumulated but remain consistent with the traffic that follows.
func (m *Mesh) ResetStats() { m.stats = Stats{} }

// Reset returns the mesh to its post-New state: all port and link
// reservations released and traffic counters cleared. The route and latency
// tables depend only on geometry and are kept. Reset is only valid between
// runs, with no messages in flight.
func (m *Mesh) Reset() {
	clear(m.inject)
	clear(m.eject)
	clear(m.links)
	m.stats = Stats{}
}

// Coord returns the (x, y) position of a node.
func (m *Mesh) Coord(n NodeID) (x, y int) {
	return int(n) % m.cfg.Width, int(n) / m.cfg.Width
}

// Hops returns the dimension-order routing distance between two nodes.
func (m *Mesh) Hops(a, b NodeID) int {
	return int(m.hops[int(a)*m.Nodes()+int(b)])
}

// Flits returns the number of flits occupied by a message carrying
// payload bytes plus an 8-byte header, rounded up to whole flits.
func (m *Mesh) Flits(payloadBytes int) int {
	const headerBytes = 8
	total := headerBytes + payloadBytes
	f := (total + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// Send transmits a message of the given flit count from src to dst and
// invokes deliver when the tail flit has been ejected at the destination.
// Same-node messages bypass the network after LocalDelay. Send panics on an
// out-of-range node id or non-positive flit count (programming errors).
func (m *Mesh) Send(src, dst NodeID, flits int, deliver func()) {
	m.eng.At(m.transit(src, dst, flits), deliver)
}

// SendArg is Send delivering via a (handler, payload) pair instead of a
// closure: on arrival it invokes deliver(arg). With a preallocated handler
// and a pointer payload, a send allocates nothing — this is the protocol
// layer's hot path.
func (m *Mesh) SendArg(src, dst NodeID, flits int, deliver func(any), arg any) {
	m.eng.AtArg(m.transit(src, dst, flits), deliver, arg)
}

// transit books the message through the ports (and, in ModelRouters mode,
// the internal links) and returns the absolute delivery time.
func (m *Mesh) transit(src, dst NodeID, flits int) sim.Time {
	if int(src) < 0 || int(src) >= m.Nodes() || int(dst) < 0 || int(dst) >= m.Nodes() {
		panic(fmt.Sprintf("mesh: send %d->%d outside %d-node mesh", src, dst, m.Nodes()))
	}
	if flits <= 0 {
		panic("mesh: non-positive flit count")
	}
	now := m.eng.Now()
	if src == dst {
		m.stats.LocalMsgs++
		return now + m.cfg.LocalDelay
	}

	p := int(src)*m.Nodes() + int(dst)
	m.stats.Messages++
	m.stats.Flits += uint64(flits)
	m.stats.HopsTotal += uint64(m.hops[p])

	// Injection port: the message occupies the port for flits*FlitDelay.
	injStart := now
	if m.inject[src] > injStart {
		m.stats.InjectWait += uint64(m.inject[src] - injStart)
		injStart = m.inject[src]
	}
	serialize := sim.Time(flits) * m.cfg.FlitDelay
	m.inject[src] = injStart + serialize

	// Wormhole transit: head flit pipeline through the routers, priced
	// from the precomputed tables.
	var headArrive sim.Time
	if m.cfg.ModelRouters {
		headArrive = m.routeThrough(p, injStart, serialize)
	} else {
		headArrive = injStart + m.headLat[p]
	}

	// Ejection port: serialize the whole message out of the network.
	ejStart := headArrive
	if m.eject[dst] > ejStart {
		m.stats.EjectWait += uint64(m.eject[dst] - ejStart)
		ejStart = m.eject[dst]
	}
	done := ejStart + serialize
	m.eject[dst] = done
	return done
}

// routeThrough walks the precomputed dimension-order route of pair p,
// serializing the message on each directed link; it returns the head
// flit's arrival time at the destination router. This is the only per-hop
// loop in the simulator, exists solely for the router-contention ablation,
// and still schedules no events — contention is priced inline against the
// link reservation times.
func (m *Mesh) routeThrough(p int, depart, serialize sim.Time) sim.Time {
	t := depart
	for _, idx := range m.routeLinks[m.routeOff[p]:m.routeOff[p+1]] {
		start := t
		if m.links[idx] > start {
			m.stats.LinkWait += uint64(m.links[idx] - start)
			start = m.links[idx]
		}
		m.links[idx] = start + serialize
		t = start + m.cfg.HopDelay
	}
	return t
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
