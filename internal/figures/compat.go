package figures

import (
	"dsm/internal/exper"
	"dsm/internal/machine"
)

// Experiment execution moved to internal/exper (the point spec, machine
// reuse pool, and parallel sweep executor live there); these aliases keep
// the original figures names working for existing callers during the
// migration. New code should use exper directly — figures is the
// presentation layer and only renders experiment results.

// Pattern aliases the synthetic sharing pattern for brevity.
type Pattern = exper.Pattern

// Bar is one bar of the paper's figures 3-6 (see exper.Bar).
type Bar = exper.Bar

// RunOpts scales an experiment (see exper.RunOpts).
type RunOpts = exper.RunOpts

// RealApp identifies one of the paper's real applications (see exper.App).
type RealApp = exper.App

// Table1Row is one measured row of Table 1 (see exper.Table1Row).
type Table1Row = exper.Table1Row

const (
	AppLocusRoute = exper.AppLocusRoute
	AppCholesky   = exper.AppCholesky
	AppTClosure   = exper.AppTClosure
)

// SyntheticBars returns the paper's 21 bars in figure order.
func SyntheticBars() []Bar { return exper.SyntheticBars() }

// Defaults is the paper-scale configuration.
func Defaults() RunOpts { return exper.Defaults() }

// Small is a reduced configuration for tests and quick runs.
func Small() RunOpts { return exper.Small() }

// Patterns returns the paper's ten sharing patterns.
func Patterns(o RunOpts) []Pattern { return exper.Patterns(o) }

// RealApps lists the figure 2/6 applications in paper order.
func RealApps() []RealApp { return exper.RealApps() }

// NewMachine builds (or recycles) a machine for one bar.
func NewMachine(o RunOpts, b Bar) *machine.Machine { return exper.NewMachine(o, b) }

// ReleaseMachine returns a machine to the exper reuse pool.
func ReleaseMachine(m *machine.Machine) { exper.ReleaseMachine(m) }

// Sweep fans job(0)..job(n-1) across par workers (see exper.Sweep).
func Sweep(n, par int, job func(i int)) { exper.Sweep(n, par, job) }

// Table1 measures Table 1's serialized message counts.
func Table1() []Table1Row { return exper.Table1() }

// Table1Par is Table1 with an explicit sweep width.
func Table1Par(par int) []Table1Row { return exper.Table1Par(par) }

// RunReal executes one real application under one bar configuration.
func RunReal(app RealApp, o RunOpts, bar Bar) (*machine.Machine, uint64) {
	return exper.RunReal(app, o, bar)
}

// TCEfficiency measures Transitive Closure's parallel efficiency.
func TCEfficiency(o RunOpts, bar Bar) float64 { return exper.TCEfficiency(o, bar) }
