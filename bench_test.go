// Benchmarks regenerating the paper's evaluation artifacts. Each table and
// figure has a benchmark family; the simulated-cycle measurements are
// reported as custom metrics (sim-cycles/update or sim-cycles), since the
// reproduction target is simulated time, not host time.
//
// The benchmarks run at a reduced scale (16 processors) so the whole suite
// completes quickly; cmd/figures regenerates the artifacts at the paper's
// full 64-processor scale.
package dsm_test

import (
	"fmt"
	"runtime"
	"testing"

	"dsm/internal/apps"
	"dsm/internal/core"
	"dsm/internal/dir"
	"dsm/internal/exper"
	"dsm/internal/hostbench"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

func benchOpts() exper.RunOpts { return exper.RunOpts{Procs: 16, Rounds: 6, TCSize: 10} }

// BenchmarkTable1 regenerates Table 1 (serialized network messages per
// store, all seven coherence situations) and validates it against the
// paper's counts.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range exper.Table1() {
			if r.Got != r.Paper {
				b.Fatalf("%s: %d != paper %d", r.Case, r.Got, r.Paper)
			}
		}
	}
}

// syntheticBench runs one figure-3/4/5 bar across the paper's sharing
// patterns and reports the average simulated cycles per counter update.
func syntheticBench(b *testing.B, app func(*machine.Machine, core.Policy, locks.Options, apps.Pattern) apps.SyntheticResult, bar exper.Bar) {
	o := benchOpts()
	pats := exper.Patterns(o)
	var cycles, updates float64
	for i := 0; i < b.N; i++ {
		for _, pat := range pats {
			m := exper.NewMachine(o, bar)
			res := app(m, bar.Policy, bar.Opts(), pat)
			cycles += float64(res.Elapsed)
			updates += float64(res.Updates)
		}
	}
	if updates > 0 {
		b.ReportMetric(cycles/updates, "sim-cycles/update")
	}
}

// BenchmarkFig3 regenerates Figure 3 (lock-free counter): every bar of the
// paper's figure, across all ten sharing patterns.
func BenchmarkFig3(b *testing.B) {
	for _, bar := range exper.SyntheticBars() {
		bar := bar
		b.Run(bar.Label, func(b *testing.B) { syntheticBench(b, apps.CounterApp, bar) })
	}
}

// BenchmarkFig4 regenerates Figure 4 (counter under a test-and-test-and-set
// lock with bounded exponential backoff).
func BenchmarkFig4(b *testing.B) {
	for _, bar := range exper.SyntheticBars() {
		bar := bar
		b.Run(bar.Label, func(b *testing.B) { syntheticBench(b, apps.TTSApp, bar) })
	}
}

// BenchmarkFig5 regenerates Figure 5 (counter under an MCS queue lock).
func BenchmarkFig5(b *testing.B) {
	for _, bar := range exper.SyntheticBars() {
		bar := bar
		b.Run(bar.Label, func(b *testing.B) { syntheticBench(b, apps.MCSApp, bar) })
	}
}

// BenchmarkFig2 regenerates Figure 2: the real applications under each
// policy, reporting the share of uncontended atomic accesses and the
// write-run mean (the paper's section 4.2 observables).
func BenchmarkFig2(b *testing.B) {
	o := benchOpts()
	for _, app := range exper.RealApps() {
		for _, pol := range []core.Policy{core.PolicyINV, core.PolicyUNC, core.PolicyUPD} {
			app, pol := app, pol
			b.Run(app.String()+"/"+pol.String(), func(b *testing.B) {
				var uncontended, writeRun float64
				for i := 0; i < b.N; i++ {
					m, _ := exper.RunReal(app, o, exper.Bar{Policy: pol, Prim: locks.PrimFAP})
					uncontended = m.System().Contention().Histogram().Percent(1)
					wr := m.System().WriteRuns()
					wr.Flush()
					writeRun = wr.Mean()
				}
				b.ReportMetric(uncontended, "%uncontended")
				b.ReportMetric(writeRun, "write-run")
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: total elapsed simulated time of the
// real applications per primitive/policy configuration (representative
// bars; cmd/figures runs the full set).
func BenchmarkFig6(b *testing.B) {
	o := benchOpts()
	bars := []exper.Bar{
		{Label: "UNC FAP", Policy: core.PolicyUNC, Prim: locks.PrimFAP},
		{Label: "UNC LLSC", Policy: core.PolicyUNC, Prim: locks.PrimLLSC},
		{Label: "INV FAP", Policy: core.PolicyINV, Prim: locks.PrimFAP},
		{Label: "INV CAS", Policy: core.PolicyINV, Prim: locks.PrimCAS},
		{Label: "INV CAS+ldex", Policy: core.PolicyINV, Prim: locks.PrimCAS, LoadEx: true},
		{Label: "INV LLSC", Policy: core.PolicyINV, Prim: locks.PrimLLSC},
		{Label: "UPD FAP", Policy: core.PolicyUPD, Prim: locks.PrimFAP},
		{Label: "UPD CAS", Policy: core.PolicyUPD, Prim: locks.PrimCAS},
	}
	for _, app := range exper.RealApps() {
		for _, bar := range bars {
			app, bar := app, bar
			b.Run(app.String()+"/"+bar.Label, func(b *testing.B) {
				var elapsed uint64
				for i := 0; i < b.N; i++ {
					_, elapsed = exper.RunReal(app, o, bar)
				}
				b.ReportMetric(float64(elapsed), "sim-cycles")
			})
		}
	}
}

// ---------------------------------------------------- host-time family ----
//
// Unlike the figure benchmarks above (whose observable is simulated cycles),
// the BenchmarkHost* family measures how fast the simulator itself runs on
// the host: ns/event and allocs/event for the engine hot path, and the
// wall-clock effect of fanning independent runs across cores. cmd/benchjson
// runs the same bodies and records a JSON baseline per PR.

// BenchmarkHostEngine measures the discrete-event core: a self-rescheduling
// cascade mixing fired and cancelled events.
func BenchmarkHostEngine(b *testing.B) { hostbench.Engine(b) }

// BenchmarkHostMachine measures an end-to-end contended-counter simulation,
// reporting the alloc profile of the full machine stack per event.
func BenchmarkHostMachine(b *testing.B) { hostbench.MachineRun(b) }

// BenchmarkMeshTransit measures a single mesh message across varying
// Manhattan distances, with and without internal-router modeling. The
// events/msg metric pins the hop-collapsed transit: one event per message
// at any distance.
func BenchmarkMeshTransit(b *testing.B) {
	for _, routers := range []bool{false, true} {
		mode := "entry-exit"
		if routers {
			mode = "routers"
		}
		for _, dist := range []int{1, 4, 7, 14} {
			b.Run(fmt.Sprintf("%s/hops=%d", mode, dist), hostbench.MeshTransit(dist, routers))
		}
	}
}

// BenchmarkHostSweep measures regenerating a reduced figure-3 grid serially
// (par=1) and with one worker per host core (par=max); the ratio is the
// run-level parallel speedup on this host.
func BenchmarkHostSweep(b *testing.B) {
	b.Run("par=1", hostbench.Sweep(1))
	b.Run(fmt.Sprintf("par=%d", runtime.GOMAXPROCS(0)), hostbench.Sweep(0))
}

// ---------------------------------------------------------- ablations ----

// BenchmarkAblationResvScheme compares the three memory-side reservation
// schemes of section 3.1 under a contended UNC LL/SC counter.
func BenchmarkAblationResvScheme(b *testing.B) {
	schemes := []struct {
		name   string
		scheme dir.ResvScheme
	}{
		{"bitvector", dir.ResvBitVector},
		{"limited-4", dir.ResvLimited},
		{"serial", dir.ResvSerial},
	}
	for _, s := range schemes {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Nodes = 16
				cfg.Mesh.Width, cfg.Mesh.Height = 4, 4
				cfg.ResvScheme = s.scheme
				m := machine.New(cfg)
				res := apps.CounterApp(m, core.PolicyUNC,
					locks.Options{Prim: locks.PrimLLSC},
					apps.Pattern{Contention: 16, Rounds: 6})
				avg = res.AvgCycles
			}
			b.ReportMetric(avg, "sim-cycles/update")
		})
	}
}

// BenchmarkAblationBareSCRelease measures the serial-number scheme's
// bare-store_conditional MCS release against the standard LL/SC release.
func BenchmarkAblationBareSCRelease(b *testing.B) {
	for _, bare := range []bool{false, true} {
		bare := bare
		name := "llsc-release"
		if bare {
			name = "bare-sc-release"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Nodes = 16
				cfg.Mesh.Width, cfg.Mesh.Height = 4, 4
				cfg.ResvScheme = dir.ResvSerial
				m := machine.New(cfg)
				l := locks.NewMCSLock(m, core.PolicyUNC, locks.Options{Prim: locks.PrimLLSC})
				l.BareSCRelease = bare
				shared := m.Alloc(4)
				t := m.Run(func(p *machine.Proc) {
					for k := 0; k < 4; k++ {
						l.Acquire(p)
						p.Store(shared, p.Load(shared)+1)
						l.Release(p)
						p.Compute(40)
					}
				})
				elapsed = float64(t)
			}
			b.ReportMetric(elapsed, "sim-cycles")
		})
	}
}

// BenchmarkAblationBackoffBound sweeps the TTS lock's maximum backoff
// under heavy contention: too little backoff recreates the invalidation
// storm the paper describes, too much wastes hand-off latency.
func BenchmarkAblationBackoffBound(b *testing.B) {
	for _, maxB := range []int{64, 1024, 16384} {
		maxB := maxB
		b.Run(fmt.Sprintf("max=%d", maxB), func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Nodes = 16
				cfg.Mesh.Width, cfg.Mesh.Height = 4, 4
				m := machine.New(cfg)
				l := locks.NewTTSLock(m, core.PolicyINV, locks.Options{Prim: locks.PrimFAP})
				l.MaxBackoff = sim.Time(maxB)
				counter := m.Alloc(4)
				res := apps.RunSynthetic(m, apps.Pattern{Contention: 16, Rounds: 8},
					func(p *machine.Proc) {
						l.Acquire(p)
						p.Store(counter, p.Load(counter)+1)
						l.Release(p)
					})
				avg = res.AvgCycles
			}
			b.ReportMetric(avg, "sim-cycles/update")
		})
	}
}

// BenchmarkAblationRouterContention tests the paper's methodology
// simplification (no contention at internal routers) by running the
// contended lock-free counter with and without per-link serialization: the
// conclusions should not change.
func BenchmarkAblationRouterContention(b *testing.B) {
	for _, routed := range []bool{false, true} {
		routed := routed
		name := "entry-exit-only"
		if routed {
			name = "internal-links"
		}
		b.Run(name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Nodes = 16
				cfg.Mesh.Width, cfg.Mesh.Height = 4, 4
				cfg.Mesh.ModelRouters = routed
				m := machine.New(cfg)
				res := apps.CounterApp(m, core.PolicyUNC,
					locks.Options{Prim: locks.PrimFAP},
					apps.Pattern{Contention: 16, Rounds: 8})
				avg = res.AvgCycles
			}
			b.ReportMetric(avg, "sim-cycles/update")
		})
	}
}

// BenchmarkAblationWriteRunCrossover sweeps the write-run length to locate
// the INV/UNC crossover the paper describes in section 4.3.1.
func BenchmarkAblationWriteRunCrossover(b *testing.B) {
	for _, a := range []float64{1, 2, 3, 5, 10} {
		a := a
		for _, pol := range []core.Policy{core.PolicyINV, core.PolicyUNC} {
			pol := pol
			b.Run(fmt.Sprintf("%s/a=%g", pol, a), func(b *testing.B) {
				var avg float64
				for i := 0; i < b.N; i++ {
					m := exper.NewMachine(benchOpts(), exper.Bar{})
					res := apps.CounterApp(m, pol, locks.Options{Prim: locks.PrimFAP},
						apps.Pattern{Contention: 1, WriteRun: a, Rounds: 8})
					avg = res.AvgCycles
				}
				b.ReportMetric(avg, "sim-cycles/update")
			})
		}
	}
}

// BenchmarkAblationMemLatency sweeps the memory latency to expose how the
// policies' relative standing depends on the memory/network cost ratio.
func BenchmarkAblationMemLatency(b *testing.B) {
	for _, lat := range []int{6, 18, 54} {
		lat := lat
		for _, pol := range []core.Policy{core.PolicyINV, core.PolicyUNC} {
			pol := pol
			b.Run(fmt.Sprintf("%s/mem=%d", pol, lat), func(b *testing.B) {
				var avg float64
				for i := 0; i < b.N; i++ {
					cfg := core.DefaultConfig()
					cfg.Nodes = 16
					cfg.Mesh.Width, cfg.Mesh.Height = 4, 4
					cfg.Mem.Latency = sim.Time(lat)
					m := machine.New(cfg)
					res := apps.CounterApp(m, pol, locks.Options{Prim: locks.PrimFAP},
						apps.Pattern{Contention: 8, Rounds: 6})
					avg = res.AvgCycles
				}
				b.ReportMetric(avg, "sim-cycles/update")
			})
		}
	}
}
