package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dsm/internal/exper"
)

// quickSpec is small enough that a simulation completes in well under a
// millisecond, keeping the handler tests fast.
const quickSpec = `{"app":"counter","procs":4,"rounds":2}`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func doJSON(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/sim", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func doGet(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// ----------------------------------------------------------------- spec --

func TestNormalizeDefaults(t *testing.T) {
	sp, err := Spec{}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	want := Spec{App: "counter", Policy: "INV", Prim: "FAP", Variant: "INV",
		Procs: 16, Contention: 1, WriteRun: 1, Rounds: 6}
	if sp != want {
		t.Fatalf("Normalize = %+v, want %+v", sp, want)
	}
}

func TestNormalizeRejects(t *testing.T) {
	bad := []Spec{
		{App: "nope"},
		{Policy: "inv"},
		{Prim: "XADD"},
		{Variant: "INVx"},
		{Procs: 65},
		{Procs: -1},
		{Contention: 20, Procs: 16},
		{WriteRun: 0.5},
		{Rounds: 1000},
		{App: "tclosure", Size: 1},
	}
	for _, sp := range bad {
		if _, err := sp.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted", sp)
		}
	}
}

func TestNormalizeCanonicalizesIrrelevantFields(t *testing.T) {
	// Real apps ignore the synthetic pattern; contended synthetics ignore
	// the write-run length. Both must collapse onto one cache key.
	a, err := Spec{App: "cholesky", Contention: 8, WriteRun: 3, Rounds: 9, Size: 20}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{App: "cholesky"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("cholesky keys differ: %+v vs %+v", a, b)
	}
	c, _ := Spec{Contention: 4, WriteRun: 2}.Normalize()
	d, _ := Spec{Contention: 4, WriteRun: 7}.Normalize()
	if c.Key() != d.Key() {
		t.Fatal("write-run leaked into contended synthetic key")
	}
	e, _ := Spec{WriteRun: 2}.Normalize()
	f, _ := Spec{WriteRun: 3}.Normalize()
	if e.Key() == f.Key() {
		t.Fatal("distinct write-runs share a key under c=1")
	}
}

// TestNormalizeWorkloadApps checks the lock-free workload structures are
// pattern-driven specs: the sharing-pattern fields survive normalization
// (and default like the synthetics), while tclosure's size is zeroed.
func TestNormalizeWorkloadApps(t *testing.T) {
	for _, app := range []string{"msqueue", "stack", "rcu", "tournament", "dissemination"} {
		sp, err := Spec{App: app, Size: 20}.Normalize()
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if sp.Contention != 1 || sp.WriteRun != 1 || sp.Rounds != 6 || sp.Size != 0 {
			t.Fatalf("%s normalized to %+v", app, sp)
		}
		a, _ := Spec{App: app, Contention: 4}.Normalize()
		b, _ := Spec{App: app, Contention: 8}.Normalize()
		if a.Key() == b.Key() {
			t.Fatalf("%s: distinct contention levels share a key", app)
		}
	}
}

// -------------------------------------------------------------- handler --

func TestSimMissThenHitByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	first := doJSON(s, quickSpec)
	if first.Code != http.StatusOK {
		t.Fatalf("first = %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q", got)
	}
	second := doJSON(s, quickSpec)
	if second.Code != http.StatusOK {
		t.Fatalf("second = %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("hit differs from miss:\n%s\nvs\n%s", first.Body, second.Body)
	}

	var out Outcome
	if err := json.Unmarshal(first.Body.Bytes(), &out); err != nil {
		t.Fatalf("body not an Outcome: %v", err)
	}
	if out.Spec.App != "counter" || out.Spec.Procs != 4 {
		t.Fatalf("echoed spec = %+v", out.Spec)
	}
	if out.Elapsed == 0 || out.Updates == 0 || out.Report == nil {
		t.Fatalf("outcome incomplete: %+v", out)
	}
	if out.Key != first.Header().Get("X-Spec-Key") {
		t.Fatal("body key != header key")
	}
	m := s.Metrics()
	if m.Requests != 2 || m.CacheHits != 1 || m.CacheMisses != 1 || m.Runs != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestGetQuerySpecMatchesPostSpec(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	viaGet := doGet(s, "/v1/sim?app=counter&procs=4&rounds=2")
	if viaGet.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", viaGet.Code, viaGet.Body)
	}
	viaPost := doJSON(s, quickSpec)
	if !bytes.Equal(viaGet.Body.Bytes(), viaPost.Body.Bytes()) {
		t.Fatal("GET and POST encodings of the same spec differ")
	}
	if viaPost.Header().Get("X-Cache") != "hit" {
		t.Fatal("POST after identical GET was not a cache hit")
	}
}

func TestIdenticalSpecSeedAcrossServersByteIdentical(t *testing.T) {
	// Same spec + seed on two independent servers (disjoint caches and
	// machine-pool histories) must produce byte-identical JSON: the
	// determinism guarantee behind content-addressed caching.
	spec := `{"app":"tts","policy":"UPD","prim":"CAS","procs":8,"c":4,"rounds":3,"seed":99}`
	s1 := newTestServer(t, Config{Workers: 2})
	s2 := newTestServer(t, Config{Workers: 2})
	r1 := doJSON(s1, spec)
	r2 := doJSON(s2, spec)
	if r1.Code != http.StatusOK || r2.Code != http.StatusOK {
		t.Fatalf("codes %d, %d", r1.Code, r2.Code)
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Fatalf("independent servers disagree:\n%s\nvs\n%s", r1.Body, r2.Body)
	}
}

func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	const n = 8
	s := newTestServer(t, Config{Workers: 1, Queue: 4})
	// Park the only worker so the leader's simulation cannot start; every
	// concurrent identical request must then join the same flight call.
	gate := make(chan struct{})
	if !s.pool.submit(func(*exper.MachineSlot) { <-gate }) {
		t.Fatal("could not park worker")
	}
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := doJSON(s, quickSpec)
			codes[i], bodies[i] = w.Code, w.Body.Bytes()
		}(i)
	}
	// Wait until all n have registered (1 leader miss + n-1 coalesced).
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := s.Metrics()
		if m.CacheMisses == 1 && m.Coalesced == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests did not coalesce: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d = %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs", i)
		}
	}
	m := s.Metrics()
	if m.Runs != 1 {
		t.Fatalf("Runs = %d, want exactly 1 underlying simulation", m.Runs)
	}
	if m.CacheMisses != 1 || m.Coalesced != n-1 || m.Requests != n {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestQueueFullAnswers429WithRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Queue: 1})
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	if !s.pool.submit(func(*exper.MachineSlot) { close(started); <-gate }) { // park the worker
		t.Fatal("could not park worker")
	}
	<-started                      // the parked job is running, not queued
	if !s.pool.submit(func(*exper.MachineSlot) {}) { // fill the queue
		t.Fatal("could not fill queue")
	}
	w := doJSON(s, quickSpec)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("Rejected = %d", m.Rejected)
	}
}

func TestDeadlineAnswers504(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Queue: 4, Timeout: 5 * time.Millisecond})
	gate := make(chan struct{})
	defer close(gate)
	if !s.pool.submit(func(*exper.MachineSlot) { <-gate }) {
		t.Fatal("could not park worker")
	}
	w := doJSON(s, quickSpec)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d: %s", w.Code, w.Body)
	}
	if m := s.Metrics(); m.Timeouts != 1 {
		t.Fatalf("Timeouts = %d", m.Timeouts)
	}
}

func TestLRUEvictionBounded(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, CacheEntries: 2})
	specFor := func(rounds int) string {
		return fmt.Sprintf(`{"app":"counter","procs":4,"rounds":%d}`, rounds)
	}
	for _, r := range []int{1, 2, 3} {
		if w := doJSON(s, specFor(r)); w.Code != http.StatusOK {
			t.Fatalf("rounds=%d: %d", r, w.Code)
		}
	}
	m := s.Metrics()
	if m.CacheEntries != 2 || m.CacheEvictions != 1 {
		t.Fatalf("cache stats = %+v", m)
	}
	// The evicted (oldest) entry must rerun — and byte-identically so.
	w1 := doJSON(s, specFor(1))
	if w1.Header().Get("X-Cache") != "miss" {
		t.Fatalf("evicted entry served as %q", w1.Header().Get("X-Cache"))
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
		want int
	}{
		{"unknown app", func() *httptest.ResponseRecorder { return doJSON(s, `{"app":"quicksort"}`) }, 400},
		{"unknown policy", func() *httptest.ResponseRecorder { return doJSON(s, `{"policy":"MESI"}`) }, 400},
		{"unknown field", func() *httptest.ResponseRecorder { return doJSON(s, `{"nodes":4}`) }, 400},
		{"bad JSON", func() *httptest.ResponseRecorder { return doJSON(s, `{`) }, 400},
		{"procs range", func() *httptest.ResponseRecorder { return doJSON(s, `{"procs":128}`) }, 400},
		{"bad query int", func() *httptest.ResponseRecorder { return doGet(s, "/v1/sim?procs=many") }, 400},
		{"bad query seed", func() *httptest.ResponseRecorder { return doGet(s, "/v1/sim?seed=-1") }, 400},
		{"method", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodDelete, "/v1/sim", nil)
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			return w
		}, 405},
	}
	for _, tc := range cases {
		w := tc.do()
		if w.Code != tc.want {
			t.Errorf("%s: code = %d, want %d (%s)", tc.name, w.Code, tc.want, w.Body)
		}
		var e map[string]string
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body = %s", tc.name, w.Body)
		}
	}
	if m := s.Metrics(); m.BadRequests == 0 {
		t.Fatal("bad requests not counted")
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	s := New(Config{Workers: 1})
	if w := doGet(s, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz = %d %s", w.Code, w.Body)
	}
	doJSON(s, quickSpec)
	w := doGet(s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics body: %v (%s)", err, w.Body)
	}
	if snap.Requests != 1 || snap.Runs != 1 || snap.Workers != 1 || snap.LatencyCount != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	s.Close()
	if w := doGet(s, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close = %d", w.Code)
	}
	if w := doJSON(s, quickSpec); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("sim after Close = %d", w.Code)
	}
}

func TestCloseDrainsQueuedWork(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 4})
	gate := make(chan struct{})
	if !s.pool.submit(func(*exper.MachineSlot) { <-gate }) {
		t.Fatal("could not park worker")
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- doJSON(s, quickSpec) }()
	// Wait for the request to be queued behind the parked worker.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().CacheMisses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(gate)
	}()
	s.Close() // must wait for the queued simulation to complete
	w := <-done
	if w.Code != http.StatusOK {
		t.Fatalf("drained request = %d: %s", w.Code, w.Body)
	}
	if m := s.Metrics(); m.Runs != 1 {
		t.Fatalf("Runs = %d", m.Runs)
	}
}
