package core

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/dir"
	"dsm/internal/mem"
	"dsm/internal/mesh"
	"dsm/internal/proto"
)

// homeTxn is the home controller's per-block transient state: an
// outstanding recall (awaiting data or a negative answer from the owner),
// or a wait for an in-flight write-back after a recall found the owner's
// copy already gone. The retained request message (orig) is owned by this
// record until it is replayed or freed.
type homeTxn struct {
	owner mesh.NodeID // node the data must come from
	orig  *msg        // request to replay when the data arrives; nil for awaitWB
}

// HomeCtl is one node's memory/directory controller: the serialization
// point for its share of the address space, and the locus of computational
// power for the UPD and UNC implementations of the atomic primitives. Like
// the cache controller, it carries no protocol logic of its own: requests
// and data returns are dispatched through the guarded-action tables in
// internal/proto (HomeReq, HomeRet), interpreted against the real
// directory and memory module.
type HomeCtl struct {
	sys  *System
	node mesh.NodeID
	mod  mem.Module
	dir  dir.Directory
	busy map[arch.Addr]homeTxn // block base -> in-flight transaction

	// Preallocated hooks: recvHook receives a delivered message (via
	// Mesh.SendArg); processHook runs it after the memory-bank queue delay
	// (via Module.AccessArg). Allocated once so steady-state traffic
	// schedules without building closures.
	recvHook    func(any)
	processHook func(any)

	// retained marks that the request handler took ownership of the message
	// it was dispatched (recall stored it in busy); see dispatchRequest.
	retained bool

	// Reply scratch, filled by the exec-mem action and consumed by the
	// unc-reply / upd-fanout / upd-reply actions later in the same rule.
	// Fields instead of an interpreter-local result struct keep the hot
	// path allocation-free.
	exVal    arch.Word
	exOK     bool
	exWrote  bool
	exSerial arch.Word
	exHint   bool
	exAcks   int

	// replay holds the retained request released by an accept action for
	// the replay action that follows it in the same rule.
	replay *msg
}

func (h *HomeCtl) init(s *System, n mesh.NodeID) {
	h.sys = s
	h.node = n
	h.mod.Init(s.eng, s.cfg.Mem)
	h.dir.Init()
	h.busy = make(map[arch.Addr]homeTxn)
	h.recvHook = func(a any) { h.receive(a.(*msg)) }
	h.processHook = func(a any) { h.process(a.(*msg)) }
}

// reset returns the controller to its post-init state for machine reuse,
// keeping the preallocated hooks and map storage. Any request message still
// retained by an in-flight transaction goes back to the pool (a quiescent
// system has none).
func (h *HomeCtl) reset() {
	h.mod.Reset()
	h.dir.Reset()
	for base, t := range h.busy {
		if t.orig != nil {
			h.sys.freeMsg(t.orig)
		}
		delete(h.busy, base)
	}
	h.retained = false
	h.replay = nil
}

// Node returns the controller's node id.
func (h *HomeCtl) Node() mesh.NodeID { return h.node }

// Memory exposes the underlying module (allocation, tests, and debugging).
func (h *HomeCtl) Memory() *mem.Module { return &h.mod }

// Directory exposes the directory (tests and invariant checks).
func (h *HomeCtl) Directory() *dir.Directory { return &h.dir }

// receive queues the message through the memory bank: every home-side
// action costs one (queued) memory access, which is how memory contention
// enters the model.
func (h *HomeCtl) receive(m *msg) {
	h.mod.AccessArg(h.processHook, m)
}

// process dispatches one message through the home's transition tables and
// recycles it. Request kinds go through dispatchRequest, which knows a
// recall may retain the request; every other kind is fully consumed here.
func (h *HomeCtl) process(m *msg) {
	base := arch.BlockBase(m.addr)
	if m.kind.IsRequest() {
		h.dispatchRequest(m, base)
		return
	}
	rules := proto.HomeRet[m.kind]
	if rules == nil {
		panic(fmt.Sprintf("core: home %d received %v", h.node, m.kind))
	}
	h.runRules(rules, m, base, nil)
	h.sys.freeMsg(m)
}

// dispatchRequest runs a (possibly replayed) request and recycles it unless
// the handler retained it in the busy state for a later replay.
func (h *HomeCtl) dispatchRequest(m *msg, base arch.Addr) {
	h.retained = false
	h.handleRequest(m, base)
	if !h.retained {
		h.sys.freeMsg(m)
	}
}

// handleRequest interprets the home-request table row selected by the
// block's state: a busy block refuses every request (the HBusy row, which
// never touches the directory); otherwise the directory entry's state
// picks the row, and the entry invariants are re-checked after the rule's
// actions run.
func (h *HomeCtl) handleRequest(m *msg, base arch.Addr) {
	if _, inFlight := h.busy[base]; inFlight {
		h.runRules(proto.HomeReq[proto.HBusy][m.kind], m, base, nil)
		return
	}
	e := h.dir.Entry(base)
	defer e.Check(base)
	var st proto.HomeState
	switch e.State {
	case dir.Unowned:
		st = proto.HUnowned
	case dir.Shared:
		st = proto.HShared
	case dir.Exclusive:
		st = proto.HExclusive
	default:
		panic(fmt.Sprintf("core: home %d: directory state %v for %#x", h.node, e.State, base))
	}
	h.runRules(proto.HomeReq[st][m.kind], m, base, e)
}

// runRules fires the first rule whose guard holds and executes its actions
// in order. A matching rule with no actions is an explicit stale-message
// ignore; no matching rule is a protocol error.
func (h *HomeCtl) runRules(rules []proto.HRule, m *msg, base arch.Addr, e *dir.Entry) {
	for i := range rules {
		if !h.guard(rules[i].Guard, m, base, e) {
			continue
		}
		for _, a := range rules[i].Actions {
			h.apply(a, m, base, e)
		}
		return
	}
	panic(fmt.Sprintf("core: home %d: no rule for %v", h.node, m.kind))
}

// guard evaluates one predicate against the directory entry, the busy map,
// the incoming message, and the system configuration. Guards a table row
// cannot reach may be passed a nil entry.
func (h *HomeCtl) guard(g proto.HomeGuard, m *msg, base arch.Addr, e *dir.Entry) bool {
	switch g {
	case proto.HGAlways:
		return true
	case proto.HGOwnerIsReq:
		return e.Owner == m.requester
	case proto.HGSharerHasReq:
		return e.Sharers.Has(m.requester)
	case proto.HGCASMatch:
		return h.mod.ReadWord(m.addr) == m.val
	case proto.HGCASShare:
		return h.sys.cfg.CAS == CASShare
	case proto.HGBusyBlock:
		_, inFlight := h.busy[base]
		return inFlight
	case proto.HGFromOwnerOrig:
		t, inFlight := h.busy[base]
		return inFlight && t.owner == m.src && t.orig != nil
	case proto.HGFromOwner:
		t, inFlight := h.busy[base]
		return inFlight && t.owner == m.src
	}
	panic(fmt.Sprintf("core: home %d: unknown guard %v", h.node, g))
}

// apply executes one table action. Data-return actions fetch the directory
// entry themselves (the request path passes it in, already checked).
func (h *HomeCtl) apply(a proto.HAct, m *msg, base arch.Addr, e *dir.Entry) {
	switch a.Do {
	case proto.HNak:
		h.nak(m)

	case proto.HShareReply:
		e.State = dir.Shared
		e.Sharers.Add(m.requester)
		r := h.sys.newMsg()
		*r = msg{kind: mDataS, data: h.mod.ReadBlock(base), hasData: true}
		h.reply(m, r)

	case proto.HGrantE:
		h.grantExclusive(m, base, e, false)

	case proto.HGrantESC:
		// No write intervened since the reservation was set (any write
		// would have invalidated the requester's copy first): succeed.
		h.grantExclusive(m, base, e, true)

	case proto.HRecall:
		h.recall(m, base, e.Owner, a.Msg)

	case proto.HSCFail:
		// Exclusive elsewhere or unowned: fail, per the paper's protocol.
		r := h.sys.newMsg()
		*r = msg{kind: mSCFail}
		h.reply(m, r)

	case proto.HCASFail:
		fail := h.sys.newMsg()
		*fail = msg{kind: mCASFail, val: h.mod.ReadWord(m.addr)}
		h.reply(m, fail)

	case proto.HCASFailShare:
		// INVs: a failed comparison still hands the requester a read-only
		// copy, so its next attempt can compare locally.
		fail := h.sys.newMsg()
		*fail = msg{kind: mCASFail, val: h.mod.ReadWord(m.addr)}
		e.State = dir.Shared
		e.Sharers.Add(m.requester)
		fail.data = h.mod.ReadBlock(base)
		fail.hasData = true
		h.reply(m, fail)

	case proto.HExec:
		h.exVal, h.exOK, h.exWrote, h.exSerial, h.exHint = h.execMem(e, m)
		h.exAcks = 0

	case proto.HUncReply:
		r := h.sys.newMsg()
		*r = msg{kind: mUncReply, val: h.exVal, ok: h.exOK, serial: h.exSerial, hint: h.exHint}
		h.reply(m, r)

	case proto.HUpdFanout:
		newWord := h.mod.ReadWord(m.addr)
		// Updates go out only when the value actually changed: a write of the
		// same value (e.g. test_and_set on an already-held lock) leaves every
		// cached copy correct. This is why, under UPD, "only successful
		// writes cause updates" (section 4.3.1).
		if h.exWrote && newWord != h.exVal {
			targets := e.Sharers
			targets.Remove(m.requester)
			h.exAcks = targets.Count()
			for bits, n := uint64(targets), mesh.NodeID(0); bits != 0; bits, n = bits>>1, n+1 {
				if bits&1 == 0 {
					continue
				}
				h.sys.counters.Updates++
				upd := h.sys.newMsg()
				*upd = msg{
					kind: mUpdate, addr: m.addr, requester: m.requester,
					updWord: newWord, chain: m.chain,
				}
				h.sys.send(h.node, n, upd, false)
			}
		}

	case proto.HUpdReply:
		// The requester retains (or acquires) a shared copy of the block.
		e.State = dir.Shared
		e.Sharers.Add(m.requester)
		r := h.sys.newMsg()
		*r = msg{
			kind: mUpdReply, val: h.exVal, ok: h.exOK, serial: h.exSerial, hint: h.exHint,
			data: h.mod.ReadBlock(base), hasData: true, acks: h.exAcks,
		}
		h.reply(m, r)

	case proto.HAcceptUnowned, proto.HAcceptShare:
		t := h.busy[base]
		if m.src != t.owner {
			panic(fmt.Sprintf("core: home %d got %v for busy %#x from %d, expected %d",
				h.node, m.kind, base, m.src, t.owner))
		}
		ent := h.dir.Entry(base)
		h.mod.WriteBlock(base, m.data)
		if a.Do == proto.HAcceptShare {
			// The owner kept a read-only copy (read recall or INVs fail).
			ent.State = dir.Shared
			ent.Sharers = 0
			ent.Sharers.Add(t.owner)
			ent.Owner = 0
		} else {
			ent.State = dir.Unowned
			ent.Sharers = 0
			ent.Owner = 0
		}
		delete(h.busy, base)
		ent.Check(base)
		h.replay = t.orig

	case proto.HReplay:
		if h.replay != nil {
			// Replay the retained request against the refreshed directory
			// state; the chain accumulated so far carries over, giving the
			// paper's 4-serialized-message remote-exclusive store path.
			// dispatchRequest recycles it unless a second recall retains it.
			orig := h.replay
			h.replay = nil
			orig.chain = m.chain
			h.dispatchRequest(orig, base)
		}

	case proto.HWriteBack:
		// Spontaneous write-back from the recorded owner.
		ent := h.dir.Entry(base)
		if ent.State != dir.Exclusive || ent.Owner != m.src {
			panic(fmt.Sprintf("core: home %d got %v for %#x in state %v from %d",
				h.node, m.kind, base, ent.State, m.src))
		}
		if m.kind != mWB {
			panic(fmt.Sprintf("core: unexpected %v outside a recall", m.kind))
		}
		h.mod.WriteBlock(base, m.data)
		ent.State = dir.Unowned
		ent.Owner = 0
		ent.Check(base)

	case proto.HDropSharer:
		ent := h.dir.Entry(base)
		// The drop hint may be stale (the sharer was already invalidated or
		// the block moved on); act only if the sender is still recorded.
		if ent.State == dir.Shared && ent.Sharers.Has(m.src) {
			ent.Sharers.Remove(m.src)
			if ent.Sharers.Empty() {
				ent.State = dir.Unowned
			}
		}

	case proto.HNakOrig:
		// The owner's copy is already on its way back as a write-back. NAK
		// the waiting requester (it will retry, per the paper's drop_copy
		// discussion) and hold the block until the write-back lands.
		t := h.busy[base]
		h.nak(t.orig)
		h.sys.freeMsg(t.orig)
		t.orig = nil
		h.busy[base] = t

	case proto.HReleaseBusy:
		// INVd failure handled entirely at the owner; ownership is unchanged.
		t := h.busy[base]
		if t.orig != nil {
			h.sys.freeMsg(t.orig)
		}
		delete(h.busy, base)

	default:
		panic(fmt.Sprintf("core: home %d: unknown action %v", h.node, a.Do))
	}
}

// reply sends a response to the transaction's requester.
func (h *HomeCtl) reply(m *msg, r *msg) {
	r.addr = m.addr
	r.requester = m.requester
	r.op = m.op
	r.chain = m.chain
	h.sys.send(h.node, m.requester, r, false)
}

func (h *HomeCtl) nak(m *msg) {
	r := h.sys.newMsg()
	*r = msg{kind: mNak}
	h.reply(m, r)
}

// recall puts the block in the busy state and asks the current owner for
// the data (or, for mCASFwd, for an owner-side comparison). It takes
// ownership of m, holding it for replay when the data arrives.
func (h *HomeCtl) recall(m *msg, base arch.Addr, owner mesh.NodeID, kind msgKind) {
	h.busy[base] = homeTxn{owner: owner, orig: m}
	h.retained = true
	fwd := h.sys.newMsg()
	*fwd = msg{
		kind: kind, addr: m.addr, requester: m.requester,
		forwardVal: m.val, forwardV2: m.val2, chain: m.chain,
	}
	h.sys.send(h.node, owner, fwd, false)
}

// grantExclusive transfers the block exclusively to the requester from the
// Unowned or Shared state: invalidations go to the other sharers, which
// acknowledge directly to the requester; the grant carries the expected
// acknowledgment count. scGrant marks a store_conditional success grant.
func (h *HomeCtl) grantExclusive(m *msg, base arch.Addr, e *dir.Entry, scGrant bool) {
	others := e.Sharers
	others.Remove(m.requester)
	acks := others.Count()
	for bits, n := uint64(others), mesh.NodeID(0); bits != 0; bits, n = bits>>1, n+1 {
		if bits&1 == 0 {
			continue
		}
		h.sys.counters.Invals++
		inv := h.sys.newMsg()
		*inv = msg{kind: mInval, addr: m.addr, requester: m.requester, chain: m.chain}
		h.sys.send(h.node, n, inv, false)
	}
	e.State = dir.Exclusive
	e.Sharers = 0
	e.Owner = m.requester
	r := h.sys.newMsg()
	*r = msg{
		kind: mDataE, data: h.mod.ReadBlock(base), hasData: true,
		acks: acks, ok: scGrant,
	}
	h.reply(m, r)
}

// execMem performs an operation at the memory: the locus of computational
// power for the UNC and UPD implementations.
func (h *HomeCtl) execMem(e *dir.Entry, m *msg) (val arch.Word, ok, wrote bool, serial arch.Word, hint bool) {
	old := h.mod.ReadWord(m.addr)
	val, ok = old, true
	write := func(v arch.Word) {
		h.mod.WriteWord(m.addr, v)
		wrote = true
		if e.Reservations != nil {
			e.Reservations.OnWrite()
		}
	}
	switch m.op {
	case OpLoad, OpLoadExclusive:
		// Reads; load_exclusive degenerates to a load at memory.
	case OpStore:
		write(m.val)
	case OpFetchAdd:
		write(old + m.val)
	case OpFetchStore:
		write(m.val)
	case OpFetchOr:
		write(old | m.val)
	case OpTestAndSet:
		write(1)
	case OpCAS:
		if old == m.val {
			write(m.val2)
		} else {
			ok = false
		}
	case OpLL:
		rs := h.reservations(e)
		hint = !rs.Reserve(m.requester)
		serial = rs.Serial()
	case OpSC:
		rs := h.reservations(e)
		if rs.Validate(m.requester, m.val2) {
			write(m.val)
		} else {
			ok = false
		}
	default:
		panic(fmt.Sprintf("core: execMem of %v", m.op))
	}
	h.sys.trackAccess(m.addr, m.requester, m.op, wrote)
	return val, ok, wrote, serial, hint
}

func (h *HomeCtl) reservations(e *dir.Entry) *dir.ResvState {
	// Directory.Reset keeps reservation state allocated across machine
	// reuse, but Reset may change the behavioral configuration, so a
	// retained state whose scheme or limit no longer matches is replaced.
	rs := e.Reservations
	if rs == nil || rs.Scheme != h.sys.cfg.ResvScheme ||
		(rs.Scheme == dir.ResvLimited && rs.Limit != h.sys.cfg.ResvLimit) {
		rs = dir.NewResvState(h.sys.cfg.ResvScheme, h.sys.cfg.ResvLimit)
		e.Reservations = rs
	}
	rs.Wake()
	return rs
}
