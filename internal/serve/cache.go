package serve

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: canonical spec hash
// -> encoded outcome bytes, with LRU eviction at a fixed entry budget.
// Entries are immutable once inserted (the encoded bytes are never
// modified), so a hit can hand the stored slice to the response writer
// without copying.
type resultCache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// get returns the cached bytes for key, refreshing its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put inserts key -> data, evicting the least recently used entry when the
// cache is at capacity. Re-inserting an existing key refreshes its data
// and recency.
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
}

// stats returns the current entry count and lifetime eviction count.
func (c *resultCache) stats() (entries int, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.evictions
}
