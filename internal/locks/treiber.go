package locks

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
)

// TreiberStack is a Treiber lock-free stack whose nodes are recycled — the
// configuration where the paper's section-2.2 "pointer problem" is not a
// thought experiment but a live hazard. The top-of-stack word is updated
// with the universal primitive under study and each node carries a value
// word, so a popped node can be re-pushed with fresh data and a stale
// reader genuinely races the reuse.
//
// ABA countermeasures, selected by Opts.Prim:
//
//   - PrimCAS with Tagged (the default from NewTreiberStack): the top word
//     is a counted pointer — node id low, modification count high — so a
//     top that was popped and re-pushed never compares equal to a stale
//     read. Clearing Tagged reverts to the textbook compare_and_swap on a
//     bare id, which corrupts under the staged interleaving
//     (TestTreiberABACorruptionFlagged) — the regression the stack
//     history checker must flag.
//   - PrimLLSC: a bare id; the reservation invalidates on any intervening
//     write, the hardware countermeasure the paper recommends.
//
// Node ids are 1-based; 0 is the empty stack. Each node owns one block:
// word 0 the next link, word 1 the value.
type TreiberStack struct {
	Top  arch.Addr
	node []arch.Addr // per id (index 0 unused): word 0 next, word 1 value
	Opts Options

	// Tagged selects the counted-pointer encoding under PrimCAS. It must
	// only be cleared by tests staging the ABA corruption.
	Tagged bool

	// Retries counts failed top swings (CAS misses and SC failures).
	Retries uint64
}

// NewTreiberStack allocates a stack and nodes 1..capacity, with tagging on
// for the CAS family.
func NewTreiberStack(m *machine.Machine, policy core.Policy, capacity int, opts Options) *TreiberStack {
	if opts.Prim == PrimFAP {
		panic("locks: the Treiber stack needs a universal primitive (CAS or LL/SC)")
	}
	if capacity < 1 || capacity >= 1<<msTagBits {
		panic(fmt.Sprintf("locks: Treiber stack capacity %d out of range", capacity))
	}
	s := &TreiberStack{
		Top:    m.AllocSync(policy),
		node:   make([]arch.Addr, capacity+1),
		Opts:   opts,
		Tagged: opts.Prim == PrimCAS,
	}
	for id := 1; id <= capacity; id++ {
		s.node[id] = m.AllocSync(policy)
	}
	return s
}

func (s *TreiberStack) nextAddr(id arch.Word) arch.Addr { return s.node[id] }

// ValAddr returns the address of node id's value word.
func (s *TreiberStack) ValAddr(id arch.Word) arch.Addr { return s.node[id] + arch.WordBytes }

// Push links node (carrying value) onto the stack.
func (s *TreiberStack) Push(p *machine.Proc, node arch.Word, value arch.Word) {
	p.Store(s.ValAddr(node), value)
	if s.Opts.Prim == PrimLLSC {
		for {
			old := p.LoadLinked(s.Top)
			p.Store(s.nextAddr(node), old)
			if p.StoreConditional(s.Top, node) {
				return
			}
			s.Retries++
		}
	}
	for {
		old := s.Opts.read(p, s.Top)
		p.Store(s.nextAddr(node), msID(old))
		var new arch.Word
		if s.Tagged {
			new = msPack(node, old>>msTagBits+1)
		} else {
			new = node
		}
		if p.CompareAndSwap(s.Top, old, new) {
			return
		}
		s.Retries++
	}
}

// Pop unlinks the top node, returning its id and value (ok=false when
// empty). The interposed function, if non-nil, runs in the window between
// reading the top and attempting the swing — where ABA strikes; the
// corruption regression test uses it to stage the adversarial schedule.
func (s *TreiberStack) Pop(p *machine.Proc, interpose func()) (node, value arch.Word, ok bool) {
	if s.Opts.Prim == PrimLLSC {
		for {
			old := p.LoadLinked(s.Top)
			if old == 0 {
				return 0, 0, false
			}
			next := p.Load(s.nextAddr(old))
			v := p.Load(s.ValAddr(old))
			if interpose != nil {
				interpose()
			}
			if p.StoreConditional(s.Top, next) {
				return old, v, true
			}
			s.Retries++
		}
	}
	for {
		old := s.Opts.read(p, s.Top)
		id := msID(old)
		if id == 0 {
			return 0, 0, false
		}
		next := p.Load(s.nextAddr(id))
		v := p.Load(s.ValAddr(id))
		if interpose != nil {
			interpose()
		}
		var new arch.Word
		if s.Tagged {
			new = msPack(next, old>>msTagBits+1)
		} else {
			new = next
		}
		if p.CompareAndSwap(s.Top, old, new) {
			return id, v, true
		}
		s.Retries++
	}
}

// String describes the stack configuration.
func (s *TreiberStack) String() string {
	mode := "llsc"
	if s.Opts.Prim == PrimCAS {
		if s.Tagged {
			mode = "cas+tag"
		} else {
			mode = "cas-bare"
		}
	}
	return fmt.Sprintf("treiber(nodes=%d, %s)", len(s.node)-1, mode)
}
