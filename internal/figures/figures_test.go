package figures

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dsm/internal/apps"
	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/locks"
)

func TestTable1MatchesPaperExactly(t *testing.T) {
	for _, r := range Table1() {
		if r.Got != r.Paper {
			t.Errorf("%s: measured %d serialized messages, paper says %d", r.Case, r.Got, r.Paper)
		}
	}
}

func TestWriteTable1Renders(t *testing.T) {
	var b bytes.Buffer
	WriteTable1(&b)
	out := b.String()
	if !strings.Contains(out, "INV to remote exclusive") || strings.Contains(out, "MISMATCH") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestSyntheticBarsMatchPaperCount(t *testing.T) {
	bars := SyntheticBars()
	if len(bars) != 21 {
		t.Fatalf("bar count = %d, want 21 (3 UNC + 12 INV + 6 UPD)", len(bars))
	}
	counts := map[core.Policy]int{}
	for _, b := range bars {
		counts[b.Policy]++
	}
	if counts[core.PolicyUNC] != 3 || counts[core.PolicyINV] != 12 || counts[core.PolicyUPD] != 6 {
		t.Fatalf("bar distribution = %v", counts)
	}
}

func TestPatternsMatchPaperGrid(t *testing.T) {
	pats := Patterns(Defaults())
	if len(pats) != 10 {
		t.Fatalf("pattern count = %d, want 10", len(pats))
	}
	if pats[0].String() != "c=1 a=1" || pats[4].String() != "c=1 a=10" || pats[9].String() != "c=64" {
		t.Fatalf("patterns = %v", pats)
	}
	// Small machines clamp and deduplicate contention levels.
	small := Patterns(RunOpts{Procs: 8, Rounds: 2})
	for _, p := range small {
		if p.Contention > 8 {
			t.Fatalf("pattern %v exceeds machine size", p)
		}
	}
}

// TestFig3Shapes validates the paper's headline qualitative results on a
// reduced configuration of the lock-free counter figure.
func TestFig3Shapes(t *testing.T) {
	o := RunOpts{Procs: 16, Rounds: 8}
	run := func(bar Bar, pat Pattern) float64 {
		m := NewMachine(o, bar)
		return apps.CounterApp(m, bar.Policy, bar.Opts(), pat).AvgCycles
	}
	uncFAP := Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
	invFAP := Bar{Policy: core.PolicyINV, Prim: locks.PrimFAP}
	updFAP := Bar{Policy: core.PolicyUPD, Prim: locks.PrimFAP}

	// With contention, UNC fetch_and_add beats the INV and UPD versions.
	hot := Pattern{Contention: 16, Rounds: o.Rounds}
	unc, inv, upd := run(uncFAP, hot), run(invFAP, hot), run(updFAP, hot)
	if unc >= inv {
		t.Errorf("contention c=16: UNC FAA (%.0f) should beat INV FAA (%.0f)", unc, inv)
	}
	if unc >= upd {
		t.Errorf("contention c=16: UNC FAA (%.0f) should beat UPD FAA (%.0f)", unc, upd)
	}

	// With long write runs, INV wins: later updates in a run are hits.
	longRun := Pattern{Contention: 1, WriteRun: 10, Rounds: o.Rounds}
	unc, inv = run(uncFAP, longRun), run(invFAP, longRun)
	if inv >= unc {
		t.Errorf("a=10: INV FAA (%.0f) should beat UNC FAA (%.0f)", inv, unc)
	}

	// CAS under INV benefits from load_exclusive (fewer failed CASes /
	// upgrade misses).
	invCAS := Bar{Policy: core.PolicyINV, Prim: locks.PrimCAS}
	invCASldex := Bar{Policy: core.PolicyINV, Prim: locks.PrimCAS, LoadEx: true}
	plain, ldex := run(invCAS, hot), run(invCASldex, hot)
	if ldex > plain*1.1 {
		t.Errorf("c=16: CAS+load_exclusive (%.0f) should not lose to plain CAS (%.0f)", ldex, plain)
	}
}

func TestFig3DropCopyHelpsSingleUpdateRuns(t *testing.T) {
	o := RunOpts{Procs: 16, Rounds: 12}
	pat := Pattern{Contention: 1, WriteRun: 1, Rounds: o.Rounds}
	run := func(bar Bar) float64 {
		m := NewMachine(o, bar)
		return apps.CounterApp(m, bar.Policy, bar.Opts(), pat).AvgCycles
	}
	plain := run(Bar{Policy: core.PolicyINV, Prim: locks.PrimFAP})
	drop := run(Bar{Policy: core.PolicyINV, Prim: locks.PrimFAP, Drop: true})
	// With a=1 and no contention, drop_copy turns the 4-message
	// remote-exclusive transfer into a 2-message fetch from memory. The
	// drop itself costs the updater a little, but the next updater's
	// fetch dominates.
	if drop >= plain {
		t.Errorf("a=1: INV FAP+drop (%.0f) should beat plain INV FAP (%.0f)", drop, plain)
	}
}

func TestFig2RunsAndReportsPatterns(t *testing.T) {
	var b bytes.Buffer
	o := RunOpts{Procs: 8, Rounds: 2, TCSize: 8}
	Fig2(&b, o)
	out := b.String()
	for _, want := range []string{"LocusRoute", "Cholesky", "TransitiveClosure", "write-run"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6RunsAllApps(t *testing.T) {
	// Tiny configuration: just verify the full grid executes and renders.
	var b bytes.Buffer
	o := RunOpts{Procs: 4, Rounds: 1, TCSize: 6, Wires: 6, Columns: 6}
	Fig6(&b, o)
	out := b.String()
	if !strings.Contains(out, "UPD CAS+drop") || !strings.Contains(out, "TransitiveClosure") {
		t.Fatalf("Fig6 output:\n%s", out)
	}
	if strings.Contains(out, " 0\n") {
		// every cell must be a positive elapsed time
		t.Fatalf("Fig6 contains zero elapsed times:\n%s", out)
	}
}

func TestRunRealTClosureUsesCounter(t *testing.T) {
	o := RunOpts{Procs: 4, TCSize: 8}
	m, elapsed := RunReal(AppTClosure, o, Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP})
	if elapsed == 0 {
		t.Fatal("no elapsed time")
	}
	if m.System().Contention().Histogram().Total() == 0 {
		t.Fatal("no atomic accesses recorded")
	}
}

func TestTCEfficiencyGrowsWithProblemSize(t *testing.T) {
	// The paper reports 45% efficiency on 64 processors for its (much
	// larger) input. At simulation-affordable sizes the run is
	// barrier-bound, so we verify the property that drives the paper's
	// number: efficiency rises as per-phase work grows relative to the
	// synchronization cost.
	bar := Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
	small := TCEfficiency(RunOpts{Procs: 8, TCSize: 10}, bar)
	large := TCEfficiency(RunOpts{Procs: 8, TCSize: 28}, bar)
	if large <= small {
		t.Fatalf("efficiency did not grow with size: %.3f (n=10) vs %.3f (n=28)", small, large)
	}
	if large <= 0 || large > 1.05 {
		t.Fatalf("efficiency = %.3f out of range", large)
	}
}

func TestSyntheticFigureGridShape(t *testing.T) {
	o := RunOpts{Procs: 4, Rounds: 1}
	grid, bars, pats := SyntheticFigure(exper.AppCounter, o)
	if len(grid) != len(pats) {
		t.Fatalf("grid rows = %d, patterns = %d", len(grid), len(pats))
	}
	for _, row := range grid {
		if len(row) != len(bars) {
			t.Fatalf("grid cols = %d, bars = %d", len(row), len(bars))
		}
		for _, v := range row {
			if v <= 0 {
				t.Fatal("empty cell in synthetic grid")
			}
		}
	}
}

func TestReleaseMachineTwicePanics(t *testing.T) {
	m := NewMachine(Small(), Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP})
	ReleaseMachine(m)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double ReleaseMachine did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "ReleaseMachine called twice") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	ReleaseMachine(m)
}

func TestReleaseMachineNilIsNoop(t *testing.T) {
	ReleaseMachine(nil) // must not panic
}

func TestReacquiredMachineCanBeReleasedAgain(t *testing.T) {
	bar := Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
	// Churn through the pool a few times: a machine that comes back out of
	// the pool must be releasable again without tripping the double-release
	// guard.
	for i := 0; i < 3; i++ {
		m := NewMachine(Small(), bar)
		ReleaseMachine(m)
	}
}
