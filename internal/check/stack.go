package check

import (
	"fmt"
	"sort"

	"dsm/internal/arch"
	"dsm/internal/sim"
)

// CheckStack verifies that the history is a linearizable execution of a
// LIFO stack that starts empty, returning nil if so or an error otherwise.
// The stack has no complete pairwise-rule characterization like the
// queue's, so this is an exact search in the style of Wing & Gong: a
// depth-first enumeration of linearization prefixes, extending each prefix
// only with operations no pending operation strictly precedes, replaying
// stack semantics along the way. Lowe's pruning makes it tractable —
// two prefixes that linearized the same operations and left the same
// stack contents are interchangeable, so each such configuration is
// explored once.
func (h *History) CheckStack() error {
	for i := range h.ops {
		switch h.ops[i].Kind {
		case Push, Pop, PopEmpty:
		default:
			return fmt.Errorf("check: op kind %s in a stack history", h.ops[i].Kind)
		}
	}
	// Per-processor streams, each sequential, ordered by invocation.
	byProc := map[int][]Op{}
	for _, op := range h.ops {
		byProc[op.Proc] = append(byProc[op.Proc], op)
	}
	s := &stackSearch{memo: map[string]struct{}{}, total: len(h.ops)}
	for _, ops := range byProc {
		ops := append([]Op(nil), ops...)
		sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
		s.procs = append(s.procs, ops)
	}
	sort.Slice(s.procs, func(i, j int) bool { return s.procs[i][0].Proc < s.procs[j][0].Proc })
	s.pos = make([]int, len(s.procs))
	if !s.dfs(0) {
		return fmt.Errorf("check: no LIFO linearization of %d stack ops across %d procs", len(h.ops), len(s.procs))
	}
	return nil
}

// stackSearch is the DFS state: per-proc cursors, the replayed stack, and
// the set of configurations already proven fruitless.
type stackSearch struct {
	procs [][]Op
	pos   []int
	stack []arch.Word
	memo  map[string]struct{}
	total int
}

// key encodes (cursors, stack contents) — the full configuration identity.
func (s *stackSearch) key() string {
	b := make([]byte, 0, 2*len(s.pos)+4*len(s.stack)+1)
	for _, p := range s.pos {
		b = append(b, byte(p), byte(p>>8))
	}
	b = append(b, 0xff)
	for _, v := range s.stack {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func (s *stackSearch) dfs(done int) bool {
	if done == s.total {
		return true
	}
	k := s.key()
	if _, dead := s.memo[k]; dead {
		return false
	}
	s.memo[k] = struct{}{}

	// An op may linearize next only if no pending op strictly precedes it
	// (responded before it was invoked). Within a proc the head has the
	// earliest response, so the heads bound the precedence frontier.
	minResp := sim.Time(1<<63 - 1)
	for p, ops := range s.procs {
		if s.pos[p] < len(ops) && ops[s.pos[p]].Respond < minResp {
			minResp = ops[s.pos[p]].Respond
		}
	}
	for p, ops := range s.procs {
		if s.pos[p] >= len(ops) {
			continue
		}
		op := ops[s.pos[p]]
		if op.Invoke > minResp {
			continue
		}
		switch op.Kind {
		case Push:
			s.pos[p]++
			s.stack = append(s.stack, op.Value)
			if s.dfs(done + 1) {
				return true
			}
			s.stack = s.stack[:len(s.stack)-1]
			s.pos[p]--
		case Pop:
			if n := len(s.stack); n > 0 && s.stack[n-1] == op.Value {
				s.pos[p]++
				s.stack = s.stack[:n-1]
				if s.dfs(done + 1) {
					return true
				}
				s.stack = append(s.stack, op.Value)
				s.pos[p]--
			}
		case PopEmpty:
			if len(s.stack) == 0 {
				s.pos[p]++
				if s.dfs(done + 1) {
					return true
				}
				s.pos[p]--
			}
		}
	}
	return false
}
