package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// MaxSweepPoints bounds one batch request: the sweep endpoint is for
// figure-sized plans (tens to hundreds of points), not unbounded jobs.
const MaxSweepPoints = 1024

// sweepRequest is the POST /v1/sweep body: an ordered list of specs
// forming one plan. Each point is normalized and resolved independently
// through the same cache + single-flight + worker pool as /v1/sim.
type sweepRequest struct {
	Points []Spec `json:"points"`
}

// sweepSlot is one point's dispatch bookkeeping: how it resolved (cached
// bytes or an in-flight call to wait on) and under which key.
type sweepSlot struct {
	key   string
	data  []byte // non-nil: served from cache
	call  *flightCall
	state dispatchState
}

// sweepSlotPool recycles the per-request dispatch bookkeeping so a busy
// sweep endpoint does not allocate a slot slice per plan; slices come back
// with their element references cleared (the encoded results they point at
// belong to the cache, not the request).
var sweepSlotPool = sync.Pool{New: func() any { return new([]sweepSlot) }}

func getSweepSlots(n int) *[]sweepSlot {
	p := sweepSlotPool.Get().(*[]sweepSlot)
	if cap(*p) < n {
		*p = make([]sweepSlot, n)
	}
	*p = (*p)[:n]
	return p
}

func putSweepSlots(p *[]sweepSlot) {
	clear(*p)
	sweepSlotPool.Put(p)
}

// sweepWriteSize is the per-request output buffer: large enough to batch
// several NDJSON lines (a counter outcome encodes to ~2KB) into one
// ResponseWriter write, small enough to be cheap per request.
const sweepWriteSize = 32 << 10

// sweepWriterPool recycles the 32KB output buffers across sweep requests;
// a drained buffer is reset off its ResponseWriter before being pooled so
// it retains no reference to a finished request.
var sweepWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, sweepWriteSize) }}

// handleSweep runs a batch of specs and streams one NDJSON line per point,
// in plan order. Each line is byte-identical to the /v1/sim response body
// for the same spec (the exact cached encoding), so clients can mix single
// and batch requests freely. A point that fails yields one
// {"error":"..."} line in its slot, preserving the line-per-point framing.
//
// Dispatch happens before the first byte of the body, so the response
// headers carry the plan's cache profile: X-Sweep-Points, X-Sweep-Hits
// (served from cache), X-Sweep-Coalesced (merged into an in-flight
// identical run — including duplicates within the plan itself).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON plan: {\"points\": [spec, ...]}")
		return
	}
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad plan JSON: %v", err))
		return
	}
	if len(req.Points) == 0 {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, "empty plan: need at least one point")
		return
	}
	if len(req.Points) > MaxSweepPoints {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("plan has %d points, limit %d", len(req.Points), MaxSweepPoints))
		return
	}
	specs := req.Points
	for i, sp := range specs {
		var err error
		if specs[i], err = sp.Normalize(); err != nil {
			s.met.badRequest.Add(1)
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("point %d: %v", i, err))
			return
		}
	}
	s.met.sweeps.Add(1)
	s.met.sweepPoints.Add(uint64(len(specs)))
	start := time.Now()
	overall := start.Add(s.cfg.Timeout)

	// Phase 1: dispatch every point (cache lookup, single-flight join,
	// pool submission) without waiting for any simulation to finish.
	// Duplicate points within the plan coalesce on the plan's own leader,
	// and a plan larger than the queue bound drains through it — dispatch
	// waits for queue space (workers are consuming) rather than bouncing
	// the excess points. The bookkeeping slice is pooled across requests.
	slotsPtr := getSweepSlots(len(specs))
	defer putSweepSlots(slotsPtr)
	slots := *slotsPtr
	var hits, coalesced uint64
	for i, spec := range specs {
		key := spec.Key()
		e, call, state := s.start(spec, key, time.Until(overall))
		var data []byte
		if e != nil {
			data = e.data // sweep lines always stream the identity encoding
		}
		slots[i] = sweepSlot{key: key, data: data, call: call, state: state}
		switch state {
		case dispatchHit:
			hits++
			s.met.sweepHits.Add(1)
		case dispatchMiss:
			s.met.sweepMisses.Add(1)
		case dispatchCoalesced:
			coalesced++
			s.met.sweepCoalesced.Add(1)
		}
	}
	h := w.Header()
	h["Content-Type"] = hdrNDJSON
	h.Set("X-Sweep-Points", strconv.Itoa(len(specs)))
	h.Set("X-Sweep-Hits", strconv.FormatUint(hits, 10))
	h.Set("X-Sweep-Coalesced", strconv.FormatUint(coalesced, 10))

	// Phase 2: stream results in plan order through a buffered writer.
	// Consecutive ready lines (cache hits, already-finished runs) batch
	// into one ResponseWriter write; the buffer is pushed to the client
	// only at a boundary — when the next point is still simulating and the
	// handler is about to block — and once at the end. That replaces the
	// write+flush syscall pair per line with one per run of ready lines,
	// while clients still see every completed result before a stall.
	// One deadline covers the whole batch; once it expires, every
	// unfinished point reports the timeout in its line (the per-point
	// framing survives).
	flusher, _ := w.(http.Flusher)
	bw := sweepWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	defer func() {
		bw.Reset(nil) // drop the ResponseWriter reference before pooling
		sweepWriterPool.Put(bw)
	}()
	push := func() { // boundary: hand buffered lines to the client now
		if bw.Buffered() == 0 {
			return // nothing new for the client; an empty flush still costs a write
		}
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
	deadline := time.NewTimer(time.Until(overall))
	defer deadline.Stop()
	expired := false
	for i := range slots {
		sl := &slots[i]
		data, err := sl.data, error(nil)
		if data == nil {
			if !expired {
				select {
				case <-sl.call.done:
				default:
					// The point is still running: let the client read
					// everything finished so far, then wait.
					push()
					select {
					case <-sl.call.done:
					case <-deadline.C:
						expired = true
						s.met.timeouts.Add(1)
					case <-r.Context().Done():
						// Client gone; stop streaming.
						return
					}
				}
			}
			switch {
			case expired:
				err = fmt.Errorf("deadline of %s exceeded (queue wait + simulation)", s.cfg.Timeout)
			case sl.call.err == errBusy:
				err = fmt.Errorf("simulation queue full (%d queued); retry shortly", s.cfg.Queue)
			case sl.call.err != nil:
				err = sl.call.err
			default:
				data = sl.call.data
			}
		}
		if err != nil {
			s.met.sweepErrors.Add(1)
			line, _ := json.Marshal(map[string]string{"error": err.Error(), "key": sl.key})
			bw.Write(line)
			bw.WriteByte('\n')
		} else {
			bw.Write(data)
		}
	}
	// Final lines: drain the bufio layer only. The handler is about to
	// return, and net/http flushes its own buffers then anyway — an
	// explicit Flusher.Flush here would split the tail into two socket
	// writes (last chunk, then terminal chunk) where the return path emits
	// both in one.
	bw.Flush()
	s.met.latency.observe(time.Since(start))
}
