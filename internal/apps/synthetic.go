// Package apps contains the paper's workloads: the three synthetic
// applications used for the controlled measurements of figures 3-5 (a
// lock-free counter, a counter under a test-and-test-and-set lock, and a
// counter under an MCS lock), and the three "real" applications of figures
// 2 and 6 (Transitive Closure, implemented in full from the paper's figure
// 1, plus LocusRoute-like and Cholesky-like kernels that reproduce the
// sharing patterns the paper measured in the SPLASH originals).
package apps

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// Pattern describes the sharing pattern a synthetic run enforces, mirroring
// the paper's parameters: p processors, contention level c, and average
// write-run length a.
type Pattern struct {
	// Contention is the number of processors concurrently updating the
	// counter in each round (the paper's c). 1 means no contention.
	Contention int
	// WriteRun is the average number of consecutive updates by the active
	// processor per turn (the paper's a); meaningful when Contention is 1.
	// Fractional averages (e.g. 1.5) alternate shorter and longer runs.
	WriteRun float64
	// Rounds is the number of barrier-separated rounds to execute.
	Rounds int
}

// String renders the pattern as the paper labels its graphs.
func (pat Pattern) String() string {
	if pat.Contention <= 1 {
		return fmt.Sprintf("c=1 a=%g", pat.WriteRun)
	}
	return fmt.Sprintf("c=%d", pat.Contention)
}

// SyntheticResult reports a synthetic run's measurements.
type SyntheticResult struct {
	Updates uint64   // counter updates performed
	Elapsed sim.Time // simulated cycles for the whole run
	// AvgCycles is the elapsed time averaged over counter updates — the
	// y-axis of figures 3, 4, and 5.
	AvgCycles float64
}

// runsFor returns how many consecutive updates the active processor
// performs in the given round to achieve the pattern's average write-run
// length: with a = n + f, a fraction f of turns perform n+1 updates.
func (pat Pattern) runsFor(round int) int {
	a := pat.WriteRun
	if a < 1 {
		a = 1
	}
	n := int(a)
	frac := a - float64(n)
	// Spread the longer turns evenly: turn r is long when the accumulated
	// fraction crosses an integer boundary.
	if int(float64(round+1)*frac) > int(float64(round)*frac) {
		return n + 1
	}
	return n
}

// synthRunner is the per-machine scaffolding a synthetic run needs: the
// program closure handed to machine.Run, the per-application update
// closures, and the lock/counter values they drive. One runner lives in
// each machine's app-scratch slot, so a reused machine runs every
// subsequent synthetic point without allocating closures or lock objects
// — the sweep and serving hot path. All simulated state (the counter and
// lock addresses) is still allocated through the machine per run, so a
// reused runner replays exactly what fresh closures would.
type synthRunner struct {
	m    *machine.Machine
	prog func(p *machine.Proc) // allocated once; body reads the fields below

	pat     Pattern
	procs   int
	c       int
	update  func(p *machine.Proc)
	updates uint64

	// Preallocated update bodies and the values they operate on, one set
	// per synthetic application.
	counterUpd, ttsUpd, mcsUpd func(p *machine.Proc)
	counter                    locks.Counter
	tts                        locks.TTSLock
	mcs                        locks.MCSLock
	ctr                        arch.Addr // the plain counter under the TTS/MCS locks
}

// runnerFor returns m's resident synthetic runner, creating it on first
// use. Runners live in the machine's scratch container (see scratchFor) so
// the synthetic and lock-free workload runners coexist on a reused machine.
func runnerFor(m *machine.Machine) *synthRunner {
	sc := scratchFor(m)
	if sc.synth != nil {
		return sc.synth
	}
	r := &synthRunner{m: m}
	r.prog = r.body
	r.counterUpd = func(p *machine.Proc) { r.counter.Inc(p) }
	r.ttsUpd = func(p *machine.Proc) {
		r.tts.Acquire(p)
		p.Store(r.ctr, p.Load(r.ctr)+1)
		r.tts.Release(p)
	}
	r.mcsUpd = func(p *machine.Proc) {
		r.mcs.Acquire(p)
		p.Store(r.ctr, p.Load(r.ctr)+1)
		r.mcs.Release(p)
	}
	sc.synth = r
	return r
}

// body is the per-processor program: rounds separated by the MINT
// constant-time barrier, with the pattern selecting who updates when.
func (r *synthRunner) body(p *machine.Proc) {
	for round := 0; round < r.pat.Rounds; round++ {
		if r.c == 1 {
			// No contention: one processor per round, performing a
			// write run; ownership rotates so data changes hands.
			if p.ID() == round%r.procs {
				runs := r.pat.runsFor(round)
				for u := 0; u < runs; u++ {
					r.update(p)
					r.updates++
				}
			}
		} else {
			// Contention: c processors update concurrently; the active
			// window rotates across rounds.
			if (p.ID()-round*r.c%r.procs+r.procs)%r.procs < r.c {
				r.update(p)
				r.updates++
			}
		}
		p.Barrier()
	}
}

// run executes one synthetic point with the given update body.
func (r *synthRunner) run(pat Pattern, update func(p *machine.Proc)) SyntheticResult {
	procs := r.m.Procs()
	c := pat.Contention
	if c < 1 {
		c = 1
	}
	if c > procs {
		c = procs
	}
	r.pat, r.procs, r.c = pat, procs, c
	r.update = update
	r.updates = 0
	elapsed := r.m.Run(r.prog)
	res := SyntheticResult{Updates: r.updates, Elapsed: elapsed}
	if r.updates > 0 {
		res.AvgCycles = float64(elapsed) / float64(r.updates)
	}
	r.update = nil
	return res
}

// RunSynthetic drives update on m's processors under the given sharing
// pattern. Each round is separated by the MINT constant-time barrier, as
// in the paper's methodology; update is invoked once per counter update.
func RunSynthetic(m *machine.Machine, pat Pattern, update func(p *machine.Proc)) SyntheticResult {
	return runnerFor(m).run(pat, update)
}

// CounterApp is the paper's first synthetic application: a lock-free
// counter updated with the primitive family under study.
func CounterApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern) SyntheticResult {
	r := runnerFor(m)
	r.counter = locks.Counter{Addr: m.AllocSync(policy), Opts: opts}
	return r.run(pat, r.counterUpd)
}

// TTSApp is the second synthetic application: a counter protected by a
// test-and-test-and-set lock with bounded exponential backoff. The counter
// itself is ordinary (INV) data; only the lock uses the policy under study.
func TTSApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern) SyntheticResult {
	r := runnerFor(m)
	r.tts = *locks.NewTTSLock(m, policy, opts)
	r.ctr = m.Alloc(4)
	return r.run(pat, r.ttsUpd)
}

// MCSApp is the third synthetic application: a counter protected by an MCS
// queue lock, exercising the case where load_linked/store_conditional
// simulates compare_and_swap (the release path).
func MCSApp(m *machine.Machine, policy core.Policy, opts locks.Options, pat Pattern) SyntheticResult {
	r := runnerFor(m)
	r.mcs.Init(m, policy, opts)
	r.ctr = m.Alloc(4)
	return r.run(pat, r.mcsUpd)
}
