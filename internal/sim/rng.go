package sim

// RNG is a small deterministic pseudo-random number generator
// (xorshift64*), used for backoff jitter and workload generation so that
// simulations are reproducible across runs and platforms.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant (xorshift state must be non-zero).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator in place to the stream NewRNG(seed) produces.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r.state = seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent generator, useful for giving each simulated
// processor its own stream without cross-coupling.
func (r *RNG) Fork(salt uint64) *RNG {
	n := &RNG{}
	r.ForkInto(n, salt)
	return n
}

// ForkInto seeds dst with the stream Fork(salt) would return, reusing dst's
// storage instead of allocating.
func (r *RNG) ForkInto(dst *RNG, salt uint64) {
	dst.Seed(r.Uint64() ^ (salt+1)*0xbf58476d1ce4e5b9)
}
