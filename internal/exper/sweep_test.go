package exper

import (
	"sync/atomic"
	"testing"
)

func TestSweepRunsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{1, 2, 7, 0} {
		const n = 100
		var counts [n]atomic.Int32
		Sweep(n, par, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("par=%d: job %d ran %d times", par, i, c)
			}
		}
	}
}

func TestSweepZeroJobs(t *testing.T) {
	called := false
	Sweep(0, 4, func(int) { called = true })
	Sweep(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("job ran for n <= 0")
	}
}

func TestSweepSerialOrder(t *testing.T) {
	// par == 1 must run jobs in index order on the calling goroutine.
	var order []int
	Sweep(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial sweep order = %v", order)
		}
	}
}
