// Package machine assembles the simulated multiprocessor and provides the
// execution-driven front end that plays the role MINT plays in the paper:
// application code runs as one goroutine per simulated processor and issues
// timed memory references to the back end (internal/core) through a Proc
// handle.
//
// Determinism: the simulation engine and at most one processor goroutine
// are runnable at any instant. The engine resumes a processor and then
// blocks until that processor submits its next action (a memory operation,
// a compute delay, a barrier arrival, or termination). All back-end
// activity happens in the engine's event loop, so a given program and
// configuration always produce the same cycle-for-cycle execution.
package machine

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// Machine is one simulated DSM multiprocessor.
type Machine struct {
	cfg   core.Config
	eng   *sim.Engine
	net   *mesh.Mesh
	sys   *core.System
	procs []*Proc

	allocNext arch.Addr
	seed      uint64

	barrier barrierState
	running int // processors still executing the current program

	// progScratch is Run's per-call program slice, retained so repeated
	// runs on one machine do not allocate it.
	progScratch []func(p *Proc)

	// appScratch is an opaque slot the application layer uses to cache
	// reusable per-machine structures (program runners, preallocated
	// closures) across runs. Reset leaves it alone: it carries host-side
	// scaffolding only, never simulated state.
	appScratch any

	// pooled marks a machine currently resident in a reuse pool, mirroring
	// the freed flag on pooled protocol messages: releasing an
	// already-released machine would let two callers share one machine and
	// silently corrupt both runs, so pools use MarkPooled/ClearPooled to
	// turn that misuse into an immediate panic.
	pooled bool

	// ctxQuantum, when non-zero, models multiprogramming context switches
	// as on the MIPS R4000 (paper section 2.1): every quantum, each
	// processor's LL reservation bit is cleared, so a store_conditional
	// across a switch fails spuriously. Lock-free code must retry.
	ctxQuantum sim.Time
}

// barrierState implements the constant-time barrier MINT provides to the
// synthetic applications: it enforces the intended sharing pattern without
// perturbing the measurements (all waiters resume one cycle after the last
// arrival). The two slices ping-pong: while a release event holds one, new
// arrivals accumulate in the other, so barrier rounds reuse their storage.
type barrierState struct {
	waiting []*Proc
	spare   []*Proc
	arrived int

	// releasing is the slice a pending release event will drain, and
	// releaseFn the preallocated event body that drains it — at most one
	// release is ever pending (see releaseBarrier), so a single pair
	// suffices and no closure is allocated per barrier round.
	releasing []*Proc
	releaseFn func()
}

// Shared-memory allocation starts above a reserved low page, and the
// per-processor random streams derive from a fixed default seed; Reset
// restores both so a reused machine replays allocation and randomness
// exactly as a fresh one would.
const (
	allocBase   arch.Addr = 0x1000
	defaultSeed uint64    = 0x5eed
)

// New builds a machine. The mesh geometry must accommodate cfg.Nodes.
func New(cfg core.Config) *Machine {
	eng := sim.NewEngine()
	net := mesh.New(eng, cfg.Mesh)
	m := &Machine{
		cfg:       cfg,
		eng:       eng,
		net:       net,
		sys:       core.NewSystem(eng, net, cfg),
		allocNext: allocBase,
		seed:      defaultSeed,
	}
	m.barrier.waiting = make([]*Proc, 0, cfg.Nodes)
	m.barrier.spare = make([]*Proc, 0, cfg.Nodes)
	m.barrier.releaseFn = func() {
		for _, w := range m.barrier.releasing {
			w.step(core.Result{})
		}
	}
	ps := make([]Proc, cfg.Nodes)
	m.procs = make([]*Proc, cfg.Nodes)
	for i := range m.procs {
		m.procs[i] = &ps[i]
		m.procs[i].init(m, mesh.NodeID(i))
	}
	return m
}

// Default returns a machine with the paper's 64-node configuration.
func Default() *Machine { return New(core.DefaultConfig()) }

// Reset returns the machine to its post-New state under cfg — clock at
// zero, caches, directories, and memory empty, counters cleared — while
// keeping every allocation: the engine's event pool, the message pool, the
// cache line slabs, and the mesh route tables. It reports whether the reset
// was possible: cfg must structurally match the machine (node count, mesh,
// cache and memory geometry); behavioral fields (CAS variant, reservation
// scheme, tracking, delays) may differ. On false the machine is unchanged
// and the caller should build a fresh one.
//
// A reset machine reproduces a fresh machine's execution cycle for cycle:
// the virtual clock, event sequence numbers, allocation cursor, and RNG
// seed all restart from their initial values. Reset must only be called
// between runs, on a quiescent machine.
func (m *Machine) Reset(cfg core.Config) bool {
	if cfg.Nodes != m.cfg.Nodes || cfg.Mesh != m.cfg.Mesh {
		return false
	}
	if !m.sys.Reset(cfg) {
		return false
	}
	m.cfg = cfg
	m.eng.Reset()
	m.net.Reset()
	m.allocNext = allocBase
	m.seed = defaultSeed
	m.ctxQuantum = 0
	m.running = 0
	m.barrier.waiting = m.barrier.waiting[:0]
	m.barrier.spare = m.barrier.spare[:0]
	m.barrier.arrived = 0
	for _, p := range m.procs {
		p.stats = ProcStats{}
		p.lastSerial = 0
	}
	return true
}

// MarkPooled records that the machine entered a reuse pool. It reports
// false when the machine is already marked — a double release.
func (m *Machine) MarkPooled() bool {
	if m.pooled {
		return false
	}
	m.pooled = true
	return true
}

// ClearPooled records that the machine left the pool and is owned by a
// caller again.
func (m *Machine) ClearPooled() { m.pooled = false }

// Procs returns the number of simulated processors.
func (m *Machine) Procs() int { return m.cfg.Nodes }

// System exposes the protocol layer (stats, policies, invariant checks).
func (m *Machine) System() *core.System { return m.sys }

// Mesh exposes the interconnect (traffic statistics).
func (m *Machine) Mesh() *mesh.Mesh { return m.net }

// Engine exposes the simulation engine (current time).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Now returns the current simulated time in cycles.
func (m *Machine) Now() sim.Time { return m.eng.Now() }

// ProcStats returns processor i's accumulated activity counters.
func (m *Machine) ProcStats(i int) ProcStats { return m.procs[i].stats }

// SetSeed sets the seed from which per-processor random streams derive.
// Call before Run.
func (m *Machine) SetSeed(s uint64) { m.seed = s }

// SetContextSwitchQuantum enables periodic spurious invalidation of each
// processor's LL reservation, modeling context switches on processors like
// the MIPS R4000 whose LLbit is cleared on a switch (paper section 2.1).
// Zero disables. Call before Run.
func (m *Machine) SetContextSwitchQuantum(q sim.Time) { m.ctxQuantum = q }

// scheduleContextSwitches arms the per-processor reservation-clearing
// ticks for the current program; they stop when the program ends (so the
// post-run drain terminates).
func (m *Machine) scheduleContextSwitches() {
	if m.ctxQuantum == 0 {
		return
	}
	for i := range m.procs {
		node := m.procs[i].node
		// Stagger switches across processors, as independent schedulers
		// would.
		first := m.ctxQuantum + sim.Time(i)*7%m.ctxQuantum
		var tick func()
		tick = func() {
			if m.running == 0 {
				return
			}
			m.sys.Cache(node).CacheArray().ClearReservation()
			m.eng.After(m.ctxQuantum, tick)
		}
		m.eng.After(first, tick)
	}
}

// ------------------------------------------------------------ memory ----

// Alloc reserves size bytes of zeroed shared memory starting at a block
// boundary and returns the base address. Consecutive blocks interleave
// across home nodes, as on the simulated hardware.
func (m *Machine) Alloc(size uint32) arch.Addr {
	if size == 0 {
		panic("machine: zero-size allocation")
	}
	base := m.allocNext
	blocks := (arch.Addr(size) + arch.BlockBytes - 1) / arch.BlockBytes
	m.allocNext += blocks * arch.BlockBytes
	return base
}

// AllocSync reserves one word in its own block under the given coherence
// policy and returns its address. Each call advances to a fresh block, so
// distinct synchronization variables never exhibit false sharing.
func (m *Machine) AllocSync(p core.Policy) arch.Addr {
	a := m.Alloc(arch.BlockBytes)
	m.sys.SetPolicy(a, p)
	return a
}

// AllocSyncAt is AllocSync with the block homed at a specific node.
func (m *Machine) AllocSyncAt(home mesh.NodeID, p core.Policy) arch.Addr {
	for mesh.NodeID(int(arch.BlockNumber(m.allocNext))%m.cfg.Nodes) != home {
		m.allocNext += arch.BlockBytes
	}
	return m.AllocSync(p)
}

// Poke writes a word directly into memory, bypassing the simulation (for
// initializing inputs). It must not be used while data is cached dirty.
func (m *Machine) Poke(a arch.Addr, v arch.Word) {
	m.sys.Home(m.sys.HomeOf(a)).Memory().WriteWord(a, v)
}

// Peek returns the current coherent value of a word without simulation
// cost: the owner's cached copy if the block is dirty, memory otherwise.
func (m *Machine) Peek(a arch.Addr) arch.Word {
	h := m.sys.Home(m.sys.HomeOf(a))
	if e := h.Directory().Peek(a); e != nil && e.State.String() == "exclusive" {
		if l := m.sys.Cache(e.Owner).CacheArray().Peek(a); l != nil {
			return l.Word(a)
		}
	}
	return h.Memory().ReadWord(a)
}

// --------------------------------------------------------------- run ----

// Run executes program once per processor (each sees its own Proc) and
// returns the elapsed simulated time from start to the completion of the
// last processor. It may be called repeatedly; time accumulates.
func (m *Machine) Run(program func(p *Proc)) sim.Time {
	if m.progScratch == nil {
		m.progScratch = make([]func(p *Proc), m.Procs())
	}
	progs := m.progScratch
	for i := range progs {
		progs[i] = program
	}
	return m.RunEach(progs)
}

// AppScratch returns the value stored by SetAppScratch, or nil. The slot
// lets application packages keep reusable run scaffolding resident on the
// machine (surviving Reset) without the machine knowing its type.
func (m *Machine) AppScratch() any { return m.appScratch }

// SetAppScratch stores an application-layer cache on the machine.
func (m *Machine) SetAppScratch(v any) { m.appScratch = v }

// RunEach executes programs[i] on processor i (nil entries idle). It
// returns the elapsed simulated time.
func (m *Machine) RunEach(programs []func(p *Proc)) sim.Time {
	if len(programs) != m.Procs() {
		panic(fmt.Sprintf("machine: %d programs for %d processors", len(programs), m.Procs()))
	}
	start := m.eng.Now()
	m.running = 0
	for i, prog := range programs {
		if prog == nil {
			continue
		}
		m.running++
		p := m.procs[i]
		p.begin(prog, m.seed)
	}
	if m.running == 0 {
		return 0
	}
	m.scheduleContextSwitches()
	for i, prog := range programs {
		if prog == nil {
			continue
		}
		m.eng.At(start, m.procs[i].resumeFn)
	}
	for m.running > 0 {
		if !m.eng.Step() {
			panic(fmt.Sprintf("machine: deadlock with %d processors unfinished", m.running))
		}
	}
	elapsed := m.eng.Now() - start
	// Drain in-flight fire-and-forget traffic (write-backs, drop hints) so
	// Peek and the coherence invariants see a quiescent machine. This does
	// not affect the reported elapsed time.
	for m.eng.Step() {
	}
	return elapsed
}

// arriveBarrier records a processor at the constant-time barrier; when all
// running processors have arrived, all resume one cycle later.
func (m *Machine) arriveBarrier(p *Proc) {
	b := &m.barrier
	b.waiting = append(b.waiting, p)
	b.arrived++
	if b.arrived < m.running {
		return
	}
	m.releaseBarrier()
}

// releaseBarrier resumes every waiter one cycle from now. The drained slice
// goes back to the ping-pong pair once the release has fired; at most one
// release is ever pending (waiters cannot re-arrive before they resume), so
// the swap never hands out storage a pending release still holds and the
// single releasing/releaseFn pair carries every round.
func (m *Machine) releaseBarrier() {
	b := &m.barrier
	b.releasing = b.waiting
	b.waiting = b.spare[:0]
	b.spare = b.releasing
	b.arrived = 0
	m.eng.After(1, b.releaseFn)
}

// procDone records a processor finishing its program.
func (m *Machine) procDone() {
	m.running--
	// A barrier can complete when the last non-finished processor is
	// already waiting and a peer exits (programs should not mix exits
	// with barriers, but do not deadlock if they do).
	if m.running > 0 && m.barrier.arrived >= m.running && m.barrier.arrived > 0 {
		m.releaseBarrier()
	}
}
