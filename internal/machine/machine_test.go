package machine

import (
	"testing"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// newSmall returns a 4-processor machine for fast tests.
func newSmall() *Machine {
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	return New(cfg)
}

func TestRunSingleStoreLoad(t *testing.T) {
	m := newSmall()
	a := m.Alloc(4)
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			p.Store(a, 42)
			if v := p.Load(a); v != 42 {
				t.Errorf("load = %d", v)
			}
		},
		nil, nil, nil,
	})
	if m.Peek(a) != 42 {
		t.Fatalf("Peek = %d", m.Peek(a))
	}
}

func TestRunAllProcessorsFetchAdd(t *testing.T) {
	m := newSmall()
	a := m.AllocSync(core.PolicyINV)
	elapsed := m.Run(func(p *Proc) {
		p.FetchAdd(a, 1)
	})
	if elapsed == 0 {
		t.Fatal("no simulated time elapsed")
	}
	if m.Peek(a) != 4 {
		t.Fatalf("counter = %d, want 4", m.Peek(a))
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := newSmall()
		a := m.AllocSync(core.PolicyINV)
		b := m.AllocSync(core.PolicyUNC)
		return m.Run(func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.FetchAdd(a, 1)
				if p.Rand().Intn(2) == 0 {
					p.FetchAdd(b, 1)
				}
				p.Compute(sim.Time(p.Rand().Intn(5)))
			}
		})
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatalf("elapsed differs between identical runs: %d vs %d", t1, t2)
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	m := newSmall()
	var start, end sim.Time
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			start = p.Now()
			p.Compute(100)
			end = p.Now()
		},
		nil, nil, nil,
	})
	if end-start != 100 {
		t.Fatalf("Compute(100) advanced %d cycles", end-start)
	}
}

func TestBarrierSynchronizesAllProcessors(t *testing.T) {
	m := newSmall()
	var after [4]sim.Time
	m.Run(func(p *Proc) {
		p.Compute(sim.Time(10 * (p.ID() + 1))) // staggered arrivals
		p.Barrier()
		after[p.ID()] = p.Now()
	})
	for i := 1; i < 4; i++ {
		if after[i] != after[0] {
			t.Fatalf("barrier release times differ: %v", after)
		}
	}
	if after[0] < 40 {
		t.Fatalf("barrier released at %d, before last arrival", after[0])
	}
}

func TestBarrierReusable(t *testing.T) {
	m := newSmall()
	a := m.AllocSync(core.PolicyUNC)
	m.Run(func(p *Proc) {
		for i := 0; i < 3; i++ {
			if p.ID() == i%4 {
				p.FetchAdd(a, 1)
			}
			p.Barrier()
		}
	})
	if m.Peek(a) != 3 {
		t.Fatalf("counter = %d, want 3", m.Peek(a))
	}
}

func TestRunEachDistinctPrograms(t *testing.T) {
	m := newSmall()
	a := m.Alloc(4)
	m.RunEach([]func(*Proc){
		func(p *Proc) { p.Store(a, 1) },
		nil,
		nil,
		nil,
	})
	m.RunEach([]func(*Proc){
		nil,
		func(p *Proc) {
			if v := p.Load(a); v != 1 {
				t.Errorf("proc 1 read %d", v)
			}
		},
		nil, nil,
	})
}

func TestAllocBlockAlignedAndDisjoint(t *testing.T) {
	m := newSmall()
	a := m.Alloc(100)
	b := m.Alloc(4)
	if a%arch.BlockBytes != 0 || b%arch.BlockBytes != 0 {
		t.Fatal("allocations not block aligned")
	}
	if b < a+100 {
		t.Fatal("allocations overlap")
	}
}

func TestAllocSyncAtPlacesHome(t *testing.T) {
	m := newSmall()
	for home := 0; home < 4; home++ {
		a := m.AllocSyncAt(mesh.NodeID(home), core.PolicyUNC)
		if got := m.System().HomeOf(a); int(got) != home {
			t.Fatalf("AllocSyncAt(%d) homed at %d", home, got)
		}
		if m.System().PolicyOf(a) != core.PolicyUNC {
			t.Fatal("policy not applied")
		}
	}
}

func TestPokePeek(t *testing.T) {
	m := newSmall()
	a := m.Alloc(32)
	m.Poke(a+8, 77)
	if m.Peek(a+8) != 77 {
		t.Fatal("Poke/Peek mismatch")
	}
}

func TestPeekSeesDirtyCacheData(t *testing.T) {
	m := newSmall()
	a := m.Alloc(4)
	m.RunEach([]func(*Proc){
		func(p *Proc) { p.Store(a, 9) }, // exclusive dirty in cache 0
		nil, nil, nil,
	})
	if m.Peek(a) != 9 {
		t.Fatalf("Peek = %d, want dirty value 9", m.Peek(a))
	}
}

func TestLLSCThroughProcAPI(t *testing.T) {
	m := newSmall()
	a := m.AllocSync(core.PolicyINV)
	var ok1, ok2 bool
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			v := p.LoadLinked(a)
			ok1 = p.StoreConditional(a, v+1)
		},
		nil, nil, nil,
	})
	m.RunEach([]func(*Proc){
		nil,
		func(p *Proc) {
			v := p.LoadLinked(a)
			p.Compute(5)
			ok2 = p.StoreConditional(a, v+10)
		},
		nil, nil,
	})
	if !ok1 || !ok2 {
		t.Fatalf("SCs failed: %v %v", ok1, ok2)
	}
	if m.Peek(a) != 11 {
		t.Fatalf("value = %d, want 11", m.Peek(a))
	}
}

func TestCASThroughProcAPI(t *testing.T) {
	m := newSmall()
	a := m.AllocSync(core.PolicyINV)
	var got [4]bool
	m.Run(func(p *Proc) {
		got[p.ID()] = p.CompareAndSwap(a, 0, arch.Word(p.ID()+1))
	})
	wins := 0
	for _, ok := range got {
		if ok {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("%d CAS winners", wins)
	}
}

func TestProcRandStreamsDiffer(t *testing.T) {
	m := newSmall()
	var first [4]uint64
	m.Run(func(p *Proc) {
		first[p.ID()] = p.Rand().Uint64()
	})
	seen := map[uint64]bool{}
	for _, v := range first {
		if seen[v] {
			t.Fatal("two processors share a random stream")
		}
		seen[v] = true
	}
}

func TestSequentialRunsAccumulateTime(t *testing.T) {
	m := newSmall()
	m.Run(func(p *Proc) { p.Compute(10) })
	before := m.Now()
	m.Run(func(p *Proc) { p.Compute(10) })
	if m.Now() <= before {
		t.Fatal("second run did not advance the clock")
	}
}

func TestDoExposesChain(t *testing.T) {
	m := newSmall()
	a := m.AllocSyncAt(1, core.PolicyUNC)
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			r := p.Do(core.Request{Op: core.OpStore, Addr: a, Val: 3})
			if r.Chain != 2 {
				t.Errorf("UNC store chain = %d, want 2", r.Chain)
			}
		},
		nil, nil, nil,
	})
}
