// Package fleet is the horizontal-scale tier over internal/serve: a
// front-door HTTP router that spreads the content-addressed spec keyspace
// across N dsmserve backends with a consistent-hash ring (virtual nodes,
// bounded remap on membership change), and layers three fleet-wide cache
// mechanics on top:
//
//   - single-flight: concurrent identical misses through the router elect
//     one leader; one probe/simulate sequence goes upstream, followers
//     share its response bytes.
//   - peer cache fill: a primary-owner miss consults the key's secondary
//     owner via the backends' cheap cache-probe path (?probe=1) before
//     paying for a simulation, then copies the found bytes back to the
//     primary via /v1/fill — the serving-tier analogue of fetching a line
//     from a peer cache instead of home memory.
//   - hot-key replication: a space-bounded LRU counter spots keys hot
//     enough to serialize on one shard and fans their bytes to every
//     backend, after which the router round-robins them fleet-wide.
//
// POST /v1/sweep splits a plan by key owner, streams per-backend
// sub-sweeps concurrently, and re-interleaves the NDJSON lines back into
// request order, byte-identical to what a single backend would have
// produced. Responses are relayed with their body bytes untouched, and
// backend backpressure (429 + Retry-After) passes through unchanged.
// cmd/dsmrouter wires a Router to a listener.
package fleet

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// Config describes the fleet the router fronts.
type Config struct {
	// Backends is the static list of dsmserve base URLs, e.g.
	// "http://10.0.0.1:8080". Required, order-insensitive for placement
	// (the ring hashes the URL strings).
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring.
	// 0 selects 128.
	VNodes int
	// HotThreshold is the per-key request count at which a key is
	// replicated to every backend and served round-robin. 0 selects 64;
	// negative disables hot-key handling.
	HotThreshold int
	// HotTrack bounds the number of keys the hot counter follows (LRU
	// beyond it). 0 selects 4096.
	HotTrack int
	// Timeout is the per-upstream-request budget. 0 selects 60s — above
	// the backends' own 30s simulation deadline, so a backend answers its
	// own 504 before the router gives up on it.
	Timeout time.Duration
	// Transport overrides the upstream HTTP transport (tests and the
	// in-process fleet benchmark inject handler-backed transports).
	// nil selects http.DefaultTransport.
	Transport http.RoundTripper
}

// Router is the front door: an http.Handler exposing the same /v1 surface
// as a single dsmserve, routing each request to the fleet behind it.
type Router struct {
	cfg     Config
	ring    *ring
	flight  *flightGroup
	hot     *hotTracker
	client  *http.Client
	met     metrics
	mux     *http.ServeMux
	rr      atomic.Uint64 // round-robin cursor for hot keys
	perBack []atomic.Uint64
	closing atomic.Bool
}

// New builds a router over the configured backends.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for i, b := range cfg.Backends {
		b = strings.TrimSuffix(b, "/")
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: backend %q is not a base URL", cfg.Backends[i])
		}
		if seen[b] {
			return nil, fmt.Errorf("fleet: duplicate backend %q", b)
		}
		seen[b] = true
		cfg.Backends[i] = b
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = 64
	}
	if cfg.HotTrack <= 0 {
		cfg.HotTrack = 4096
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	rt := &Router{
		cfg:     cfg,
		ring:    newRing(cfg.Backends, cfg.VNodes),
		flight:  newFlightGroup(),
		hot:     newHotTracker(cfg.HotTrack, cfg.HotThreshold),
		client:  &http.Client{Transport: cfg.Transport, Timeout: cfg.Timeout},
		mux:     http.NewServeMux(),
		perBack: make([]atomic.Uint64, len(cfg.Backends)),
	}
	rt.mux.HandleFunc("/v1/sim", rt.handleSim)
	rt.mux.HandleFunc("/v1/sweep", rt.handleSweep)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Owners returns the backend base URLs owning key, primary first then
// successive fallbacks — exported for tests and operational tooling that
// need to see the routing decision the ring would make.
func (rt *Router) Owners(key string) []string {
	idx := rt.ring.owners(key, len(rt.cfg.Backends))
	out := make([]string, len(idx))
	for i, b := range idx {
		out[i] = rt.cfg.Backends[b]
	}
	return out
}

// Metrics returns a point-in-time snapshot of the router counters.
func (rt *Router) Metrics() Snapshot {
	snap := rt.met.snapshot()
	snap.Backends = len(rt.cfg.Backends)
	snap.BackendRequests = make([]uint64, len(rt.perBack))
	for i := range rt.perBack {
		snap.BackendRequests[i] = rt.perBack[i].Load()
	}
	snap.TrackedKeys, snap.HotKeys = rt.hot.stats()
	return snap
}

// Close marks the router draining: /healthz flips to 503 and new routing
// requests are refused. In-flight relays finish on their own; the HTTP
// listener's Shutdown provides the actual drain barrier.
func (rt *Router) Close() { rt.closing.Store(true) }

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.closing.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
