package sim

import (
	"testing"
	"testing/quick"
)

// TestPropertyEventsExecuteInTimeOrder schedules a random batch of events
// and verifies execution times are non-decreasing and ties respect
// scheduling order.
func TestPropertyEventsExecuteInTimeOrder(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var ran []rec
		for i, d := range delays {
			i, d := i, d
			e.At(Time(d), func() { ran = append(ran, rec{e.Now(), i}) })
		}
		e.Run(0)
		if len(ran) != len(delays) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i].at < ran[i-1].at {
				return false
			}
			if ran[i].at == ran[i-1].at && ran[i].seq < ran[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// equivalenceWorkload runs one randomized workload — mixed At/AtArg/After/
// AfterArg/Cancel, delays straddling the wheel horizon, nested scheduling
// from inside callbacks — on a fresh engine and returns the firing trace as
// (event id, firing time) pairs plus the executed count. With forceHeap set
// the engine bypasses the timing wheel entirely, so the same seed exercises
// the heap-only scheduler on the identical workload.
func equivalenceWorkload(seed uint64, forceHeap bool) (trace []uint64, executed uint64) {
	e := NewEngine()
	e.forceHeap = forceHeap
	r := NewRNG(seed)
	nextID := uint64(0)
	argFire := func(a any) { trace = append(trace, a.(uint64), uint64(e.Now())) }
	var schedule func(depth int) *Event
	schedule = func(depth int) *Event {
		id := nextID
		nextID++
		// Delays from zero to well past the wheel horizon, so both the
		// bucket path and the overflow-heap path fire in every run.
		delay := Time(r.Intn(3 * wheelSpan))
		switch r.Intn(4) {
		case 0, 1:
			fire := func() {
				trace = append(trace, id, uint64(e.Now()))
				if depth < 3 && r.Intn(3) == 0 {
					child := schedule(depth + 1)
					if r.Intn(4) == 0 {
						child.Cancel()
					}
				}
			}
			if delay%2 == 0 {
				return e.At(e.Now()+delay, fire)
			}
			return e.After(delay, fire)
		case 2:
			return e.AtArg(e.Now()+delay, argFire, id)
		default:
			return e.AfterArg(delay, argFire, id)
		}
	}
	for i := 0; i < 300; i++ {
		ev := schedule(0)
		if r.Intn(8) == 0 {
			ev.Cancel()
		}
	}
	e.Run(0)
	return trace, e.EventsExecuted()
}

// TestPropertySchedulerEquivalence feeds identical randomized workloads to
// the wheel-fronted scheduler and the heap-only scheduler and requires
// identical firing order and EventsExecuted. This pins the tie-break
// invariant: the wheel must preserve the heap's exact (time, seq) total
// order, not just time order.
func TestPropertySchedulerEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		wheelTrace, wheelN := equivalenceWorkload(seed, false)
		heapTrace, heapN := equivalenceWorkload(seed, true)
		if wheelN != heapN {
			t.Logf("seed %#x: executed %d (wheel) vs %d (heap)", seed, wheelN, heapN)
			return false
		}
		if len(wheelTrace) != len(heapTrace) {
			t.Logf("seed %#x: trace length %d vs %d", seed, len(wheelTrace), len(heapTrace))
			return false
		}
		for i := range wheelTrace {
			if wheelTrace[i] != heapTrace[i] {
				t.Logf("seed %#x: traces diverge at %d: %d vs %d",
					seed, i, wheelTrace[i], heapTrace[i])
				return false
			}
		}
		return wheelN > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyResetReproducesFreshEngine interrupts a workload mid-run,
// Resets the engine, and replays the workload on the same (recycled) engine;
// the trace must match a fresh engine exactly. This is what machine reuse in
// internal/exper depends on.
func TestPropertyResetReproducesFreshEngine(t *testing.T) {
	f := func(seed uint64, cut uint16) bool {
		fresh, freshN := equivalenceWorkload(seed, false)

		e := NewEngine()
		r := NewRNG(seed ^ 0x9e3779b97f4a7c15)
		for i := 0; i < 200; i++ {
			d := Time(r.Intn(3 * wheelSpan))
			ev := e.AfterArg(d, func(any) {}, nil)
			if i%5 == 0 {
				ev.Cancel()
			}
		}
		e.Run(Time(cut)) // leave events pending
		e.Reset()
		if e.Now() != 0 || e.Pending() != 0 || e.EventsExecuted() != 0 {
			return false
		}

		// Replay the reference workload on the recycled engine by hand:
		// same generator, but reusing e instead of a fresh engine.
		var trace []uint64
		rr := NewRNG(seed)
		nextID := uint64(0)
		argFire := func(a any) { trace = append(trace, a.(uint64), uint64(e.Now())) }
		var schedule func(depth int) *Event
		schedule = func(depth int) *Event {
			id := nextID
			nextID++
			delay := Time(rr.Intn(3 * wheelSpan))
			switch rr.Intn(4) {
			case 0, 1:
				fire := func() {
					trace = append(trace, id, uint64(e.Now()))
					if depth < 3 && rr.Intn(3) == 0 {
						child := schedule(depth + 1)
						if rr.Intn(4) == 0 {
							child.Cancel()
						}
					}
				}
				if delay%2 == 0 {
					return e.At(e.Now()+delay, fire)
				}
				return e.After(delay, fire)
			case 2:
				return e.AtArg(e.Now()+delay, argFire, id)
			default:
				return e.AfterArg(delay, argFire, id)
			}
		}
		for i := 0; i < 300; i++ {
			ev := schedule(0)
			if rr.Intn(8) == 0 {
				ev.Cancel()
			}
		}
		e.Run(0)
		if e.EventsExecuted() != freshN || len(trace) != len(fresh) {
			return false
		}
		for i := range trace {
			if trace[i] != fresh[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNestedSchedulingNeverTravelsBack: events scheduled from
// inside events never run before their scheduling point.
func TestPropertyNestedSchedulingNeverTravelsBack(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		e := NewEngine()
		r := NewRNG(seed)
		violated := false
		var spawn func(depth int)
		spawn = func(depth int) {
			born := e.Now()
			e.After(Time(r.Intn(20)), func() {
				if e.Now() < born {
					violated = true
				}
				if depth < int(n%6) {
					spawn(depth + 1)
				}
			})
		}
		e.At(0, func() { spawn(0) })
		e.At(0, func() { spawn(0) })
		e.Run(0)
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
