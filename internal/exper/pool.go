package exper

import (
	"sync"

	"dsm/internal/core"
	"dsm/internal/machine"
)

// machinePool recycles machines between the hundreds of independent runs a
// plan performs. Machine construction dominates short runs (the cache
// slabs alone are ~100KB per node pair), and machine.Reset restores a used
// machine to a state that replays a fresh one cycle for cycle, so reuse
// changes host time only. Machines of mismatched geometry (Reset returns
// false) are simply dropped back to the GC.
var machinePool sync.Pool

// AcquireMachine returns a machine configured as cfg, reusing a pooled one
// when its structure matches. Pair with ReleaseMachine.
func AcquireMachine(cfg core.Config) *machine.Machine {
	if m, ok := machinePool.Get().(*machine.Machine); ok {
		m.ClearPooled()
		if m.Reset(cfg) {
			return m
		}
	}
	return machine.New(cfg)
}

// ReleaseMachine returns a machine to the reuse pool. The machine must be
// quiescent (between runs) and must not be used by the caller afterwards.
// Releasing the same machine twice panics: the second release would let
// the pool hand one machine to two concurrent runs, corrupting both (the
// same freed-flag discipline the pooled protocol messages enforce).
func ReleaseMachine(m *machine.Machine) {
	if m == nil {
		return
	}
	if !m.MarkPooled() {
		panic("exper: ReleaseMachine called twice on the same machine; " +
			"the machine is pool property after the first release")
	}
	machinePool.Put(m)
}

// NewMachine builds (or recycles) a machine for one bar under the given
// scale. Pair with ReleaseMachine when the machine's statistics are no
// longer needed.
func NewMachine(o RunOpts, b Bar) *machine.Machine {
	cfg := core.DefaultConfig()
	cfg.Nodes = o.Procs
	w := 1
	for w*w < o.Procs {
		w++
	}
	cfg.Mesh.Width = w
	cfg.Mesh.Height = (o.Procs + w - 1) / w
	cfg.CAS = b.Variant
	return AcquireMachine(cfg)
}
