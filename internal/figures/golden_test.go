package figures

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"testing"

	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/locks"
)

// goldenOpts is the reduced scale the golden output is recorded at
// (cmd/figures -all -procs 16 -rounds 6 -tcsize 12 -par 1).
func goldenOpts() RunOpts {
	return RunOpts{Procs: 16, Rounds: 6, TCSize: 12, Par: 1}
}

// writeAll renders every artifact in cmd/figures -all order: the TC
// efficiency line, Table 1, then Figures 2-6, a blank line after each
// section. If cmd/figures changes its output, the golden must be
// regenerated and this renderer kept in step — a drift between the two
// fails the comparison rather than hiding.
func writeAll(w io.Writer, o RunOpts) {
	bar := Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
	fmt.Fprintf(w, "Transitive Closure parallel efficiency at p=%d, n=%d: %.1f%%\n",
		o.Procs, o.TCSize, 100*TCEfficiency(o, bar))
	fmt.Fprintln(w)
	WriteTable1Par(w, o.Par)
	fmt.Fprintln(w)
	Fig2(w, o)
	fmt.Fprintln(w)
	Fig3(w, o)
	fmt.Fprintln(w)
	Fig4(w, o)
	fmt.Fprintln(w)
	Fig5(w, o)
	fmt.Fprintln(w)
	Fig6(w, o)
	fmt.Fprintln(w)
}

// TestGoldenFigures regenerates every artifact at the recorded reduced
// scale and requires the output byte-identical to the checked-in golden.
// This is the determinism guard for the whole stack — scheduler ordering,
// mesh latency tables, machine reuse: any change that perturbs simulated
// results at all shows up here as a diff.
func TestGoldenFigures(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_small.txt")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	writeAll(&got, goldenOpts())
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("figures output diverged from testdata/golden_small.txt\ngot %d bytes, want %d\n--- got ---\n%s",
			got.Len(), len(want), got.String())
	}
}

// TestGoldenFiguresParallelIdentical re-renders the synthetic figure with
// maximum fan-out and requires the grid identical to the serial run:
// parallelism across runs must not leak into results.
func TestGoldenFiguresParallelIdentical(t *testing.T) {
	o := goldenOpts()
	serial, _, _ := SyntheticFigure(exper.AppCounter, o)
	o.Par = 0
	par, _, _ := SyntheticFigure(exper.AppCounter, o)
	for pi := range serial {
		for bi := range serial[pi] {
			if serial[pi][bi] != par[pi][bi] {
				t.Fatalf("pattern %d bar %d: serial %v != parallel %v", pi, bi, serial[pi][bi], par[pi][bi])
			}
		}
	}
}
