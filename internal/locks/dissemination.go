package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/mesh"
)

// DisseminationBarrier is the dissemination barrier of Hensgen, Finkel &
// Manber: ceil(log2 n) rounds in which processor i signals processor
// (i + 2^k) mod n and spins on its own round-k flag, homed at its node.
// Unlike the tree and tournament barriers there is no wakeup phase — the
// last signalling round completes the barrier for everyone — at the cost
// of n flags written per round instead of n-1 total. Like the others it
// needs no atomic primitive, and flags carry a monotonic round number
// rather than sense reversal.
type DisseminationBarrier struct {
	n     int
	flags [][]arch.Addr // [proc][round]: written by the partner, spun on locally
	round []arch.Word   // per-processor private episode counter
}

// NewDisseminationBarrier allocates the per-round flags, each homed at
// its spinner's node.
func NewDisseminationBarrier(m *machine.Machine) *DisseminationBarrier {
	n := m.Procs()
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &DisseminationBarrier{
		n:     n,
		flags: make([][]arch.Addr, n),
		round: make([]arch.Word, n),
	}
	for i := 0; i < n; i++ {
		b.flags[i] = make([]arch.Addr, rounds)
		for k := 0; k < rounds; k++ {
			b.flags[i][k] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
		}
	}
	return b
}

// Wait blocks (in simulated time) until all processors have called Wait
// for the current episode.
func (b *DisseminationBarrier) Wait(p *machine.Proc) {
	i := p.ID()
	b.round[i]++
	episode := b.round[i]
	for k := range b.flags[i] {
		partner := (i + 1<<k) % b.n
		p.Store(b.flags[partner][k], episode)
		for p.Load(b.flags[i][k]) < episode {
			p.Compute(2)
		}
	}
}
