package asm

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// CPU holds one execution's architectural state.
type CPU struct {
	Regs [32]arch.Word
	// Instructions counts executed instructions (the MINT-style metric).
	Instructions uint64
}

// DefaultMaxInstructions bounds a Run against runaway programs.
const DefaultMaxInstructions = 10_000_000

// Run executes the program on the given simulated processor until halt or
// falling off the end, charging one cycle per non-memory instruction and
// the memory system's full latency for memory operations — the same
// execution-driven accounting MINT provides the paper. The init map
// preloads registers (e.g. base addresses of shared data). It returns the
// final CPU state; it panics on invalid programs or when maxInstr (0 =
// DefaultMaxInstructions) is exceeded, which indicates livelock.
func Run(p *machine.Proc, prog *Program, init map[Reg]arch.Word, maxInstr uint64) CPU {
	if maxInstr == 0 {
		maxInstr = DefaultMaxInstructions
	}
	var cpu CPU
	for r, v := range init {
		cpu.Regs[r] = v
	}
	cpu.Regs[0] = 0

	pc := 0
	for pc >= 0 && pc < len(prog.Instrs) {
		if cpu.Instructions >= maxInstr {
			panic(fmt.Sprintf("asm: instruction budget (%d) exceeded at pc=%d (livelock?)", maxInstr, pc))
		}
		ins := &prog.Instrs[pc]
		cpu.Instructions++
		next := pc + 1

		set := func(r Reg, v arch.Word) {
			if r != 0 {
				cpu.Regs[r] = v
			}
		}
		addr := func() arch.Addr {
			return arch.Addr(cpu.Regs[ins.Rs]) + arch.Addr(uint32(ins.Imm))
		}

		switch ins.Op {
		case LI:
			set(ins.Rd, arch.Word(uint32(ins.Imm)))
			p.Compute(1)
		case MOVE:
			set(ins.Rd, cpu.Regs[ins.Rs])
			p.Compute(1)
		case LW:
			set(ins.Rd, p.Load(addr()))
		case SW:
			p.Store(addr(), cpu.Regs[ins.Rt])
		case LL:
			set(ins.Rd, p.LoadLinked(addr()))
		case SC:
			if p.StoreConditional(addr(), cpu.Regs[ins.Rt]) {
				set(ins.Rt, 1)
			} else {
				set(ins.Rt, 0)
			}
		case LDEX:
			set(ins.Rd, p.LoadExclusive(addr()))
		case DROPC:
			p.DropCopy(addr())
		case FAA:
			set(ins.Rd, p.FetchAdd(addr(), cpu.Regs[ins.Rt]))
		case FAS:
			set(ins.Rd, p.FetchStore(addr(), cpu.Regs[ins.Rt]))
		case FAOR:
			set(ins.Rd, p.FetchOr(addr(), cpu.Regs[ins.Rt]))
		case TAS:
			set(ins.Rd, p.TestAndSet(addr()))
		case CAS:
			if p.CompareAndSwap(addr(), cpu.Regs[ins.Re], cpu.Regs[ins.Rt]) {
				set(ins.Rd, 1)
			} else {
				set(ins.Rd, 0)
			}
		case ADDU:
			set(ins.Rd, cpu.Regs[ins.Rs]+cpu.Regs[ins.Rt])
			p.Compute(1)
		case SUBU:
			set(ins.Rd, cpu.Regs[ins.Rs]-cpu.Regs[ins.Rt])
			p.Compute(1)
		case OR:
			set(ins.Rd, cpu.Regs[ins.Rs]|cpu.Regs[ins.Rt])
			p.Compute(1)
		case AND:
			set(ins.Rd, cpu.Regs[ins.Rs]&cpu.Regs[ins.Rt])
			p.Compute(1)
		case XOR:
			set(ins.Rd, cpu.Regs[ins.Rs]^cpu.Regs[ins.Rt])
			p.Compute(1)
		case SLTU:
			set(ins.Rd, boolWord(cpu.Regs[ins.Rs] < cpu.Regs[ins.Rt]))
			p.Compute(1)
		case ADDIU:
			set(ins.Rd, cpu.Regs[ins.Rs]+arch.Word(uint32(ins.Imm)))
			p.Compute(1)
		case ORI:
			set(ins.Rd, cpu.Regs[ins.Rs]|arch.Word(uint32(ins.Imm)))
			p.Compute(1)
		case ANDI:
			set(ins.Rd, cpu.Regs[ins.Rs]&arch.Word(uint32(ins.Imm)))
			p.Compute(1)
		case SLTIU:
			set(ins.Rd, boolWord(cpu.Regs[ins.Rs] < arch.Word(uint32(ins.Imm))))
			p.Compute(1)
		case SLL:
			set(ins.Rd, cpu.Regs[ins.Rs]<<uint(ins.Imm&31))
			p.Compute(1)
		case SRL:
			set(ins.Rd, cpu.Regs[ins.Rs]>>uint(ins.Imm&31))
			p.Compute(1)
		case BEQ:
			if cpu.Regs[ins.Rd] == cpu.Regs[ins.Rt] {
				next = ins.Target
			}
			p.Compute(1)
		case BNE:
			if cpu.Regs[ins.Rd] != cpu.Regs[ins.Rt] {
				next = ins.Target
			}
			p.Compute(1)
		case BLEZ:
			// Unsigned machine; "less or equal zero" means zero.
			if cpu.Regs[ins.Rd] == 0 {
				next = ins.Target
			}
			p.Compute(1)
		case BGTZ:
			if cpu.Regs[ins.Rd] != 0 {
				next = ins.Target
			}
			p.Compute(1)
		case J:
			next = ins.Target
			p.Compute(1)
		case PAUSE:
			p.Compute(sim.Time(uint32(ins.Imm)))
		case PAUSER:
			p.Compute(sim.Time(cpu.Regs[ins.Rs]))
		case RAND:
			bound := int(cpu.Regs[ins.Rs])
			if bound <= 0 {
				bound = 1
			}
			set(ins.Rd, arch.Word(p.Rand().Intn(bound)))
			p.Compute(1)
		case NOP:
			p.Compute(1)
		case HALT:
			return cpu
		default:
			panic(fmt.Sprintf("asm: unimplemented opcode %v at line %d", ins.Op, ins.line))
		}
		pc = next
	}
	return cpu
}

func boolWord(b bool) arch.Word {
	if b {
		return 1
	}
	return 0
}
