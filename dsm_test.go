package dsm

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	m := NewSmall(4)
	counter := m.AllocSync(INV)
	m.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.FetchAdd(counter, 1)
		}
	})
	if m.Peek(counter) != 20 {
		t.Fatalf("counter = %d, want 20", m.Peek(counter))
	}
}

func TestNewSmallGeometries(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 9, 16, 17, 33, 64} {
		m := NewSmall(n)
		if m.Procs() != n {
			t.Fatalf("NewSmall(%d).Procs() = %d", n, m.Procs())
		}
	}
}

func TestNew64(t *testing.T) {
	m := New64()
	if m.Procs() != 64 {
		t.Fatalf("Procs = %d", m.Procs())
	}
}

func TestLocksThroughFacade(t *testing.T) {
	m := NewSmall(4)
	l := NewTTSLock(m, INV, Options{Prim: CAS})
	shared := m.Alloc(4)
	m.Run(func(p *Proc) {
		for i := 0; i < 4; i++ {
			l.Acquire(p)
			p.Store(shared, p.Load(shared)+1)
			l.Release(p)
		}
	})
	if m.Peek(shared) != 16 {
		t.Fatalf("shared = %d", m.Peek(shared))
	}
}

func TestMCSAndBarrierThroughFacade(t *testing.T) {
	m := NewSmall(4)
	l := NewMCSLock(m, UNC, Options{Prim: LLSC})
	b := NewTreeBarrier(m)
	shared := m.Alloc(4)
	m.Run(func(p *Proc) {
		l.Acquire(p)
		p.Store(shared, p.Load(shared)+1)
		l.Release(p)
		b.Wait(p)
		if v := p.Load(shared); v != 4 {
			t.Errorf("processor %d sees %d after barrier", p.ID(), v)
		}
	})
}

func TestSyntheticAppsThroughFacade(t *testing.T) {
	pat := Pattern{Contention: 2, Rounds: 3}
	for name, run := range map[string]func(*Machine, Policy, Options, Pattern) SyntheticResult{
		"counter": CounterApp, "tts": TTSApp, "mcs": MCSApp,
	} {
		m := NewSmall(4)
		res := run(m, INV, Options{Prim: CAS}, pat)
		if res.Updates != 6 {
			t.Fatalf("%s: updates = %d, want 6", name, res.Updates)
		}
		if res.AvgCycles <= 0 {
			t.Fatalf("%s: no cycles", name)
		}
	}
}

func TestConfigKnobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	cfg.CAS = CASShare
	cfg.ResvScheme = ResvSerial
	m := NewMachine(cfg)
	a := m.AllocSync(UNC)
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			v := p.LoadLinked(a)
			if !p.StoreConditional(a, v+1) {
				t.Error("SC failed under serial scheme")
			}
		},
		nil, nil, nil,
	})
	if m.Peek(a) != 1 {
		t.Fatalf("value = %d", m.Peek(a))
	}
}

func TestCustomAlgorithmOnPublicAPI(t *testing.T) {
	// A ticket lock built from the public API: FAI for tickets, plain
	// loads for the grant word.
	m := NewSmall(4)
	ticket := m.AllocSync(UNC)
	grant := m.Alloc(4)
	shared := m.Alloc(4)
	m.Run(func(p *Proc) {
		for i := 0; i < 3; i++ {
			my := p.FetchAdd(ticket, 1)
			for p.Load(grant) != my {
				p.Compute(8)
			}
			p.Store(shared, p.Load(shared)+1)
			p.Store(grant, my+1)
		}
	})
	if m.Peek(shared) != 12 {
		t.Fatalf("shared = %d, want 12", m.Peek(shared))
	}
}
