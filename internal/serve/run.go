package serve

import (
	"bytes"
	"encoding/json"

	"dsm/internal/apps"
	"dsm/internal/figures"
	"dsm/internal/report"
)

// Outcome is the service's response body: the canonical spec that was run,
// its content address, the workload's headline numbers, and the full
// measurement report. Field order is fixed by declaration order and every
// nested encoder is byte-stable, so encoding a given outcome twice yields
// identical bytes — the property behind the cache-hit determinism
// guarantee.
type Outcome struct {
	Spec    Spec   `json:"spec"`
	Key     string `json:"key"`
	Elapsed uint64 `json:"elapsed_cycles"`

	// Synthetic workloads: counter updates and the figures 3-5 y-axis.
	Updates   uint64  `json:"updates,omitempty"`
	AvgCycles float64 `json:"avg_cycles,omitempty"`

	// Real applications: completed work items (wires routed, columns
	// factored, reachable pairs).
	Work uint64 `json:"work,omitempty"`

	Report *report.Report `json:"report"`
}

// Encode renders the outcome as its canonical JSON bytes (one object plus
// a trailing newline, matching report.WriteJSON framing).
func (o *Outcome) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(o); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Run executes one canonical spec on a machine drawn from the figures
// reuse pool and returns its outcome. The simulation is deterministic:
// the same canonical spec always produces the same outcome, on a fresh
// machine or a recycled one (machine.Reset replays a fresh machine cycle
// for cycle), so Run is safe to memoize by spec key.
//
// The spec must already be normalized; Run panics on enum values
// Normalize would have rejected.
func Run(sp Spec) *Outcome {
	policy := mustParse(ParsePolicy(sp.Policy))
	prim := mustParse(ParsePrim(sp.Prim))
	variant := mustParse(ParseVariant(sp.Variant))
	bar := figures.Bar{
		Policy:  policy,
		Prim:    prim,
		Variant: variant,
		LoadEx:  sp.LoadEx,
		Drop:    sp.Drop,
	}
	o := figures.RunOpts{Procs: sp.Procs, Rounds: sp.Rounds, TCSize: sp.Size}
	m := figures.NewMachine(o, bar)
	defer figures.ReleaseMachine(m)
	if sp.Seed != 0 {
		m.SetSeed(sp.Seed)
	}

	out := &Outcome{Spec: sp, Key: sp.Key()}
	pat := apps.Pattern{Contention: sp.Contention, WriteRun: sp.WriteRun, Rounds: sp.Rounds}
	synthetic := func(res apps.SyntheticResult) {
		out.Elapsed = uint64(res.Elapsed)
		out.Updates = res.Updates
		out.AvgCycles = res.AvgCycles
	}
	switch sp.App {
	case "counter":
		synthetic(apps.CounterApp(m, policy, bar.Opts(), pat))
	case "tts":
		synthetic(apps.TTSApp(m, policy, bar.Opts(), pat))
	case "mcs":
		synthetic(apps.MCSApp(m, policy, bar.Opts(), pat))
	case "tclosure":
		cfg := apps.TClosureConfig{Size: sp.Size, Policy: policy, Opts: bar.Opts(), Seed: 11}
		if sp.Seed != 0 {
			cfg.Seed = sp.Seed
		}
		res := apps.TClosure(m, cfg)
		out.Elapsed = uint64(res.Elapsed)
		out.Work = uint64(res.Reachable)
	case "locusroute":
		cfg := apps.DefaultLocusRoute(sp.Procs)
		cfg.Policy, cfg.Opts = policy, bar.Opts()
		if sp.Seed != 0 {
			cfg.Seed = sp.Seed
		}
		res := apps.LocusRoute(m, cfg)
		out.Elapsed = uint64(res.Elapsed)
		out.Work = res.Work
	case "cholesky":
		cfg := apps.DefaultCholesky(sp.Procs)
		cfg.Policy, cfg.Opts = policy, bar.Opts()
		if sp.Seed != 0 {
			cfg.Seed = sp.Seed
		}
		res := apps.Cholesky(m, cfg)
		out.Elapsed = uint64(res.Elapsed)
		out.Work = res.Work
	default:
		panic("serve: Run on unnormalized spec app " + sp.App)
	}
	out.Report = report.Collect(m)
	return out
}

// mustParse unwraps a parse-helper result on an already-normalized spec,
// where a failure is a programming error, not bad input.
func mustParse[T ~uint8](v T, err error) T {
	if err != nil {
		panic("serve: Run on unnormalized spec: " + err.Error())
	}
	return v
}
