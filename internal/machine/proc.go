package machine

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// actionKind classifies what a processor goroutine asks of the engine.
type actionKind uint8

const (
	actIssue actionKind = iota
	actCompute
	actBarrier
	actDone
)

type action struct {
	kind   actionKind
	req    core.Request
	cycles sim.Time
}

// ProcStats aggregates one processor's activity over its programs.
type ProcStats struct {
	Ops           uint64   // memory operations issued
	MemoryCycles  sim.Time // cycles stalled on memory operations
	ComputeCycles sim.Time // cycles spent in Compute
	BarrierCycles sim.Time // cycles waiting at the MINT barrier
	Barriers      uint64   // barrier episodes joined
}

// Proc is a simulated processor as seen by application code. All methods
// except ID must be called from the program function executing on this
// processor; each memory operation suspends the program for its simulated
// duration.
type Proc struct {
	m    *Machine
	node mesh.NodeID

	resume chan core.Result
	action chan action
	rng    sim.RNG

	// done and resumeFn are preallocated once per Proc so the per-operation
	// hot path (one Done callback per memory reference, one resume callback
	// per compute delay) schedules without allocating a closure.
	done     func(core.Result)
	resumeFn func()

	// prog is the program the current (or next) goroutine runs, and runFn
	// the preallocated `func() { p.run() }` bound-method value begin
	// spawns: `go p.run()` would allocate that binding per launch.
	prog  func(*Proc)
	runFn func()

	lastSerial arch.Word // serial returned by the most recent load_linked
	stats      ProcStats
}

func (p *Proc) init(m *Machine, n mesh.NodeID) {
	p.m = m
	p.node = n
	p.resume = make(chan core.Result)
	p.action = make(chan action)
	p.done = func(res core.Result) { p.step(res) }
	p.resumeFn = func() { p.step(core.Result{}) }
	p.runFn = p.run
}

// begin prepares the processor for a program and starts its goroutine. The
// goroutine waits for the engine's first resume before touching anything.
// The rendezvous channels are reused across programs (the previous program's
// goroutine has exited and left them empty).
func (p *Proc) begin(prog func(*Proc), seed uint64) {
	var base sim.RNG
	base.Seed(seed)
	base.ForkInto(&p.rng, uint64(p.node))
	p.lastSerial = 0
	// Writing prog here is ordered before the new goroutine's read; the
	// previous goroutine read it once at startup and has since signalled
	// actDone, so no concurrent reader remains.
	p.prog = prog
	go p.runFn()
}

// run is the processor goroutine's body. It waits for the engine's first
// resume before touching anything.
func (p *Proc) run() {
	<-p.resume
	p.prog(p)
	p.action <- action{kind: actDone}
}

// step transfers control to the processor goroutine, waits for its next
// action, and dispatches it. It runs on the engine goroutine, inside an
// event; exactly one goroutine is runnable at any instant.
func (p *Proc) step(r core.Result) {
	p.resume <- r
	act := <-p.action
	switch act.kind {
	case actIssue:
		req := act.req
		req.Done = p.done
		p.m.sys.Cache(p.node).Issue(req)
	case actCompute:
		p.m.eng.After(act.cycles, p.resumeFn)
	case actBarrier:
		p.m.arriveBarrier(p)
	case actDone:
		p.m.procDone()
	}
}

// do issues one memory operation and blocks (in simulated time) until it
// completes.
func (p *Proc) do(req core.Request) core.Result {
	start := p.m.eng.Now()
	p.action <- action{kind: actIssue, req: req}
	r := <-p.resume
	p.stats.Ops++
	p.stats.MemoryCycles += p.m.eng.Now() - start
	return r
}

// Stats returns the processor's accumulated activity counters.
func (p *Proc) Stats() ProcStats { return p.stats }

// ID returns the processor number.
func (p *Proc) ID() int { return int(p.node) }

// Now returns the current simulated time.
func (p *Proc) Now() sim.Time { return p.m.eng.Now() }

// Rand returns this processor's private deterministic random stream (used
// for backoff jitter and workload generation).
func (p *Proc) Rand() *sim.RNG { return &p.rng }

// Compute consumes n cycles of local computation.
func (p *Proc) Compute(n sim.Time) {
	if n == 0 {
		return
	}
	p.stats.ComputeCycles += n
	p.action <- action{kind: actCompute, cycles: n}
	<-p.resume
}

// Barrier joins the MINT-style constant-time barrier across all processors
// running the current program. It enforces sharing patterns in the
// synthetic applications without perturbing timing (resumes one cycle
// after the last arrival).
func (p *Proc) Barrier() {
	start := p.m.eng.Now()
	p.action <- action{kind: actBarrier}
	<-p.resume
	p.stats.Barriers++
	p.stats.BarrierCycles += p.m.eng.Now() - start
}

// Do issues a raw request (escape hatch exposing the full Result,
// including the serialized-message chain of Table 1).
func (p *Proc) Do(req core.Request) core.Result { return p.do(req) }

// Load performs an ordinary load.
func (p *Proc) Load(a arch.Addr) arch.Word {
	return p.do(core.Request{Op: core.OpLoad, Addr: a}).Value
}

// Store performs an ordinary store.
func (p *Proc) Store(a arch.Addr, v arch.Word) {
	p.do(core.Request{Op: core.OpStore, Addr: a, Val: v})
}

// LoadExclusive reads a word while acquiring exclusive access to its block
// (the paper's auxiliary instruction; under INV it makes an immediately
// following compare_and_swap a local hit).
func (p *Proc) LoadExclusive(a arch.Addr) arch.Word {
	return p.do(core.Request{Op: core.OpLoadExclusive, Addr: a}).Value
}

// DropCopy self-invalidates the block containing a (writing back dirty
// data), reducing the serialized messages of a subsequent access by
// another processor.
func (p *Proc) DropCopy(a arch.Addr) {
	p.do(core.Request{Op: core.OpDropCopy, Addr: a})
}

// FetchAdd atomically adds delta and returns the previous value.
func (p *Proc) FetchAdd(a arch.Addr, delta arch.Word) arch.Word {
	return p.do(core.Request{Op: core.OpFetchAdd, Addr: a, Val: delta}).Value
}

// FetchStore atomically swaps in v and returns the previous value.
func (p *Proc) FetchStore(a arch.Addr, v arch.Word) arch.Word {
	return p.do(core.Request{Op: core.OpFetchStore, Addr: a, Val: v}).Value
}

// FetchOr atomically ors in v and returns the previous value.
func (p *Proc) FetchOr(a arch.Addr, v arch.Word) arch.Word {
	return p.do(core.Request{Op: core.OpFetchOr, Addr: a, Val: v}).Value
}

// TestAndSet atomically sets the word to 1 and returns the previous value.
func (p *Proc) TestAndSet(a arch.Addr) arch.Word {
	return p.do(core.Request{Op: core.OpTestAndSet, Addr: a}).Value
}

// CompareAndSwap installs new if the word equals expect, reporting success.
func (p *Proc) CompareAndSwap(a arch.Addr, expect, new arch.Word) bool {
	return p.do(core.Request{Op: core.OpCAS, Addr: a, Val: expect, Val2: new}).OK
}

// LoadLinked reads a word and sets a reservation. Under the serial-number
// scheme the returned serial is remembered for the next StoreConditional.
func (p *Proc) LoadLinked(a arch.Addr) arch.Word {
	r := p.do(core.Request{Op: core.OpLL, Addr: a})
	p.lastSerial = r.Serial
	return r.Value
}

// LoadLinkedFull exposes the serial number and the beyond-limit hint.
func (p *Proc) LoadLinkedFull(a arch.Addr) core.Result {
	r := p.do(core.Request{Op: core.OpLL, Addr: a})
	p.lastSerial = r.Serial
	return r
}

// StoreConditional writes v if the reservation from the most recent
// LoadLinked still holds, reporting success.
func (p *Proc) StoreConditional(a arch.Addr, v arch.Word) bool {
	return p.do(core.Request{Op: core.OpSC, Addr: a, Val: v, Val2: p.lastSerial}).OK
}

// StoreConditionalSerial is a bare store_conditional carrying an explicit
// expected serial number (serial-number reservation scheme only). The
// paper notes this saves a memory access in algorithms like the MCS lock
// release.
func (p *Proc) StoreConditionalSerial(a arch.Addr, v, serial arch.Word) bool {
	return p.do(core.Request{Op: core.OpSC, Addr: a, Val: v, Val2: serial}).OK
}
