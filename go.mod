module dsm

go 1.22
