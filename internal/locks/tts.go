package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// TTSLock is the test-and-test-and-set lock with bounded exponential
// backoff (Rudolph & Segall's test-and-test-and-set plus the backoff of
// Mellor-Crummey & Scott), the lock the paper substitutes for the SPLASH
// library locks.
type TTSLock struct {
	Addr arch.Addr
	Opts Options

	// MinBackoff/MaxBackoff bound the exponential backoff, in cycles.
	MinBackoff sim.Time
	MaxBackoff sim.Time
}

// NewTTSLock allocates a lock in its own block under the given policy.
func NewTTSLock(m *machine.Machine, policy core.Policy, opts Options) *TTSLock {
	return &TTSLock{
		Addr:       m.AllocSync(policy),
		Opts:       opts,
		MinBackoff: 16,
		MaxBackoff: 1024,
	}
}

// Acquire spins until it holds the lock.
func (l *TTSLock) Acquire(p *machine.Proc) {
	backoff := l.MinBackoff
	for {
		// Test: spin on ordinary loads (cache hits under INV/UPD) until
		// the lock looks free.
		for p.Load(l.Addr) != 0 {
			p.Compute(jitter(p, backoff))
			if backoff < l.MaxBackoff {
				backoff *= 2
			}
		}
		// Test-and-set with the configured primitive.
		if l.Opts.TestAndSet(p, l.Addr) == 0 {
			return
		}
		p.Compute(jitter(p, backoff))
		if backoff < l.MaxBackoff {
			backoff *= 2
		}
	}
}

// Release frees the lock with an ordinary store (optionally dropping the
// copy to speed the next acquirer).
func (l *TTSLock) Release(p *machine.Proc) {
	p.Store(l.Addr, 0)
	if l.Opts.Drop {
		p.DropCopy(l.Addr)
	}
}

// jitter returns a uniformly random delay in [1, bound], from the
// processor's private stream.
func jitter(p *machine.Proc, bound sim.Time) sim.Time {
	if bound <= 1 {
		return 1
	}
	return 1 + sim.Time(p.Rand().Intn(int(bound)))
}
