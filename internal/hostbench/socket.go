package hostbench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsm/internal/serve"
)

// SocketPoint is one measurement on the real-socket curve: the throughput a
// loopback-TCP client sees against a dsmserve-shaped server — the same
// serving stack as the in-process scaling ladder, plus the kernel, the HTTP
// client, and the wire. The gap between a SocketPoint and the matching
// in-process ScalingPoint is the socket tax this repo's serving-path work
// keeps shrinking.
//
// Conditions mirror dsmload's benchmark of record (BENCH_PR5.json): 32
// closed-loop clients, dup 0.9 over the 16-spec working set, and for the
// sweep mode 8-point plans to /v1/sweep. ConnsNew/ConnsReused come from
// httptrace on every request, so a throughput regression is attributable to
// connection churn vs server time.
type SocketPoint struct {
	Mode        string  `json:"mode"` // "sim" (POST /v1/sim) or "sweep" (batched /v1/sweep)
	Clients     int     `json:"clients"`
	Batch       int     `json:"batch,omitempty"`
	Dup         float64 `json:"dup"`
	PtsPerSec   float64 `json:"pts_per_sec"`
	P99US       uint64  `json:"p99_us"` // per-request (sim) or per-plan (sweep) client latency
	HitRatio    float64 `json:"hit_ratio"`
	ConnsNew    uint64  `json:"conns_new"`
	ConnsReused uint64  `json:"conns_reused"`
}

// Socket-curve conditions of record, matching the dsmload invocations that
// produced the PR 4/PR 5 baselines.
const (
	socketClients = 32
	socketBatch   = 8
	socketDup     = 0.9
)

// MeasureSocket measures the loopback-TCP serving path at roughly points
// simulation points per cell: single-request /v1/sim, the 8-point /v1/sweep
// plans of record, and 32-point plans showing how batching amortizes the
// per-request socket tax. Each cell gets a fresh server (real listener,
// fresh cache) with the working set warmed first, so the measured mix is
// the steady dup-0.9 profile, not cold-start misses.
func MeasureSocket(points int) []SocketPoint {
	return []SocketPoint{
		measureSocketCell("sim", 1, points),
		measureSocketCell("sweep", socketBatch, points),
		measureSocketCell("sweep", 4*socketBatch, points),
	}
}

func measureSocketCell(mode string, batch, points int) SocketPoint {
	return measureSocketCellN(socketClients, mode, batch, points)
}

func measureSocketCellN(clients int, mode string, batch, points int) SocketPoint {
	s := serve.New(serve.Config{Workers: runtime.GOMAXPROCS(0), Queue: 2*clients + 16})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// One idle slot per client: closed-loop clients reuse their connection
	// instead of fighting over DefaultTransport's two per-host idle slots.
	transport := &http.Transport{
		MaxIdleConns:        2 * clients,
		MaxIdleConnsPerHost: clients,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 60 * time.Second}

	var connsNew, connsReused atomic.Uint64
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				connsReused.Add(1)
			} else {
				connsNew.Add(1)
			}
		},
	}
	traceCtx := httptrace.WithClientTrace(context.Background(), trace)

	url := srv.URL + "/v1/sim"
	if mode == "sweep" {
		url = srv.URL + "/v1/sweep"
	}
	post := func(body string) (status, hits, pts int) {
		req, err := http.NewRequestWithContext(traceCtx, http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			panic(fmt.Sprintf("hostbench: socket request: %v", err))
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			panic(fmt.Sprintf("hostbench: socket post: %v", err))
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		hits, _ = strconv.Atoi(resp.Header.Get("X-Sweep-Hits"))
		pts, _ = strconv.Atoi(resp.Header.Get("X-Sweep-Points"))
		if resp.Header.Get("X-Cache") == "hit" {
			hits, pts = 1, 1
		} else if mode == "sim" {
			pts = 1
		}
		return resp.StatusCode, hits, pts
	}

	set := scalingWorkingSet()
	for _, spec := range set { // warm: every working-set spec simulates once
		resp, err := client.Post(srv.URL+"/v1/sim", "application/json", strings.NewReader(spec))
		if err != nil || resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("hostbench: socket warmup: %v (%v)", err, resp))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var seed, failed, hits, served atomic.Uint64
	seed.Store(uint64(1)<<56 - 1) // Add(1) yields the cell's first fresh seed
	var handout atomic.Int64
	lat := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			draw := func() string {
				if rng.Float64() < socketDup {
					return set[rng.Intn(len(set))]
				}
				return fmt.Sprintf(`{"app":"counter","procs":8,"c":8,"rounds":3,"seed":%d}`, seed.Add(1))
			}
			lat[c] = make([]time.Duration, 0, points/(batch*clients)+1)
			for handout.Add(int64(batch)) <= int64(points) {
				body := draw()
				if mode == "sweep" {
					pts := make([]string, batch)
					pts[0] = body
					for i := 1; i < batch; i++ {
						pts[i] = draw()
					}
					body = `{"points":[` + strings.Join(pts, ",") + `]}`
				}
				t0 := time.Now()
				code, h, p := post(body)
				lat[c] = append(lat[c], time.Since(t0))
				if code != http.StatusOK {
					failed.Add(uint64(batch))
					continue
				}
				hits.Add(uint64(h))
				served.Add(uint64(p))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		panic(fmt.Sprintf("hostbench: socket cell %s dropped %d of %d points", mode, n, points))
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pt := SocketPoint{
		Mode:        mode,
		Clients:     clients,
		Dup:         socketDup,
		PtsPerSec:   float64(served.Load()) / elapsed.Seconds(),
		P99US:       uint64(all[len(all)*99/100].Microseconds()),
		ConnsNew:    connsNew.Load(),
		ConnsReused: connsReused.Load(),
	}
	if mode == "sweep" {
		pt.Batch = batch
	}
	if n := served.Load(); n > 0 {
		pt.HitRatio = float64(hits.Load()) / float64(n)
	}
	return pt
}
