package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doSweep(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// sweepPlan is four quick points across the design space, including
// distinct policies so every line is a distinct simulation.
const sweepPlan = `{"points":[
	{"app":"counter","procs":4,"rounds":2},
	{"app":"counter","policy":"UNC","procs":4,"rounds":2},
	{"app":"counter","policy":"UPD","procs":4,"rounds":2},
	{"app":"counter","prim":"CAS","procs":4,"rounds":2}
]}`

// TestSweepLinesByteIdenticalToSingleSim is the batch endpoint's core
// contract: each NDJSON line must be byte-for-byte the /v1/sim response
// body for the same spec.
func TestSweepLinesByteIdenticalToSingleSim(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	w := doSweep(s, sweepPlan)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep status = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := bytes.Split(bytes.TrimSuffix(w.Body.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("got %d NDJSON lines, want 4:\n%s", len(lines), w.Body.String())
	}
	singles := []string{
		`{"app":"counter","procs":4,"rounds":2}`,
		`{"app":"counter","policy":"UNC","procs":4,"rounds":2}`,
		`{"app":"counter","policy":"UPD","procs":4,"rounds":2}`,
		`{"app":"counter","prim":"CAS","procs":4,"rounds":2}`,
	}
	for i, spec := range singles {
		sw := doJSON(s, spec)
		if sw.Code != http.StatusOK {
			t.Fatalf("single sim %d status = %d", i, sw.Code)
		}
		single := bytes.TrimSuffix(sw.Body.Bytes(), []byte("\n"))
		if !bytes.Equal(lines[i], single) {
			t.Fatalf("sweep line %d differs from single /v1/sim body:\n%s\n--- vs ---\n%s",
				i, lines[i], single)
		}
	}
}

// TestSweepRePostAllHits checks a repeated plan is served entirely from
// the result cache, with the dispatch profile in the response headers.
func TestSweepRePostAllHits(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	first := doSweep(s, sweepPlan)
	if first.Code != http.StatusOK {
		t.Fatalf("first sweep status = %d", first.Code)
	}
	if h := first.Header().Get("X-Sweep-Points"); h != "4" {
		t.Fatalf("X-Sweep-Points = %q, want 4", h)
	}
	second := doSweep(s, sweepPlan)
	if second.Code != http.StatusOK {
		t.Fatalf("second sweep status = %d", second.Code)
	}
	if h := second.Header().Get("X-Sweep-Hits"); h != "4" {
		t.Fatalf("re-POST X-Sweep-Hits = %q, want 4", h)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("re-POSTed sweep body differs from the first")
	}
	snap := s.Metrics()
	if snap.Sweeps != 2 || snap.SweepPoints != 8 || snap.SweepHits != 4 {
		t.Fatalf("metrics = %+v", snap)
	}
}

// TestSweepDuplicatePointsCoalesce checks duplicates within one cold plan
// merge on the plan's own single-flight leader: 1 miss, N-1 coalesced.
func TestSweepDuplicatePointsCoalesce(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	w := doSweep(s, `{"points":[`+quickSpec+`,`+quickSpec+`,`+quickSpec+`]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if h := w.Header().Get("X-Sweep-Coalesced"); h != "2" {
		t.Fatalf("X-Sweep-Coalesced = %q, want 2", h)
	}
	lines := bytes.Split(bytes.TrimSuffix(w.Body.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if !bytes.Equal(lines[0], lines[1]) || !bytes.Equal(lines[1], lines[2]) {
		t.Fatal("duplicate points produced different lines")
	}
	if snap := s.Metrics(); snap.SweepCoalesced != 2 || snap.FlightMerges != 2 {
		t.Fatalf("metrics = %+v", snap)
	}
}

// TestSweepLargerThanQueueDrains checks a plan larger than the worker
// queue completes instead of bouncing: dispatch waits for queue space.
func TestSweepLargerThanQueueDrains(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, Queue: 2})
	var b strings.Builder
	b.WriteString(`{"points":[`)
	for i := 0; i < 12; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		// Distinct seeds force 12 real simulations through a queue of 2.
		fmt.Fprintf(&b, `{"app":"counter","procs":4,"rounds":2,"seed":%d}`, i+1)
	}
	b.WriteString(`]}`)
	w := doSweep(s, b.String())
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	lines := bytes.Split(bytes.TrimSuffix(w.Body.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 12 {
		t.Fatalf("got %d lines, want 12", len(lines))
	}
	for i, ln := range lines {
		if bytes.Contains(ln, []byte(`"error"`)) {
			t.Fatalf("line %d is an error: %s", i, ln)
		}
	}
}

func TestSweepRejects(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		body string
		want int
	}{
		{`{"points":[]}`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"points":[{"app":"nope"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w := doSweep(s, tc.body); w.Code != tc.want {
			t.Errorf("sweep(%q) status = %d, want %d", tc.body, w.Code, tc.want)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/sweep", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep status = %d", w.Code)
	}
}

// workloadPlan sweeps one lock-free workload structure per line — the new
// exper.App values riding through the serve layer with no serve-side
// dispatch changes.
const workloadPlan = `{"points":[
	{"app":"msqueue","prim":"CAS","procs":4,"c":2,"rounds":2},
	{"app":"stack","prim":"LLSC","procs":4,"c":2,"rounds":2},
	{"app":"rcu","policy":"UPD","prim":"CAS","procs":4,"rounds":2},
	{"app":"tournament","prim":"FAP","procs":4,"c":2,"rounds":2},
	{"app":"dissemination","prim":"LLSC","procs":4,"c":2,"rounds":2}
]}`

// TestSweepWorkloadAppsMissThenHit drives the workload library through
// /v1/sweep: a cold plan simulates every point, a re-POST is served
// entirely from cache, and the bodies are byte-identical — the same
// contract the synthetic apps are held to.
func TestSweepWorkloadAppsMissThenHit(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	first := doSweep(s, workloadPlan)
	if first.Code != http.StatusOK {
		t.Fatalf("first sweep status = %d: %s", first.Code, first.Body.String())
	}
	if h := first.Header().Get("X-Sweep-Hits"); h != "0" {
		t.Fatalf("cold sweep X-Sweep-Hits = %q, want 0", h)
	}
	lines := bytes.Split(bytes.TrimSuffix(first.Body.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 5 {
		t.Fatalf("got %d NDJSON lines, want 5:\n%s", len(lines), first.Body.String())
	}
	// Each line is byte-identical to the single-sim response for its spec.
	singles := []string{
		`{"app":"msqueue","prim":"CAS","procs":4,"c":2,"rounds":2}`,
		`{"app":"stack","prim":"LLSC","procs":4,"c":2,"rounds":2}`,
		`{"app":"rcu","policy":"UPD","prim":"CAS","procs":4,"rounds":2}`,
		`{"app":"tournament","prim":"FAP","procs":4,"c":2,"rounds":2}`,
		`{"app":"dissemination","prim":"LLSC","procs":4,"c":2,"rounds":2}`,
	}
	for i, spec := range singles {
		sw := doJSON(s, spec)
		if sw.Code != http.StatusOK {
			t.Fatalf("single sim %d status = %d: %s", i, sw.Code, sw.Body.String())
		}
		if !bytes.Equal(lines[i], bytes.TrimSuffix(sw.Body.Bytes(), []byte("\n"))) {
			t.Fatalf("sweep line %d differs from single /v1/sim body:\n%s\n--- vs ---\n%s",
				i, lines[i], sw.Body.Bytes())
		}
	}
	second := doSweep(s, workloadPlan)
	if second.Code != http.StatusOK {
		t.Fatalf("second sweep status = %d", second.Code)
	}
	if h := second.Header().Get("X-Sweep-Hits"); h != "5" {
		t.Fatalf("re-POST X-Sweep-Hits = %q, want 5", h)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("re-POSTed workload sweep body differs from the first")
	}
}
