package figures

import (
	"fmt"
	"io"

	"dsm/internal/apps"
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/stats"
)

// Table1Row is one measured row of Table 1.
type Table1Row struct {
	Case  string
	Paper int // serialized messages the paper reports
	Got   int // serialized messages measured from the simulator
}

// Table1 measures the serialized network message counts for stores under
// every coherence situation of the paper's Table 1, by constructing each
// situation directly and reading the transaction's chain length. Runs are
// fanned across GOMAXPROCS workers; use Table1Par to control the width.
func Table1() []Table1Row { return Table1Par(0) }

// Table1Par is Table1 with an explicit sweep width (see Sweep).
func Table1Par(par int) []Table1Row {
	cfg := core.DefaultConfig()
	measureStore := func(policy core.Policy, setup func(m *machine.Machine, a arch.Addr)) int {
		m := acquireMachine(cfg)
		defer ReleaseMachine(m)
		a := m.AllocSyncAt(9, policy) // remote home for nodes 0-2
		if setup != nil {
			setup(m, a)
		}
		chain := -1
		progs := make([]func(*machine.Proc), m.Procs())
		progs[0] = func(p *machine.Proc) {
			chain = p.Do(core.Request{Op: core.OpStore, Addr: a, Val: 1}).Chain
		}
		m.RunEach(progs)
		return chain
	}
	runOn := func(m *machine.Machine, node int, f func(p *machine.Proc)) {
		progs := make([]func(*machine.Proc), m.Procs())
		progs[node] = f
		m.RunEach(progs)
	}

	cases := []struct {
		name   string
		paper  int
		policy core.Policy
		setup  func(m *machine.Machine, a arch.Addr)
	}{
		{"UNC", 2, core.PolicyUNC, nil},
		{"INV to cached exclusive", 0, core.PolicyINV,
			func(m *machine.Machine, a arch.Addr) {
				runOn(m, 0, func(p *machine.Proc) { p.Store(a, 7) })
			}},
		{"INV to remote exclusive", 4, core.PolicyINV,
			func(m *machine.Machine, a arch.Addr) {
				runOn(m, 1, func(p *machine.Proc) { p.Store(a, 7) })
			}},
		{"INV to remote shared", 3, core.PolicyINV,
			func(m *machine.Machine, a arch.Addr) {
				runOn(m, 1, func(p *machine.Proc) { p.Load(a) })
				runOn(m, 2, func(p *machine.Proc) { p.Load(a) })
			}},
		{"INV to uncached", 2, core.PolicyINV, nil},
		{"UPD to cached", 3, core.PolicyUPD,
			func(m *machine.Machine, a arch.Addr) {
				runOn(m, 1, func(p *machine.Proc) { p.Load(a) })
			}},
		{"UPD to uncached", 2, core.PolicyUPD, nil},
	}

	rows := make([]Table1Row, len(cases))
	Sweep(len(cases), par, func(i int) {
		c := cases[i]
		rows[i] = Table1Row{Case: c.name, Paper: c.paper, Got: measureStore(c.policy, c.setup)}
	})
	return rows
}

// WriteTable1 renders Table 1 with paper-vs-measured columns.
func WriteTable1(w io.Writer) { WriteTable1Par(w, 0) }

// WriteTable1Par is WriteTable1 with an explicit sweep width.
func WriteTable1Par(w io.Writer, par int) {
	fmt.Fprintln(w, "Table 1: serialized network messages for stores to shared memory")
	fmt.Fprintf(w, "%-28s %6s %9s\n", "case", "paper", "measured")
	for _, r := range Table1Par(par) {
		mark := ""
		if r.Got != r.Paper {
			mark = "  MISMATCH"
		}
		fmt.Fprintf(w, "%-28s %6d %9d%s\n", r.Case, r.Paper, r.Got, mark)
	}
}

// ---------------------------------------------------------- figures 3-5 --

// SyntheticFigure runs one of figures 3-5: every bar under every sharing
// pattern, returning average cycles per counter update indexed as
// [pattern][bar]. The pattern x bar runs are independent simulations and
// are fanned across o.Par workers; the grid is indexed, not appended, so
// results land in serial order regardless of completion order.
func SyntheticFigure(app func(*machine.Machine, core.Policy, locks.Options, apps.Pattern) apps.SyntheticResult, o RunOpts) ([][]float64, []Bar, []Pattern) {
	bars := SyntheticBars()
	pats := Patterns(o)
	grid := make([][]float64, len(pats))
	for pi := range grid {
		grid[pi] = make([]float64, len(bars))
	}
	Sweep(len(pats)*len(bars), o.Par, func(i int) {
		pi, bi := i/len(bars), i%len(bars)
		bar := bars[bi]
		m := NewMachine(o, bar)
		res := app(m, bar.Policy, bar.Opts(), pats[pi])
		ReleaseMachine(m)
		grid[pi][bi] = res.AvgCycles
	})
	return grid, bars, pats
}

// WriteSyntheticFigure renders one of figures 3-5 as a bar-label by
// pattern matrix of average cycles per update.
func WriteSyntheticFigure(w io.Writer, title string, app func(*machine.Machine, core.Policy, locks.Options, apps.Pattern) apps.SyntheticResult, o RunOpts) {
	grid, bars, pats := SyntheticFigure(app, o)
	fmt.Fprintf(w, "%s (p=%d, avg cycles per counter update)\n", title, o.Procs)
	fmt.Fprintf(w, "%-18s", "")
	for _, pat := range pats {
		fmt.Fprintf(w, "%10s", pat.String())
	}
	fmt.Fprintln(w)
	for bi, bar := range bars {
		fmt.Fprintf(w, "%-18s", bar.Label)
		for pi := range pats {
			fmt.Fprintf(w, "%10.1f", grid[pi][bi])
		}
		fmt.Fprintln(w)
	}
}

// Fig3 runs figure 3 (lock-free counter).
func Fig3(w io.Writer, o RunOpts) {
	WriteSyntheticFigure(w, "Figure 3: lock-free counter", apps.CounterApp, o)
}

// Fig4 runs figure 4 (counter under test-and-test-and-set lock).
func Fig4(w io.Writer, o RunOpts) {
	WriteSyntheticFigure(w, "Figure 4: TTS-lock counter", apps.TTSApp, o)
}

// Fig5 runs figure 5 (counter under MCS lock).
func Fig5(w io.Writer, o RunOpts) {
	WriteSyntheticFigure(w, "Figure 5: MCS-lock counter", apps.MCSApp, o)
}

// ------------------------------------------------------- figures 2 & 6 ---

// RealApp identifies one of the paper's real applications.
type RealApp uint8

const (
	AppLocusRoute RealApp = iota
	AppCholesky
	AppTClosure
)

// String returns the application name.
func (a RealApp) String() string {
	switch a {
	case AppLocusRoute:
		return "LocusRoute"
	case AppCholesky:
		return "Cholesky"
	case AppTClosure:
		return "TransitiveClosure"
	}
	return "App?"
}

// RealApps lists the figure 2/6 applications in paper order.
func RealApps() []RealApp { return []RealApp{AppLocusRoute, AppCholesky, AppTClosure} }

// RunReal executes one real application under one bar configuration and
// returns the machine (for its statistics) and the total elapsed cycles.
// LocusRoute and Cholesky use lock-based synchronization (the paper
// replaced the SPLASH library locks with TTS locks built on the primitive
// under study); Transitive Closure uses the lock-free counter.
func RunReal(app RealApp, o RunOpts, bar Bar) (*machine.Machine, uint64) {
	m := NewMachine(o, bar)
	switch app {
	case AppLocusRoute:
		cfg := apps.DefaultLocusRoute(o.Procs)
		if o.Wires > 0 {
			cfg.Wires = o.Wires
		}
		cfg.Policy = bar.Policy
		cfg.Opts = bar.Opts()
		res := apps.LocusRoute(m, cfg)
		return m, uint64(res.Elapsed)
	case AppCholesky:
		cfg := apps.DefaultCholesky(o.Procs)
		if o.Columns > 0 {
			cfg.Columns = o.Columns
		}
		cfg.Policy = bar.Policy
		cfg.Opts = bar.Opts()
		res := apps.Cholesky(m, cfg)
		return m, uint64(res.Elapsed)
	case AppTClosure:
		cfg := apps.TClosureConfig{
			Size:   o.TCSize,
			Policy: bar.Policy,
			Opts:   bar.Opts(),
			Seed:   11,
		}
		res := apps.TClosure(m, cfg)
		return m, uint64(res.Elapsed)
	}
	panic("figures: unknown app")
}

// Fig2 renders the contention histograms and write-run measurements of the
// real applications under the three coherence policies (figure 2 plus the
// write-run numbers of section 4.2). The primitive is FAP, as in the
// paper's baseline runs.
func Fig2(w io.Writer, o RunOpts) {
	fmt.Fprintf(w, "Figure 2: contention histograms (p=%d; %% of accesses at each level)\n", o.Procs)
	levels := []int{1, 2, 3, 4, 8, 16, 32, 48, 64}
	realApps := RealApps()
	pols := []core.Policy{core.PolicyINV, core.PolicyUNC, core.PolicyUPD}
	// Run the app x policy grid in parallel, retaining each machine for its
	// statistics; render serially afterwards in the fixed grid order.
	machines := make([]*machine.Machine, len(realApps)*len(pols))
	Sweep(len(machines), o.Par, func(i int) {
		app, pol := realApps[i/len(pols)], pols[i%len(pols)]
		m, _ := RunReal(app, o, Bar{Policy: pol, Prim: locks.PrimFAP})
		machines[i] = m
	})
	for i, m := range machines {
		app, pol := realApps[i/len(pols)], pols[i%len(pols)]
		hist := m.System().Contention().Histogram()
		wr := m.System().WriteRuns()
		wr.Flush()
		fmt.Fprintf(w, "%-18s %-3s  write-run %.2f  |", app, pol, wr.Mean())
		for _, lv := range levels {
			// Bucket: sum counts in (prev, lv].
			fmt.Fprintf(w, " %2d:%5.1f%%", lv, bucketPercent(hist, levels, lv))
		}
		fmt.Fprintln(w)
		ReleaseMachine(m)
	}
}

// bucketPercent sums the histogram percentage over (prevLevel, level].
func bucketPercent(h *stats.Histogram, levels []int, level int) float64 {
	prev := 0
	for _, lv := range levels {
		if lv == level {
			break
		}
		prev = lv
	}
	sum := 0.0
	for v := prev + 1; v <= level; v++ {
		sum += h.Percent(v)
	}
	return sum
}

// TCEfficiency measures Transitive Closure's parallel efficiency at the
// given scale: T(1) / (p * T(p)), the metric behind the paper's "achieves
// an acceptable efficiency of 45% on 64 processors".
func TCEfficiency(o RunOpts, bar Bar) float64 {
	single := o
	single.Procs = 1
	var t1, tp uint64
	Sweep(2, o.Par, func(i int) {
		if i == 0 {
			m, e := RunReal(AppTClosure, single, bar)
			ReleaseMachine(m)
			t1 = e
		} else {
			m, e := RunReal(AppTClosure, o, bar)
			ReleaseMachine(m)
			tp = e
		}
	})
	return float64(t1) / (float64(o.Procs) * float64(tp))
}

// fig6Grid runs every bar x application combination, returning total
// elapsed cycles indexed as [bar][app].
func fig6Grid(o RunOpts) ([][]uint64, []Bar, []RealApp) {
	bars := SyntheticBars()
	realApps := RealApps()
	grid := make([][]uint64, len(bars))
	for bi := range grid {
		grid[bi] = make([]uint64, len(realApps))
	}
	Sweep(len(bars)*len(realApps), o.Par, func(i int) {
		bi, ai := i/len(realApps), i%len(realApps)
		m, elapsed := RunReal(realApps[ai], o, bars[bi])
		ReleaseMachine(m)
		grid[bi][ai] = elapsed
	})
	return grid, bars, realApps
}

// Fig6 renders the total elapsed time of the real applications under every
// bar configuration.
func Fig6(w io.Writer, o RunOpts) {
	grid, bars, realApps := fig6Grid(o)
	fmt.Fprintf(w, "Figure 6: total elapsed cycles, real applications (p=%d)\n", o.Procs)
	fmt.Fprintf(w, "%-18s", "")
	for _, app := range realApps {
		fmt.Fprintf(w, "%14s", app.String())
	}
	fmt.Fprintln(w)
	for bi, bar := range bars {
		fmt.Fprintf(w, "%-18s", bar.Label)
		for ai := range realApps {
			fmt.Fprintf(w, "%14d", grid[bi][ai])
		}
		fmt.Fprintln(w)
	}
}
