package exper_test

import (
	"testing"

	"dsm/internal/apps"
	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/locks"
)

// The core-level TestHotPathZeroAlloc pins the protocol/engine loop at zero
// steady-state allocations. These tests pin the *benchmarked* path — the
// full machine stack exactly as hostbench.MachineRun drives it — so a
// regression anywhere above the engine (machine reset, proc goroutine
// launch, barrier release, app closures, tracker reuse) fails CI rather
// than silently re-inflating HostMachine's allocs/op, as happened between
// PR 3 and PR 7.

// benchPoint is the HostMachine benchmark workload: an 8-proc contended
// counter under UNC/fetch_add.
func benchPoint() (exper.Bar, exper.RunOpts, apps.Pattern) {
	bar := exper.Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
	o := exper.RunOpts{Procs: 8, Rounds: 3}
	pat := apps.Pattern{Contention: 8, Rounds: o.Rounds}
	return bar, o, pat
}

// TestHotPathZeroAllocMachinePool pins the pooled one-off path (what
// hostbench.MachineRun measures): acquire, run, release.
func TestHotPathZeroAllocMachinePool(t *testing.T) {
	bar, o, pat := benchPoint()
	run := func() {
		m := exper.NewMachine(o, bar)
		apps.CounterApp(m, bar.Policy, bar.Opts(), pat)
		exper.ReleaseMachine(m)
	}
	// Warm the pool, the engine free lists, and the app runner before
	// measuring the steady state.
	for i := 0; i < 3; i++ {
		run()
	}
	if n := testing.AllocsPerRun(10, run); n != 0 {
		t.Fatalf("pooled machine run allocates %.1f times per run, want 0", n)
	}
}

// TestHotPathZeroAllocMachineSlot pins the per-worker slot path — the one
// the sweep runner and the serving layer actually sit on.
func TestHotPathZeroAllocMachineSlot(t *testing.T) {
	bar, o, pat := benchPoint()
	var s exper.MachineSlot
	pt := exper.Point{App: exper.AppCounter, Bar: bar, Scale: o, Pattern: pat}
	run := func() { pt.RunSlot(&s, false) }
	for i := 0; i < 3; i++ {
		run()
	}
	if n := testing.AllocsPerRun(10, run); n != 0 {
		t.Fatalf("slot machine run allocates %.1f times per run, want 0", n)
	}
}
