package exper

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs job(0) .. job(n-1) across a pool of par worker goroutines and
// returns when all jobs have finished.
//
// Each simulation run owns its machine — engine, mesh, protocol state, RNG
// streams, and statistics are all per-Machine, and the packages underneath
// hold no mutable package-level state — so independent runs share nothing
// and the fan-out cannot perturb results. Determinism is preserved by
// construction: jobs write their results into caller-provided slots indexed
// by job number, and callers render the slots in serial order afterwards,
// so output is byte-identical for every par, including par == 1.
//
// par <= 0 selects GOMAXPROCS workers; par == 1 runs the jobs serially on
// the calling goroutine (no goroutines spawned), restoring the pre-parallel
// execution exactly. Jobs are handed out by an atomic counter rather than
// striped up front, so long runs (real applications) do not straggle behind
// a fixed partition.
func Sweep(n, par int, job func(i int)) {
	if n <= 0 {
		return
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
