package stats

import (
	"encoding/json"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	h.Add(1)
	h.Add(1)
	h.Add(3)
	if h.Total() != 3 || h.Count(1) != 2 || h.Count(3) != 1 || h.Count(2) != 0 {
		t.Fatalf("histogram = %s", h)
	}
	if h.Mean() != 5.0/3.0 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 3 {
		t.Fatalf("Max = %d", h.Max())
	}
	if got := h.Percent(1); got < 66.6 || got > 66.7 {
		t.Fatalf("Percent(1) = %v", got)
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewHistogram()
	h.AddN(5, 10)
	h.AddN(5, 0) // no-op
	if h.Total() != 10 || h.Count(5) != 10 || h.Mean() != 5 {
		t.Fatalf("histogram = %s", h)
	}
}

func TestHistogramValuesSorted(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{9, 2, 7, 2, 0} {
		h.Add(v)
	}
	want := []int{0, 2, 7, 9}
	got := h.Values()
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(1)
	b.Add(1)
	b.Add(2)
	a.Merge(b)
	if a.Total() != 3 || a.Count(1) != 2 || a.Count(2) != 1 {
		t.Fatalf("merged = %s", a)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Add(2)
	h.Add(1)
	h.Add(2)
	if h.String() != "1:1 2:2" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramMeanMatchesSamplesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewHistogram()
		sum := 0
		for _, v := range raw {
			h.Add(int(v))
			sum += int(v)
		}
		if len(raw) == 0 {
			return h.Mean() == 0
		}
		want := float64(sum) / float64(len(raw))
		diff := h.Mean() - want
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContentionNoOverlap(t *testing.T) {
	c := NewContentionTracker()
	for i := 0; i < 5; i++ {
		c.Begin(0x100, i)
		c.End(0x100, i)
	}
	h := c.Histogram()
	if h.Total() != 5 || h.Count(1) != 5 {
		t.Fatalf("histogram = %s", h)
	}
}

func TestContentionConcurrentAccesses(t *testing.T) {
	c := NewContentionTracker()
	c.Begin(0x100, 0) // sees 1
	c.Begin(0x100, 1) // sees 2
	c.Begin(0x100, 2) // sees 3
	c.End(0x100, 1)
	c.Begin(0x100, 3) // sees 3 again
	h := c.Histogram()
	if h.Count(1) != 1 || h.Count(2) != 1 || h.Count(3) != 2 {
		t.Fatalf("histogram = %s", h)
	}
}

func TestContentionPerLocationIndependent(t *testing.T) {
	c := NewContentionTracker()
	c.Begin(0x100, 0)
	c.Begin(0x200, 1) // different location: sees 1, not 2
	if c.Histogram().Count(2) != 0 || c.Histogram().Count(1) != 2 {
		t.Fatalf("histogram = %s", c.Histogram())
	}
}

func TestContentionNestedSameProc(t *testing.T) {
	c := NewContentionTracker()
	c.Begin(0x100, 0)
	c.Begin(0x100, 0) // same proc again (retry overlap): still one proc
	if c.Histogram().Count(1) != 2 {
		t.Fatalf("histogram = %s", c.Histogram())
	}
	c.End(0x100, 0)
	c.End(0x100, 0)
	c.Begin(0x100, 1)
	if c.Histogram().Count(1) != 3 {
		t.Fatal("proc not fully removed after nested ends")
	}
}

func TestContentionEndWithoutBeginPanics(t *testing.T) {
	c := NewContentionTracker()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.End(0x100, 0)
}

func TestWriteRunSingleWriter(t *testing.T) {
	w := NewWriteRunTracker()
	for i := 0; i < 4; i++ {
		w.Access(0x100, 0, true)
	}
	w.Flush()
	if w.Histogram().Count(4) != 1 || w.Histogram().Total() != 1 {
		t.Fatalf("histogram = %s", w.Histogram())
	}
}

func TestWriteRunAlternatingWriters(t *testing.T) {
	w := NewWriteRunTracker()
	for i := 0; i < 6; i++ {
		w.Access(0x100, i%2, true)
	}
	w.Flush()
	if w.Mean() != 1 {
		t.Fatalf("Mean = %v, want 1 for alternating writers", w.Mean())
	}
	if w.Histogram().Total() != 6 {
		t.Fatalf("runs = %d, want 6", w.Histogram().Total())
	}
}

func TestWriteRunReadByOtherEndsRun(t *testing.T) {
	w := NewWriteRunTracker()
	w.Access(0x100, 0, true)
	w.Access(0x100, 0, true)
	w.Access(0x100, 1, false) // read by other proc intervenes
	w.Access(0x100, 0, true)
	w.Flush()
	h := w.Histogram()
	if h.Count(2) != 1 || h.Count(1) != 1 {
		t.Fatalf("histogram = %s", h)
	}
}

func TestWriteRunOwnReadDoesNotEndRun(t *testing.T) {
	w := NewWriteRunTracker()
	w.Access(0x100, 0, true)
	w.Access(0x100, 0, false) // own read: acquire-test pattern
	w.Access(0x100, 0, true)
	w.Flush()
	if w.Histogram().Count(2) != 1 {
		t.Fatalf("histogram = %s", w.Histogram())
	}
}

func TestWriteRunLocationsIndependent(t *testing.T) {
	w := NewWriteRunTracker()
	w.Access(0x100, 0, true)
	w.Access(0x200, 1, true) // other location: not an intervention
	w.Access(0x100, 0, true)
	w.Flush()
	if w.Histogram().Count(2) != 1 || w.Histogram().Count(1) != 1 {
		t.Fatalf("histogram = %s", w.Histogram())
	}
}

func TestWriteRunReadOnlyNeverRecords(t *testing.T) {
	w := NewWriteRunTracker()
	w.Access(0x100, 0, false)
	w.Access(0x100, 1, false)
	w.Flush()
	if w.Histogram().Total() != 0 {
		t.Fatalf("reads created runs: %s", w.Histogram())
	}
}

func TestWriteRunLockPatternMeansNearTwo(t *testing.T) {
	// Acquire (write) + release (write) by the same proc, then another
	// proc: classic lock pattern => run length 2.
	w := NewWriteRunTracker()
	for i := 0; i < 10; i++ {
		p := i % 4
		w.Access(0x100, p, true) // acquire
		w.Access(0x100, p, true) // release
	}
	w.Flush()
	if w.Mean() != 2 {
		t.Fatalf("Mean = %v, want 2", w.Mean())
	}
}

func TestChainRecorder(t *testing.T) {
	c := NewChainRecorder()
	c.Record("inv-store-remote-exclusive", 4)
	c.Record("inv-store-remote-exclusive", 4)
	c.Record("unc-store", 2)
	if h := c.Class("inv-store-remote-exclusive"); h.Count(4) != 2 {
		t.Fatalf("class hist = %s", h)
	}
	if c.Class("missing") != nil {
		t.Fatal("missing class not nil")
	}
	if len(c.Classes()) != 2 {
		t.Fatalf("Classes = %v", c.Classes())
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 5)
	h.AddN(16, 2)
	h.Add(3)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want := `[{"v":1,"n":5},{"v":3,"n":1},{"v":16,"n":2}]`
	if string(data) != want {
		t.Fatalf("Marshal = %s, want %s", data, want)
	}
	// The encoding must be byte-stable across re-encodes.
	again, _ := json.Marshal(h)
	if string(again) != want {
		t.Fatalf("re-Marshal = %s, want %s", again, want)
	}
	got := NewHistogram()
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Total() != h.Total() || got.Mean() != h.Mean() || got.Max() != h.Max() {
		t.Fatalf("round trip lost derived stats: %s vs %s", got, h)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip = %s, want %s", got, h)
	}
}

func TestHistogramJSONEmpty(t *testing.T) {
	data, err := json.Marshal(NewHistogram())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty = %s, want []", data)
	}
	got := NewHistogram()
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Total() != 0 {
		t.Fatalf("Total = %d", got.Total())
	}
}
