package exper

import (
	"dsm/internal/apps"
	"dsm/internal/machine"
	"dsm/internal/mesh"
	"dsm/internal/report"
)

// Point is one simulation of the design space: a workload under one bar
// (primitive x policy x auxiliaries), at a scale, and — for the synthetic
// apps — one sharing pattern. The zero Seed selects each app's default
// seed, so identical points always replay identical runs.
type Point struct {
	App     App
	Bar     Bar
	Scale   RunOpts // Par is ignored; parallelism is a Plan property
	Pattern Pattern // synthetic apps only
	Seed    uint64  // 0 selects the per-app default seeds
}

// Result is what one point produces. Elapsed is filled for every app;
// Updates/AvgCycles only for the synthetic counters (the figures 3-5
// y-axis), Work only for the real applications (wires routed, columns
// factored, reachable pairs). Report is non-nil only when the run
// collected a full measurement report.
type Result struct {
	Elapsed   uint64
	Updates   uint64
	AvgCycles float64
	Work      uint64
	Report    *report.Report
}

func (r *Result) fromSynthetic(res apps.SyntheticResult) {
	r.Elapsed = uint64(res.Elapsed)
	r.Updates = res.Updates
	r.AvgCycles = res.AvgCycles
}

// fromWorkload maps a workload-library run onto the shared result shape:
// operations land in Updates (the throughput numerator), retry/torn-read
// counts in Work (the structures' contention signal).
func (r *Result) fromWorkload(res apps.WorkloadResult) {
	r.Elapsed = uint64(res.Elapsed)
	r.Updates = res.Ops
	r.Work = res.Retries
	r.AvgCycles = res.AvgCycles
}

// RunOn executes the point on a caller-provided machine (built by
// NewMachine for the point's scale and bar) and returns its result without
// collecting a report — the caller still owns the machine and can read its
// statistics or attach a tracer before running.
func (p Point) RunOn(m *machine.Machine) Result {
	if p.Seed != 0 {
		m.SetSeed(p.Seed)
	}
	var r Result
	switch p.App {
	case AppCounter:
		r.fromSynthetic(apps.CounterApp(m, p.Bar.Policy, p.Bar.Opts(), p.Pattern))
	case AppTTS:
		r.fromSynthetic(apps.TTSApp(m, p.Bar.Policy, p.Bar.Opts(), p.Pattern))
	case AppMCS:
		r.fromSynthetic(apps.MCSApp(m, p.Bar.Policy, p.Bar.Opts(), p.Pattern))
	case AppMSQueue:
		r.fromWorkload(apps.QueueApp(m, p.Bar.Policy, p.Bar.Opts(), p.Pattern, nil))
	case AppStack:
		r.fromWorkload(apps.StackApp(m, p.Bar.Policy, p.Bar.Opts(), p.Pattern, nil))
	case AppRCU:
		r.fromWorkload(apps.RCUApp(m, p.Bar.Policy, p.Bar.Opts(), p.Pattern))
	case AppTournament:
		r.fromWorkload(apps.TournamentApp(m, p.Bar.Policy, p.Bar.Opts(), p.Pattern, nil))
	case AppDissemination:
		r.fromWorkload(apps.DisseminationApp(m, p.Bar.Policy, p.Bar.Opts(), p.Pattern, nil))
	case AppTClosure:
		cfg := apps.TClosureConfig{
			Size:   p.Scale.TCSize,
			Policy: p.Bar.Policy,
			Opts:   p.Bar.Opts(),
			Seed:   11,
		}
		if p.Seed != 0 {
			cfg.Seed = p.Seed
		}
		res := apps.TClosure(m, cfg)
		r.Elapsed, r.Work = uint64(res.Elapsed), uint64(res.Reachable)
	case AppLocusRoute:
		cfg := apps.DefaultLocusRoute(p.Scale.Procs)
		if p.Scale.Wires > 0 {
			cfg.Wires = p.Scale.Wires
		}
		cfg.Policy, cfg.Opts = p.Bar.Policy, p.Bar.Opts()
		if p.Seed != 0 {
			cfg.Seed = p.Seed
		}
		res := apps.LocusRoute(m, cfg)
		r.Elapsed, r.Work = uint64(res.Elapsed), res.Work
	case AppCholesky:
		cfg := apps.DefaultCholesky(p.Scale.Procs)
		if p.Scale.Columns > 0 {
			cfg.Columns = p.Scale.Columns
		}
		cfg.Policy, cfg.Opts = p.Bar.Policy, p.Bar.Opts()
		if p.Seed != 0 {
			cfg.Seed = p.Seed
		}
		res := apps.Cholesky(m, cfg)
		r.Elapsed, r.Work = uint64(res.Elapsed), res.Work
	default:
		panic("exper: unknown app " + p.App.Name())
	}
	return r
}

// Run executes the point on a pooled machine and releases it. With collect,
// the result carries the machine's full measurement report (byte-stable
// under report.WriteJSON); without, only the headline numbers, which keeps
// grid sweeps free of per-point report allocation.
//
// Run is the one-off path; a worker executing many points should hold a
// MachineSlot and call RunSlot instead, which skips the shared pool.
func (p Point) Run(collect bool) Result {
	m := NewMachine(p.Scale, p.Bar)
	defer ReleaseMachine(m)
	r := p.RunOn(m)
	if collect {
		r.Report = report.Collect(m)
	}
	return r
}

// RunSlot executes the point on the slot's resident machine (reset or
// rebuilt to the point's geometry) and leaves the machine in the slot for
// the worker's next point. Results are identical to Run's — a reset
// machine replays a fresh one cycle for cycle — but the shared machine
// pool is never touched, so concurrent workers stay contention-free.
func (p Point) RunSlot(s *MachineSlot, collect bool) Result {
	m := s.Machine(MachineConfig(p.Scale, p.Bar))
	r := p.RunOn(m)
	if collect {
		r.Report = report.Collect(m)
	}
	return r
}

// Plan is an ordered list of points executed as one batch. Order is the
// result order: Run fans points across Par workers but writes each result
// into its point's slot, so a plan's results are deterministic and
// independent of scheduling (Par 1 and Par N are identical).
type Plan struct {
	Points  []Point
	Par     int  // sweep width; 0 = GOMAXPROCS, 1 = serial (see Sweep)
	Collect bool // attach a full report to every result
}

// Run executes every point of the plan and returns the results in plan
// order. Each sweep worker owns a dedicated machine slot it reuses across
// the plan's points (see SweepSlots), so no shared pool sits on the
// per-point path.
//
// Points are *executed* grouped by machine geometry (groupOrder) so a
// mixed-geometry plan does not thrash the slots' resident machines, but
// results land in plan order regardless: every point's simulation is
// independent and replays identically on a fresh or reset machine, so
// execution order affects host time only and par-1 output stays
// byte-identical to par-N.
func Run(pl Plan) []Result {
	out := make([]Result, len(pl.Points))
	order := groupOrder(pl.Points)
	SweepSlots(len(pl.Points), pl.Par, func(s *MachineSlot, k int) {
		i := order[k]
		out[i] = pl.Points[i].RunSlot(s, pl.Collect)
	})
	return out
}

// geomKey is the structural identity of a point's machine: the part of its
// configuration machine.Reset cannot change. Points sharing a geomKey can
// share a resident machine across runs.
type geomKey struct {
	nodes int
	mesh  mesh.Config
}

func pointGeom(p Point) geomKey {
	cfg := MachineConfig(p.Scale, p.Bar)
	return geomKey{nodes: cfg.Nodes, mesh: cfg.Mesh}
}

// groupOrder returns an execution order for the points: plan indices
// reordered so points sharing a machine geometry run consecutively.
// Groups appear in order of first appearance and points keep their plan
// order within a group, so a single-geometry plan (the common case)
// executes in exactly plan order.
func groupOrder(points []Point) []int {
	groups := make(map[geomKey][]int)
	var keys []geomKey
	for i, p := range points {
		k := pointGeom(p)
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}
	order := make([]int, 0, len(points))
	for _, k := range keys {
		order = append(order, groups[k]...)
	}
	return order
}

// SyntheticPlan is the figures 3-5 grid for one synthetic app: every bar
// under every sharing pattern of the scale, pattern-major — point
// pi*len(bars)+bi runs bar bi under pattern pi, matching the figures'
// [pattern][bar] layout.
func SyntheticPlan(app App, o RunOpts) Plan {
	bars, pats := SyntheticBars(), Patterns(o)
	pl := Plan{Par: o.Par, Points: make([]Point, 0, len(pats)*len(bars))}
	for _, pat := range pats {
		for _, bar := range bars {
			pl.Points = append(pl.Points, Point{App: app, Bar: bar, Scale: o, Pattern: pat})
		}
	}
	return pl
}

// RunReal executes one real application under one bar configuration and
// returns the machine (for its statistics) and the total elapsed cycles.
// LocusRoute and Cholesky use lock-based synchronization (the paper
// replaced the SPLASH library locks with TTS locks built on the primitive
// under study); Transitive Closure uses the lock-free counter. The caller
// owns the machine; pair with ReleaseMachine when done with its stats.
func RunReal(app App, o RunOpts, bar Bar) (*machine.Machine, uint64) {
	m := NewMachine(o, bar)
	res := Point{App: app, Bar: bar, Scale: o}.RunOn(m)
	return m, res.Elapsed
}

// TCEfficiency measures Transitive Closure's parallel efficiency at the
// given scale: T(1) / (p * T(p)), the metric behind the paper's "achieves
// an acceptable efficiency of 45% on 64 processors".
func TCEfficiency(o RunOpts, bar Bar) float64 {
	single := o
	single.Procs = 1
	res := Run(Plan{Par: o.Par, Points: []Point{
		{App: AppTClosure, Bar: bar, Scale: single},
		{App: AppTClosure, Bar: bar, Scale: o},
	}})
	return float64(res[0].Elapsed) / (float64(o.Procs) * float64(res[1].Elapsed))
}
