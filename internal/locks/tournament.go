package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/mesh"
)

// TournamentBarrier is the tournament barrier of Hensgen, Finkel & Manber
// as presented by Mellor-Crummey & Scott: arrival is a sequence of
// two-processor matches whose outcome is statically determined, so no
// atomic primitive is needed at all — each match is one ordinary store to
// a flag homed at the winner plus a local spin. Processor i loses the
// level-k match iff bit k is the lowest set bit of i; processor 0 wins
// every match (the champion) and starts the wakeup broadcast, which
// retraces the matches in reverse. Flags carry a monotonic round number
// instead of the textbook sense reversal — equivalent, simpler to verify.
type TournamentBarrier struct {
	n      int
	levels int
	arrive [][]arch.Addr // [winner][level]: written by loser, spun on locally
	wake   []arch.Addr   // [proc]: written by the winner that beat proc
	round  []arch.Word   // per-processor private round counter
}

// NewTournamentBarrier allocates the match flags, each homed at its
// spinner's node for local spinning.
func NewTournamentBarrier(m *machine.Machine) *TournamentBarrier {
	n := m.Procs()
	levels := 0
	for 1<<levels < n {
		levels++
	}
	b := &TournamentBarrier{
		n:      n,
		levels: levels,
		arrive: make([][]arch.Addr, n),
		wake:   make([]arch.Addr, n),
		round:  make([]arch.Word, n),
	}
	for i := 0; i < n; i++ {
		b.arrive[i] = make([]arch.Addr, levels)
		for k := 0; k < levels; k++ {
			if i&(1<<k) == 0 && i|1<<k < n && i|1<<k != i {
				b.arrive[i][k] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
			}
		}
		b.wake[i] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
	}
	return b
}

// Wait blocks (in simulated time) until all processors have called Wait
// for the current round.
func (b *TournamentBarrier) Wait(p *machine.Proc) {
	i := p.ID()
	b.round[i]++
	round := b.round[i]

	// Arrival: play matches up the levels until we lose one (or become
	// champion). A winner first waits for the loser it is matched with.
	lost := b.levels
	for k := 0; k < b.levels; k++ {
		if i&(1<<k) != 0 {
			// We lose this match: report to the winner, then wait for
			// the wakeup broadcast.
			winner := i &^ (1 << k)
			p.Store(b.arrive[winner][k], round)
			for p.Load(b.wake[i]) < round {
				p.Compute(2)
			}
			lost = k
			break
		}
		if loser := i | 1<<k; loser < b.n {
			for p.Load(b.arrive[i][k]) < round {
				p.Compute(2)
			}
		}
	}
	// Wakeup: retrace the matches we won, highest level first.
	for k := lost - 1; k >= 0; k-- {
		if loser := i | 1<<k; loser < b.n && loser != i {
			p.Store(b.wake[loser], round)
		}
	}
}
