package mesh

import (
	"testing"
	"testing/quick"

	"dsm/internal/sim"
)

func newTestMesh() (*sim.Engine, *Mesh) {
	eng := sim.NewEngine()
	return eng, New(eng, DefaultConfig())
}

func TestCoordRoundTrip(t *testing.T) {
	_, m := newTestMesh()
	for n := 0; n < m.Nodes(); n++ {
		x, y := m.Coord(NodeID(n))
		if y*8+x != n {
			t.Fatalf("node %d maps to (%d,%d)", n, x, y)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	_, m := newTestMesh()
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 7, 7},
		{0, 63, 14},
		{9, 18, 2}, // (1,1)->(2,2)
		{63, 0, 14},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d)=%d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	_, m := newTestMesh()
	f := func(a, b uint8) bool {
		x, y := NodeID(a%64), NodeID(b%64)
		return m.Hops(x, y) == m.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	_, m := newTestMesh()
	f := func(a, b, c uint8) bool {
		x, y, z := NodeID(a%64), NodeID(b%64), NodeID(c%64)
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlitsRounding(t *testing.T) {
	_, m := newTestMesh()
	cases := []struct{ payload, want int }{
		{0, 1},  // header only
		{1, 2},  // 9 bytes -> 2 flits
		{8, 2},  // 16 bytes
		{24, 4}, // header + 24 = 32
		{32, 5}, // header + block
	}
	for _, c := range cases {
		if got := m.Flits(c.payload); got != c.want {
			t.Errorf("Flits(%d)=%d, want %d", c.payload, got, c.want)
		}
	}
}

func TestSendLocalBypass(t *testing.T) {
	eng, m := newTestMesh()
	var at sim.Time
	m.Send(3, 3, 5, func() { at = eng.Now() })
	eng.Run(0)
	if at != DefaultConfig().LocalDelay {
		t.Fatalf("local delivery at %d, want %d", at, DefaultConfig().LocalDelay)
	}
	if s := m.Stats(); s.Messages != 0 || s.LocalMsgs != 1 {
		t.Fatalf("stats = %+v, want local only", s)
	}
}

func TestSendUncontendedLatency(t *testing.T) {
	eng, m := newTestMesh()
	// 0 -> 1: 1 hop, 1 flit. inject start 0, head arrives at 2, done 3.
	var at sim.Time
	m.Send(0, 1, 1, func() { at = eng.Now() })
	eng.Run(0)
	want := sim.Time(1)*1 + 2 + 0 // serialize 1 + hop 2, ejStart=2, done=3
	_ = want
	if at != 3 {
		t.Fatalf("delivery at %d, want 3", at)
	}
}

func TestSendLatencyScalesWithDistance(t *testing.T) {
	eng, m := newTestMesh()
	var near, far sim.Time
	m.Send(0, 1, 1, func() { near = eng.Now() })
	m.Send(63, 56, 1, func() { far = eng.Now() }) // 7 hops, disjoint ports
	eng.Run(0)
	if far-near != 6*2 { // 6 extra hops * HopDelay 2
		t.Fatalf("far-near = %d, want 12 (near=%d far=%d)", far-near, near, far)
	}
}

func TestInjectionPortSerializes(t *testing.T) {
	eng, m := newTestMesh()
	var first, second sim.Time
	// Two 5-flit messages from node 0 to distinct far nodes at t=0.
	m.Send(0, 1, 5, func() { first = eng.Now() })
	m.Send(0, 8, 5, func() { second = eng.Now() })
	eng.Run(0)
	// first: inj 0..5, head 0+2, done = 2+5 = 7
	if first != 7 {
		t.Fatalf("first delivered at %d, want 7", first)
	}
	// second: inj starts at 5, head 5+2, done 7+5 = 12
	if second != 12 {
		t.Fatalf("second delivered at %d, want 12", second)
	}
	if m.Stats().InjectWait != 5 {
		t.Fatalf("InjectWait = %d, want 5", m.Stats().InjectWait)
	}
}

func TestEjectionPortSerializes(t *testing.T) {
	eng, m := newTestMesh()
	var a, b sim.Time
	// Two 5-flit messages to node 0 from equidistant sources.
	m.Send(1, 0, 5, func() { a = eng.Now() })
	m.Send(8, 0, 5, func() { b = eng.Now() })
	eng.Run(0)
	// a: head at 2, done 7. b: head at 2, must wait eject until 7, done 12.
	if a != 7 || b != 12 {
		t.Fatalf("deliveries at %d,%d; want 7,12", a, b)
	}
	if m.Stats().EjectWait != 5 {
		t.Fatalf("EjectWait = %d, want 5", m.Stats().EjectWait)
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng, m := newTestMesh()
	m.Send(0, 63, 5, func() {})
	m.Send(63, 0, 2, func() {})
	eng.Run(0)
	s := m.Stats()
	if s.Messages != 2 || s.Flits != 7 || s.HopsTotal != 28 {
		t.Fatalf("stats = %+v", s)
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear")
	}
}

func TestSendPanicsOnBadArgs(t *testing.T) {
	_, m := newTestMesh()
	for name, fn := range map[string]func(){
		"bad src":   func() { m.Send(-1, 0, 1, nil) },
		"bad dst":   func() { m.Send(0, 64, 1, nil) },
		"bad flits": func() { m.Send(0, 1, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-width mesh")
		}
	}()
	New(sim.NewEngine(), Config{Width: 0, Height: 8})
}

func TestDeliveryOrderDeterministic(t *testing.T) {
	run := func() []int {
		eng, m := newTestMesh()
		var order []int
		for i := 0; i < 20; i++ {
			i := i
			src := NodeID(i % 8)
			dst := NodeID(63 - i%8)
			m.Send(src, dst, 1+i%5, func() { order = append(order, i) })
		}
		eng.Run(0)
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}
