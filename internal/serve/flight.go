package serve

import (
	"runtime"
	"sync"
)

// flightCall is one in-flight simulation that concurrent identical
// requests share. The leader fills data/err and closes done; followers
// block on done and read the shared result.
type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// flightGroup coalesces duplicate work by key: the first request for a key
// becomes the leader and executes; requests arriving before the leader
// finishes become followers of the same call. This is the single-flight
// pattern — under a burst of N identical specs, exactly one simulation
// runs and N-1 requests pay only the wait.
//
// The in-flight table is sharded like the result cache (same power-of-two
// count derived from GOMAXPROCS, same first-SHA-byte placement), so
// concurrent joins for unrelated keys lock different shards instead of
// funneling through one mutex. Coalescing semantics are unchanged: a key
// lives on exactly one shard, so all requests for it still meet in one
// calls map.
type flightGroup struct {
	shards []flightShard
	mask   uint32 // len(shards) - 1; shard count is a power of two
}

// flightShard is one independently locked slice of the in-flight table.
type flightShard struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	_     [40]byte // keep neighboring shards' hot fields off one cache line
}

func newFlightGroup() *flightGroup {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < maxShards {
		n <<= 1
	}
	return newFlightGroupShards(n)
}

// newFlightGroupShards builds a flight group with an explicit power-of-two
// shard count (tests pin the count; newFlightGroup derives it).
func newFlightGroupShards(shards int) *flightGroup {
	g := &flightGroup{shards: make([]flightShard, shards), mask: uint32(shards - 1)}
	for i := range g.shards {
		g.shards[i].calls = make(map[string]*flightCall)
	}
	return g
}

// join returns the call for key, creating it when absent. leader reports
// whether this caller must execute the work and complete the call.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	s := &g.shards[shardIndex(key, g.mask)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	s.calls[key] = c
	return c, true
}

// complete publishes the leader's result and wakes every follower. The key
// is removed before done closes, so a request arriving after completion
// starts a fresh call (it will hit the result cache first anyway).
func (g *flightGroup) complete(key string, c *flightCall, data []byte, err error) {
	c.data, c.err = data, err
	s := &g.shards[shardIndex(key, g.mask)]
	s.mu.Lock()
	delete(s.calls, key)
	s.mu.Unlock()
	close(c.done)
}
