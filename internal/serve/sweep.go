package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// MaxSweepPoints bounds one batch request: the sweep endpoint is for
// figure-sized plans (tens to hundreds of points), not unbounded jobs.
const MaxSweepPoints = 1024

// sweepRequest is the POST /v1/sweep body: an ordered list of specs
// forming one plan. Each point is normalized and resolved independently
// through the same cache + single-flight + worker pool as /v1/sim.
type sweepRequest struct {
	Points []Spec `json:"points"`
}

// handleSweep runs a batch of specs and streams one NDJSON line per point,
// in plan order. Each line is byte-identical to the /v1/sim response body
// for the same spec (the exact cached encoding), so clients can mix single
// and batch requests freely. A point that fails yields one
// {"error":"..."} line in its slot, preserving the line-per-point framing.
//
// Dispatch happens before the first byte of the body, so the response
// headers carry the plan's cache profile: X-Sweep-Points, X-Sweep-Hits
// (served from cache), X-Sweep-Coalesced (merged into an in-flight
// identical run — including duplicates within the plan itself).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON plan: {\"points\": [spec, ...]}")
		return
	}
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad plan JSON: %v", err))
		return
	}
	if len(req.Points) == 0 {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, "empty plan: need at least one point")
		return
	}
	if len(req.Points) > MaxSweepPoints {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("plan has %d points, limit %d", len(req.Points), MaxSweepPoints))
		return
	}
	specs := make([]Spec, len(req.Points))
	for i, sp := range req.Points {
		var err error
		if specs[i], err = sp.Normalize(); err != nil {
			s.met.badRequest.Add(1)
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("point %d: %v", i, err))
			return
		}
	}
	s.met.sweeps.Add(1)
	s.met.sweepPoints.Add(uint64(len(specs)))
	start := time.Now()
	overall := start.Add(s.cfg.Timeout)

	// Phase 1: dispatch every point (cache lookup, single-flight join,
	// pool submission) without waiting for any simulation to finish.
	// Duplicate points within the plan coalesce on the plan's own leader,
	// and a plan larger than the queue bound drains through it — dispatch
	// waits for queue space (workers are consuming) rather than bouncing
	// the excess points.
	type slot struct {
		key   string
		data  []byte // non-nil: served from cache
		call  *flightCall
		state dispatchState
	}
	slots := make([]slot, len(specs))
	var hits, coalesced uint64
	for i, spec := range specs {
		key := spec.Key()
		data, call, state := s.start(spec, key, time.Until(overall))
		slots[i] = slot{key: key, data: data, call: call, state: state}
		switch state {
		case dispatchHit:
			hits++
			s.met.sweepHits.Add(1)
		case dispatchMiss:
			s.met.sweepMisses.Add(1)
		case dispatchCoalesced:
			coalesced++
			s.met.sweepCoalesced.Add(1)
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Points", strconv.Itoa(len(specs)))
	w.Header().Set("X-Sweep-Hits", strconv.FormatUint(hits, 10))
	w.Header().Set("X-Sweep-Coalesced", strconv.FormatUint(coalesced, 10))

	// Phase 2: stream results in plan order. One deadline covers the whole
	// batch; once it expires, every unfinished point reports the timeout in
	// its line (the per-point framing survives).
	flusher, _ := w.(http.Flusher)
	deadline := time.NewTimer(time.Until(overall))
	defer deadline.Stop()
	expired := false
	for i := range slots {
		sl := &slots[i]
		data, err := sl.data, error(nil)
		if data == nil {
			if !expired {
				select {
				case <-sl.call.done:
				case <-deadline.C:
					expired = true
					s.met.timeouts.Add(1)
				case <-r.Context().Done():
					// Client gone; stop streaming.
					return
				}
			}
			switch {
			case expired:
				err = fmt.Errorf("deadline of %s exceeded (queue wait + simulation)", s.cfg.Timeout)
			case sl.call.err == errBusy:
				err = fmt.Errorf("simulation queue full (%d queued); retry shortly", s.cfg.Queue)
			case sl.call.err != nil:
				err = sl.call.err
			default:
				data = sl.call.data
			}
		}
		if err != nil {
			s.met.sweepErrors.Add(1)
			line, _ := json.Marshal(map[string]string{"error": err.Error(), "key": sl.key})
			w.Write(append(line, '\n'))
		} else {
			w.Write(data)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.met.latency.observe(time.Since(start))
}
