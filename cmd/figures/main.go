// Command figures regenerates the paper's evaluation artifacts — Table 1
// and Figures 2 through 6 — from the simulator, printing each as a text
// matrix (bar label x sharing pattern, or application x policy).
//
// Absolute cycle counts differ from the paper's (the substrate is this
// repository's simulator, not the authors' MINT-based one); the shapes —
// which implementation wins, by roughly what factor, and where the
// crossovers fall — are the reproduction targets (see EXPERIMENTS.md).
//
// Examples:
//
//	figures -all                # everything at paper scale (slow)
//	figures -table1 -fig3       # selected artifacts
//	figures -fig3 -procs 16 -rounds 8   # reduced scale
//	figures -all -par 1         # force serial execution (output identical)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/figures"
	"dsm/internal/locks"
)

func main() {
	var (
		all    = flag.Bool("all", false, "regenerate every table and figure")
		table1 = flag.Bool("table1", false, "Table 1: serialized messages per store")
		fig2   = flag.Bool("fig2", false, "Figure 2: contention histograms of the real applications")
		fig3   = flag.Bool("fig3", false, "Figure 3: lock-free counter")
		fig4   = flag.Bool("fig4", false, "Figure 4: TTS-lock counter")
		fig5   = flag.Bool("fig5", false, "Figure 5: MCS-lock counter")
		fig6   = flag.Bool("fig6", false, "Figure 6: total elapsed time of the real applications")
		procs  = flag.Int("procs", 64, "simulated processors")
		rounds = flag.Int("rounds", 16, "rounds per synthetic pattern")
		tcsize = flag.Int("tcsize", 32, "transitive-closure vertices")
		csv    = flag.Bool("csv", false, "emit CSV instead of text tables")
		tceff  = flag.Bool("tceff", false, "Transitive Closure parallel efficiency (section 4.2)")
		par    = flag.Int("par", runtime.NumCPU(), "concurrent simulation runs (1 = serial; output is identical)")
	)
	flag.Parse()

	if !(*all || *table1 || *fig2 || *fig3 || *fig4 || *fig5 || *fig6 || *tceff) {
		flag.Usage()
		os.Exit(2)
	}
	o := figures.RunOpts{Procs: *procs, Rounds: *rounds, TCSize: *tcsize, Par: *par}

	// Timing goes to stderr so stdout carries only the artifacts and is
	// byte-identical for every -par value.
	section := func(enabled bool, run func()) {
		if !(*all || enabled) {
			return
		}
		start := time.Now()
		run()
		fmt.Fprintf(os.Stderr, "(generated in %v)\n", time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}

	if *csv {
		section(*table1, func() { figures.WriteTable1CSVPar(os.Stdout, o.Par) })
		section(*fig3, func() { figures.WriteSyntheticCSV(os.Stdout, "fig3", exper.AppCounter, o) })
		section(*fig4, func() { figures.WriteSyntheticCSV(os.Stdout, "fig4", exper.AppTTS, o) })
		section(*fig5, func() { figures.WriteSyntheticCSV(os.Stdout, "fig5", exper.AppMCS, o) })
		section(*fig6, func() { figures.WriteFig6CSV(os.Stdout, o) })
		if *fig2 || *all {
			figures.Fig2(os.Stdout, o) // histograms have no flat CSV shape
		}
		return
	}
	section(*tceff, func() {
		// UNC fetch_and_add: the paper's recommendation for counters.
		bar := figures.Bar{Policy: core.PolicyUNC, Prim: locks.PrimFAP}
		eff := figures.TCEfficiency(o, bar)
		fmt.Printf("Transitive Closure parallel efficiency at p=%d, n=%d: %.1f%%\n",
			o.Procs, o.TCSize, 100*eff)
	})
	section(*table1, func() { figures.WriteTable1Par(os.Stdout, o.Par) })
	section(*fig2, func() { figures.Fig2(os.Stdout, o) })
	section(*fig3, func() { figures.Fig3(os.Stdout, o) })
	section(*fig4, func() { figures.Fig4(os.Stdout, o) })
	section(*fig5, func() { figures.Fig5(os.Stdout, o) })
	section(*fig6, func() { figures.Fig6(os.Stdout, o) })
}
