package core

import (
	"sort"
	"testing"

	"dsm/internal/arch"
	"dsm/internal/cache"
	"dsm/internal/dir"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// H is a test harness around one simulated system.
type H struct {
	t   *testing.T
	eng *sim.Engine
	net *mesh.Mesh
	sys *System
}

// newH builds a small 4-node machine (2x2 mesh) unless mutated.
func newH(t *testing.T, mut ...func(*Config)) *H {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	for _, m := range mut {
		m(&cfg)
	}
	eng := sim.NewEngine()
	net := mesh.New(eng, cfg.Mesh)
	return &H{t: t, eng: eng, net: net, sys: NewSystem(eng, net, cfg)}
}

// addrAtHome returns the i-th test word whose block is homed at node home.
func (h *H) addrAtHome(home, i int) arch.Addr {
	return arch.Addr((home + i*h.sys.Nodes()) * arch.BlockBytes)
}

// do issues one operation from node and runs the engine until it completes.
func (h *H) do(node int, op OpKind, a arch.Addr, vals ...arch.Word) Result {
	h.t.Helper()
	req := Request{Op: op, Addr: a}
	if len(vals) > 0 {
		req.Val = vals[0]
	}
	if len(vals) > 1 {
		req.Val2 = vals[1]
	}
	return h.doReq(node, req)
}

func (h *H) doReq(node int, req Request) Result {
	h.t.Helper()
	var res Result
	done := false
	req.Done = func(r Result) { res = r; done = true }
	h.eng.At(h.eng.Now(), func() { h.sys.Cache(mesh.NodeID(node)).Issue(req) })
	for !done {
		if !h.eng.Step() {
			h.t.Fatalf("deadlock: %v@%#x from node %d never completed", req.Op, req.Addr, node)
		}
	}
	return res
}

// doAll issues one request per entry concurrently and runs to completion.
// Requests are issued in ascending node order so concurrent rounds are
// deterministic (map iteration order must not leak into event ordering).
func (h *H) doAll(reqs map[int]Request) map[int]Result {
	h.t.Helper()
	nodes := make([]int, 0, len(reqs))
	for node := range reqs {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	out := make(map[int]Result, len(reqs))
	remaining := len(reqs)
	for _, node := range nodes {
		node, req := node, reqs[node]
		userDone := req.Done
		req.Done = func(r Result) {
			out[node] = r
			remaining--
			if userDone != nil {
				userDone(r)
			}
		}
		h.eng.At(h.eng.Now(), func() { h.sys.Cache(mesh.NodeID(node)).Issue(req) })
	}
	for remaining > 0 {
		if !h.eng.Step() {
			h.t.Fatalf("deadlock: %d concurrent requests never completed", remaining)
		}
	}
	return out
}

// drain runs the engine until the event queue is empty (write-backs, drops
// and other fire-and-forget traffic settle).
func (h *H) drain() {
	for h.eng.Step() {
	}
}

// ------------------------------------------------------------ basics ----

func TestLoadOfFreshWordIsZero(t *testing.T) {
	h := newH(t)
	r := h.do(0, OpLoad, h.addrAtHome(1, 0))
	if r.Value != 0 || !r.OK {
		t.Fatalf("load = %+v", r)
	}
}

func TestStoreThenLoadSameNode(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpStore, a, 42)
	r := h.do(0, OpLoad, a)
	if r.Value != 42 {
		t.Fatalf("load after store = %d", r.Value)
	}
	if r.Chain != 0 {
		t.Fatalf("local hit chain = %d", r.Chain)
	}
}

func TestStoreVisibleToOtherNodes(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 7)
	r := h.do(1, OpLoad, a)
	if r.Value != 7 {
		t.Fatalf("remote load = %d, want 7", r.Value)
	}
	// And the writer's copy was downgraded, not lost.
	r = h.do(0, OpLoad, a)
	if r.Value != 7 || r.Chain != 0 {
		t.Fatalf("owner reload = %+v", r)
	}
}

func TestWriteInvalidateSemantics(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(3, 0)
	h.do(0, OpStore, a, 1)
	h.do(1, OpStore, a, 2) // invalidates node 0's copy
	r := h.do(0, OpLoad, a)
	if r.Value != 2 {
		t.Fatalf("node 0 read %d after remote store, want 2", r.Value)
	}
	if r.Chain == 0 {
		t.Fatal("node 0 hit a stale copy")
	}
}

func TestDistinctWordsSameBlockShareLine(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpStore, a, 1)
	h.do(0, OpStore, a+4, 2)
	if r := h.do(0, OpLoad, a); r.Value != 1 {
		t.Fatalf("word 0 = %d", r.Value)
	}
	if r := h.do(0, OpLoad, a+4); r.Value != 2 || r.Chain != 0 {
		t.Fatalf("word 1 = %+v", r)
	}
}

func TestCoherenceInvariantAfterTraffic(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(0, 0)
	b := h.addrAtHome(1, 0)
	for i := 0; i < 4; i++ {
		h.do(i%4, OpStore, a, arch.Word(i))
		h.do((i+1)%4, OpLoad, b)
		h.do((i+2)%4, OpStore, b, arch.Word(i))
	}
	h.drain()
	h.sys.CheckCoherence()
}

// --------------------------------------------------- Table 1 chains -----

func TestChainUNCStore(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0) // home is node 1
	h.sys.SetPolicy(a, PolicyUNC)
	r := h.do(0, OpStore, a, 5)
	if r.Chain != 2 {
		t.Fatalf("UNC store chain = %d, want 2", r.Chain)
	}
	// Home-local UNC store crosses no network.
	r = h.do(1, OpStore, a, 6)
	if r.Chain != 0 {
		t.Fatalf("home-local UNC store chain = %d, want 0", r.Chain)
	}
}

func TestChainINVStoreCachedExclusive(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpStore, a, 1)
	r := h.do(0, OpStore, a, 2)
	if r.Chain != 0 {
		t.Fatalf("cached-exclusive store chain = %d, want 0", r.Chain)
	}
}

func TestChainINVStoreUncachedBlock(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	r := h.do(0, OpStore, a, 1)
	if r.Chain != 2 {
		t.Fatalf("store to unowned block chain = %d, want 2", r.Chain)
	}
}

func TestChainINVStoreRemoteExclusive(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 1) // node 0 owns exclusively
	r := h.do(1, OpStore, a, 2)
	if r.Chain != 4 {
		t.Fatalf("store to remote-exclusive chain = %d, want 4", r.Chain)
	}
}

func TestChainINVStoreRemoteShared(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(3, 0)
	h.do(0, OpLoad, a)
	h.do(1, OpLoad, a)
	r := h.do(2, OpStore, a, 9)
	if r.Chain != 3 {
		t.Fatalf("store to remote-shared chain = %d, want 3", r.Chain)
	}
}

func TestChainUPDStoreCachedElsewhere(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(3, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	h.do(0, OpLoad, a) // node 0 caches a copy
	r := h.do(1, OpStore, a, 4)
	if r.Chain != 3 {
		t.Fatalf("UPD store with a remote copy chain = %d, want 3", r.Chain)
	}
}

func TestChainUPDStoreUncached(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	r := h.do(0, OpStore, a, 4)
	if r.Chain != 2 {
		t.Fatalf("UPD store uncached chain = %d, want 2", r.Chain)
	}
}

// --------------------------------------------------------- fetch_and_Φ --

func TestFetchAddSemantics(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	if r := h.do(0, OpFetchAdd, a, 5); r.Value != 0 {
		t.Fatalf("first FAA returned %d", r.Value)
	}
	if r := h.do(1, OpFetchAdd, a, 3); r.Value != 5 {
		t.Fatalf("second FAA returned %d", r.Value)
	}
	if r := h.do(2, OpLoad, a); r.Value != 8 {
		t.Fatalf("final value %d", r.Value)
	}
}

func TestFetchStoreAndOrAndTAS(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(0, 0)
	if r := h.do(1, OpFetchStore, a, 0xf0); r.Value != 0 {
		t.Fatalf("fetch_and_store old = %d", r.Value)
	}
	if r := h.do(2, OpFetchOr, a, 0x0f); r.Value != 0xf0 {
		t.Fatalf("fetch_and_or old = %#x", r.Value)
	}
	if r := h.do(3, OpLoad, a); r.Value != 0xff {
		t.Fatalf("value after or = %#x", r.Value)
	}
	b := h.addrAtHome(0, 1)
	if r := h.do(1, OpTestAndSet, b); r.Value != 0 {
		t.Fatalf("TAS old = %d", r.Value)
	}
	if r := h.do(2, OpTestAndSet, b); r.Value != 1 {
		t.Fatalf("second TAS old = %d", r.Value)
	}
}

func TestConcurrentFetchAddLinearizable(t *testing.T) {
	for _, p := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			h := newH(t)
			a := h.addrAtHome(2, 0)
			h.sys.SetPolicy(a, p)
			reqs := map[int]Request{}
			for n := 0; n < 4; n++ {
				reqs[n] = Request{Op: OpFetchAdd, Addr: a, Val: 1}
			}
			res := h.doAll(reqs)
			seen := map[arch.Word]bool{}
			for n, r := range res {
				if seen[r.Value] {
					t.Fatalf("node %d fetched duplicate value %d", n, r.Value)
				}
				seen[r.Value] = true
			}
			if r := h.do(0, OpLoad, a); r.Value != 4 {
				t.Fatalf("final counter = %d, want 4", r.Value)
			}
			h.drain()
			h.sys.CheckCoherence()
		})
	}
}

// ------------------------------------------------------------------ CAS --

func TestCASSuccessAndFailure(t *testing.T) {
	for _, p := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			h := newH(t)
			a := h.addrAtHome(1, 0)
			h.sys.SetPolicy(a, p)
			if r := h.do(0, OpCAS, a, 0, 10); !r.OK || r.Value != 0 {
				t.Fatalf("CAS(0->10) = %+v", r)
			}
			if r := h.do(1, OpCAS, a, 0, 20); r.OK {
				t.Fatalf("CAS with stale expected succeeded: %+v", r)
			}
			if r := h.do(2, OpLoad, a); r.Value != 10 {
				t.Fatalf("value = %d, want 10", r.Value)
			}
		})
	}
}

func TestCASConcurrentOnlyOneWins(t *testing.T) {
	for _, v := range []CASVariant{CASPlain, CASDeny, CASShare} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			h := newH(t, func(c *Config) { c.CAS = v })
			a := h.addrAtHome(3, 0)
			reqs := map[int]Request{}
			for n := 0; n < 4; n++ {
				reqs[n] = Request{Op: OpCAS, Addr: a, Val: 0, Val2: arch.Word(100 + n)}
			}
			res := h.doAll(reqs)
			winners := 0
			var winVal arch.Word
			for n, r := range res {
				if r.OK {
					winners++
					winVal = arch.Word(100 + n)
				}
			}
			if winners != 1 {
				t.Fatalf("%d CAS winners, want 1", winners)
			}
			if r := h.do(0, OpLoad, a); r.Value != winVal {
				t.Fatalf("value %d, winner wrote %d", r.Value, winVal)
			}
			h.drain()
			h.sys.CheckCoherence()
		})
	}
}

func TestCASDenyFailureLeavesNoCopy(t *testing.T) {
	h := newH(t, func(c *Config) { c.CAS = CASDeny })
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 5) // node 0 exclusive
	r := h.do(1, OpCAS, a, 99, 1)
	if r.OK {
		t.Fatal("CAS succeeded with wrong expected value")
	}
	if r.Value != 5 {
		t.Fatalf("CAS fail returned value %d, want 5", r.Value)
	}
	if h.sys.Cache(1).CacheArray().Peek(a) != nil {
		t.Fatal("INVd failure left a cached copy at requester")
	}
	// Chain: request -> forward to owner -> direct denial = 3.
	if r.Chain != 3 {
		t.Fatalf("INVd remote-exclusive fail chain = %d, want 3", r.Chain)
	}
	// The owner keeps its exclusive copy.
	l := h.sys.Cache(0).CacheArray().Peek(a)
	if l == nil || l.State != cache.ExclusiveRW {
		t.Fatal("INVd failure disturbed the owner's copy")
	}
	h.drain()
	h.sys.CheckCoherence()
}

func TestCASShareFailureLeavesSharedCopy(t *testing.T) {
	h := newH(t, func(c *Config) { c.CAS = CASShare })
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 5)
	r := h.do(1, OpCAS, a, 99, 1)
	if r.OK || r.Value != 5 {
		t.Fatalf("CAS = %+v", r)
	}
	l := h.sys.Cache(1).CacheArray().Peek(a)
	if l == nil || l.State != cache.SharedRO {
		t.Fatalf("INVs failure did not leave a shared copy: %+v", l)
	}
	if l.Word(a) != 5 {
		t.Fatalf("shared copy holds %d, want 5", l.Word(a))
	}
	// Former owner was downgraded, not invalidated.
	ol := h.sys.Cache(0).CacheArray().Peek(a)
	if ol == nil || ol.State != cache.SharedRO {
		t.Fatal("INVs failure did not downgrade the owner")
	}
	h.drain()
	h.sys.CheckCoherence()
}

func TestCASHomeFailVariantsAtUnownedBlock(t *testing.T) {
	h := newH(t, func(c *Config) { c.CAS = CASDeny })
	a := h.addrAtHome(1, 0)
	if r := h.do(0, OpCAS, a, 99, 1); r.OK || r.Chain != 2 {
		t.Fatalf("INVd fail at home = %+v, want fail chain 2", r)
	}
	if h.sys.Cache(0).CacheArray().Peek(a) != nil {
		t.Fatal("INVd left a copy")
	}

	h2 := newH(t, func(c *Config) { c.CAS = CASShare })
	if r := h2.do(0, OpCAS, a, 99, 1); r.OK {
		t.Fatalf("INVs fail = %+v", r)
	}
	l := h2.sys.Cache(0).CacheArray().Peek(a)
	if l == nil || l.State != cache.SharedRO {
		t.Fatal("INVs did not leave shared copy on home-fail")
	}
}

func TestCASVariantSuccessMigratesExclusive(t *testing.T) {
	for _, v := range []CASVariant{CASDeny, CASShare} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			h := newH(t, func(c *Config) { c.CAS = v })
			a := h.addrAtHome(2, 0)
			h.do(0, OpStore, a, 5)
			r := h.do(1, OpCAS, a, 5, 6)
			if !r.OK {
				t.Fatalf("CAS = %+v", r)
			}
			if r.Chain != 4 {
				t.Fatalf("remote-exclusive success chain = %d, want 4", r.Chain)
			}
			l := h.sys.Cache(1).CacheArray().Peek(a)
			if l == nil || l.State != cache.ExclusiveRW || l.Word(a) != 6 {
				t.Fatalf("requester line = %+v", l)
			}
			if h.sys.Cache(0).CacheArray().Peek(a) != nil {
				t.Fatal("former owner kept a copy after successful CAS")
			}
			h.drain()
			h.sys.CheckCoherence()
		})
	}
}

// ---------------------------------------------------------------- LL/SC --

func TestLLSCSuccessWithoutIntervention(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	r := h.do(0, OpLL, a)
	if r.Value != 0 {
		t.Fatalf("LL = %+v", r)
	}
	if r := h.do(0, OpSC, a, 1); !r.OK {
		t.Fatalf("SC failed without intervention: %+v", r)
	}
	if r := h.do(1, OpLoad, a); r.Value != 1 {
		t.Fatalf("value = %d", r.Value)
	}
}

func TestSCFailsAfterInterveningWrite(t *testing.T) {
	for _, p := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			h := newH(t)
			a := h.addrAtHome(1, 0)
			h.sys.SetPolicy(a, p)
			h.do(0, OpLL, a)
			h.do(1, OpStore, a, 9)
			req := Request{Op: OpSC, Addr: a, Val: 1}
			if p == PolicyINV {
				// nothing extra
			}
			if r := h.doReq(0, req); r.OK {
				t.Fatal("SC succeeded after intervening write")
			}
			if r := h.do(2, OpLoad, a); r.Value != 9 {
				t.Fatalf("value = %d, want 9", r.Value)
			}
		})
	}
}

func TestSCFailsLocallyWithoutReservation(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	before := h.sys.Counters().SCFailLocal
	r := h.do(0, OpSC, a, 1)
	if r.OK || r.Chain != 0 {
		t.Fatalf("bare SC = %+v, want local failure", r)
	}
	if h.sys.Counters().SCFailLocal != before+1 {
		t.Fatal("local SC failure not counted")
	}
}

func TestSCFailsAfterSameWordWriteOfSameValue(t *testing.T) {
	// Unlike CAS, SC must fail even when the intervening write stored the
	// same value that LL read (the pointer/ABA problem motivation).
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpLL, a)       // reads 0
	h.do(1, OpStore, a, 0) // writes the same value
	if r := h.do(0, OpSC, a, 1); r.OK {
		t.Fatal("SC succeeded despite intervening same-value write")
	}
}

func TestConcurrentLLSCOnlyOneSucceeds(t *testing.T) {
	for _, p := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			h := newH(t)
			a := h.addrAtHome(0, 0)
			h.sys.SetPolicy(a, p)
			// Everyone LLs, then everyone SCs.
			llReqs := map[int]Request{}
			for n := 0; n < 4; n++ {
				llReqs[n] = Request{Op: OpLL, Addr: a}
			}
			h.doAll(llReqs)
			scReqs := map[int]Request{}
			for n := 0; n < 4; n++ {
				scReqs[n] = Request{Op: OpSC, Addr: a, Val: arch.Word(n + 1)}
			}
			res := h.doAll(scReqs)
			wins := 0
			var winner int
			for n, r := range res {
				if r.OK {
					wins++
					winner = n
				}
			}
			if wins != 1 {
				t.Fatalf("%d SC winners, want exactly 1", wins)
			}
			if r := h.do(0, OpLoad, a); r.Value != arch.Word(winner+1) {
				t.Fatalf("value %d, winner was %d", r.Value, winner)
			}
			h.drain()
			h.sys.CheckCoherence()
		})
	}
}

func TestLLSCSecondSCAfterSuccessFails(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpLL, a)
	if r := h.do(0, OpSC, a, 1); !r.OK {
		t.Fatal("first SC failed")
	}
	if r := h.do(0, OpSC, a, 2); r.OK {
		t.Fatal("second SC succeeded without a new LL")
	}
}

func TestLimitedReservationHint(t *testing.T) {
	h := newH(t, func(c *Config) {
		c.ResvScheme = dir.ResvLimited
		c.ResvLimit = 1
	})
	a := h.addrAtHome(1, 0)
	h.sys.SetPolicy(a, PolicyUNC)
	if r := h.do(0, OpLL, a); r.Hint {
		t.Fatal("first LL hinted failure")
	}
	r := h.do(2, OpLL, a)
	if !r.Hint {
		t.Fatal("beyond-limit LL did not hint")
	}
	// The hinted node's SC fails locally, without network traffic.
	msgsBefore := h.net.Stats().Messages
	if r := h.do(2, OpSC, a, 5); r.OK || r.Chain != 0 {
		t.Fatalf("hinted SC = %+v, want local fail", r)
	}
	if h.net.Stats().Messages != msgsBefore {
		t.Fatal("hinted SC generated network traffic")
	}
	// The within-limit holder still succeeds.
	if r := h.do(0, OpSC, a, 7); !r.OK {
		t.Fatal("within-limit SC failed")
	}
}

func TestSerialSchemeBareSC(t *testing.T) {
	h := newH(t, func(c *Config) { c.ResvScheme = dir.ResvSerial })
	a := h.addrAtHome(1, 0)
	h.sys.SetPolicy(a, PolicyUNC)
	r := h.do(0, OpLL, a)
	serial := r.Serial
	// A bare SC from another processor carrying the current serial
	// succeeds: no explicit reservation is needed under this scheme.
	if r := h.doReq(1, Request{Op: OpSC, Addr: a, Val: 5, Val2: serial}); !r.OK {
		t.Fatal("bare SC with current serial failed")
	}
	// The original holder's SC now fails: the serial advanced.
	if r := h.doReq(0, Request{Op: OpSC, Addr: a, Val: 9, Val2: serial}); r.OK {
		t.Fatal("stale-serial SC succeeded")
	}
	if r := h.do(2, OpLoad, a); r.Value != 5 {
		t.Fatalf("value = %d", r.Value)
	}
}

// ------------------------------------------- auxiliary instructions -----

func TestLoadExclusiveMakesCASLocal(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	r := h.do(0, OpLoadExclusive, a)
	if r.Value != 0 {
		t.Fatalf("load_exclusive = %+v", r)
	}
	// The subsequent CAS hits the exclusive copy: zero chain.
	r = h.do(0, OpCAS, a, 0, 1)
	if !r.OK || r.Chain != 0 {
		t.Fatalf("CAS after load_exclusive = %+v, want local success", r)
	}
}

func TestDropCopyExclusiveShortensNextRemoteStore(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 1)
	h.do(0, OpDropCopy, a)
	h.drain() // let the write-back land
	r := h.do(1, OpStore, a, 2)
	if r.Chain != 2 {
		t.Fatalf("store after drop chain = %d, want 2 (vs 4 without drop)", r.Chain)
	}
	if r := h.do(3, OpLoad, a); r.Value != 2 {
		t.Fatalf("value = %d", r.Value)
	}
}

func TestDropCopySharedRemovesSharer(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpLoad, a)
	h.do(1, OpLoad, a)
	h.do(0, OpDropCopy, a)
	h.drain()
	r := h.do(3, OpStore, a, 1)
	// Only node 1 still shares: chain stays 3, but exactly one
	// invalidation was sent.
	if r.Chain != 3 {
		t.Fatalf("chain = %d", r.Chain)
	}
	if h.sys.Counters().Invals != 1 {
		t.Fatalf("invals = %d, want 1 (dropped sharer not invalidated)", h.sys.Counters().Invals)
	}
}

func TestDropCopyAbsentLineIsNoop(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	msgs := h.net.Stats().Messages
	r := h.do(0, OpDropCopy, a)
	if !r.OK {
		t.Fatal("drop of absent line failed")
	}
	h.drain()
	if h.net.Stats().Messages != msgs {
		t.Fatal("drop of absent line generated traffic")
	}
}

func TestDropCopyRaceWithRecallRecovers(t *testing.T) {
	// Node 0 owns; it drops its copy at the same instant node 1 requests
	// exclusivity. The paper: the home NAKs the requester, which retries.
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 1)
	res := h.doAll(map[int]Request{
		0: {Op: OpDropCopy, Addr: a},
		1: {Op: OpStore, Addr: a, Val: 2},
	})
	if !res[1].OK {
		t.Fatal("store lost in drop/recall race")
	}
	if r := h.do(3, OpLoad, a); r.Value != 2 {
		t.Fatalf("value = %d, want 2", r.Value)
	}
	h.drain()
	h.sys.CheckCoherence()
}

// -------------------------------------------------------------- UPD -----

func TestUPDUpdatesSharedCopiesInPlace(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	h.do(0, OpLoad, a) // node 0 caches
	h.do(1, OpStore, a, 77)
	// Node 0's copy was updated, not invalidated: hit with the new value.
	r := h.do(0, OpLoad, a)
	if r.Value != 77 || r.Chain != 0 {
		t.Fatalf("post-update read = %+v, want hit of 77", r)
	}
}

func TestUPDWriterRetainsSharedCopy(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	h.do(1, OpStore, a, 5)
	r := h.do(1, OpLoad, a)
	if r.Chain != 0 || r.Value != 5 {
		t.Fatalf("writer's read = %+v, want local hit", r)
	}
}

func TestUPDLLGoesToMemoryEvenWhenCached(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	h.do(0, OpLoad, a) // cached locally
	r := h.do(0, OpLL, a)
	if r.Chain == 0 {
		t.Fatal("UPD LL satisfied locally; reservations live at memory")
	}
	if r2 := h.do(0, OpSC, a, 3); !r2.OK {
		t.Fatalf("SC after LL failed: %+v", r2)
	}
}

func TestUPDFetchAddUpdatesAllCopies(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(3, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	h.do(0, OpLoad, a)
	h.do(1, OpLoad, a)
	h.do(2, OpFetchAdd, a, 10)
	for n := 0; n < 2; n++ {
		r := h.do(n, OpLoad, a)
		if r.Value != 10 || r.Chain != 0 {
			t.Fatalf("node %d read = %+v, want updated hit", n, r)
		}
	}
}

// -------------------------------------------------------------- UNC -----

func TestUNCNeverCaches(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.sys.SetPolicy(a, PolicyUNC)
	h.do(0, OpStore, a, 3)
	h.do(0, OpLoad, a)
	if h.sys.Cache(0).CacheArray().Peek(a) != nil {
		t.Fatal("UNC data found in a cache")
	}
	// Every access goes to memory: same chain every time.
	if r := h.do(0, OpLoad, a); r.Chain != 2 {
		t.Fatalf("UNC load chain = %d, want 2", r.Chain)
	}
}

func TestUNCAlternatingWritersConstantCost(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(3, 0)
	h.sys.SetPolicy(a, PolicyUNC)
	for i := 0; i < 6; i++ {
		r := h.do(i%2, OpFetchAdd, a, 1)
		if r.Chain != 2 {
			t.Fatalf("UNC FAA chain = %d, want 2", r.Chain)
		}
	}
	if r := h.do(0, OpLoad, a); r.Value != 6 {
		t.Fatalf("counter = %d", r.Value)
	}
}

// ------------------------------------------------------------ tracking --

func TestContentionHistogramRecordsConcurrency(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(0, 0)
	reqs := map[int]Request{}
	for n := 0; n < 4; n++ {
		reqs[n] = Request{Op: OpFetchAdd, Addr: a, Val: 1}
	}
	h.doAll(reqs)
	hist := h.sys.Contention().Histogram()
	if hist.Total() != 4 {
		t.Fatalf("contention samples = %d, want 4", hist.Total())
	}
	if hist.Max() < 2 {
		t.Fatalf("max contention = %d, want >= 2 for concurrent FAAs", hist.Max())
	}
}

func TestWriteRunTracking(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(0, 0)
	// Two consecutive atomic updates by node 0, then one by node 1.
	h.do(0, OpFetchAdd, a, 1)
	h.do(0, OpFetchAdd, a, 1)
	h.do(1, OpFetchAdd, a, 1)
	wr := h.sys.WriteRuns()
	wr.Flush()
	if wr.Histogram().Count(2) != 1 || wr.Histogram().Count(1) != 1 {
		t.Fatalf("write runs = %s", wr.Histogram())
	}
}

// --------------------------------------------------------- stress -------

// TestStressRandomOpsAllPolicies hammers a handful of words from all nodes
// with random operations and validates linearizability of the counter
// words, coherence invariants, and liveness.
func TestStressRandomOpsAllPolicies(t *testing.T) {
	policies := []Policy{PolicyINV, PolicyUPD, PolicyUNC}
	variants := []CASVariant{CASPlain, CASDeny, CASShare}
	for _, p := range policies {
		for _, v := range variants {
			p, v := p, v
			t.Run(p.String()+"/"+v.String(), func(t *testing.T) {
				stressOnce(t, p, v, 42)
			})
		}
	}
}

func stressOnce(t *testing.T, p Policy, v CASVariant, seed uint64) {
	h := newH(t, func(c *Config) { c.CAS = v })
	const nodes = 4
	counter := h.addrAtHome(1, 0)
	other := h.addrAtHome(2, 0)
	h.sys.SetPolicy(counter, p)
	h.sys.SetPolicy(other, p)

	var succIncr int
	remaining := nodes
	rng := sim.NewRNG(seed)
	perNode := make([]*sim.RNG, nodes)
	for n := range perNode {
		perNode[n] = rng.Fork(uint64(n))
	}

	var step func(n int, left int)
	step = func(n int, left int) {
		if left == 0 {
			remaining--
			return
		}
		r := perNode[n]
		issue := func(req Request, after func(Result)) {
			req.Done = func(res Result) {
				if after != nil {
					after(res)
				}
				step(n, left-1)
			}
			h.sys.Cache(mesh.NodeID(n)).Issue(req)
		}
		switch r.Intn(6) {
		case 0: // fetch_and_add on the counter
			issue(Request{Op: OpFetchAdd, Addr: counter, Val: 1}, func(Result) { succIncr++ })
		case 1: // CAS-increment attempt (one shot; count only successes)
			h.sys.Cache(mesh.NodeID(n)).Issue(Request{
				Op: OpLoad, Addr: counter,
				Done: func(lr Result) {
					h.sys.Cache(mesh.NodeID(n)).Issue(Request{
						Op: OpCAS, Addr: counter, Val: lr.Value, Val2: lr.Value + 1,
						Done: func(cr Result) {
							if cr.OK {
								succIncr++
							}
							step(n, left-1)
						},
					})
				},
			})
			return
		case 2: // LL/SC increment attempt
			h.sys.Cache(mesh.NodeID(n)).Issue(Request{
				Op: OpLL, Addr: counter,
				Done: func(lr Result) {
					h.sys.Cache(mesh.NodeID(n)).Issue(Request{
						Op: OpSC, Addr: counter, Val: lr.Value + 1, Val2: lr.Serial,
						Done: func(sr Result) {
							if sr.OK {
								succIncr++
							}
							step(n, left-1)
						},
					})
				},
			})
			return
		case 3: // unrelated traffic
			issue(Request{Op: OpStore, Addr: other, Val: arch.Word(r.Intn(1000))}, nil)
		case 4:
			issue(Request{Op: OpLoad, Addr: other}, nil)
		case 5:
			issue(Request{Op: OpDropCopy, Addr: counter}, nil)
		}
	}

	const opsPerNode = 60
	for n := 0; n < nodes; n++ {
		n := n
		h.eng.At(0, func() { step(n, opsPerNode) })
	}
	limit := 0
	for remaining > 0 {
		if !h.eng.Step() {
			t.Fatalf("stress deadlocked with %d nodes unfinished", remaining)
		}
		limit++
		if limit > 5_000_000 {
			t.Fatal("stress did not converge")
		}
	}
	h.drain()
	final := h.do(0, OpLoad, counter)
	if int(final.Value) != succIncr {
		t.Fatalf("counter = %d but %d successful increments", final.Value, succIncr)
	}
	h.sys.CheckCoherence()
}

// TestStress64Nodes runs the same workload at full machine size.
func TestStress64Nodes(t *testing.T) {
	h := newH(t, func(c *Config) {
		c.Nodes = 64
		c.Mesh = mesh.DefaultConfig()
	})
	a := h.addrAtHome(17, 0)
	reqs := map[int]Request{}
	for n := 0; n < 64; n++ {
		reqs[n] = Request{Op: OpFetchAdd, Addr: a, Val: 1}
	}
	h.doAll(reqs)
	if r := h.do(0, OpLoad, a); r.Value != 64 {
		t.Fatalf("counter = %d, want 64", r.Value)
	}
	h.drain()
	h.sys.CheckCoherence()
}

// ------------------------------------------------------------ misc ------

func TestPolicyAndVariantNames(t *testing.T) {
	if PolicyINV.String() != "INV" || PolicyUPD.String() != "UPD" || PolicyUNC.String() != "UNC" {
		t.Fatal("policy names wrong")
	}
	if CASPlain.String() != "INV" || CASDeny.String() != "INVd" || CASShare.String() != "INVs" {
		t.Fatal("variant names wrong")
	}
}

func TestOpNamesAndClasses(t *testing.T) {
	if OpCAS.String() != "compare_and_swap" || OpLL.String() != "load_linked" {
		t.Fatal("op names wrong")
	}
	if !OpCAS.IsAtomic() || !OpLL.IsAtomic() || OpLoad.IsAtomic() || OpDropCopy.IsAtomic() {
		t.Fatal("IsAtomic misclassifies")
	}
}

func TestHomeOfInterleavesBlocks(t *testing.T) {
	h := newH(t)
	if h.sys.HomeOf(0) != 0 || h.sys.HomeOf(32) != 1 || h.sys.HomeOf(4*32) != 0 {
		t.Fatal("block interleaving wrong")
	}
	// Same block, same home regardless of offset.
	if h.sys.HomeOf(33) != h.sys.HomeOf(32) {
		t.Fatal("home differs within a block")
	}
}

func TestIssueWhileBusyPanics(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("second Issue did not panic")
		}
	}()
	h.eng.At(0, func() {
		c := h.sys.Cache(0)
		c.Issue(Request{Op: OpLoad, Addr: a})
		c.Issue(Request{Op: OpLoad, Addr: a})
	})
	h.eng.Run(0)
}

func TestSetPolicyRangeCoversBlocks(t *testing.T) {
	h := newH(t)
	h.sys.SetPolicyRange(0x100, 96, PolicyUNC)
	for _, a := range []arch.Addr{0x100, 0x120, 0x15c} {
		if h.sys.PolicyOf(a) != PolicyUNC {
			t.Fatalf("policy of %#x not UNC", a)
		}
	}
	if h.sys.PolicyOf(0x160) != PolicyINV {
		t.Fatal("range overshot")
	}
}

func TestNakAndRetryCountersMove(t *testing.T) {
	// Force recall/NAK traffic with a drop race and confirm the counters
	// observe it (the exact numbers are protocol-internal).
	h := newH(t)
	a := h.addrAtHome(2, 0)
	for i := 0; i < 10; i++ {
		h.do(0, OpStore, a, 1)
		h.doAll(map[int]Request{
			0: {Op: OpDropCopy, Addr: a},
			1: {Op: OpStore, Addr: a, Val: 2},
		})
	}
	c := h.sys.Counters()
	if c.Requests == 0 || c.Writebacks == 0 {
		t.Fatalf("counters = %+v", c)
	}
}
