package locks

import (
	"testing"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

func TestPriorityLockMutualExclusion(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			const procs, iters = 8, 5
			m := newM(procs)
			l := NewPriorityLock(m, core.PolicyINV, Options{Prim: prim})
			shared := m.Alloc(4)
			inCS := 0
			m.Run(func(p *machine.Proc) {
				for i := 0; i < iters; i++ {
					l.Acquire(p, arch.Word(p.ID()%3))
					inCS++
					if inCS != 1 {
						t.Errorf("%d holders in the critical section", inCS)
					}
					v := p.Load(shared)
					p.Compute(15)
					p.Store(shared, v+1)
					inCS--
					l.Release(p)
					p.Compute(sim.Time(p.Rand().Intn(40)))
				}
			})
			if got := m.Peek(shared); got != procs*iters {
				t.Fatalf("counter = %d, want %d", got, procs*iters)
			}
			m.System().CheckCoherence()
		})
	}
}

func TestPriorityLockGrantsByPriority(t *testing.T) {
	// Processor 0 holds the lock while processors 1..5 queue with
	// priorities equal to their ids, all published before the release
	// cascade begins. Hand-offs must then proceed in descending priority.
	const procs, waiters = 8, 5
	m := newM(procs)
	l := NewPriorityLock(m, core.PolicyUNC, Options{Prim: PrimFAP})
	ready := m.AllocSync(core.PolicyUNC)
	var order []int
	m.Run(func(p *machine.Proc) {
		switch {
		case p.ID() == 0:
			l.Acquire(p, 0)
			// Wait until all waiters have announced, then give their
			// want-publications (the first store inside Acquire) ample
			// time to land before starting the cascade.
			for p.Load(ready) != waiters {
				p.Compute(20)
			}
			p.Compute(2000)
			l.Release(p)
		case p.ID() >= 1 && p.ID() <= waiters:
			p.FetchAdd(ready, 1)
			l.Acquire(p, arch.Word(p.ID()))
			order = append(order, p.ID())
			l.Release(p)
		}
	})
	if len(order) != waiters {
		t.Fatalf("%d acquisitions, want %d", len(order), waiters)
	}
	for i := 1; i < len(order); i++ {
		if order[i] >= order[i-1] {
			t.Fatalf("hand-off order %v not by descending priority", order)
		}
	}
}
