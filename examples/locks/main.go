// Locks: build synchronization on the public API. Compares the paper's
// test-and-test-and-set lock (bounded exponential backoff) against the MCS
// queue lock under heavy contention, and shows how to write a new
// algorithm — a ticket lock — directly against the Proc interface.
package main

import (
	"fmt"

	"dsm"
)

const (
	procs = 16
	iters = 4
)

func main() {
	fmt.Printf("%d processors, %d lock acquisitions each, short critical section:\n", procs, iters)

	ttsTime := contend("test-and-test-and-set + backoff", func(m *dsm.Machine) acquirer {
		return dsm.NewTTSLock(m, dsm.INV, dsm.Options{Prim: dsm.CAS})
	})
	mcsTime := contend("MCS queue lock", func(m *dsm.Machine) acquirer {
		return dsm.NewMCSLock(m, dsm.INV, dsm.Options{Prim: dsm.CAS})
	})
	ticketTime := contend("ticket lock (custom, built on FAI)", newTicketLock)

	fmt.Printf("\nTTS/MCS elapsed ratio: %.2f, TTS/ticket: %.2f\n",
		float64(ttsTime)/float64(mcsTime), float64(ttsTime)/float64(ticketTime))
}

type acquirer interface {
	Acquire(p *dsm.Proc)
	Release(p *dsm.Proc)
}

func contend(name string, mk func(m *dsm.Machine) acquirer) dsm.Time {
	m := dsm.NewSmall(procs)
	l := mk(m)
	shared := m.Alloc(4)
	elapsed := m.Run(func(p *dsm.Proc) {
		for i := 0; i < iters; i++ {
			l.Acquire(p)
			p.Store(shared, p.Load(shared)+1) // racy unless the lock works
			l.Release(p)
			p.Compute(30)
		}
	})
	ok := "ok"
	if m.Peek(shared) != procs*iters {
		ok = fmt.Sprintf("LOST UPDATES (%d/%d)", m.Peek(shared), procs*iters)
	}
	fmt.Printf("  %-38s %8d cycles  %s\n", name, elapsed, ok)
	return elapsed
}

// ticketLock is a fair spin lock built directly on the public API:
// fetch_and_add hands out tickets; the grant word is ordinary data.
type ticketLock struct {
	ticket dsm.Addr // next ticket (fetch_and_add, UNC: counters like this are its sweet spot)
	grant  dsm.Addr // now serving (ordinary loads/stores)
}

func newTicketLock(m *dsm.Machine) acquirer {
	return &ticketLock{
		ticket: m.AllocSync(dsm.UNC),
		grant:  m.Alloc(4),
	}
}

func (l *ticketLock) Acquire(p *dsm.Proc) {
	my := p.FetchAdd(l.ticket, 1)
	for p.Load(l.grant) != my {
		p.Compute(16)
	}
}

func (l *ticketLock) Release(p *dsm.Proc) {
	p.Store(l.grant, p.Load(l.grant)+1)
}
