// Package dir implements the full-map directory state kept by each home
// memory module in the DASH-style protocols of the paper. A directory entry
// records, per 32-byte block, whether memory's copy is current, which caches
// hold copies, and — for the memory-side implementations of load_linked /
// store_conditional — the outstanding reservations.
package dir

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/mesh"
)

// State is the stable sharing state of a block as recorded at its home.
type State uint8

const (
	// Unowned: no cache holds a copy; memory is current. (The paper calls
	// this case "uncached" in Table 1.)
	Unowned State = iota
	// Shared: one or more caches hold read-only copies; memory is current.
	Shared
	// Exclusive: exactly one cache holds an exclusive (dirty) copy; memory
	// is stale.
	Exclusive
	// Busy: a transaction is in flight for this block; incoming requests
	// are refused with negative acknowledgments and retried by requesters.
	Busy
)

// String returns a short human-readable state name.
func (s State) String() string {
	switch s {
	case Unowned:
		return "unowned"
	case Shared:
		return "shared"
	case Exclusive:
		return "exclusive"
	case Busy:
		return "busy"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Bitset is a set of node ids (up to 64 nodes, the machine size in the
// paper). The zero value is the empty set.
type Bitset uint64

// Add inserts node n.
func (b *Bitset) Add(n mesh.NodeID) { *b |= 1 << uint(n) }

// Remove deletes node n.
func (b *Bitset) Remove(n mesh.NodeID) { *b &^= 1 << uint(n) }

// Has reports whether node n is present.
func (b Bitset) Has(n mesh.NodeID) bool { return b&(1<<uint(n)) != 0 }

// Count returns the number of nodes present.
func (b Bitset) Count() int {
	n := 0
	for v := uint64(b); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Empty reports whether the set is empty.
func (b Bitset) Empty() bool { return b == 0 }

// ForEach calls fn for each node present, in increasing id order.
func (b Bitset) ForEach(fn func(mesh.NodeID)) {
	for v, i := uint64(b), 0; v != 0; v, i = v>>1, i+1 {
		if v&1 != 0 {
			fn(mesh.NodeID(i))
		}
	}
}

// Only reports whether the set contains exactly node n and nothing else.
func (b Bitset) Only(n mesh.NodeID) bool { return b == 1<<uint(n) }

// Entry is the directory record for one block.
type Entry struct {
	State   State
	Sharers Bitset      // caches holding read-only copies (State == Shared)
	Owner   mesh.NodeID // cache holding the exclusive copy (State == Exclusive)

	// Reservations holds memory-side LL/SC reservation state for the UNC
	// and UPD implementations; nil until the first load_linked.
	Reservations *ResvState
}

// Directory is the per-home-node collection of entries, keyed by block base
// address. Entries are created on first reference in the Unowned state.
type Directory struct {
	entries map[arch.Addr]*Entry
}

// New returns an empty directory.
func New() *Directory {
	d := &Directory{}
	d.Init()
	return d
}

// Init (re)initializes a directory in place, for callers that embed
// Directory by value.
func (d *Directory) Init() {
	d.entries = make(map[arch.Addr]*Entry)
}

// Reset forgets every entry's contents, returning the directory to a state
// protocol-equivalent to post-Init while keeping the entries themselves
// allocated: a reused machine references the same blocks every run, and
// keeping the records makes Entry allocation-free in the steady state.
// Lingering Unowned entries are invisible to the protocol (Entry would have
// created an identical record on first touch) and to the coherence checker
// (which only inspects entries for blocks actually cached).
func (d *Directory) Reset() {
	for _, e := range d.entries {
		e.State = Unowned
		e.Sharers = 0
		e.Owner = 0
		if e.Reservations != nil {
			e.Reservations.Reset()
		}
	}
}

// Entry returns the entry for the block containing a, creating it (Unowned)
// on first reference.
func (d *Directory) Entry(a arch.Addr) *Entry {
	base := arch.BlockBase(a)
	e := d.entries[base]
	if e == nil {
		e = &Entry{State: Unowned}
		d.entries[base] = e
	}
	return e
}

// Peek returns the entry for the block containing a, or nil if the block
// has never been referenced.
func (d *Directory) Peek(a arch.Addr) *Entry {
	return d.entries[arch.BlockBase(a)]
}

// ForEach calls fn for every allocated entry. Iteration order is
// unspecified; callers needing determinism must sort.
func (d *Directory) ForEach(fn func(arch.Addr, *Entry)) {
	for a, e := range d.entries {
		fn(a, e)
	}
}

// Check verifies the internal consistency of an entry and panics with a
// descriptive message on violation. It is called from the protocol engines
// in race-heavy tests.
func (e *Entry) Check(base arch.Addr) {
	switch e.State {
	case Unowned:
		if !e.Sharers.Empty() {
			panic(fmt.Sprintf("dir: unowned block %#x has sharers %b", base, e.Sharers))
		}
	case Shared:
		if e.Sharers.Empty() {
			panic(fmt.Sprintf("dir: shared block %#x has no sharers", base))
		}
	case Exclusive:
		if !e.Sharers.Empty() {
			panic(fmt.Sprintf("dir: exclusive block %#x has sharers %b", base, e.Sharers))
		}
	}
}
