package exper

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SweepSlots runs job(slot, 0) .. job(slot, n-1) across a pool of par
// worker goroutines and returns when all jobs have finished. Each worker
// owns one MachineSlot for the sweep's lifetime and passes it to every job
// it executes, so a job that runs its point on the slot's machine reuses
// that machine across jobs with no pool round-trip and no cross-worker
// contention — the per-worker ownership that lets a sweep actually scale
// with GOMAXPROCS.
//
// Each simulation run owns its machine — engine, mesh, protocol state, RNG
// streams, and statistics are all per-Machine, and the packages underneath
// hold no mutable package-level state — so independent runs share nothing
// and the fan-out cannot perturb results. Determinism is preserved by
// construction: a reset machine replays a fresh one cycle for cycle, jobs
// write their results into caller-provided slots indexed by job number,
// and callers render the slots in serial order afterwards, so output is
// byte-identical for every par, including par == 1.
//
// par <= 0 selects GOMAXPROCS workers; par == 1 runs the jobs serially on
// the calling goroutine with a single slot (no goroutines spawned),
// restoring the pre-parallel execution exactly. Jobs are handed out by an
// atomic counter rather than striped up front, so long runs (real
// applications) do not straggle behind a fixed partition.
func SweepSlots(n, par int, job func(s *MachineSlot, i int)) {
	if n <= 0 {
		return
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par == 1 {
		var s MachineSlot
		for i := 0; i < n; i++ {
			job(&s, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			var s MachineSlot
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(&s, i)
			}
		}()
	}
	wg.Wait()
}

// Sweep is SweepSlots without the machine slot, for jobs that manage their
// own machines (or run none at all). Scheduling and determinism guarantees
// are identical.
func Sweep(n, par int, job func(i int)) {
	SweepSlots(n, par, func(_ *MachineSlot, i int) { job(i) })
}
