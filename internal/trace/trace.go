// Package trace provides an optional protocol-event trace for the
// simulator: a bounded ring buffer of timestamped events (processor
// operations, protocol messages, transaction completions) with filtering
// and text rendering. It exists for debugging protocol behaviour and for
// teaching: a trace of one atomic operation shows exactly the serialized
// message pattern Table 1 counts.
package trace

import (
	"fmt"
	"io"
	"strings"

	"dsm/internal/sim"
)

// Event is one timestamped trace record.
type Event struct {
	At     sim.Time
	Node   int    // node where the event occurred (-1 for system-wide)
	Kind   string // "issue", "send", "recv", "complete", ...
	Detail string
}

// String renders the event as a single trace line.
func (e Event) String() string {
	return fmt.Sprintf("%8d  n%02d  %-9s %s", e.At, e.Node, e.Kind, e.Detail)
}

// Buffer is a bounded ring of events. The zero value is unusable; call New.
type Buffer struct {
	ring  []Event
	next  int
	total uint64
}

// New returns a buffer retaining the most recent capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Buffer{ring: make([]Event, 0, capacity)}
}

// Record appends an event, displacing the oldest when full. It implements
// the tracer hook of internal/core.
func (b *Buffer) Record(at sim.Time, node int, kind, detail string) {
	ev := Event{At: at, Node: node, Kind: kind, Detail: detail}
	b.total++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, ev)
		return
	}
	b.ring[b.next] = ev
	b.next = (b.next + 1) % cap(b.ring)
}

// Total returns the number of events ever recorded (including displaced).
func (b *Buffer) Total() uint64 { return b.total }

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.ring) }

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Filter returns the retained events whose kind or detail contains the
// substring, in chronological order.
func (b *Buffer) Filter(substr string) []Event {
	var out []Event
	for _, e := range b.Events() {
		if strings.Contains(e.Kind, substr) || strings.Contains(e.Detail, substr) {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo renders the retained events, one per line.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range b.Events() {
		k, err := fmt.Fprintln(w, e)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Reset discards all retained events (the total count is preserved).
func (b *Buffer) Reset() {
	b.ring = b.ring[:0]
	b.next = 0
}
