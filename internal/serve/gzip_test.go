package serve

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func gunzip(t *testing.T, b []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("gzip header: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	return out
}

// TestGzipVariantDecompressedIdentity is the compression contract: a
// cache-hit response negotiated to gzip must inflate to exactly the bytes
// an identity response carries — same simulation, same encoding, different
// wire representation only.
func TestGzipVariantDecompressedIdentity(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	if w := doJSON(s, quickSpec); w.Code != http.StatusOK { // prime the cache
		t.Fatalf("prime = %d: %s", w.Code, w.Body)
	}
	plain := doJSON(s, quickSpec)
	if plain.Code != http.StatusOK || plain.Header().Get("X-Cache") != "hit" {
		t.Fatalf("plain hit = %d X-Cache=%q", plain.Code, plain.Header().Get("X-Cache"))
	}
	if enc := plain.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity response carries Content-Encoding %q", enc)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/sim", strings.NewReader(quickSpec))
	req.Header.Set("Accept-Encoding", "gzip, deflate")
	zw := httptest.NewRecorder()
	s.Handler().ServeHTTP(zw, req)
	if zw.Code != http.StatusOK || zw.Header().Get("X-Cache") != "hit" {
		t.Fatalf("gzip hit = %d X-Cache=%q: %s", zw.Code, zw.Header().Get("X-Cache"), zw.Body)
	}
	if enc := zw.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	if vary := zw.Header().Get("Vary"); vary != "Accept-Encoding" {
		t.Fatalf("Vary = %q, want Accept-Encoding", vary)
	}
	if zw.Body.Len() >= plain.Body.Len() {
		t.Fatalf("gzip body (%d bytes) not smaller than identity (%d bytes)", zw.Body.Len(), plain.Body.Len())
	}
	if got := gunzip(t, zw.Body.Bytes()); !bytes.Equal(got, plain.Body.Bytes()) {
		t.Fatal("gzip variant does not inflate to the identity bytes")
	}
}

// TestGzipVariantBuiltAtFillTime checks that /v1/fill stores a compressed
// variant alongside the filled bytes, so relocated results serve gzip hits
// exactly like locally computed ones.
func TestGzipVariantBuiltAtFillTime(t *testing.T) {
	src := newTestServer(t, Config{Workers: 1})
	dst := newTestServer(t, Config{Workers: 1})
	orig := doJSON(src, quickSpec)
	if orig.Code != http.StatusOK {
		t.Fatalf("sim = %d", orig.Code)
	}
	if w := doProbe(dst, http.MethodPost, "/v1/fill", orig.Body.String()); w.Code != http.StatusNoContent {
		t.Fatalf("fill = %d: %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sim", strings.NewReader(quickSpec))
	req.Header.Set("Accept-Encoding", "gzip")
	w := httptest.NewRecorder()
	dst.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("filled gzip hit = %d enc=%q", w.Code, w.Header().Get("Content-Encoding"))
	}
	if got := gunzip(t, w.Body.Bytes()); !bytes.Equal(got, orig.Body.Bytes()) {
		t.Fatal("filled gzip variant does not inflate to the source bytes")
	}
	if m := dst.Metrics(); m.Runs != 0 {
		t.Fatalf("fill-then-hit ran %d simulations", m.Runs)
	}
}

// TestSweepStreamsIdentityEncoding pins the batch endpoint to identity
// bodies regardless of Accept-Encoding: NDJSON lines interleave results as
// they finish, which cannot be represented as one gzip stream per line.
func TestSweepStreamsIdentityEncoding(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	plan := `{"points":[` + quickSpec + `]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(plan))
	req.Header.Set("Accept-Encoding", "gzip")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep = %d: %s", w.Code, w.Body)
	}
	if enc := w.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("sweep Content-Encoding = %q, want identity", enc)
	}
	single := doJSON(s, quickSpec)
	if !bytes.Equal(w.Body.Bytes(), single.Body.Bytes()) {
		t.Fatal("sweep line differs from the /v1/sim body for the same spec")
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		hdr  string
		want bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate", true},
		{"deflate, gzip", true},
		{"deflate, gzip;q=1.0", true},
		{"gzip;q=0", false},
		{"gzip;q=0.0", false},
		{"gzip;q=0.5", true},
		{"br", false},
		{"notgzip", false},
		{" gzip ", true},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/v1/sim", nil)
		if tc.hdr != "" {
			r.Header.Set("Accept-Encoding", tc.hdr)
		}
		if got := AcceptsGzip(r); got != tc.want {
			t.Errorf("AcceptsGzip(%q) = %v, want %v", tc.hdr, got, tc.want)
		}
	}
}
