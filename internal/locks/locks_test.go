package locks

import (
	"testing"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/dir"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// newM returns a small machine for fast tests.
func newM(procs int, mut ...func(*core.Config)) *machine.Machine {
	cfg := core.DefaultConfig()
	cfg.Nodes = procs
	switch {
	case procs <= 4:
		cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	case procs <= 16:
		cfg.Mesh.Width, cfg.Mesh.Height = 4, 4
	default:
		cfg.Mesh.Width, cfg.Mesh.Height = 8, 8
	}
	for _, f := range mut {
		f(&cfg)
	}
	return machine.New(cfg)
}

func allPolicies() []core.Policy {
	return []core.Policy{core.PolicyINV, core.PolicyUPD, core.PolicyUNC}
}

// ------------------------------------------------------------ counter ---

func TestCounterAllPrimsAllPolicies(t *testing.T) {
	const iters = 10
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		for _, pol := range allPolicies() {
			prim, pol := prim, pol
			t.Run(prim.String()+"/"+pol.String(), func(t *testing.T) {
				m := newM(4)
				c := NewCounter(m, pol, Options{Prim: prim})
				m.Run(func(p *machine.Proc) {
					for i := 0; i < iters; i++ {
						c.Inc(p)
					}
				})
				if got := m.Peek(c.Addr); got != 4*iters {
					t.Fatalf("counter = %d, want %d", got, 4*iters)
				}
				m.System().CheckCoherence()
			})
		}
	}
}

func TestCounterWithLoadExclusive(t *testing.T) {
	m := newM(4)
	c := NewCounter(m, core.PolicyINV, Options{Prim: PrimCAS, UseLoadExclusive: true})
	m.Run(func(p *machine.Proc) {
		for i := 0; i < 10; i++ {
			c.Inc(p)
		}
	})
	if got := m.Peek(c.Addr); got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
}

func TestCounterWithDropCopy(t *testing.T) {
	m := newM(4)
	c := NewCounter(m, core.PolicyINV, Options{Prim: PrimFAP, Drop: true})
	m.Run(func(p *machine.Proc) {
		for i := 0; i < 5; i++ {
			c.Inc(p)
		}
	})
	if got := m.Peek(c.Addr); got != 20 {
		t.Fatalf("counter = %d, want 20", got)
	}
	m.System().CheckCoherence()
}

func TestCounterIncReturnsOldValues(t *testing.T) {
	m := newM(4)
	c := NewCounter(m, core.PolicyUNC, Options{Prim: PrimFAP})
	seen := make(map[arch.Word]bool)
	m.Run(func(p *machine.Proc) {
		for i := 0; i < 5; i++ {
			old := c.Inc(p)
			if seen[old] {
				t.Errorf("duplicate fetched value %d", old)
			}
			seen[old] = true
		}
	})
}

// -------------------------------------------------------------- swap ----

func TestSwapAllPrims(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			m := newM(4)
			a := m.AllocSync(core.PolicyINV)
			opts := Options{Prim: prim}
			// Each processor swaps in its id+1; every fetched value must
			// be distinct (0 plus three of the four ids).
			var got [4]arch.Word
			m.Run(func(p *machine.Proc) {
				got[p.ID()] = opts.Swap(p, a, arch.Word(p.ID()+1))
			})
			seen := map[arch.Word]bool{}
			for _, v := range got {
				if seen[v] {
					t.Fatalf("duplicate swap result %d", v)
				}
				seen[v] = true
			}
			if !seen[0] {
				t.Fatal("initial value never fetched")
			}
		})
	}
}

func TestCASPanicsForFAP(t *testing.T) {
	m := newM(4)
	a := m.AllocSync(core.PolicyINV)
	opts := Options{Prim: PrimFAP}
	panicked := false
	// The panic fires on the processor goroutine; recover there.
	m.RunEach([]func(*machine.Proc){
		func(p *machine.Proc) {
			defer func() { panicked = recover() != nil }()
			opts.CAS(p, a, 0, 1)
		},
		nil, nil, nil,
	})
	if !panicked {
		t.Fatal("FAP CAS did not panic")
	}
}

func TestSimulatedCASFailsOnMismatch(t *testing.T) {
	m := newM(4)
	a := m.AllocSync(core.PolicyINV)
	opts := Options{Prim: PrimLLSC}
	m.RunEach([]func(*machine.Proc){
		func(p *machine.Proc) {
			p.Store(a, 5)
			if opts.CAS(p, a, 4, 9) {
				t.Error("simulated CAS succeeded with wrong expected value")
			}
			if !opts.CAS(p, a, 5, 9) {
				t.Error("simulated CAS failed with right expected value")
			}
		},
		nil, nil, nil,
	})
	if m.Peek(a) != 9 {
		t.Fatalf("value = %d", m.Peek(a))
	}
}

// --------------------------------------------------------------- TTS ----

func TestTTSMutualExclusion(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		for _, pol := range allPolicies() {
			prim, pol := prim, pol
			t.Run(prim.String()+"/"+pol.String(), func(t *testing.T) {
				testLockMutualExclusion(t, func(m *machine.Machine) lock {
					return NewTTSLock(m, pol, Options{Prim: prim})
				})
			})
		}
	}
}

func TestTTSWithDrop(t *testing.T) {
	testLockMutualExclusion(t, func(m *machine.Machine) lock {
		return NewTTSLock(m, core.PolicyINV, Options{Prim: PrimFAP, Drop: true})
	})
}

// lock abstracts the two lock types for shared tests.
type lock interface {
	Acquire(p *machine.Proc)
	Release(p *machine.Proc)
}

// testLockMutualExclusion drives a racy critical section: a non-atomic
// read-modify-write on a shared word. Any mutual-exclusion failure loses
// increments.
func testLockMutualExclusion(t *testing.T, mk func(*machine.Machine) lock) {
	t.Helper()
	const procs, iters = 8, 6
	m := newM(procs)
	l := mk(m)
	shared := m.Alloc(4)
	inCS := 0
	m.Run(func(p *machine.Proc) {
		for i := 0; i < iters; i++ {
			l.Acquire(p)
			inCS++
			if inCS != 1 {
				t.Errorf("%d processors in the critical section", inCS)
			}
			v := p.Load(shared)
			p.Compute(20) // widen the race window
			p.Store(shared, v+1)
			inCS--
			l.Release(p)
			p.Compute(sim.Time(p.Rand().Intn(30)))
		}
	})
	if got := m.Peek(shared); got != procs*iters {
		t.Fatalf("critical-section counter = %d, want %d (lost updates)", got, procs*iters)
	}
	m.System().CheckCoherence()
}

// --------------------------------------------------------------- MCS ----

func TestMCSMutualExclusion(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		for _, pol := range allPolicies() {
			prim, pol := prim, pol
			t.Run(prim.String()+"/"+pol.String(), func(t *testing.T) {
				testLockMutualExclusion(t, func(m *machine.Machine) lock {
					return NewMCSLock(m, pol, Options{Prim: prim})
				})
			})
		}
	}
}

func TestMCSUncontendedAcquireReleaseIsCheap(t *testing.T) {
	// An uncontended MCS acquire is one swap; release is one CAS. No
	// spinning should occur.
	m := newM(4)
	l := NewMCSLock(m, core.PolicyINV, Options{Prim: PrimCAS})
	var cycles sim.Time
	m.RunEach([]func(*machine.Proc){
		func(p *machine.Proc) {
			start := p.Now()
			l.Acquire(p)
			l.Release(p)
			cycles = p.Now() - start
		},
		nil, nil, nil,
	})
	if cycles == 0 || cycles > 2000 {
		t.Fatalf("uncontended acquire+release took %d cycles", cycles)
	}
}

func TestMCSBareSCReleaseWithSerialScheme(t *testing.T) {
	m := newM(8, func(c *core.Config) { c.ResvScheme = dir.ResvSerial })
	l := NewMCSLock(m, core.PolicyUNC, Options{Prim: PrimLLSC})
	l.BareSCRelease = true
	shared := m.Alloc(4)
	const iters = 6
	m.Run(func(p *machine.Proc) {
		for i := 0; i < iters; i++ {
			l.Acquire(p)
			v := p.Load(shared)
			p.Compute(15)
			p.Store(shared, v+1)
			l.Release(p)
		}
	})
	if got := m.Peek(shared); got != 8*iters {
		t.Fatalf("counter = %d, want %d", got, 8*iters)
	}
}

// ----------------------------------------------------------- barrier ----

func TestTreeBarrierNoOvertaking(t *testing.T) {
	const procs, rounds = 16, 5
	m := newM(procs)
	b := NewTreeBarrier(m)
	phase := make([]int, procs)
	m.Run(func(p *machine.Proc) {
		for r := 0; r < rounds; r++ {
			phase[p.ID()] = r
			p.Compute(sim.Time(p.Rand().Intn(50)))
			b.Wait(p)
			// After the barrier, nobody may still be in an earlier phase.
			for other, ph := range phase {
				if ph < r {
					t.Errorf("round %d: processor %d still in phase %d", r, other, ph)
				}
			}
		}
	})
}

func TestTreeBarrierFullMachine(t *testing.T) {
	const procs = 64
	m := newM(procs)
	b := NewTreeBarrier(m)
	a := m.AllocSync(core.PolicyUNC)
	m.Run(func(p *machine.Proc) {
		for r := 0; r < 3; r++ {
			if p.ID() == 0 {
				p.FetchAdd(a, 1)
			}
			b.Wait(p)
			if v := p.Load(a); v != arch.Word(r+1) {
				t.Errorf("round %d: processor %d sees %d", r, p.ID(), v)
			}
			b.Wait(p)
		}
	})
}

func TestPrimString(t *testing.T) {
	if PrimFAP.String() != "FAP" || PrimCAS.String() != "CAS" || PrimLLSC.String() != "LLSC" {
		t.Fatal("prim names wrong")
	}
}
