package fleet

import "sync"

// flightCall is one in-flight upstream resolution shared by every router
// request for the same key: the leader resolves against the backends and
// publishes the upstream result; followers wait on done and relay it.
// This is the fleet-wide single-flight — a burst of N identical misses
// through the router costs one probe/simulate sequence upstream, not N,
// on top of whatever coalescing the chosen backend would have done itself
// (the router version also saves the N-1 upstream connections).
type flightCall struct {
	done      chan struct{}
	res       *upstream
	err       error
	followers int // joins after the leader's; guarded by the group mutex
}

// flightGroup is the router's in-flight table. A single mutex is enough
// here: entries are touched once per upstream resolution (network-bound),
// not once per cache lookup the way the backend's sharded table is.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the call for key, creating it when absent; leader reports
// whether this caller must resolve it.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.followers++
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete publishes the leader's result and wakes every follower. The key
// is removed before done closes so a late arrival starts a fresh
// resolution — which will land on a backend cache hit anyway. The returned
// follower count is final (joins stop once the key is gone): zero means
// the leader is the result's only reader and may recycle its buffer after
// relaying.
func (g *flightGroup) complete(key string, c *flightCall, res *upstream, err error) int {
	c.res, c.err = res, err
	g.mu.Lock()
	delete(g.calls, key)
	n := c.followers
	g.mu.Unlock()
	close(c.done)
	return n
}
