package figures

import (
	"bytes"
	"testing"

	"dsm/internal/exper"
)

// The bare Sweep executor is tested in internal/exper (it lives there
// now); these tests pin the rendering layer's determinism contract on top
// of it: byte-identical figure output for any sweep width.

// TestParallelSyntheticCSVDeterminism checks the determinism contract:
// the same seed and scale produce byte-identical figure CSV whether runs
// execute serially or fanned across workers.
func TestParallelSyntheticCSVDeterminism(t *testing.T) {
	render := func(par int) string {
		o := RunOpts{Procs: 8, Rounds: 2, Par: par}
		var b bytes.Buffer
		WriteSyntheticCSV(&b, "fig3", exper.AppCounter, o)
		return b.String()
	}
	serial := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != serial {
			t.Fatalf("par=%d CSV differs from serial:\n%s\n--- vs ---\n%s", par, got, serial)
		}
	}
}

// TestParallelFig6CyclesDeterminism checks that per-run simulated cycle
// counts (the figure-6 observable) are unaffected by host parallelism.
func TestParallelFig6CyclesDeterminism(t *testing.T) {
	render := func(par int) string {
		o := RunOpts{Procs: 4, Rounds: 1, TCSize: 6, Wires: 6, Columns: 6, Par: par}
		var b bytes.Buffer
		WriteFig6CSV(&b, o)
		return b.String()
	}
	serial := render(1)
	if got := render(8); got != serial {
		t.Fatalf("parallel Fig6 CSV differs from serial:\n%s\n--- vs ---\n%s", got, serial)
	}
}

// TestParallelTable1Determinism checks Table 1 rows come back in case order
// with the paper's counts regardless of sweep width.
func TestParallelTable1Determinism(t *testing.T) {
	serial := Table1Par(1)
	for _, par := range []int{0, 4} {
		rows := Table1Par(par)
		if len(rows) != len(serial) {
			t.Fatalf("par=%d: %d rows, want %d", par, len(rows), len(serial))
		}
		for i := range rows {
			if rows[i] != serial[i] {
				t.Fatalf("par=%d row %d = %+v, want %+v", par, i, rows[i], serial[i])
			}
		}
	}
}

// TestParallelFig2Determinism checks the contention-histogram rendering
// (whose plan collects whole reports across the sweep) is order-stable.
func TestParallelFig2Determinism(t *testing.T) {
	render := func(par int) string {
		o := RunOpts{Procs: 8, Rounds: 2, TCSize: 8, Par: par}
		var b bytes.Buffer
		Fig2(&b, o)
		return b.String()
	}
	serial := render(1)
	if got := render(8); got != serial {
		t.Fatalf("parallel Fig2 differs from serial:\n%s\n--- vs ---\n%s", got, serial)
	}
}
