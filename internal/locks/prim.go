// Package locks implements the synchronization algorithms the paper layers
// over the atomic primitives: lock-free counters, the test-and-test-and-set
// lock with bounded exponential backoff, the MCS queue-based spin lock
// (including the release variant that avoids compare_and_swap), and the
// scalable tree barrier of Mellor-Crummey & Scott.
//
// Every algorithm is parameterized by which primitive family the simulated
// hardware provides (fetch_and_Φ, compare_and_swap, or load_linked /
// store_conditional), mirroring the paper's three bars per experiment, and
// by the use of the auxiliary instructions load_exclusive and drop_copy.
package locks

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/machine"
)

// Prim selects the primitive family the simulated hardware provides.
type Prim uint8

const (
	// PrimFAP: the fetch_and_Φ family (fetch_and_add, fetch_and_store,
	// fetch_and_or, test_and_set). Level 2 in Herlihy's hierarchy.
	PrimFAP Prim = iota
	// PrimCAS: compare_and_swap. Universal.
	PrimCAS
	// PrimLLSC: load_linked/store_conditional. Universal.
	PrimLLSC
)

// String returns the label used in the paper's figures.
func (p Prim) String() string {
	switch p {
	case PrimFAP:
		return "FAP"
	case PrimCAS:
		return "CAS"
	case PrimLLSC:
		return "LLSC"
	}
	return fmt.Sprintf("Prim(%d)", uint8(p))
}

// Options tunes how algorithms use the hardware.
type Options struct {
	Prim Prim
	// UseLoadExclusive reads data that will immediately be hit by a
	// compare_and_swap with load_exclusive, the paper's recommended
	// auxiliary instruction (meaningful with PrimCAS under INV).
	UseLoadExclusive bool
	// Drop issues drop_copy after updates to reduce the serialized
	// messages of the next processor's access.
	Drop bool
}

// read performs the read half of a read-modify-write: an ordinary load, or
// load_exclusive when configured (so the write half hits locally).
func (o Options) read(p *machine.Proc, a arch.Addr) arch.Word {
	if o.UseLoadExclusive {
		return p.LoadExclusive(a)
	}
	return p.Load(a)
}

// Swap atomically exchanges the word at a with v using the configured
// primitive family, returning the previous value.
func (o Options) Swap(p *machine.Proc, a arch.Addr, v arch.Word) arch.Word {
	switch o.Prim {
	case PrimFAP:
		return p.FetchStore(a, v)
	case PrimCAS:
		for {
			old := o.read(p, a)
			if p.CompareAndSwap(a, old, v) {
				return old
			}
		}
	case PrimLLSC:
		for {
			old := p.LoadLinked(a)
			if p.StoreConditional(a, v) {
				return old
			}
		}
	}
	panic("locks: unknown primitive")
}

// CAS performs a compare_and_swap using the configured primitive family.
// It panics for PrimFAP: fetch_and_Φ cannot simulate compare_and_swap
// (Herlihy's hierarchy), which is exactly why the paper recommends a
// universal primitive.
func (o Options) CAS(p *machine.Proc, a arch.Addr, expect, new arch.Word) bool {
	switch o.Prim {
	case PrimCAS:
		return p.CompareAndSwap(a, expect, new)
	case PrimLLSC:
		// The well-known simulation: a successful simulated CAS typically
		// costs two misses (LL gets a shared copy, SC upgrades).
		for {
			v := p.LoadLinked(a)
			if v != expect {
				return false
			}
			if p.StoreConditional(a, new) {
				return true
			}
		}
	case PrimFAP:
		panic("locks: fetch_and_Φ cannot simulate compare_and_swap")
	}
	panic("locks: unknown primitive")
}

// FetchAdd atomically adds delta using the configured primitive family,
// returning the previous value.
func (o Options) FetchAdd(p *machine.Proc, a arch.Addr, delta arch.Word) arch.Word {
	switch o.Prim {
	case PrimFAP:
		return p.FetchAdd(a, delta)
	case PrimCAS:
		for {
			old := o.read(p, a)
			if p.CompareAndSwap(a, old, old+delta) {
				return old
			}
		}
	case PrimLLSC:
		for {
			old := p.LoadLinked(a)
			if p.StoreConditional(a, old+delta) {
				return old
			}
		}
	}
	panic("locks: unknown primitive")
}

// FetchOr atomically ors in v using the configured primitive family,
// returning the previous value.
func (o Options) FetchOr(p *machine.Proc, a arch.Addr, v arch.Word) arch.Word {
	switch o.Prim {
	case PrimFAP:
		return p.FetchOr(a, v)
	case PrimCAS:
		for {
			old := o.read(p, a)
			if p.CompareAndSwap(a, old, old|v) {
				return old
			}
		}
	case PrimLLSC:
		for {
			old := p.LoadLinked(a)
			if p.StoreConditional(a, old|v) {
				return old
			}
		}
	}
	panic("locks: unknown primitive")
}

// TestAndSet atomically sets the word to 1 using the configured primitive
// family, returning the previous value.
func (o Options) TestAndSet(p *machine.Proc, a arch.Addr) arch.Word {
	switch o.Prim {
	case PrimFAP:
		return p.TestAndSet(a)
	case PrimCAS:
		if p.CompareAndSwap(a, 0, 1) {
			return 0
		}
		return 1
	case PrimLLSC:
		for {
			old := p.LoadLinked(a)
			if old != 0 {
				return old
			}
			if p.StoreConditional(a, 1) {
				return 0
			}
		}
	}
	panic("locks: unknown primitive")
}
