// Package report collects a machine's measurements into one structured
// value and renders it as text or CSV: protocol counters, network traffic,
// memory and cache activity, the contention histogram, write-run lengths,
// and per-operation serialized-message chains. cmd/dsmsim prints it after
// every run.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dsm/internal/cache"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/mem"
	"dsm/internal/mesh"
	"dsm/internal/stats"
)

// ChainSummary summarizes the serialized-message chains of one operation
// class (e.g. "compare_and_swap/INV").
type ChainSummary struct {
	Class string  `json:"class"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int     `json:"max"`
}

// Report is a snapshot of every measurement the machine exposes.
type Report struct {
	Procs int `json:"procs"`

	Protocol core.Counters `json:"protocol"`
	Network  mesh.Stats    `json:"network"`
	Memory   mem.Stats     `json:"memory"` // summed over modules
	Cache    cache.Stats   `json:"cache"`  // summed over caches

	Contention    *stats.Histogram `json:"contention"`
	WriteRunMean  float64          `json:"write_run_mean"`
	WriteRunTotal uint64           `json:"write_run_total"`

	// Processor activity, summed over processors.
	ProcOps       uint64 `json:"proc_ops"`
	MemoryCycles  uint64 `json:"memory_cycles"`
	ComputeCycles uint64 `json:"compute_cycles"`
	BarrierCycles uint64 `json:"barrier_cycles"`

	Chains []ChainSummary `json:"chains,omitempty"` // sorted by class
}

// Collect gathers a report. It flushes the write-run tracker, terminating
// in-progress runs, so collect once at the end of a run.
func Collect(m *machine.Machine) *Report {
	sys := m.System()
	// Snapshot the contention histogram rather than aliasing the machine's
	// live one: the machine may be released to a pool and reset (clobbering
	// its trackers) while the report is still being read.
	cont := stats.NewHistogram()
	cont.Merge(sys.Contention().Histogram())
	r := &Report{
		Procs:      m.Procs(),
		Protocol:   sys.Counters(),
		Network:    m.Mesh().Stats(),
		Contention: cont,
	}
	for i := 0; i < m.Procs(); i++ {
		ms := sys.Home(mesh.NodeID(i)).Memory().Stats()
		r.Memory.Accesses += ms.Accesses
		r.Memory.QueueWait += ms.QueueWait
		cs := sys.Cache(mesh.NodeID(i)).CacheArray().Stats()
		r.Cache.Evictions += cs.Evictions
		r.Cache.DirtyEvictions += cs.DirtyEvictions
		ps := m.ProcStats(i)
		r.ProcOps += ps.Ops
		r.MemoryCycles += uint64(ps.MemoryCycles)
		r.ComputeCycles += uint64(ps.ComputeCycles)
		r.BarrierCycles += uint64(ps.BarrierCycles)
	}
	wr := sys.WriteRuns()
	wr.Flush()
	r.WriteRunMean = wr.Mean()
	r.WriteRunTotal = wr.Histogram().Total()

	rec := sys.Chains()
	classes := rec.Classes()
	sort.Strings(classes)
	for _, cl := range classes {
		h := rec.Class(cl)
		r.Chains = append(r.Chains, ChainSummary{
			Class: cl, Count: h.Total(), Mean: h.Mean(), Max: h.Max(),
		})
	}
	return r
}

// WriteText renders the report for humans.
func (r *Report) WriteText(w io.Writer) {
	p := r.Protocol
	fmt.Fprintf(w, "processors: %d\n", r.Procs)
	fmt.Fprintf(w, "protocol:   requests=%d local-hits=%d (%.1f%%) invals=%d updates=%d writebacks=%d\n",
		p.Requests, p.LocalHits, pct(p.LocalHits, p.Requests), p.Invals, p.Updates, p.Writebacks)
	fmt.Fprintf(w, "            naks=%d retries=%d sc-fail-local=%d\n",
		p.Naks, p.Retries, p.SCFailLocal)
	n := r.Network
	fmt.Fprintf(w, "network:    messages=%d flits=%d local=%d inject-wait=%d eject-wait=%d\n",
		n.Messages, n.Flits, n.LocalMsgs, n.InjectWait, n.EjectWait)
	fmt.Fprintf(w, "memory:     accesses=%d queue-wait=%d\n", r.Memory.Accesses, r.Memory.QueueWait)
	fmt.Fprintf(w, "caches:     evictions=%d dirty=%d\n", r.Cache.Evictions, r.Cache.DirtyEvictions)
	fmt.Fprintf(w, "processors: ops=%d memory-cycles=%d compute-cycles=%d barrier-cycles=%d\n",
		r.ProcOps, r.MemoryCycles, r.ComputeCycles, r.BarrierCycles)
	if r.Contention.Total() > 0 {
		fmt.Fprintf(w, "contention: %s (mean %.2f)\n", r.Contention, r.Contention.Mean())
	}
	if r.WriteRunTotal > 0 {
		fmt.Fprintf(w, "write-runs: %d runs, mean length %.2f\n", r.WriteRunTotal, r.WriteRunMean)
	}
	if len(r.Chains) > 0 {
		fmt.Fprintln(w, "serialized message chains per operation class:")
		for _, c := range r.Chains {
			fmt.Fprintf(w, "  %-28s count=%-8d mean=%.2f max=%d\n", c.Class, c.Count, c.Mean, c.Max)
		}
	}
}

// WriteJSON renders the report as one JSON object followed by a newline.
// Field order is the struct declaration order and the contention histogram
// encodes as value-sorted bins, so the encoding of a given report is
// byte-stable: encoding the same report twice yields identical bytes. The
// serving layer relies on this to make cache hits byte-identical to the
// miss that populated them.
func (r *Report) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r)
}

// ReadJSON parses a report previously written by WriteJSON.
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteCSV renders the chain summaries as CSV (class,count,mean,max).
func (r *Report) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "class,count,mean,max")
	for _, c := range r.Chains {
		fmt.Fprintf(w, "%s,%d,%.3f,%d\n", c.Class, c.Count, c.Mean, c.Max)
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
