package locks

import (
	"testing"

	"dsm/internal/check"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// TestCounterLinearizable records full timed histories of concurrent
// increments and reads through every primitive family and coherence
// policy, and verifies linearizability with the exact counter checker.
func TestCounterLinearizable(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		for _, pol := range allPolicies() {
			prim, pol := prim, pol
			t.Run(prim.String()+"/"+pol.String(), func(t *testing.T) {
				const procs, iters = 8, 8
				m := newM(procs)
				c := NewCounter(m, pol, Options{Prim: prim})
				var h check.History
				m.Run(func(p *machine.Proc) {
					for i := 0; i < iters; i++ {
						invoke := p.Now()
						old := c.Inc(p)
						h.Record(check.Op{
							Proc: p.ID(), Invoke: invoke, Respond: p.Now(),
							Kind: check.Inc, Value: old,
						})
						if i%3 == 0 {
							invoke = p.Now()
							v := c.Read(p)
							// Counter.Read is a plain load. Under the
							// single-phase UPD protocol the home applies an
							// atomic op and pushes updates that reach
							// sharers at different times, so two
							// non-overlapping reads on different
							// processors can observe values out of order —
							// real directory update protocols share this
							// window. Such reads are not linearizable
							// operations, so they are kept out of the
							// history there; increments (serialized at the
							// home) are checked under every policy.
							if pol != core.PolicyUPD {
								h.Record(check.Op{
									Proc: p.ID(), Invoke: invoke, Respond: p.Now(),
									Kind: check.Read, Value: v,
								})
							}
						}
						p.Compute(sim.Time(p.Rand().Intn(60)))
					}
				})
				if h.Len() == 0 {
					t.Fatal("empty history")
				}
				if err := h.CheckCounter(); err != nil {
					t.Fatalf("%s/%s not linearizable: %v", prim, pol, err)
				}
			})
		}
	}
}

// TestCounterLinearizableWithAuxiliaries repeats the check with
// load_exclusive and drop_copy in play, which exercise the protocol's
// racier corners (write-backs crossing recalls).
func TestCounterLinearizableWithAuxiliaries(t *testing.T) {
	cases := []Options{
		{Prim: PrimCAS, UseLoadExclusive: true},
		{Prim: PrimFAP, Drop: true},
		{Prim: PrimCAS, UseLoadExclusive: true, Drop: true},
		{Prim: PrimLLSC, Drop: true},
	}
	for _, opts := range cases {
		opts := opts
		name := opts.Prim.String()
		if opts.UseLoadExclusive {
			name += "+ldex"
		}
		if opts.Drop {
			name += "+drop"
		}
		t.Run(name, func(t *testing.T) {
			const procs, iters = 8, 8
			m := newM(procs)
			c := NewCounter(m, core.PolicyINV, opts)
			var h check.History
			m.Run(func(p *machine.Proc) {
				for i := 0; i < iters; i++ {
					invoke := p.Now()
					old := c.Inc(p)
					h.Record(check.Op{
						Proc: p.ID(), Invoke: invoke, Respond: p.Now(),
						Kind: check.Inc, Value: old,
					})
				}
			})
			if err := h.CheckCounter(); err != nil {
				t.Fatalf("not linearizable: %v", err)
			}
			m.System().CheckCoherence()
		})
	}
}
