// Package mem models the queued memory modules of the simulated machine.
//
// Each node owns one module holding that node's share of physical memory.
// Requests are serviced in arrival order: a module can overlap the tail of
// one access with the next (occupancy < latency models a pipelined DRAM
// bank), so under load the effective service rate is one access per
// occupancy period, while an isolated access completes after the full
// latency. This is the "queued memory" of the paper's methodology and is
// the source of memory contention in all experiments.
package mem

import (
	"dsm/internal/arch"
	"dsm/internal/sim"
)

// Config holds memory module timing parameters, in cycles.
type Config struct {
	Latency   sim.Time // arrival (at the module) to data available
	Occupancy sim.Time // minimum spacing between successive service starts
}

// DefaultConfig models a moderately fast early-90s DRAM bank.
func DefaultConfig() Config {
	return Config{Latency: 18, Occupancy: 6}
}

// Stats aggregates module activity.
type Stats struct {
	Accesses  uint64 `json:"accesses"`   // serviced requests
	QueueWait uint64 `json:"queue_wait"` // total cycles requests waited to start service
}

// Module is one node's memory bank plus its physical storage. Storage is
// block-granular and sparse; absent blocks read as zero, matching the
// zero-initialized shared address space the applications expect.
type Module struct {
	eng   *sim.Engine
	cfg   Config
	busy  sim.Time // next service may start at this time
	data  map[arch.Addr]*arch.BlockData
	stats Stats
}

// New returns an empty module with the given timing.
func New(eng *sim.Engine, cfg Config) *Module {
	m := &Module{}
	m.Init(eng, cfg)
	return m
}

// Init (re)initializes a module in place, for callers that embed Module by
// value.
func (m *Module) Init(eng *sim.Engine, cfg Config) {
	*m = Module{eng: eng, cfg: cfg, data: make(map[arch.Addr]*arch.BlockData)}
}

// Stats returns a snapshot of the activity counters.
func (m *Module) Stats() Stats { return m.stats }

// ResetStats clears the activity counters.
func (m *Module) ResetStats() { m.stats = Stats{} }

// Reset returns the module to its post-Init state: bank idle, counters
// cleared, storage reading as zero everywhere. Block payloads are zeroed in
// place rather than dropped: a reused machine touches the same blocks every
// run, and a zeroed block is indistinguishable from an absent one, so
// refilling after a reset allocates nothing in the steady state.
func (m *Module) Reset() {
	m.busy = 0
	m.stats = Stats{}
	for _, b := range m.data {
		*b = arch.BlockData{}
	}
}

// Access enqueues one memory access and schedules done when its data is
// available. Queueing and bank occupancy are modeled; the callback performs
// the actual storage read/update at completion time.
func (m *Module) Access(done func()) {
	m.eng.At(m.serviceTime(), done)
}

// AccessArg is Access delivering via a (handler, payload) pair: done(arg)
// runs when the data is available. With a preallocated handler and a
// pointer payload, enqueueing an access allocates nothing.
func (m *Module) AccessArg(done func(any), arg any) {
	m.eng.AtArg(m.serviceTime(), done, arg)
}

// serviceTime books one access through the bank queue and returns the
// absolute time its data is available.
func (m *Module) serviceTime() sim.Time {
	start := m.eng.Now()
	if m.busy > start {
		m.stats.QueueWait += uint64(m.busy - start)
		start = m.busy
	}
	m.busy = start + m.cfg.Occupancy
	m.stats.Accesses++
	return start + m.cfg.Latency
}

// block returns the storage for the block containing a, allocating it on
// first touch.
func (m *Module) block(a arch.Addr) *arch.BlockData {
	base := arch.BlockBase(a)
	b := m.data[base]
	if b == nil {
		b = new(arch.BlockData)
		m.data[base] = b
	}
	return b
}

// ReadBlock returns a copy of the block containing a.
func (m *Module) ReadBlock(a arch.Addr) arch.BlockData {
	return *m.block(a)
}

// WriteBlock replaces the block containing a.
func (m *Module) WriteBlock(a arch.Addr, d arch.BlockData) {
	*m.block(a) = d
}

// ReadWord returns the word at a (word-aligned).
func (m *Module) ReadWord(a arch.Addr) arch.Word {
	arch.CheckWordAligned(a)
	return m.block(a)[arch.WordIndex(a)]
}

// WriteWord stores v at a (word-aligned).
func (m *Module) WriteWord(a arch.Addr, v arch.Word) {
	arch.CheckWordAligned(a)
	m.block(a)[arch.WordIndex(a)] = v
}
