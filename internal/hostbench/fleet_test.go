package hostbench

import (
	"net/http/httptest"
	"testing"
)

func TestMeasureFleetCell(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet cell simulates real points")
	}
	pt, next := measureFleetCell(2, 60, "dup09", 1<<40)
	if pt.Backends != 2 || pt.Workload != "dup09" {
		t.Fatalf("cell mislabeled: %+v", pt)
	}
	if pt.PtsPerSec <= 0 || pt.P99US == 0 {
		t.Fatalf("degenerate measurement: %+v", pt)
	}
	if pt.HitRatio <= 0 {
		t.Fatalf("dup09 cell saw no cache hits: %+v", pt)
	}
	if next <= 1<<40 {
		t.Fatalf("unique-seed space did not advance: %d", next)
	}
}

func TestFleetTransportRejectsUnknownHost(t *testing.T) {
	tr := handlerTransport{}
	req := httptest.NewRequest("GET", "http://nowhere.fleet/healthz", nil)
	if _, err := tr.RoundTrip(req); err == nil {
		t.Fatal("unknown host accepted")
	}
}
