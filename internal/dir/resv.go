package dir

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/mesh"
)

// ResvScheme selects how memory-side load_linked reservations are
// represented, per section 3.1 of the paper.
type ResvScheme uint8

const (
	// ResvBitVector keeps one reservation bit per processor per block
	// (a full bit vector in the directory entry). Simple but its total
	// size grows quadratically with the machine.
	ResvBitVector ResvScheme = iota
	// ResvLimited keeps at most Limit reservations per block. A
	// load_linked beyond the limit is ignored and returns a failure hint,
	// so its store_conditional can fail locally without network traffic.
	// This compromises lock-freedom under heavy contention.
	ResvLimited
	// ResvSerial keeps a per-block serial number of writes instead of
	// explicit reservations. load_linked returns (value, serial);
	// store_conditional carries the expected serial and fails on
	// mismatch. This also permits a "bare" store_conditional and avoids
	// the pointer (ABA) problem; it is the option the paper prefers.
	ResvSerial
)

// String returns the scheme name used in reports.
func (s ResvScheme) String() string {
	switch s {
	case ResvBitVector:
		return "bitvector"
	case ResvLimited:
		return "limited"
	case ResvSerial:
		return "serial"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// ResvState is the memory-side reservation state for one block.
type ResvState struct {
	Scheme ResvScheme
	Limit  int // ResvLimited only; must be >= 1

	holders Bitset
	serial  arch.Word

	// dormant marks state retained across a Directory.Reset that no
	// load_linked / store_conditional has touched again yet. A fresh
	// machine creates reservation state lazily at the first such touch, so
	// writes before that point never advance the serial; a dormant state
	// ignores OnWrite the same way, keeping a reused machine's serials
	// equal to a fresh machine's.
	dormant bool
}

// NewResvState returns reservation state for the given scheme. Limit is
// used only by ResvLimited and must be at least 1 there.
func NewResvState(scheme ResvScheme, limit int) *ResvState {
	if scheme == ResvLimited && limit < 1 {
		panic("dir: ResvLimited requires limit >= 1")
	}
	return &ResvState{Scheme: scheme, Limit: limit}
}

// Reset clears all reservations and the write serial, returning the state
// to its post-New value. The scheme and limit are retained; callers whose
// configuration changed between runs must replace the state instead (see
// HomeCtl.reservations).
func (r *ResvState) Reset() {
	r.holders = 0
	r.serial = 0
	r.dormant = true
}

// Wake marks retained state as live again, the moment that corresponds to
// lazy creation on a fresh machine. The protocol calls it when an LL/SC
// touches the block.
func (r *ResvState) Wake() { r.dormant = false }

// Reserve records a reservation for node n at a load_linked. It returns
// false when the scheme refuses the reservation (ResvLimited beyond the
// limit), which the protocol surfaces to the processor as a failure hint.
// Under ResvSerial there is nothing to record and Reserve always succeeds.
func (r *ResvState) Reserve(n mesh.NodeID) bool {
	switch r.Scheme {
	case ResvBitVector:
		r.holders.Add(n)
		return true
	case ResvLimited:
		if r.holders.Has(n) {
			return true
		}
		if r.holders.Count() >= r.Limit {
			return false
		}
		r.holders.Add(n)
		return true
	case ResvSerial:
		return true
	}
	panic("dir: unknown reservation scheme")
}

// Holds reports whether node n currently holds a reservation. Meaningful
// only for the explicit-reservation schemes.
func (r *ResvState) Holds(n mesh.NodeID) bool { return r.holders.Has(n) }

// Holders returns the current reservation holders (explicit schemes).
func (r *ResvState) Holders() Bitset { return r.holders }

// Serial returns the block's current write serial number (ResvSerial).
func (r *ResvState) Serial() arch.Word { return r.serial }

// OnWrite records that the block was written (an ordinary store, atomic
// update, or successful store_conditional): all explicit reservations are
// invalidated and the serial number advances. Wrap-around of the 32-bit
// serial is harmless in practice (the paper argues 32 bits suffice); the
// simulator allows it.
func (r *ResvState) OnWrite() {
	if r.dormant {
		return
	}
	r.holders = 0
	r.serial++
}

// Validate reports whether a store_conditional by node n carrying expected
// serial s should succeed, without modifying state. The serial argument is
// ignored by the explicit schemes, and n is ignored by ResvSerial.
func (r *ResvState) Validate(n mesh.NodeID, s arch.Word) bool {
	switch r.Scheme {
	case ResvBitVector, ResvLimited:
		return r.holders.Has(n)
	case ResvSerial:
		return r.serial == s
	}
	panic("dir: unknown reservation scheme")
}
