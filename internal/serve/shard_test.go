package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsm/internal/exper"
)

// hexKey builds a distinct canonical-looking cache key (hex SHA-256, the
// same alphabet Spec.Key emits) from an integer.
func hexKey(i int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("shard-test-key-%d", i)))
	return hex.EncodeToString(h[:])
}

func TestShardCountBounds(t *testing.T) {
	for _, tc := range []struct{ max, want int }{
		{2, 1},    // too small to shard: exact LRU
		{63, 1},   // still under one shard's worth
		{128, 2},  // room for two shards of 64 (if GOMAXPROCS >= 2)
		{1024, 0}, // bounded by GOMAXPROCS, checked below
	} {
		got := shardCount(tc.max)
		if got&(got-1) != 0 {
			t.Fatalf("shardCount(%d) = %d, not a power of two", tc.max, got)
		}
		if tc.want != 0 && got > tc.want {
			t.Fatalf("shardCount(%d) = %d, want <= %d", tc.max, got, tc.want)
		}
		if got > 1 && tc.max/got < minShardEntries {
			t.Fatalf("shardCount(%d) = %d leaves %d entries per shard, want >= %d",
				tc.max, got, tc.max/got, minShardEntries)
		}
	}
}

func TestShardIndexDeterministicAndBounded(t *testing.T) {
	for _, mask := range []uint32{0, 1, 7, 255} {
		for i := 0; i < 64; i++ {
			k := hexKey(i)
			a, b := shardIndex(k, mask), shardIndex(k, mask)
			if a != b {
				t.Fatalf("shardIndex(%q, %d) unstable: %d vs %d", k, mask, a, b)
			}
			if a > mask {
				t.Fatalf("shardIndex(%q, %d) = %d, out of range", k, mask, a)
			}
		}
	}
}

// TestShardedCacheConcurrentStress hammers a pinned 8-shard cache with
// concurrent puts (disjoint key ranges) and gets, then checks the
// invariants sharding must preserve: per-shard map and recency list agree,
// no shard exceeds its budget, and every insertion is accounted for as
// either a resident entry or an eviction.
func TestShardedCacheConcurrentStress(t *testing.T) {
	const (
		budget  = 512
		nShards = 8
		workers = 8
		perW    = 400 // 3200 distinct keys >> budget, so every shard evicts
	)
	c := newResultCacheShards(budget, nShards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := hexKey(w*perW + i)
				c.put(k, []byte(k))
				// Mix in reads of this worker's earlier keys: hits must
				// return exactly the bytes stored under that key.
				if e, ok := c.get(hexKey(w*perW + i/2)); ok && string(e.data) != hexKey(w*perW+i/2) {
					t.Errorf("get returned bytes for the wrong key")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	entries, evictions, shards := c.stats()
	if shards != nShards {
		t.Fatalf("stats shards = %d, want %d", shards, nShards)
	}
	if entries > budget {
		t.Fatalf("entries = %d, above budget %d", entries, budget)
	}
	const inserted = workers * perW
	if uint64(entries)+evictions != inserted {
		t.Fatalf("entries %d + evictions %d != %d insertions", entries, evictions, inserted)
	}
	occupied := 0
	for i := range c.shards {
		s := &c.shards[i]
		if len(s.items) != s.ll.Len() {
			t.Fatalf("shard %d: map has %d entries, list has %d", i, len(s.items), s.ll.Len())
		}
		if s.ll.Len() > s.max {
			t.Fatalf("shard %d: %d entries over budget %d", i, s.ll.Len(), s.max)
		}
		if s.ll.Len() > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("only %d of %d shards occupied; keys are not spreading", occupied, nShards)
	}
}

// TestShardedFlightConcurrentLeaders drives many goroutines through a
// pinned 8-shard flight group on a shared key set: sharding must still
// elect exactly one leader per key, hand every follower the leader's
// bytes, and leave no call resident after completion.
func TestShardedFlightConcurrentLeaders(t *testing.T) {
	const (
		nKeys   = 32
		joiners = 8
	)
	g := newFlightGroupShards(8)
	leaders := make([]atomic.Uint32, nKeys)
	joined := make([]sync.WaitGroup, nKeys)
	var wg sync.WaitGroup
	for k := 0; k < nKeys; k++ {
		key := hexKey(k)
		want := []byte(key)
		joined[k].Add(joiners)
		for j := 0; j < joiners; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, leader := g.join(key)
				joined[k].Done()
				if leader {
					// Hold the call open until the whole burst has joined;
					// completion removes the key, so finishing early would
					// let late joiners legitimately elect a fresh leader.
					joined[k].Wait()
					leaders[k].Add(1)
					g.complete(key, c, want, nil)
					return
				}
				<-c.done
				if !bytes.Equal(c.data, want) {
					t.Errorf("key %d: follower read %q, want leader's bytes", k, c.data)
				}
			}()
		}
	}
	wg.Wait()
	for k := range leaders {
		if n := leaders[k].Load(); n != 1 {
			t.Fatalf("key %d elected %d leaders, want exactly 1", k, n)
		}
	}
	for i := range g.shards {
		if n := len(g.shards[i].calls); n != 0 {
			t.Fatalf("shard %d still holds %d calls after completion", i, n)
		}
	}
}

// TestDistinctSpecsCoalescePerKey checks coalescing stays per-key across
// shards: bursts of requests for several distinct specs must merge within
// each spec (one run per key) and never across specs.
func TestDistinctSpecsCoalescePerKey(t *testing.T) {
	const (
		nSpecs = 8
		dup    = 4
	)
	s := newTestServer(t, Config{Workers: 1, Queue: nSpecs + 2})
	gate := make(chan struct{})
	if !s.pool.submit(func(*exper.MachineSlot) { <-gate }) {
		t.Fatal("could not park worker")
	}
	specs := make([]string, nSpecs)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"app":"counter","procs":4,"rounds":2,"seed":%d}`, i+1)
	}
	var wg sync.WaitGroup
	codes := make([][]int, nSpecs)
	bodies := make([][][]byte, nSpecs)
	for i := range specs {
		codes[i] = make([]int, dup)
		bodies[i] = make([][]byte, dup)
		for j := 0; j < dup; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				w := doJSON(s, specs[i])
				codes[i][j], bodies[i][j] = w.Code, w.Body.Bytes()
			}(i, j)
		}
	}
	// One leader per spec, the rest of each burst coalesced onto it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := s.Metrics()
		if m.CacheMisses == nSpecs && m.Coalesced == nSpecs*(dup-1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bursts did not coalesce per key: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i := range specs {
		for j := 0; j < dup; j++ {
			if codes[i][j] != http.StatusOK {
				t.Fatalf("spec %d request %d = %d", i, j, codes[i][j])
			}
			if !bytes.Equal(bodies[i][j], bodies[i][0]) {
				t.Fatalf("spec %d request %d body differs within its burst", i, j)
			}
		}
		for k := 0; k < i; k++ {
			if bytes.Equal(bodies[i][0], bodies[k][0]) {
				t.Fatalf("specs %d and %d produced identical bodies; bursts merged across keys", i, k)
			}
		}
	}
	if m := s.Metrics(); m.Runs != nSpecs {
		t.Fatalf("Runs = %d, want exactly %d (one per distinct spec)", m.Runs, nSpecs)
	}
}
