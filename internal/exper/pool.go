package exper

import (
	"sync"

	"dsm/internal/core"
	"dsm/internal/machine"
)

// Machine reuse comes in two forms, matched to how the caller runs:
//
//   - MachineSlot: per-worker ownership. A sweep worker (or serve pool
//     worker) holds one slot for its lifetime and reuses its resident
//     machine across jobs with no locking and no pooled/unpooled state
//     transitions. This is the hot path — Plan.Run and the serving layer
//     go through slots, so at GOMAXPROCS > 1 no two workers ever touch a
//     shared structure between runs.
//
//   - machinePool (sync.Pool): a shared fallback for one-off runs with no
//     worker identity (Table1, RunReal, cmd/dsmsim, ad-hoc benchmarks).
//     The pool's cross-goroutine handoff and MarkPooled/ClearPooled
//     double-release guard cost a few atomic operations per acquire, which
//     is noise for a one-shot run but measurable per sweep point — which
//     is why the sweep and serve paths retired it in favor of slots.
//
// Machine construction dominates short runs (the cache slabs alone are
// ~100KB per node pair), and machine.Reset restores a used machine to a
// state that replays a fresh one cycle for cycle, so either reuse form
// changes host time only. Machines of mismatched geometry (Reset returns
// false) are simply dropped back to the GC.

// SlotMachines bounds how many machines of distinct geometry one slot
// keeps resident. Mixed-geometry work (a sweep spanning several processor
// counts, a serve worker fed arbitrary specs) cycles through its
// geometries without rebuilding, while the worst case stays a few MB of
// resident simulator state per worker.
const SlotMachines = 4

// MachineSlot holds one worker goroutine's dedicated machines: a small
// most-recently-used cache keyed by machine geometry. The zero value is
// ready to use; Machine builds on first use of a geometry and
// reset-and-reuses thereafter, evicting the least recently used machine
// past the SlotMachines bound. A slot must only be used by one goroutine
// at a time — that exclusivity is the point: no pool lock, no
// double-release guard, no handoff between cores.
type MachineSlot struct {
	ms []*machine.Machine // most recently used first; len <= SlotMachines

	builds uint64 // machines constructed (cache misses)
	resets uint64 // machines reset-and-reused (cache hits)
}

// Machine returns a machine configured as cfg, reusing a resident machine
// whose structure matches and building one otherwise. The returned machine
// stays owned by the slot: do not release it to the shared pool, just call
// Machine again for the next run. Matching is by attempted Reset — Reset
// refuses structural mismatches and leaves the machine untouched, so
// probing the residents in recency order is both the lookup and the reuse.
func (s *MachineSlot) Machine(cfg core.Config) *machine.Machine {
	for i, m := range s.ms {
		if m.Reset(cfg) {
			s.resets++
			if i != 0 {
				copy(s.ms[1:i+1], s.ms[:i])
				s.ms[0] = m
			}
			return m
		}
	}
	m := machine.New(cfg)
	s.builds++
	if len(s.ms) < SlotMachines {
		s.ms = append(s.ms, nil)
	}
	// Shift right; when the slot is full this drops the last (least
	// recently used) machine to the garbage collector.
	copy(s.ms[1:], s.ms)
	s.ms[0] = m
	return m
}

// Stats reports the slot's lifetime cache behavior: machines built (misses,
// including evictions refilled later) and machines reset-and-reused (hits).
func (s *MachineSlot) Stats() (builds, resets uint64) { return s.builds, s.resets }

// Resident returns how many machines the slot currently keeps.
func (s *MachineSlot) Resident() int { return len(s.ms) }

// machinePool recycles machines between one-off runs that have no
// per-worker slot to live in. See the package comment above for when to
// use which.
var machinePool sync.Pool

// AcquireMachine returns a machine configured as cfg, reusing a pooled one
// when its structure matches. Pair with ReleaseMachine.
func AcquireMachine(cfg core.Config) *machine.Machine {
	if m, ok := machinePool.Get().(*machine.Machine); ok {
		m.ClearPooled()
		if m.Reset(cfg) {
			return m
		}
	}
	return machine.New(cfg)
}

// ReleaseMachine returns a machine to the reuse pool. The machine must be
// quiescent (between runs) and must not be used by the caller afterwards.
// Releasing the same machine twice panics: the second release would let
// the pool hand one machine to two concurrent runs, corrupting both (the
// same freed-flag discipline the pooled protocol messages enforce).
func ReleaseMachine(m *machine.Machine) {
	if m == nil {
		return
	}
	if !m.MarkPooled() {
		panic("exper: ReleaseMachine called twice on the same machine; " +
			"the machine is pool property after the first release")
	}
	machinePool.Put(m)
}

// MachineConfig is the machine configuration a bar needs at the given
// scale: a near-square mesh accommodating o.Procs nodes, with the bar's
// CAS variant.
func MachineConfig(o RunOpts, b Bar) core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = o.Procs
	w := 1
	for w*w < o.Procs {
		w++
	}
	cfg.Mesh.Width = w
	cfg.Mesh.Height = (o.Procs + w - 1) / w
	cfg.CAS = b.Variant
	return cfg
}

// NewMachine builds (or recycles) a machine for one bar under the given
// scale. Pair with ReleaseMachine when the machine's statistics are no
// longer needed.
func NewMachine(o RunOpts, b Bar) *machine.Machine {
	return AcquireMachine(MachineConfig(o, b))
}
