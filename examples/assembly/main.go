// Assembly: drive the simulator the way the paper drove MINT — with
// instruction-level code. A lock-free counter written in the MIPS-flavored
// assembly of internal/asm runs on all 64 processors under each primitive,
// and the run prints instructions executed and cycles per instruction.
package main

import (
	"fmt"

	"dsm"
	"dsm/internal/asm"
)

// counterFAA increments with a single fetch_and_add per iteration.
const counterFAA = `
	li    $t9, 1
	li    $s0, 0
loop:	beq   $s0, $a1, done
	faa   $t0, $t9, 0($a0)
	addiu $s0, $s0, 1
	j     loop
done:	halt
`

// counterLLSC increments with a load_linked/store_conditional retry loop.
const counterLLSC = `
	li    $s0, 0
loop:	beq   $s0, $a1, done
retry:	ll    $t0, 0($a0)
	addiu $t1, $t0, 1
	sc    $t1, 0($a0)
	beq   $t1, $zero, retry
	addiu $s0, $s0, 1
	j     loop
done:	halt
`

// counterCAS increments with a load + compare_and_swap retry loop.
const counterCAS = `
	li    $s0, 0
loop:	beq   $s0, $a1, done
retry:	lw    $t0, 0($a0)
	addiu $t1, $t0, 1
	cas   $t2, $t0, $t1, 0($a0)
	beq   $t2, $zero, retry
	addiu $s0, $s0, 1
	j     loop
done:	halt
`

func main() {
	const iters = 4
	programs := []struct {
		name   string
		src    string
		policy dsm.Policy
	}{
		{"fetch_and_add (UNC)", counterFAA, dsm.UNC},
		{"fetch_and_add (INV)", counterFAA, dsm.INV},
		{"ll/sc retry loop (INV)", counterLLSC, dsm.INV},
		{"load+cas retry loop (INV)", counterCAS, dsm.INV},
	}
	fmt.Println("lock-free counter in assembly, 64 processors x 4 increments:")
	for _, pr := range programs {
		m := dsm.New64()
		counter := m.AllocSync(pr.policy)
		prog := asm.MustAssemble(pr.src)
		var instructions uint64
		elapsed := m.Run(func(p *dsm.Proc) {
			cpu := asm.Run(p, prog, map[asm.Reg]dsm.Word{4: dsm.Word(counter), 5: iters}, 0)
			instructions += cpu.Instructions
		})
		ok := "ok"
		if m.Peek(counter) != 64*iters {
			ok = fmt.Sprintf("WRONG (%d)", m.Peek(counter))
		}
		fmt.Printf("  %-28s %8d cycles  %6d instructions  %s\n",
			pr.name, elapsed, instructions, ok)
	}
}
