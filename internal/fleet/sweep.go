package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"dsm/internal/serve"
)

// planRequest mirrors the backends' POST /v1/sweep body.
type planRequest struct {
	Points []serve.Spec `json:"points"`
}

// lineSlot is one plan point's output line: the reader goroutine that owns
// the point's backend stream sets data (newline included) and closes done;
// the writer loop relays slots strictly in plan order.
type lineSlot struct {
	done chan struct{}
	data []byte
}

func (s *lineSlot) set(b []byte) {
	s.data = b
	close(s.done)
}

// subSweep is one backend's share of a plan: which plan indices it owns
// and the live response streaming their lines back.
type subSweep struct {
	backend int
	idx     []int // plan indices in sub-plan order
	resp    *http.Response
	err     error
}

// handleSweep splits a plan across the fleet by key owner, runs the
// per-backend sub-sweeps concurrently, and re-interleaves their NDJSON
// lines back into plan order. Every line is the exact bytes the owning
// backend produced — which are themselves byte-identical to /v1/sim
// responses — so a client cannot tell a routed sweep from a single-backend
// one. Identical points within a plan share a key, land on the same
// backend, and coalesce there; the X-Sweep-* headers aggregate the
// backends' dispatch profiles.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON plan: {\"points\": [spec, ...]}")
		return
	}
	if rt.closing.Load() {
		rt.writeError(w, http.StatusServiceUnavailable, "router draining")
		return
	}
	var req planRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		rt.met.badRequest.Add(1)
		rt.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad plan JSON: %v", err))
		return
	}
	if len(req.Points) == 0 {
		rt.met.badRequest.Add(1)
		rt.writeError(w, http.StatusBadRequest, "empty plan: need at least one point")
		return
	}
	if len(req.Points) > serve.MaxSweepPoints {
		rt.met.badRequest.Add(1)
		rt.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("plan has %d points, limit %d", len(req.Points), serve.MaxSweepPoints))
		return
	}
	specs := req.Points
	keys := make([]string, len(specs))
	for i, sp := range specs {
		var err error
		if specs[i], err = sp.Normalize(); err != nil {
			rt.met.badRequest.Add(1)
			rt.writeError(w, http.StatusBadRequest, fmt.Sprintf("point %d: %v", i, err))
			return
		}
		keys[i] = specs[i].Key()
	}
	rt.met.sweeps.Add(1)
	rt.met.sweepPoints.Add(uint64(len(specs)))

	// Split the plan by primary owner. Sweep points route by ownership
	// only — hot-key round-robin is a /v1/sim latency concern; a batch
	// plan wants its duplicates to land together and coalesce.
	subIdx := make([][]int, len(rt.cfg.Backends))
	for i := range specs {
		b := rt.ring.owners(keys[i], 1)[0]
		subIdx[b] = append(subIdx[b], i)
	}

	// Launch every non-empty sub-sweep and wait for its response headers;
	// the aggregated X-Sweep-* profile must be on the wire before the
	// first body byte.
	var wg sync.WaitGroup
	subs := make([]*subSweep, 0, len(rt.cfg.Backends))
	for b, idx := range subIdx {
		if len(idx) == 0 {
			continue
		}
		sub := &subSweep{backend: b, idx: idx}
		subs = append(subs, sub)
		wg.Add(1)
		go func(sub *subSweep) {
			defer wg.Done()
			pts := make([]serve.Spec, len(sub.idx))
			for j, i := range sub.idx {
				pts[j] = specs[i]
			}
			body, err := json.Marshal(planRequest{Points: pts})
			if err != nil {
				sub.err = err
				return
			}
			req, err := http.NewRequest(http.MethodPost,
				rt.cfg.Backends[sub.backend]+"/v1/sweep", bytes.NewReader(body))
			if err != nil {
				sub.err = err
				return
			}
			req.Header.Set("Content-Type", "application/json")
			// Sub-sweep lines are re-parsed into plan order here, so the
			// stream must arrive identity-encoded; explicit Accept-Encoding
			// also keeps the transport's transparent gzip out of the path.
			req.Header.Set("Accept-Encoding", acceptIdentity)
			rt.perBack[sub.backend].Add(1)
			sub.resp, sub.err = rt.client.Do(req)
			if sub.err != nil {
				rt.met.upstreamEr.Add(1)
			}
		}(sub)
	}
	wg.Wait()

	var hits, coalesced uint64
	for _, sub := range subs {
		if sub.err == nil && sub.resp.StatusCode == http.StatusOK {
			hits += headerUint(sub.resp.Header, "X-Sweep-Hits")
			coalesced += headerUint(sub.resp.Header, "X-Sweep-Coalesced")
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Points", strconv.Itoa(len(specs)))
	w.Header().Set("X-Sweep-Hits", strconv.FormatUint(hits, 10))
	w.Header().Set("X-Sweep-Coalesced", strconv.FormatUint(coalesced, 10))

	// One reader goroutine per sub-sweep deposits lines into the plan's
	// slots as they stream in; the writer loop below relays them in plan
	// order, flushing buffered output only when about to block on a point
	// that is still simulating (same boundary discipline as the backends'
	// own sweep streaming).
	slots := make([]lineSlot, len(specs))
	for i := range slots {
		slots[i].done = make(chan struct{})
	}
	for _, sub := range subs {
		go rt.readSubSweep(sub, keys, slots)
	}

	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriterSize(w, 32<<10)
	push := func() {
		if bw.Buffered() == 0 {
			return // nothing new for the client; an empty flush still costs a write
		}
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
	for i := range slots {
		sl := &slots[i]
		select {
		case <-sl.done:
		default:
			push()
			select {
			case <-sl.done:
			case <-r.Context().Done():
				rt.drainSubs(subs)
				return // client gone; stop streaming
			}
		}
		bw.Write(sl.data)
	}
	// Drain the bufio layer only: the handler returns next, and net/http
	// emits the buffered tail and the terminal chunk in one write.
	bw.Flush()
	rt.drainSubs(subs)
}

// readSubSweep consumes one backend's sub-sweep stream, routing line j to
// the plan slot it answers. Points the backend never answered — transport
// failure, non-200 response, or a short stream — get a router-authored
// error line in the same {"error","key"} shape the backends use, so the
// one-line-per-point framing survives any partial failure.
func (rt *Router) readSubSweep(sub *subSweep, keys []string, slots []lineSlot) {
	next := 0 // next sub-plan position to fill
	fail := func(msg string) {
		for _, i := range sub.idx[next:] {
			rt.met.sweepErrors.Add(1)
			line, _ := json.Marshal(map[string]string{"error": msg, "key": keys[i]})
			slots[i].set(append(line, '\n'))
		}
		next = len(sub.idx)
	}
	base := rt.cfg.Backends[sub.backend]
	if sub.err != nil {
		fail(fmt.Sprintf("backend %s: %v", base, sub.err))
		return
	}
	defer sub.resp.Body.Close()
	if sub.resp.StatusCode != http.StatusOK {
		fail(fmt.Sprintf("backend %s answered %d", base, sub.resp.StatusCode))
		return
	}
	bp := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(bp)
	sc := bufio.NewScanner(sub.resp.Body)
	sc.Buffer((*bp)[:0], 16<<20)
	for next < len(sub.idx) && sc.Scan() {
		line := sc.Bytes()
		data := make([]byte, len(line)+1)
		copy(data, line)
		data[len(line)] = '\n'
		slots[sub.idx[next]].set(data)
		next++
	}
	if next < len(sub.idx) {
		msg := fmt.Sprintf("backend %s: stream ended %d lines short", base, len(sub.idx)-next)
		if err := sc.Err(); err != nil {
			msg = fmt.Sprintf("backend %s: %v", base, err)
		}
		fail(msg)
	}
}

// scanBufPool recycles the sub-sweep scanners' initial line buffers. Every
// line is copied out into its slot before the scanner advances, so the
// buffer is dead — and safe to reuse — the moment readSubSweep returns.
// A line that outgrows 64KB makes the scanner allocate privately; the
// pooled buffer stays its original size.
var scanBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

// drainSubs closes any sub-sweep bodies that still have a reader attached;
// readers own the Close on the happy path, but an aborted relay must not
// leak connections. Double Close on an http response body is safe.
func (rt *Router) drainSubs(subs []*subSweep) {
	for _, sub := range subs {
		if sub.err == nil && sub.resp != nil {
			sub.resp.Body.Close()
		}
	}
}

func headerUint(h http.Header, name string) uint64 {
	v, _ := strconv.ParseUint(h.Get(name), 10, 64)
	return v
}
