// Package arch defines the architectural constants and primitive types of
// the simulated machine: 32-bit words, 32-byte cache/memory blocks, and the
// shared physical address space.
//
// These mirror the machine evaluated in the paper (MIPS R4000 processors,
// 32-byte blocks).
package arch

import "fmt"

// Addr is a physical byte address in the simulated shared address space.
type Addr uint32

// Word is the unit of all loads, stores, and atomic operations (32 bits, as
// on the MIPS R4000).
type Word uint32

// Architectural size constants.
const (
	WordBytes     = 4
	BlockBytes    = 32
	WordsPerBlock = BlockBytes / WordBytes
)

// BlockData is the contents of one memory/cache block.
type BlockData [WordsPerBlock]Word

// BlockBase returns the address of the first byte of the block containing a.
func BlockBase(a Addr) Addr { return a &^ (BlockBytes - 1) }

// BlockNumber returns the index of the block containing a.
func BlockNumber(a Addr) uint32 { return uint32(a) / BlockBytes }

// WordIndex returns the index within its block of the word containing a.
func WordIndex(a Addr) int { return int(a%BlockBytes) / WordBytes }

// WordAligned reports whether a is word-aligned. All memory operations in
// the simulator require word alignment.
func WordAligned(a Addr) bool { return a%WordBytes == 0 }

// CheckWordAligned panics if a is not word aligned. Misaligned references
// indicate an application bug, the simulated analogue of a MIPS address
// error exception.
func CheckWordAligned(a Addr) {
	if !WordAligned(a) {
		panic(fmt.Sprintf("arch: misaligned word address %#x", uint32(a)))
	}
}
