package check

import (
	"fmt"
	"math/rand"
	"testing"

	"dsm/internal/arch"
	"dsm/internal/sim"
)

// These tests hold the production checkers to the naive reference on
// thousands of randomized small histories — half adversarially random
// (mostly illegal), half legal-by-construction with occasional mutations
// (legal unless the mutation broke them). The checkers must return the
// reference's exact verdict either way; a disagreement in either
// direction (silent pass or false alarm) fails the test with the
// offending history dumped.

const propTrials = 3000

// widen turns a sequence of instantaneous linearization points (op i at
// time 10*i+10) into a concurrent history by stretching each interval
// randomly around its point, which preserves linearizability. (sim.Time
// is unsigned, so the points sit high enough that stretching backwards
// cannot wrap.)
func widen(rng *rand.Rand, ops []Op) {
	for i := range ops {
		point := sim.Time(10*i + 10)
		ops[i].Invoke = point - sim.Time(rng.Intn(9))
		ops[i].Respond = point + sim.Time(rng.Intn(9))
	}
}

// mutate corrupts one op in place (sometimes a no-op mutation).
func mutate(rng *rand.Rand, ops []Op, emptyKind, valKind Kind) {
	if len(ops) == 0 {
		return
	}
	o := &ops[rng.Intn(len(ops))]
	switch rng.Intn(3) {
	case 0:
		o.Value = arch.Word(rng.Intn(6) + 1)
	case 1:
		if o.Kind == valKind {
			o.Kind = emptyKind
		} else if o.Kind == emptyKind {
			o.Kind = valKind
		}
	case 2:
		d := ops[rng.Intn(len(ops))]
		o.Invoke, o.Respond = d.Invoke, d.Respond
		if o.Respond < o.Invoke {
			o.Invoke, o.Respond = o.Respond, o.Invoke
		}
	}
}

func dump(ops []Op) string {
	s := ""
	for _, o := range ops {
		s += fmt.Sprintf("  {proc %d [%d,%d] %s %d}\n", o.Proc, o.Invoke, o.Respond, o.Kind, o.Value)
	}
	return s
}

// randCollectionHistory builds a history for a queue (lifo=false) or
// stack (lifo=true). Each op gets its own proc id, so all overlap
// patterns are expressible. Inserted values are distinct.
func randCollectionHistory(rng *rand.Rand, lifo bool) []Op {
	insKind, remKind, emptyKind := Enq, Deq, DeqEmpty
	if lifo {
		insKind, remKind, emptyKind = Push, Pop, PopEmpty
	}
	n := rng.Intn(7) + 1
	ops := make([]Op, 0, n)
	if rng.Intn(2) == 0 {
		// Adversarial: random kinds, values, and times.
		pool := rng.Perm(8)
		for i := 0; i < n; i++ {
			o := Op{Proc: i}
			o.Invoke = sim.Time(rng.Intn(30))
			o.Respond = o.Invoke + sim.Time(rng.Intn(12))
			switch rng.Intn(5) {
			case 0, 1:
				o.Kind, o.Value = insKind, arch.Word(pool[i]+1)
			case 2, 3:
				o.Kind, o.Value = remKind, arch.Word(rng.Intn(8)+1)
			default:
				o.Kind = emptyKind
			}
			ops = append(ops, o)
		}
		return ops
	}
	// Legal-by-construction: replay a random sequential execution, widen,
	// then mutate half the time.
	var state []arch.Word
	next := arch.Word(1)
	for i := 0; i < n; i++ {
		o := Op{Proc: i}
		switch {
		case len(state) > 0 && rng.Intn(2) == 0:
			o.Kind = remKind
			if lifo {
				o.Value = state[len(state)-1]
				state = state[:len(state)-1]
			} else {
				o.Value = state[0]
				state = state[1:]
			}
		case len(state) == 0 && rng.Intn(3) == 0:
			o.Kind = emptyKind
		default:
			o.Kind, o.Value = insKind, next
			state = append(state, next)
			next++
		}
		ops = append(ops, o)
	}
	widen(rng, ops)
	if rng.Intn(2) == 0 {
		mutate(rng, ops, emptyKind, remKind)
	}
	return ops
}

func differentiated(ops []Op, insKind Kind) bool {
	seen := map[arch.Word]bool{}
	for _, o := range ops {
		if o.Kind == insKind {
			if seen[o.Value] {
				return false
			}
			seen[o.Value] = true
		}
	}
	return true
}

func TestPropertyQueueCheckerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < propTrials; trial++ {
		ops := randCollectionHistory(rng, false)
		if !differentiated(ops, Enq) {
			continue // CheckQueue rejects these by contract
		}
		h := hist(ops...)
		got := h.CheckQueue() == nil
		want := referenceLinearizable(ops, queueStep, nil)
		if got != want {
			t.Fatalf("trial %d: CheckQueue=%v reference=%v on\n%s", trial, got, want, dump(ops))
		}
	}
}

func TestPropertyStackCheckerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < propTrials; trial++ {
		ops := randCollectionHistory(rng, true)
		h := hist(ops...)
		got := h.CheckStack() == nil
		want := referenceLinearizable(ops, stackStep, nil)
		if got != want {
			t.Fatalf("trial %d: CheckStack=%v reference=%v on\n%s", trial, got, want, dump(ops))
		}
	}
}

// randCounterHistory mirrors randCollectionHistory for the counter.
func randCounterHistory(rng *rand.Rand) []Op {
	n := rng.Intn(7) + 1
	ops := make([]Op, 0, n)
	if rng.Intn(2) == 0 {
		for i := 0; i < n; i++ {
			o := Op{Proc: i}
			o.Invoke = sim.Time(rng.Intn(30))
			o.Respond = o.Invoke + sim.Time(rng.Intn(12))
			if rng.Intn(2) == 0 {
				o.Kind = Inc
			} else {
				o.Kind = Read
			}
			o.Value = arch.Word(rng.Intn(n + 1))
			ops = append(ops, o)
		}
		return ops
	}
	count := arch.Word(0)
	for i := 0; i < n; i++ {
		o := Op{Proc: i, Value: count}
		if rng.Intn(3) > 0 {
			o.Kind = Inc
			count++
		} else {
			o.Kind = Read
		}
		ops = append(ops, o)
	}
	widen(rng, ops)
	if rng.Intn(2) == 0 && len(ops) > 0 {
		o := &ops[rng.Intn(len(ops))]
		if rng.Intn(2) == 0 {
			o.Value = arch.Word(rng.Intn(n + 1))
		} else {
			d := ops[rng.Intn(len(ops))]
			o.Invoke, o.Respond = d.Invoke, d.Respond
		}
	}
	return ops
}

// TestPropertyCounterCheckerMatchesReference is the regression net for
// CheckCounter itself: the reference caught that the original rules
// validated each read in isolation, silently passing histories whose
// reads were individually in-window but jointly non-monotonic (read 2
// strictly before read 1); rule 4 exists because of this test.
func TestPropertyCounterCheckerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < propTrials; trial++ {
		ops := randCounterHistory(rng)
		h := hist(ops...)
		got := h.CheckCounter() == nil
		want := referenceLinearizable(ops, counterStep, []arch.Word{0})
		if got != want {
			t.Fatalf("trial %d: CheckCounter=%v reference=%v on\n%s", trial, got, want, dump(ops))
		}
	}
}

// TestCounterNonMonotonicReadsDetected pins the concrete silent-pass the
// property test first exposed: five concurrent incs, read 2 wholly
// before read 1 — both reads in their individual windows, jointly
// impossible.
func TestCounterNonMonotonicReadsDetected(t *testing.T) {
	var h History
	for i := 0; i < 5; i++ {
		h.Record(inc(i, 0, 100, arch.Word(i)))
	}
	h.Record(rd(5, 0, 10, 2))
	h.Record(rd(6, 20, 30, 1))
	if err := h.CheckCounter(); err == nil {
		t.Fatal("non-monotonic reads accepted")
	}
}
