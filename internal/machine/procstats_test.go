package machine

import (
	"testing"

	"dsm/internal/core"
)

func TestProcStatsCountOps(t *testing.T) {
	m := newSmall()
	a := m.Alloc(4)
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			p.Store(a, 1)
			p.Load(a)
			p.FetchAdd(a, 1)
		},
		nil, nil, nil,
	})
	s := m.ProcStats(0)
	if s.Ops != 3 {
		t.Fatalf("Ops = %d, want 3", s.Ops)
	}
	if s.MemoryCycles == 0 {
		t.Fatal("no memory cycles recorded")
	}
	if idle := m.ProcStats(1); idle.Ops != 0 {
		t.Fatalf("idle processor has %d ops", idle.Ops)
	}
}

func TestProcStatsComputeAndBarrier(t *testing.T) {
	m := newSmall()
	m.Run(func(p *Proc) {
		p.Compute(100)
		p.Barrier()
		p.Barrier()
	})
	for i := 0; i < m.Procs(); i++ {
		s := m.ProcStats(i)
		if s.ComputeCycles != 100 {
			t.Fatalf("proc %d ComputeCycles = %d", i, s.ComputeCycles)
		}
		if s.Barriers != 2 {
			t.Fatalf("proc %d Barriers = %d", i, s.Barriers)
		}
	}
}

func TestProcStatsMemoryCyclesReflectLocality(t *testing.T) {
	m := newSmall()
	local := m.AllocSyncAt(0, core.PolicyINV)
	m.RunEach([]func(*Proc){
		func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.FetchAdd(local, 1) // after the first, all local hits
			}
		},
		nil, nil, nil,
	})
	localCycles := m.ProcStats(0).MemoryCycles
	m2 := newSmall()
	remoteAddr := m2.AllocSyncAt(3, core.PolicyUNC)
	m2.RunEach([]func(*Proc){
		func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.FetchAdd(remoteAddr, 1) // every op crosses the mesh
			}
		},
		nil, nil, nil,
	})
	remoteCycles := m2.ProcStats(0).MemoryCycles
	if remoteCycles <= localCycles {
		t.Fatalf("remote UNC ops (%d cycles) not slower than local INV hits (%d)",
			remoteCycles, localCycles)
	}
}
