package serve

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLayeringNoPresentationImports enforces the dependency rule of the
// experiment layer split: serve and figures are sibling consumers of
// internal/exper and must never import each other. The test parses the
// import lists of both packages' non-test sources, so a violation fails
// here even before it would show up as an import cycle.
func TestLayeringNoPresentationImports(t *testing.T) {
	check := func(dir, forbidden string) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatal(err)
			}
			for _, imp := range f.Imports {
				if strings.Trim(imp.Path.Value, `"`) == forbidden {
					t.Errorf("%s imports %s: serve and figures must stay independent consumers of internal/exper", path, forbidden)
				}
			}
		}
	}
	check(".", "dsm/internal/figures")
	check("../figures", "dsm/internal/serve")
}
