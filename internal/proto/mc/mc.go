// Package mc is an exhaustive explicit-state model checker for the
// coherence protocol defined by the transition tables in internal/proto.
//
// It is the second interpreter of those tables (internal/core is the
// first): the same guarded-action rules are bound to a small abstract
// machine — N nodes sharing one cache block of one word, a directory and
// memory word at node 0, and per-destination FIFO message queues — and
// every interleaving of processor issues and message deliveries is
// explored by breadth-first search over canonicalized states. Because the
// tables are shared, a protocol edit that breaks an invariant shows up
// here without touching the simulator.
//
// The network model keeps exactly one ordering property of the real mesh:
// messages bound for the same destination arrive in the order they were
// sent (the mesh books ejection slots per destination in send order;
// internal/mesh proves this). Everything else — relative timing of
// different destinations, memory-bank delays, retry backoffs — is
// replaced by nondeterministic choice, which over-approximates the
// simulator's deterministic timing.
//
// Invariants checked at every reachable state:
//
//   - SWMR: at most one exclusive copy; a read-only copy may coexist with
//     an exclusive copy elsewhere only while its invalidation is still in
//     flight (the grant-time fill window).
//   - Directory-cache agreement: every cached copy is accounted for by
//     the directory (recorded as sharer/owner, or covered by an in-flight
//     invalidation); an exclusive copy's holder is the recorded owner.
//   - Ack conservation: a granted transaction never collects more
//     acknowledgments than the grant promised.
//   - Completion: no reachable state is stuck (a state with no enabled
//     transition must have every program finished, no transaction
//     outstanding, and empty queues).
//   - Real-time reads: a completing operation must observe a value at
//     least as new as everything observed by operations that completed
//     before it was issued (ghost version front). The documented
//     plain-load read windows — UPD update fan-out, and the INV recall
//     of a dirty line before its grant's invalidation acks are in —
//     violate exactly this and are reported as expected.
//   - CAS atomicity: a compare_and_swap succeeds iff the authoritative
//     copy held the expected value at its execution point.
//   - LL/SC validity: a store_conditional that the protocol lets succeed
//     must find the authoritative copy unwritten since the reservation's
//     load_linked observed it.
//   - Quiescent coherence: in terminal states every cached copy matches
//     the final memory version.
//
// On a violation the checker reports the BFS-minimal trace of issue and
// delivery steps that reaches it.
package mc

import (
	"fmt"
	"strings"

	"dsm/internal/proto"
)

// Resv selects the memory-side reservation scheme for LL/SC under the
// UNC and UPD policies (mirrors the simulator's dir.ResvScheme).
type Resv int

const (
	ResvBits    Resv = iota // full bit vector of reserving nodes
	ResvLimited             // bounded vector with a beyond-limit failure hint
	ResvSerial              // per-block write serial number
)

func (r Resv) String() string {
	switch r {
	case ResvBits:
		return "bits"
	case ResvLimited:
		return "limited"
	case ResvSerial:
		return "serial"
	}
	return fmt.Sprintf("Resv(%d)", int(r))
}

// UseLLSerial as an OpSC Val2 substitutes the serial returned by the
// node's most recent load_linked (programs cannot know it statically).
const UseLLSerial = -1

// OpSpec is one program step: an operation with its operands.
type OpSpec struct {
	Op   proto.OpKind
	Val  int
	Val2 int
}

// Config is one closed model-checking instance.
type Config struct {
	Nodes     int // 2 or 3; node 0 is the home
	Policy    proto.Policy
	CAS       proto.CASVariant
	Resv      Resv
	ResvLimit int
	Progs     [][]OpSpec // per-node programs, len == Nodes, each <= MaxOps
	PreShare  []int      // nodes seeded with a read-only copy (and in the directory)
	MaxStates int        // safety bound; 0 means DefaultMaxStates
}

// MaxOps bounds outstanding work per node: with one blocking processor
// per node this is the program length.
const MaxOps = 3

// DefaultMaxStates bounds the search when Config.MaxStates is zero.
const DefaultMaxStates = 2_000_000

const maxNodes = 3

// Kind classifies a violation.
type Kind string

const (
	KindSWMR       Kind = "swmr"
	KindAgreement  Kind = "dir-agreement"
	KindAcks       Kind = "ack-overflow"
	KindDeadlock   Kind = "deadlock"
	KindStaleRead  Kind = "stale-read"
	KindCAS        Kind = "cas-atomicity"
	KindSC         Kind = "sc-validity"
	KindQuiescent  Kind = "quiescent-stale"
	KindProtocol   Kind = "protocol"
	KindStateBound Kind = "state-bound"
)

// Violation is one invariant failure with its minimal reproducing trace.
type Violation struct {
	Kind Kind
	// Expected marks violations the protocol is documented to exhibit: the
	// plain-load read windows (EXPERIMENTS.md), where a new value escapes
	// to one reader while another node still holds a stale copy whose
	// coherence message is in flight. Under UPD the home pushes updates
	// that reach sharers at different times; under INV a recalled dirty
	// line propagates through the home before the writer has collected
	// every invalidation ack. Both are flagged on the same mechanistic
	// signature: a plain load hit on a copy with a pending invalidation or
	// update toward it. They are properties of the protocols, not table
	// bugs.
	Expected bool
	Detail   string
	Trace    []string // issue/deliver steps from the initial state
}

func (v Violation) String() string {
	tag := ""
	if v.Expected {
		tag = " (expected)"
	}
	return fmt.Sprintf("%s%s: %s\n  trace:\n    %s",
		v.Kind, tag, v.Detail, strings.Join(v.Trace, "\n    "))
}

// Report is the result of one Check run.
type Report struct {
	States     int // distinct states explored
	Terminals  int // quiescent all-done states reached
	Violations []Violation
}

// Unexpected returns the violations not flagged Expected.
func (r Report) Unexpected() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if !v.Expected {
			out = append(out, v)
		}
	}
	return out
}

// mmsg is one in-flight protocol message in the abstract machine. The
// block payload is a single word (data) with its ghost version (dver);
// scalar replies carry the version of the word they report (vver).
type mmsg struct {
	kind    proto.MsgKind
	src     int
	req     int // requester
	op      proto.OpKind
	val     int
	val2    int
	data    int
	dver    int
	hasData bool
	acks    int
	ok      bool
	serial  int
	hint    bool
	updWord int
	updVer  int
	vver    int
	fwdVal  int
	fwdVal2 int
	toHome  bool
}

// cline is a node's (single) cache line.
type cline struct {
	present bool
	excl    bool
	val     int
	ver     int
	resv    bool // LL reservation register points at this block
}

// mtxn is a node's outstanding transaction.
type mtxn struct {
	active   bool
	op       proto.OpKind
	val      int
	val2     int
	granted  bool
	needAcks int
	acks     int
	resVal   int
	resOK    bool
	resVer   int
	retry    bool // NAKed; a retry transition restarts it
}

// state is one explicit state of the abstract machine. It must contain
// everything the interpreter reads, and nothing else (ghost fields are
// part of the state so invariant bookkeeping survives the search).
type state struct {
	line   [maxNodes]cline
	llFail [maxNodes]bool
	txn    [maxNodes]mtxn
	pc     [maxNodes]int

	// Home (node 0).
	dirState   proto.HomeState // HUnowned / HShared / HExclusive
	sharers    uint
	owner      int
	busyActive bool
	busyOwner  int
	busyOrig   mmsg
	busyHasOrg bool
	mem        int
	mver       int

	// Memory-side reservation state.
	resvHolders uint
	resvSerial  int
	resvDormant bool

	// Per-destination FIFO queues.
	q [maxNodes][]mmsg

	// Ghost instrumentation.
	gver     int           // global write counter; stamps authoritative copies
	front    int           // max version observed by any completed op
	snap     [maxNodes]int // front at issue of the node's current txn
	llVer    [maxNodes]int // version observed by the node's last LL
	llSerial [maxNodes]int // serial returned by the node's last LL
}

func (s *state) clone() *state {
	n := *s
	for i := range s.q {
		if len(s.q[i]) > 0 {
			n.q[i] = append([]mmsg(nil), s.q[i]...)
		}
	}
	return &n
}

// key canonicalizes the state for the visited set. fmt's struct printing
// is deterministic and covers the queue contents in order.
func (s *state) key() string {
	return fmt.Sprintf("%v|%v|%v|%v|%v %v %v %v %v %v %v %v %v %v|%v %v|%v|%v %v %v %v %v",
		s.line, s.llFail, s.txn, s.pc,
		s.dirState, s.sharers, s.owner, s.busyActive, s.busyOwner, s.busyOrig, s.busyHasOrg,
		s.mem, s.mver, s.resvHolders,
		s.resvSerial, s.resvDormant,
		s.q,
		s.gver, s.front, s.snap, s.llVer, s.llSerial)
}

func bit(n int) uint { return 1 << uint(n) }

// Check exhaustively explores cfg and reports every distinct violation
// kind with its BFS-minimal trace. Exploration continues past violating
// states so one expected violation does not mask a different bug.
func Check(cfg Config) Report {
	if cfg.Nodes < 2 || cfg.Nodes > maxNodes {
		panic(fmt.Sprintf("mc: Nodes must be 2..%d, got %d", maxNodes, cfg.Nodes))
	}
	if len(cfg.Progs) != cfg.Nodes {
		panic("mc: len(Progs) must equal Nodes")
	}
	for i, p := range cfg.Progs {
		if len(p) > MaxOps {
			panic(fmt.Sprintf("mc: program %d longer than %d ops", i, MaxOps))
		}
	}
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}

	// The zero HomeState is HBusy; a fresh directory entry is unowned.
	init := &state{dirState: proto.HUnowned}
	for _, n := range cfg.PreShare {
		init.line[n] = cline{present: true, val: init.mem, ver: init.mver}
		init.sharers |= bit(n)
		init.dirState = proto.HShared
	}
	init.resvDormant = true

	type node struct {
		st     *state
		parent int
		label  string
	}
	nodes := []node{{st: init, parent: -1}}
	seen := map[string]int{init.key(): 0}
	rep := Report{}
	seenKinds := map[Kind]bool{}

	traceOf := func(idx int, last string) []string {
		var rev []string
		if last != "" {
			rev = append(rev, last)
		}
		for i := idx; i > 0; i = nodes[i].parent {
			rev = append(rev, nodes[i].label)
		}
		out := make([]string, len(rev))
		for i, s := range rev {
			out[len(rev)-1-i] = s
		}
		return out
	}
	record := func(idx int, step string, v *violation) {
		if v == nil || seenKinds[v.kind] {
			return
		}
		seenKinds[v.kind] = true
		rep.Violations = append(rep.Violations, Violation{
			Kind:     v.kind,
			Expected: v.expected,
			Detail:   v.detail,
			Trace:    traceOf(idx, step),
		})
	}

	for head := 0; head < len(nodes); head++ {
		if len(nodes) > maxStates {
			record(head, "", &violation{kind: KindStateBound,
				detail: fmt.Sprintf("state bound %d exceeded", maxStates)})
			break
		}
		cur := nodes[head].st
		moved := false
		expand := func(label string, next *state, v *violation) {
			moved = true
			if v != nil {
				record(head, label, v)
				// A violating successor is still canonicalized and explored
				// so the search terminates and other kinds surface.
			}
			k := next.key()
			if _, ok := seen[k]; ok {
				return
			}
			seen[k] = len(nodes)
			nodes = append(nodes, node{st: next, parent: head, label: label})
		}

		// Processor issues and retries.
		for i := 0; i < cfg.Nodes; i++ {
			if cur.txn[i].active && cur.txn[i].retry {
				next := cur.clone()
				in := interp{cfg: &cfg, st: next}
				op := next.txn[i].op
				next.txn[i].retry = false
				in.start(i)
				if in.vio == nil {
					in.checkGlobal()
				}
				expand(fmt.Sprintf("retry n%d %v", i, op), next, in.vio)
				continue
			}
			if !cur.txn[i].active && cur.pc[i] < len(cfg.Progs[i]) {
				spec := cfg.Progs[i][cur.pc[i]]
				next := cur.clone()
				in := interp{cfg: &cfg, st: next}
				in.issue(i, spec)
				if in.vio == nil {
					in.checkGlobal()
				}
				expand(fmt.Sprintf("issue n%d %v", i, spec.Op), next, in.vio)
			}
		}

		// Message deliveries, one destination queue head at a time.
		for d := 0; d < cfg.Nodes; d++ {
			if len(cur.q[d]) == 0 {
				continue
			}
			m := cur.q[d][0]
			next := cur.clone()
			next.q[d] = next.q[d][1:]
			if len(next.q[d]) == 0 {
				next.q[d] = nil
			}
			in := interp{cfg: &cfg, st: next}
			if m.toHome {
				in.homeProcess(m)
			} else {
				in.cacheReceive(d, m)
			}
			if in.vio == nil {
				in.checkGlobal()
			}
			expand(fmt.Sprintf("deliver %v %s n%d->n%d", m.kind, dir3(m.toHome), m.src, d),
				next, in.vio)
		}

		if !moved {
			done := true
			for i := 0; i < cfg.Nodes; i++ {
				if cur.txn[i].active || cur.pc[i] < len(cfg.Progs[i]) {
					done = false
				}
			}
			if !done {
				record(head, "", &violation{kind: KindDeadlock,
					detail: "no enabled transition with work outstanding"})
				continue
			}
			rep.Terminals++
			if v := checkQuiescent(&cfg, cur); v != nil {
				record(head, "", v)
			}
		}
	}
	rep.States = len(nodes)
	return rep
}

func dir3(toHome bool) string {
	if toHome {
		return "(home)"
	}
	return "(cache)"
}

// violation is the interpreter-internal form before the trace is attached.
type violation struct {
	kind     Kind
	expected bool
	detail   string
}

// checkQuiescent verifies terminal coherence: with no messages in flight
// and no work outstanding, every cached copy must hold the final version.
func checkQuiescent(cfg *Config, s *state) *violation {
	for i := 0; i < cfg.Nodes; i++ {
		if s.line[i].present && s.line[i].ver != s.gver {
			return &violation{
				kind:     KindQuiescent,
				expected: cfg.Policy == proto.PolicyUPD,
				detail: fmt.Sprintf("n%d holds version %d at quiescence, memory is at %d",
					i, s.line[i].ver, s.gver),
			}
		}
	}
	return nil
}
