// Package core implements the paper's contribution: hardware
// implementations of the general-purpose atomic primitives fetch_and_Φ,
// compare_and_swap, and load_linked/store_conditional on a directory-based
// cache-coherent DSM multiprocessor, under three coherence policies for
// atomically accessed data:
//
//   - INV: computational power in the cache controllers, write-invalidate
//     coherence. Includes the compare_and_swap variants INVd ("deny") and
//     INVs ("share") that compare at the home/owner and refuse to migrate
//     the line when the comparison fails.
//   - UPD: computational power in the memory modules, write-update
//     coherence.
//   - UNC: computational power in the memory modules, caching disabled.
//
// It also implements the auxiliary instructions load_exclusive and
// drop_copy, cache-side LL/SC reservations (one reservation bit and address
// register per processor) and the three memory-side reservation schemes of
// section 3.1 (full bit vector, limited-k, serial numbers).
//
// The protocols are home-centric DASH-style directory protocols with
// negative acknowledgments and requester retry for transient states, over
// the substrates in internal/{cache,dir,mem,mesh,sim}. The protocol itself
// — which (state, event) pairs are legal and what each one does — is not
// coded here: it lives as guarded-action transition tables in
// internal/proto, and CacheCtl/HomeCtl are interpreters that bind the
// tables' closed action vocabulary to the simulated machine (cache arrays,
// directory, memory, mesh). internal/proto/mc binds the same tables to an
// abstract state instead and model-checks them exhaustively.
package core

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/cache"
	"dsm/internal/dir"
	"dsm/internal/mem"
	"dsm/internal/mesh"
	"dsm/internal/proto"
	"dsm/internal/sim"
	"dsm/internal/stats"
)

// The protocol vocabulary — policies, compare_and_swap variants, operation
// kinds — is owned by internal/proto together with the transition tables;
// core re-exports the names so existing callers are unaffected.
type (
	Policy     = proto.Policy
	CASVariant = proto.CASVariant
	OpKind     = proto.OpKind
)

const (
	PolicyINV = proto.PolicyINV
	PolicyUPD = proto.PolicyUPD
	PolicyUNC = proto.PolicyUNC

	CASPlain = proto.CASPlain
	CASDeny  = proto.CASDeny
	CASShare = proto.CASShare

	OpLoad          = proto.OpLoad
	OpStore         = proto.OpStore
	OpLoadExclusive = proto.OpLoadExclusive
	OpDropCopy      = proto.OpDropCopy
	OpFetchAdd      = proto.OpFetchAdd
	OpFetchStore    = proto.OpFetchStore
	OpFetchOr       = proto.OpFetchOr
	OpTestAndSet    = proto.OpTestAndSet
	OpCAS           = proto.OpCAS
	OpLL            = proto.OpLL
	OpSC            = proto.OpSC
)

// Request is one processor-issued memory operation handed to the node's
// cache controller. Exactly one request per processor may be outstanding.
type Request struct {
	Op   OpKind
	Addr arch.Addr
	// Val is the store value, fetch_and_Φ operand, CAS expected value, or
	// SC value.
	Val arch.Word
	// Val2 is the CAS new value, or the expected serial number for SC
	// under the serial-number reservation scheme.
	Val2 arch.Word
	// Done receives the result when the operation completes.
	Done func(Result)
}

// Result is the outcome of a completed Request.
type Result struct {
	// Value is the loaded or fetched (old) value.
	Value arch.Word
	// OK is the success indication of compare_and_swap and
	// store_conditional; true for all other operations.
	OK bool
	// Serial is the block's write serial number returned by load_linked
	// under the serial-number reservation scheme.
	Serial arch.Word
	// Hint is the beyond-the-limit failure hint returned by load_linked
	// under the limited reservation scheme.
	Hint bool
	// Chain is the number of serialized network messages this operation
	// required (Table 1's metric). Local hits are 0.
	Chain int
}

// Config carries the protocol and timing configuration of the system.
type Config struct {
	Nodes int // processor/memory node count (must fit the mesh)

	Cache cache.Config
	Mem   mem.Config
	Mesh  mesh.Config

	CacheHitTime sim.Time // cycles for a cache hit / local controller step
	RetryDelay   sim.Time // base delay before retrying a NAKed request

	CAS CASVariant // INV-policy compare_and_swap implementation

	// ResvScheme and ResvLimit select the memory-side LL/SC reservation
	// representation (UNC and UPD policies).
	ResvScheme dir.ResvScheme
	ResvLimit  int

	// Track enables contention and write-run tracking of atomically
	// accessed locations.
	Track bool
}

// DefaultConfig is the machine of the paper's methodology: 64 nodes,
// directory-based 32-byte-block caches, queued memory, 2-D wormhole mesh.
func DefaultConfig() Config {
	return Config{
		Nodes:        64,
		Cache:        cache.DefaultConfig(),
		Mem:          mem.DefaultConfig(),
		Mesh:         mesh.DefaultConfig(),
		CacheHitTime: 1,
		RetryDelay:   20,
		CAS:          CASPlain,
		ResvScheme:   dir.ResvBitVector,
		ResvLimit:    4,
		Track:        true,
	}
}

// Counters aggregates protocol-level event counts across the system.
type Counters struct {
	Requests    uint64 `json:"requests"`      // processor requests issued
	LocalHits   uint64 `json:"local_hits"`    // requests satisfied without leaving the node
	Naks        uint64 `json:"naks"`          // negative acknowledgments received by requesters
	Retries     uint64 `json:"retries"`       // request retries after NAK
	Invals      uint64 `json:"invals"`        // invalidation messages sent
	Updates     uint64 `json:"updates"`       // update messages sent
	Writebacks  uint64 `json:"writebacks"`    // dirty data returned to memory
	SCFailLocal uint64 `json:"sc_fail_local"` // store_conditionals failed without network traffic
}

// Policy-table geometry: policies are kept in a two-level page table
// indexed by block number — one pointer load plus one byte load per lookup,
// replacing a map hash on every memory reference. A page covers 4 KiB of
// address space (128 blocks); pages materialize on the first SetPolicy that
// touches them, and absent pages read as PolicyINV.
const (
	policyPageShift  = 12
	policyPageBlocks = (1 << policyPageShift) / arch.BlockBytes
)

// System is the collection of cache controllers and home controllers over
// one machine's substrates. All methods must be called from the simulation
// engine's event loop (or before it starts).
type System struct {
	cfg    Config
	eng    *sim.Engine
	mesh   *mesh.Mesh
	caches []*CacheCtl
	homes  []*HomeCtl

	policyPages [][]Policy // page -> per-block policy; nil page = PolicyINV

	// msgPool recycles protocol messages (see msg.go); steady-state
	// request/reply/coherence traffic allocates no *msg.
	msgPool []*msg

	counters   Counters
	chains     *stats.ChainRecorder
	contention *stats.ContentionTracker
	writeRuns  *stats.WriteRunTracker
	syncLocs   map[arch.Addr]bool // word addresses ever accessed atomically

	tracer Tracer
}

// Tracer receives protocol events (see internal/trace for a ring-buffer
// implementation). A nil tracer costs nothing.
type Tracer interface {
	Record(at sim.Time, node int, kind, detail string)
}

// SetTracer installs (or, with nil, removes) a protocol event tracer.
func (s *System) SetTracer(t Tracer) { s.tracer = t }

// trace records one protocol event when a tracer is installed.
func (s *System) trace(node mesh.NodeID, kind, format string, args ...any) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(s.eng.Now(), int(node), kind, fmt.Sprintf(format, args...))
}

// NewSystem builds the controllers for a machine with the given
// configuration over the given engine and mesh.
func NewSystem(eng *sim.Engine, net *mesh.Mesh, cfg Config) *System {
	if cfg.Nodes <= 0 || cfg.Nodes > 64 {
		panic(fmt.Sprintf("core: node count %d outside 1..64", cfg.Nodes))
	}
	if cfg.Nodes > net.Nodes() {
		panic("core: more nodes than mesh positions")
	}
	s := &System{
		cfg:  cfg,
		eng:  eng,
		mesh: net,
		chains: stats.NewChainGrid(proto.NumOps, proto.NumPolicies, func(op, pol int) string {
			return OpKind(op).String() + "/" + Policy(pol).String()
		}),
		contention: stats.NewContentionTracker(),
		writeRuns:  stats.NewWriteRunTracker(),
		syncLocs:   make(map[arch.Addr]bool),
	}
	// Controllers live in two slabs; the pointer slices index into them.
	ccs := make([]CacheCtl, cfg.Nodes)
	hcs := make([]HomeCtl, cfg.Nodes)
	s.caches = make([]*CacheCtl, cfg.Nodes)
	s.homes = make([]*HomeCtl, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		s.caches[n] = &ccs[n]
		s.homes[n] = &hcs[n]
		s.caches[n].init(s, mesh.NodeID(n))
		s.homes[n].init(s, mesh.NodeID(n))
	}
	return s
}

// Reset returns the system to its post-NewSystem state under cfg, keeping
// every allocation: controller slabs, cache line storage (invalidated by
// epoch), directory and memory maps (cleared in place), the message pool,
// and the stats trackers. It reports whether the reset was possible: cfg
// must match the existing controllers' structure (node count, cache and
// memory geometry); behavioral fields (CAS variant, retry delay,
// reservation scheme, tracking) may differ and are adopted. On false the
// system is unchanged. Reset must only be called on a quiescent system (no
// transactions or messages in flight).
func (s *System) Reset(cfg Config) bool {
	if cfg.Nodes != s.cfg.Nodes || cfg.Cache != s.cfg.Cache || cfg.Mem != s.cfg.Mem {
		return false
	}
	s.cfg = cfg
	for _, pg := range s.policyPages {
		clear(pg) // zero value is PolicyINV, the default
	}
	s.counters = Counters{}
	s.chains.Reset()
	s.contention.Reset()
	s.writeRuns.Reset()
	clear(s.syncLocs)
	s.tracer = nil
	for n := range s.caches {
		s.caches[n].reset()
		s.homes[n].reset()
	}
	return true
}

// Cache returns node n's cache controller.
func (s *System) Cache(n mesh.NodeID) *CacheCtl { return s.caches[n] }

// Home returns node n's home (memory/directory) controller.
func (s *System) Home(n mesh.NodeID) *HomeCtl { return s.homes[n] }

// Nodes returns the number of processing nodes.
func (s *System) Nodes() int { return s.cfg.Nodes }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// HomeOf returns the home node of an address: blocks are interleaved across
// the nodes by block number.
func (s *System) HomeOf(a arch.Addr) mesh.NodeID {
	return mesh.NodeID(int(arch.BlockNumber(a)) % s.cfg.Nodes)
}

// SetPolicy assigns a coherence policy to the block containing a. It must
// be called before any reference to the block (policy changes with data in
// flight are not modeled; real machines would flush first).
func (s *System) SetPolicy(a arch.Addr, p Policy) {
	page := uint32(a) >> policyPageShift
	if int(page) >= len(s.policyPages) {
		grown := make([][]Policy, page+1)
		copy(grown, s.policyPages)
		s.policyPages = grown
	}
	if s.policyPages[page] == nil {
		s.policyPages[page] = make([]Policy, policyPageBlocks)
	}
	s.policyPages[page][arch.BlockNumber(a)%policyPageBlocks] = p
}

// SetPolicyRange assigns a policy to every block overlapping [a, a+size).
func (s *System) SetPolicyRange(a arch.Addr, size uint32, p Policy) {
	for b := arch.BlockBase(a); b < a+arch.Addr(size); b += arch.BlockBytes {
		s.SetPolicy(b, p)
	}
}

// PolicyOf returns the coherence policy of the block containing a.
func (s *System) PolicyOf(a arch.Addr) Policy {
	page := uint32(a) >> policyPageShift
	if int(page) >= len(s.policyPages) || s.policyPages[page] == nil {
		return PolicyINV
	}
	return s.policyPages[page][arch.BlockNumber(a)%policyPageBlocks]
}

// Counters returns a snapshot of the protocol counters.
func (s *System) Counters() Counters { return s.counters }

// Chains returns the serialized-message-chain recorder (Table 1).
func (s *System) Chains() *stats.ChainRecorder { return s.chains }

// Contention returns the contention tracker (Figure 2).
func (s *System) Contention() *stats.ContentionTracker { return s.contention }

// WriteRuns returns the write-run-length tracker (section 4.2). Call Flush
// on it at the end of a run before reading the mean.
func (s *System) WriteRuns() *stats.WriteRunTracker { return s.writeRuns }

// CheckCoherence validates the global single-writer/multi-reader invariant:
// for every block, either at most one cache holds it Exclusive and no cache
// holds it Shared, or any number hold it Shared; and the directory entry
// (when quiescent) agrees with cache contents. It panics with a description
// of the first violation. Intended for tests; call only when no transaction
// is in flight.
func (s *System) CheckCoherence() {
	type copies struct {
		shared []mesh.NodeID
		excl   []mesh.NodeID
	}
	seen := make(map[arch.Addr]*copies)
	for n, cc := range s.caches {
		n := mesh.NodeID(n)
		cc.cache.ForEach(func(l *cache.Line) {
			c := seen[l.Base]
			if c == nil {
				c = &copies{}
				seen[l.Base] = c
			}
			switch l.State {
			case cache.SharedRO:
				c.shared = append(c.shared, n)
			case cache.ExclusiveRW:
				c.excl = append(c.excl, n)
			}
		})
	}
	for base, c := range seen {
		if len(c.excl) > 1 {
			panic(fmt.Sprintf("core: block %#x exclusive in %v", base, c.excl))
		}
		if len(c.excl) == 1 && len(c.shared) > 0 {
			panic(fmt.Sprintf("core: block %#x exclusive in %d and shared in %v",
				base, c.excl[0], c.shared))
		}
		e := s.homes[s.HomeOf(base)].dir.Peek(base)
		if e == nil {
			panic(fmt.Sprintf("core: block %#x cached but unknown to home", base))
		}
		if len(c.excl) == 1 && (e.State != dir.Exclusive || e.Owner != c.excl[0]) {
			panic(fmt.Sprintf("core: block %#x owner %d but directory %v/%d",
				base, c.excl[0], e.State, e.Owner))
		}
		for _, n := range c.shared {
			if e.State != dir.Shared || !e.Sharers.Has(n) {
				panic(fmt.Sprintf("core: block %#x shared in %d but directory %v/%b",
					base, n, e.State, e.Sharers))
			}
		}
	}
}

// trackAccess feeds the write-run and sync-location bookkeeping for one
// completed (or locally performed) access.
func (s *System) trackAccess(a arch.Addr, proc mesh.NodeID, op OpKind, wrote bool) {
	if !s.cfg.Track {
		return
	}
	loc := stats.Location(a)
	if op.IsAtomic() {
		s.syncLocs[a] = true
	}
	if s.syncLocs[a] {
		s.writeRuns.Access(loc, int(proc), wrote)
	}
}

// net reports whether a message between two nodes crosses the network.
func (s *System) net(a, b mesh.NodeID) int {
	if a == b {
		return 0
	}
	return 1
}
