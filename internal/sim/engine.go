// Package sim provides the discrete-event simulation engine that drives the
// DSM machine model: a virtual clock, an event queue with deterministic
// tie-breaking, and a seeded pseudo-random number source.
//
// All back-end components (caches, directories, memory modules, the mesh)
// run inside the engine's single event loop; determinism follows from the
// total order (time, sequence number) on events.
package sim

import "container/heap"

// Time is the virtual clock, in processor cycles.
type Time uint64

// Event is a callback scheduled to run at a particular virtual time.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
	// Stopped is set by Stop and terminates Run at the next event boundary.
	stopped bool
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past (t less
// than Now) runs the event at the current time, preserving issue order.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Pending reports the number of live scheduled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Stop makes Run return after the event currently executing (if any).
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to its
// time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or the clock
// passes limit (limit zero means no limit). It returns the number of events
// executed.
func (e *Engine) Run(limit Time) uint64 {
	var n uint64
	e.stopped = false
	for !e.stopped {
		// Peek for the limit check without popping dead events eagerly.
		if limit != 0 {
			live := false
			for e.queue.Len() > 0 {
				top := e.queue[0]
				if top.dead {
					heap.Pop(&e.queue)
					continue
				}
				live = top.at <= limit
				break
			}
			if !live {
				break
			}
		}
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
