package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses source text into a program. Errors carry the 1-based
// source line number.
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: make(map[string]int)}
	type patch struct {
		instr int
		label string
		line  int
	}
	var patches []patch

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// Labels (possibly followed by an instruction on the same line).
		for {
			trimmed := strings.TrimSpace(line)
			if i := strings.Index(trimmed, ":"); i >= 0 && isIdent(trimmed[:i]) {
				label := trimmed[:i]
				if _, dup := p.Labels[label]; dup {
					return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, label)
				}
				p.Labels[label] = len(p.Instrs)
				line = trimmed[i+1:]
				continue
			}
			break
		}
		fields := tokenize(line)
		if len(fields) == 0 {
			continue
		}
		ins, labelRef, err := parseInstr(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
		}
		ins.line = lineNo + 1
		if labelRef != "" {
			patches = append(patches, patch{instr: len(p.Instrs), label: labelRef, line: lineNo + 1})
		}
		p.Instrs = append(p.Instrs, ins)
	}

	for _, pt := range patches {
		target, ok := p.Labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", pt.line, pt.label)
		}
		p.Instrs[pt.instr].Target = target
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("empty program")
	}
	return p, nil
}

// MustAssemble is Assemble, panicking on error (for fixed programs).
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic("asm: " + err.Error())
	}
	return p
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, "#;"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// tokenize splits an instruction line into mnemonic and operands.
func tokenize(line string) []string {
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	mnemEnd := strings.IndexAny(line, " \t")
	if mnemEnd < 0 {
		return []string{strings.ToLower(line)}
	}
	out := []string{strings.ToLower(line[:mnemEnd])}
	for _, op := range strings.Split(line[mnemEnd:], ",") {
		op = strings.TrimSpace(op)
		if op != "" {
			out = append(out, op)
		}
	}
	return out
}

// parseInstr decodes one tokenized instruction, returning an unresolved
// label reference for branches/jumps.
func parseInstr(f []string) (Instr, string, error) {
	need := func(n int) error {
		if len(f)-1 != n {
			return fmt.Errorf("%s expects %d operands, got %d", f[0], n, len(f)-1)
		}
		return nil
	}
	var ins Instr
	switch f[0] {
	case "li":
		if err := need(2); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		imm, err := parseImm(f[2])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: LI, Rd: rd, Imm: imm}, "", nil

	case "move":
		if err := need(2); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		rs, err := parseReg(f[2])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: MOVE, Rd: rd, Rs: rs}, "", nil

	case "lw", "ll", "ldex":
		if err := need(2); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		off, rs, err := parseMem(f[2])
		if err != nil {
			return ins, "", err
		}
		op := map[string]Opcode{"lw": LW, "ll": LL, "ldex": LDEX}[f[0]]
		return Instr{Op: op, Rd: rd, Rs: rs, Imm: off}, "", nil

	case "sw", "sc":
		if err := need(2); err != nil {
			return ins, "", err
		}
		rt, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		off, rs, err := parseMem(f[2])
		if err != nil {
			return ins, "", err
		}
		op := SW
		if f[0] == "sc" {
			op = SC
		}
		return Instr{Op: op, Rt: rt, Rs: rs, Imm: off}, "", nil

	case "dropc":
		if err := need(1); err != nil {
			return ins, "", err
		}
		off, rs, err := parseMem(f[1])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: DROPC, Rs: rs, Imm: off}, "", nil

	case "faa", "fas", "faor":
		if err := need(3); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		rt, err := parseReg(f[2])
		if err != nil {
			return ins, "", err
		}
		off, rs, err := parseMem(f[3])
		if err != nil {
			return ins, "", err
		}
		op := map[string]Opcode{"faa": FAA, "fas": FAS, "faor": FAOR}[f[0]]
		return Instr{Op: op, Rd: rd, Rt: rt, Rs: rs, Imm: off}, "", nil

	case "tas":
		if err := need(2); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		off, rs, err := parseMem(f[2])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: TAS, Rd: rd, Rs: rs, Imm: off}, "", nil

	case "cas":
		if err := need(4); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		re, err := parseReg(f[2])
		if err != nil {
			return ins, "", err
		}
		rn, err := parseReg(f[3])
		if err != nil {
			return ins, "", err
		}
		off, rs, err := parseMem(f[4])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: CAS, Rd: rd, Re: re, Rt: rn, Rs: rs, Imm: off}, "", nil

	case "addu", "subu", "or", "and", "xor", "sltu":
		if err := need(3); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		rs, err := parseReg(f[2])
		if err != nil {
			return ins, "", err
		}
		rt, err := parseReg(f[3])
		if err != nil {
			return ins, "", err
		}
		op := map[string]Opcode{"addu": ADDU, "subu": SUBU, "or": OR, "and": AND, "xor": XOR, "sltu": SLTU}[f[0]]
		return Instr{Op: op, Rd: rd, Rs: rs, Rt: rt}, "", nil

	case "addiu", "ori", "andi", "sltiu", "sll", "srl":
		if err := need(3); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		rs, err := parseReg(f[2])
		if err != nil {
			return ins, "", err
		}
		imm, err := parseImm(f[3])
		if err != nil {
			return ins, "", err
		}
		op := map[string]Opcode{"addiu": ADDIU, "ori": ORI, "andi": ANDI, "sltiu": SLTIU, "sll": SLL, "srl": SRL}[f[0]]
		return Instr{Op: op, Rd: rd, Rs: rs, Imm: imm}, "", nil

	case "beq", "bne":
		if err := need(3); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		rt, err := parseReg(f[2])
		if err != nil {
			return ins, "", err
		}
		op := BEQ
		if f[0] == "bne" {
			op = BNE
		}
		return Instr{Op: op, Rd: rd, Rt: rt}, f[3], nil

	case "blez", "bgtz":
		if err := need(2); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		op := BLEZ
		if f[0] == "bgtz" {
			op = BGTZ
		}
		return Instr{Op: op, Rd: rd}, f[2], nil

	case "j":
		if err := need(1); err != nil {
			return ins, "", err
		}
		return Instr{Op: J}, f[1], nil

	case "pause":
		if err := need(1); err != nil {
			return ins, "", err
		}
		imm, err := parseImm(f[1])
		if err != nil {
			return ins, "", err
		}
		if imm < 0 {
			return ins, "", fmt.Errorf("pause with negative count")
		}
		return Instr{Op: PAUSE, Imm: imm}, "", nil

	case "pauser":
		if err := need(1); err != nil {
			return ins, "", err
		}
		rs, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: PAUSER, Rs: rs}, "", nil

	case "rand":
		if err := need(2); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return ins, "", err
		}
		rs, err := parseReg(f[2])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: RAND, Rd: rd, Rs: rs}, "", nil

	case "nop":
		if err := need(0); err != nil {
			return ins, "", err
		}
		return Instr{Op: NOP}, "", nil

	case "halt":
		if err := need(0); err != nil {
			return ins, "", err
		}
		return Instr{Op: HALT}, "", nil
	}
	return ins, "", fmt.Errorf("unknown mnemonic %q", f[0])
}

func parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "$") {
		return 0, fmt.Errorf("register %q must start with $", s)
	}
	name := strings.ToLower(s[1:])
	if r, ok := regNames[name]; ok {
		return r, nil
	}
	n, err := strconv.Atoi(name)
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseMem parses "off($reg)" (offset optional).
func parseMem(s string) (int32, Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q, want off($reg)", s)
	}
	var off int32
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}
