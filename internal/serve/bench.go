package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// Benchmark bodies for the serving layer, exported as ordinary
// func(*testing.B) (the hostbench idiom) so bench_test.go and cmd/dsmload
// -bench can both run them. All three drive the handler in process through
// httptest recorders — no sockets — so they measure the serving stack
// (parse, hash, cache, coalesce, encode), not the kernel's TCP path.

// benchSpec matches the hostbench MachineRun scale: 8 processors, 3
// rounds of the contended lock-free counter.
const benchSpec = `{"app":"counter","procs":8,"c":8,"rounds":3,"seed":%SEED%}`

func benchRequest(h http.Handler, body string) int {
	req := httptest.NewRequest(http.MethodPost, "/v1/sim", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code
}

func specWithSeed(seed string) string {
	return strings.Replace(benchSpec, "%SEED%", seed, 1)
}

// BenchServeHit measures the pure cache-hit path: spec parse + canonical
// hash + LRU lookup + response write, no simulation.
func BenchServeHit(b *testing.B) {
	b.ReportAllocs()
	s := New(Config{Workers: 2})
	defer s.Close()
	h := s.Handler()
	spec := specWithSeed("1")
	if code := benchRequest(h, spec); code != http.StatusOK { // warm the cache
		b.Fatalf("warmup = %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchRequest(h, spec); code != http.StatusOK {
			b.Fatalf("code = %d", code)
		}
	}
	if m := s.Metrics(); m.Runs != 1 {
		b.Fatalf("Runs = %d, want 1 (everything after warmup must hit)", m.Runs)
	}
}

// BenchServeMiss measures the full miss path: every iteration presents a
// never-seen spec (fresh seed), so each request runs one simulation on the
// worker pool and encodes its report.
func BenchServeMiss(b *testing.B) {
	b.ReportAllocs()
	s := New(Config{Workers: 2, CacheEntries: 16})
	defer s.Close()
	h := s.Handler()
	var seed atomic.Uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := specWithSeed(strconv.FormatUint(seed.Add(1), 10))
		if code := benchRequest(h, spec); code != http.StatusOK {
			b.Fatalf("code = %d", code)
		}
	}
}

// BenchServeDup90 is the serving benchmark of record: concurrent clients,
// 90% of requests drawn from a fixed working set (cache hits after first
// touch) and 10% never-seen specs, approximating cmd/dsmload's default
// profile without sockets. Reports the achieved hit ratio.
func BenchServeDup90(b *testing.B) {
	b.ReportAllocs()
	s := New(Config{Workers: 0, Queue: 256})
	defer s.Close()
	h := s.Handler()
	base := make([]string, 16)
	for i := range base {
		base[i] = specWithSeed(strconv.FormatUint(uint64(i+1), 10))
	}
	var unique atomic.Uint64
	unique.Store(uint64(len(base)))
	var n atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := n.Add(1)
			var spec string
			if i%10 == 0 { // 10% unique
				spec = specWithSeed(strconv.FormatUint(unique.Add(1), 10))
			} else {
				spec = base[i%uint64(len(base))]
			}
			code := benchRequest(h, spec)
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				b.Fatalf("code = %d", code)
			}
		}
	})
	m := s.Metrics()
	if m.Requests > 0 {
		b.ReportMetric(float64(m.CacheHits)/float64(m.Requests), "hit-ratio")
	}
}
