package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dsm/internal/serve"
)

// quickSpec finishes in well under a millisecond, keeping handler tests
// fast (same reduced scale the serve tests use).
const quickSpec = `{"app":"counter","procs":4,"rounds":2}`

// testFleet is N real serve backends on loopback listeners behind one
// Router driven in-process.
type testFleet struct {
	backends []*serve.Server
	servers  []*httptest.Server
	urls     []string
	rt       *Router
}

// newTestFleet boots n backends, optionally wrapping each handler (wrap
// may be nil), and fronts them with a router built from cfg (Backends is
// filled in here).
func newTestFleet(t *testing.T, n int, cfg Config, wrap func(http.Handler) http.Handler) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		b := serve.New(serve.Config{Workers: 2})
		h := http.Handler(b.Handler())
		if wrap != nil {
			h = wrap(h)
		}
		srv := httptest.NewServer(h)
		f.backends = append(f.backends, b)
		f.servers = append(f.servers, srv)
		f.urls = append(f.urls, srv.URL)
	}
	t.Cleanup(func() {
		for i := range f.servers {
			f.servers[i].Close()
			f.backends[i].Close()
		}
	})
	cfg.Backends = append([]string(nil), f.urls...)
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	f.rt = rt
	return f
}

func (f *testFleet) do(method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	f.rt.Handler().ServeHTTP(w, req)
	return w
}

// backendFor returns the test-fleet index of a backend URL.
func (f *testFleet) backendFor(url string) int {
	for i, u := range f.urls {
		if u == url {
			return i
		}
	}
	return -1
}

func (f *testFleet) totalRuns() uint64 {
	var runs uint64
	for _, b := range f.backends {
		runs += b.Metrics().Runs
	}
	return runs
}

func specKey(t *testing.T, spec string) string {
	t.Helper()
	var sp serve.Spec
	if err := json.Unmarshal([]byte(spec), &sp); err != nil {
		t.Fatal(err)
	}
	sp, err := sp.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return sp.Key()
}

func TestRouterMissThenHitByteIdenticalToBackend(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)

	first := f.do(http.MethodPost, "/v1/sim", quickSpec)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first = %d X-Cache=%q: %s", first.Code, first.Header().Get("X-Cache"), first.Body)
	}
	second := f.do(http.MethodPost, "/v1/sim", quickSpec)
	if second.Code != http.StatusOK || second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second = %d X-Cache=%q", second.Code, second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("router hit differs from router miss")
	}

	// The routed response must be byte-identical to what the owning
	// backend answers directly.
	owner := f.rt.Owners(specKey(t, quickSpec))[0]
	resp, err := http.Post(owner+"/v1/sim", "application/json", strings.NewReader(quickSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var direct bytes.Buffer
	direct.ReadFrom(resp.Body)
	if !bytes.Equal(direct.Bytes(), first.Body.Bytes()) {
		t.Fatalf("router body differs from direct backend body:\n%s\nvs\n%s", first.Body, &direct)
	}
	if first.Header().Get("X-Fleet-Backend") != owner {
		t.Fatalf("served by %q, ring owner is %q", first.Header().Get("X-Fleet-Backend"), owner)
	}
	if runs := f.totalRuns(); runs != 1 {
		t.Fatalf("fleet ran %d simulations, want 1", runs)
	}
	m := f.rt.Metrics()
	if m.Requests != 2 || m.Misses != 1 || m.Hits != 1 {
		t.Fatalf("router metrics = %+v", m)
	}
}

func TestRouterGetAndHeadProbe(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)
	if w := f.do(http.MethodHead, "/v1/sim?app=counter&procs=4&rounds=2", ""); w.Code != http.StatusNotFound {
		t.Fatalf("cold fleet HEAD = %d", w.Code)
	}
	if w := f.do(http.MethodGet, "/v1/sim?app=counter&procs=4&rounds=2", ""); w.Code != http.StatusOK {
		t.Fatalf("GET via router = %d: %s", w.Code, w.Body)
	}
	w := f.do(http.MethodHead, "/v1/sim?app=counter&procs=4&rounds=2", "")
	if w.Code != http.StatusOK || w.Body.Len() != 0 {
		t.Fatalf("warm fleet HEAD = %d body=%q", w.Code, w.Body)
	}
	if runs := f.totalRuns(); runs != 1 {
		t.Fatalf("probes cost %d extra simulations", runs-1)
	}
}

func TestFleetWideSingleFlight(t *testing.T) {
	// Park every backend's simulate path (probes stay open) so concurrent
	// identical router requests must pile onto one flight call: exactly
	// one upstream simulation request fleet-wide.
	gate := make(chan struct{})
	wrap := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sim" && r.Method == http.MethodPost && r.URL.Query().Get("probe") != "1" {
				<-gate
			}
			h.ServeHTTP(w, r)
		})
	}
	f := newTestFleet(t, 2, Config{}, wrap)

	const n = 8
	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = f.do(http.MethodPost, "/v1/sim", quickSpec)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.rt.Metrics().Coalesced != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("requests did not coalesce: %+v", f.rt.Metrics())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	caches := map[string]int{}
	for i, w := range recs {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), recs[0].Body.Bytes()) {
			t.Fatalf("request %d body differs", i)
		}
		caches[w.Header().Get("X-Cache")]++
	}
	if caches["miss"] != 1 || caches["coalesced"] != n-1 {
		t.Fatalf("X-Cache spread = %v", caches)
	}
	if runs := f.totalRuns(); runs != 1 {
		t.Fatalf("fleet ran %d simulations for one key, want 1", runs)
	}
	// The backends saw exactly one real /v1/sim request (plus probes):
	// followers never went upstream.
	var upstreamSims uint64
	for _, b := range f.backends {
		upstreamSims += b.Metrics().Requests
	}
	if upstreamSims != 1 {
		t.Fatalf("backends saw %d simulate requests, want 1", upstreamSims)
	}
}

func TestPeerFillTurnsPrimaryMissIntoHit(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)
	key := specKey(t, quickSpec)
	owners := f.rt.Owners(key)
	secondary := f.backendFor(owners[1])

	// Seed only the secondary owner's cache, as if the key's primary just
	// changed in a membership event.
	resp, err := http.Post(f.urls[secondary]+"/v1/sim", "application/json", strings.NewReader(quickSpec))
	if err != nil {
		t.Fatal(err)
	}
	var seeded bytes.Buffer
	seeded.ReadFrom(resp.Body)
	resp.Body.Close()

	// The routed request must be rescued by the peer: a hit, byte-identical,
	// with no second simulation anywhere in the fleet.
	w := f.do(http.MethodPost, "/v1/sim", quickSpec)
	if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("peer-fill request = %d X-Cache=%q", w.Code, w.Header().Get("X-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), seeded.Bytes()) {
		t.Fatal("peer-filled body differs from the seeded response")
	}
	if runs := f.totalRuns(); runs != 1 {
		t.Fatalf("peer fill re-simulated: %d runs", runs)
	}
	m := f.rt.Metrics()
	if m.PeerFills != 1 || m.Hits != 1 || m.Misses != 0 {
		t.Fatalf("router metrics = %+v", m)
	}

	// The fill must have landed on the primary: a direct probe there now
	// hits without the router's help.
	primary := f.backendFor(owners[0])
	pm := f.backends[primary].Metrics()
	if pm.Fills != 1 {
		t.Fatalf("primary fills = %d, want 1", pm.Fills)
	}
	preq, err := http.Post(f.urls[primary]+"/v1/sim?probe=1", "application/json", strings.NewReader(quickSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer preq.Body.Close()
	var filled bytes.Buffer
	filled.ReadFrom(preq.Body)
	if preq.StatusCode != http.StatusOK || !bytes.Equal(filled.Bytes(), seeded.Bytes()) {
		t.Fatalf("primary probe after fill = %d (identical=%v)", preq.StatusCode, bytes.Equal(filled.Bytes(), seeded.Bytes()))
	}
}

func TestHotKeyReplicatesToAllBackends(t *testing.T) {
	f := newTestFleet(t, 3, Config{HotThreshold: 3}, nil)
	for i := 0; i < 6; i++ {
		if w := f.do(http.MethodPost, "/v1/sim", quickSpec); w.Code != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, w.Code, w.Body)
		}
	}
	if runs := f.totalRuns(); runs != 1 {
		t.Fatalf("hot key cost %d simulations, want 1", runs)
	}
	// After promotion every backend must hold the bytes: probe each
	// directly, no router in the path.
	for i, u := range f.urls {
		resp, err := http.Post(u+"/v1/sim?probe=1", "application/json", strings.NewReader(quickSpec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %d missing the hot key (probe=%d)", i, resp.StatusCode)
		}
	}
	m := f.rt.Metrics()
	if m.Replications == 0 {
		t.Fatalf("no replications recorded: %+v", m)
	}
	if m.HotKeys != 1 {
		t.Fatalf("hot keys = %d", m.HotKeys)
	}
}

func TestRouter429PropagatesUnchanged(t *testing.T) {
	// A backend at capacity answers 429 + Retry-After; the router must
	// relay both untouched so client backoff (dsmload's capped
	// exponential) engages end-to-end.
	body := `{"error":"simulation queue full (1 queued); retry shortly"}` + "\n"
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("probe") == "1" {
			w.Header().Set("X-Cache", "miss")
			http.Error(w, `{"error":"not cached"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(body))
	}))
	defer busy.Close()
	rt, err := New(Config{Backends: []string{busy.URL}})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sim", strings.NewReader(quickSpec))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want the backend's 7", got)
	}
	if w.Body.String() != body {
		t.Fatalf("429 body rewritten: %q", w.Body)
	}
	if m := rt.Metrics(); m.Rejected != 1 {
		t.Fatalf("Rejected = %d", m.Rejected)
	}
}

func TestRouterBadRequestsAndDrain(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)
	if w := f.do(http.MethodPost, "/v1/sim", `{"app":"quicksort"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad app = %d", w.Code)
	}
	if w := f.do(http.MethodDelete, "/v1/sim", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("method = %d", w.Code)
	}
	if w := f.do(http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
	var snap Snapshot
	if w := f.do(http.MethodGet, "/metrics", ""); w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	} else if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil || snap.Backends != 2 {
		t.Fatalf("metrics body: %v (%s)", err, w.Body)
	}
	f.rt.Close()
	if w := f.do(http.MethodGet, "/healthz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close = %d", w.Code)
	}
	if w := f.do(http.MethodPost, "/v1/sim", quickSpec); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("sim after Close = %d", w.Code)
	}
	if w := f.do(http.MethodPost, "/v1/sweep", `{"points":[{}]}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("sweep after Close = %d", w.Code)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := New(Config{Backends: []string{"not a url"}}); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := New(Config{Backends: []string{"http://a:1", "http://a:1/"}}); err == nil {
		t.Fatal("duplicate backend accepted")
	}
}

func fleetPlan(n int) string {
	points := make([]string, n)
	for i := range points {
		points[i] = fmt.Sprintf(`{"app":"counter","procs":4,"rounds":2,"seed":%d}`, i+1)
	}
	return `{"points":[` + strings.Join(points, ",") + `]}`
}

func TestRouterSweepByteIdenticalToSingleBackend(t *testing.T) {
	plan := fleetPlan(8)

	// Reference: one standalone backend, no router anywhere.
	solo := serve.New(serve.Config{Workers: 2})
	defer solo.Close()
	ref := httptest.NewRecorder()
	solo.Handler().ServeHTTP(ref, httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(plan)))
	if ref.Code != http.StatusOK {
		t.Fatalf("solo sweep = %d: %s", ref.Code, ref.Body)
	}

	// Routed: the same plan split across two backends and re-interleaved.
	f := newTestFleet(t, 2, Config{}, nil)
	w := f.do(http.MethodPost, "/v1/sweep", plan)
	if w.Code != http.StatusOK {
		t.Fatalf("routed sweep = %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), ref.Body.Bytes()) {
		t.Fatalf("routed sweep differs from single-backend sweep:\n%s\nvs\n%s", w.Body, ref.Body)
	}
	if got, want := w.Header().Get("X-Sweep-Points"), ref.Header().Get("X-Sweep-Points"); got != want {
		t.Fatalf("X-Sweep-Points = %s, want %s", got, want)
	}
	// Both backends actually participated: the plan really was split.
	m := f.rt.Metrics()
	if m.BackendRequests[0] == 0 || m.BackendRequests[1] == 0 {
		t.Fatalf("plan not split across backends: %v", m.BackendRequests)
	}

	// A re-POST is all hits and still byte-identical.
	again := f.do(http.MethodPost, "/v1/sweep", plan)
	if again.Header().Get("X-Sweep-Hits") != "8" {
		t.Fatalf("warm sweep hits = %s", again.Header().Get("X-Sweep-Hits"))
	}
	if !bytes.Equal(again.Body.Bytes(), ref.Body.Bytes()) {
		t.Fatal("warm routed sweep drifted")
	}
}

func TestRouterSweepSurvivesBackendFailure(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)
	plan := fleetPlan(8)

	// Find which backend owns which points, then kill one backend.
	var sp serve.Spec
	_ = sp
	f.servers[1].Close()

	w := f.do(http.MethodPost, "/v1/sweep", plan)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep with dead backend = %d", w.Code)
	}
	lines := strings.Split(strings.TrimSuffix(w.Body.String(), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want one per point", len(lines))
	}
	okLines, errLines := 0, 0
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line not JSON: %q", ln)
		}
		if _, isErr := obj["error"]; isErr {
			errLines++
			if obj["key"] == "" {
				t.Fatalf("error line without key: %q", ln)
			}
		} else {
			okLines++
		}
	}
	if okLines == 0 || errLines == 0 {
		t.Fatalf("expected a mix of served and failed points, got %d ok / %d err", okLines, errLines)
	}
}
