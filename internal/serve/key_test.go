package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// keyTestSpecs covers every field shape the key rendering must get right:
// defaults, booleans, large seeds, and — the delicate one — floats, which
// must render identically under strconv's shortest 'g' form and fmt's %g.
var keyTestSpecs = []Spec{
	{},
	{App: "counter", Policy: "INV", Prim: "FAP", Variant: "INV", Procs: 16, Contention: 1, WriteRun: 1, Rounds: 6},
	{App: "tts", Policy: "UPD", Prim: "CAS", Variant: "INVd", LoadEx: true, Drop: true, Procs: 64, Contention: 64, Rounds: 256, Seed: ^uint64(0)},
	{App: "counter", WriteRun: 0.5},
	{App: "counter", WriteRun: 1.25},
	{App: "counter", WriteRun: 63.999999999},
	{App: "counter", WriteRun: 1e-3},
	{App: "tclosure", Procs: 32, Size: 64, Seed: 1234567890123456789},
	{App: "mcs", Policy: "UNC", Prim: "LLSC", Procs: 1, Contention: 1, WriteRun: 3.0000000000000004},
}

// TestKeyTextMatchesFmt pins the strconv-based key rendering to the
// fmt.Sprintf form the content address originally hashed. A divergence
// here silently severs every cached result and cross-version fill, so the
// fmt form stays in the test as the specification.
func TestKeyTextMatchesFmt(t *testing.T) {
	for _, sp := range keyTestSpecs {
		want := fmt.Sprintf(
			"app=%s policy=%s prim=%s cas=%s ldex=%t drop=%t procs=%d c=%d a=%g rounds=%d size=%d seed=%d",
			sp.App, sp.Policy, sp.Prim, sp.Variant, sp.LoadEx, sp.Drop,
			sp.Procs, sp.Contention, sp.WriteRun, sp.Rounds, sp.Size, sp.Seed)
		if got := string(sp.appendKeyText(nil)); got != want {
			t.Errorf("key text diverged:\n got %q\nwant %q", got, want)
		}
		if len(want) > keyTextMax {
			t.Errorf("key text %q is %d bytes, over the %d stack budget", want, len(want), keyTextMax)
		}
	}
}

// TestAppendKeyMatchesKey checks the incremental form against the
// string-returning one across the same spec set.
func TestAppendKeyMatchesKey(t *testing.T) {
	for _, sp := range keyTestSpecs {
		if got := string(sp.appendKey(nil)); got != sp.Key() {
			t.Errorf("appendKey %q != Key %q for %+v", got, sp.Key(), sp)
		}
	}
}

// TestRawQueryGet pins the in-place query scanner to url.Values semantics
// for the shapes the API sees, including the rare escaped ones.
func TestRawQueryGet(t *testing.T) {
	cases := []struct {
		raw, name string
		want      string
		found     bool
	}{
		{"procs=8&c=4", "procs", "8", true},
		{"procs=8&c=4", "c", "4", true},
		{"procs=8&c=4", "rounds", "", false},
		{"procs=", "procs", "", true},
		{"procs", "procs", "", true},
		{"a=1&a=2", "a", "1", true},      // first occurrence wins, like Values.Get
		{"app=counter%20x", "app", "counter x", true}, // percent escape
		{"app=counter+x", "app", "counter x", true},   // plus escape
		{"pro%63s=8", "procs", "8", true},             // escaped key still matches
		{"app=%zz&procs=8", "procs", "8", true},       // malformed pair skipped
		{"app=%zz", "app", "", false},
		{"a=1;b=2&c=3", "c", "3", true}, // semicolon pair dropped, like ParseQuery
		{"a=1;b=2", "a", "", false},
		{"", "procs", "", false},
	}
	for _, tc := range cases {
		got, found := rawQueryGet(tc.raw, tc.name)
		if got != tc.want || found != tc.found {
			t.Errorf("rawQueryGet(%q, %q) = (%q, %v), want (%q, %v)",
				tc.raw, tc.name, got, found, tc.want, tc.found)
		}
	}
}

// TestGetSpecParsingUnchanged cross-checks the manual RawQuery parse
// against the url.Values-based parse it replaced, via a request pair.
func TestGetSpecParsingUnchanged(t *testing.T) {
	urls := []string{
		"/v1/sim?app=tts&policy=UPD&prim=CAS&cas=INVd&ldex=true&drop=1&procs=8&c=4&a=1&rounds=3&size=16&seed=42",
		"/v1/sim?procs=8",
		"/v1/sim",
		"/v1/sim?a=2.5",
	}
	for _, u := range urls {
		r := httptest.NewRequest(http.MethodGet, u, nil)
		got, err := ParseSpecRequest(r)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		q := r.URL.Query()
		want := Spec{App: q.Get("app"), Policy: q.Get("policy"), Prim: q.Get("prim"), Variant: q.Get("cas")}
		if q.Has("ldex") {
			want.LoadEx = true
		}
		if q.Has("drop") {
			want.Drop = true
		}
		fmt.Sscan(q.Get("procs"), &want.Procs)
		fmt.Sscan(q.Get("c"), &want.Contention)
		fmt.Sscan(q.Get("a"), &want.WriteRun)
		fmt.Sscan(q.Get("rounds"), &want.Rounds)
		fmt.Sscan(q.Get("size"), &want.Size)
		fmt.Sscan(q.Get("seed"), &want.Seed)
		if got != want {
			t.Errorf("%s: parsed %+v, want %+v", u, got, want)
		}
	}
}
