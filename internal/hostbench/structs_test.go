package hostbench

import "testing"

func TestMeasureStructuresCoversGrid(t *testing.T) {
	pts := MeasureStructures(2)
	if len(pts) != 12 {
		t.Fatalf("got %d cells, want 12", len(pts))
	}
	seen := map[string]bool{}
	casRetries := false
	for _, p := range pts {
		key := p.App + "/" + p.Policy + "/" + p.Prim
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
		if p.Ops == 0 || p.SimElapsed == 0 || p.OpsPerSec <= 0 {
			t.Fatalf("cell %s has empty measurements: %+v", key, p)
		}
		if p.Prim == "CAS" && p.Retries > 0 {
			casRetries = true
		}
	}
	if !casRetries {
		t.Fatal("no contended CAS cell recorded a retry")
	}
}
