// Transitive closure: the paper's real application (its figure 1), run at
// full machine scale. A Floyd-Warshall-style boolean closure distributes
// variable-size jobs through a lock-free counter and synchronizes rounds
// with the scalable tree barrier, comparing the counter's primitive
// families and coherence policies.
package main

import (
	"fmt"

	"dsm"
	"dsm/internal/apps"
	"dsm/internal/locks"
)

func main() {
	const size, seed = 16, 11

	type variant struct {
		name   string
		policy dsm.Policy
		prim   dsm.Prim
	}
	variants := []variant{
		{"UNC fetch_and_add", dsm.UNC, dsm.FAP},
		{"INV fetch_and_add", dsm.INV, dsm.FAP},
		{"INV compare_and_swap", dsm.INV, dsm.CAS},
		{"INV load_linked/store_conditional", dsm.INV, dsm.LLSC},
	}

	want := apps.TClosureReference(size, seed, 4)
	fmt.Printf("transitive closure of a %d-vertex graph on 64 processors (reference: %d reachable pairs)\n",
		size, want)

	for _, v := range variants {
		m := dsm.New64()
		res := apps.TClosure(m, apps.TClosureConfig{
			Size:   size,
			Policy: v.policy,
			Opts:   locks.Options{Prim: v.prim},
			Seed:   seed,
		})
		status := "ok"
		if res.Reachable != want {
			status = fmt.Sprintf("WRONG (%d)", res.Reachable)
		}
		hist := m.System().Contention().Histogram()
		fmt.Printf("  %-36s %9d cycles  result=%s  peak contention=%d\n",
			v.name, res.Elapsed, status, hist.Max())
	}
}
