package core

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/mesh"
	"dsm/internal/proto"
)

// msgKind and its constants are the protocol vocabulary from
// internal/proto; the m-prefixed aliases keep the controller code and
// traces readable.
type msgKind = proto.MsgKind

const (
	mRead      = proto.KRead
	mReadEx    = proto.KReadEx
	mCASHome   = proto.KCASHome
	mSCHome    = proto.KSCHome
	mWB        = proto.KWB
	mDropS     = proto.KDropS
	mUncOp     = proto.KUncOp
	mUpdRead   = proto.KUpdRead
	mUpdOp     = proto.KUpdOp
	mDataS     = proto.KDataS
	mDataE     = proto.KDataE
	mNak       = proto.KNak
	mCASFail   = proto.KCASFail
	mSCFail    = proto.KSCFail
	mUncReply  = proto.KUncReply
	mUpdReply  = proto.KUpdReply
	mInval     = proto.KInval
	mInvAck    = proto.KInvAck
	mRecallE   = proto.KRecallE
	mRecallS   = proto.KRecallS
	mCASFwd    = proto.KCASFwd
	mWBRecall  = proto.KWBRecall
	mWBShare   = proto.KWBShare
	mRecallNak = proto.KRecallNak
	mCASRel    = proto.KCASRel
	mUpdate    = proto.KUpdate
	mUpdAck    = proto.KUpdAck
)

// msg is one protocol message. A single struct covers all kinds; unused
// fields are zero.
//
// Messages are recycled through the owning System's free list: newMsg
// produces one, and the controller that consumes a message returns it with
// freeMsg. Ownership transfers with delivery — the receiver frees the
// message unless it retains it (the home's busy state keeps the original
// request across a recall). Every creation site fully overwrites the struct
// (*m = msg{...}), so recycled messages carry no stale fields.
type msg struct {
	kind msgKind
	addr arch.Addr   // word address of the operation (block derived)
	src  mesh.NodeID // sender
	// Requester is the node whose processor issued the transaction this
	// message belongs to (acks from third parties flow directly to it).
	requester mesh.NodeID

	op         OpKind // original operation (requests and replies)
	val, val2  arch.Word
	data       arch.BlockData // block payload for data-bearing kinds
	hasData    bool
	acks       int       // mDataE/mUpdReply: acknowledgments to expect
	ok         bool      // operation success (CAS/SC), or compare outcome
	serial     arch.Word // LL serial number (serial reservation scheme)
	hint       bool      // LL beyond-limit failure hint
	updWord    arch.Word // mUpdate: new value of the word at addr
	chain      int       // serialized network messages so far (Table 1)
	forwardVal arch.Word // mCASFwd/mRecallE carry the original operands
	forwardV2  arch.Word

	// Delayed-send routing: a controller that must respond one local step
	// after receiving (modeling its occupancy) builds the reply immediately
	// and schedules it through its preallocated send hook; the reply itself
	// carries where it is bound (see CacheCtl.sendLater).
	dst    mesh.NodeID
	toHome bool

	freed bool // double-free guard for the pool
}

// newMsg returns a zeroed message from the free list (or a fresh one).
func (s *System) newMsg() *msg {
	if n := len(s.msgPool); n > 0 {
		m := s.msgPool[n-1]
		s.msgPool[n-1] = nil
		s.msgPool = s.msgPool[:n-1]
		m.freed = false
		return m
	}
	return &msg{}
}

// freeMsg recycles a consumed message. Freeing the same message twice is a
// protocol-ownership bug and panics.
func (s *System) freeMsg(m *msg) {
	if m.freed {
		panic(fmt.Sprintf("core: double free of %v message for %#x", m.kind, m.addr))
	}
	m.freed = true
	s.msgPool = append(s.msgPool, m)
}

// payloadBytes estimates the message payload size for flit accounting:
// 8 bytes of address/operands for control messages, plus the 32-byte block
// for data-bearing messages (the paper's serial-number scheme notes that
// LL/SC message sizes grow by the serial size; we include 4 bytes for it).
func (m *msg) payloadBytes() int {
	n := 8
	switch m.kind {
	case mCASHome, mUncOp, mUpdOp, mCASFwd:
		n = 16 // two operands
	}
	if m.hasData {
		n += arch.BlockBytes
	}
	if m.serial != 0 || m.kind == mUncReply || m.kind == mUpdReply {
		n += 4
	}
	return n
}

// send routes a message and invokes the destination controller's handler on
// delivery, maintaining the serialized-chain count. All sends go through
// here so chain accounting cannot be forgotten. Delivery is scheduled
// through the destination controller's preallocated receive hook, so a send
// allocates nothing.
func (s *System) send(src, dst mesh.NodeID, m *msg, toHome bool) {
	m.src = src
	m.chain += s.net(src, dst)
	if s.tracer != nil {
		s.trace(src, "send", "%v -> n%02d addr=%#x chain=%d", m.kind, dst, m.addr, m.chain)
	}
	flits := s.mesh.Flits(m.payloadBytes())
	if toHome {
		s.mesh.SendArg(src, dst, flits, s.homes[dst].recvHook, m)
	} else {
		s.mesh.SendArg(src, dst, flits, s.caches[dst].recvHook, m)
	}
}
