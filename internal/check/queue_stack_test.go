package check

import (
	"strings"
	"testing"

	"dsm/internal/arch"
	"dsm/internal/sim"
)

func op(k Kind, proc int, invoke, respond sim.Time, v arch.Word) Op {
	return Op{Proc: proc, Invoke: invoke, Respond: respond, Kind: k, Value: v}
}

func hist(ops ...Op) *History {
	var h History
	for _, o := range ops {
		h.Record(o)
	}
	return &h
}

// ------------------------------------------------------------- queue ----

func TestQueueSequentialFIFOOK(t *testing.T) {
	h := hist(
		op(Enq, 0, 0, 5, 1),
		op(Enq, 0, 10, 15, 2),
		op(Deq, 0, 20, 25, 1),
		op(Deq, 0, 30, 35, 2),
		op(DeqEmpty, 0, 40, 45, 0),
	)
	if err := h.CheckQueue(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueConcurrentEnqueuesEitherOrderOK(t *testing.T) {
	// Overlapping enqueues may linearize in either order, so either
	// dequeue order is legal.
	h := hist(
		op(Enq, 0, 0, 100, 1),
		op(Enq, 1, 0, 100, 2),
		op(Deq, 2, 200, 210, 2),
		op(Deq, 2, 220, 230, 1),
	)
	if err := h.CheckQueue(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFOInversionDetected(t *testing.T) {
	// enq(1) strictly precedes enq(2), yet 2 leaves strictly first.
	h := hist(
		op(Enq, 0, 0, 5, 1),
		op(Enq, 0, 10, 15, 2),
		op(Deq, 1, 20, 25, 2),
		op(Deq, 1, 30, 35, 1),
	)
	err := h.CheckQueue()
	if err == nil || !strings.Contains(err.Error(), "FIFO") {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueSkippedValueDetected(t *testing.T) {
	// 2 dequeued while the strictly-earlier 1 never leaves.
	h := hist(
		op(Enq, 0, 0, 5, 1),
		op(Enq, 0, 10, 15, 2),
		op(Deq, 1, 20, 25, 2),
	)
	if err := h.CheckQueue(); err == nil {
		t.Fatal("skipped FIFO predecessor accepted")
	}
}

func TestQueuePhantomValueDetected(t *testing.T) {
	h := hist(op(Deq, 0, 0, 5, 7))
	err := h.CheckQueue()
	if err == nil || !strings.Contains(err.Error(), "never enqueued") {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueDoubleDequeueDetected(t *testing.T) {
	h := hist(
		op(Enq, 0, 0, 5, 1),
		op(Deq, 1, 10, 15, 1),
		op(Deq, 2, 20, 25, 1),
	)
	err := h.CheckQueue()
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueBadEmptyDetected(t *testing.T) {
	// 1 is in the queue for the empty dequeue's whole duration.
	h := hist(
		op(Enq, 0, 0, 5, 1),
		op(DeqEmpty, 1, 10, 15, 0),
		op(Deq, 2, 20, 25, 1),
	)
	err := h.CheckQueue()
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueEmptyOverlappingDequeueOK(t *testing.T) {
	// The empty dequeue overlaps deq(1), so it may linearize after it.
	h := hist(
		op(Enq, 0, 0, 5, 1),
		op(Deq, 1, 10, 30, 1),
		op(DeqEmpty, 2, 20, 40, 0),
	)
	if err := h.CheckQueue(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueNotDifferentiatedRejected(t *testing.T) {
	h := hist(
		op(Enq, 0, 0, 5, 1),
		op(Enq, 0, 10, 15, 1),
	)
	err := h.CheckQueue()
	if err == nil || !strings.Contains(err.Error(), "differentiated") {
		t.Fatalf("err = %v", err)
	}
}

func TestQueueRejectsForeignKinds(t *testing.T) {
	h := hist(op(Push, 0, 0, 5, 1))
	if err := h.CheckQueue(); err == nil {
		t.Fatal("stack op accepted in queue history")
	}
}

// ------------------------------------------------------------- stack ----

func TestStackSequentialLIFOOK(t *testing.T) {
	h := hist(
		op(Push, 0, 0, 5, 1),
		op(Push, 0, 10, 15, 2),
		op(Pop, 0, 20, 25, 2),
		op(Pop, 0, 30, 35, 1),
		op(PopEmpty, 0, 40, 45, 0),
	)
	if err := h.CheckStack(); err != nil {
		t.Fatal(err)
	}
}

func TestStackConcurrentPushesEitherOrderOK(t *testing.T) {
	h := hist(
		op(Push, 0, 0, 100, 1),
		op(Push, 1, 0, 100, 2),
		op(Pop, 2, 200, 210, 1),
		op(Pop, 2, 220, 230, 2),
	)
	if err := h.CheckStack(); err != nil {
		t.Fatal(err)
	}
}

func TestStackFIFOOrderRejected(t *testing.T) {
	// Strictly ordered pushes popped oldest-first: a queue, not a stack.
	h := hist(
		op(Push, 0, 0, 5, 1),
		op(Push, 0, 10, 15, 2),
		op(Pop, 1, 20, 25, 1),
		op(Pop, 1, 30, 35, 2),
	)
	if err := h.CheckStack(); err == nil {
		t.Fatal("FIFO pop order accepted as LIFO")
	}
}

func TestStackPhantomPopRejected(t *testing.T) {
	h := hist(op(Pop, 0, 0, 5, 9))
	if err := h.CheckStack(); err == nil {
		t.Fatal("pop of never-pushed value accepted")
	}
}

func TestStackBadEmptyRejected(t *testing.T) {
	h := hist(
		op(Push, 0, 0, 5, 1),
		op(PopEmpty, 1, 10, 15, 0),
		op(Pop, 2, 20, 25, 1),
	)
	if err := h.CheckStack(); err == nil {
		t.Fatal("empty pop with a resident value accepted")
	}
}

func TestStackInterleavedDeepHistoryOK(t *testing.T) {
	// A longer, per-proc-sequential interleaving that stays linearizable:
	// two procs alternate push/pop with overlap; values are per-proc.
	var h History
	for p := 0; p < 2; p++ {
		base := sim.Time(p) // offset to interleave
		for k := 0; k < 6; k++ {
			v := arch.Word(100*p + k)
			t0 := base + sim.Time(k*20)
			h.Record(op(Push, p, t0, t0+8, v))
			h.Record(op(Pop, p, t0+10, t0+18, v))
		}
	}
	if err := h.CheckStack(); err != nil {
		t.Fatal(err)
	}
}

func TestStackRejectsForeignKinds(t *testing.T) {
	h := hist(op(Enq, 0, 0, 5, 1))
	if err := h.CheckStack(); err == nil {
		t.Fatal("queue op accepted in stack history")
	}
}
