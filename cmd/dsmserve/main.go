// Command dsmserve runs the simulation service: an HTTP API over
// internal/serve that executes simulation specs on a bounded worker pool
// with a content-addressed result cache and single-flight coalescing.
//
//	dsmserve -addr :8080 -workers 8 -queue 64 -cache 1024
//
//	curl -s 'localhost:8080/v1/sim?app=counter&policy=UNC&prim=FAP&procs=16&c=8'
//	curl -s localhost:8080/v1/sim -d '{"app":"mcs","policy":"INV","prim":"CAS","ldex":true}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// requests and queued simulations complete, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof listener only
	"os"
	"os/signal"
	"syscall"
	"time"

	"dsm/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "queued simulations beyond the workers (0 = 64)")
		cache   = flag.Int("cache", 0, "result cache entries, LRU beyond (0 = 1024)")
		timeout = flag.Duration("timeout", 0, "per-request deadline (0 = 30s)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		pprof   = flag.String("pprof", "", "serve /debug/pprof on this address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()
	log.SetPrefix("dsmserve: ")
	log.SetFlags(0)

	if *pprof != "" {
		// Separate listener: profiling stays off the serving address, so
		// exposing it never widens the public API surface.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprof)
			log.Printf("pprof listener: %v", http.ListenAndServe(*pprof, nil))
		}()
	}

	s := serve.New(serve.Config{
		Workers:      *workers,
		Queue:        *queue,
		CacheEntries: *cache,
		Timeout:      *timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight handlers finish, then drain the
	// worker pool so every accepted simulation gets its response.
	log.Printf("draining (budget %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	s.Close()
	m := s.Metrics()
	fmt.Fprintf(os.Stderr, "dsmserve: served %d requests (%d hits, %d coalesced, %d runs), clean exit\n",
		m.Requests, m.CacheHits, m.Coalesced, m.Runs)
}
