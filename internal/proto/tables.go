package proto

import "fmt"

// The protocol as data: every controller decision is a row of guarded
// actions. An interpreter evaluates the rules of the matching table entry
// in order, fires the first rule whose guard holds, and executes that
// rule's actions left to right. A matching rule with no actions is an
// explicit "ignore" (stale message); no matching rule at all is a protocol
// error and the interpreter must panic.
//
// The tables are plain package-level arrays indexed by small enums, built
// once at package init and validated there, so interpreting them costs one
// array index plus a short rule scan per event — no maps, no interface
// calls, no per-event allocation.

// Prep names the cache-array probe an entry performs before its guards are
// evaluated; the probed line (if any) is the guards' and actions' operand.
type Prep uint8

const (
	PrepNone   Prep = iota // no probe
	PrepLookup             // probing counts as a use (touches LRU state)
	PrepPeek               // silent probe
)

// String returns the probe name used in the table dump.
func (p Prep) String() string {
	switch p {
	case PrepNone:
		return "none"
	case PrepLookup:
		return "lookup"
	case PrepPeek:
		return "peek"
	}
	return fmt.Sprintf("prep(%d)", uint8(p))
}

// CacheGuard is a predicate over the cache controller's local view: the
// probed line, the outstanding transaction, the incoming message, and the
// system configuration.
type CacheGuard uint8

const (
	GAlways     CacheGuard = iota
	GHit                   // probed line present
	GOwned                 // probed line present and exclusive
	GNotOwned              // no probed line, or not exclusive
	GLLHintFail            // last load_linked returned a beyond-limit hint
	GNoResv                // no matching cache-side LL reservation
	GCASRemote             // configured CAS variant compares at home/owner
	GCASMatch              // owned line's word equals the forwarded expected value
	GCASShare              // configured CAS variant is INVs
	GOpRead                // transaction op is load / load_exclusive
	GOpLL                  // transaction op is load_linked
	GOpSC                  // transaction op is store_conditional

	numCacheGuards = 12
)

var cacheGuardNames = [numCacheGuards]string{
	GAlways: "always", GHit: "hit", GOwned: "owned", GNotOwned: "not-owned",
	GLLHintFail: "ll-hint-fail", GNoResv: "no-resv", GCASRemote: "cas-remote",
	GCASMatch: "cas-match", GCASShare: "cas-share", GOpRead: "op-read",
	GOpLL: "op-ll", GOpSC: "op-sc",
}

// String returns the guard name used in the table dump.
func (g CacheGuard) String() string {
	if int(g) < len(cacheGuardNames) {
		return cacheGuardNames[g]
	}
	return fmt.Sprintf("guard(%d)", uint8(g))
}

// CacheAct is one step of a cache-controller rule. The vocabulary is
// closed: send a message, fill/evict/downgrade a line, manage the
// reservation, record reply state, or complete the transaction.
type CacheAct uint8

const (
	// Transaction starts.
	ACompleteOK   CacheAct = iota // complete {OK:true}; no network traffic
	ACompleteFail                 // complete {OK:false}; no network traffic
	ACompleteHit                  // track a read and complete with the line's word
	ACountSCFail                  // count a store_conditional failed locally
	AClearLLHint                  // consume the beyond-limit failure hint
	ASetResv                      // set the cache-side LL reservation
	ASendHome                     // send the request (Msg operand) to the home
	ALocalExec                    // execute on the owned line and complete
	AEvictLine                    // drop any copy, notifying home (write-back or hint)
	ADropShared                   // drop the shared copy and send the drop hint

	// Incoming coherence traffic.
	AInvalLine     // invalidate the copy (must not be exclusive)
	AAckRequester  // acknowledge (Msg operand) to the message's requester
	ASurrenderE    // recall-e at owner: reply wb-recall with data, invalidate
	ASurrenderS    // recall-s at owner: reply wb-share with data, downgrade
	ASendRecallNak // copy already gone: recall-nak to the home, immediately
	ACASGive       // forwarded CAS matched: invalidate, reply wb-recall
	ACASKeepShare  // forwarded INVs CAS failed: downgrade, reply wb-share
	ACASDeny       // forwarded INVd CAS failed: cas-fail to requester, cas-rel to home
	AApplyUpdate   // write the update's word into the present copy

	// Replies to the outstanding transaction.
	ACountNak        // count a negative acknowledgment
	ARetry           // re-dispatch the transaction after backoff
	ABumpAck         // one invalidation/update acknowledgment arrived
	AMergeChain      // fold the message's serialized-chain length into the txn
	AGrant           // grant arrived; expect the message's ack count
	AFillShared      // insert the block shared read-only
	AFillIfData      // insert shared read-only when the reply carries data
	AFillExclusive   // insert the block exclusive read-write
	ASCApply         // apply the validated conditional store on the granted line
	AExecLine        // execute the op on the granted line, stash the result
	AHintIfLL        // record the beyond-limit hint for a load_linked
	AStashReply      // track and stash the reply's value/ok/serial/hint
	ACompleteData    // track a read and complete with the reply's data word
	ACompleteCASFail // track and complete {reply value, OK:false}
	ACompleteSCFail  // clear the reservation and complete {OK:false}
	ACompleteReply   // track and complete with the reply's value/ok/serial/hint
	AMaybeFinish     // deliver the stashed result once grant and acks are in

	numCacheActs = 36
)

var cacheActNames = [numCacheActs]string{
	ACompleteOK: "complete-ok", ACompleteFail: "complete-fail",
	ACompleteHit: "complete-hit", ACountSCFail: "count-sc-fail",
	AClearLLHint: "clear-ll-hint", ASetResv: "set-resv",
	ASendHome: "send-home", ALocalExec: "local-exec",
	AEvictLine: "evict-line", ADropShared: "drop-shared",
	AInvalLine: "inval-line", AAckRequester: "ack-requester",
	ASurrenderE: "surrender-e", ASurrenderS: "surrender-s",
	ASendRecallNak: "send-recall-nak", ACASGive: "cas-give",
	ACASKeepShare: "cas-keep-share", ACASDeny: "cas-deny",
	AApplyUpdate: "apply-update", ACountNak: "count-nak", ARetry: "retry",
	ABumpAck: "bump-ack", AMergeChain: "merge-chain", AGrant: "grant",
	AFillShared: "fill-shared", AFillIfData: "fill-if-data",
	AFillExclusive: "fill-exclusive", ASCApply: "sc-apply",
	AExecLine: "exec-line", AHintIfLL: "hint-if-ll",
	AStashReply: "stash-reply", ACompleteData: "complete-data",
	ACompleteCASFail: "complete-cas-fail", ACompleteSCFail: "complete-sc-fail",
	ACompleteReply: "complete-reply", AMaybeFinish: "maybe-finish",
}

// String returns the action name used in the table dump.
func (a CacheAct) String() string {
	if int(a) < len(cacheActNames) {
		return cacheActNames[a]
	}
	return fmt.Sprintf("act(%d)", uint8(a))
}

// Act is one action with its message-kind operand (ASendHome, AAckRequester,
// HRecall); zero otherwise.
type Act struct {
	Do  CacheAct
	Msg MsgKind
}

// Rule pairs a guard with the actions to run when it is the first to hold.
type Rule struct {
	Guard   CacheGuard
	Actions []Act
}

// StartSpec is a cache-start table entry: the probe to perform, then the
// rules to evaluate.
type StartSpec struct {
	Prep  Prep
	Rules []Rule
}

// RecvSpec is a cache-receive table entry. NeedTxn entries are replies: the
// controller's single outstanding transaction must exist and match the
// message's block.
type RecvSpec struct {
	NeedTxn bool
	Prep    Prep
	Rules   []Rule
}

// act builds an operand-free action.
func act(a CacheAct) Act { return Act{Do: a} }

// msgAct builds an action carrying a message-kind operand.
func msgAct(a CacheAct, k MsgKind) Act { return Act{Do: a, Msg: k} }

// CacheStart maps (policy, processor op) to the controller's dispatch rules.
// A zero entry (no rules) marks an op the policy cannot start and panics in
// the interpreter.
var CacheStart [NumPolicies][NumOps]StartSpec

// CacheRecv maps an incoming message kind to the cache controller's rules.
var CacheRecv [NumMsgKinds]RecvSpec

// HomeState indexes the home request table: the directory state of the
// block, or HBusy when a transaction holds it.
type HomeState uint8

const (
	HBusy HomeState = iota
	HUnowned
	HShared
	HExclusive

	// NumHomeStates bounds arrays indexed by HomeState.
	NumHomeStates = 4
)

// String returns the state name used in the table dump.
func (s HomeState) String() string {
	switch s {
	case HBusy:
		return "busy"
	case HUnowned:
		return "unowned"
	case HShared:
		return "shared"
	case HExclusive:
		return "exclusive"
	}
	return fmt.Sprintf("hstate(%d)", uint8(s))
}

// HomeGuard is a predicate over the home's view: the directory entry, the
// busy record, the memory word, and the configuration.
type HomeGuard uint8

const (
	HGAlways        HomeGuard = iota
	HGOwnerIsReq              // directory owner is the requester itself
	HGSharerHasReq            // requester is among the recorded sharers
	HGCASMatch                // memory word equals the CAS expected value
	HGCASShare                // configured CAS variant is INVs
	HGBusyBlock               // a transaction holds the block
	HGFromOwnerOrig           // busy, sender is the owner, a request is retained
	HGFromOwner               // busy and the sender is the owner

	numHomeGuards = 8
)

var homeGuardNames = [numHomeGuards]string{
	HGAlways: "always", HGOwnerIsReq: "owner-is-req",
	HGSharerHasReq: "sharer-has-req", HGCASMatch: "cas-match",
	HGCASShare: "cas-share", HGBusyBlock: "busy-block",
	HGFromOwnerOrig: "from-owner-orig", HGFromOwner: "from-owner",
}

// String returns the guard name used in the table dump.
func (g HomeGuard) String() string {
	if int(g) < len(homeGuardNames) {
		return homeGuardNames[g]
	}
	return fmt.Sprintf("hguard(%d)", uint8(g))
}

// HomeAct is one step of a home-controller rule.
type HomeAct uint8

const (
	HNak           HomeAct = iota // negative-acknowledge the request
	HShareReply                   // record the sharer and reply data-s with the block
	HGrantE                       // invalidate other sharers, record owner, reply data-e
	HGrantESC                     // HGrantE marked as a store_conditional success
	HRecall                       // go busy, retain the request, forward (Msg operand) to the owner
	HSCFail                       // reply sc-fail
	HCASFail                      // reply cas-fail with the memory word
	HCASFailShare                 // INVs: record the sharer, reply cas-fail with data
	HExec                         // execute the op at memory into the reply scratch
	HUncReply                     // reply unc-reply from the scratch
	HUpdFanout                    // send updates to the other sharers when the word changed
	HUpdReply                     // record the sharer, reply upd-reply with data and acks
	HAcceptUnowned                // busy data return: write block, directory unowned
	HAcceptShare                  // busy data return: write block, ex-owner keeps a shared copy
	HReplay                       // re-dispatch the retained request, if any
	HWriteBack                    // spontaneous write-back from the recorded owner
	HDropSharer                   // forget the sharer named by a drop hint, if recorded
	HNakOrig                      // NAK and free the retained request; stay busy for the data
	HReleaseBusy                  // free any retained request and clear the busy state

	numHomeActs = 19
)

var homeActNames = [numHomeActs]string{
	HNak: "nak", HShareReply: "share-reply", HGrantE: "grant-e",
	HGrantESC: "grant-e-sc", HRecall: "recall", HSCFail: "sc-fail",
	HCASFail: "cas-fail", HCASFailShare: "cas-fail-share", HExec: "exec-mem",
	HUncReply: "unc-reply", HUpdFanout: "upd-fanout", HUpdReply: "upd-reply",
	HAcceptUnowned: "accept-unowned", HAcceptShare: "accept-share",
	HReplay: "replay", HWriteBack: "write-back", HDropSharer: "drop-sharer",
	HNakOrig: "nak-orig", HReleaseBusy: "release-busy",
}

// String returns the action name used in the table dump.
func (a HomeAct) String() string {
	if int(a) < len(homeActNames) {
		return homeActNames[a]
	}
	return fmt.Sprintf("hact(%d)", uint8(a))
}

// HAct is one home action with its message-kind operand (HRecall only).
type HAct struct {
	Do  HomeAct
	Msg MsgKind
}

// HRule pairs a home guard with its actions. A matching rule with nil
// Actions is an explicit stale-message ignore.
type HRule struct {
	Guard   HomeGuard
	Actions []HAct
}

// hact builds an operand-free home action.
func hact(a HomeAct) HAct { return HAct{Do: a} }

// hmsgAct builds a home action carrying a message-kind operand.
func hmsgAct(a HomeAct, k MsgKind) HAct { return HAct{Do: a, Msg: k} }

// HomeReq maps (home state, request kind) to the home's dispatch rules.
// Entries exist only for kinds with MsgKind.IsRequest.
var HomeReq [NumHomeStates][NumMsgKinds][]HRule

// HomeRet maps the non-request kinds a home receives (data returns, drop
// hints, recall NAKs, CAS releases) to their rules.
var HomeRet [NumMsgKinds][]HRule

func init() {
	buildCacheStart()
	buildCacheRecv()
	buildHomeTables()
	validate()
}

func buildCacheStart() {
	sendAll := func(k MsgKind) []Rule {
		return []Rule{{GAlways, []Act{msgAct(ASendHome, k)}}}
	}
	scHinted := func(k MsgKind) []Rule {
		return []Rule{
			{GLLHintFail, []Act{act(AClearLLHint), act(ACountSCFail), act(ACompleteFail)}},
			{GAlways, []Act{msgAct(ASendHome, k)}},
		}
	}

	// UNC: nothing is cached; every op but drop_copy goes to memory.
	for op := OpKind(0); op < NumOps; op++ {
		CacheStart[PolicyUNC][op] = StartSpec{Rules: sendAll(KUncOp)}
	}
	CacheStart[PolicyUNC][OpDropCopy] = StartSpec{
		Rules: []Rule{{GAlways, []Act{act(ACompleteOK)}}},
	}
	CacheStart[PolicyUNC][OpSC] = StartSpec{Rules: scHinted(KUncOp)}

	// UPD: loads hit the read-only copy; writes and atomics execute at the
	// home memory, which multicasts updates.
	for op := OpKind(0); op < NumOps; op++ {
		CacheStart[PolicyUPD][op] = StartSpec{Rules: sendAll(KUpdOp)}
	}
	// load_exclusive has no meaning under write-update; it behaves as an
	// ordinary load.
	updLoad := StartSpec{Prep: PrepLookup, Rules: []Rule{
		{GHit, []Act{act(ACompleteHit)}},
		{GAlways, []Act{msgAct(ASendHome, KUpdRead)}},
	}}
	CacheStart[PolicyUPD][OpLoad] = updLoad
	CacheStart[PolicyUPD][OpLoadExclusive] = updLoad
	CacheStart[PolicyUPD][OpDropCopy] = StartSpec{Prep: PrepPeek, Rules: []Rule{
		{GHit, []Act{act(ADropShared), act(ACompleteOK)}},
		{GAlways, []Act{act(ACompleteOK)}},
	}}
	CacheStart[PolicyUPD][OpSC] = StartSpec{Rules: scHinted(KUpdOp)}

	// INV: the computational power is in the cache controller; every start
	// probes the cache (the probe counts as a use).
	inv := func(rules ...Rule) StartSpec { return StartSpec{Prep: PrepLookup, Rules: rules} }
	CacheStart[PolicyINV][OpLoad] = inv(
		Rule{GHit, []Act{act(ACompleteHit)}},
		Rule{GAlways, []Act{msgAct(ASendHome, KRead)}},
	)
	// LL acquires a shared copy; an exclusive LL invites livelock.
	CacheStart[PolicyINV][OpLL] = inv(
		Rule{GHit, []Act{act(ASetResv), act(ACompleteHit)}},
		Rule{GAlways, []Act{msgAct(ASendHome, KRead)}},
	)
	CacheStart[PolicyINV][OpSC] = inv(
		Rule{GNoResv, []Act{act(ACountSCFail), act(ACompleteFail)}},
		Rule{GOwned, []Act{act(ALocalExec)}},
		Rule{GAlways, []Act{msgAct(ASendHome, KSCHome)}},
	)
	CacheStart[PolicyINV][OpDropCopy] = inv(
		Rule{GAlways, []Act{act(AEvictLine), act(ACompleteOK)}},
	)
	CacheStart[PolicyINV][OpCAS] = inv(
		Rule{GOwned, []Act{act(ALocalExec)}},
		Rule{GCASRemote, []Act{msgAct(ASendHome, KCASHome)}},
		Rule{GAlways, []Act{msgAct(ASendHome, KReadEx)}},
	)
	exclusive := inv(
		Rule{GOwned, []Act{act(ALocalExec)}},
		Rule{GAlways, []Act{msgAct(ASendHome, KReadEx)}},
	)
	for _, op := range []OpKind{OpStore, OpLoadExclusive, OpFetchAdd, OpFetchStore, OpFetchOr, OpTestAndSet} {
		CacheStart[PolicyINV][op] = exclusive
	}
}

func buildCacheRecv() {
	CacheRecv[KInval] = RecvSpec{Rules: []Rule{
		{GAlways, []Act{act(AInvalLine), msgAct(AAckRequester, KInvAck)}},
	}}
	CacheRecv[KRecallE] = RecvSpec{Prep: PrepPeek, Rules: []Rule{
		{GOwned, []Act{act(ASurrenderE)}},
		{GAlways, []Act{act(ASendRecallNak)}},
	}}
	CacheRecv[KRecallS] = RecvSpec{Prep: PrepPeek, Rules: []Rule{
		{GOwned, []Act{act(ASurrenderS)}},
		{GAlways, []Act{act(ASendRecallNak)}},
	}}
	CacheRecv[KCASFwd] = RecvSpec{Prep: PrepPeek, Rules: []Rule{
		{GNotOwned, []Act{act(ASendRecallNak)}},
		{GCASMatch, []Act{act(ACASGive)}},
		{GCASShare, []Act{act(ACASKeepShare)}},
		{GAlways, []Act{act(ACASDeny)}},
	}}
	CacheRecv[KUpdate] = RecvSpec{Prep: PrepPeek, Rules: []Rule{
		{GHit, []Act{act(AApplyUpdate), msgAct(AAckRequester, KUpdAck)}},
		{GAlways, []Act{msgAct(AAckRequester, KUpdAck)}},
	}}
	ackRules := RecvSpec{NeedTxn: true, Rules: []Rule{
		{GAlways, []Act{act(ABumpAck), act(AMergeChain), act(AMaybeFinish)}},
	}}
	CacheRecv[KInvAck] = ackRules
	CacheRecv[KUpdAck] = ackRules
	CacheRecv[KNak] = RecvSpec{NeedTxn: true, Rules: []Rule{
		{GAlways, []Act{act(ACountNak), act(ARetry)}},
	}}
	CacheRecv[KDataS] = RecvSpec{NeedTxn: true, Rules: []Rule{
		{GOpRead, []Act{act(AFillShared), act(AMergeChain), act(ACompleteData)}},
		{GOpLL, []Act{act(AFillShared), act(AMergeChain), act(ASetResv), act(ACompleteData)}},
	}}
	CacheRecv[KDataE] = RecvSpec{NeedTxn: true, Rules: []Rule{
		{GOpSC, []Act{act(AGrant), act(AMergeChain), act(AFillExclusive), act(ASCApply), act(AMaybeFinish)}},
		{GAlways, []Act{act(AGrant), act(AMergeChain), act(AFillExclusive), act(AExecLine), act(AMaybeFinish)}},
	}}
	CacheRecv[KCASFail] = RecvSpec{NeedTxn: true, Rules: []Rule{
		{GAlways, []Act{act(AMergeChain), act(AFillIfData), act(ACompleteCASFail)}},
	}}
	CacheRecv[KSCFail] = RecvSpec{NeedTxn: true, Rules: []Rule{
		{GAlways, []Act{act(ACompleteSCFail)}},
	}}
	CacheRecv[KUncReply] = RecvSpec{NeedTxn: true, Rules: []Rule{
		{GAlways, []Act{act(AMergeChain), act(AHintIfLL), act(ACompleteReply)}},
	}}
	CacheRecv[KUpdReply] = RecvSpec{NeedTxn: true, Rules: []Rule{
		{GAlways, []Act{act(AGrant), act(AMergeChain), act(AFillIfData), act(AHintIfLL), act(AStashReply), act(AMaybeFinish)}},
	}}
}

func buildHomeTables() {
	nakAll := []HRule{{HGAlways, []HAct{hact(HNak)}}}

	// A busy block refuses every request; the requester retries.
	for k := MsgKind(0); k < NumMsgKinds; k++ {
		if k.IsRequest() {
			HomeReq[HBusy][k] = nakAll
		}
	}

	share := []HRule{{HGAlways, []HAct{hact(HShareReply)}}}
	grant := []HRule{{HGAlways, []HAct{hact(HGrantE)}}}
	recallOr := func(k MsgKind) []HRule {
		// The owner's own request means its write-back is in flight; NAK it
		// rather than recalling from ourselves.
		return []HRule{
			{HGOwnerIsReq, []HAct{hact(HNak)}},
			{HGAlways, []HAct{hmsgAct(HRecall, k)}},
		}
	}

	HomeReq[HUnowned][KRead] = share
	HomeReq[HShared][KRead] = share
	HomeReq[HExclusive][KRead] = recallOr(KRecallS)

	HomeReq[HUnowned][KReadEx] = grant
	HomeReq[HShared][KReadEx] = grant
	HomeReq[HExclusive][KReadEx] = recallOr(KRecallE)

	// store_conditional at home: succeed only when the requester still holds
	// its shared copy (no write intervened since the reservation was set —
	// any write would have invalidated that copy first).
	scFail := []HRule{{HGAlways, []HAct{hact(HSCFail)}}}
	HomeReq[HUnowned][KSCHome] = scFail
	HomeReq[HShared][KSCHome] = []HRule{
		{HGSharerHasReq, []HAct{hact(HGrantESC)}},
		{HGAlways, []HAct{hact(HSCFail)}},
	}
	HomeReq[HExclusive][KSCHome] = scFail

	casAtHome := []HRule{
		{HGCASMatch, []HAct{hact(HGrantE)}},
		{HGCASShare, []HAct{hact(HCASFailShare)}},
		{HGAlways, []HAct{hact(HCASFail)}},
	}
	HomeReq[HUnowned][KCASHome] = casAtHome
	HomeReq[HShared][KCASHome] = casAtHome
	HomeReq[HExclusive][KCASHome] = recallOr(KCASFwd)

	uncOp := []HRule{{HGAlways, []HAct{hact(HExec), hact(HUncReply)}}}
	updRead := share
	updOp := []HRule{{HGAlways, []HAct{hact(HExec), hact(HUpdFanout), hact(HUpdReply)}}}
	for _, st := range []HomeState{HUnowned, HShared, HExclusive} {
		HomeReq[st][KUncOp] = uncOp
		HomeReq[st][KUpdRead] = updRead
		HomeReq[st][KUpdOp] = updOp
	}

	// Data returns: a busy block accepts the owner's data and replays the
	// retained request; otherwise only a spontaneous write-back from the
	// recorded owner is legal.
	acceptUnowned := []HRule{
		{HGBusyBlock, []HAct{hact(HAcceptUnowned), hact(HReplay)}},
		{HGAlways, []HAct{hact(HWriteBack)}},
	}
	HomeRet[KWB] = acceptUnowned
	HomeRet[KWBRecall] = acceptUnowned
	HomeRet[KWBShare] = []HRule{
		{HGBusyBlock, []HAct{hact(HAcceptShare), hact(HReplay)}},
		{HGAlways, []HAct{hact(HWriteBack)}},
	}
	HomeRet[KDropS] = []HRule{{HGAlways, []HAct{hact(HDropSharer)}}}
	HomeRet[KRecallNak] = []HRule{
		{HGFromOwnerOrig, []HAct{hact(HNakOrig)}},
		{HGAlways, nil}, // stale: the write-back arrived first and completed the recall
	}
	HomeRet[KCASRel] = []HRule{
		{HGFromOwner, []HAct{hact(HReleaseBusy)}},
		{HGAlways, nil}, // stale: the busy state already resolved
	}
}

// validate panics when a table violates the structural rules the
// interpreters rely on: message-operand actions must carry a kind, request
// kinds must have rules in every home state, and non-request kinds must not
// appear in the request table.
func validate() {
	checkActs := func(where string, acts []Act) {
		for _, a := range acts {
			if a.Do == AAckRequester && a.Msg != KInvAck && a.Msg != KUpdAck {
				panic("proto: " + where + ": ack-requester with non-ack operand " + a.Msg.String())
			}
			if a.Do == ASendHome && !a.Msg.IsRequest() {
				panic("proto: " + where + ": send-home with non-request operand " + a.Msg.String())
			}
		}
	}
	for pol := Policy(0); pol < NumPolicies; pol++ {
		for op := OpKind(0); op < NumOps; op++ {
			spec := &CacheStart[pol][op]
			if len(spec.Rules) == 0 {
				panic("proto: cache start " + pol.String() + "/" + op.String() + " has no rules")
			}
			if spec.Rules[len(spec.Rules)-1].Guard != GAlways {
				panic("proto: cache start " + pol.String() + "/" + op.String() + " can fall through")
			}
			for _, r := range spec.Rules {
				checkActs("start "+pol.String()+"/"+op.String(), r.Actions)
			}
		}
	}
	for k := MsgKind(0); k < NumMsgKinds; k++ {
		for st := HomeState(0); st < NumHomeStates; st++ {
			rules := HomeReq[st][k]
			if k.IsRequest() && len(rules) == 0 {
				panic("proto: home " + st.String() + " has no rules for " + k.String())
			}
			if !k.IsRequest() && rules != nil {
				panic("proto: non-request " + k.String() + " in the home request table")
			}
		}
		if k.IsRequest() && HomeRet[k] != nil {
			panic("proto: request " + k.String() + " in the home return table")
		}
	}
}
