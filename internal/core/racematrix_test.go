package core

import (
	"fmt"
	"testing"

	"dsm/internal/arch"
)

// The race matrix: systematically sweep the relative issue timing of two
// conflicting operations on one word and assert the protocol's invariants
// at every skew. This covers the transient windows (grants crossing
// invalidations, write-backs crossing recalls, drops crossing everything)
// that targeted tests can miss.

// raceCase defines a two-sided race and the validator of its outcome.
type raceCase struct {
	name string
	// prime establishes pre-race state (nil = fresh block).
	prime func(h *H, a arch.Addr)
	// left/right build the racing requests for nodes 0 and 1.
	left, right func(a arch.Addr) Request
	// validate inspects the outcome; the final coherent value is read via
	// node 3 after both complete.
	validate func(t *testing.T, skew int, lr, rr Result, final arch.Word)
}

func runRace(t *testing.T, pol Policy, rc raceCase) {
	t.Helper()
	for skew := 0; skew <= 80; skew += 5 {
		h := newH(t)
		a := h.addrAtHome(2, 0)
		h.sys.SetPolicy(a, pol)
		if rc.prime != nil {
			rc.prime(h, a)
		}
		var lr, rr Result
		remaining := 2
		l := rc.left(a)
		l.Done = func(r Result) { lr = r; remaining-- }
		r := rc.right(a)
		r.Done = func(res Result) { rr = res; remaining-- }
		h.eng.At(h.eng.Now(), func() { h.sys.Cache(0).Issue(l) })
		h.eng.At(h.eng.Now()+sim0(skew), func() { h.sys.Cache(1).Issue(r) })
		for remaining > 0 {
			if !h.eng.Step() {
				t.Fatalf("%s/%s skew %d deadlocked", pol, rc.name, skew)
			}
		}
		h.drain()
		final := h.do(3, OpLoad, a).Value
		h.drain()
		rc.validate(t, skew, lr, rr, final)
		h.sys.CheckCoherence()
	}
}

func TestRaceMatrix(t *testing.T) {
	cases := []raceCase{
		{
			name: "store-vs-store",
			left: func(a arch.Addr) Request { return Request{Op: OpStore, Addr: a, Val: 1} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpStore, Addr: a, Val: 2}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if final != 1 && final != 2 {
					t.Fatalf("skew %d: final %d, want 1 or 2", skew, final)
				}
			},
		},
		{
			name: "faa-vs-faa",
			left: func(a arch.Addr) Request { return Request{Op: OpFetchAdd, Addr: a, Val: 1} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpFetchAdd, Addr: a, Val: 1}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if final != 2 {
					t.Fatalf("skew %d: final %d, want 2", skew, final)
				}
				if lr.Value == rr.Value {
					t.Fatalf("skew %d: both FAAs fetched %d", skew, lr.Value)
				}
			},
		},
		{
			name: "cas-vs-cas",
			left: func(a arch.Addr) Request {
				return Request{Op: OpCAS, Addr: a, Val: 0, Val2: 1}
			},
			right: func(a arch.Addr) Request {
				return Request{Op: OpCAS, Addr: a, Val: 0, Val2: 2}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if lr.OK == rr.OK {
					t.Fatalf("skew %d: CAS outcomes %v/%v, want exactly one winner", skew, lr.OK, rr.OK)
				}
				want := arch.Word(1)
				if rr.OK {
					want = 2
				}
				if final != want {
					t.Fatalf("skew %d: final %d, want %d", skew, final, want)
				}
			},
		},
		{
			name: "drop-vs-store",
			prime: func(h *H, a arch.Addr) {
				h.do(0, OpStore, a, 7) // node 0 holds exclusive dirty
			},
			left: func(a arch.Addr) Request { return Request{Op: OpDropCopy, Addr: a} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpStore, Addr: a, Val: 9}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if final != 9 {
					t.Fatalf("skew %d: final %d, want 9 (store must survive the drop race)", skew, final)
				}
			},
		},
		{
			name: "faa-vs-drop",
			prime: func(h *H, a arch.Addr) {
				h.do(0, OpStore, a, 5)
			},
			left: func(a arch.Addr) Request { return Request{Op: OpDropCopy, Addr: a} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpFetchAdd, Addr: a, Val: 1}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if rr.Value != 5 || final != 6 {
					t.Fatalf("skew %d: FAA fetched %d, final %d; want 5 and 6", skew, rr.Value, final)
				}
			},
		},
		{
			name: "loadex-vs-loadex",
			left: func(a arch.Addr) Request { return Request{Op: OpLoadExclusive, Addr: a} },
			right: func(a arch.Addr) Request {
				return Request{Op: OpLoadExclusive, Addr: a}
			},
			validate: func(t *testing.T, skew int, lr, rr Result, final arch.Word) {
				if final != 0 {
					t.Fatalf("skew %d: final %d, want 0", skew, final)
				}
			},
		},
	}
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		for _, rc := range cases {
			if pol != PolicyINV && (rc.name == "drop-vs-store" || rc.name == "faa-vs-drop" || rc.name == "loadex-vs-loadex") {
				// Drops and exclusivity are INV concepts; skip elsewhere.
				continue
			}
			pol, rc := pol, rc
			t.Run(fmt.Sprintf("%s/%s", pol, rc.name), func(t *testing.T) {
				runRace(t, pol, rc)
			})
		}
	}
}

// TestRaceMatrixRecallReplay sweeps a remote store against the owner's own
// drop_copy, with a third node as home: the store's read-exclusive forces a
// recall, so every skew drives the home's retain/replay machinery (the
// request message is owned by the busy state until a data return replays
// it — the receiver-frees ownership edge from the message-pool work).
//
// The sweep crosses two regimes, both replaying the retained request:
//
//   - Small skew: the drop's write-back is already in flight when the
//     recall reaches node 2, so the recall finds a non-owner and a
//     RecallNak chases the write-back home. The mesh ejection port is
//     booked in send order, so the write-back always lands first: the home
//     replays the retained store off the write-back data return, and the
//     RecallNak arrives after busy has cleared and must be ignored as
//     stale. 11 mesh messages; the replayed store inherits the drop's
//     1-hop chain (Chain 2).
//   - Large skew: the recall beats the drop, the still-owner surrenders
//     via mWBRecall, and the replay rides that return instead. 10 mesh
//     messages; the store sees the full 4-serialized-message remote-
//     exclusive path (request, recall, data return, grant: Chain 4).
//
// Counters and mesh message counts are pinned per skew from the
// pre-refactor handlers, so the table-driven interpreter must reproduce
// the transient traffic exactly — including the extra stale RecallNak.
func TestRaceMatrixRecallReplay(t *testing.T) {
	type golden struct {
		c     Counters
		msgs  uint64
		chain int
	}
	// Goldens per skew, recorded from the hand-coded handler
	// implementation (PR 9). Each entry includes the priming store and the
	// final coherent load.
	quiet := Counters{Requests: 4, LocalHits: 1, Writebacks: 2}
	nakCross := golden{c: quiet, msgs: 11, chain: 2}  // stale RecallNak crosses the WB
	surrender := golden{c: quiet, msgs: 10, chain: 4} // owner surrenders to the recall
	want := map[int]golden{
		0: nakCross, 5: nakCross, 10: nakCross, 15: nakCross,
		20: nakCross, 25: nakCross,
		30: surrender, 35: surrender, 40: surrender, 45: surrender,
		50: surrender, 55: surrender, 60: surrender, 65: surrender,
		70: surrender, 75: surrender, 80: surrender,
	}
	sawReplay, sawNakCross := false, false
	for skew := 0; skew <= 80; skew += 5 {
		h := newH(t)
		a := h.addrAtHome(3, 0) // home 3; owner 2; requester 0: all distinct
		h.do(2, OpStore, a, 7)  // node 2 holds the block exclusive and dirty
		var lr, rr Result
		remaining := 2
		h.eng.At(h.eng.Now(), func() {
			h.sys.Cache(0).Issue(Request{Op: OpStore, Addr: a, Val: 9,
				Done: func(r Result) { lr = r; remaining-- }})
		})
		h.eng.At(h.eng.Now()+sim0(skew), func() {
			h.sys.Cache(2).Issue(Request{Op: OpDropCopy, Addr: a,
				Done: func(r Result) { rr = r; remaining-- }})
		})
		for remaining > 0 {
			if !h.eng.Step() {
				t.Fatalf("skew %d deadlocked", skew)
			}
		}
		h.drain()
		if final := h.do(1, OpLoad, a).Value; final != 9 {
			t.Fatalf("skew %d: final %d, want 9 (store must survive the owner's drop)", skew, final)
		}
		h.drain()
		h.sys.CheckCoherence()
		if !rr.OK {
			t.Fatalf("skew %d: drop_copy failed: %+v", skew, rr)
		}
		got := golden{c: h.sys.Counters(), msgs: h.net.Stats().Messages, chain: lr.Chain}
		if g, ok := want[skew]; ok && got != g {
			t.Errorf("skew %d: %+v, want %+v", skew, got, g)
		}
		if lr.Chain >= 4 {
			// The paper's 4-serialized-message remote-exclusive store path:
			// request, recall, data return, grant — the replay of the
			// retained request rides the data return.
			sawReplay = true
		}
		if got.msgs == 11 {
			sawNakCross = true
		}
	}
	if !sawReplay {
		t.Error("no skew drove the recall retain/replay path (chain >= 4)")
	}
	if !sawNakCross {
		t.Error("no skew drove the stale-RecallNak crossing (write-back racing the recall)")
	}
}

// TestRaceMatrixLLSCStore sweeps an LL/SC pair against a racing store: the
// SC must fail whenever the store's write is ordered between the LL and
// the SC, and the final value must reflect exactly the operations that
// succeeded.
func TestRaceMatrixLLSCStore(t *testing.T) {
	for _, pol := range []Policy{PolicyINV, PolicyUPD, PolicyUNC} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for skew := 0; skew <= 120; skew += 5 {
				h := newH(t)
				a := h.addrAtHome(2, 0)
				h.sys.SetPolicy(a, pol)
				var scOK bool
				remaining := 2
				h.eng.At(0, func() {
					h.sys.Cache(0).Issue(Request{Op: OpLL, Addr: a,
						Done: func(ll Result) {
							h.sys.Cache(0).Issue(Request{
								Op: OpSC, Addr: a, Val: 100, Val2: ll.Serial,
								Done: func(sc Result) { scOK = sc.OK; remaining-- },
							})
						}})
				})
				h.eng.At(sim0(skew), func() {
					h.sys.Cache(1).Issue(Request{Op: OpStore, Addr: a, Val: 7,
						Done: func(Result) { remaining-- }})
				})
				for remaining > 0 {
					if !h.eng.Step() {
						t.Fatalf("skew %d deadlocked", skew)
					}
				}
				h.drain()
				final := h.do(3, OpLoad, a).Value
				// If the SC succeeded, it either preceded the store (final
				// 7) or followed it entirely... it cannot follow: the
				// store would have invalidated the reservation. So
				// success implies the store came second: final 7.
				// Failure implies the store intervened: final 7 as well
				// — unless the store completed before the LL (final 100).
				if scOK && final != 7 && final != 100 {
					t.Fatalf("skew %d: SC ok but final %d", skew, final)
				}
				if !scOK && final != 7 {
					t.Fatalf("skew %d: SC failed but final %d, want 7", skew, final)
				}
				h.sys.CheckCoherence()
			}
		})
	}
}
