package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doProbe(s *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func TestProbeNeverSimulates(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	// Cold probe: 404 + X-Cache miss, and crucially no simulation ran.
	miss := doProbe(s, http.MethodPost, "/v1/sim?probe=1", quickSpec)
	if miss.Code != http.StatusNotFound || miss.Header().Get("X-Cache") != "miss" {
		t.Fatalf("cold probe = %d X-Cache=%q", miss.Code, miss.Header().Get("X-Cache"))
	}
	headMiss := doProbe(s, http.MethodHead, "/v1/sim?app=counter&procs=4&rounds=2", "")
	if headMiss.Code != http.StatusNotFound || headMiss.Body.Len() != 0 {
		t.Fatalf("cold HEAD = %d body=%q", headMiss.Code, headMiss.Body)
	}
	if m := s.Metrics(); m.Runs != 0 || m.Probes != 2 || m.ProbeHits != 0 || m.Requests != 0 {
		t.Fatalf("metrics after cold probes = %+v", m)
	}

	// Simulate for real, then probe again: 200 with the exact cached bytes.
	real := doJSON(s, quickSpec)
	if real.Code != http.StatusOK {
		t.Fatalf("sim = %d: %s", real.Code, real.Body)
	}
	hit := doProbe(s, http.MethodPost, "/v1/sim?probe=1", quickSpec)
	if hit.Code != http.StatusOK || hit.Header().Get("X-Cache") != "hit" {
		t.Fatalf("warm probe = %d X-Cache=%q", hit.Code, hit.Header().Get("X-Cache"))
	}
	if !bytes.Equal(hit.Body.Bytes(), real.Body.Bytes()) {
		t.Fatal("probe body differs from the simulated response")
	}
	headHit := doProbe(s, http.MethodHead, "/v1/sim?app=counter&procs=4&rounds=2", "")
	if headHit.Code != http.StatusOK || headHit.Body.Len() != 0 {
		t.Fatalf("warm HEAD = %d body=%q", headHit.Code, headHit.Body)
	}
	if m := s.Metrics(); m.Runs != 1 || m.Probes != 4 || m.ProbeHits != 2 {
		t.Fatalf("metrics after warm probes = %+v", m)
	}
}

func TestFillInsertsServableEntry(t *testing.T) {
	// Simulate on one server, fill its response bytes into a second: the
	// second must serve the key as a byte-identical cache hit without ever
	// running the simulation itself. This is the peer-fill / replication
	// primitive the fleet router is built on.
	src := newTestServer(t, Config{Workers: 1})
	dst := newTestServer(t, Config{Workers: 1})
	orig := doJSON(src, quickSpec)
	if orig.Code != http.StatusOK {
		t.Fatalf("sim = %d: %s", orig.Code, orig.Body)
	}

	fill := doProbe(dst, http.MethodPost, "/v1/fill", orig.Body.String())
	if fill.Code != http.StatusNoContent {
		t.Fatalf("fill = %d: %s", fill.Code, fill.Body)
	}
	hit := doJSON(dst, quickSpec)
	if hit.Code != http.StatusOK || hit.Header().Get("X-Cache") != "hit" {
		t.Fatalf("post-fill request = %d X-Cache=%q", hit.Code, hit.Header().Get("X-Cache"))
	}
	if !bytes.Equal(hit.Body.Bytes(), orig.Body.Bytes()) {
		t.Fatal("filled entry differs from the source response")
	}
	if m := dst.Metrics(); m.Runs != 0 || m.Fills != 1 || m.CacheHits != 1 {
		t.Fatalf("dst metrics = %+v", m)
	}
}

func TestFillRejectsMislabeledBody(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	src := newTestServer(t, Config{Workers: 1})
	orig := doJSON(src, quickSpec)

	// A body whose key does not match its own spec must be rejected: fills
	// may relocate results between backends, never relabel them.
	bad := strings.Replace(orig.Body.String(), `"key":"`+orig.Header().Get("X-Spec-Key"),
		`"key":"`+strings.Repeat("0", 64), 1)
	w := doProbe(s, http.MethodPost, "/v1/fill", bad)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("mislabeled fill = %d: %s", w.Code, w.Body)
	}
	if w := doProbe(s, http.MethodPost, "/v1/fill", "not json"); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage fill = %d", w.Code)
	}
	if w := doProbe(s, http.MethodGet, "/v1/fill", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET fill = %d", w.Code)
	}
	if m := s.Metrics(); m.Fills != 0 || m.CacheEntries != 0 {
		t.Fatalf("rejected fills mutated the cache: %+v", m)
	}
}
