package apps

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// LocusRouteConfig parameterizes the LocusRoute-like kernel.
//
// The SPLASH LocusRoute sources are not redistributable, so this is a
// standard-cell-router kernel with the same synchronization structure the
// paper relies on: a central wire work queue protected by a lock, and a
// shared routing-cost grid updated under geographically partitioned locks.
// The paper characterizes LocusRoute only through the average write-run
// length of its lock variables (1.70-1.83) and a contention histogram
// dominated by the no-contention case with a short low-contention tail;
// this kernel reproduces both (see the package tests).
type LocusRouteConfig struct {
	Grid    int // cost-grid edge length
	Wires   int // wires to route
	Regions int // geographic lock count
	Policy  core.Policy
	Opts    locks.Options
	Seed    uint64
}

// DefaultLocusRoute sizes the kernel for a 64-processor run. The work per
// wire is coarse relative to the lock operations so that, as in the SPLASH
// original, the no-contention case dominates the lock histograms.
func DefaultLocusRoute(procs int) LocusRouteConfig {
	return LocusRouteConfig{Grid: 32, Wires: 4 * procs, Regions: 16, Seed: 0x10c05}
}

// RealResult reports a real-application run.
type RealResult struct {
	Elapsed sim.Time
	Work    uint64 // application-defined completed work items
	// Base is the application's main shared data structure (LocusRoute:
	// the cost grid; Cholesky: the first column), for validation.
	Base arch.Addr
}

// LocusRoute routes Wires wires through the shared cost grid: each
// processor repeatedly takes a wire from the central queue (lock-protected,
// dynamic scheduling), evaluates the two L-shaped routes by reading the
// cost grid, and claims the cheaper one by incrementing the cost of its
// cells under the region locks.
func LocusRoute(m *machine.Machine, cfg LocusRouteConfig) RealResult {
	if cfg.Grid <= 0 || cfg.Wires <= 0 || cfg.Regions <= 0 {
		panic("apps: invalid LocusRoute config")
	}
	g := cfg.Grid

	grid := m.Alloc(uint32(g * g * arch.WordBytes))
	cellAddr := func(x, y int) arch.Addr {
		return grid + arch.Addr((y*g+x)*arch.WordBytes)
	}
	queueLock := locks.NewTTSLock(m, cfg.Policy, cfg.Opts)
	queueIdx := m.Alloc(4)
	regionLocks := make([]*locks.TTSLock, cfg.Regions)
	for i := range regionLocks {
		regionLocks[i] = locks.NewTTSLock(m, cfg.Policy, cfg.Opts)
	}
	regionOf := func(x, y int) int {
		return (y * cfg.Regions / g) % cfg.Regions
	}

	// The wire list is input data, generated deterministically.
	type wire struct{ x1, y1, x2, y2 int }
	wires := make([]wire, cfg.Wires)
	rng := sim.NewRNG(cfg.Seed)
	for i := range wires {
		wires[i] = wire{rng.Intn(g), rng.Intn(g), rng.Intn(g), rng.Intn(g)}
	}

	var routed uint64
	elapsed := m.Run(func(p *machine.Proc) {
		// Startup skew: processors enter the routing phase as the
		// sequential setup hands off, not in lockstep.
		p.Compute(sim.Time(p.ID()) * 450)
		for {
			// Dynamic scheduling: take the next wire under the queue lock.
			queueLock.Acquire(p)
			idx := int(p.Load(queueIdx))
			p.Store(queueIdx, arch.Word(idx+1))
			queueLock.Release(p)
			if idx >= len(wires) {
				return
			}
			w := wires[idx]

			// Evaluate both L-shaped routes by reading the cost grid.
			costA := routeCost(p, cellAddr, w.x1, w.y1, w.x2, w.y2, true)
			costB := routeCost(p, cellAddr, w.x1, w.y1, w.x2, w.y2, false)
			horizFirst := costA <= costB

			// Claim the cheaper route: bump each cell's cost under the
			// covering region lock, re-acquiring only on region change.
			held := -1
			walkRoute(w.x1, w.y1, w.x2, w.y2, horizFirst, func(x, y int) {
				r := regionOf(x, y)
				if r != held {
					if held >= 0 {
						regionLocks[held].Release(p)
					}
					regionLocks[r].Acquire(p)
					held = r
				}
				a := cellAddr(x, y)
				p.Store(a, p.Load(a)+1)
			})
			if held >= 0 {
				regionLocks[held].Release(p)
			}
			routed++
			// Per-wire cost propagation and bookkeeping: routing a wire
			// is coarse work relative to the lock operations, as in the
			// original router, so the queue stays mostly uncontended.
			p.Compute(20000 + sim.Time(p.Rand().Intn(6000)))
		}
	})
	return RealResult{Elapsed: elapsed, Work: routed, Base: grid}
}

// routeCost sums the cost of the L-shaped route (horizontal-then-vertical
// or vertical-then-horizontal) with ordinary loads.
func routeCost(p *machine.Proc, cell func(x, y int) arch.Addr, x1, y1, x2, y2 int, horizFirst bool) arch.Word {
	var sum arch.Word
	walkRoute(x1, y1, x2, y2, horizFirst, func(x, y int) {
		sum += p.Load(cell(x, y))
	})
	return sum
}

// walkRoute visits each cell of an L-shaped route once.
func walkRoute(x1, y1, x2, y2 int, horizFirst bool, visit func(x, y int)) {
	step := func(a, b int) int {
		if a < b {
			return 1
		}
		return -1
	}
	if horizFirst {
		for x := x1; x != x2; x += step(x1, x2) {
			visit(x, y1)
		}
		for y := y1; y != y2; y += step(y1, y2) {
			visit(x2, y)
		}
	} else {
		for y := y1; y != y2; y += step(y1, y2) {
			visit(x1, y)
		}
		for x := x1; x != x2; x += step(x1, x2) {
			visit(x, y2)
		}
	}
	visit(x2, y2)
}
