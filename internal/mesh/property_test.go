package mesh

import (
	"testing"
	"testing/quick"

	"dsm/internal/sim"
)

// TestPropertyRoutedMatchesSimpleWhenUncontended verifies that the
// per-link router model degenerates to the hops*HopDelay abstraction for
// any isolated message.
func TestPropertyRoutedMatchesSimpleWhenUncontended(t *testing.T) {
	f := func(srcRaw, dstRaw, flitsRaw uint8) bool {
		src := NodeID(srcRaw % 64)
		dst := NodeID(dstRaw % 64)
		flits := int(flitsRaw%6) + 1

		engA := sim.NewEngine()
		mA := New(engA, DefaultConfig())
		cfgB := DefaultConfig()
		cfgB.ModelRouters = true
		engB := sim.NewEngine()
		mB := New(engB, cfgB)

		var a, b sim.Time
		mA.Send(src, dst, flits, func() { a = engA.Now() })
		mB.Send(src, dst, flits, func() { b = engB.Now() })
		engA.Run(0)
		engB.Run(0)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyLatencyMonotonicInDistance: farther destinations never
// deliver earlier, all else equal.
func TestPropertyLatencyMonotonicInDistance(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := NodeID(aRaw % 64)
		b := NodeID(bRaw % 64)
		eng := sim.NewEngine()
		m := New(eng, DefaultConfig())
		var ta, tb sim.Time
		// Independent meshes would be cleaner, but distinct sources avoid
		// port interference here.
		m.Send(0, a, 2, func() { ta = eng.Now() })
		eng.Run(0)
		eng2 := sim.NewEngine()
		m2 := New(eng2, DefaultConfig())
		m2.Send(0, b, 2, func() { tb = eng2.Now() })
		eng2.Run(0)
		if m.Hops(0, a) <= m2.Hops(0, b) {
			return ta <= tb
		}
		return ta >= tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyFlitsMonotonicInPayload: bigger payloads never take fewer
// flits.
func TestPropertyFlitsMonotonicInPayload(t *testing.T) {
	m := New(sim.NewEngine(), DefaultConfig())
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.Flits(x) <= m.Flits(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
