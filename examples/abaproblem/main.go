// ABA problem: reproduce the paper's section-2.2 argument that a pair of
// load and compare_and_swap cannot simulate load_linked/store_conditional,
// "because compare_and_swap cannot detect if a shared location has been
// written with the same value that has been read".
//
// A processor pops from a lock-free stack and stalls between reading the
// top pointer and swinging it. Meanwhile an adversary pops two nodes and
// pushes the first back: the top pointer holds the same value again, so
// the stalled CAS succeeds — and installs a node the adversary now owns.
// The same interleaving with LL/SC fails the store_conditional and retries
// safely.
package main

import (
	"fmt"

	"dsm"
)

func main() {
	for _, prim := range []dsm.Prim{dsm.CAS, dsm.LLSC} {
		top, victimSaw := stage(prim)
		verdict := "stack corrupted: the popped-and-reused node was installed as top"
		if top == 3 {
			verdict = "stack intact: the conditional store failed and the pop retried"
		}
		fmt.Printf("%-4s pop during ABA interleaving: returned node %d, top afterwards = node %d\n     -> %s\n",
			prim, victimSaw, top, verdict)
	}
}

// stage builds top->1->2->3, starts a pop that stalls in its window, runs
// the adversary (pop 1, pop 2, push 1), and reports the outcome.
func stage(prim dsm.Prim) (topAfter, victimPopped dsm.Word) {
	m := dsm.NewSmall(4)
	s := dsm.NewStack(m, dsm.INV, 4, dsm.Options{Prim: prim})
	windowOpen := m.Alloc(4)
	adversaryDone := m.Alloc(4)

	var popped dsm.Word
	progs := make([]func(*dsm.Proc), m.Procs())
	progs[0] = func(p *dsm.Proc) {
		s.Push(p, 3)
		s.Push(p, 2)
		s.Push(p, 1)
		popped = s.Pop(p, func() {
			p.Store(windowOpen, 1)
			for p.Load(adversaryDone) == 0 {
				p.Compute(50)
			}
		})
	}
	progs[1] = func(p *dsm.Proc) {
		for p.Load(windowOpen) == 0 {
			p.Compute(50)
		}
		a := s.Pop(p, nil)
		_ = s.Pop(p, nil) // this node now "belongs" to the adversary
		s.Push(p, a)
		p.Store(adversaryDone, 1)
	}
	m.RunEach(progs)
	return m.Peek(s.Top), popped
}
