package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dsm/internal/core"
	"dsm/internal/machine"
)

func runSmall() *machine.Machine {
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	m := machine.New(cfg)
	a := m.AllocSync(core.PolicyINV)
	m.Run(func(p *machine.Proc) {
		for i := 0; i < 3; i++ {
			p.FetchAdd(a, 1)
		}
	})
	return m
}

func TestCollectGathersEverything(t *testing.T) {
	m := runSmall()
	r := Collect(m)
	if r.Procs != 4 {
		t.Fatalf("Procs = %d", r.Procs)
	}
	if r.Protocol.Requests == 0 {
		t.Fatal("no protocol requests collected")
	}
	if r.Network.Messages == 0 {
		t.Fatal("no network traffic collected")
	}
	if r.Memory.Accesses == 0 {
		t.Fatal("no memory accesses collected")
	}
	if r.Contention.Total() != 12 {
		t.Fatalf("contention samples = %d, want 12", r.Contention.Total())
	}
	if r.WriteRunTotal == 0 || r.WriteRunMean <= 0 {
		t.Fatal("write runs not collected")
	}
	if len(r.Chains) == 0 {
		t.Fatal("no chain classes collected")
	}
}

func TestChainsSortedAndNamed(t *testing.T) {
	r := Collect(runSmall())
	var prev string
	found := false
	for _, c := range r.Chains {
		if c.Class < prev {
			t.Fatalf("chains not sorted: %q after %q", c.Class, prev)
		}
		prev = c.Class
		if c.Class == "fetch_and_add/INV" {
			found = true
			if c.Count != 12 {
				t.Fatalf("fetch_and_add count = %d, want 12", c.Count)
			}
		}
	}
	if !found {
		t.Fatalf("fetch_and_add/INV class missing: %+v", r.Chains)
	}
}

func TestWriteTextRendersSections(t *testing.T) {
	var b bytes.Buffer
	Collect(runSmall()).WriteText(&b)
	out := b.String()
	for _, want := range []string{"protocol:", "network:", "memory:", "contention:", "write-runs:", "fetch_and_add/INV"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var b bytes.Buffer
	Collect(runSmall()).WriteCSV(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "class,count,mean,max" {
		t.Fatalf("csv header: %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("csv has no data rows")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	m := runSmall()
	r := Collect(m)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	first := buf.String()
	if !strings.HasSuffix(first, "\n") {
		t.Fatal("WriteJSON output not newline-terminated")
	}
	// Byte-stable: encoding the same report again yields identical bytes.
	var again bytes.Buffer
	if err := r.WriteJSON(&again); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if again.String() != first {
		t.Fatalf("re-encode differs:\n%s\nvs\n%s", again.String(), first)
	}
	got, err := ReadJSON(strings.NewReader(first))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, r)
	}
	// The decoded report re-encodes to the same bytes.
	var rebuf bytes.Buffer
	if err := got.WriteJSON(&rebuf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if rebuf.String() != first {
		t.Fatalf("decoded report re-encodes differently:\n%s\nvs\n%s", rebuf.String(), first)
	}
}

func TestWriteJSONFieldOrder(t *testing.T) {
	m := runSmall()
	var buf bytes.Buffer
	if err := Collect(m).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	// Spot-check that the stable declaration order survives encoding.
	fields := []string{`"procs"`, `"protocol"`, `"network"`, `"memory"`,
		`"cache"`, `"contention"`, `"write_run_mean"`, `"proc_ops"`}
	last := -1
	for _, f := range fields {
		i := strings.Index(out, f)
		if i < 0 {
			t.Fatalf("field %s missing from %s", f, out)
		}
		if i < last {
			t.Fatalf("field %s out of order in %s", f, out)
		}
		last = i
	}
}
