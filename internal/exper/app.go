package exper

import (
	"fmt"

	"dsm/internal/core"
	"dsm/internal/locks"
)

// App identifies a workload: the three synthetic counter applications of
// figures 3-5 and the three real applications of figures 2 and 6.
type App uint8

const (
	AppCounter App = iota // lock-free counter (figure 3)
	AppTTS                // counter under a TTS lock (figure 4)
	AppMCS                // counter under an MCS lock (figure 5)
	AppLocusRoute
	AppCholesky
	AppTClosure
	// Lock-free workload library (internal/apps workloads.go): data
	// structures and barriers driven by the same sharing patterns as the
	// synthetic counters, so they sweep the identical bar x pattern grid.
	AppMSQueue       // Michael-Scott lock-free FIFO queue
	AppStack         // Treiber lock-free LIFO stack
	AppRCU           // RCU-style reader/writer snapshot workload
	AppTournament    // tournament barrier with per-round counter episodes
	AppDissemination // dissemination barrier with per-round counter episodes
)

// Synthetic reports whether the app is one of the pattern-driven synthetic
// workloads (contention level and write-run length apply to it).
func (a App) Synthetic() bool { return a <= AppMCS }

// Workload reports whether the app is one of the lock-free workload
// library's structures (queue, stack, RCU, barriers).
func (a App) Workload() bool { return a >= AppMSQueue && a <= AppDissemination }

// PatternDriven reports whether the sharing-pattern parameters (contention
// level, write-run length, rounds) apply to the app: the synthetic counters
// and every workload-library structure.
func (a App) PatternDriven() bool { return a.Synthetic() || a.Workload() }

// Name returns the wire name used by the HTTP spec and the dsmsim -app
// flag: counter, tts, mcs, locusroute, cholesky, tclosure.
func (a App) Name() string {
	switch a {
	case AppCounter:
		return "counter"
	case AppTTS:
		return "tts"
	case AppMCS:
		return "mcs"
	case AppLocusRoute:
		return "locusroute"
	case AppCholesky:
		return "cholesky"
	case AppTClosure:
		return "tclosure"
	case AppMSQueue:
		return "msqueue"
	case AppStack:
		return "stack"
	case AppRCU:
		return "rcu"
	case AppTournament:
		return "tournament"
	case AppDissemination:
		return "dissemination"
	}
	return "app?"
}

// String returns the display name the figures use. The real applications
// keep the paper's capitalized names (the figure-2/6 row labels); the
// synthetic apps display as their wire names.
func (a App) String() string {
	switch a {
	case AppLocusRoute:
		return "LocusRoute"
	case AppCholesky:
		return "Cholesky"
	case AppTClosure:
		return "TransitiveClosure"
	}
	return a.Name()
}

// RealApps lists the figure 2/6 applications in paper order.
func RealApps() []App { return []App{AppLocusRoute, AppCholesky, AppTClosure} }

// WorkloadApps lists the lock-free workload library's structures.
func WorkloadApps() []App {
	return []App{AppMSQueue, AppStack, AppRCU, AppTournament, AppDissemination}
}

// ParseApp maps a wire workload name to the internal app.
func ParseApp(s string) (App, error) {
	switch s {
	case "counter":
		return AppCounter, nil
	case "tts":
		return AppTTS, nil
	case "mcs":
		return AppMCS, nil
	case "tclosure":
		return AppTClosure, nil
	case "locusroute":
		return AppLocusRoute, nil
	case "cholesky":
		return AppCholesky, nil
	case "msqueue":
		return AppMSQueue, nil
	case "stack":
		return AppStack, nil
	case "rcu":
		return AppRCU, nil
	case "tournament":
		return AppTournament, nil
	case "dissemination":
		return AppDissemination, nil
	}
	return 0, fmt.Errorf("unknown app %q (want counter, tts, mcs, tclosure, locusroute, cholesky, msqueue, stack, rcu, tournament, or dissemination)", s)
}

// ParsePolicy maps a wire policy name to the internal coherence policy.
func ParsePolicy(s string) (core.Policy, error) {
	switch s {
	case "INV":
		return core.PolicyINV, nil
	case "UPD":
		return core.PolicyUPD, nil
	case "UNC":
		return core.PolicyUNC, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want INV, UPD, or UNC)", s)
}

// ParsePrim maps a wire primitive name to the internal primitive family.
func ParsePrim(s string) (locks.Prim, error) {
	switch s {
	case "FAP":
		return locks.PrimFAP, nil
	case "CAS":
		return locks.PrimCAS, nil
	case "LLSC":
		return locks.PrimLLSC, nil
	}
	return 0, fmt.Errorf("unknown primitive %q (want FAP, CAS, or LLSC)", s)
}

// ParseVariant maps a wire CAS-variant name to the internal variant.
func ParseVariant(s string) (core.CASVariant, error) {
	switch s {
	case "INV":
		return core.CASPlain, nil
	case "INVd":
		return core.CASDeny, nil
	case "INVs":
		return core.CASShare, nil
	}
	return 0, fmt.Errorf("unknown CAS variant %q (want INV, INVd, or INVs)", s)
}
