package serve

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"runtime"
	"sync"
)

// resultCache is the content-addressed result store: canonical spec hash
// -> encoded outcome bytes, with LRU eviction at a fixed entry budget.
// Entries are immutable once inserted (the encoded bytes are never
// modified), so a hit can hand the stored slice to the response writer
// without copying.
//
// The cache is sharded: the entry budget splits across N independent LRU
// shards (N = GOMAXPROCS rounded up to a power of two, reduced until every
// shard holds at least minShardEntries), each with its own mutex, recency
// list, and eviction counter. A key's shard is the first byte of its
// SHA-256 content address, so placement is uniform and deterministic, and
// concurrent lookups on different shards never contend — the single global
// cache mutex was the first serialization point to fall over the moment
// GOMAXPROCS exceeded 1. Eviction is LRU within a shard (budget/N entries),
// which approximates global LRU for any working set large enough to spread
// across shards; caches too small to shard keep one shard and exact LRU.
type resultCache struct {
	shards []cacheShard
	mask   uint32 // len(shards) - 1; shard count is a power of two
}

// cacheShard is one independently locked LRU unit of the result cache.
type cacheShard struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
	_         [24]byte // keep neighboring shards' hot fields off one cache line
}

// cacheEntry is one immutable cached result. Everything a hit response
// needs is precomputed at insertion — the gzip variant and the
// single-element header slice for X-Spec-Key — so serving a hit performs
// no per-request work beyond map lookup and writes. Entries are never
// mutated after publication: re-inserting a key replaces the element's
// entry wholesale, so a reader holding the old pointer keeps a consistent
// (data, gz) pair.
type cacheEntry struct {
	key    string
	data   []byte   // canonical encoded outcome (identity encoding)
	gz     []byte   // gzip variant; nil when too small or incompressible
	keyHdr []string // {key}, preallocated for direct header-map assignment
}

// newCacheEntry builds a complete entry, compressing outside any shard
// lock (gzip costs ~10µs/KB — far too much to hold a cache shard for).
func newCacheEntry(key string, data []byte) *cacheEntry {
	return &cacheEntry{key: key, data: data, gz: gzipVariant(data), keyHdr: []string{key}}
}

// minGzipSize is the smallest body worth compressing: below it the gzip
// header/trailer overhead and the client's inflate outweigh the bytes
// saved on a loopback or datacenter link.
const minGzipSize = 512

// gzipWriterPool recycles gzip compressors across cache insertions (each
// carries ~256KB of LZ77 window and Huffman state).
var gzipWriterPool = sync.Pool{New: func() any {
	w, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
	return w
}}

// gzipVariant returns the gzip encoding of data, or nil when compression
// is not worthwhile (tiny body, or output not actually smaller). BestSpeed
// is deliberate: outcome JSON is highly repetitive (long runs of numeric
// report fields), so even the cheapest setting halves it, and the variant
// is computed once per distinct result, then served arbitrarily many times.
func gzipVariant(data []byte) []byte {
	if len(data) < minGzipSize {
		return nil
	}
	var buf bytes.Buffer
	buf.Grow(len(data) / 2)
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(&buf)
	if _, err := zw.Write(data); err != nil {
		gzipWriterPool.Put(zw)
		return nil
	}
	if err := zw.Close(); err != nil {
		gzipWriterPool.Put(zw)
		return nil
	}
	gzipWriterPool.Put(zw)
	if buf.Len() >= len(data) {
		return nil
	}
	return bytes.Clone(buf.Bytes())
}

// minShardEntries is the smallest per-shard budget worth sharding for:
// below it, splitting a tiny cache would turn the entry bound and LRU
// order into per-shard accidents of key placement, so the cache stays
// single-shard and exactly LRU instead.
const minShardEntries = 64

// maxShards bounds the shard count to what one address byte can index.
const maxShards = 256

// shardCount selects the number of shards for a cache of max entries:
// GOMAXPROCS rounded up to a power of two, halved until each shard's
// budget reaches minShardEntries (a 2-entry test cache gets 1 shard; the
// default 1024 entries on a 16-way host get 16 shards of 64).
func shardCount(max int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < maxShards {
		n <<= 1
	}
	for n > 1 && max/n < minShardEntries {
		n >>= 1
	}
	return n
}

// shardIndex maps a canonical spec key to its shard: the first byte of the
// SHA-256 (the key's leading two hex digits), masked to the shard count.
// SHA-256 output is uniform, so low bits of the first byte spread keys
// evenly for any power-of-two shard count up to maxShards.
func shardIndex(key string, mask uint32) uint32 {
	if mask == 0 || len(key) < 2 {
		return 0
	}
	return uint32(hexNibble(key[0])<<4|hexNibble(key[1])) & mask
}

// shardIndexBytes is shardIndex for a key still held as bytes (the request
// path renders keys into a stack buffer and avoids materializing a string
// until a cache miss makes one necessary).
func shardIndexBytes(key []byte, mask uint32) uint32 {
	if mask == 0 || len(key) < 2 {
		return 0
	}
	return uint32(hexNibble(key[0])<<4|hexNibble(key[1])) & mask
}

// hexNibble decodes one lowercase hex digit (the alphabet hex.EncodeToString
// emits); any other byte maps to 0 rather than erroring, since a malformed
// key only costs shard balance, not correctness.
func hexNibble(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	}
	return 0
}

func newResultCache(max int) *resultCache {
	return newResultCacheShards(max, shardCount(max))
}

// newResultCacheShards builds a cache of max total entries split across an
// explicit power-of-two shard count (tests pin the count; newResultCache
// derives it from GOMAXPROCS).
func newResultCacheShards(max, shards int) *resultCache {
	c := &resultCache{shards: make([]cacheShard, shards), mask: uint32(shards - 1)}
	base, extra := max/shards, max%shards
	for i := range c.shards {
		s := &c.shards[i]
		s.max = base
		if i < extra {
			s.max++
		}
		if s.max < 1 {
			s.max = 1
		}
		s.ll = list.New()
		s.items = make(map[string]*list.Element, s.max)
	}
	return c
}

// get returns the cached entry for key, refreshing its recency within its
// shard. The entry is immutable; callers may hold it past the lock.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	s := &c.shards[shardIndex(key, c.mask)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// getBytes is get for a key still rendered as bytes. The map index
// compiles to a no-copy lookup (the string(key) conversion in index
// position does not allocate), so the request hot path can probe the
// cache straight from its stack key buffer.
func (c *resultCache) getBytes(key []byte) (*cacheEntry, bool) {
	s := &c.shards[shardIndexBytes(key, c.mask)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[string(key)]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts key -> data, evicting the least recently used entry of the
// key's shard when that shard is at capacity. Re-inserting an existing key
// refreshes its recency and replaces its entry wholesale — concurrent
// readers holding the superseded entry still see a consistent immutable
// (data, gz) pair. The gzip variant is computed before the lock is taken.
func (c *resultCache) put(key string, data []byte) {
	e := newCacheEntry(key, data)
	s := &c.shards[shardIndex(key, c.mask)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		el.Value = e
		return
	}
	if s.ll.Len() >= s.max {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		s.evictions++
	}
	s.items[key] = s.ll.PushFront(e)
}

// stats returns the entry and lifetime eviction counts summed across
// shards, plus the shard count.
func (c *resultCache) stats() (entries int, evictions uint64, shards int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += s.ll.Len()
		evictions += s.evictions
		s.mu.Unlock()
	}
	return entries, evictions, len(c.shards)
}
