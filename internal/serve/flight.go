package serve

import "sync"

// flightCall is one in-flight simulation that concurrent identical
// requests share. The leader fills data/err and closes done; followers
// block on done and read the shared result.
type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// flightGroup coalesces duplicate work by key: the first request for a key
// becomes the leader and executes; requests arriving before the leader
// finishes become followers of the same call. This is the single-flight
// pattern — under a burst of N identical specs, exactly one simulation
// runs and N-1 requests pay only the wait.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the call for key, creating it when absent. leader reports
// whether this caller must execute the work and complete the call.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete publishes the leader's result and wakes every follower. The key
// is removed before done closes, so a request arriving after completion
// starts a fresh call (it will hit the result cache first anyway).
func (g *flightGroup) complete(key string, c *flightCall, data []byte, err error) {
	c.data, c.err = data, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}
