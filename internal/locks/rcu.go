package locks

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// RCU is a read-copy-update cell: a published pointer to the current
// snapshot of a multi-word datum, updated by copying into a spare slot and
// swinging the pointer with the primitive family under study. Readers
// never synchronize — they load the pointer and walk the snapshot — which
// is exactly the read-mostly traffic shape the counter workloads cannot
// produce. Writers serialize on a TTS lock (RCU's classic "updaters may
// lock" rule), publish with Options.Swap, and then wait a grace period:
// every reader must announce (through its per-reader quiescent word,
// homed at the reader's node) that it has seen the new epoch before the
// retired slot may be reused.
//
// Correctness is observable: snapshot word j holds version+j, so a reader
// that overlaps a premature slot reuse sees torn words. With grace
// periods honored, ReadSnapshot never reports torn=true; SkipGrace
// deliberately retires slots immediately, proving the detector detects.
type RCU struct {
	ptr       arch.Addr   // current slot id
	epoch     arch.Addr   // grace-period epoch counter
	quiescent []arch.Addr // per reader: last epoch it announced
	slot      []arch.Addr // per slot: base of Words data words
	lock      TTSLock     // writer serialization
	Words     int         // snapshot size in words
	Opts      Options

	// SkipGrace retires slots without waiting for readers — the broken
	// variant the torn-read detector exists to catch. Tests only.
	SkipGrace bool

	version arch.Word // host-side shadow of the last published version
}

// rcuSlots is the snapshot rotation depth: one live, one under
// construction; grace periods make two sufficient.
const rcuSlots = 2

// NewRCU allocates the cell with snapshots of the given word count,
// publishing version 0 in slot 0.
func NewRCU(m *machine.Machine, policy core.Policy, words int, opts Options) *RCU {
	if words < 1 || words > arch.WordsPerBlock {
		panic("locks: RCU snapshot must fit one block")
	}
	r := &RCU{
		ptr:       m.AllocSync(policy),
		epoch:     m.AllocSync(policy),
		quiescent: make([]arch.Addr, m.Procs()),
		slot:      make([]arch.Addr, rcuSlots),
		lock:      *NewTTSLock(m, policy, opts),
		Words:     words,
		Opts:      opts,
	}
	for i := range r.quiescent {
		r.quiescent[i] = m.AllocSyncAt(mesh.NodeID(i), core.PolicyINV)
	}
	for s := range r.slot {
		r.slot[s] = m.Alloc(arch.BlockBytes)
	}
	for j := 0; j < words; j++ {
		m.Poke(r.slot[0]+arch.Addr(j*arch.WordBytes), arch.Word(j))
	}
	m.Poke(r.ptr, 0)
	return r
}

// ReadSnapshot walks the current snapshot and reports its version and
// whether the words were torn (mutually inconsistent — impossible unless
// grace periods are being violated).
func (r *RCU) ReadSnapshot(p *machine.Proc) (version arch.Word, torn bool) {
	s := p.Load(r.ptr)
	base := r.slot[s]
	version = p.Load(base)
	for j := 1; j < r.Words; j++ {
		if p.Load(base+arch.Addr(j*arch.WordBytes)) != version+arch.Word(j) {
			torn = true
		}
	}
	return version, torn
}

// Quiesce announces a quiescent state: the reader is between read-side
// critical sections and has caught up with the current epoch.
func (r *RCU) Quiesce(p *machine.Proc) {
	p.Store(r.quiescent[p.ID()], p.Load(r.epoch))
}

// Update publishes the next version: copy-new into the retired slot,
// swing the pointer, advance the epoch, and wait for every reader to
// announce it (the grace period). Readers are the processors for which
// isReader reports true; the writer must not be one of them.
func (r *RCU) Update(p *machine.Proc, isReader func(proc int) bool) {
	r.lock.Acquire(p)
	v := r.version + 1
	cur := p.Load(r.ptr)
	spare := (cur + 1) % rcuSlots
	base := r.slot[spare]
	for j := 0; j < r.Words; j++ {
		p.Store(base+arch.Addr(j*arch.WordBytes), v+arch.Word(j))
	}
	r.Opts.Swap(p, r.ptr, spare)
	r.version = v
	if !r.SkipGrace {
		target := r.Opts.FetchAdd(p, r.epoch, 1) + 1
		for i, q := range r.quiescent {
			if !isReader(i) {
				continue
			}
			for p.Load(q) < target {
				p.Compute(sim.Time(8 + p.Rand().Intn(16)))
			}
		}
	}
	r.lock.Release(p)
}
