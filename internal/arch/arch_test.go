package arch

import (
	"testing"
	"testing/quick"
)

func TestBlockBase(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {31, 0}, {32, 32}, {63, 32}, {0xffffffe0, 0xffffffe0},
	}
	for _, c := range cases {
		if got := BlockBase(c.in); got != c.want {
			t.Errorf("BlockBase(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestBlockBaseIdempotentAndAligned(t *testing.T) {
	f := func(a uint32) bool {
		b := BlockBase(Addr(a))
		return b%BlockBytes == 0 && BlockBase(b) == b && b <= Addr(a) && Addr(a)-b < BlockBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordIndex(t *testing.T) {
	for w := 0; w < WordsPerBlock; w++ {
		a := Addr(96 + w*WordBytes)
		if got := WordIndex(a); got != w {
			t.Errorf("WordIndex(%#x) = %d, want %d", a, got, w)
		}
	}
}

func TestBlockNumberConsistentWithBase(t *testing.T) {
	f := func(a uint32) bool {
		return BlockNumber(Addr(a)) == uint32(BlockBase(Addr(a)))/BlockBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordAligned(t *testing.T) {
	if !WordAligned(8) || WordAligned(9) || WordAligned(10) || !WordAligned(0) {
		t.Fatal("WordAligned misclassifies")
	}
}

func TestCheckWordAlignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on misaligned address")
		}
	}()
	CheckWordAligned(3)
}

func TestConstantsConsistent(t *testing.T) {
	if WordsPerBlock*WordBytes != BlockBytes {
		t.Fatal("block geometry inconsistent")
	}
	if BlockBytes != 32 || WordBytes != 4 {
		t.Fatal("paper-mandated sizes changed")
	}
}
