package apps

import (
	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// CholeskyConfig parameterizes the Cholesky-like kernel.
//
// The SPLASH Cholesky sources are not redistributable, so this is a
// right-looking sparse-factorization skeleton with the same
// synchronization structure: a central column task queue protected by a
// lock, and per-column locks guarding the updates a finished column
// applies to its dependents. The paper characterizes Cholesky only through
// its lock write-run lengths (1.59-1.62) and a mostly-uncontended
// histogram; the kernel reproduces both (see the package tests).
type CholeskyConfig struct {
	Columns int // columns to factor
	Length  int // words of data per column
	Fanout  int // dependent columns each column updates
	Policy  core.Policy
	Opts    locks.Options
	Seed    uint64
}

// DefaultCholesky sizes the kernel for a machine with procs processors.
func DefaultCholesky(procs int) CholeskyConfig {
	return CholeskyConfig{Columns: 3 * procs, Length: 16, Fanout: 2, Seed: 0xc401e5}
}

// Cholesky factors Columns columns: each processor takes the next column
// from the queue (lock-protected), "factors" it by scanning its data, and
// scatters updates into each dependent column under that column's lock.
func Cholesky(m *machine.Machine, cfg CholeskyConfig) RealResult {
	if cfg.Columns <= 0 || cfg.Length <= 0 {
		panic("apps: invalid Cholesky config")
	}

	cols := make([]arch.Addr, cfg.Columns)
	colLocks := make([]*locks.TTSLock, cfg.Columns)
	for i := range cols {
		cols[i] = m.Alloc(uint32(cfg.Length * arch.WordBytes))
		colLocks[i] = locks.NewTTSLock(m, cfg.Policy, cfg.Opts)
	}
	queueLock := locks.NewTTSLock(m, cfg.Policy, cfg.Opts)
	queueIdx := m.Alloc(4)

	// Seed the matrix with deterministic nonzeros.
	rng := sim.NewRNG(cfg.Seed)
	for _, base := range cols {
		for w := 0; w < cfg.Length; w++ {
			m.Poke(base+arch.Addr(w*arch.WordBytes), arch.Word(1+rng.Intn(9)))
		}
	}

	var factored uint64
	elapsed := m.Run(func(p *machine.Proc) {
		// Startup skew, as in LocusRoute.
		p.Compute(sim.Time(p.ID()) * 450)
		for {
			queueLock.Acquire(p)
			j := int(p.Load(queueIdx))
			p.Store(queueIdx, arch.Word(j+1))
			queueLock.Release(p)
			if j >= cfg.Columns {
				return
			}

			// Factor column j: scan its data and normalize.
			base := cols[j]
			var pivot arch.Word
			for w := 0; w < cfg.Length; w++ {
				pivot += p.Load(base + arch.Addr(w*arch.WordBytes))
			}
			// Numeric factorization of the column: coarse private work
			// relative to the lock operations, as in the SPLASH original.
			// Work varies by column, as supernode sizes vary in a real
			// sparse matrix; the variation also keeps processors from
			// returning to the task queue in lockstep convoys.
			work := sim.Time((600 + 140*(j%13)) * cfg.Length)
			p.Compute(work + sim.Time(p.Rand().Intn(4000)))

			// Scatter updates into dependents under their column locks.
			// Dependents are scattered, as in a real sparse structure, so
			// processors on nearby tasks rarely collide on a column lock.
			for d := 1; d <= cfg.Fanout; d++ {
				k := (j + d*17 + 5) % cfg.Columns
				if k == j {
					continue
				}
				colLocks[k].Acquire(p)
				for w := 0; w < cfg.Length; w += 4 {
					a := cols[k] + arch.Addr(w*arch.WordBytes)
					p.Store(a, p.Load(a)+pivot)
				}
				colLocks[k].Release(p)
				p.Compute(120)
			}
			factored++
		}
	})
	return RealResult{Elapsed: elapsed, Work: factored, Base: cols[0]}
}
