package core

import (
	"sort"
	"testing"

	"dsm/internal/arch"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// reissuer drives one node's share of a contended workload: its Done
// callback immediately issues the next operation until the quota is spent.
// Both hooks are allocated once, so a warmed-up run allocates nothing.
type reissuer struct {
	sys     *System
	node    mesh.NodeID
	addr    arch.Addr
	left    int
	issueFn func()
	done    func(Result)
}

// TestHotPathZeroAlloc pins the PR's central invariant: once the message
// pool, event pool, and stats tables are warm, the request -> message ->
// delivery -> completion path allocates nothing, under all three policies.
func TestHotPathZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Mesh.Width, cfg.Mesh.Height = 2, 2
	eng := sim.NewEngine()
	net := mesh.New(eng, cfg.Mesh)
	sys := NewSystem(eng, net, cfg)

	inv := arch.Addr(1 * arch.BlockBytes) // homed at node 1, PolicyINV default
	upd := arch.Addr(2 * arch.BlockBytes) // homed at node 2
	unc := arch.Addr(3 * arch.BlockBytes) // homed at node 3
	sys.SetPolicy(upd, PolicyUPD)
	sys.SetPolicy(unc, PolicyUNC)
	addrs := []arch.Addr{inv, upd, unc}

	remaining := 0
	drivers := make([]*reissuer, cfg.Nodes)
	for n := range drivers {
		d := &reissuer{sys: sys, node: mesh.NodeID(n)}
		d.issueFn = func() {
			d.sys.Cache(d.node).Issue(Request{
				Op: OpFetchAdd, Addr: d.addr, Val: 1, Done: d.done,
			})
		}
		d.done = func(Result) {
			d.left--
			if d.left > 0 {
				d.issueFn()
			} else {
				remaining--
			}
		}
		drivers[n] = d
	}

	// One run: for each policy in turn, all four nodes hammer the same word
	// with fetch_and_add (NAKs, retries, recalls, invalidations, updates),
	// then the engine drains. The schedule is deterministic, so the warmup
	// run reaches every pool's steady-state size.
	const opsPerDriver = 8
	run := func() {
		for _, a := range addrs {
			remaining = len(drivers)
			for _, d := range drivers {
				d.addr = a
				d.left = opsPerDriver
			}
			for _, d := range drivers {
				eng.At(eng.Now(), d.issueFn)
			}
			for remaining > 0 {
				if !eng.Step() {
					t.Fatal("deadlock in zero-alloc workload")
				}
			}
			for eng.Step() { // drain write-backs and drop hints
			}
		}
	}

	run() // warm pools, directory entries, memory blocks, stats tables

	if got := testing.AllocsPerRun(10, run); got != 0 {
		t.Fatalf("steady-state hot path allocated %.1f times per run, want 0", got)
	}
	sys.CheckCoherence()
}

// mixedWorkload drives a deterministic mixed-policy workload on a 4-node
// harness: contended fetch_and_add on INV/UPD/UNC blocks, CAS and LL/SC
// traffic, loads/stores causing migrations and recalls, and drop_copy.
// TestPoolRecyclingPreservesProtocol compares its observable outcome against
// values recorded before messages and transactions were pooled.
func mixedWorkload(h *H) {
	inv := h.addrAtHome(1, 0)
	upd := h.addrAtHome(2, 0)
	unc := h.addrAtHome(3, 0)
	h.sys.SetPolicy(upd, PolicyUPD)
	h.sys.SetPolicy(unc, PolicyUNC)

	for round := 0; round < 6; round++ {
		for _, a := range []arch.Addr{inv, upd, unc} {
			reqs := map[int]Request{}
			for n := 0; n < 4; n++ {
				reqs[n] = Request{Op: OpFetchAdd, Addr: a, Val: 1}
			}
			h.doAll(reqs)
		}
		// CAS contention (success and failure mixed).
		h.doAll(map[int]Request{
			0: {Op: OpCAS, Addr: inv, Val: arch.Word(4 * (round + 1)), Val2: 100},
			1: {Op: OpCAS, Addr: inv, Val: 0, Val2: 200},
			2: {Op: OpLoad, Addr: inv},
			3: {Op: OpStore, Addr: inv, Val: arch.Word(4 * (round + 1))},
		})
		// LL/SC on each policy.
		for _, a := range []arch.Addr{inv, upd, unc} {
			v := h.do(2, OpLL, a)
			h.do(2, OpSC, a, v.Value+1)
		}
		h.do(1, OpDropCopy, inv)
		h.do(0, OpLoadExclusive, inv)
		h.do(3, OpFetchOr, upd, 2)
		h.do(3, OpTestAndSet, unc)
	}
	for h.eng.Step() { // drain fire-and-forget traffic
	}
}

// TestPoolRecyclingPreservesProtocol pins the complete observable behavior
// of mixedWorkload — protocol counters, per-class chain histograms,
// contention histogram, and write-run histogram — to the values measured
// before message pooling, transaction reuse, and indexed stats recording
// were introduced. Any ownership bug in the message free list (freeing a
// retained request, replaying a recycled message, double delivery) perturbs
// at least one of these.
func TestPoolRecyclingPreservesProtocol(t *testing.T) {
	h := newH(t)
	mixedWorkload(h)
	h.sys.CheckCoherence()

	if got, want := h.sys.Counters(), (Counters{
		Requests: 156, LocalHits: 43, Naks: 36, Retries: 36,
		Invals: 6, Updates: 96, Writebacks: 42, SCFailLocal: 0,
	}); got != want {
		t.Errorf("counters changed:\n got %+v\nwant %+v", got, want)
	}

	wantChains := map[string]string{
		"compare_and_swap/INV":  "2:12",
		"drop_copy/INV":         "0:6",
		"fetch_and_add/INV":     "0:6 2:11 4:7",
		"fetch_and_add/UNC":     "0:6 2:18",
		"fetch_and_add/UPD":     "0:1 2:6 3:17",
		"fetch_and_or/UPD":      "2:2 3:4",
		"load/INV":              "4:6",
		"load_exclusive/INV":    "4:6",
		"load_linked/INV":       "0:6",
		"load_linked/UNC":       "2:6",
		"load_linked/UPD":       "0:6",
		"store/INV":             "0:6",
		"store_conditional/INV": "3:6",
		"store_conditional/UNC": "2:6",
		"store_conditional/UPD": "2:6",
		"test_and_set/UNC":      "0:6",
	}
	rec := h.sys.Chains()
	classes := rec.Classes()
	sort.Strings(classes)
	for _, cl := range classes {
		want, ok := wantChains[cl]
		if !ok {
			t.Errorf("unexpected chain class %q: %s", cl, rec.Class(cl))
			continue
		}
		if got := rec.Class(cl).String(); got != want {
			t.Errorf("chain %q changed: got %s, want %s", cl, got, want)
		}
		delete(wantChains, cl)
	}
	for cl := range wantChains {
		t.Errorf("chain class %q missing", cl)
	}

	if got, want := h.sys.Contention().Histogram().String(), "1:72 2:24 3:18 4:18"; got != want {
		t.Errorf("contention histogram changed: got %s, want %s", got, want)
	}
	h.sys.WriteRuns().Flush()
	if got, want := h.sys.WriteRuns().Histogram().String(), "1:90 2:26 4:11"; got != want {
		t.Errorf("write-run histogram changed: got %s, want %s", got, want)
	}
}
