package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"dsm/internal/exper"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of goroutines running simulations
	// concurrently. 0 selects GOMAXPROCS. Simulations are CPU-bound, so
	// more workers than cores buys queueing, not throughput.
	Workers int
	// Queue bounds how many accepted simulations may wait for a worker.
	// Beyond it the service answers 429 + Retry-After. 0 selects 64.
	Queue int
	// CacheEntries bounds the result cache (LRU beyond it). 0 selects 1024.
	CacheEntries int
	// Timeout is the per-request deadline covering queue wait plus
	// simulation; expiry answers 504. 0 selects 30s.
	Timeout time.Duration
}

// Server is the simulation service: an http.Handler plus the worker pool,
// result cache, and single-flight group behind it.
type Server struct {
	cfg     Config
	cache   *resultCache
	flight  *flightGroup
	pool    *workerPool
	met     metrics
	mux     *http.ServeMux
	closing atomic.Bool
}

// New builds a server. Call Close to drain it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		cache:  newResultCache(cfg.CacheEntries),
		flight: newFlightGroup(),
		pool:   newWorkerPool(cfg.Workers, cfg.Queue),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/sim", s.handleSim)
	s.mux.HandleFunc("/v1/fill", s.handleFill)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns a point-in-time snapshot of the service counters.
func (s *Server) Metrics() Snapshot {
	snap := s.met.snapshot()
	snap.CacheEntries, snap.CacheEvictions, snap.CacheShards = s.cache.stats()
	snap.FlightShards = len(s.flight.shards)
	snap.QueueDepth = s.pool.depth()
	snap.Workers = s.cfg.Workers
	return snap
}

// Close drains the worker pool: queued simulations complete, their waiters
// get responses, and Close returns once the workers have exited. The HTTP
// listener must already have stopped dispatching new requests (e.g. via
// http.Server.Shutdown) — new arrivals during the drain are answered 503,
// but requests already past that check may not be.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	s.pool.close()
}

// ------------------------------------------------------------ handlers --

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost && r.Method != http.MethodHead {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET with query parameters or POST with a JSON spec")
		return
	}
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	start := time.Now()
	spec, err := ParseSpecRequest(r)
	if err == nil {
		spec, err = spec.Normalize()
	}
	if err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := spec.Key()

	// Probe mode (HEAD, or ?probe=1 on GET/POST): answer from the result
	// cache only, never simulating and never touching the queue. A hit is
	// the normal 200 response (HEAD drops the body); a miss is 404 with
	// X-Cache: miss. This is the cheap cache-visibility path the fleet
	// router uses to ask "do you have this?" before paying for a
	// simulation — a probe miss must stay O(cache lookup).
	if r.Method == http.MethodHead || r.URL.Query().Get("probe") == "1" {
		s.met.probes.Add(1)
		data, ok := s.cache.get(key)
		if !ok {
			w.Header().Set("X-Cache", "miss")
			w.Header().Set("X-Spec-Key", key)
			if r.Method == http.MethodHead {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			s.writeError(w, http.StatusNotFound, "not cached")
			return
		}
		s.met.probeHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("X-Spec-Key", key)
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Write(data)
		return
	}
	s.met.requests.Add(1)

	data, call, state := s.start(spec, key, 0)
	switch state {
	case dispatchHit:
		s.met.hits.Add(1)
		s.writeOutcome(w, data, "hit", key, start)
		return
	case dispatchMiss:
		s.met.misses.Add(1)
	case dispatchCoalesced:
		s.met.coalesced.Add(1)
	}

	deadline := time.NewTimer(s.cfg.Timeout)
	defer deadline.Stop()
	select {
	case <-call.done:
	case <-deadline.C:
		s.met.timeouts.Add(1)
		s.writeError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("deadline of %s exceeded (queue wait + simulation)", s.cfg.Timeout))
		return
	case <-r.Context().Done():
		// Client gone; nothing useful to write.
		return
	}
	switch {
	case call.err == errBusy:
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("simulation queue full (%d queued); retry shortly", s.cfg.Queue))
	case call.err != nil:
		s.met.errors.Add(1)
		s.writeError(w, http.StatusInternalServerError, call.err.Error())
	default:
		label := "miss"
		if state == dispatchCoalesced {
			label = "coalesced"
		}
		s.writeOutcome(w, call.data, label, key, start)
	}
}

// dispatchState classifies how start resolved a spec: already cached,
// newly dispatched to the worker pool, or merged into an in-flight
// identical simulation.
type dispatchState uint8

const (
	dispatchHit dispatchState = iota
	dispatchMiss
	dispatchCoalesced
)

// start resolves one canonical spec without blocking on the simulation:
// a cache hit returns the encoded bytes directly; otherwise the caller
// gets the single-flight call to wait on. On a miss this caller's spec is
// submitted to the worker pool, waiting up to queueWait for space (a still
// full queue fails the call with errBusy, releasing any followers that
// joined meanwhile); /v1/sim passes zero and turns errBusy into its 429.
// Both the single-sim and the batch sweep handlers dispatch through here,
// so they share one cache and one in-flight set — a sweep point coalesces
// with a concurrent /v1/sim request for the same spec and vice versa.
func (s *Server) start(spec Spec, key string, queueWait time.Duration) ([]byte, *flightCall, dispatchState) {
	if data, ok := s.cache.get(key); ok {
		return data, nil, dispatchHit
	}
	call, leader := s.flight.join(key)
	if !leader {
		return nil, call, dispatchCoalesced
	}
	if !s.pool.submitWait(func(slot *exper.MachineSlot) {
		data, err := s.runEncoded(spec, slot)
		if err == nil {
			s.cache.put(key, data)
		}
		s.flight.complete(key, call, data, err)
	}, queueWait) {
		s.flight.complete(key, call, nil, errBusy)
	}
	return nil, call, dispatchMiss
}

// runEncoded executes the spec on the worker's machine slot and returns
// its canonical JSON bytes, converting a panic anywhere under the
// simulator into an error so one bad run cannot take down a worker. A
// panicked run leaves the slot's machine in an unknown state, so the slot
// is cleared and the next job on this worker builds a fresh machine.
func (s *Server) runEncoded(spec Spec, slot *exper.MachineSlot) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			*slot = exper.MachineSlot{}
			err = fmt.Errorf("simulation failed: %v", r)
		}
	}()
	s.met.runs.Add(1)
	return RunOn(spec, slot).Encode()
}

var errBusy = fmt.Errorf("queue full")

// handleFill inserts an externally obtained result into the cache:
// POST /v1/fill with a body that is byte-for-byte a /v1/sim response (the
// canonical Outcome encoding). The fleet router uses this to copy a result
// from the backend that has it to the backends that should — peer fill
// after a membership change, and hot-key replication — without re-running
// the simulation. The body's embedded spec is re-normalized and its content
// address recomputed; a body whose bytes do not carry the key they claim is
// rejected, so a fill can relocate results but never relabel them. The
// endpoint trusts its callers beyond that (it is a fleet-internal surface,
// like /metrics), so deployments must not expose it publicly.
func (s *Server) handleFill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST with a /v1/sim response body")
		return
	}
	if s.closing.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<22))
	if err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad fill body: %v", err))
		return
	}
	var claim struct {
		Spec Spec   `json:"spec"`
		Key  string `json:"key"`
	}
	if err := json.Unmarshal(body, &claim); err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("fill body is not an outcome: %v", err))
		return
	}
	spec, err := claim.Spec.Normalize()
	if err != nil {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("fill spec: %v", err))
		return
	}
	if key := spec.Key(); key != claim.Key {
		s.met.badRequest.Add(1)
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("fill key %s does not match its spec (%s)", claim.Key, key))
		return
	}
	s.cache.put(claim.Key, body)
	s.met.fills.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// ------------------------------------------------------------ encoding --

func (s *Server) writeOutcome(w http.ResponseWriter, data []byte, cache, key string, start time.Time) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Header().Set("X-Spec-Key", key)
	w.Write(data)
	s.met.latency.observe(time.Since(start))
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ParseSpecRequest decodes a spec from a POST JSON body or GET/HEAD query
// parameters (app, policy, prim, cas, ldex, drop, procs, c, a, rounds,
// size, seed — mirroring the cmd/dsmsim flags). Exported so the fleet
// router parses requests exactly the way the backends it fronts do; the
// result still needs Normalize before Key or Point.
func ParseSpecRequest(r *http.Request) (Spec, error) {
	var sp Spec
	if r.Method == http.MethodPost {
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			return sp, fmt.Errorf("bad spec JSON: %w", err)
		}
		return sp, nil
	}
	q := r.URL.Query()
	sp.App = q.Get("app")
	sp.Policy = q.Get("policy")
	sp.Prim = q.Get("prim")
	sp.Variant = q.Get("cas")
	var err error
	parseInt := func(name string, dst *int) {
		if err != nil || !q.Has(name) {
			return
		}
		var v int64
		if v, err = strconv.ParseInt(q.Get(name), 10, 0); err != nil {
			err = fmt.Errorf("bad %s %q", name, q.Get(name))
			return
		}
		*dst = int(v)
	}
	parseBool := func(name string, dst *bool) {
		if err != nil || !q.Has(name) {
			return
		}
		if *dst, err = strconv.ParseBool(q.Get(name)); err != nil {
			err = fmt.Errorf("bad %s %q", name, q.Get(name))
		}
	}
	parseInt("procs", &sp.Procs)
	parseInt("c", &sp.Contention)
	parseInt("rounds", &sp.Rounds)
	parseInt("size", &sp.Size)
	parseBool("ldex", &sp.LoadEx)
	parseBool("drop", &sp.Drop)
	if err == nil && q.Has("a") {
		if sp.WriteRun, err = strconv.ParseFloat(q.Get("a"), 64); err != nil {
			err = fmt.Errorf("bad a %q", q.Get("a"))
		}
	}
	if err == nil && q.Has("seed") {
		if sp.Seed, err = strconv.ParseUint(q.Get("seed"), 10, 64); err != nil {
			err = fmt.Errorf("bad seed %q", q.Get("seed"))
		}
	}
	return sp, err
}
