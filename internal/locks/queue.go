package locks

import (
	"fmt"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// Queue is a bounded FIFO built on fetch_and_add in the style of Gottlieb,
// Lubachevsky & Rudolph (the paper's reference [9] — "for many other
// objects" fetch_and_add is very efficient): producers and consumers claim
// slots with fetch_and_add on the tail and head tickets and then
// synchronize on a per-slot turn word, so the hot atomic words see exactly
// one atomic operation per queue operation.
//
// Slots and turn words live in distinct blocks to avoid false sharing.
// Values must be non-zero (zero marks an empty slot assertion in tests).
type Queue struct {
	head arch.Addr // consumer ticket counter
	tail arch.Addr // producer ticket counter
	turn []arch.Addr
	data []arch.Addr
	opts Options
}

// NewQueue allocates a queue with the given number of slots.
func NewQueue(m *machine.Machine, policy core.Policy, slots int, opts Options) *Queue {
	if slots <= 0 {
		panic("locks: queue needs at least one slot")
	}
	q := &Queue{
		head: m.AllocSync(policy),
		tail: m.AllocSync(policy),
		turn: make([]arch.Addr, slots),
		data: make([]arch.Addr, slots),
		opts: opts,
	}
	for i := range q.turn {
		q.turn[i] = m.Alloc(arch.BlockBytes)
		q.data[i] = m.Alloc(arch.BlockBytes)
	}
	return q
}

// slots returns the capacity.
func (q *Queue) slots() int { return len(q.turn) }

// Enqueue appends v, blocking (in simulated time) while the queue is full.
func (q *Queue) Enqueue(p *machine.Proc, v arch.Word) {
	t := q.opts.FetchAdd(p, q.tail, 1)
	slot := int(t) % q.slots()
	round := arch.Word(int(t)/q.slots()) * 2 // even: slot free for this round
	for p.Load(q.turn[slot]) != round {
		p.Compute(sim.Time(8 + p.Rand().Intn(16)))
	}
	p.Store(q.data[slot], v)
	p.Store(q.turn[slot], round+1) // odd: full
}

// Dequeue removes and returns the oldest value, blocking while empty.
func (q *Queue) Dequeue(p *machine.Proc) arch.Word {
	h := q.opts.FetchAdd(p, q.head, 1)
	slot := int(h) % q.slots()
	round := arch.Word(int(h)/q.slots())*2 + 1 // odd: full for this round
	for p.Load(q.turn[slot]) != round {
		p.Compute(sim.Time(8 + p.Rand().Intn(16)))
	}
	v := p.Load(q.data[slot])
	p.Store(q.turn[slot], round+1) // even of next round: free
	return v
}

// String describes the queue configuration.
func (q *Queue) String() string {
	return fmt.Sprintf("faa-queue(slots=%d, prim=%s)", q.slots(), q.opts.Prim)
}
