package core

import (
	"strings"
	"testing"

	"dsm/internal/arch"
	"dsm/internal/cache"
	"dsm/internal/dir"
	"dsm/internal/mesh"
	"dsm/internal/sim"
)

// recordingTracer captures trace events for assertions.
type recordingTracer struct {
	lines []string
}

func (r *recordingTracer) Record(at sim.Time, node int, kind, detail string) {
	r.lines = append(r.lines, kind+" "+detail)
}

func TestTracerSeesIssueSendComplete(t *testing.T) {
	h := newH(t)
	tr := &recordingTracer{}
	h.sys.SetTracer(tr)
	a := h.addrAtHome(1, 0)
	h.do(0, OpStore, a, 5)
	joined := strings.Join(tr.lines, "\n")
	for _, want := range []string{"issue store", "send read-ex", "send data-e", "complete store"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q:\n%s", want, joined)
		}
	}
	h.sys.SetTracer(nil)
	n := len(tr.lines)
	h.do(0, OpLoad, a)
	if len(tr.lines) != n {
		t.Fatal("events recorded after tracer removed")
	}
}

func TestUPDSameValueWriteSendsNoUpdates(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	h.do(0, OpTestAndSet, a) // 0 -> 1: a real change
	h.do(1, OpLoad, a)       // node 1 caches a copy
	before := h.sys.Counters().Updates
	h.do(3, OpTestAndSet, a) // 1 -> 1: no change
	if got := h.sys.Counters().Updates; got != before {
		t.Fatalf("same-value write sent %d updates", got-before)
	}
	// A changing write still updates the copies (nodes 0 and 1 share).
	h.do(3, OpStore, a, 0)
	if got := h.sys.Counters().Updates; got != before+2 {
		t.Fatalf("changing write sent %d updates, want 2", got-before)
	}
	if r := h.do(1, OpLoad, a); r.Value != 0 || r.Chain != 0 {
		t.Fatalf("sharer copy = %+v", r)
	}
}

func TestUPDSameValueWriteStillClearsReservations(t *testing.T) {
	// Even a write of the same value must invalidate LL reservations —
	// that is the semantic difference between SC and CAS the paper builds
	// the pointer-problem argument on.
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	h.do(0, OpLL, a)       // reserve; value 0
	h.do(1, OpStore, a, 0) // same-value write
	if r := h.do(0, OpSC, a, 9); r.OK {
		t.Fatal("SC succeeded across a same-value write")
	}
}

// TestEvictionPressureStress forces constant evictions with a one-set
// cache while multiple nodes fight over several blocks; write-backs race
// recalls continuously. Validates liveness, linearizability of the
// counters, and the coherence invariant.
func TestEvictionPressureStress(t *testing.T) {
	h := newH(t, func(c *Config) {
		c.Cache = cache.Config{Sets: 1, Assoc: 2}
	})
	// Four counters that map to the same cache set everywhere.
	addrs := []arch.Addr{
		h.addrAtHome(0, 0), h.addrAtHome(1, 0), h.addrAtHome(2, 0), h.addrAtHome(3, 0),
	}
	const nodes, iters = 4, 30
	remaining := nodes
	var step func(n, left int)
	step = func(n, left int) {
		if left == 0 {
			remaining--
			return
		}
		a := addrs[(n+left)%len(addrs)]
		h.sys.Cache(mesh.NodeID(n)).Issue(Request{
			Op: OpFetchAdd, Addr: a, Val: 1,
			Done: func(Result) { step(n, left-1) },
		})
	}
	for n := 0; n < nodes; n++ {
		n := n
		h.eng.At(0, func() { step(n, iters) })
	}
	for remaining > 0 {
		if !h.eng.Step() {
			t.Fatalf("eviction stress deadlocked (%d nodes left)", remaining)
		}
	}
	h.drain()
	var total arch.Word
	for _, a := range addrs {
		total += h.do(0, OpLoad, a).Value
		h.drain()
	}
	if total != nodes*iters {
		t.Fatalf("sum of counters = %d, want %d", total, nodes*iters)
	}
	if h.sys.Counters().Writebacks == 0 {
		t.Fatal("no evictions occurred; stress ineffective")
	}
	h.sys.CheckCoherence()
}

func TestLLOnRemoteExclusiveBlock(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpStore, a, 5) // node 0 exclusive dirty
	r := h.do(1, OpLL, a)
	if r.Value != 5 {
		t.Fatalf("LL = %+v, want dirty value 5", r)
	}
	// The owner was downgraded, both share now.
	if l := h.sys.Cache(0).CacheArray().Peek(a); l == nil || l.State != cache.SharedRO {
		t.Fatal("owner not downgraded by LL")
	}
	if r := h.do(1, OpSC, a, 6); !r.OK {
		t.Fatalf("SC after LL failed: %+v", r)
	}
	if r := h.do(0, OpLoad, a); r.Value != 6 {
		t.Fatalf("value = %d", r.Value)
	}
}

func TestSCWhileOnlySharerSucceedsWithChain2(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpLL, a)
	r := h.do(0, OpSC, a, 1)
	if !r.OK || r.Chain != 2 {
		t.Fatalf("lone-sharer SC = %+v, want success with chain 2", r)
	}
}

func TestSCWithOtherSharersInvalidatesThem(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(3, 0)
	h.do(1, OpLoad, a) // extra sharer
	h.do(0, OpLL, a)
	before := h.sys.Counters().Invals
	r := h.do(0, OpSC, a, 1)
	if !r.OK || r.Chain != 3 {
		t.Fatalf("SC with sharers = %+v, want chain 3", r)
	}
	if h.sys.Counters().Invals != before+1 {
		t.Fatal("sharer not invalidated by SC grant")
	}
	if h.sys.Cache(1).CacheArray().Peek(a) != nil {
		t.Fatal("stale copy survived SC")
	}
}

func TestSerialSchemeOnUPDPolicy(t *testing.T) {
	h := newH(t, func(c *Config) { c.ResvScheme = dir.ResvSerial })
	a := h.addrAtHome(1, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	r := h.do(0, OpLL, a)
	h.do(1, OpFetchAdd, a, 1) // bumps the serial
	if r2 := h.doReq(0, Request{Op: OpSC, Addr: a, Val: 9, Val2: r.Serial}); r2.OK {
		t.Fatal("stale-serial SC succeeded under UPD")
	}
	r = h.do(0, OpLL, a)
	if r.Value != 1 {
		t.Fatalf("LL = %+v", r)
	}
	if r2 := h.doReq(0, Request{Op: OpSC, Addr: a, Val: 9, Val2: r.Serial}); !r2.OK {
		t.Fatal("fresh-serial SC failed under UPD")
	}
}

func TestLimitedSchemeOnUPDPolicy(t *testing.T) {
	h := newH(t, func(c *Config) {
		c.ResvScheme = dir.ResvLimited
		c.ResvLimit = 1
	})
	a := h.addrAtHome(1, 0)
	h.sys.SetPolicy(a, PolicyUPD)
	if r := h.do(0, OpLL, a); r.Hint {
		t.Fatal("first LL hinted")
	}
	if r := h.do(2, OpLL, a); !r.Hint {
		t.Fatal("second LL did not hint under limit 1")
	}
	if r := h.do(2, OpSC, a, 5); r.OK || r.Chain != 0 {
		t.Fatalf("hinted SC = %+v, want local fail", r)
	}
}

func TestChainRecorderClassesPopulated(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	b := h.addrAtHome(2, 0)
	h.sys.SetPolicy(b, PolicyUNC)
	h.do(0, OpFetchAdd, a, 1)
	h.do(0, OpFetchAdd, b, 1)
	rec := h.sys.Chains()
	if rec.Class("fetch_and_add/INV") == nil || rec.Class("fetch_and_add/UNC") == nil {
		t.Fatalf("chain classes = %v", rec.Classes())
	}
	if rec.Class("fetch_and_add/UNC").Count(2) != 1 {
		t.Fatal("UNC fetch_and_add chain not 2")
	}
}

func TestCountersLocalHitRate(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(1, 0)
	h.do(0, OpStore, a, 1) // miss
	for i := 0; i < 5; i++ {
		h.do(0, OpStore, a, arch.Word(i)) // hits
	}
	c := h.sys.Counters()
	if c.Requests != 6 || c.LocalHits != 5 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLoadExclusiveOnSharedUpgrades(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(2, 0)
	h.do(0, OpLoad, a) // S copy at node 0
	h.do(1, OpLoad, a) // S copy at node 1
	r := h.do(0, OpLoadExclusive, a)
	if r.Chain != 3 {
		t.Fatalf("load_exclusive upgrade chain = %d, want 3", r.Chain)
	}
	if h.sys.Cache(1).CacheArray().Peek(a) != nil {
		t.Fatal("other sharer survived load_exclusive")
	}
	l := h.sys.Cache(0).CacheArray().Peek(a)
	if l == nil || l.State != cache.ExclusiveRW {
		t.Fatal("load_exclusive did not leave an exclusive copy")
	}
}

func TestUNCMixedOpsSequence(t *testing.T) {
	h := newH(t)
	a := h.addrAtHome(3, 0)
	h.sys.SetPolicy(a, PolicyUNC)
	h.do(0, OpStore, a, 3)
	if r := h.do(1, OpFetchOr, a, 4); r.Value != 3 {
		t.Fatalf("fetch_and_or old = %d", r.Value)
	}
	if r := h.do(2, OpCAS, a, 7, 9); !r.OK {
		t.Fatalf("CAS(7->9) failed: %+v", r)
	}
	if r := h.do(3, OpLoad, a); r.Value != 9 {
		t.Fatalf("value = %d", r.Value)
	}
	if r := h.do(0, OpLoadExclusive, a); r.Value != 9 || r.Chain != 2 {
		t.Fatalf("UNC load_exclusive = %+v (degenerates to a memory load)", r)
	}
}

func TestPolicyIsolationBetweenBlocks(t *testing.T) {
	// Different policies on adjacent blocks never interfere.
	h := newH(t)
	inv := h.addrAtHome(0, 1)
	upd := h.addrAtHome(0, 2)
	unc := h.addrAtHome(0, 3)
	h.sys.SetPolicy(upd, PolicyUPD)
	h.sys.SetPolicy(unc, PolicyUNC)
	for i := 0; i < 3; i++ {
		h.do(i, OpFetchAdd, inv, 1)
		h.do(i, OpFetchAdd, upd, 1)
		h.do(i, OpFetchAdd, unc, 1)
	}
	h.drain()
	for _, a := range []arch.Addr{inv, upd, unc} {
		if v := h.do(3, OpLoad, a).Value; v != 3 {
			t.Fatalf("counter at %#x = %d", a, v)
		}
		h.drain()
	}
	if h.sys.Cache(0).CacheArray().Peek(unc) != nil {
		t.Fatal("UNC block leaked into a cache")
	}
	h.sys.CheckCoherence()
}
