package sim

import (
	"testing"
	"testing/quick"
)

// TestPropertyEventsExecuteInTimeOrder schedules a random batch of events
// and verifies execution times are non-decreasing and ties respect
// scheduling order.
func TestPropertyEventsExecuteInTimeOrder(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var ran []rec
		for i, d := range delays {
			i, d := i, d
			e.At(Time(d), func() { ran = append(ran, rec{e.Now(), i}) })
		}
		e.Run(0)
		if len(ran) != len(delays) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i].at < ran[i-1].at {
				return false
			}
			if ran[i].at == ran[i-1].at && ran[i].seq < ran[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyNestedSchedulingNeverTravelsBack: events scheduled from
// inside events never run before their scheduling point.
func TestPropertyNestedSchedulingNeverTravelsBack(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		e := NewEngine()
		r := NewRNG(seed)
		violated := false
		var spawn func(depth int)
		spawn = func(depth int) {
			born := e.Now()
			e.After(Time(r.Intn(20)), func() {
				if e.Now() < born {
					violated = true
				}
				if depth < int(n%6) {
					spawn(depth + 1)
				}
			})
		}
		e.At(0, func() { spawn(0) })
		e.At(0, func() { spawn(0) })
		e.Run(0)
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
