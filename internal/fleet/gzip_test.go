package fleet

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func gunzip(t *testing.T, b []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("gzip header: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	return out
}

func (f *testFleet) doGzip(method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	req.Header.Set("Accept-Encoding", "gzip")
	w := httptest.NewRecorder()
	f.rt.Handler().ServeHTTP(w, req)
	return w
}

// TestRouterGzipHitInflatesToIdentityBytes is the routed compression
// contract: a gzip-negotiated hit through the router must carry the
// backend's precompressed variant — Content-Encoding intact across the
// relay — and inflate to exactly the identity bytes a plain client gets.
func TestRouterGzipHitInflatesToIdentityBytes(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)

	// The miss path answers identity regardless of Accept-Encoding (the
	// backend computes, encodes, and writes the fresh outcome unencoded).
	first := f.doGzip(http.MethodPost, "/v1/sim", quickSpec)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first = %d X-Cache=%q: %s", first.Code, first.Header().Get("X-Cache"), first.Body)
	}
	if enc := first.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("miss carries Content-Encoding %q", enc)
	}

	// Warm gzip hit: compressed on the wire, identity after inflation.
	zw := f.doGzip(http.MethodPost, "/v1/sim", quickSpec)
	if zw.Code != http.StatusOK || zw.Header().Get("X-Cache") != "hit" {
		t.Fatalf("gzip hit = %d X-Cache=%q: %s", zw.Code, zw.Header().Get("X-Cache"), zw.Body)
	}
	if enc := zw.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	if vary := zw.Header().Get("Vary"); vary != "Accept-Encoding" {
		t.Fatalf("Vary = %q, want Accept-Encoding", vary)
	}
	if zw.Body.Len() >= first.Body.Len() {
		t.Fatalf("gzip body (%d bytes) not smaller than identity (%d bytes)", zw.Body.Len(), first.Body.Len())
	}
	if got := gunzip(t, zw.Body.Bytes()); !bytes.Equal(got, first.Body.Bytes()) {
		t.Fatal("routed gzip hit does not inflate to the identity bytes")
	}

	// A plain client right after still gets the identity representation.
	plain := f.do(http.MethodPost, "/v1/sim", quickSpec)
	if plain.Code != http.StatusOK || plain.Header().Get("X-Cache") != "hit" {
		t.Fatalf("plain hit = %d X-Cache=%q", plain.Code, plain.Header().Get("X-Cache"))
	}
	if enc := plain.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("plain hit carries Content-Encoding %q", enc)
	}
	if !bytes.Equal(plain.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("plain hit drifted from the miss bytes")
	}

	// The content negotiation never cost a second simulation.
	if runs := f.totalRuns(); runs != 1 {
		t.Fatalf("fleet ran %d simulations, want 1", runs)
	}
}

// TestRouterGzipProbePassthrough checks the probe path relays the
// compressed representation too: a HEAD stays body-less, a GET probe
// carries gzip when negotiated.
func TestRouterGzipProbePassthrough(t *testing.T) {
	f := newTestFleet(t, 2, Config{}, nil)
	warm := f.do(http.MethodPost, "/v1/sim", quickSpec)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm = %d", warm.Code)
	}
	w := f.doGzip(http.MethodPost, "/v1/sim?probe=1", quickSpec)
	if w.Code != http.StatusOK || w.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip probe = %d enc=%q", w.Code, w.Header().Get("Content-Encoding"))
	}
	if got := gunzip(t, w.Body.Bytes()); !bytes.Equal(got, warm.Body.Bytes()) {
		t.Fatal("probe body does not inflate to the served bytes")
	}
}
