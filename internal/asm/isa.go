// Package asm provides a small MIPS-flavored assembly front end for the
// simulator, playing the role MINT's MIPS R4000 interpretation plays in
// the paper: synchronization code can be written at the instruction level
// (the paper's test-and-test-and-set lock was "an assembly language
// implementation") and executed instruction-by-instruction, each
// instruction costing one cycle plus the memory system's latency for
// memory operations.
//
// The ISA is a pragmatic subset of MIPS II plus the paper's primitives:
//
//	li    $d, imm            ; d <- imm
//	move  $d, $s             ; d <- s
//	lw    $d, off($s)        ; load word
//	sw    $t, off($s)        ; store word
//	ll    $d, off($s)        ; load_linked
//	sc    $t, off($s)        ; store_conditional; t <- 1/0
//	ldex  $d, off($s)        ; load_exclusive (auxiliary instruction)
//	dropc off($s)            ; drop_copy (auxiliary instruction)
//	faa   $d, $t, off($s)    ; d <- fetch_and_add(addr, t)
//	fas   $d, $t, off($s)    ; d <- fetch_and_store(addr, t)
//	faor  $d, $t, off($s)    ; d <- fetch_and_or(addr, t)
//	tas   $d, off($s)        ; d <- test_and_set(addr)
//	cas   $d, $e, $n, off($s); d <- 1 if compare_and_swap(addr, e, n) else 0
//	addu/subu/or/and/xor/sltu $d, $s, $t
//	addiu/ori/andi/sltiu      $d, $s, imm
//	sll/srl $d, $s, shamt
//	beq/bne $s, $t, label
//	blez/bgtz $s, label
//	j     label
//	pause imm                ; imm cycles of local computation
//	pauser $s                ; $s cycles of local computation
//	rand  $d, $s             ; d <- uniform [0, s) from the CPU's stream
//	halt
//
// Labels end with ':'; comments start with '#' or ';'. Registers use
// numbers ($0-$31) or the standard MIPS names ($zero, $at, $v0-$v1,
// $a0-$a3, $t0-$t9, $s0-$s7, $k0-$k1, $gp, $sp, $fp, $ra).
package asm

import "fmt"

// Reg is a register number, 0-31. Register 0 is hardwired to zero.
type Reg uint8

// Opcode identifies an instruction.
type Opcode uint8

const (
	LI Opcode = iota
	MOVE
	LW
	SW
	LL
	SC
	LDEX
	DROPC
	FAA
	FAS
	FAOR
	TAS
	CAS
	ADDU
	SUBU
	OR
	AND
	XOR
	SLTU
	ADDIU
	ORI
	ANDI
	SLTIU
	SLL
	SRL
	BEQ
	BNE
	BLEZ
	BGTZ
	J
	PAUSE
	PAUSER
	RAND
	NOP
	HALT
)

var opNames = [...]string{
	LI: "li", MOVE: "move", LW: "lw", SW: "sw", LL: "ll", SC: "sc",
	LDEX: "ldex", DROPC: "dropc", FAA: "faa", FAS: "fas", FAOR: "faor",
	TAS: "tas", CAS: "cas", ADDU: "addu", SUBU: "subu", OR: "or",
	AND: "and", XOR: "xor", SLTU: "sltu", ADDIU: "addiu", ORI: "ori",
	ANDI: "andi", SLTIU: "sltiu", SLL: "sll", SRL: "srl", BEQ: "beq",
	BNE: "bne", BLEZ: "blez", BGTZ: "bgtz", J: "j", PAUSE: "pause", PAUSER: "pauser",
	RAND: "rand", NOP: "nop", HALT: "halt",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op Opcode
	Rd Reg // destination (or branch source 1)
	Rs Reg // source / base register
	Rt Reg // second source (store value, operand)
	Re Reg // CAS expected value register
	// Imm is the immediate, load/store offset, shift amount, or pause
	// cycle count.
	Imm int32
	// Target is the resolved branch/jump destination (instruction index).
	Target int

	line int // source line, for diagnostics
}

// Program is an assembled instruction sequence.
type Program struct {
	Instrs []Instr
	Labels map[string]int
}

// regNames maps the conventional MIPS register names to numbers.
var regNames = map[string]Reg{
	"zero": 0, "at": 1, "v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
	"s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"t8": 24, "t9": 25, "k0": 26, "k1": 27,
	"gp": 28, "sp": 29, "fp": 30, "ra": 31,
}
