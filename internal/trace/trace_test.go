package trace

import (
	"strings"
	"testing"

	"dsm/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	b := New(4)
	for i := 0; i < 3; i++ {
		b.Record(simTime(i), i, "send", "x")
	}
	if b.Len() != 3 || b.Total() != 3 {
		t.Fatalf("Len=%d Total=%d", b.Len(), b.Total())
	}
	evs := b.Events()
	for i, e := range evs {
		if e.At != simTime(i) {
			t.Fatalf("events out of order: %v", evs)
		}
	}
}

func TestRingDisplacesOldest(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Record(simTime(i), i, "k", "d")
	}
	if b.Len() != 3 || b.Total() != 5 {
		t.Fatalf("Len=%d Total=%d", b.Len(), b.Total())
	}
	evs := b.Events()
	if evs[0].At != 2 || evs[2].At != 4 {
		t.Fatalf("retained window wrong: %v", evs)
	}
}

func TestFilter(t *testing.T) {
	b := New(10)
	b.Record(1, 0, "send", "read-ex -> n01")
	b.Record(2, 1, "recv", "read-ex")
	b.Record(3, 0, "complete", "store done")
	if got := b.Filter("read-ex"); len(got) != 2 {
		t.Fatalf("Filter(read-ex) = %d events", len(got))
	}
	if got := b.Filter("complete"); len(got) != 1 {
		t.Fatalf("Filter(complete) = %d events", len(got))
	}
}

func TestWriteTo(t *testing.T) {
	b := New(2)
	b.Record(7, 3, "issue", "load addr=0x40")
	var sb strings.Builder
	if _, err := b.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n03") || !strings.Contains(sb.String(), "0x40") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestReset(t *testing.T) {
	b := New(2)
	b.Record(1, 0, "k", "d")
	b.Reset()
	if b.Len() != 0 || b.Total() != 1 {
		t.Fatalf("after reset: Len=%d Total=%d", b.Len(), b.Total())
	}
	b.Record(2, 0, "k", "d")
	if b.Events()[0].At != 2 {
		t.Fatal("record after reset broken")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

// simTime converts for test brevity.
func simTime(i int) sim.Time { return sim.Time(i) }
