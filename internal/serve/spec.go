// Package serve turns the simulator into a long-lived service: an HTTP API
// that accepts simulation specs (primitive x coherence policy x contention
// point in the paper's design space), runs them as internal/exper points on
// a bounded worker pool — each worker owning a dedicated machine it reuses
// across requests — and returns the measurements as JSON. Around the pool
// sit a sharded content-addressed LRU result cache (canonical spec hash ->
// encoded report, one independently locked shard per core), sharded
// single-flight coalescing so N concurrent identical requests cost one
// simulation, bounded-queue backpressure (429 + Retry-After), per-request
// deadlines, a batch sweep endpoint streaming NDJSON, and a metrics
// surface. cmd/dsmserve wires it to a listener; cmd/dsmload drives it.
//
// For fleet deployments (internal/fleet fronts N of these servers behind a
// consistent-hash router) the cache is also externally visible: HEAD
// /v1/sim or ?probe=1 answers hit/miss from the cache without ever
// simulating, and POST /v1/fill inserts a peer's response bytes so a
// router can relocate results instead of re-running them.
package serve

import (
	"crypto/sha256"
	"fmt"
	"strconv"

	"dsm/internal/core"
	"dsm/internal/exper"
	"dsm/internal/locks"
)

// Spec is one simulation request: which workload to run, on which
// primitive/policy configuration, at what scale. String-typed enums keep
// the wire format self-describing; ParseX helpers map them to the internal
// types. The zero value of every field selects a documented default, so
// `{}` is a valid spec (the reduced-scale lock-free counter under INV/FAP).
type Spec struct {
	App     string `json:"app,omitempty"`    // counter, tts, mcs, tclosure, locusroute, cholesky, msqueue, stack, rcu, tournament, dissemination
	Policy  string `json:"policy,omitempty"` // INV, UPD, UNC
	Prim    string `json:"prim,omitempty"`   // FAP, CAS, LLSC
	Variant string `json:"cas,omitempty"`    // INV, INVd, INVs (CAS implementation)
	LoadEx  bool   `json:"ldex,omitempty"`   // pair CAS with load_exclusive
	Drop    bool   `json:"drop,omitempty"`   // issue drop_copy after updates

	Procs      int     `json:"procs,omitempty"`  // simulated processors, 1-64 (default 16)
	Contention int     `json:"c,omitempty"`      // synthetic contention level (default 1)
	WriteRun   float64 `json:"a,omitempty"`      // synthetic average write-run length (default 1)
	Rounds     int     `json:"rounds,omitempty"` // synthetic barrier-separated rounds (default 6)
	Size       int     `json:"size,omitempty"`   // transitive-closure vertices (default 12)

	Seed uint64 `json:"seed,omitempty"` // 0 selects the per-app default seeds
}

// Scale limits keep one request's simulation cost bounded: the service is
// sized for interactive exploration, not unbounded batch jobs.
const (
	MaxProcs  = 64 // the paper's machine
	MaxRounds = 256
	MaxSize   = 64
	maxWrun   = 64
)

// ParsePolicy maps a wire policy name to the internal coherence policy.
// (Forwarded from internal/exper, where the wire enums live.)
func ParsePolicy(s string) (core.Policy, error) { return exper.ParsePolicy(s) }

// ParsePrim maps a wire primitive name to the internal primitive family.
func ParsePrim(s string) (locks.Prim, error) { return exper.ParsePrim(s) }

// ParseVariant maps a wire CAS-variant name to the internal variant.
func ParseVariant(s string) (core.CASVariant, error) { return exper.ParseVariant(s) }

// Normalize validates the spec and returns its canonical form: defaults
// filled in, fields irrelevant to the selected application zeroed (so two
// requests that must produce the same result share one cache key), and all
// enums checked. It does not modify the receiver.
func (s Spec) Normalize() (Spec, error) {
	if s.App == "" {
		s.App = "counter"
	}
	app, err := exper.ParseApp(s.App)
	if err != nil {
		return s, err
	}
	// Pattern parameters apply to the synthetic counters and to every
	// workload-library structure; the real apps zero them so equivalent
	// requests share one cache key. Existing apps keep byte-identical
	// canonical forms (PatternDriven == Synthetic for them), so no cached
	// result or cross-version fill is invalidated.
	patternDriven := app.PatternDriven()
	if s.Policy == "" {
		s.Policy = "INV"
	}
	if _, err := ParsePolicy(s.Policy); err != nil {
		return s, err
	}
	if s.Prim == "" {
		s.Prim = "FAP"
	}
	if _, err := ParsePrim(s.Prim); err != nil {
		return s, err
	}
	if s.Variant == "" {
		s.Variant = "INV"
	}
	if _, err := ParseVariant(s.Variant); err != nil {
		return s, err
	}
	if s.Procs == 0 {
		s.Procs = 16
	}
	if s.Procs < 1 || s.Procs > MaxProcs {
		return s, fmt.Errorf("procs %d out of range 1-%d", s.Procs, MaxProcs)
	}
	if patternDriven {
		if s.Contention == 0 {
			s.Contention = 1
		}
		if s.Contention < 1 || s.Contention > s.Procs {
			return s, fmt.Errorf("contention %d out of range 1-%d (procs)", s.Contention, s.Procs)
		}
		if s.Contention == 1 {
			if s.WriteRun == 0 {
				s.WriteRun = 1
			}
			if s.WriteRun < 1 || s.WriteRun > maxWrun {
				return s, fmt.Errorf("write-run %g out of range 1-%d", s.WriteRun, maxWrun)
			}
		} else {
			// Write-run length only shapes the no-contention pattern.
			s.WriteRun = 0
		}
		if s.Rounds == 0 {
			s.Rounds = 6
		}
		if s.Rounds < 1 || s.Rounds > MaxRounds {
			return s, fmt.Errorf("rounds %d out of range 1-%d", s.Rounds, MaxRounds)
		}
	} else {
		s.Contention, s.WriteRun, s.Rounds = 0, 0, 0
	}
	if s.App == "tclosure" {
		if s.Size == 0 {
			s.Size = 12
		}
		if s.Size < 2 || s.Size > MaxSize {
			return s, fmt.Errorf("size %d out of range 2-%d", s.Size, MaxSize)
		}
	} else {
		s.Size = 0
	}
	return s, nil
}

// Point maps a canonical spec to the exper point it requests. The spec
// must already be normalized; Point panics on enum values Normalize would
// have rejected.
func (s Spec) Point() exper.Point {
	return exper.Point{
		App: mustParse(exper.ParseApp(s.App)),
		Bar: exper.Bar{
			Policy:  mustParse(exper.ParsePolicy(s.Policy)),
			Prim:    mustParse(exper.ParsePrim(s.Prim)),
			Variant: mustParse(exper.ParseVariant(s.Variant)),
			LoadEx:  s.LoadEx,
			Drop:    s.Drop,
		},
		Scale:   exper.RunOpts{Procs: s.Procs, Rounds: s.Rounds, TCSize: s.Size},
		Pattern: exper.Pattern{Contention: s.Contention, WriteRun: s.WriteRun, Rounds: s.Rounds},
		Seed:    s.Seed,
	}
}

// mustParse unwraps a parse-helper result on an already-normalized spec,
// where a failure is a programming error, not bad input.
func mustParse[T ~uint8](v T, err error) T {
	if err != nil {
		panic("serve: run on unnormalized spec: " + err.Error())
	}
	return v
}

// keyTextMax bounds the rendered key text: every field at its widest
// (longest app name, 64-bit seed, shortest-form float) stays well under
// this, so appendKey's scratch buffer never spills to the heap.
const keyTextMax = 192

// appendKeyText appends the fixed-order canonical rendering of every spec
// field — the preimage of the content address — to dst. The rendering is
// pinned byte-for-byte to the fmt.Sprintf form earlier releases hashed
// (TestKeyTextMatchesFmt), because changing a single byte here would
// silently invalidate every cached result and every cross-version fill.
func (s *Spec) appendKeyText(dst []byte) []byte {
	dst = append(dst, "app="...)
	dst = append(dst, s.App...)
	dst = append(dst, " policy="...)
	dst = append(dst, s.Policy...)
	dst = append(dst, " prim="...)
	dst = append(dst, s.Prim...)
	dst = append(dst, " cas="...)
	dst = append(dst, s.Variant...)
	dst = append(dst, " ldex="...)
	dst = strconv.AppendBool(dst, s.LoadEx)
	dst = append(dst, " drop="...)
	dst = strconv.AppendBool(dst, s.Drop)
	dst = append(dst, " procs="...)
	dst = strconv.AppendInt(dst, int64(s.Procs), 10)
	dst = append(dst, " c="...)
	dst = strconv.AppendInt(dst, int64(s.Contention), 10)
	dst = append(dst, " a="...)
	dst = strconv.AppendFloat(dst, s.WriteRun, 'g', -1, 64)
	dst = append(dst, " rounds="...)
	dst = strconv.AppendInt(dst, int64(s.Rounds), 10)
	dst = append(dst, " size="...)
	dst = strconv.AppendInt(dst, int64(s.Size), 10)
	dst = append(dst, " seed="...)
	dst = strconv.AppendUint(dst, s.Seed, 10)
	return dst
}

// appendKey appends the spec's content address — 64 lowercase hex digits of
// the SHA-256 of the canonical rendering — to dst. With a dst of sufficient
// capacity the whole computation stays on the caller's stack, which is what
// lets the cache-hit request path resolve a key without allocating.
func (s *Spec) appendKey(dst []byte) []byte {
	var text [keyTextMax]byte
	sum := sha256.Sum256(s.appendKeyText(text[:0]))
	const hexdig = "0123456789abcdef"
	for _, b := range sum {
		dst = append(dst, hexdig[b>>4], hexdig[b&0xf])
	}
	return dst
}

// Key returns the content address of a canonical spec: the hex SHA-256 of
// a fixed-order rendering of every field. Two specs with the same key
// request byte-for-byte the same simulation result.
func (s Spec) Key() string {
	var buf [64]byte
	return string(s.appendKey(buf[:0]))
}
