// Quickstart: simulate the paper's 64-processor DSM machine, update a
// shared counter from every processor with fetch_and_add, and compare the
// three coherence policies for atomically accessed data.
package main

import (
	"fmt"

	"dsm"
)

func main() {
	for _, policy := range []dsm.Policy{dsm.INV, dsm.UPD, dsm.UNC} {
		m := dsm.New64()
		counter := m.AllocSync(policy)

		elapsed := m.Run(func(p *dsm.Proc) {
			for i := 0; i < 4; i++ {
				p.FetchAdd(counter, 1)
				p.Compute(50) // private work between updates
			}
		})

		fmt.Printf("%s: counter=%d after %d cycles on %d processors\n",
			policy, m.Peek(counter), elapsed, m.Procs())
	}
}
