package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"dsm/internal/core"
	"dsm/internal/locks"
	"dsm/internal/proto"
)

func TestParseBarAcceptsKnownValues(t *testing.T) {
	bar, err := parseBar("UPD", "CAS", "INVd", true, true)
	if err != nil {
		t.Fatalf("parseBar: %v", err)
	}
	if bar.Policy != core.PolicyUPD || bar.Prim != locks.PrimCAS ||
		bar.Variant != core.CASDeny || !bar.LoadEx || !bar.Drop {
		t.Fatalf("parseBar = %+v", bar)
	}
}

func TestParseBarRejectsUnknownValues(t *testing.T) {
	cases := []struct {
		policy, prim, variant string
		wantErr               string
	}{
		{"MESI", "FAP", "INV", "unknown policy"},
		{"inv", "FAP", "INV", "unknown policy"}, // case-sensitive, no silent fallback
		{"INV", "XADD", "INV", "unknown primitive"},
		{"INV", "cas", "INV", "unknown primitive"},
		{"INV", "CAS", "INVx", "unknown CAS variant"},
		{"", "", "", "unknown policy"},
	}
	for _, tc := range cases {
		_, err := parseBar(tc.policy, tc.prim, tc.variant, false, false)
		if err == nil {
			t.Errorf("parseBar(%q,%q,%q) accepted", tc.policy, tc.prim, tc.variant)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseBar(%q,%q,%q) error = %v, want %q", tc.policy, tc.prim, tc.variant, err, tc.wantErr)
		}
	}
}

func TestValidateApp(t *testing.T) {
	for _, app := range []string{
		"counter", "tts", "mcs", "tclosure", "locusroute", "cholesky",
		"msqueue", "stack", "rcu", "tournament", "dissemination",
	} {
		if err := validateApp(app); err != nil {
			t.Errorf("validateApp(%q) = %v", app, err)
		}
	}
	for _, app := range []string{"", "Counter", "fib", "barnes"} {
		if err := validateApp(app); err == nil {
			t.Errorf("validateApp(%q) accepted", app)
		}
	}
}

// TestDumpProtocolGolden pins the -dump-protocol output: the tables are
// the protocol, so any change to them must show up as a reviewed golden
// diff. Regenerate with:
//
//	go run ./cmd/dsmsim -dump-protocol > cmd/dsmsim/testdata/protocol.txt
func TestDumpProtocolGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := proto.WriteTables(&buf); err != nil {
		t.Fatalf("WriteTables: %v", err)
	}
	want, err := os.ReadFile("testdata/protocol.txt")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got := buf.String()
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("protocol dump diverges from golden at line %d:\n got: %q\nwant: %q",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("protocol dump length %d lines, golden %d lines", len(gl), len(wl))
	}
}
