package stats

// Location identifies a tracked shared word (its byte address).
type Location uint32

// ContentionTracker builds the paper's contention histograms: at the
// beginning of each atomic access to a tracked location it records how many
// processors (including the newcomer) are concurrently attempting an atomic
// access to that location.
type ContentionTracker struct {
	active map[Location]map[int]int // location -> proc -> nesting count
	hist   *Histogram
}

// NewContentionTracker returns an empty tracker.
func NewContentionTracker() *ContentionTracker {
	return &ContentionTracker{
		active: make(map[Location]map[int]int),
		hist:   NewHistogram(),
	}
}

// Reset forgets all in-progress accesses and accumulated samples. The
// per-location maps are emptied in place rather than dropped: a reused
// machine touches the same tracked locations every run, and keeping the
// inner maps keeps Begin allocation-free in the steady state.
func (t *ContentionTracker) Reset() {
	for _, procs := range t.active {
		clear(procs)
	}
	t.hist.Reset()
}

// Begin records that proc started an atomic access to loc and samples the
// current contention level.
func (t *ContentionTracker) Begin(loc Location, proc int) {
	procs := t.active[loc]
	if procs == nil {
		procs = make(map[int]int)
		t.active[loc] = procs
	}
	procs[proc]++
	t.hist.Add(len(procs))
}

// End records that proc finished an atomic access to loc. Unmatched Ends
// indicate a protocol bug and panic.
func (t *ContentionTracker) End(loc Location, proc int) {
	procs := t.active[loc]
	if procs == nil || procs[proc] == 0 {
		panic("stats: contention End without Begin")
	}
	procs[proc]--
	if procs[proc] == 0 {
		delete(procs, proc)
	}
}

// Histogram returns the accumulated contention histogram.
func (t *ContentionTracker) Histogram() *Histogram { return t.hist }

// writeRun is the in-progress run state for one location.
type writeRun struct {
	writer int
	length int
}

// WriteRunTracker measures average write-run length: the number of
// consecutive writes (including atomic updates) by one processor to a
// location without intervening accesses — reads or writes — by any other
// processor (Eggers & Katz; paper section 4.2).
type WriteRunTracker struct {
	// runs holds values, not pointers: a contended location starts a new
	// run on nearly every write, and value-map updates keep that hot path
	// allocation-free.
	runs map[Location]writeRun
	hist *Histogram
}

// NewWriteRunTracker returns an empty tracker.
func NewWriteRunTracker() *WriteRunTracker {
	return &WriteRunTracker{
		runs: make(map[Location]writeRun),
		hist: NewHistogram(),
	}
}

// Reset forgets all in-progress runs and accumulated samples.
func (t *WriteRunTracker) Reset() {
	clear(t.runs)
	t.hist.Reset()
}

// Access records an access by proc to loc. Writes by the current run's
// writer extend the run; any access by another processor terminates it.
// Reads by the run's own writer neither extend nor terminate.
func (t *WriteRunTracker) Access(loc Location, proc int, write bool) {
	r, live := t.runs[loc]
	if live && proc != r.writer {
		// Intervening access by another processor ends the run.
		t.hist.Add(r.length)
		delete(t.runs, loc)
		live = false
	}
	if !write {
		return
	}
	if !live {
		t.runs[loc] = writeRun{writer: proc, length: 1}
		return
	}
	r.length++
	t.runs[loc] = r
}

// Flush terminates all in-progress runs (call at end of simulation).
func (t *WriteRunTracker) Flush() {
	for loc, r := range t.runs {
		t.hist.Add(r.length)
		delete(t.runs, loc)
	}
}

// Histogram returns the run-length histogram (Flush first for completeness).
func (t *WriteRunTracker) Histogram() *Histogram { return t.hist }

// Mean returns the average completed run length.
func (t *WriteRunTracker) Mean() float64 { return t.hist.Mean() }

// ChainRecorder accumulates serialized-network-message chain lengths per
// operation class, reproducing Table 1.
//
// Two recording paths coexist. Record takes an arbitrary class name and is
// map-backed. RecordAt takes (row, column) indices into a grid declared at
// construction (NewChainGrid) and is a flat array index — the protocol
// layer records every completed transaction through it without building a
// class string or hashing one. The read API (Class, Classes) presents both
// uniformly, naming grid cells through the grid's name function.
type ChainRecorder struct {
	byClass map[string]*Histogram

	// Grid fast path (nil/zero when constructed by NewChainRecorder).
	rows, cols int
	name       func(row, col int) string
	grid       []*Histogram // rows*cols; nil cells never recorded
	spare      []*Histogram // reset histograms parked for reuse by RecordAt
}

// NewChainRecorder returns an empty recorder with no grid.
func NewChainRecorder() *ChainRecorder {
	return &ChainRecorder{byClass: make(map[string]*Histogram)}
}

// NewChainGrid returns a recorder whose RecordAt path indexes a rows x cols
// grid; name renders a cell's class string for the read API. Record still
// works for out-of-grid classes.
func NewChainGrid(rows, cols int, name func(row, col int) string) *ChainRecorder {
	return &ChainRecorder{
		byClass: make(map[string]*Histogram),
		rows:    rows,
		cols:    cols,
		name:    name,
		grid:    make([]*Histogram, rows*cols),
		spare:   make([]*Histogram, rows*cols),
	}
}

// Reset forgets every recorded class. Grid cells return to nil so the read
// API reports exactly the classes recorded since the reset, as on a fresh
// recorder; the emptied histograms are parked in a spare grid for RecordAt
// to reclaim, keeping the reused-machine path allocation-free. Parking is
// safe because reports never alias chain histograms — report.Collect copies
// out scalar summaries.
func (c *ChainRecorder) Reset() {
	clear(c.byClass)
	for i, h := range c.grid {
		if h != nil {
			h.Reset()
			c.spare[i] = h
			c.grid[i] = nil
		}
	}
}

// Record logs a completed transaction of the given class with the given
// serialized network message count.
func (c *ChainRecorder) Record(class string, chain int) {
	h := c.byClass[class]
	if h == nil {
		h = NewHistogram()
		c.byClass[class] = h
	}
	h.Add(chain)
}

// RecordAt logs a completed transaction of the grid class (row, col). It is
// the allocation-free hot path: no class string is built or hashed.
func (c *ChainRecorder) RecordAt(row, col, chain int) {
	i := row*c.cols + col
	h := c.grid[i]
	if h == nil {
		if h = c.spare[i]; h != nil {
			c.spare[i] = nil
		} else {
			h = NewHistogram()
		}
		c.grid[i] = h
	}
	h.Add(chain)
}

// Class returns the histogram for a class, or nil if never recorded.
func (c *ChainRecorder) Class(class string) *Histogram {
	if h := c.byClass[class]; h != nil {
		return h
	}
	for i, h := range c.grid {
		if h != nil && c.name(i/c.cols, i%c.cols) == class {
			return h
		}
	}
	return nil
}

// Classes returns the recorded class names (unsorted).
func (c *ChainRecorder) Classes() []string {
	out := make([]string, 0, len(c.byClass)+len(c.grid))
	for k := range c.byClass {
		out = append(out, k)
	}
	for i, h := range c.grid {
		if h != nil {
			out = append(out, c.name(i/c.cols, i%c.cols))
		}
	}
	return out
}
