package locks

import (
	"fmt"
	"testing"

	"dsm/internal/arch"
	"dsm/internal/core"
	"dsm/internal/machine"
	"dsm/internal/sim"
)

// universalPrims are the families that can express pointer swings.
var universalPrims = []Prim{PrimCAS, PrimLLSC}

func TestMSQueueFIFO(t *testing.T) {
	for _, prim := range universalPrims {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			m := newM(4)
			q := NewMSQueue(m, core.PolicyINV, 8, Options{Prim: prim})
			m.RunEach([]func(*machine.Proc){
				func(p *machine.Proc) {
					if _, ok := q.Dequeue(p); ok {
						t.Error("fresh queue not empty")
					}
					for v := arch.Word(10); v <= 14; v++ {
						q.Enqueue(p, q.AcquireNode(), v)
					}
					for v := arch.Word(10); v <= 14; v++ {
						got, ok := q.Dequeue(p)
						if !ok || got != v {
							t.Errorf("dequeue = %d,%v, want %d", got, ok, v)
						}
					}
					if _, ok := q.Dequeue(p); ok {
						t.Error("drained queue not empty")
					}
				},
				nil, nil, nil,
			})
			m.System().CheckCoherence()
		})
	}
}

func TestMSQueueConcurrentNoLossNoDup(t *testing.T) {
	for _, prim := range universalPrims {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			const procs, each = 8, 6
			m := newM(procs)
			q := NewMSQueue(m, core.PolicyINV, procs*each, Options{Prim: prim})
			// Preassign node ranges so issue order is deterministic.
			nodes := make([][]arch.Word, procs)
			for i := range nodes {
				for k := 0; k < each; k++ {
					nodes[i] = append(nodes[i], q.AcquireNode())
				}
			}
			got := make([][]arch.Word, procs)
			m.Run(func(p *machine.Proc) {
				i := p.ID()
				for k := 0; k < each; k++ {
					q.Enqueue(p, nodes[i][k], arch.Word(i*each+k+1))
					p.Compute(sim.Time(p.Rand().Intn(30)))
					if v, ok := q.Dequeue(p); ok {
						got[i] = append(got[i], v)
					}
				}
			})
			// Drain the remainder.
			var rest []arch.Word
			m.RunEach([]func(*machine.Proc){
				func(p *machine.Proc) {
					for {
						v, ok := q.Dequeue(p)
						if !ok {
							break
						}
						rest = append(rest, v)
					}
				},
				nil, nil, nil, nil, nil, nil, nil,
			})
			seen := map[arch.Word]bool{}
			total := 0
			for _, g := range append(got, rest) {
				for _, v := range g {
					if seen[v] {
						t.Fatalf("value %d dequeued twice", v)
					}
					seen[v] = true
					total++
				}
			}
			if total != procs*each {
				t.Fatalf("dequeued %d values, want %d", total, procs*each)
			}
			// FIFO order itself is the exact checker's job
			// (internal/check); this test pins conservation.
			m.System().CheckCoherence()
		})
	}
}

func TestTreiberStackLIFO(t *testing.T) {
	for _, prim := range universalPrims {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			m := newM(4)
			s := NewTreiberStack(m, core.PolicyINV, 4, Options{Prim: prim})
			m.RunEach([]func(*machine.Proc){
				func(p *machine.Proc) {
					if _, _, ok := s.Pop(p, nil); ok {
						t.Error("fresh stack not empty")
					}
					for n := arch.Word(1); n <= 3; n++ {
						s.Push(p, n, 100+n)
					}
					for want := arch.Word(3); want >= 1; want-- {
						node, v, ok := s.Pop(p, nil)
						if !ok || node != want || v != 100+want {
							t.Errorf("pop = (%d,%d,%v), want (%d,%d,true)", node, v, ok, want, 100+want)
						}
					}
					// Recycle a popped node with a fresh value.
					s.Push(p, 2, 999)
					if _, v, ok := s.Pop(p, nil); !ok || v != 999 {
						t.Errorf("recycled pop = %d,%v, want 999", v, ok)
					}
				},
				nil, nil, nil,
			})
			m.System().CheckCoherence()
		})
	}
}

func TestTreiberStackConcurrentNoLoss(t *testing.T) {
	for _, prim := range universalPrims {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			const procs, each = 8, 4
			m := newM(procs)
			s := NewTreiberStack(m, core.PolicyINV, procs*each, Options{Prim: prim})
			m.Run(func(p *machine.Proc) {
				i := p.ID()
				for k := 0; k < each; k++ {
					node := arch.Word(i*each + k + 1)
					s.Push(p, node, node)
					p.Compute(sim.Time(p.Rand().Intn(20)))
				}
			})
			var got []arch.Word
			m.RunEach([]func(*machine.Proc){
				func(p *machine.Proc) {
					for {
						node, v, ok := s.Pop(p, nil)
						if !ok {
							break
						}
						if node != v {
							t.Errorf("node %d carries value %d", node, v)
						}
						got = append(got, node)
					}
				},
				nil, nil, nil, nil, nil, nil, nil,
			})
			if len(got) != procs*each {
				t.Fatalf("drained %d nodes, want %d", len(got), procs*each)
			}
			seen := map[arch.Word]bool{}
			for _, n := range got {
				if seen[n] {
					t.Fatalf("node %d popped twice", n)
				}
				seen[n] = true
			}
			m.System().CheckCoherence()
		})
	}
}

// TestTreiberTaggedDefeatsABA replays the stack_test.go ABA interleaving
// against the Treiber stack: with counted pointers (or LL/SC) the delayed
// pop must not corrupt; with tags stripped it must reproduce the
// corruption — the raw-protocol ground truth the history checker's ABA
// regression (in internal/apps) is built on.
func TestTreiberTaggedDefeatsABA(t *testing.T) {
	stage := func(prim Prim, tagged bool) (topID arch.Word) {
		m := newM(4)
		s := NewTreiberStack(m, core.PolicyINV, 4, Options{Prim: prim})
		s.Tagged = tagged
		windowOpen := m.Alloc(4)
		adversaryDone := m.Alloc(4)
		m.RunEach([]func(*machine.Proc){
			func(p *machine.Proc) {
				// Build top -> 1 -> 2 -> 3, then pop with the ABA window.
				s.Push(p, 3, 3)
				s.Push(p, 2, 2)
				s.Push(p, 1, 1)
				s.Pop(p, func() {
					p.Store(windowOpen, 1)
					for p.Load(adversaryDone) == 0 {
						p.Compute(50)
					}
				})
			},
			func(p *machine.Proc) {
				for p.Load(windowOpen) == 0 {
					p.Compute(50)
				}
				a, av, _ := s.Pop(p, nil) // pops 1
				s.Pop(p, nil)             // pops 2 — adversary owns it now
				s.Push(p, a, av)          // pushes 1 back: top=1 -> 3
				p.Store(adversaryDone, 1)
			},
			nil, nil,
		})
		var top arch.Word
		m.RunEach([]func(*machine.Proc){
			func(p *machine.Proc) { top = msID(p.Load(s.Top)) },
			nil, nil, nil,
		})
		return top
	}

	// Bare CAS: the delayed swing installs node 2, which the adversary
	// privately owns — the stack is corrupt.
	if top := stage(PrimCAS, false); top != 2 {
		t.Fatalf("bare CAS top after ABA = %d; expected corrupted 2", top)
	}
	// Counted pointers: the tag moved, the stale CAS fails, retry pops
	// correctly, leaving top = 3.
	if top := stage(PrimCAS, true); top != 3 {
		t.Fatalf("tagged CAS top after ABA = %d, want 3", top)
	}
	// LL/SC: reservation cleared by the interleaving, same recovery.
	if top := stage(PrimLLSC, true); top != 3 {
		t.Fatalf("LLSC top after ABA = %d, want 3", top)
	}
}

func TestRCUReadersNeverTorn(t *testing.T) {
	for _, prim := range []Prim{PrimFAP, PrimCAS, PrimLLSC} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			const procs = 4
			m := newM(procs)
			r := NewRCU(m, core.PolicyINV, 4, Options{Prim: prim})
			isReader := func(i int) bool { return i != 0 }
			done := m.Alloc(4)
			var lastVersion [procs]arch.Word
			m.Run(func(p *machine.Proc) {
				if p.ID() == 0 {
					for u := 0; u < 5; u++ {
						r.Update(p, isReader)
						p.Compute(20)
					}
					p.Store(done, 1)
					return
				}
				// Read until the writer is finished, so grace periods
				// always have quiescing readers to wait on.
				for p.Load(done) == 0 {
					v, torn := r.ReadSnapshot(p)
					if torn {
						t.Errorf("reader %d: torn snapshot at version %d", p.ID(), v)
					}
					if v < lastVersion[p.ID()] {
						t.Errorf("reader %d: version went backwards %d -> %d", p.ID(), lastVersion[p.ID()], v)
					}
					lastVersion[p.ID()] = v
					r.Quiesce(p)
					p.Compute(sim.Time(5 + p.Rand().Intn(10)))
				}
			})
			m.System().CheckCoherence()
		})
	}
}

// TestRCUSkipGraceTears proves the torn-read detector detects: with grace
// periods skipped, a reader paused mid-walk observes the slot being
// overwritten by the second update.
func TestRCUSkipGraceTears(t *testing.T) {
	m := newM(2)
	r := NewRCU(m, core.PolicyINV, 4, Options{Prim: PrimCAS})
	r.SkipGrace = true
	windowOpen := m.Alloc(4)
	writerDone := m.Alloc(4)
	torn := false
	m.RunEach([]func(*machine.Proc){
		func(p *machine.Proc) {
			// Read slot 0's version word, pause, then finish the walk
			// after the writer has cycled back onto slot 0.
			s := p.Load(r.ptr)
			base := r.slot[s]
			version := p.Load(base)
			p.Store(windowOpen, 1)
			for p.Load(writerDone) == 0 {
				p.Compute(50)
			}
			for j := 1; j < r.Words; j++ {
				if p.Load(base+arch.Addr(j*arch.WordBytes)) != version+arch.Word(j) {
					torn = true
				}
			}
		},
		func(p *machine.Proc) {
			for p.Load(windowOpen) == 0 {
				p.Compute(50)
			}
			none := func(int) bool { return false }
			r.Update(p, none) // publishes slot 1
			r.Update(p, none) // reuses slot 0 — the reader is still in it
			p.Store(writerDone, 1)
		},
	})
	if !torn {
		t.Fatal("SkipGrace update did not tear the paused reader's snapshot")
	}
}

func TestTournamentBarrierNoOvertaking(t *testing.T) {
	for _, procs := range []int{2, 5, 16} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			const rounds = 5
			m := newM(procs)
			b := NewTournamentBarrier(m)
			phase := make([]int, procs)
			m.Run(func(p *machine.Proc) {
				for r := 0; r < rounds; r++ {
					phase[p.ID()] = r
					p.Compute(sim.Time(p.Rand().Intn(50)))
					b.Wait(p)
					for other, ph := range phase {
						if ph < r {
							t.Errorf("round %d: processor %d still in phase %d", r, other, ph)
						}
					}
				}
			})
		})
	}
}

func TestDisseminationBarrierNoOvertaking(t *testing.T) {
	for _, procs := range []int{2, 5, 16} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			const rounds = 5
			m := newM(procs)
			b := NewDisseminationBarrier(m)
			phase := make([]int, procs)
			m.Run(func(p *machine.Proc) {
				for r := 0; r < rounds; r++ {
					phase[p.ID()] = r
					p.Compute(sim.Time(p.Rand().Intn(50)))
					b.Wait(p)
					for other, ph := range phase {
						if ph < r {
							t.Errorf("round %d: processor %d still in phase %d", r, other, ph)
						}
					}
				}
			})
		})
	}
}
